// Command cbvr-bench regenerates every table and figure from the paper's
// evaluation section against a live CBVR instance:
//
//	cbvr-bench -table1        Table 1: precision@{20,30,50,100} per method
//	cbvr-bench -fig7          Fig. 7: range-index bucket population & pruning
//	cbvr-bench -fig8          Fig. 8: sample query frame algorithm outputs
//	cbvr-bench -ablations     design-choice ablations from DESIGN.md
//	cbvr-bench -all           everything
//
// The corpus is synthetic and seeded, so results are reproducible
// bit-for-bit for a given flag set.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"cbvr/internal/catalog"
	"cbvr/internal/core"
	"cbvr/internal/eval"
	"cbvr/internal/features"
	"cbvr/internal/keyframe"
	"cbvr/internal/motion"
	"cbvr/internal/rangeindex"
	"cbvr/internal/similarity"
	"cbvr/internal/synthvid"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "reproduce Table 1")
		fig7      = flag.Bool("fig7", false, "reproduce Fig. 7 (range index)")
		fig8      = flag.Bool("fig8", false, "reproduce Fig. 8 (sample outputs)")
		ablations = flag.Bool("ablations", false, "run design-choice ablations")
		all       = flag.Bool("all", false, "run everything")
		perCat    = flag.Int("videos", 8, "videos per category")
		queries   = flag.Int("queries", 4, "queries per category")
		frames    = flag.Int("frames", 72, "frames per video")
		shots     = flag.Int("shots", 8, "shots per video")
		noise     = flag.Float64("noise", 18, "per-pixel noise amplitude")
		jitter    = flag.Float64("jitter", 18, "per-video hue jitter in degrees")
		seed      = flag.Int64("seed", 1, "corpus seed")
		dbPath    = flag.String("db", "", "database path (default: temp dir)")
	)
	flag.Parse()
	if *all {
		*table1, *fig7, *fig8, *ablations = true, true, true, true
	}
	if !*table1 && !*fig7 && !*fig8 && !*ablations {
		flag.Usage()
		os.Exit(2)
	}

	path := *dbPath
	if path == "" {
		dir, err := os.MkdirTemp("", "cbvr-bench-*")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "bench.db")
	}

	cfg := eval.Table1Config{
		VideosPerCategory:  *perCat,
		QueriesPerCategory: *queries,
		Video:              synthvid.Config{Frames: *frames, Shots: *shots, Noise: *noise, HueJitter: *jitter},
		Seed:               *seed,
	}

	eng, err := core.Open(path, core.Options{})
	if err != nil {
		fatal(err)
	}
	defer eng.Close()

	start := time.Now()
	n, err := eval.BuildCorpus(eng, cfg)
	if err != nil {
		fatal(err)
	}
	kf, err := eng.CacheSize()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("corpus: %d videos, %d key frames, ingested in %v\n\n",
		n, kf, time.Since(start).Round(time.Millisecond))

	if *table1 {
		runTable1(eng, cfg)
	}
	if *fig7 {
		runFig7(eng)
	}
	if *fig8 {
		runFig8(cfg)
	}
	if *ablations {
		runAblations(eng, cfg)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "cbvr-bench:", err)
	os.Exit(1)
}

func runTable1(eng *core.Engine, cfg eval.Table1Config) {
	fmt.Println("== Table 1: average precision at 20, 30, 50 and 100 documents ==")
	qs := eval.BuildQueries(cfg)
	start := time.Now()
	res, err := eval.RunTable1(eng, qs)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("(%d queries in %v)\n\n", res.Queries, time.Since(start).Round(time.Millisecond))
	fmt.Println("measured:")
	fmt.Println(eval.FormatTable(res.Rows))
	fmt.Println("paper (Patel & Meshram, Table 1):")
	fmt.Println(eval.FormatTable(eval.PaperTable1()))
	combined := res.Row("Combined")
	wins := 0
	for ci := range eval.Cutoffs {
		best := 0.0
		for _, row := range res.Rows[:6] {
			if row.P[ci] > best {
				best = row.P[ci]
			}
		}
		if combined.P[ci] >= best {
			wins++
		}
	}
	fmt.Printf("shape check: combined >= best single feature at %d/4 cut-offs\n\n", wins)
}

func runFig7(eng *core.Engine) {
	fmt.Println("== Fig. 7: histogram-based range-finder index ==")
	ix := rangeindex.New()
	err := eng.Store().ScanKeyFrames(nil, func(k *catalog.KeyFrame) (bool, error) {
		ix.Insert(k.ID, k.Range())
		return true, nil
	})
	if err != nil {
		fatal(err)
	}
	sizes := ix.BucketSizes()
	ranges := make([]rangeindex.Range, 0, len(sizes))
	for r := range sizes {
		ranges = append(ranges, r)
	}
	sort.Slice(ranges, func(i, j int) bool {
		if ranges[i].Min != ranges[j].Min {
			return ranges[i].Min < ranges[j].Min
		}
		return ranges[i].Max < ranges[j].Max
	})
	fmt.Printf("%-12s %8s\n", "bucket", "frames")
	for _, r := range ranges {
		fmt.Printf("%-12s %8d\n", r, sizes[r])
	}
	fmt.Printf("indexed frames:  %d in %d buckets\n", ix.Len(), len(sizes))
	fmt.Printf("pruning factor:  %.3f (fraction of index scanned per query; 1.0 = no pruning)\n\n", ix.PruningFactor())
}

func runFig8(cfg eval.Table1Config) {
	fmt.Println("== Fig. 8: sample query frame and algorithm outputs ==")
	qs := eval.BuildQueries(cfg)
	frame := qs[0].Frame
	fmt.Printf("query frame: %dx%d (%v)\n\n", frame.W, frame.H, qs[0].Category)

	hist := frame.Rescale(features.AnalysisSize, features.AnalysisSize).GrayHistogram()
	min, max := rangeindex.AssignFaithful(&hist)
	set := features.ExtractAll(frame)

	fmt.Println("Algorithm : SimpleColorHistogram")
	fmt.Printf("Output : min = %d, max=%d\n", min, max)
	fmt.Printf("Histogram : %.120s...\n\n", set.Histogram.String())
	fmt.Println("Algorithm : GLCM_Texture")
	fmt.Printf("Output :\n%s\n\n", set.GLCM.String())
	fmt.Println("Algorithm : Gabor Texture")
	fmt.Printf("Output :\n%.160s...\n\n", set.Gabor.String())
	fmt.Println("Algorithm : Tamura Texture")
	fmt.Printf("Output :\n%s\n\n", set.Tamura.String())
	fmt.Println("Algorithm : SimpleRegionGrowing")
	fmt.Printf("Output : Majorregions : %d\n\n", set.Regions.Major)
	fmt.Println("Algorithm : AutoColorCorrelogram")
	fmt.Printf("Output :\n%.160s...\n\n", set.Correlogram.String())
	fmt.Println("Algorithm : NaiveVector")
	fmt.Printf("Output :\n%.160s...\n\n", set.Naive.String())
}

func runAblations(eng *core.Engine, cfg eval.Table1Config) {
	fmt.Println("== Ablations ==")
	qs := eval.BuildQueries(cfg)

	// 1. Range pruning on/off: result quality and candidate counts.
	fmt.Println("-- range pruning (query frame search) --")
	var prunedTime, fullTime time.Duration
	agreeTop1 := 0
	for _, q := range qs {
		t0 := time.Now()
		p, err := eng.SearchFrame(q.Frame, core.SearchOptions{K: 1})
		prunedTime += time.Since(t0)
		if err != nil {
			fatal(err)
		}
		t0 = time.Now()
		f, err := eng.SearchFrame(q.Frame, core.SearchOptions{K: 1, NoPruning: true})
		fullTime += time.Since(t0)
		if err != nil {
			fatal(err)
		}
		if len(p) > 0 && len(f) > 0 && p[0].KeyFrameID == f[0].KeyFrameID {
			agreeTop1++
		}
	}
	fmt.Printf("pruned search:   %v total\n", prunedTime.Round(time.Millisecond))
	fmt.Printf("full search:     %v total\n", fullTime.Round(time.Millisecond))
	fmt.Printf("top-1 agreement: %d/%d\n\n", agreeTop1, len(qs))

	// 2. Key-frame threshold sweep: compression vs key-frame count.
	fmt.Println("-- key-frame threshold sweep (section 4.1, default 800) --")
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{Frames: 48, Shots: 4, Seed: cfg.Seed})
	fmt.Printf("%-10s %10s %12s\n", "threshold", "keyframes", "compression")
	for _, thr := range []float64{200, 400, 800, 1600, 3200} {
		kfs, err := keyframe.Extractor{Threshold: thr}.Extract(v.Frames)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-10.0f %10d %11.1fx\n", thr, len(kfs), float64(len(v.Frames))/float64(len(kfs)))
	}
	fmt.Println()

	// 3. DP video alignment vs best-single-frame matching.
	fmt.Println("-- video search: DP alignment vs best-single-frame --")
	dpHits, bsHits := 0, 0
	for _, cat := range synthvid.AllCategories() {
		qv := synthvid.Generate(cat, synthvid.Config{Frames: 24, Shots: 3, Seed: cfg.Seed + 555})
		qframes := qv.Frames[:min(len(qv.Frames), 8)]
		dp, err := eng.SearchVideo(qframes, core.SearchOptions{K: 1})
		if err != nil {
			fatal(err)
		}
		qsets := eng.ExtractQuerySets(qframes)
		bs, err := eng.BestSingleFrameVideoSearch(qsets, core.SearchOptions{K: 1})
		if err != nil {
			fatal(err)
		}
		if len(dp) > 0 {
			if c, ok := eval.CategoryOfVideoName(dp[0].VideoName); ok && c == cat {
				dpHits++
			}
		}
		if len(bs) > 0 {
			if c, ok := eval.CategoryOfVideoName(bs[0].VideoName); ok && c == cat {
				bsHits++
			}
		}
	}
	fmt.Printf("DP alignment top-1 category hits:       %d/%d\n", dpHits, synthvid.NumCategories)
	fmt.Printf("best-single-frame top-1 category hits:  %d/%d\n\n", bsHits, synthvid.NumCategories)

	// 4. Fusion weighting: equal vs histogram-heavy weights.
	fmt.Println("-- fusion weights (combined search, P@20) --")
	kinds := features.AllKinds()
	equal := measureP20(eng, qs, core.SearchOptions{Kinds: kinds})
	weights := make([]float64, len(kinds))
	for i, k := range kinds {
		if k == features.KindGabor || k == features.KindTamura {
			weights[i] = 2
		} else {
			weights[i] = 1
		}
	}
	texture := measureP20(eng, qs, core.SearchOptions{Kinds: kinds, Weights: weights})
	fmt.Printf("equal weights:          P@20 = %.3f\n", equal)
	fmt.Printf("texture-heavy weights:  P@20 = %.3f\n\n", texture)

	// 5. Motion activity per genre: the temporal feature the paper's
	// introduction names ("motion and spatial-temporal composition").
	fmt.Println("-- motion activity by category (block matching, 3-step search) --")
	fmt.Printf("%-12s %10s %10s %10s\n", "category", "mean", "stddev", "still%")
	for _, cat := range synthvid.AllCategories() {
		v := synthvid.Generate(cat, synthvid.Config{Frames: 12, Shots: 1, Seed: cfg.Seed + 77})
		act, err := motion.ExtractActivity(v.Frames, 1)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%-12s %10.3f %10.3f %9.1f%%\n", cat, act.Mean, act.Std, act.ZeroFrac*100)
	}
	fmt.Println()

	// 6. DTW window: full vs banded alignment cost agreement.
	fmt.Println("-- DTW banding --")
	a := []float64{0, 1, 2, 3, 4, 5, 4, 3, 2, 1}
	b := []float64{0, 2, 4, 4, 2, 0}
	cost := func(i, j int) float64 {
		d := a[i] - b[j]
		if d < 0 {
			d = -d
		}
		return d
	}
	full := similarity.DTW(len(a), len(b), cost)
	banded := similarity.DTWWindow(len(a), len(b), 3, cost)
	fmt.Printf("full DTW:   %.4f\n", full)
	fmt.Printf("banded(3):  %.4f\n\n", banded)
}

func measureP20(eng *core.Engine, qs []eval.Query, opt core.SearchOptions) float64 {
	opt.K = 20
	opt.NoPruning = true
	var ps []float64
	for _, q := range qs {
		matches, err := eng.SearchFrame(q.Frame, opt)
		if err != nil {
			fatal(err)
		}
		rel := make([]bool, len(matches))
		for i, m := range matches {
			c, ok := eval.CategoryOfVideoName(m.VideoName)
			rel[i] = ok && c == q.Category
		}
		ps = append(ps, eval.PrecisionAtK(rel, 20))
	}
	return eval.Mean(ps)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
