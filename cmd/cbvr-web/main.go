// Command cbvr-web serves the paper's interactive web application
// (Figs. 2, 9, 10): users upload a query frame and browse ranked key-frame
// thumbnails, open a video page and step through its key frames; the
// administrator uploads and deletes videos.
//
//	cbvr-web -db cbvr.db -addr :8080
//
// Routes:
//
//	GET  /              query form + video listing
//	POST /search        multipart "image" upload → ranked thumbnail grid
//	GET  /video?id=N    video page with its key frames (Fig. 10)
//	GET  /frame?id=N    key-frame JPEG bytes
//	GET  /download?id=N stored CVJ container
//	POST /admin/upload  multipart "video" CVJ upload (admin)
//	POST /admin/delete  form "id" (admin)
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"cbvr"
	"cbvr/internal/webui"
)

func main() {
	var (
		db   = flag.String("db", "cbvr.db", "database path")
		addr = flag.String("addr", ":8080", "listen address")
		gen  = flag.Int("gen", 0, "ingest N synthetic videos per category at startup")
	)
	flag.Parse()
	sys, err := cbvr.Open(*db, cbvr.Options{})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbvr-web:", err)
		os.Exit(1)
	}
	defer sys.Close()
	if *gen > 0 {
		for name, frames := range cbvr.GenerateCorpus(*gen, cbvr.VideoConfig{}) {
			if _, err := sys.IngestFrames(name, frames, 12); err != nil {
				fmt.Fprintln(os.Stderr, "cbvr-web: seed corpus:", err)
				os.Exit(1)
			}
		}
		log.Printf("seeded %d synthetic videos per category", *gen)
	}
	srv := webui.New(sys.Engine())
	log.Printf("cbvr-web listening on %s (db %s)", *addr, *db)
	if err := http.ListenAndServe(*addr, srv); err != nil {
		fmt.Fprintln(os.Stderr, "cbvr-web:", err)
		os.Exit(1)
	}
}
