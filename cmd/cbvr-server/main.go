// Command cbvr-server serves the multi-client JSON/HTTP API around one
// CBVR database. It is the programmatic counterpart of cbvr-web: the same
// engine entry points, but JSON in and out, an ingest admission queue, and
// graceful shutdown that drains in-flight requests.
//
//	cbvr-server -db cbvr.db -addr :8081
//
// Routes (see internal/server and DESIGN.md "Server layer"):
//
//	POST   /api/v1/search        multipart "image" or raw JPEG body → ranked matches
//	GET    /api/v1/videos        store listing
//	DELETE /api/v1/videos?id=N   delete one video
//	POST   /api/v1/ingest        multipart "video" or raw CVJ body (?name=) → ingest
//	POST   /api/v1/reindex[?id=N] rebuild feature rows
//
// On SIGINT/SIGTERM the listener stops accepting, in-flight requests get
// -drain to finish, and past that their contexts are cancelled: staged
// ingest work is discarded uncommitted and the store closes clean either
// way. A second signal kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cbvr"
	"cbvr/internal/server"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		db             = flag.String("db", "cbvr.db", "database path")
		addr           = flag.String("addr", ":8081", "listen address")
		maxUpload      = flag.Int64("max-upload", server.DefaultMaxUploadBytes, "request body cap in bytes")
		maxIngests     = flag.Int("max-ingests", 0, "max concurrently admitted ingests (0 = 2×GOMAXPROCS)")
		drain          = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain timeout")
		searchDeadline = flag.Duration("search-deadline", server.DefaultSearchDeadline, "server-assigned deadline for search/read requests")
		mutateDeadline = flag.Duration("mutate-deadline", server.DefaultMutateDeadline, "server-assigned deadline for ingest/reindex/delete")
		maxDeadline    = flag.Duration("max-deadline", server.DefaultMaxDeadline, "cap on the X-CBVR-Deadline-Ms client override")
		bodyStall      = flag.Duration("body-stall", server.DefaultBodyStallTimeout, "per-read upload stall watchdog (negative disables)")
	)
	flag.Parse()

	sys, err := cbvr.Open(*db, cbvr.Options{})
	if err != nil {
		log.Printf("cbvr-server: %v", err)
		return 1
	}
	api := server.New(sys.Engine(), server.Options{
		MaxUploadBytes:     *maxUpload,
		MaxInFlightIngests: *maxIngests,
		SearchDeadline:     *searchDeadline,
		MutateDeadline:     *mutateDeadline,
		MaxDeadline:        *maxDeadline,
		BodyStallTimeout:   *bodyStall,
	})
	// Header and idle timeouts bound what a connection may cost before it
	// carries an admitted request; body pace is the watchdog's job (a
	// blanket ReadTimeout would cut legitimately long uploads), and the
	// write timeout must outlive the longest admissible deadline.
	httpSrv := &http.Server{
		Handler:           api,
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
		WriteTimeout:      *maxDeadline + time.Minute,
	}

	// Listen explicitly so ":0" reports its chosen port (tests depend on
	// this line to find the server).
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		sys.Close()
		log.Printf("cbvr-server: %v", err)
		return 1
	}
	log.Printf("cbvr-server listening on %s (db %s)", ln.Addr(), *db)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		sys.Close()
		log.Printf("cbvr-server: %v", err)
		return 1
	case <-ctx.Done():
	}
	stop() // a second signal now kills the process the default way

	log.Printf("cbvr-server: shutting down, draining for up to %s", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && errors.Is(err, context.DeadlineExceeded) {
		// Drain expired with requests still running: cancel their contexts
		// (ctx-aware engine loops stop within one decode iteration and
		// discard staged pages) and force-close the connections so blocked
		// body reads return.
		log.Printf("cbvr-server: drain timeout, aborting in-flight requests")
		api.Abort()
		httpSrv.Close()
	}
	// Handlers may still be unwinding their deferred cleanup (discarding
	// staged blob pages); the store refuses to close under active staged
	// writers, so wait for every handler to return first.
	api.Wait()
	if err := sys.Close(); err != nil {
		log.Printf("cbvr-server: close: %v", err)
		return 1
	}
	log.Printf("cbvr-server: clean shutdown")
	return 0
}
