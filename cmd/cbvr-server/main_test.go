package main

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"cbvr"
	"cbvr/internal/cvj"
	"cbvr/internal/synthvid"
)

// TestShutdownDrainSIGTERM exercises the real binary end to end: build it,
// start it, commit one video over HTTP, park a second ingest mid-body on a
// raw TCP connection, then SIGTERM the process. The server must exit
// cleanly (drain expires, in-flight contexts are cancelled, staged pages
// discarded), and reopening the store must show exactly the committed
// video with no orphan key-frame rows.
func TestShutdownDrainSIGTERM(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process and builds a binary")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not on PATH")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "cbvr-server")
	build := exec.Command(goBin, "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	dbPath := filepath.Join(dir, "smoke.db")
	srv := exec.Command(bin, "-db", dbPath, "-addr", "127.0.0.1:0", "-drain", "2s")
	stderr, err := srv.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Process.Kill()

	// The binary logs its bound address once the listener is up.
	var addr string
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if i := strings.Index(sc.Text(), "listening on "); i >= 0 {
			addr = strings.Fields(sc.Text()[i+len("listening on "):])[0]
			break
		}
	}
	if addr == "" {
		t.Fatalf("server never reported its listen address: %v", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the child's stderr drained

	// One complete ingest: this video must survive the shutdown.
	v := synthvid.Generate(synthvid.News, synthvid.Config{Width: 96, Height: 72, Frames: 8, Shots: 2, Seed: 21})
	raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post("http://"+addr+"/api/v1/ingest?name=resident", "application/octet-stream", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resident ingest: %d %s", resp.StatusCode, body)
	}

	// Park a second ingest mid-body: correct Content-Length, half the
	// container sent, connection held open. The handler blocks reading the
	// next frame record.
	cut := synthvid.Generate(synthvid.Movie, synthvid.Config{Width: 96, Height: 72, Frames: 24, Shots: 4, Seed: 22})
	cutRaw, err := cvj.EncodeBytes(cut.Frames, cut.FPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "POST /api/v1/ingest?name=cut HTTP/1.1\r\nHost: %s\r\nContent-Type: application/octet-stream\r\nContent-Length: %d\r\n\r\n", addr, len(cutRaw))
	if _, err := conn.Write(cutRaw[:len(cutRaw)/2]); err != nil {
		t.Fatal(err)
	}
	time.Sleep(500 * time.Millisecond) // let the handler reach mid-decode

	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("server exited uncleanly after SIGTERM: %v", err)
		}
	case <-time.After(20 * time.Second):
		srv.Process.Kill()
		t.Fatal("server did not exit within 20s of SIGTERM")
	}

	// The store must reopen with exactly the committed video and no
	// key-frame rows beyond its own (nothing half-published from "cut").
	sys, err := cbvr.Open(dbPath, cbvr.Options{})
	if err != nil {
		t.Fatalf("store did not reopen after shutdown: %v", err)
	}
	defer sys.Close()
	st := sys.Engine().Store()
	vids, err := st.ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 1 || vids[0].Name != "resident" {
		t.Fatalf("videos after shutdown = %+v, want just \"resident\"", vids)
	}
	kfs, err := st.KeyFramesOfVideo(nil, vids[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	total, err := st.CountKeyFrames(nil)
	if err != nil {
		t.Fatal(err)
	}
	if total != len(kfs) {
		t.Errorf("%d key-frame rows total but resident owns %d: orphans survived", total, len(kfs))
	}
	if len(kfs) == 0 {
		t.Error("resident video lost its key frames")
	}
}
