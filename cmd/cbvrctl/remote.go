// Remote mode: ingest, query and reindex can target a running cbvr-server
// (-server URL) instead of opening the database file directly. All remote
// calls share one retrying HTTP client that speaks the server's overload
// protocol: exponential backoff with jitter, Retry-After honored as the
// minimum wait, and a circuit that opens after consecutive 5xx responses
// so a dying server is not hammered to the last retry.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// errCircuitOpen is returned once the server has answered with too many
// consecutive 5xx responses; further attempts are refused without I/O.
var errCircuitOpen = errors.New("circuit open: server is persistently failing")

// defaultCircuitAt is the consecutive-5xx count that opens the circuit.
const defaultCircuitAt = 5

// retryClient wraps http.Client with the backoff policy every remote
// subcommand shares. The sleep and jitter hooks exist for tests; zero
// values select real time and real randomness.
type retryClient struct {
	hc      *http.Client
	retries int           // attempts beyond the first
	timeout time.Duration // per-attempt budget
	circuit int           // consecutive 5xx before the circuit opens

	consec5xx int

	// sleep waits out a backoff, returning early with the context error if
	// the context dies first. Tests swap it to record rather than wait.
	sleep func(context.Context, time.Duration) error
	// jitter maps a base backoff onto the waited duration. The default is
	// the half-jitter rule: base/2 + uniform(0, base/2), which decorrelates
	// a fleet of clients without ever waiting less than half the base.
	jitter func(time.Duration) time.Duration
}

func newRetryClient(retries int, timeout time.Duration) *retryClient {
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	return &retryClient{
		hc:      &http.Client{},
		retries: retries,
		timeout: timeout,
		circuit: defaultCircuitAt,
		sleep: func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		},
		jitter: func(base time.Duration) time.Duration {
			return base/2 + time.Duration(rng.Int63n(int64(base/2)+1))
		},
	}
}

// retryableStatus reports whether a response status warrants another
// attempt: explicit backpressure (429), and every 5xx — the server's
// overload and degraded responses (503) included.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// retryAfterOf parses the Retry-After header as delay seconds; 0 if
// absent or unparseable (HTTP-date form is not worth supporting here —
// the cbvr server always sends delta-seconds).
func retryAfterOf(resp *http.Response) time.Duration {
	sec, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || sec <= 0 {
		return 0
	}
	return time.Duration(sec) * time.Second
}

// do performs one logical request with retries. mkBody produces a fresh
// body per attempt (a consumed body cannot be replayed). The returned
// response is always non-retryable (2xx or a terminal 4xx); its body is
// the caller's to close.
func (c *retryClient) do(ctx context.Context, method, url string, mkBody func() (io.ReadCloser, error)) (*http.Response, error) {
	backoff := 250 * time.Millisecond
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		// The surrounding signal context ends retrying immediately: a ^C
		// must not sit out a multi-second backoff.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if c.consec5xx >= c.circuit {
			return nil, fmt.Errorf("%w (%d consecutive 5xx)", errCircuitOpen, c.consec5xx)
		}
		body, err := mkBody()
		if err != nil {
			return nil, err
		}
		actx, cancel := context.WithTimeout(ctx, c.timeout)
		req, err := http.NewRequestWithContext(actx, method, url, body)
		if err != nil {
			body.Close()
			cancel()
			return nil, err
		}
		resp, err := c.hc.Do(req)
		var wait time.Duration
		switch {
		case err != nil:
			cancel()
			lastErr = err
		case !retryableStatus(resp.StatusCode):
			c.consec5xx = 0
			resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
			return resp, nil
		default:
			if resp.StatusCode >= 500 {
				c.consec5xx++
			} else {
				c.consec5xx = 0
			}
			wait = retryAfterOf(resp)
			snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
			resp.Body.Close()
			cancel()
			lastErr = fmt.Errorf("server returned %s: %s", resp.Status, snippet)
		}
		if attempt == c.retries {
			break
		}
		d := c.jitter(backoff)
		if wait > d {
			d = wait // Retry-After is a floor, not a suggestion
		}
		if err := c.sleep(ctx, d); err != nil {
			return nil, err
		}
		backoff *= 2
	}
	return nil, fmt.Errorf("giving up after %d attempts: %w", c.retries+1, lastErr)
}

// cancelOnClose ties an attempt's timeout context to the response body,
// so the per-attempt budget stops ticking only when the caller is done
// reading.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// decodeJSON reads and decodes a response body, closing it.
func decodeJSON(resp *http.Response, out any) error {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("bad server response %q: %w", raw, err)
	}
	return nil
}

// remoteIngest streams a container file to POST /api/v1/ingest. openBody
// reopens the file per attempt.
func remoteIngest(ctx context.Context, c *retryClient, server, name string, openBody func() (io.ReadCloser, error)) error {
	u := server + "/api/v1/ingest?name=" + url.QueryEscape(name)
	resp, err := c.do(ctx, http.MethodPost, u, openBody)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return readErrBody(resp)
	}
	var res struct {
		VideoID     int64   `json:"video_id"`
		NumFrames   int     `json:"num_frames"`
		KeyFrameIDs []int64 `json:"key_frame_ids"`
	}
	if err := decodeJSON(resp, &res); err != nil {
		return err
	}
	fmt.Printf("ingested %s: video=%d frames=%d keyframes=%d\n", name, res.VideoID, res.NumFrames, len(res.KeyFrameIDs))
	return nil
}

// remoteQuery posts a JPEG to POST /api/v1/search and prints the ranking
// in the same table the local path uses.
func remoteQuery(ctx context.Context, c *retryClient, server string, jpeg []byte, k int) error {
	url := fmt.Sprintf("%s/api/v1/search?k=%d", server, k)
	resp, err := c.do(ctx, http.MethodPost, url, byteBody(jpeg))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return readErrBody(resp)
	}
	if lvl := resp.Header.Get("X-CBVR-Brownout"); lvl != "" && lvl != "0.000" {
		fmt.Printf("note: server browned out (level %s); ranking is budget-limited\n", lvl)
	}
	var res struct {
		Matches []struct {
			KeyFrameID int64   `json:"key_frame_id"`
			VideoName  string  `json:"video_name"`
			FrameIndex int     `json:"frame_index"`
			Distance   float64 `json:"distance"`
		} `json:"matches"`
	}
	if err := decodeJSON(resp, &res); err != nil {
		return err
	}
	fmt.Printf("%-4s %-8s %-20s %-8s %s\n", "RANK", "FRAME", "VIDEO", "IDX", "DISTANCE")
	for i, m := range res.Matches {
		fmt.Printf("%-4d %-8d %-20s %-8d %.6f\n", i+1, m.KeyFrameID, m.VideoName, m.FrameIndex, m.Distance)
	}
	return nil
}

// remoteReindex triggers POST /api/v1/reindex, one video or the sweep.
func remoteReindex(ctx context.Context, c *retryClient, server string, id int64) error {
	url := server + "/api/v1/reindex"
	if id != 0 {
		url += "?id=" + strconv.FormatInt(id, 10)
	}
	resp, err := c.do(ctx, http.MethodPost, url, byteBody(nil))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return readErrBody(resp)
	}
	var res struct {
		Reindexed []struct {
			VideoID   int64  `json:"video_id"`
			VideoName string `json:"video_name"`
			KeyFrames int    `json:"key_frames"`
		} `json:"reindexed"`
	}
	if err := decodeJSON(resp, &res); err != nil {
		return err
	}
	for _, r := range res.Reindexed {
		fmt.Printf("reindexed %-20s video=%d keyframes=%d\n", r.VideoName, r.VideoID, r.KeyFrames)
	}
	return nil
}

// byteBody replays an in-memory body across attempts.
func byteBody(b []byte) func() (io.ReadCloser, error) {
	return func() (io.ReadCloser, error) {
		return io.NopCloser(bytes.NewReader(b)), nil
	}
}

// readErrBody renders a terminal (non-retryable) error response.
func readErrBody(resp *http.Response) error {
	defer resp.Body.Close()
	snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 200))
	return fmt.Errorf("server returned %s: %s", resp.Status, snippet)
}
