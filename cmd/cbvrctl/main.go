// Command cbvrctl administers and queries a CBVR database from the shell.
// It covers both roles from the paper's use-case diagram: the
// administrator (add / delete / inspect videos) and the user (query by
// frame or clip).
//
//	cbvrctl init     -db cbvr.db
//	cbvrctl gen      -db cbvr.db -videos 4            # synthetic corpus
//	cbvrctl ingest   -db cbvr.db -file clip.cvj -name holiday
//	cbvrctl list     -db cbvr.db
//	cbvrctl query    -db cbvr.db -image frame.jpg -k 10
//	cbvrctl queryvid -db cbvr.db -file clip.cvj -k 5
//	cbvrctl describe -image frame.jpg                 # Fig. 8 output
//	cbvrctl export   -db cbvr.db -id 3 -out clip.cvj
//	cbvrctl delete   -db cbvr.db -id 3
//	cbvrctl reindex  -db cbvr.db [-id 3]              # rebuild feature rows
//	cbvrctl stats    -db cbvr.db
//	cbvrctl fsck     -db cbvr.db                      # offline verifier
package main

import (
	"context"
	"flag"
	"io"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cbvr"
	"cbvr/internal/eval"
	"cbvr/internal/features"
	"cbvr/internal/synthvid"
	"cbvr/internal/vstore"
	"cbvr/tools/cbvrvet/analyzers"
	"cbvr/tools/cbvrvet/driver"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	// Interruptible commands (long ingests, reindex sweeps, searches) run
	// under a signal context: ^C aborts the in-flight operation at its next
	// cancellation point (nothing half-commits) and the store closes clean
	// through the defers. A second signal kills the process.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "init":
		err = cmdInit(args)
	case "gen":
		err = cmdGen(ctx, args)
	case "ingest":
		err = cmdIngest(ctx, args)
	case "list":
		err = cmdList(args)
	case "query":
		err = cmdQuery(ctx, args)
	case "queryvid":
		err = cmdQueryVid(ctx, args)
	case "describe":
		err = cmdDescribe(args)
	case "export":
		err = cmdExport(args)
	case "delete":
		err = cmdDelete(args)
	case "reindex":
		err = cmdReindex(ctx, args)
	case "stats":
		err = cmdStats(args)
	case "fsck":
		err = cmdFsck(args)
	case "vet":
		// Hidden developer command: run the cbvrvet static-analysis suite
		// over the repository (equivalent to `go run ./tools/cbvrvet`).
		err = cmdVet(args)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cbvrctl:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: cbvrctl <init|gen|ingest|list|query|queryvid|describe|export|delete|reindex|stats|fsck> [flags]
run "cbvrctl <command> -h" for command flags`)
}

func openSystem(path string) (*cbvr.System, error) {
	if path == "" {
		return nil, fmt.Errorf("missing -db flag")
	}
	return cbvr.Open(path, cbvr.Options{})
}

func cmdInit(args []string) error {
	fs := flag.NewFlagSet("init", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	fs.Parse(args)
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	fmt.Printf("initialised %s\n", *db)
	return nil
}

func cmdGen(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	videos := fs.Int("videos", 2, "videos per category")
	frames := fs.Int("frames", 48, "frames per video")
	shots := fs.Int("shots", 5, "shots per video")
	seed := fs.Int64("seed", 1, "generator seed")
	fs.Parse(args)
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	corpus := cbvr.GenerateCorpus(*videos, cbvr.VideoConfig{Frames: *frames, Shots: *shots, Seed: *seed})
	// Each ingest runs under the signal context: ^C finishes nothing
	// half-way — completed videos stay committed, the in-flight one
	// aborts clean.
	for name, imgs := range corpus {
		res, err := sys.IngestFramesCtx(ctx, name, imgs, 12)
		if err != nil {
			return err
		}
		fmt.Printf("ingested %-14s video=%d frames=%d keyframes=%d\n",
			name, res.VideoID, res.NumFrames, len(res.KeyFrameIDs))
	}
	return nil
}

func cmdIngest(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	file := fs.String("file", "", "CVJ container file")
	name := fs.String("name", "", "video name (default: file name)")
	server := fs.String("server", "", "cbvr-server base URL (remote mode; replaces -db)")
	retries := fs.Int("retries", 4, "remote mode: retry attempts beyond the first")
	timeout := fs.Duration("timeout", 30*time.Second, "remote mode: per-attempt budget")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("missing -file flag")
	}
	if *name == "" {
		*name = strings.TrimSuffix(*file, ".cvj")
	}
	if *server != "" {
		// Remote mode reopens the file per attempt: a half-sent body from
		// a shed attempt cannot be replayed.
		return remoteIngest(ctx, newRetryClient(*retries, *timeout), *server, *name, func() (io.ReadCloser, error) {
			return os.Open(*file)
		})
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	defer f.Close()
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	// Stream the container from disk: constant-memory ingest regardless of
	// clip length, and ^C aborts within one decode iteration.
	res, err := sys.IngestVideoStreamCtx(ctx, *name, f)
	if err != nil {
		return err
	}
	fmt.Printf("ingested %s: video=%d frames=%d keyframes=%d\n",
		*name, res.VideoID, res.NumFrames, len(res.KeyFrameIDs))
	return nil
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("list", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	fs.Parse(args)
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	vids, err := sys.Engine().Store().ListVideos(nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-6s %-20s %12s\n", "V_ID", "V_NAME", "BYTES")
	for _, v := range vids {
		fmt.Printf("%-6d %-20s %12d\n", v.ID, v.Name, v.VideoLen)
	}
	return nil
}

func parseKinds(s string) ([]cbvr.FeatureKind, error) {
	if s == "" {
		return nil, nil
	}
	var out []cbvr.FeatureKind
	for _, part := range strings.Split(s, ",") {
		k, err := features.ParseKind(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, k)
	}
	return out, nil
}

func cmdQuery(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	image := fs.String("image", "", "query JPEG")
	k := fs.Int("k", 10, "result count")
	kindsFlag := fs.String("features", "", "comma-separated feature subset (default: all)")
	noPrune := fs.Bool("noprune", false, "disable range-index pruning")
	server := fs.String("server", "", "cbvr-server base URL (remote mode; replaces -db)")
	retries := fs.Int("retries", 4, "remote mode: retry attempts beyond the first")
	timeout := fs.Duration("timeout", 30*time.Second, "remote mode: per-attempt budget")
	fs.Parse(args)
	if *image == "" {
		return fmt.Errorf("missing -image flag")
	}
	if *server != "" {
		if *kindsFlag != "" || *noPrune {
			return fmt.Errorf("-features and -noprune are local-only; the server chooses its own search plan")
		}
		jpeg, err := os.ReadFile(*image)
		if err != nil {
			return err
		}
		return remoteQuery(ctx, newRetryClient(*retries, *timeout), *server, jpeg, *k)
	}
	f, err := os.Open(*image)
	if err != nil {
		return err
	}
	query, err := cbvr.FromJPEG(f)
	f.Close()
	if err != nil {
		return err
	}
	kinds, err := parseKinds(*kindsFlag)
	if err != nil {
		return err
	}
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	matches, err := sys.SearchCtx(ctx, query, cbvr.SearchOptions{K: *k, Kinds: kinds, NoPruning: *noPrune})
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %-8s %-20s %-8s %s\n", "RANK", "FRAME", "VIDEO", "IDX", "DISTANCE")
	for i, m := range matches {
		fmt.Printf("%-4d %-8d %-20s %-8d %.6f\n", i+1, m.KeyFrameID, m.VideoName, m.FrameIndex, m.Distance)
	}
	return nil
}

func cmdQueryVid(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("queryvid", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	file := fs.String("file", "", "query CVJ container")
	k := fs.Int("k", 5, "result count")
	fs.Parse(args)
	if *file == "" {
		return fmt.Errorf("missing -file flag")
	}
	f, err := os.Open(*file)
	if err != nil {
		return err
	}
	_, frames, err := cbvr.DecodeVideo(f)
	f.Close()
	if err != nil {
		return err
	}
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	matches, err := sys.SearchVideoCtx(ctx, frames, cbvr.SearchOptions{K: *k})
	if err != nil {
		return err
	}
	fmt.Printf("%-4s %-6s %-20s %s\n", "RANK", "V_ID", "V_NAME", "DISTANCE")
	for i, m := range matches {
		fmt.Printf("%-4d %-6d %-20s %.6f\n", i+1, m.VideoID, m.VideoName, m.Distance)
	}
	return nil
}

func cmdDescribe(args []string) error {
	fs := flag.NewFlagSet("describe", flag.ExitOnError)
	image := fs.String("image", "", "JPEG to describe")
	seed := fs.Int64("seed", 0, "describe a generated frame instead (seed)")
	fs.Parse(args)
	var im *cbvr.Image
	switch {
	case *image != "":
		f, err := os.Open(*image)
		if err != nil {
			return err
		}
		defer f.Close()
		var derr error
		im, derr = cbvr.FromJPEG(f)
		if derr != nil {
			return derr
		}
	default:
		qs := eval.BuildQueries(eval.Table1Config{QueriesPerCategory: 1, Seed: *seed + 1})
		im = qs[0].Frame
	}
	strs, min, max := cbvr.DescribeFrame(im)
	fmt.Printf("Algorithm : SimpleColorHistogram\nOutput : min = %d, max=%d\nHistogram : %s\n\n",
		min, max, strs[cbvr.FeatureHistogram])
	fmt.Printf("Algorithm : GLCM_Texture\nOutput :\n%s\n\n", strs[cbvr.FeatureGLCM])
	fmt.Printf("Algorithm : Gabor Texture\nOutput :\n%s\n\n", strs[cbvr.FeatureGabor])
	fmt.Printf("Algorithm : Tamura Texture\nOutput :\n%s\n\n", strs[cbvr.FeatureTamura])
	regions, err := features.ParseRegions(strs[cbvr.FeatureRegions])
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm : SimpleRegionGrowing\nOutput : Majorregions : %d\n\n", regions.Major)
	fmt.Printf("Algorithm : AutoColorCorrelogram\nOutput :\n%s\n\n", strs[cbvr.FeatureCorrelogram])
	fmt.Printf("Algorithm : NaiveVector\nOutput :\n%s\n", strs[cbvr.FeatureNaive])
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	id := fs.Int64("id", 0, "video id")
	out := fs.String("out", "", "output CVJ path")
	fs.Parse(args)
	if *id == 0 || *out == "" {
		return fmt.Errorf("need -id and -out")
	}
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	raw, ok, err := sys.Engine().Store().VideoBytes(nil, *id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("no video %d", *id)
	}
	if err := os.WriteFile(*out, raw, 0o644); err != nil {
		return err
	}
	fmt.Printf("exported video %d to %s (%d bytes)\n", *id, *out, len(raw))
	return nil
}

func cmdDelete(args []string) error {
	fs := flag.NewFlagSet("delete", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	id := fs.Int64("id", 0, "video id")
	fs.Parse(args)
	if *id == 0 {
		return fmt.Errorf("need -id")
	}
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	if err := sys.DeleteVideo(*id); err != nil {
		return err
	}
	fmt.Printf("deleted video %d\n", *id)
	return nil
}

func cmdReindex(ctx context.Context, args []string) error {
	fs := flag.NewFlagSet("reindex", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	id := fs.Int64("id", 0, "video id (0 = every stored video)")
	server := fs.String("server", "", "cbvr-server base URL (remote mode; replaces -db)")
	retries := fs.Int("retries", 4, "remote mode: retry attempts beyond the first")
	timeout := fs.Duration("timeout", 5*time.Minute, "remote mode: per-attempt budget (a sweep reextracts everything)")
	fs.Parse(args)
	if *server != "" {
		return remoteReindex(ctx, newRetryClient(*retries, *timeout), *server, *id)
	}
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	var results []*cbvr.ReindexResult
	if *id != 0 {
		res, err := sys.ReindexVideoCtx(ctx, *id)
		if err != nil {
			return err
		}
		results = []*cbvr.ReindexResult{res}
	} else {
		// Partial results still print: each video commits independently,
		// so completed rebuilds are durable even if a later one fails (or
		// the sweep is interrupted).
		results, err = sys.ReindexAllCtx(ctx)
	}
	for _, r := range results {
		fmt.Printf("reindexed %-20s video=%d keyframes=%d\n", r.VideoName, r.VideoID, r.KeyFrames)
	}
	return err
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	fs.Parse(args)
	sys, err := openSystem(*db)
	if err != nil {
		return err
	}
	defer sys.Close()
	st := sys.Engine().Store()
	nv, err := st.CountVideos(nil)
	if err != nil {
		return err
	}
	nk, err := st.CountKeyFrames(nil)
	if err != nil {
		return err
	}
	ds := st.DB().Stats()
	fmt.Printf("videos:       %d\n", nv)
	fmt.Printf("key frames:   %d\n", nk)
	fmt.Printf("commits:      %d\n", ds.Commits)
	fmt.Printf("wal records:  %d\n", ds.WALRecords)
	fmt.Printf("recovered:    %d txns at open\n", ds.Recovered)

	// Cell-index view: warms the search cache, so this reports exactly
	// the pruning state a search in this process would run against.
	cs, err := sys.Engine().CellStats()
	if err != nil {
		return err
	}
	fmt.Printf("cell index:   %d/%d shards built, %d cells over %d rows, %d rebuilds\n",
		cs.BuiltShards, cs.Shards, cs.Cells, cs.IndexedRows, cs.Rebuilds)

	if _, err := synthvid.ParseCategory("sports"); err == nil && nk > 0 {
		// Per-category frame counts when the corpus is synthetic.
		counts := make(map[string]int)
		vids, err := st.ListVideos(nil)
		if err != nil {
			return err
		}
		for _, v := range vids {
			if cat, ok := eval.CategoryOfVideoName(v.Name); ok {
				counts[cat.String()]++
			}
		}
		if len(counts) > 0 {
			fmt.Println("videos per category:")
			for _, c := range synthvid.AllCategories() {
				if n := counts[c.String()]; n > 0 {
					fmt.Printf("  %-10s %d\n", c, n)
				}
			}
		}
	}
	return nil
}

// cmdFsck opens the store (running WAL recovery first, exactly as any
// consumer would) and walks every page, btree and blob chain offline. Any
// corruption prints one line per problem and exits non-zero, so scripts
// and CI can gate on a clean store.
func cmdFsck(args []string) error {
	fs := flag.NewFlagSet("fsck", flag.ExitOnError)
	db := fs.String("db", "", "database path")
	fs.Parse(args)
	if *db == "" {
		return fmt.Errorf("missing -db flag")
	}
	store, err := vstore.Open(*db, nil)
	if err != nil {
		return err
	}
	defer store.Close()
	rep, err := vstore.Check(store)
	if err != nil {
		return err
	}
	fmt.Printf("pages: %d  tables: %d  rows: %d\n", rep.Pages, rep.Tables, rep.Rows)
	if !rep.Clean() {
		for _, p := range rep.Problems {
			fmt.Fprintln(os.Stderr, "fsck:", p)
		}
		return fmt.Errorf("%d problem(s) found", len(rep.Problems))
	}
	fmt.Println("ok")
	return nil
}

// cmdVet runs the cbvrvet static-analysis suite in-process over the
// given package patterns (default ./...). Deliberately absent from
// usage(): it is a developer and CI convenience, not part of the
// paper's administrator/user surface. Equivalent to
// `go run ./tools/cbvrvet ./...`.
func cmdVet(args []string) error {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	n, err := driver.Run(os.Stderr, "", args, analyzers.All())
	if err != nil {
		return err
	}
	if n > 0 {
		return fmt.Errorf("%d finding(s)", n)
	}
	fmt.Println("vet: clean")
	return nil
}
