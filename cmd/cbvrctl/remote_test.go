package main

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// testRetryClient returns a client whose sleeps are recorded instead of
// waited and whose jitter is the identity, so backoff arithmetic is exact.
func testRetryClient(retries int) (*retryClient, *[]time.Duration) {
	c := newRetryClient(retries, 5*time.Second)
	waits := &[]time.Duration{}
	c.sleep = func(ctx context.Context, d time.Duration) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		*waits = append(*waits, d)
		return nil
	}
	c.jitter = func(base time.Duration) time.Duration { return base }
	return c, waits
}

// TestRetryClientRecoversFromFlakyServer pins the happy retry path: two
// shed responses, then success. The client must replay the body each
// attempt and wait at least the server's Retry-After, even when the
// exponential backoff alone would retry sooner.
func TestRetryClientRecoversFromFlakyServer(t *testing.T) {
	var hits atomic.Int32
	var bodies []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		b, _ := io.ReadAll(r.Body)
		bodies = append(bodies, string(b))
		switch hits.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusServiceUnavailable)
		case 2:
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
		default:
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"ok":true}`))
		}
	}))
	defer ts.Close()

	c, waits := testRetryClient(4)
	resp, err := c.do(context.Background(), "POST", ts.URL, byteBody([]byte("payload")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("final status %d", resp.StatusCode)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d attempts, want 3", hits.Load())
	}
	for i, b := range bodies {
		if b != "payload" {
			t.Fatalf("attempt %d body = %q: body was not replayed", i, b)
		}
	}
	// Waits: Retry-After 2s floors the 250ms base; Retry-After 1s floors
	// the 500ms second step.
	want := []time.Duration{2 * time.Second, time.Second}
	if len(*waits) != len(want) {
		t.Fatalf("recorded waits %v, want %v", *waits, want)
	}
	for i := range want {
		if (*waits)[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v (Retry-After must be the floor)", i, (*waits)[i], want[i])
		}
	}
}

// TestRetryClientExponentialBackoff pins the schedule when the server
// sends no Retry-After: 250ms, 500ms, 1s, ...
func TestRetryClientExponentialBackoff(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 3 {
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.WriteHeader(http.StatusOK)
	}))
	defer ts.Close()

	c, waits := testRetryClient(5)
	resp, err := c.do(context.Background(), "POST", ts.URL, byteBody(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	want := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond, time.Second}
	if len(*waits) != len(want) {
		t.Fatalf("recorded waits %v, want %v", *waits, want)
	}
	for i := range want {
		if (*waits)[i] != want[i] {
			t.Fatalf("wait %d = %v, want %v", i, (*waits)[i], want[i])
		}
	}
}

// TestRetryClientCircuitOpens checks a persistently failing server stops
// getting traffic: after the consecutive-5xx threshold the client fails
// fast with errCircuitOpen instead of burning its remaining retries.
func TestRetryClientCircuitOpens(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	c, _ := testRetryClient(20)
	c.circuit = 3
	_, err := c.do(context.Background(), "POST", ts.URL, byteBody(nil))
	if !errors.Is(err, errCircuitOpen) {
		t.Fatalf("err = %v, want errCircuitOpen", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d attempts after circuit threshold 3", hits.Load())
	}

	// The circuit stays open across calls on the same client.
	if _, err := c.do(context.Background(), "POST", ts.URL, byteBody(nil)); !errors.Is(err, errCircuitOpen) {
		t.Fatalf("second call: %v, want errCircuitOpen without I/O", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("open circuit still sent traffic (%d hits)", hits.Load())
	}
}

// TestRetryClientTerminalStatusNotRetried: a 4xx that is not backpressure
// is the caller's problem; retrying it would just repeat the mistake.
func TestRetryClientTerminalStatusNotRetried(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusBadRequest)
	}))
	defer ts.Close()

	c, waits := testRetryClient(4)
	resp, err := c.do(context.Background(), "POST", ts.URL, byteBody(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 || hits.Load() != 1 || len(*waits) != 0 {
		t.Fatalf("400 handling: status %d, %d attempts, %d waits", resp.StatusCode, hits.Load(), len(*waits))
	}
}

// TestRetryClientStopsOnCancel: a dead context ends the retry loop
// immediately — ^C must not sit out the backoff schedule.
func TestRetryClientStopsOnCancel(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	c, _ := testRetryClient(10)
	calls := 0
	c.sleep = func(ctx context.Context, d time.Duration) error {
		calls++
		cancel() // the interrupt arrives mid-backoff
		return ctx.Err()
	}
	if _, err := c.do(ctx, "POST", ts.URL, byteBody(nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 1 {
		t.Fatalf("slept %d times after cancellation", calls)
	}
}
