// Extended demonstrates the paper's §6 future work — "integrating more
// features": the core system retrieves a candidate set with the seven
// canonical descriptors, then the MPEG-7 style extension descriptors
// (edge histogram, colour layout, dominant colour) re-rank the top
// results as a refinement stage.
//
//	go run ./examples/extended
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cbvr"
	"cbvr/internal/features/ext"
	"cbvr/internal/imaging"
)

func main() {
	dir, err := os.MkdirTemp("", "cbvr-extended-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sys, err := cbvr.Open(filepath.Join(dir, "ext.db"), cbvr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Println("ingesting corpus (2 videos per category)…")
	for name, frames := range cbvr.GenerateCorpus(2, cbvr.VideoConfig{Frames: 36, Shots: 4, Seed: 64}) {
		if _, err := sys.IngestFrames(name, frames, 12); err != nil {
			log.Fatal(err)
		}
	}

	// Stage 1: core retrieval with the paper's seven features.
	_, qframes, _ := cbvr.GenerateVideo(cbvr.CategoryNature, cbvr.VideoConfig{Frames: 8, Shots: 1, Seed: 4242})
	query := qframes[4]
	matches, err := sys.Search(query, cbvr.SearchOptions{K: 8, NoPruning: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstage 1 — core ranking (7 canonical features):")
	for i, m := range matches {
		fmt.Printf("  %d. %-14s frame #%-3d d=%.4f\n", i+1, m.VideoName, m.FrameIndex, m.Distance)
	}

	// Stage 2: fetch the candidate images back from the store and re-rank
	// with the extension descriptors.
	images := make([]*imaging.Image, len(matches))
	for i, m := range matches {
		jpg, ok, err := sys.Engine().Store().KeyFrameImage(nil, m.KeyFrameID)
		if err != nil || !ok {
			log.Fatalf("frame %d: %v", m.KeyFrameID, err)
		}
		im, err := imaging.DecodeJPEG(bytes.NewReader(jpg))
		if err != nil {
			log.Fatal(err)
		}
		images[i] = im
	}
	extractors := []ext.Extractor{
		func(im *imaging.Image) ext.Descriptor { return ext.ExtractEHD(im) },
		func(im *imaging.Image) ext.Descriptor { return ext.ExtractCLD(im) },
		func(im *imaging.Image) ext.Descriptor { return ext.ExtractDCD(im) },
	}
	reranked, err := ext.Rerank(query, images, extractors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstage 2 — re-ranked by EHD + CLD + DCD (MPEG-7 extensions):")
	for pos, r := range reranked {
		m := matches[r.Index]
		fmt.Printf("  %d. %-14s frame #%-3d ext-d=%.4f (was rank %d)\n",
			pos+1, m.VideoName, m.FrameIndex, r.Distance, r.Index+1)
	}

	// Show the extension descriptors for the query itself.
	fmt.Println("\nextension descriptors of the query frame:")
	for name, exf := range ext.Extractors() {
		s := exf(query).String()
		if len(s) > 100 {
			s = s[:100] + "…"
		}
		fmt.Printf("  %s: %s\n", name, s)
	}
}
