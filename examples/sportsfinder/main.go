// Sportsfinder is the domain workload the paper's introduction motivates:
// a large mixed archive in which a user wants to find sports footage. It
// ingests a mixed corpus, issues unseen sports-frame queries, and reports
// per-query precision@10 plus the video-level ranking for a sports clip.
//
//	go run ./examples/sportsfinder
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"cbvr"
)

func main() {
	dir, err := os.MkdirTemp("", "cbvr-sports-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	sys, err := cbvr.Open(filepath.Join(dir, "sports.db"), cbvr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	fmt.Println("ingesting mixed archive (3 videos per category)…")
	for name, frames := range cbvr.GenerateCorpus(3, cbvr.VideoConfig{Frames: 48, Shots: 5, Seed: 100}) {
		if _, err := sys.IngestFrames(name, frames, 12); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Println("\nframe-level: 5 unseen sports query frames, precision@10 each")
	var totalPrec float64
	for q := 0; q < 5; q++ {
		_, frames, _ := cbvr.GenerateVideo(cbvr.CategorySports,
			cbvr.VideoConfig{Frames: 12, Shots: 2, Seed: int64(9000 + q*31)})
		matches, err := sys.Search(frames[6], cbvr.SearchOptions{K: 10})
		if err != nil {
			log.Fatal(err)
		}
		hits := 0
		for _, m := range matches {
			if strings.HasPrefix(m.VideoName, "sports_") {
				hits++
			}
		}
		prec := float64(hits) / 10
		totalPrec += prec
		fmt.Printf("  query %d: %d/10 sports results (precision %.2f)\n", q+1, hits, prec)
	}
	fmt.Printf("mean precision@10: %.2f\n", totalPrec/5)

	fmt.Println("\nvideo-level: rank the whole archive against an unseen sports clip (DP alignment)")
	_, clip, _ := cbvr.GenerateVideo(cbvr.CategorySports, cbvr.VideoConfig{Frames: 24, Shots: 3, Seed: 31337})
	vmatches, err := sys.SearchVideo(clip, cbvr.SearchOptions{K: 6})
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range vmatches {
		marker := ""
		if strings.HasPrefix(m.VideoName, "sports_") {
			marker = "  ← sports"
		}
		fmt.Printf("  %d. %-14s distance %.4f%s\n", i+1, m.VideoName, m.Distance, marker)
	}
}
