// Quickstart: create a CBVR database, ingest one synthetic video per
// category, and run a query-by-example search with a frame the system has
// never seen.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"cbvr"
)

func main() {
	dir, err := os.MkdirTemp("", "cbvr-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	sys, err := cbvr.Open(filepath.Join(dir, "quickstart.db"), cbvr.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	// Ingest one clip per category. GenerateCorpus stands in for the
	// paper's archive.org downloads.
	fmt.Println("ingesting corpus…")
	for name, frames := range cbvr.GenerateCorpus(1, cbvr.VideoConfig{Frames: 36, Shots: 4, Seed: 42}) {
		res, err := sys.IngestFrames(name, frames, 12)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-14s → video %d, %d frames, %d key frames\n",
			name, res.VideoID, res.NumFrames, len(res.KeyFrameIDs))
	}

	// Query with a frame from a *different* sports clip (different seed):
	// the system has never seen these pixels.
	_, queryFrames, _ := cbvr.GenerateVideo(cbvr.CategorySports, cbvr.VideoConfig{Frames: 8, Shots: 1, Seed: 777})
	query := queryFrames[4]

	fmt.Println("\ntop 10 matches for an unseen sports frame (all 7 features combined):")
	matches, err := sys.Search(query, cbvr.SearchOptions{K: 10})
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range matches {
		fmt.Printf("  %2d. %-14s frame #%-3d distance %.4f\n", i+1, m.VideoName, m.FrameIndex, m.Distance)
	}

	fmt.Println("\nsame query, colour histogram only:")
	matches, err = sys.Search(query, cbvr.SearchOptions{K: 5, Kinds: []cbvr.FeatureKind{cbvr.FeatureHistogram}})
	if err != nil {
		log.Fatal(err)
	}
	for i, m := range matches {
		fmt.Printf("  %2d. %-14s frame #%-3d distance %.4f\n", i+1, m.VideoName, m.FrameIndex, m.Distance)
	}
}
