// Featuredump reproduces the paper's Fig. 8: for one query frame, print
// the output of every algorithm in the exact formats the paper shows —
// the SimpleColorHistogram "RGB 256 …" string and the min/max index range,
// the six GLCM numbers, "gabor 60 …" (with its tail of zeros from the
// faithful indexing quirk), "Tamura 18 …", "Majorregions : N", "ACC 4 …"
// and the "NaiveVector java.awt.Color[…]" signature.
//
//	go run ./examples/featuredump
package main

import (
	"fmt"

	"cbvr"
	"cbvr/internal/features"
)

func main() {
	// A deterministic "query image" akin to the paper's Fig. 8 input.
	_, frames, _ := cbvr.GenerateVideo(cbvr.CategoryMovie, cbvr.VideoConfig{Frames: 4, Shots: 1, Seed: 8})
	frame := frames[2]
	fmt.Printf("Input query frame: %dx%d\n\n", frame.W, frame.H)

	strs, min, max := cbvr.DescribeFrame(frame)

	fmt.Println("Algorithm : SimpleColorHistogram")
	fmt.Printf("Output : min = %d, max=%d\n", min, max)
	fmt.Printf("Histogram : %s\n\n", strs[cbvr.FeatureHistogram])

	fmt.Println("Algorithm : GLCM_Texture")
	fmt.Printf("Output :\n%s\n\n", strs[cbvr.FeatureGLCM])

	fmt.Println("Algorithm : Gabor Texture")
	fmt.Printf("Output :\n%s\n\n", strs[cbvr.FeatureGabor])

	fmt.Println("Algorithm : Tamura Texture")
	fmt.Printf("Output :\n%s\n\n", strs[cbvr.FeatureTamura])

	regions, err := features.ParseRegions(strs[cbvr.FeatureRegions])
	if err != nil {
		panic(err)
	}
	fmt.Println("Algorithm : SimpleRegionGrowing")
	fmt.Printf("Output : Majorregions : %d\n\n", regions.Major)

	fmt.Println("Algorithm : AutoColorCorrelogram")
	fmt.Printf("Output :\n%s\n\n", strs[cbvr.FeatureCorrelogram])

	fmt.Println("Algorithm : NaiveVector")
	fmt.Printf("Output :\n%s\n", strs[cbvr.FeatureNaive])
}
