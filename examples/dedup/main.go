// Dedup demonstrates the paper's §4.1 key-frame extraction as a standalone
// shot-boundary / near-duplicate removal tool: it generates a multi-shot
// clip, sweeps the similarity threshold, and shows which frames survive at
// the paper's default (800) versus the clip's true shot boundaries.
//
//	go run ./examples/dedup
package main

import (
	"fmt"
	"log"

	"cbvr/internal/keyframe"
	"cbvr/internal/synthvid"
)

func main() {
	v := synthvid.Generate(synthvid.Movie, synthvid.Config{Frames: 60, Shots: 6, Seed: 2024})
	fmt.Printf("clip: %d frames, true shot boundaries at %v\n\n", len(v.Frames), v.ShotStarts)

	fmt.Printf("%-10s %10s %12s\n", "threshold", "keyframes", "compression")
	for _, thr := range []float64{200, 400, keyframe.DefaultThreshold, 1600, 3200, 6400} {
		kfs, err := keyframe.Extractor{Threshold: thr}.Extract(v.Frames)
		if err != nil {
			log.Fatal(err)
		}
		label := fmt.Sprintf("%.0f", thr)
		if thr == keyframe.DefaultThreshold {
			label += "*"
		}
		fmt.Printf("%-10s %10d %11.1fx\n", label, len(kfs), float64(len(v.Frames))/float64(len(kfs)))
	}
	fmt.Println("(* = paper default)")

	kfs, err := keyframe.Extractor{}.Extract(v.Frames)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nselected key frames at the paper threshold:\n")
	for _, k := range kfs {
		fmt.Printf("  frame #%-3d represents %d consecutive frames\n", k.Index, k.RunLength)
	}

	// How well do selected key frames align with the true cuts?
	hits := 0
	for _, s := range v.ShotStarts {
		for _, k := range kfs {
			if k.Index >= s-1 && k.Index <= s+1 {
				hits++
				break
			}
		}
	}
	fmt.Printf("\n%d/%d true shot boundaries have a key frame within ±1 frame\n", hits, len(v.ShotStarts))
}
