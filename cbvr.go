// Package cbvr is a content-based video retrieval system, a Go
// reproduction of Patel & Meshram, "Content Based Video Retrieval" (IJMA
// 4(5), 2012). It stores videos and their automatically selected key
// frames in an embedded database, indexes each key frame with seven visual
// descriptors (colour histogram, GLCM, Gabor, Tamura, auto colour
// correlogram, naive signature, region statistics) plus a histogram
// range-finder bucket, and answers query-by-example searches by fusing
// per-feature distances — the paper's "Combined" retrieval, which its
// Table 1 shows beating every individual feature.
//
// Retrieval runs on a concurrent sharded pipeline: the key-frame cache is
// partitioned by ID (Options.SearchShards, defaulting to GOMAXPROCS),
// each shard worker prunes and scores its own slice of the archive, and
// bounded top-K heaps select the ranking without fully sorting the
// candidate set. Results are deterministic at any parallelism; set
// SearchOptions.Workers to bound (or serialise) an individual call. See
// DESIGN.md ("Sharded search pipeline") for the architecture.
//
// # Quick start
//
//	sys, err := cbvr.Open("videos.db", cbvr.Options{})
//	// … handle err …
//	defer sys.Close()
//	res, err := sys.IngestFrames("holiday", frames, 12)
//	matches, err := sys.Search(queryFrame, cbvr.SearchOptions{K: 10})
//
// See the examples directory for runnable programs, DESIGN.md for the
// architecture and EXPERIMENTS.md for the paper reproduction.
package cbvr

import (
	"context"
	"io"

	"cbvr/internal/core"
	"cbvr/internal/cvj"
	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
	"cbvr/internal/vstore"
)

// Image is an 8-bit RGB raster; construct one with NewImage, FromJPEG or
// the synthetic generators.
type Image = imaging.Image

// NewImage allocates a black w×h image.
func NewImage(w, h int) *Image { return imaging.New(w, h) }

// FromJPEG decodes JPEG bytes into an Image.
func FromJPEG(r io.Reader) (*Image, error) { return imaging.DecodeJPEG(r) }

// Options configures a System. The zero value is ready to use.
type Options = core.Options

// SearchOptions configures one retrieval call.
type SearchOptions = core.SearchOptions

// Match is one ranked key-frame result.
type Match = core.Match

// VideoMatch is one ranked video-level result.
type VideoMatch = core.VideoMatch

// IngestResult summarises an ingested video.
type IngestResult = core.IngestResult

// ReindexResult summarises one re-indexed video.
type ReindexResult = core.ReindexResult

// StoreOptions tunes the embedded database engine.
type StoreOptions = vstore.Options

// FeatureKind identifies one of the seven descriptors.
type FeatureKind = features.Kind

// The seven feature kinds, in the paper's Table 1 column order.
const (
	FeatureGLCM            = features.KindGLCM
	FeatureGabor           = features.KindGabor
	FeatureTamura          = features.KindTamura
	FeatureHistogram       = features.KindHistogram
	FeatureCorrelogram     = features.KindCorrelogram
	FeatureRegions         = features.KindRegions
	FeatureNaive           = features.KindNaive
	NumFeatures            = int(features.NumKinds)
	DefaultJPEGQuality     = imaging.DefaultJPEGQuality
	KeyframeThresholdPaper = 800.0
)

// System is a CBVR instance backed by one database file.
type System struct {
	eng *core.Engine
}

// Open opens (creating if necessary) a CBVR system at the given database
// path. The write-ahead log lives beside it at path + ".wal".
func Open(path string, opts Options) (*System, error) {
	eng, err := core.Open(path, opts)
	if err != nil {
		return nil, err
	}
	return &System{eng: eng}, nil
}

// Close flushes and closes the database.
func (s *System) Close() error { return s.eng.Close() }

// Engine exposes the underlying engine for advanced use (evaluation
// harnesses, admin operations).
func (s *System) Engine() *core.Engine { return s.eng }

// Degraded reports the store's sticky read-only state: nil while healthy,
// otherwise the write fault that forced it read-only (reads keep serving
// the committed snapshot; mutations fail until the process restarts).
func (s *System) Degraded() error { return s.eng.Degraded() }

// IngestVideo stores a CVJ video container: frames are decoded, key frames
// selected (threshold 800 over the naive signature), all seven features
// extracted, the range bucket assigned, and everything committed in one
// transaction.
func (s *System) IngestVideo(name string, container []byte) (*IngestResult, error) {
	return s.eng.IngestVideo(name, container)
}

// IngestVideoStream ingests a CVJ container directly from a byte stream:
// frames are decoded one at a time, key frames are selected as they
// arrive, and feature extraction overlaps the decode of later frames.
// Non-key frames are never retained, so ingest memory is proportional to
// the number of key frames plus the compressed container bytes (stored as
// the VIDEO blob) — never the number of decoded frames. Use this for
// uploads and files instead of buffering whole decoded clips.
func (s *System) IngestVideoStream(name string, r io.Reader) (*IngestResult, error) {
	return s.eng.IngestVideoStream(name, r)
}

// IngestVideoStreamCtx is IngestVideoStream under a context: cancellation
// is honoured within one decode iteration, staged blob pages are discarded
// and nothing commits. Use it to tie an ingest to a client connection or a
// shutdown signal.
func (s *System) IngestVideoStreamCtx(ctx context.Context, name string, r io.Reader) (*IngestResult, error) {
	return s.eng.IngestVideoStreamCtx(ctx, name, r)
}

// IngestFrames encodes raw frames as a CVJ container and ingests it.
func (s *System) IngestFrames(name string, frames []*Image, fps int) (*IngestResult, error) {
	return s.eng.IngestFrames(name, frames, fps)
}

// IngestFramesCtx is IngestFrames under a context: cancellation aborts
// within one frame and commits nothing for the in-flight video.
func (s *System) IngestFramesCtx(ctx context.Context, name string, frames []*Image, fps int) (*IngestResult, error) {
	return s.eng.IngestFramesCtx(ctx, name, frames, fps)
}

// DeleteVideo removes a video and its key frames (the paper's
// administrator role).
func (s *System) DeleteVideo(videoID int64) error { return s.eng.DeleteVideo(videoID) }

// ReindexVideo re-extracts every descriptor of a stored video from its
// stored key-frame stream and replaces the feature rows transactionally —
// no re-upload, and the video stays searchable (old rows) until the new
// rows commit. Run it after the extraction code changes.
func (s *System) ReindexVideo(videoID int64) (*ReindexResult, error) {
	return s.eng.ReindexVideo(videoID)
}

// ReindexVideoCtx is ReindexVideo under a context: cancellation between
// stream records leaves the existing feature rows untouched.
func (s *System) ReindexVideoCtx(ctx context.Context, videoID int64) (*ReindexResult, error) {
	return s.eng.ReindexVideoCtx(ctx, videoID)
}

// ReindexAll re-indexes every stored video in V_ID order.
func (s *System) ReindexAll() ([]*ReindexResult, error) { return s.eng.ReindexAll() }

// ReindexAllCtx is ReindexAll under a context. Videos rebuilt before the
// cancellation stay rebuilt (each commits independently); the interrupted
// one is left on its old rows.
func (s *System) ReindexAllCtx(ctx context.Context) ([]*ReindexResult, error) {
	return s.eng.ReindexAllCtx(ctx)
}

// Search ranks stored key frames against a query frame. Scoring fans out
// across the engine's cache shards; it is safe to call concurrently with
// other searches and with ingestion.
func (s *System) Search(query *Image, opts SearchOptions) ([]Match, error) {
	return s.eng.SearchFrame(query, opts)
}

// SearchCtx is Search under a context: cancellation stops the shard scan
// between shards and returns the context's error.
func (s *System) SearchCtx(ctx context.Context, query *Image, opts SearchOptions) ([]Match, error) {
	return s.eng.SearchFrameCtx(ctx, query, opts)
}

// SearchVideo ranks stored videos against a query clip using
// dynamic-programming sequence alignment over key-frame descriptors.
func (s *System) SearchVideo(queryFrames []*Image, opts SearchOptions) ([]VideoMatch, error) {
	return s.eng.SearchVideo(queryFrames, opts)
}

// SearchVideoCtx is SearchVideo under a context: cancellation stops the
// ranking between per-video alignments and returns the context's error.
func (s *System) SearchVideoCtx(ctx context.Context, queryFrames []*Image, opts SearchOptions) ([]VideoMatch, error) {
	return s.eng.SearchVideoCtx(ctx, queryFrames, opts)
}

// EncodeVideo packs frames into the CVJ container format (the system's
// stand-in for MJPEG/AVI files). quality <= 0 selects the default.
func EncodeVideo(w io.Writer, frames []*Image, fps, quality int) error {
	return cvj.Encode(w, frames, fps, quality)
}

// DecodeVideo unpacks a CVJ container.
func DecodeVideo(r io.Reader) (fps int, frames []*Image, err error) {
	v, err := cvj.Decode(r)
	if err != nil {
		return 0, nil, err
	}
	return v.FPS, v.Frames, nil
}

// Category identifies a synthetic-video genre.
type Category = synthvid.Category

// The synthetic-corpus genres (the paper's archive.org categories).
const (
	CategoryElearning = synthvid.Elearning
	CategorySports    = synthvid.Sports
	CategoryCartoon   = synthvid.Cartoon
	CategoryMovie     = synthvid.Movie
	CategoryNews      = synthvid.News
	CategoryNature    = synthvid.Nature
)

// VideoConfig controls synthetic video generation.
type VideoConfig = synthvid.Config

// GenerateVideo renders a deterministic synthetic clip of the given
// category — the repository's substitute for the paper's archive.org
// downloads.
func GenerateVideo(cat Category, cfg VideoConfig) (name string, frames []*Image, fps int) {
	v := synthvid.Generate(cat, cfg)
	return v.Name, v.Frames, v.FPS
}

// GenerateCorpus renders perCategory clips of every category with
// deterministic seeds and names like "sports_03".
func GenerateCorpus(perCategory int, cfg VideoConfig) map[string][]*Image {
	out := make(map[string][]*Image)
	for _, v := range synthvid.GenerateCorpus(perCategory, cfg) {
		out[v.Name] = v.Frames
	}
	return out
}

// DescribeFrame extracts all seven descriptors of a frame and returns
// their paper-format strings keyed by feature kind, plus the §4.2 range
// bucket — the output shown in the paper's Fig. 8. The descriptors and
// the bucket come from one shared analysis-plane pass (one rescale, one
// gray conversion for everything).
func DescribeFrame(im *Image) (strings map[FeatureKind]string, min, max int) {
	planes := features.NewPlanes(im)
	set := planes.ExtractAll()
	strings = make(map[FeatureKind]string, NumFeatures)
	for _, k := range features.AllKinds() {
		if d := set.Get(k); d != nil {
			strings[k] = d.String()
		}
	}
	b := core.BucketFromPlanes(planes)
	return strings, b.Min, b.Max
}
