// Scaling benchmarks for the coarse-cell candidate pruner: pruned vs
// exact fused search over planted clustered corpora at 1k / 10k (and,
// behind CBVR_SCALE_TEST=1, 100k) key frames. CI runs the 1k and 10k
// points through tools/benchjson into BENCH_search.json, so the
// sub-linear trajectory — ns/op and evalratio per corpus size — is
// machine-readable across PRs. The recall side of the claim lives in
// internal/eval (TestRecallPruned10k / TestRecallPruned100k); these
// benchmarks record the work side.
package cbvr_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cbvr/internal/core"
	"cbvr/internal/eval"
	"cbvr/internal/synthvid"
)

// scaleBenchCorpus is one populated engine plus its regenerated query
// set at a given corpus size. Engines are cached per size for the
// process lifetime: corpus generation dominates setup, and every
// benchmark at a size shares the identical cache state.
type scaleBenchCorpus struct {
	eng     *core.Engine
	cfg     synthvid.ClusterCorpusConfig
	queries []*synthvid.DescriptorFrame
}

var (
	scaleMu      sync.Mutex
	scaleCorpora = map[int]*scaleBenchCorpus{}
)

func scaleCorpus(b *testing.B, frames int) *scaleBenchCorpus {
	b.Helper()
	scaleMu.Lock()
	defer scaleMu.Unlock()
	if c, ok := scaleCorpora[frames]; ok {
		return c
	}
	dir, err := os.MkdirTemp("", "cbvr-scale-*")
	if err != nil {
		b.Fatal(err)
	}
	shards := 4
	if frames >= 100000 {
		shards = 8
	}
	eng, err := core.Open(filepath.Join(dir, "scale.db"), core.Options{SearchShards: shards})
	if err != nil {
		b.Fatal(err)
	}
	cfg := synthvid.ClusterCorpusConfig{Frames: frames, Seed: 7}
	if err := eval.LoadClusterCorpus(eng, cfg); err != nil {
		b.Fatal(err)
	}
	c := &scaleBenchCorpus{eng: eng, cfg: cfg, queries: synthvid.ClusterQueries(cfg, 16)}
	scaleCorpora[frames] = c
	return c
}

// benchSearchScale times one fused top-10 retrieval per iteration at the
// given corpus size, pruned (the cell index engaged) or exact (the same
// pipeline with NoCellPruning). It reports the corpus size and, from the
// last iteration's work counters, the evaluation ratio the pruner
// achieved — exact row kernels over paid row kernels plus centroid
// bounds — so BENCH_search.json carries the ≥10×-fewer-evals claim as a
// number next to the latency it bought.
func benchSearchScale(b *testing.B, frames int, pruned bool) {
	c := scaleCorpus(b, frames)
	opt := core.SearchOptions{K: 10, NoCellPruning: !pruned}
	var last core.SearchStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := c.queries[i%len(c.queries)]
		_, stats, err := c.eng.SearchWithSetStats(q.Set, q.Bucket, opt)
		if err != nil {
			b.Fatal(err)
		}
		last = stats
	}
	b.StopTimer()
	// After the loop: ResetTimer deletes user metrics, so report here.
	b.ReportMetric(float64(frames), "frames")
	b.ReportMetric(last.EvalRatio(), "evalratio")
	b.ReportMetric(float64(last.TotalEvals()), "evals")
}

func BenchmarkSearchScale_Pruned1k(b *testing.B)  { benchSearchScale(b, 1000, true) }
func BenchmarkSearchScale_Exact1k(b *testing.B)   { benchSearchScale(b, 1000, false) }
func BenchmarkSearchScale_Pruned10k(b *testing.B) { benchSearchScale(b, 10000, true) }
func BenchmarkSearchScale_Exact10k(b *testing.B)  { benchSearchScale(b, 10000, false) }

// The 100k point costs minutes of corpus generation and ~1 GB of arena
// columns; like TestRecallPruned100k it only runs when CBVR_SCALE_TEST=1.
func BenchmarkSearchScale_Pruned100k(b *testing.B) {
	if os.Getenv("CBVR_SCALE_TEST") != "1" {
		b.Skip("set CBVR_SCALE_TEST=1 to run the 100k scale point")
	}
	benchSearchScale(b, 100000, true)
}

func BenchmarkSearchScale_Exact100k(b *testing.B) {
	if os.Getenv("CBVR_SCALE_TEST") != "1" {
		b.Skip("set CBVR_SCALE_TEST=1 to run the 100k scale point")
	}
	benchSearchScale(b, 100000, false)
}
