package motion

import (
	"testing"

	"cbvr/internal/synthvid"
)

func BenchmarkEstimateField(b *testing.B) {
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{Frames: 2, Shots: 1, Seed: 1})
	prev := v.Frames[0].Rescale(analysisSize, analysisSize).ToGray()
	cur := v.Frames[1].Rescale(analysisSize, analysisSize).ToGray()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EstimateField(prev, cur, 0, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractActivity12Frames(b *testing.B) {
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{Frames: 12, Shots: 1, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractActivity(v.Frames, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkActivityDistance(b *testing.B) {
	cfg := synthvid.Config{Frames: 8, Shots: 1, Seed: 3}
	a1, _ := ExtractActivity(synthvid.Generate(synthvid.Sports, cfg).Frames, 1)
	a2, _ := ExtractActivity(synthvid.Generate(synthvid.News, cfg).Frames, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a1.DistanceTo(a2)
	}
}
