package motion

import (
	"math"
	"testing"

	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
)

// shiftedPair builds two frames where the second is the first translated
// by (dx, dy), with replicated borders.
func shiftedPair(dx, dy int) (*imaging.Gray, *imaging.Gray) {
	prev := imaging.NewGray(64, 64)
	// Smooth textured content (three-step search assumes a locally
	// unimodal SAD landscape, which real video provides).
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			v := 128 + 60*math.Sin(float64(x)/4.5) + 55*math.Cos(float64(y)/6.5) +
				25*math.Sin(float64(x+y)/9.0)
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			prev.Set(x, y, uint8(v))
		}
	}
	cur := imaging.NewGray(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			sx, sy := x-dx, y-dy
			if sx < 0 {
				sx = 0
			} else if sx >= 64 {
				sx = 63
			}
			if sy < 0 {
				sy = 0
			} else if sy >= 64 {
				sy = 63
			}
			cur.Set(x, y, prev.At(sx, sy))
		}
	}
	return prev, cur
}

func TestEstimateFieldRecoversTranslation(t *testing.T) {
	for _, c := range [][2]int{{3, 0}, {0, -4}, {2, 2}, {-5, 3}} {
		prev, cur := shiftedPair(c[0], c[1])
		f, err := EstimateField(prev, cur, 8, 7)
		if err != nil {
			t.Fatal(err)
		}
		// Interior blocks (borders suffer from replication) must recover
		// the true shift.
		good, total := 0, 0
		for by := 1; by < f.BH-1; by++ {
			for bx := 1; bx < f.BW-1; bx++ {
				dx, dy := f.VectorAt(bx, by)
				total++
				if dx == c[0] && dy == c[1] {
					good++
				}
			}
		}
		if good*10 < total*8 {
			t.Errorf("shift %v: only %d/%d interior blocks recovered", c, good, total)
		}
	}
}

func TestEstimateFieldStillFrames(t *testing.T) {
	prev, _ := shiftedPair(0, 0)
	f, err := EstimateField(prev, prev, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	mean, _, zero, _ := f.Stats()
	if mean != 0 || zero != 1 {
		t.Errorf("still frames: mean=%g zero=%g", mean, zero)
	}
}

func TestEstimateFieldErrors(t *testing.T) {
	a := imaging.NewGray(64, 64)
	b := imaging.NewGray(32, 32)
	if _, err := EstimateField(a, b, 0, 0); err == nil {
		t.Error("size mismatch accepted")
	}
	tiny := imaging.NewGray(4, 4)
	if _, err := EstimateField(tiny, tiny, 8, 4); err == nil {
		t.Error("frame smaller than block accepted")
	}
}

func TestFieldStatsDirection(t *testing.T) {
	prev, cur := shiftedPair(5, 0) // rightward motion
	f, _ := EstimateField(prev, cur, 8, 7)
	_, _, _, dir := f.Stats()
	// Rightward (theta ~ 0) lands in bin DirBins/2 of [-π, π] binning.
	best, bestV := 0, 0.0
	for b, v := range dir {
		if v > bestV {
			best, bestV = b, v
		}
	}
	if best != DirBins/2 {
		t.Errorf("dominant direction bin %d, want %d (dir=%v)", best, DirBins/2, dir)
	}
}

func TestActivityStringRoundTrip(t *testing.T) {
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{Frames: 8, Shots: 1, Seed: 3})
	a, err := ExtractActivity(v.Frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseActivity(a.String())
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != a.String() {
		t.Error("round trip differs")
	}
	if d := a.DistanceTo(back); d != 0 {
		t.Errorf("round-trip distance %g", d)
	}
}

func TestParseActivityRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "Motion 1 2", "motion 1 2 3 4 5 6 7 8 9 10 11", "Motion a b c d e f g h i j k"} {
		if _, err := ParseActivity(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestActivityDiscriminatesMotionLevels(t *testing.T) {
	// Sports scenes (fast players/ball) must show more activity than
	// e-learning slides (a slow cursor).
	cfg := synthvid.Config{Frames: 10, Shots: 1, Seed: 4, Noise: 0}
	sports := synthvid.Generate(synthvid.Sports, cfg)
	slides := synthvid.Generate(synthvid.Elearning, cfg)
	as, err := ExtractActivity(sports.Frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	ae, err := ExtractActivity(slides.Frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	if as.Mean <= ae.Mean {
		t.Errorf("sports mean %.3f <= elearning mean %.3f", as.Mean, ae.Mean)
	}
	if as.ZeroFrac >= ae.ZeroFrac {
		t.Errorf("sports zero %.3f >= elearning zero %.3f", as.ZeroFrac, ae.ZeroFrac)
	}
}

func TestActivityEdgeCases(t *testing.T) {
	a, err := ExtractActivity(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Mean != 0 || a.ZeroFrac != 1 {
		t.Errorf("empty clip activity: %+v", a)
	}
	v := synthvid.Generate(synthvid.News, synthvid.Config{Frames: 1, Shots: 1, Seed: 5})
	if _, err := ExtractActivity(v.Frames, 1); err != nil {
		t.Fatal(err)
	}
	// Large stride still works.
	v2 := synthvid.Generate(synthvid.News, synthvid.Config{Frames: 6, Shots: 1, Seed: 6})
	if _, err := ExtractActivity(v2.Frames, 10); err != nil {
		t.Fatal(err)
	}
}

func TestActivityDirNormalised(t *testing.T) {
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Frames: 8, Shots: 1, Seed: 7})
	a, err := ExtractActivity(v.Frames, 1)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, d := range a.Dir {
		if d < 0 {
			t.Fatal("negative direction mass")
		}
		sum += d
	}
	if sum > 0 && math.Abs(sum-1) > 1e-9 {
		t.Errorf("direction distribution sums to %g", sum)
	}
}

func TestActivityDistanceProperties(t *testing.T) {
	cfg := synthvid.Config{Frames: 8, Shots: 1, Seed: 8}
	a, _ := ExtractActivity(synthvid.Generate(synthvid.Sports, cfg).Frames, 1)
	b, _ := ExtractActivity(synthvid.Generate(synthvid.News, cfg).Frames, 1)
	if d := a.DistanceTo(a); d != 0 {
		t.Errorf("d(x,x)=%g", d)
	}
	if math.Abs(a.DistanceTo(b)-b.DistanceTo(a)) > 1e-12 {
		t.Error("asymmetric")
	}
	if a.DistanceTo(b) < 0 {
		t.Error("negative")
	}
}
