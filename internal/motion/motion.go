// Package motion implements block-matching motion estimation and an
// MPEG-7-style motion-activity descriptor. The paper's introduction names
// motion among the canonical visual features ("Color, texture, shape,
// motion and spatial-temporal composition are the most common visual
// features used in visual similarity match") and cites motion-statistics
// retrieval as related work; this package supplies that temporal
// dimension: per-frame-pair motion fields via three-step search, folded
// into a per-clip activity signature comparable across videos.
package motion

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cbvr/internal/imaging"
)

// Block-matching parameters.
const (
	// DefaultBlockSize is the side of a matching block.
	DefaultBlockSize = 8
	// DefaultSearchRadius is the maximum displacement considered (per
	// axis) by the three-step search.
	DefaultSearchRadius = 7
	// analysisSize is the grayscale raster side for estimation: motion
	// statistics are resolution-relative, so a fixed raster keeps
	// descriptors comparable.
	analysisSize = 128
	// DirBins is the direction-histogram resolution of Activity.
	DirBins = 8
)

// Field is a per-block motion vector field between two frames.
type Field struct {
	BW, BH int // blocks per row / column
	DX, DY []int8
}

// VectorAt returns the motion vector of block (bx, by).
func (f *Field) VectorAt(bx, by int) (dx, dy int) {
	i := by*f.BW + bx
	return int(f.DX[i]), int(f.DY[i])
}

// sad computes the sum of absolute differences between the anchored block
// at (x, y) in anchor and the displaced block at (x+dx, y+dy) in target,
// or MaxInt if the displaced block leaves the frame.
func sad(anchor, target *imaging.Gray, x, y, dx, dy, bs int) int {
	tx, ty := x+dx, y+dy
	if tx < 0 || ty < 0 || tx+bs > target.W || ty+bs > target.H {
		return math.MaxInt
	}
	total := 0
	for r := 0; r < bs; r++ {
		ao := (y+r)*anchor.W + x
		to := (ty+r)*target.W + tx
		for c := 0; c < bs; c++ {
			d := int(anchor.Pix[ao+c]) - int(target.Pix[to+c])
			if d < 0 {
				d = -d
			}
			total += d
		}
	}
	return total
}

// zeroBiasPerPixel is the SAD penalty (grey levels per pixel) a non-zero
// candidate must beat in addition to the zero vector's cost. It keeps
// sensor noise in flat regions from reading as motion while real motion
// (which reduces SAD by far more) is unaffected.
const zeroBiasPerPixel = 2

// EstimateField computes forward block motion from prev to cur using
// biased three-step search: each block of prev is tracked to its best
// match in cur, so a vector points where the content moved. Both frames
// must share dimensions; blockSize/searchRadius <= 0 select the defaults.
func EstimateField(prev, cur *imaging.Gray, blockSize, searchRadius int) (*Field, error) {
	if prev.W != cur.W || prev.H != cur.H {
		return nil, fmt.Errorf("motion: frame sizes differ (%dx%d vs %dx%d)", prev.W, prev.H, cur.W, cur.H)
	}
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	if searchRadius <= 0 {
		searchRadius = DefaultSearchRadius
	}
	bw := cur.W / blockSize
	bh := cur.H / blockSize
	if bw == 0 || bh == 0 {
		return nil, fmt.Errorf("motion: frame smaller than one %d-pixel block", blockSize)
	}
	penalty := zeroBiasPerPixel * blockSize * blockSize
	f := &Field{BW: bw, BH: bh, DX: make([]int8, bw*bh), DY: make([]int8, bw*bh)}
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			x, y := bx*blockSize, by*blockSize
			bestDX, bestDY := 0, 0
			// Non-zero candidates carry the zero-bias penalty, so the
			// zero vector's effective cost is its raw SAD.
			bestCost := sad(prev, cur, x, y, 0, 0, blockSize)
			step := (searchRadius + 1) / 2
			for step >= 1 {
				improved := true
				for improved {
					improved = false
					for _, d := range [8][2]int{{-1, -1}, {0, -1}, {1, -1}, {-1, 0}, {1, 0}, {-1, 1}, {0, 1}, {1, 1}} {
						dx := bestDX + d[0]*step
						dy := bestDY + d[1]*step
						if dx < -searchRadius || dx > searchRadius || dy < -searchRadius || dy > searchRadius {
							continue
						}
						c := sad(prev, cur, x, y, dx, dy, blockSize)
						if c == math.MaxInt {
							continue
						}
						if dx != 0 || dy != 0 {
							c += penalty
						}
						if c < bestCost {
							bestCost, bestDX, bestDY = c, dx, dy
							improved = true
						}
					}
				}
				step /= 2
			}
			i := by*bw + bx
			f.DX[i] = int8(bestDX)
			f.DY[i] = int8(bestDY)
		}
	}
	return f, nil
}

// Stats summarises one field: mean magnitude, magnitude deviation, zero
// fraction and direction histogram mass.
func (f *Field) Stats() (mean, std, zeroFrac float64, dir [DirBins]float64) {
	n := float64(len(f.DX))
	if n == 0 {
		return 0, 0, 1, dir
	}
	mags := make([]float64, len(f.DX))
	zero := 0.0
	var sum float64
	for i := range f.DX {
		dx, dy := float64(f.DX[i]), float64(f.DY[i])
		m := math.Hypot(dx, dy)
		mags[i] = m
		sum += m
		if m == 0 {
			zero++
			continue
		}
		theta := math.Atan2(dy, dx) // [-π, π]
		bin := int((theta + math.Pi) / (2 * math.Pi) * DirBins)
		if bin >= DirBins {
			bin = DirBins - 1
		}
		dir[bin] += m
	}
	mean = sum / n
	var sq float64
	for _, m := range mags {
		d := m - mean
		sq += d * d
	}
	std = math.Sqrt(sq / n)
	return mean, std, zero / n, dir
}

// Activity is the clip-level motion signature: magnitude statistics and a
// motion-weighted direction distribution aggregated over frame pairs.
type Activity struct {
	Mean     float64          // mean vector magnitude (pixels/frame at 128×128)
	Std      float64          // magnitude standard deviation
	ZeroFrac float64          // fraction of still blocks
	Dir      [DirBins]float64 // normalised direction distribution
}

// ExtractActivity estimates motion over consecutive frame pairs
// (subsampled by stride for long clips; stride <= 0 means every pair) and
// aggregates the field statistics into one Activity. A clip with fewer
// than two frames yields the zero-motion signature.
func ExtractActivity(frames []*imaging.Image, stride int) (*Activity, error) {
	if stride <= 0 {
		stride = 1
	}
	out := &Activity{ZeroFrac: 1}
	if len(frames) < 2 {
		return out, nil
	}
	var grays []*imaging.Gray
	for i := 0; i < len(frames); i += stride {
		grays = append(grays, frames[i].Rescale(analysisSize, analysisSize).ToGray())
	}
	if len(grays) < 2 {
		grays = append(grays, frames[len(frames)-1].Rescale(analysisSize, analysisSize).ToGray())
	}
	pairs := 0.0
	var meanSum, stdSum, zeroSum float64
	var dirSum [DirBins]float64
	for i := 1; i < len(grays); i++ {
		f, err := EstimateField(grays[i-1], grays[i], 0, 0)
		if err != nil {
			return nil, err
		}
		mean, std, zero, dir := f.Stats()
		meanSum += mean
		stdSum += std
		zeroSum += zero
		for b := 0; b < DirBins; b++ {
			dirSum[b] += dir[b]
		}
		pairs++
	}
	out.Mean = meanSum / pairs
	out.Std = stdSum / pairs
	out.ZeroFrac = zeroSum / pairs
	var total float64
	for _, v := range dirSum {
		total += v
	}
	if total > 0 {
		for b := 0; b < DirBins; b++ {
			out.Dir[b] = dirSum[b] / total
		}
	}
	return out, nil
}

// String renders "Motion <mean> <std> <zeroFrac> <dir0..dir7>".
func (a *Activity) String() string {
	var sb strings.Builder
	sb.WriteString("Motion ")
	sb.WriteString(strconv.FormatFloat(a.Mean, 'g', -1, 64))
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(a.Std, 'g', -1, 64))
	sb.WriteByte(' ')
	sb.WriteString(strconv.FormatFloat(a.ZeroFrac, 'g', -1, 64))
	for _, v := range a.Dir {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return sb.String()
}

// ParseActivity reconstructs an Activity from its String form.
func ParseActivity(s string) (*Activity, error) {
	fields := strings.Fields(s)
	if len(fields) != 4+DirBins || fields[0] != "Motion" {
		return nil, fmt.Errorf("motion: malformed activity (%d fields)", len(fields))
	}
	vals := make([]float64, 0, 3+DirBins)
	for i, f := range fields[1:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("motion: field %d: %w", i, err)
		}
		vals = append(vals, v)
	}
	out := &Activity{Mean: vals[0], Std: vals[1], ZeroFrac: vals[2]}
	copy(out.Dir[:], vals[3:])
	return out, nil
}

// DistanceTo compares activity signatures: scaled magnitude terms plus L1
// over the direction distributions.
func (a *Activity) DistanceTo(o *Activity) float64 {
	const magScale = float64(DefaultSearchRadius)
	d := math.Abs(a.Mean-o.Mean)/magScale +
		math.Abs(a.Std-o.Std)/magScale +
		math.Abs(a.ZeroFrac-o.ZeroFrac)
	var dl1 float64
	for b := 0; b < DirBins; b++ {
		dl1 += math.Abs(a.Dir[b] - o.Dir[b])
	}
	return d + dl1/2
}
