package catalog

import (
	"bytes"
	"path/filepath"
	"testing"
	"time"

	"cbvr/internal/rangeindex"
	"cbvr/internal/vstore"
)

func openTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(filepath.Join(t.TempDir(), "cbvr.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func sampleKeyFrame(name string, min, max int, videoID int64, idx int) *KeyFrame {
	return &KeyFrame{
		Name:         name,
		Image:        []byte("\xff\xd8 jpeg-ish payload"),
		Min:          min,
		Max:          max,
		SCH:          "RGB 256 1 2 3",
		GLCM:         "1 2 3 4 5 6",
		Gabor:        "gabor 60 0.5",
		Tamura:       "Tamura 18 1 2",
		ACC:          "ACC 4 0.5",
		Naive:        "NaiveVector java.awt.Color[r=1,g=2,b=3]",
		Regions:      "Regions 3 1 2",
		MajorRegions: 2,
		VideoID:      videoID,
		FrameIndex:   idx,
	}
}

func TestSchemaMatchesPaper(t *testing.T) {
	vs := VideoStoreSchema()
	wantVS := []string{"V_ID", "V_NAME", "VIDEO", "STREAM", "DOSTORE"}
	if len(vs.Cols) != len(wantVS) {
		t.Fatalf("VIDEO_STORE has %d columns", len(vs.Cols))
	}
	for i, n := range wantVS {
		if vs.Cols[i].Name != n {
			t.Errorf("VIDEO_STORE col %d = %s, want %s", i, vs.Cols[i].Name, n)
		}
	}
	kf := KeyFramesSchema()
	// The paper's columns, in its CREATE TABLE order, must be a prefix-
	// compatible subset of ours.
	paperCols := []string{"I_ID", "I_NAME", "IMAGE", "MIN", "MAX", "SCH", "GLCM", "GABOR", "TAMURA", "MAJORREGIONS", "V_ID"}
	for _, n := range paperCols {
		if kf.ColIndex(n) < 0 {
			t.Errorf("KEY_FRAMES missing paper column %s", n)
		}
	}
	if len(kf.Indexes) == 0 || kf.Indexes[0].Name != IndexRange {
		t.Error("KEY_FRAMES must carry the (MIN,MAX) range index")
	}
}

func TestVideoRoundTrip(t *testing.T) {
	s := openTestStore(t)
	tx, _ := s.Begin()
	video := bytes.Repeat([]byte("VID"), 10000)
	stream := bytes.Repeat([]byte("STR"), 2000)
	when := time.Date(2012, 10, 1, 0, 0, 0, 0, time.UTC)
	id, err := s.InsertVideo(tx, &Video{Name: "sports_01", Video: video, Stream: stream, DoStore: when})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	info, ok, err := s.GetVideoInfo(nil, id)
	if err != nil || !ok {
		t.Fatalf("info: ok=%v err=%v", ok, err)
	}
	if info.Name != "sports_01" || info.VideoLen != int64(len(video)) || !info.DoStore.Equal(when) {
		t.Errorf("info: %+v", info)
	}
	got, ok, err := s.VideoBytes(nil, id)
	if err != nil || !ok || !bytes.Equal(got, video) {
		t.Error("video blob mismatch")
	}
	st, ok, err := s.StreamBytes(nil, id)
	if err != nil || !ok || !bytes.Equal(st, stream) {
		t.Error("stream blob mismatch")
	}
	if _, ok, _ := s.GetVideoInfo(nil, 999); ok {
		t.Error("phantom video")
	}
}

func TestKeyFrameRoundTrip(t *testing.T) {
	s := openTestStore(t)
	tx, _ := s.Begin()
	vid, _ := s.InsertVideo(tx, &Video{Name: "v"})
	kf := sampleKeyFrame("v#0001", 0, 127, vid, 1)
	id, err := s.InsertKeyFrame(tx, kf)
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	got, ok, err := s.GetKeyFrame(nil, id)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if got.Name != "v#0001" || got.Min != 0 || got.Max != 127 ||
		got.SCH != kf.SCH || got.GLCM != kf.GLCM || got.Gabor != kf.Gabor ||
		got.Tamura != kf.Tamura || got.ACC != kf.ACC || got.Naive != kf.Naive ||
		got.Regions != kf.Regions || got.MajorRegions != 2 ||
		got.VideoID != vid || got.FrameIndex != 1 {
		t.Errorf("row mismatch: %+v", got)
	}
	if got.Range() != (rangeindex.Range{Min: 0, Max: 127}) {
		t.Errorf("range: %v", got.Range())
	}
	img, ok, err := s.KeyFrameImage(nil, id)
	if err != nil || !ok || !bytes.Equal(img, kf.Image) {
		t.Error("image blob mismatch")
	}
}

func TestCandidatesByRangePruning(t *testing.T) {
	s := openTestStore(t)
	tx, _ := s.Begin()
	vid, _ := s.InsertVideo(tx, &Video{Name: "v"})
	// Frames in three different buckets.
	lowID, _ := s.InsertKeyFrame(tx, sampleKeyFrame("low", 0, 31, vid, 0))
	midID, _ := s.InsertKeyFrame(tx, sampleKeyFrame("mid", 0, 127, vid, 1))
	highID, _ := s.InsertKeyFrame(tx, sampleKeyFrame("high", 192, 255, vid, 2))
	tx.Commit()

	got, err := s.CandidatesByRange(nil, rangeindex.Range{Min: 0, Max: 31})
	if err != nil {
		t.Fatal(err)
	}
	has := func(ids []int64, want int64) bool {
		for _, id := range ids {
			if id == want {
				return true
			}
		}
		return false
	}
	if !has(got, lowID) || !has(got, midID) {
		t.Errorf("overlapping buckets missing: %v", got)
	}
	if has(got, highID) {
		t.Errorf("disjoint bucket not pruned: %v", got)
	}

	all, err := s.CandidatesByRange(nil, rangeindex.Range{Min: 0, Max: 255})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("root query found %d", len(all))
	}
}

func TestKeyFramesOfVideoAndDelete(t *testing.T) {
	s := openTestStore(t)
	tx, _ := s.Begin()
	v1, _ := s.InsertVideo(tx, &Video{Name: "a"})
	v2, _ := s.InsertVideo(tx, &Video{Name: "b"})
	for i := 0; i < 3; i++ {
		s.InsertKeyFrame(tx, sampleKeyFrame("a", 0, 255, v1, i))
	}
	s.InsertKeyFrame(tx, sampleKeyFrame("b", 0, 255, v2, 0))
	tx.Commit()

	kfs, err := s.KeyFramesOfVideo(nil, v1)
	if err != nil || len(kfs) != 3 {
		t.Fatalf("video a has %d frames, err %v", len(kfs), err)
	}
	for i := 1; i < len(kfs); i++ {
		if kfs[i].FrameIndex < kfs[i-1].FrameIndex {
			t.Error("frames out of order")
		}
	}

	tx2, _ := s.Begin()
	if err := s.DeleteVideo(tx2, v1); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	if n, _ := s.CountVideos(nil); n != 1 {
		t.Errorf("videos after delete = %d", n)
	}
	if n, _ := s.CountKeyFrames(nil); n != 1 {
		t.Errorf("key frames after delete = %d", n)
	}
	// The range index must not return dead frames.
	got, _ := s.CandidatesByRange(nil, rangeindex.Range{Min: 0, Max: 255})
	if len(got) != 1 {
		t.Errorf("index returned %d candidates after delete", len(got))
	}

	tx3, _ := s.Begin()
	defer tx3.Abort()
	if err := s.DeleteVideo(tx3, v1); err == nil {
		t.Error("double delete should fail")
	}
}

func TestRenameVideo(t *testing.T) {
	s := openTestStore(t)
	tx, _ := s.Begin()
	id, _ := s.InsertVideo(tx, &Video{Name: "old"})
	if err := s.RenameVideo(tx, id, "new"); err != nil {
		t.Fatal(err)
	}
	if err := s.RenameVideo(tx, 999, "x"); err == nil {
		t.Error("rename of missing video should fail")
	}
	tx.Commit()
	info, _, _ := s.GetVideoInfo(nil, id)
	if info.Name != "new" {
		t.Errorf("name = %q", info.Name)
	}
}

func TestListVideosOrdered(t *testing.T) {
	s := openTestStore(t)
	tx, _ := s.Begin()
	for _, n := range []string{"x", "y", "z"} {
		s.InsertVideo(tx, &Video{Name: n})
	}
	tx.Commit()
	vids, err := s.ListVideos(nil)
	if err != nil || len(vids) != 3 {
		t.Fatalf("list: %d err=%v", len(vids), err)
	}
	for i := 1; i < len(vids); i++ {
		if vids[i].ID <= vids[i-1].ID {
			t.Error("list not ordered by id")
		}
	}
}

func TestPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "c.db")
	s, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := s.Begin()
	vid, _ := s.InsertVideo(tx, &Video{Name: "persist", Video: []byte("vvv")})
	kfID, _ := s.InsertKeyFrame(tx, sampleKeyFrame("kf", 64, 127, vid, 0))
	tx.Commit()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(path, &vstore.Options{CachePages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	kf, ok, err := s2.GetKeyFrame(nil, kfID)
	if err != nil || !ok {
		t.Fatalf("key frame lost: ok=%v err=%v", ok, err)
	}
	if kf.Min != 64 || kf.Max != 127 {
		t.Errorf("range lost: %d-%d", kf.Min, kf.Max)
	}
	cands, _ := s2.CandidatesByRange(nil, rangeindex.Range{Min: 64, Max: 127})
	if len(cands) != 1 || cands[0] != kfID {
		t.Errorf("range index lost across reopen: %v", cands)
	}
}

func TestAllBucketsCount(t *testing.T) {
	b := AllBuckets()
	if len(b) != 15 { // 1 root + 2 halves + 4 quarters + 8 eighths
		t.Errorf("buckets = %d, want 15", len(b))
	}
}
