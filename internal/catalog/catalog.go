// Package catalog defines the paper's database schema (§3.4) on top of the
// vstore engine and provides typed access to it:
//
//	VIDEO_STORE(V_ID, V_NAME, VIDEO, STREAM, DOSTORE)
//	KEY_FRAMES(I_ID, I_NAME, IMAGE, MIN, MAX, SCH, GLCM, GABOR, TAMURA,
//	           MAJORREGIONS, V_ID, …)
//
// Exactly as in the paper, VIDEO is the full video object (here a CVJ
// container), STREAM is the "stream of keyframes" (a CVJ of only the key
// frames), IMAGE is the key frame JPEG, MIN/MAX is the §4.2 range-finder
// bucket, and the feature columns carry the §4.3–4.8 string
// serialisations.
//
// Extensions beyond the paper's CREATE TABLE (documented in DESIGN.md):
// ACC and NAIVE feature columns (Table 1 evaluates both features, so they
// must be stored), REGIONS (the full region-growing triple backing the
// MAJORREGIONS number) and FRAME_IDX (the key frame's position inside its
// video, required by the dynamic-programming video similarity).
package catalog

import (
	"fmt"
	"time"

	"cbvr/internal/rangeindex"
	"cbvr/internal/vstore"
)

// Table and index names.
const (
	TableVideoStore = "VIDEO_STORE"
	TableKeyFrames  = "KEY_FRAMES"
	IndexRange      = "KF_RANGE" // secondary index over (MIN, MAX)
)

// VideoStoreSchema returns the VIDEO_STORE schema.
func VideoStoreSchema() vstore.Schema {
	return vstore.Schema{
		Name: TableVideoStore,
		Cols: []vstore.Column{
			{Name: "V_ID", Type: vstore.TypeInt64, NotNull: true},
			{Name: "V_NAME", Type: vstore.TypeText},
			{Name: "VIDEO", Type: vstore.TypeBlob},
			{Name: "STREAM", Type: vstore.TypeBlob},
			{Name: "DOSTORE", Type: vstore.TypeTime},
		},
	}
}

// KeyFramesSchema returns the KEY_FRAMES schema.
func KeyFramesSchema() vstore.Schema {
	return vstore.Schema{
		Name: TableKeyFrames,
		Cols: []vstore.Column{
			{Name: "I_ID", Type: vstore.TypeInt64, NotNull: true},
			{Name: "I_NAME", Type: vstore.TypeText, NotNull: true},
			{Name: "IMAGE", Type: vstore.TypeBlob},
			{Name: "MIN", Type: vstore.TypeInt64, NotNull: true},
			{Name: "MAX", Type: vstore.TypeInt64, NotNull: true},
			{Name: "SCH", Type: vstore.TypeText},
			{Name: "GLCM", Type: vstore.TypeText},
			{Name: "GABOR", Type: vstore.TypeText},
			{Name: "TAMURA", Type: vstore.TypeText},
			{Name: "MAJORREGIONS", Type: vstore.TypeInt64},
			{Name: "V_ID", Type: vstore.TypeInt64},
			{Name: "ACC", Type: vstore.TypeText},
			{Name: "NAIVE", Type: vstore.TypeText},
			{Name: "REGIONS", Type: vstore.TypeText},
			{Name: "FRAME_IDX", Type: vstore.TypeInt64},
		},
		Indexes: []vstore.IndexSpec{
			{Name: IndexRange, Cols: []string{"MIN", "MAX"}},
		},
	}
}

// Video is a VIDEO_STORE row. Video and Stream are raw CVJ container
// bytes; they are nil when loaded lazily (see Store.VideoBytes). VideoRef
// and StreamRef, when set, reference blob chains already written through a
// vstore.BlobWriter — the spooled ingest path streams container bytes into
// the store page by page and inserts the references, so the compressed
// container never has to sit in memory.
type Video struct {
	ID        int64
	Name      string
	Video     []byte
	Stream    []byte
	VideoRef  vstore.BlobRef
	StreamRef vstore.BlobRef
	DoStore   time.Time
}

// VideoInfo is a listing row without the BLOB payloads.
type VideoInfo struct {
	ID       int64
	Name     string
	VideoLen int64
	DoStore  time.Time
}

// KeyFrame is a KEY_FRAMES row. Image carries the JPEG bytes on insert;
// reads return ImageRef and fetch bytes lazily via Store.KeyFrameImage.
type KeyFrame struct {
	ID           int64
	Name         string
	Image        []byte
	ImageRef     vstore.BlobRef
	Min, Max     int
	SCH          string
	GLCM         string
	Gabor        string
	Tamura       string
	ACC          string
	Naive        string
	Regions      string
	MajorRegions int
	VideoID      int64
	FrameIndex   int
}

// Range returns the frame's §4.2 bucket.
func (k *KeyFrame) Range() rangeindex.Range {
	return rangeindex.Range{Min: k.Min, Max: k.Max}
}

// Store wraps a vstore DB holding the CBVR schema.
type Store struct {
	db     *vstore.DB
	videos *vstore.Table
	frames *vstore.Table
}

// Open opens (creating if necessary) a CBVR store at path.
func Open(path string, opts *vstore.Options) (*Store, error) {
	db, err := vstore.Open(path, opts)
	if err != nil {
		return nil, err
	}
	s := &Store{db: db}
	if err := s.ensureSchema(); err != nil {
		db.Close()
		return nil, err
	}
	if s.videos, err = db.Table(TableVideoStore); err != nil {
		db.Close()
		return nil, err
	}
	if s.frames, err = db.Table(TableKeyFrames); err != nil {
		db.Close()
		return nil, err
	}
	return s, nil
}

func (s *Store) ensureSchema() error {
	have := make(map[string]bool)
	for _, n := range s.db.TableNames() {
		have[n] = true
	}
	if have[TableVideoStore] && have[TableKeyFrames] {
		return nil
	}
	tx, err := s.db.Begin()
	if err != nil {
		return err
	}
	if !have[TableVideoStore] {
		if _, err := s.db.CreateTable(tx, VideoStoreSchema()); err != nil {
			tx.Abort()
			return err
		}
	}
	if !have[TableKeyFrames] {
		if _, err := s.db.CreateTable(tx, KeyFramesSchema()); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// Close closes the underlying database.
func (s *Store) Close() error { return s.db.Close() }

// DB exposes the underlying engine (stats, checkpoints, crash tests).
func (s *Store) DB() *vstore.DB { return s.db }

// Begin starts a write transaction on the underlying database.
func (s *Store) Begin() (*vstore.Txn, error) { return s.db.Begin() }

// InsertVideo adds a VIDEO_STORE row inside tx, returning V_ID.
func (s *Store) InsertVideo(tx *vstore.Txn, v *Video) (int64, error) {
	pk := vstore.NullV(vstore.TypeInt64)
	if v.ID != 0 {
		pk = vstore.Int64(v.ID)
	}
	when := v.DoStore
	if when.IsZero() {
		when = time.Unix(0, 0).UTC()
	}
	video := vstore.Blob(v.Video)
	if !v.VideoRef.IsZero() {
		video = vstore.BlobRefV(v.VideoRef)
	}
	stream := vstore.Blob(v.Stream)
	if !v.StreamRef.IsZero() {
		stream = vstore.BlobRefV(v.StreamRef)
	}
	id, err := s.videos.Insert(tx, []vstore.Value{
		pk,
		vstore.Text(v.Name),
		video,
		stream,
		vstore.TimeV(when),
	})
	if err != nil {
		return 0, fmt.Errorf("catalog: insert video %q: %w", v.Name, err)
	}
	v.ID = id
	return id, nil
}

// GetVideoInfo fetches a video row without its BLOB payloads.
func (s *Store) GetVideoInfo(tx *vstore.Txn, id int64) (*VideoInfo, bool, error) {
	row, ok, err := s.videos.Get(tx, id)
	if err != nil || !ok {
		return nil, false, err
	}
	return &VideoInfo{
		ID:       row[0].Int,
		Name:     row[1].Str,
		VideoLen: row[2].Blob.Len,
		DoStore:  row[4].Time,
	}, true, nil
}

// VideoBytes fetches the VIDEO blob (the CVJ container).
func (s *Store) VideoBytes(tx *vstore.Txn, id int64) ([]byte, bool, error) {
	row, ok, err := s.videos.Get(tx, id)
	if err != nil || !ok {
		return nil, false, err
	}
	b, err := s.db.ReadBlob(tx, row[2].Blob)
	return b, true, err
}

// VideoRefs fetches the VIDEO and STREAM blob references without reading
// either payload — the entry point for streaming readers (export,
// re-index) that must not materialise the container.
func (s *Store) VideoRefs(tx *vstore.Txn, id int64) (video, stream vstore.BlobRef, ok bool, err error) {
	row, ok, err := s.videos.Get(tx, id)
	if err != nil || !ok {
		return vstore.BlobRef{}, vstore.BlobRef{}, false, err
	}
	return row[2].Blob, row[3].Blob, true, nil
}

// StreamBytes fetches the STREAM blob (key-frame CVJ).
func (s *Store) StreamBytes(tx *vstore.Txn, id int64) ([]byte, bool, error) {
	row, ok, err := s.videos.Get(tx, id)
	if err != nil || !ok {
		return nil, false, err
	}
	b, err := s.db.ReadBlob(tx, row[3].Blob)
	return b, true, err
}

// RenameVideo updates V_NAME (admin "modification" use case).
func (s *Store) RenameVideo(tx *vstore.Txn, id int64, name string) error {
	row, ok, err := s.videos.Get(tx, id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("catalog: no video %d", id)
	}
	row[1] = vstore.Text(name)
	return s.videos.Update(tx, id, row)
}

// DeleteVideo removes a video row and all of its key frames.
func (s *Store) DeleteVideo(tx *vstore.Txn, id int64) error {
	ok, err := s.videos.Delete(tx, id)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("catalog: no video %d", id)
	}
	kfs, err := s.KeyFramesOfVideo(tx, id)
	if err != nil {
		return err
	}
	for _, kf := range kfs {
		if _, err := s.frames.Delete(tx, kf.ID); err != nil {
			return err
		}
	}
	return nil
}

// ListVideos returns all videos in V_ID order, without BLOBs.
func (s *Store) ListVideos(tx *vstore.Txn) ([]*VideoInfo, error) {
	var out []*VideoInfo
	err := s.videos.Scan(tx, func(pk int64, row []vstore.Value) (bool, error) {
		out = append(out, &VideoInfo{
			ID:       pk,
			Name:     row[1].Str,
			VideoLen: row[2].Blob.Len,
			DoStore:  row[4].Time,
		})
		return true, nil
	})
	return out, err
}

// InsertKeyFrame adds a KEY_FRAMES row inside tx, returning I_ID.
func (s *Store) InsertKeyFrame(tx *vstore.Txn, k *KeyFrame) (int64, error) {
	pk := vstore.NullV(vstore.TypeInt64)
	if k.ID != 0 {
		pk = vstore.Int64(k.ID)
	}
	id, err := s.frames.Insert(tx, []vstore.Value{
		pk,
		vstore.Text(k.Name),
		vstore.Blob(k.Image),
		vstore.Int64(int64(k.Min)),
		vstore.Int64(int64(k.Max)),
		vstore.Text(k.SCH),
		vstore.Text(k.GLCM),
		vstore.Text(k.Gabor),
		vstore.Text(k.Tamura),
		vstore.Int64(int64(k.MajorRegions)),
		vstore.Int64(k.VideoID),
		vstore.Text(k.ACC),
		vstore.Text(k.Naive),
		vstore.Text(k.Regions),
		vstore.Int64(int64(k.FrameIndex)),
	})
	if err != nil {
		return 0, fmt.Errorf("catalog: insert key frame %q: %w", k.Name, err)
	}
	k.ID = id
	return id, nil
}

// UpdateKeyFrame replaces the KEY_FRAMES row at k.ID inside tx. When
// k.Image is nil the existing IMAGE blob chain (k.ImageRef) is kept as-is
// — the re-index path rewrites every feature column without touching the
// stored JPEG; a non-nil Image writes a fresh chain and frees the old one.
func (s *Store) UpdateKeyFrame(tx *vstore.Txn, k *KeyFrame) error {
	image := vstore.Blob(k.Image)
	if k.Image == nil && !k.ImageRef.IsZero() {
		image = vstore.BlobRefV(k.ImageRef)
	}
	err := s.frames.Update(tx, k.ID, []vstore.Value{
		vstore.Int64(k.ID),
		vstore.Text(k.Name),
		image,
		vstore.Int64(int64(k.Min)),
		vstore.Int64(int64(k.Max)),
		vstore.Text(k.SCH),
		vstore.Text(k.GLCM),
		vstore.Text(k.Gabor),
		vstore.Text(k.Tamura),
		vstore.Int64(int64(k.MajorRegions)),
		vstore.Int64(k.VideoID),
		vstore.Text(k.ACC),
		vstore.Text(k.Naive),
		vstore.Text(k.Regions),
		vstore.Int64(int64(k.FrameIndex)),
	})
	if err != nil {
		return fmt.Errorf("catalog: update key frame %d: %w", k.ID, err)
	}
	return nil
}

func keyFrameFromRow(pk int64, row []vstore.Value) *KeyFrame {
	return &KeyFrame{
		ID:           pk,
		Name:         row[1].Str,
		ImageRef:     row[2].Blob,
		Min:          int(row[3].Int),
		Max:          int(row[4].Int),
		SCH:          row[5].Str,
		GLCM:         row[6].Str,
		Gabor:        row[7].Str,
		Tamura:       row[8].Str,
		MajorRegions: int(row[9].Int),
		VideoID:      row[10].Int,
		ACC:          row[11].Str,
		Naive:        row[12].Str,
		Regions:      row[13].Str,
		FrameIndex:   int(row[14].Int),
	}
}

// GetKeyFrame fetches a key-frame row (image lazy).
func (s *Store) GetKeyFrame(tx *vstore.Txn, id int64) (*KeyFrame, bool, error) {
	row, ok, err := s.frames.Get(tx, id)
	if err != nil || !ok {
		return nil, false, err
	}
	return keyFrameFromRow(id, row), true, nil
}

// KeyFrameImage fetches the IMAGE blob (JPEG bytes) of a key frame.
func (s *Store) KeyFrameImage(tx *vstore.Txn, id int64) ([]byte, bool, error) {
	row, ok, err := s.frames.Get(tx, id)
	if err != nil || !ok {
		return nil, false, err
	}
	b, err := s.db.ReadBlob(tx, row[2].Blob)
	return b, true, err
}

// ScanKeyFrames visits all key frames in I_ID order (images lazy).
func (s *Store) ScanKeyFrames(tx *vstore.Txn, fn func(*KeyFrame) (bool, error)) error {
	return s.frames.Scan(tx, func(pk int64, row []vstore.Value) (bool, error) {
		return fn(keyFrameFromRow(pk, row))
	})
}

// KeyFramesOfVideo returns the video's key frames in frame order.
func (s *Store) KeyFramesOfVideo(tx *vstore.Txn, videoID int64) ([]*KeyFrame, error) {
	var out []*KeyFrame
	err := s.ScanKeyFrames(tx, func(k *KeyFrame) (bool, error) {
		if k.VideoID == videoID {
			out = append(out, k)
		}
		return true, nil
	})
	return out, err
}

// CandidatesByRange returns the IDs of key frames whose (MIN, MAX) bucket
// overlaps the query range, using the KF_RANGE secondary index. This is
// the §4.2 pruning step.
func (s *Store) CandidatesByRange(tx *vstore.Txn, q rangeindex.Range) ([]int64, error) {
	var out []int64
	for _, r := range AllBuckets() {
		if !r.Overlaps(q) {
			continue
		}
		lo, hi, err := vstore.IndexPrefixRange([]int64{int64(r.Min), int64(r.Max)})
		if err != nil {
			return nil, err
		}
		err = s.frames.IndexScan(tx, IndexRange, lo, hi, func(pk int64) (bool, error) {
			out = append(out, pk)
			return true, nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AllBuckets enumerates every bucket the §4.2 range finder can produce:
// the root, two halves, four quarters and eight eighths of [0,255].
func AllBuckets() []rangeindex.Range {
	out := []rangeindex.Range{{Min: 0, Max: 255}}
	for _, w := range []int{128, 64, 32} {
		for lo := 0; lo < 256; lo += w {
			out = append(out, rangeindex.Range{Min: lo, Max: lo + w - 1})
		}
	}
	return out
}

// CountVideos returns the VIDEO_STORE row count.
func (s *Store) CountVideos(tx *vstore.Txn) (int, error) { return s.videos.Count(tx) }

// CountKeyFrames returns the KEY_FRAMES row count.
func (s *Store) CountKeyFrames(tx *vstore.Txn) (int, error) { return s.frames.Count(tx) }
