package rangeindex

import (
	"math/rand"
	"testing"
)

// randRange draws a plausible bucket: one of the fixed tree levels.
func randRange(rng *rand.Rand) Range {
	switch rng.Intn(4) {
	case 0:
		return Range{0, 255}
	case 1:
		lo := 128 * rng.Intn(2)
		return Range{lo, lo + 127}
	case 2:
		lo := 64 * rng.Intn(4)
		return Range{lo, lo + 63}
	default:
		lo := 32 * rng.Intn(8)
		return Range{lo, lo + 31}
	}
}

// TestShardedIndexMatchesFlat inserts the same population into a flat
// Index and a ShardedIndex and checks Len, Candidates and All agree, as
// does the union of per-shard candidate scans (the path the search
// pipeline uses).
func TestShardedIndexMatchesFlat(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	flat := New()
	sharded := NewSharded(7)
	assigned := make(map[int64]Range)
	for id := int64(1); id <= 400; id++ {
		r := randRange(rng)
		flat.Insert(id, r)
		sharded.Insert(id, r)
		assigned[id] = r
	}
	if flat.Len() != sharded.Len() {
		t.Fatalf("Len: flat %d sharded %d", flat.Len(), sharded.Len())
	}
	queries := []Range{{0, 255}, {0, 127}, {128, 255}, {64, 127}, {96, 127}, {224, 255}, {0, 31}}
	for _, q := range queries {
		want := flat.Candidates(q)
		got := sharded.Candidates(q)
		if len(want) != len(got) {
			t.Fatalf("query %v: flat %d ids, sharded %d", q, len(want), len(got))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("query %v: id[%d] = %d, want %d", q, i, got[i], want[i])
			}
		}
		// Per-shard scans must partition the merged result with no
		// duplicates and correct shard ownership.
		seen := make(map[int64]bool)
		for s := 0; s < sharded.NumShards(); s++ {
			for _, id := range sharded.Shard(s).Candidates(q) {
				if seen[id] {
					t.Fatalf("query %v: id %d in two shards", q, id)
				}
				if sharded.ShardFor(id) != s {
					t.Fatalf("id %d scanned in shard %d, owned by %d", id, s, sharded.ShardFor(id))
				}
				seen[id] = true
			}
		}
		if len(seen) != len(want) {
			t.Fatalf("query %v: per-shard union %d ids, want %d", q, len(seen), len(want))
		}
	}

	// Remove half the population from both and recheck totals.
	for id := int64(1); id <= 400; id += 2 {
		if !flat.Remove(id, assigned[id]) || !sharded.Remove(id, assigned[id]) {
			t.Fatalf("remove %d failed", id)
		}
	}
	if flat.Len() != 200 || sharded.Len() != 200 {
		t.Fatalf("post-remove Len: flat %d sharded %d", flat.Len(), sharded.Len())
	}
	all := sharded.All()
	if len(all) != 200 {
		t.Fatalf("All() = %d ids", len(all))
	}
	for _, id := range all {
		if id%2 != 0 {
			t.Fatalf("removed id %d still indexed", id)
		}
	}
}

// TestShardedIndexClampsShardCount verifies n < 1 degrades to one shard.
func TestShardedIndexClampsShardCount(t *testing.T) {
	s := NewSharded(0)
	if s.NumShards() != 1 {
		t.Fatalf("NumShards = %d", s.NumShards())
	}
	s.Insert(9, Range{0, 127})
	if got := s.Candidates(Range{0, 255}); len(got) != 1 || got[0] != 9 {
		t.Fatalf("Candidates = %v", got)
	}
}
