// Package rangeindex implements the paper's §4.2 "Histogram Based Range
// Finder" index (Fig. 7): a fixed three-level binary tree over grey-level
// histogram mass. A frame descends from [0,255] into halves, quarters and
// eighths as long as the candidate sub-range holds more than a threshold
// percentage of the histogram mass (55% at the first level, 60% below);
// where the criterion fails, the frame is grouped at the last satisfied
// level. The resulting [min,max] pair is stored in the KEY_FRAMES MIN/MAX
// columns and used to prune candidates at query time.
package rangeindex

import (
	"fmt"
	"sort"
	"sync"
)

// Paper constants: the pseudo-code divides bucket mass by 900.0 — percent
// for the 300×300 analysis raster — and compares with 55 (level 1) and 60
// (levels 2–3).
const (
	PaperDivisor         = 900.0
	PaperLevel1Threshold = 55.0
	PaperDeepThreshold   = 60.0
	PaperLevels          = 3
)

// AssignFaithful is a line-by-line port of the paper's §4.2 pseudo-code,
// including its off-by-one quirks (each sub-range sum iterates "i < hi"
// and therefore drops the top bin: 0..62 for [0,63], 64..126 for [64,127],
// and so on). The histogram must come from the 300×300 analysis raster for
// the /900 percent scaling to be meaningful.
func AssignFaithful(hist *[256]int) (min, max int) {
	sumRange := func(lo, hi int) float64 { // sums bins [lo, hi) as the paper does
		s := 0
		for i := lo; i < hi; i++ {
			s += hist[i]
		}
		return float64(s) / PaperDivisor
	}

	// 1st block test: lower half vs upper half at 55%.
	min, max = 0, 255
	if sumRange(0, 127) > PaperLevel1Threshold {
		min, max = 0, 127
	} else {
		min, max = 128, 255
	}

	// 2nd block test: quarters at 60%.
	switch {
	case min == 0 && max == 127:
		if sumRange(0, 63) > PaperDeepThreshold {
			min, max = 0, 63
		} else if sumRange(64, 127) > PaperDeepThreshold {
			min, max = 64, 127
		}
	case min == 128 && max == 255:
		if sumRange(128, 191) > PaperDeepThreshold {
			min, max = 128, 191
		} else if sumRange(192, 255) > PaperDeepThreshold {
			min, max = 192, 255
		}
	}

	// 3rd block test: eighths at 60%.
	switch {
	case min == 0 && max == 63:
		if sumRange(0, 31) > PaperDeepThreshold {
			min, max = 0, 31
		} else if sumRange(32, 63) > PaperDeepThreshold {
			min, max = 32, 63
		}
	case min == 64 && max == 127:
		if sumRange(64, 95) > PaperDeepThreshold {
			min, max = 64, 95
		} else if sumRange(96, 127) > PaperDeepThreshold {
			min, max = 96, 127
		}
	case min == 128 && max == 191:
		if sumRange(128, 159) > PaperDeepThreshold {
			min, max = 128, 159
		} else if sumRange(160, 191) > PaperDeepThreshold {
			min, max = 160, 191
		}
	case min == 192 && max == 255:
		if sumRange(192, 223) > PaperDeepThreshold {
			min, max = 192, 223
		} else if sumRange(224, 255) > PaperDeepThreshold {
			min, max = 224, 255
		}
	}
	return min, max
}

// Assign is the generalised range finder used for ablation: correct
// inclusive bin boundaries, an arbitrary level count, and mass measured
// against the true pixel total. levels counts descents below the root
// (levels == 3 mirrors the paper's depth). t1 is the first-level threshold
// percentage and tDeep the threshold for all deeper levels.
func Assign(hist *[256]int, total int, levels int, t1, tDeep float64) (min, max int) {
	if total <= 0 {
		for _, c := range hist {
			total += c
		}
	}
	if total == 0 {
		return 0, 255
	}
	pct := func(lo, hi int) float64 { // inclusive [lo, hi]
		s := 0
		for i := lo; i <= hi; i++ {
			s += hist[i]
		}
		return float64(s) / float64(total) * 100
	}
	min, max = 0, 255
	thr := t1
	for l := 0; l < levels; l++ {
		width := (max - min + 1) / 2
		if width < 1 {
			break
		}
		if pct(min, min+width-1) > thr {
			max = min + width - 1
		} else if pct(min+width, max) > thr {
			min = min + width
		} else {
			break
		}
		thr = tDeep
	}
	return min, max
}

// Range is a [Min,Max] grey-level bucket.
type Range struct {
	Min, Max int
}

// Overlaps reports whether two ranges intersect. A frame grouped at a
// shallow level (wide range) may be visually close to one grouped deeper
// inside that range, so query-time pruning keeps every intersecting
// bucket.
func (r Range) Overlaps(o Range) bool {
	return r.Min <= o.Max && o.Min <= r.Max
}

// Contains reports whether r fully contains o.
func (r Range) Contains(o Range) bool {
	return r.Min <= o.Min && o.Max <= r.Max
}

func (r Range) String() string { return fmt.Sprintf("[%d,%d]", r.Min, r.Max) }

// Index groups frame IDs by their assigned range. It is safe for
// concurrent use.
type Index struct {
	mu      sync.RWMutex
	buckets map[Range][]int64
	n       int
}

// New returns an empty index.
func New() *Index {
	return &Index{buckets: make(map[Range][]int64)}
}

// Insert adds id under the given range bucket.
func (ix *Index) Insert(id int64, r Range) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.buckets[r] = append(ix.buckets[r], id)
	ix.n++
}

// Remove deletes id from the given bucket, reporting whether it was found.
func (ix *Index) Remove(id int64, r Range) bool {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ids := ix.buckets[r]
	for i, v := range ids {
		if v == id {
			ids[i] = ids[len(ids)-1]
			ids = ids[:len(ids)-1]
			if len(ids) == 0 {
				delete(ix.buckets, r)
			} else {
				ix.buckets[r] = ids
			}
			ix.n--
			return true
		}
	}
	return false
}

// Len reports the number of indexed IDs.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.n
}

// Candidates returns the IDs of every frame whose bucket overlaps the
// query range, in ascending ID order.
func (ix *Index) Candidates(q Range) []int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var out []int64
	for r, ids := range ix.buckets {
		if r.Overlaps(q) {
			out = append(out, ids...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns every indexed ID in ascending order.
func (ix *Index) All() []int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make([]int64, 0, ix.n)
	for _, ids := range ix.buckets {
		out = append(out, ids...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// BucketSizes reports the population of every bucket (Fig. 7 diagnostics).
func (ix *Index) BucketSizes() map[Range]int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	out := make(map[Range]int, len(ix.buckets))
	for r, ids := range ix.buckets {
		out[r] = len(ids)
	}
	return out
}

// PruningFactor estimates query selectivity: the mean fraction of the
// index scanned per distinct bucket used as a query. 1.0 means no pruning.
func (ix *Index) PruningFactor() float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.n == 0 || len(ix.buckets) == 0 {
		return 1
	}
	var sum float64
	for q := range ix.buckets {
		scanned := 0
		for r, ids := range ix.buckets {
			if r.Overlaps(q) {
				scanned += len(ids)
			}
		}
		sum += float64(scanned) / float64(ix.n)
	}
	return sum / float64(len(ix.buckets))
}
