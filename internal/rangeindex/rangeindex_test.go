package rangeindex

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// histWithMass builds a 300×300-scale histogram with the given share of
// mass centred in [lo,hi] and the rest spread evenly elsewhere.
func histWithMass(lo, hi int, pct float64) [256]int {
	var h [256]int
	total := 90000
	in := int(float64(total) * pct / 100)
	span := hi - lo + 1
	for i := lo; i <= hi; i++ {
		h[i] = in / span
	}
	rest := total - (in/span)*span
	out := 0
	for i := 0; i < 256; i++ {
		if i < lo || i > hi {
			out++
		}
	}
	if out > 0 {
		per := rest / out
		for i := 0; i < 256; i++ {
			if i < lo || i > hi {
				h[i] = per
			}
		}
	}
	return h
}

func TestAssignFaithfulDescendsToEighth(t *testing.T) {
	// 95% of mass in [0,31] → should reach the deepest level.
	h := histWithMass(0, 30, 95)
	min, max := AssignFaithful(&h)
	if min != 0 || max != 31 {
		t.Errorf("got [%d,%d], want [0,31]", min, max)
	}
}

func TestAssignFaithfulStopsAtHalf(t *testing.T) {
	// Mass spread evenly over [0,127]: level 1 passes (≈100% > 55) but no
	// quarter reaches 60%.
	h := histWithMass(0, 127, 99)
	min, max := AssignFaithful(&h)
	if min != 0 || max != 127 {
		t.Errorf("got [%d,%d], want [0,127]", min, max)
	}
}

func TestAssignFaithfulUpperBranch(t *testing.T) {
	h := histWithMass(192, 250, 90)
	min, max := AssignFaithful(&h)
	if min < 128 {
		t.Errorf("got [%d,%d], expected upper half descent", min, max)
	}
}

func TestAssignFaithfulDarkFrameMatchesPaperSample(t *testing.T) {
	// The paper's Fig. 8 sample (a dark frame) reports "min = 0,
	// max=127": most mass in the lower half but not concentrated enough
	// to reach a quarter. Mass 70% in [0,100] (spread over a full
	// quarter-crossing span).
	h := histWithMass(0, 100, 75)
	min, max := AssignFaithful(&h)
	if min != 0 || max != 127 {
		t.Errorf("got [%d,%d], want [0,127] as in Fig. 8", min, max)
	}
}

// The faithful and generalised assigners agree on strongly concentrated
// histograms (where the off-by-one bins don't matter).
func TestFaithfulVsGeneralisedAgreement(t *testing.T) {
	for _, c := range []struct{ lo, hi int }{{0, 20}, {40, 60}, {130, 150}, {230, 250}} {
		h := histWithMass(c.lo, c.hi, 97)
		fmin, fmax := AssignFaithful(&h)
		gmin, gmax := Assign(&h, 90000, PaperLevels, PaperLevel1Threshold, PaperDeepThreshold)
		if fmin != gmin || fmax != gmax {
			t.Errorf("mass at [%d,%d]: faithful [%d,%d] vs general [%d,%d]",
				c.lo, c.hi, fmin, fmax, gmin, gmax)
		}
	}
}

// Assign always returns one of the 15 canonical buckets and the bucket
// contains... at minimum, is a valid aligned range.
func TestAssignProducesCanonicalBuckets(t *testing.T) {
	valid := make(map[Range]bool)
	valid[Range{0, 255}] = true
	for _, w := range []int{128, 64, 32} {
		for lo := 0; lo < 256; lo += w {
			valid[Range{lo, lo + w - 1}] = true
		}
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var h [256]int
		for i := range h {
			h[i] = rng.Intn(1000)
		}
		min, max := AssignFaithful(&h)
		if !valid[Range{min, max}] {
			return false
		}
		gmin, gmax := Assign(&h, 0, PaperLevels, PaperLevel1Threshold, PaperDeepThreshold)
		return valid[Range{gmin, gmax}]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAssignEmptyHistogram(t *testing.T) {
	var h [256]int
	min, max := Assign(&h, 0, 3, 55, 60)
	if min != 0 || max != 255 {
		t.Errorf("empty histogram: [%d,%d]", min, max)
	}
}

func TestAssignDeeperLevels(t *testing.T) {
	// The generalised assigner can go past the paper's 3 levels.
	h := histWithMass(0, 10, 99)
	min, max := Assign(&h, 0, 5, 55, 60)
	if max-min > 15 {
		t.Errorf("5 levels should reach width 8..16: [%d,%d]", min, max)
	}
}

func TestRangeOverlapContains(t *testing.T) {
	a := Range{0, 127}
	b := Range{64, 95}
	c := Range{128, 255}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("nested ranges must overlap")
	}
	if a.Overlaps(c) {
		t.Error("disjoint ranges overlap")
	}
	if !a.Contains(b) || b.Contains(a) {
		t.Error("containment wrong")
	}
	if !a.Overlaps(a) || !a.Contains(a) {
		t.Error("self relations wrong")
	}
	if a.String() != "[0,127]" {
		t.Errorf("String: %s", a.String())
	}
}

func TestIndexInsertRemoveCandidates(t *testing.T) {
	ix := New()
	ix.Insert(1, Range{0, 127})
	ix.Insert(2, Range{0, 63})
	ix.Insert(3, Range{128, 255})
	ix.Insert(4, Range{0, 255})
	if ix.Len() != 4 {
		t.Fatalf("len = %d", ix.Len())
	}
	got := ix.Candidates(Range{0, 63})
	want := []int64{1, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("candidates = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidates = %v, want %v", got, want)
		}
	}
	if !ix.Remove(2, Range{0, 63}) {
		t.Error("remove failed")
	}
	if ix.Remove(2, Range{0, 63}) {
		t.Error("double remove succeeded")
	}
	if ix.Len() != 3 {
		t.Errorf("len after remove = %d", ix.Len())
	}
	all := ix.All()
	if len(all) != 3 {
		t.Errorf("All = %v", all)
	}
}

func TestIndexBucketSizesAndPruning(t *testing.T) {
	ix := New()
	// Two disjoint clusters → pruning factor well below 1.
	for i := int64(0); i < 50; i++ {
		ix.Insert(i, Range{0, 31})
	}
	for i := int64(50); i < 100; i++ {
		ix.Insert(i, Range{224, 255})
	}
	sizes := ix.BucketSizes()
	if sizes[Range{0, 31}] != 50 || sizes[Range{224, 255}] != 50 {
		t.Errorf("bucket sizes %v", sizes)
	}
	pf := ix.PruningFactor()
	if pf > 0.6 {
		t.Errorf("pruning factor %g, want ~0.5", pf)
	}
	empty := New()
	if empty.PruningFactor() != 1 {
		t.Error("empty index pruning factor should be 1")
	}
}

func TestCandidatesSorted(t *testing.T) {
	ix := New()
	for _, id := range []int64{9, 3, 7, 1} {
		ix.Insert(id, Range{0, 255})
	}
	got := ix.Candidates(Range{0, 31})
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("unsorted candidates %v", got)
		}
	}
}
