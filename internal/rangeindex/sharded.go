package rangeindex

import "sort"

// ShardedIndex partitions a range-finder index across a fixed number of
// shards keyed by frame ID (id mod n). Query-time pruning can then fan out
// one independent bucket scan per shard — each shard worker touches only
// its own buckets and takes only its own lock — which is what lets the
// engine's concurrent search pipeline prune candidates without funnelling
// every worker through one shared structure.
type ShardedIndex struct {
	shards []*Index
}

// NewSharded returns an empty index split over n shards (n < 1 is
// clamped to 1).
func NewSharded(n int) *ShardedIndex {
	if n < 1 {
		n = 1
	}
	s := &ShardedIndex{shards: make([]*Index, n)}
	for i := range s.shards {
		s.shards[i] = New()
	}
	return s
}

// NumShards reports the fixed shard count.
func (s *ShardedIndex) NumShards() int { return len(s.shards) }

// ShardFor maps a frame ID to its shard number.
func (s *ShardedIndex) ShardFor(id int64) int {
	return int(uint64(id) % uint64(len(s.shards)))
}

// Shard exposes one shard's sub-index for shard-local candidate scans.
func (s *ShardedIndex) Shard(i int) *Index { return s.shards[i] }

// Insert adds id under the given range bucket in its home shard.
func (s *ShardedIndex) Insert(id int64, r Range) {
	s.shards[s.ShardFor(id)].Insert(id, r)
}

// Remove deletes id from the given bucket, reporting whether it was found.
func (s *ShardedIndex) Remove(id int64, r Range) bool {
	return s.shards[s.ShardFor(id)].Remove(id, r)
}

// Len reports the number of indexed IDs across all shards.
func (s *ShardedIndex) Len() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.Len()
	}
	return n
}

// Candidates returns the IDs of every frame whose bucket overlaps the
// query range, across all shards, in ascending ID order. Parallel callers
// should prefer per-shard Shard(i).Candidates(q) scans; this merged form
// serves diagnostics and single-threaded paths.
func (s *ShardedIndex) Candidates(q Range) []int64 {
	var out []int64
	for _, sh := range s.shards {
		out = append(out, sh.Candidates(q)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// All returns every indexed ID across all shards in ascending order.
func (s *ShardedIndex) All() []int64 {
	out := make([]int64, 0, s.Len())
	for _, sh := range s.shards {
		out = append(out, sh.All()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
