// Package cvj implements a minimal MJPEG-style video container ("CVJ" —
// Container of Video JPEGs). It substitutes for the MPEG/AVI clips the
// paper downloads from archive.org: a CVJ file is a real binary artefact
// (magic, header, length-prefixed JPEG frames, trailer) that can be stored
// as a BLOB in the VIDEO_STORE table and decoded back into frames.
//
// The streaming Reader is the repository's "video to jpeg converter"
// (paper §4.1 input: "Frames of video extracted by video to jpeg
// converter").
//
// File layout (all integers big-endian):
//
//	offset 0: magic "CVJ1" (4 bytes)
//	offset 4: uint16 version (currently 1)
//	offset 6: uint16 fps
//	then, per frame: uint32 length, followed by <length> JPEG bytes
//	terminator: uint32 0
//	trailer: uint32 frame count (must match the number of frames read)
package cvj

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cbvr/internal/imaging"
)

// Magic identifies a CVJ stream.
const Magic = "CVJ1"

// Version is the current container version.
const Version = 1

// MaxFPS is the largest frame rate the uint16 header field can carry.
// Encode and NewWriter reject larger values instead of silently wrapping
// them around (fps 65536 used to be stored as 0).
const MaxFPS = 65535

// maxFrameSize bounds a single frame record to guard against corrupt
// headers when decoding untrusted bytes.
const maxFrameSize = 64 << 20

// ErrFormat is matched (errors.Is) by every error the Reader produces for
// a malformed or truncated container: bad magic, unsupported version,
// corrupt record lengths, trailer mismatches, undecodable frame JPEGs and
// streams that end mid-record. It lets serving layers classify "the bytes
// the client sent are not a valid container" (HTTP 400) apart from
// storage and I/O faults (HTTP 500) without string matching.
var ErrFormat = errors.New("cvj: invalid container")

// formatError tags a reader-side error as a container-format problem while
// preserving its wrapped cause (io.ErrUnexpectedEOF stays matchable).
type formatError struct{ err error }

func (e *formatError) Error() string        { return e.err.Error() }
func (e *formatError) Unwrap() error        { return e.err }
func (e *formatError) Is(target error) bool { return target == ErrFormat }

// invalidf builds a format-classified error; %w works as in fmt.Errorf.
func invalidf(format string, args ...any) error {
	return &formatError{fmt.Errorf(format, args...)}
}

// ErrBadMagic is returned when a stream does not start with the CVJ magic.
// It matches ErrFormat.
var ErrBadMagic error = &formatError{errors.New("cvj: bad magic")}

// Video is a fully decoded clip.
type Video struct {
	FPS    int
	Frames []*imaging.Image
}

// Writer incrementally writes a CVJ stream from already-encoded JPEG
// records: header at construction, one record per WriteJPEG, terminator and
// trailer at Close. It is the streaming counterpart of Encode and the
// mechanism the ingest pipeline uses to assemble containers and key-frame
// streams from original frame bytes without a decode→re-encode round trip.
type Writer struct {
	bw     *bufio.Writer
	count  int
	closed bool
}

// NewWriter writes the container header and returns a record writer. The
// frame rate is stored exactly as given; it must lie in [0, MaxFPS].
func NewWriter(w io.Writer, fps int) (*Writer, error) {
	if fps < 0 || fps > MaxFPS {
		return nil, fmt.Errorf("cvj: fps %d outside [0, %d]", fps, MaxFPS)
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return nil, fmt.Errorf("cvj: write magic: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], Version)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(fps))
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("cvj: write header: %w", err)
	}
	return &Writer{bw: bw}, nil
}

// WriteJPEG appends one frame record. The bytes are stored verbatim; they
// must be a non-empty JPEG no larger than the frame-size limit (an empty
// record would read back as the stream terminator).
func (w *Writer) WriteJPEG(jp []byte) error {
	if w.closed {
		return errors.New("cvj: write after Close")
	}
	if len(jp) == 0 {
		return fmt.Errorf("cvj: frame %d empty", w.count)
	}
	if len(jp) > maxFrameSize {
		return fmt.Errorf("cvj: frame %d size %d exceeds limit", w.count, len(jp))
	}
	var lenb [4]byte
	binary.BigEndian.PutUint32(lenb[:], uint32(len(jp)))
	if _, err := w.bw.Write(lenb[:]); err != nil {
		return fmt.Errorf("cvj: write frame %d length: %w", w.count, err)
	}
	if _, err := w.bw.Write(jp); err != nil {
		return fmt.Errorf("cvj: write frame %d: %w", w.count, err)
	}
	w.count++
	return nil
}

// Count reports how many records have been written.
func (w *Writer) Count() int { return w.count }

// Close writes the terminator and trailer and flushes. The Writer cannot be
// used afterwards.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	var tail [8]byte
	binary.BigEndian.PutUint32(tail[0:4], 0)
	binary.BigEndian.PutUint32(tail[4:8], uint32(w.count))
	if _, err := w.bw.Write(tail[:]); err != nil {
		return fmt.Errorf("cvj: write trailer: %w", err)
	}
	return w.bw.Flush()
}

// Encode writes frames as a CVJ stream. quality <= 0 selects the imaging
// default JPEG quality; fps <= 0 selects 12; fps beyond MaxFPS is an error.
func Encode(w io.Writer, frames []*imaging.Image, fps, quality int) error {
	if fps <= 0 {
		fps = 12
	}
	cw, err := NewWriter(w, fps)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	for i, f := range frames {
		buf.Reset()
		if err := f.EncodeJPEG(&buf, quality); err != nil {
			return fmt.Errorf("cvj: encode frame %d: %w", i, err)
		}
		if err := cw.WriteJPEG(buf.Bytes()); err != nil {
			return err
		}
	}
	return cw.Close()
}

// EncodeRaw writes already-encoded JPEG frame records as a CVJ stream,
// with the same fps defaulting as Encode.
func EncodeRaw(w io.Writer, frames [][]byte, fps int) error {
	if fps <= 0 {
		fps = 12
	}
	cw, err := NewWriter(w, fps)
	if err != nil {
		return err
	}
	for _, jp := range frames {
		if err := cw.WriteJPEG(jp); err != nil {
			return err
		}
	}
	return cw.Close()
}

// EncodeRawBytes is EncodeRaw into a fresh byte slice.
func EncodeRawBytes(frames [][]byte, fps int) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeRaw(&buf, frames, fps); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeBytes is Encode into a fresh byte slice.
func EncodeBytes(frames []*imaging.Image, fps, quality int) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, frames, fps, quality); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads an entire CVJ stream into memory.
func Decode(r io.Reader) (*Video, error) {
	cr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	v := &Video{FPS: cr.FPS()}
	for {
		f, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		v.Frames = append(v.Frames, f)
	}
	return v, nil
}

// DecodeBytes is Decode over an in-memory buffer (e.g. a BLOB column).
func DecodeBytes(b []byte) (*Video, error) {
	return Decode(bytes.NewReader(b))
}

// Reader decodes a CVJ stream one frame at a time.
type Reader struct {
	br    *bufio.Reader
	fps   int
	count int
	done  bool
}

// NewReader validates the header and returns a streaming frame reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, invalidf("cvj: read magic: %w", truncated(err))
	}
	if string(magic[:]) != Magic {
		return nil, ErrBadMagic
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, invalidf("cvj: read header: %w", truncated(err))
	}
	if v := binary.BigEndian.Uint16(hdr[0:2]); v != Version {
		return nil, invalidf("cvj: unsupported version %d", v)
	}
	return &Reader{br: br, fps: int(binary.BigEndian.Uint16(hdr[2:4]))}, nil
}

// FPS reports the nominal frame rate from the header.
func (r *Reader) FPS() int { return r.fps }

// FramesRead reports how many frames have been decoded so far.
func (r *Reader) FramesRead() int { return r.count }

// Frame is one streamed container record: the frame's position in the
// video, the raw JPEG record bytes exactly as stored, and the decoded
// image. JPEG is a fresh allocation the caller may retain; the ingest
// pipeline stores it verbatim so stored key frames carry the container's
// original bytes instead of a lossy decode→re-encode round trip.
type Frame struct {
	Index int
	JPEG  []byte
	Image *imaging.Image
}

// truncated converts a clean io.EOF into io.ErrUnexpectedEOF. Inside the
// record stream running out of bytes is truncation, never a clean end —
// before this mapping, a stream cut at a frame boundary produced an error
// wrapping io.EOF, which errors.Is-style callers silently accepted as
// end-of-stream.
func truncated(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// Next decodes the next frame, or returns io.EOF after the last frame.
// On EOF the trailer count has been verified against the frames read.
func (r *Reader) Next() (*imaging.Image, error) {
	f, err := r.NextFrame()
	if err != nil {
		return nil, err
	}
	return f.Image, nil
}

// NextFrame decodes the next frame along with its raw JPEG record, or
// returns io.EOF after the last frame. A stream that ends before the
// terminator and trailer yields an error wrapping io.ErrUnexpectedEOF.
func (r *Reader) NextFrame() (*Frame, error) {
	if r.done {
		return nil, io.EOF
	}
	var lenb [4]byte
	if _, err := io.ReadFull(r.br, lenb[:]); err != nil {
		return nil, invalidf("cvj: read frame length: %w", truncated(err))
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n == 0 {
		// Terminator: validate trailer.
		var cnt [4]byte
		if _, err := io.ReadFull(r.br, cnt[:]); err != nil {
			return nil, invalidf("cvj: read trailer: %w", truncated(err))
		}
		if got := binary.BigEndian.Uint32(cnt[:]); int(got) != r.count {
			return nil, invalidf("cvj: trailer count %d != frames read %d", got, r.count)
		}
		r.done = true
		return nil, io.EOF
	}
	if n > maxFrameSize {
		return nil, invalidf("cvj: frame size %d exceeds limit", n)
	}
	jp := make([]byte, n)
	if _, err := io.ReadFull(r.br, jp); err != nil {
		return nil, invalidf("cvj: read frame %d: %w", r.count, truncated(err))
	}
	im, err := imaging.DecodeJPEG(bytes.NewReader(jp))
	if err != nil {
		return nil, invalidf("cvj: frame %d: %w", r.count, err)
	}
	f := &Frame{Index: r.count, JPEG: jp, Image: im}
	r.count++
	return f, nil
}
