// Package cvj implements a minimal MJPEG-style video container ("CVJ" —
// Container of Video JPEGs). It substitutes for the MPEG/AVI clips the
// paper downloads from archive.org: a CVJ file is a real binary artefact
// (magic, header, length-prefixed JPEG frames, trailer) that can be stored
// as a BLOB in the VIDEO_STORE table and decoded back into frames.
//
// The streaming Reader is the repository's "video to jpeg converter"
// (paper §4.1 input: "Frames of video extracted by video to jpeg
// converter").
//
// File layout (all integers big-endian):
//
//	offset 0: magic "CVJ1" (4 bytes)
//	offset 4: uint16 version (currently 1)
//	offset 6: uint16 fps
//	then, per frame: uint32 length, followed by <length> JPEG bytes
//	terminator: uint32 0
//	trailer: uint32 frame count (must match the number of frames read)
package cvj

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"cbvr/internal/imaging"
)

// Magic identifies a CVJ stream.
const Magic = "CVJ1"

// Version is the current container version.
const Version = 1

// maxFrameSize bounds a single frame record to guard against corrupt
// headers when decoding untrusted bytes.
const maxFrameSize = 64 << 20

// ErrBadMagic is returned when a stream does not start with the CVJ magic.
var ErrBadMagic = errors.New("cvj: bad magic")

// Video is a fully decoded clip.
type Video struct {
	FPS    int
	Frames []*imaging.Image
}

// Encode writes frames as a CVJ stream. quality <= 0 selects the imaging
// default JPEG quality.
func Encode(w io.Writer, frames []*imaging.Image, fps, quality int) error {
	if fps <= 0 {
		fps = 12
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(Magic); err != nil {
		return fmt.Errorf("cvj: write magic: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint16(hdr[0:2], Version)
	binary.BigEndian.PutUint16(hdr[2:4], uint16(fps))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("cvj: write header: %w", err)
	}
	var buf bytes.Buffer
	for i, f := range frames {
		buf.Reset()
		if err := f.EncodeJPEG(&buf, quality); err != nil {
			return fmt.Errorf("cvj: encode frame %d: %w", i, err)
		}
		var lenb [4]byte
		binary.BigEndian.PutUint32(lenb[:], uint32(buf.Len()))
		if _, err := bw.Write(lenb[:]); err != nil {
			return fmt.Errorf("cvj: write frame %d length: %w", i, err)
		}
		if _, err := bw.Write(buf.Bytes()); err != nil {
			return fmt.Errorf("cvj: write frame %d: %w", i, err)
		}
	}
	var tail [8]byte
	binary.BigEndian.PutUint32(tail[0:4], 0)
	binary.BigEndian.PutUint32(tail[4:8], uint32(len(frames)))
	if _, err := bw.Write(tail[:]); err != nil {
		return fmt.Errorf("cvj: write trailer: %w", err)
	}
	return bw.Flush()
}

// EncodeBytes is Encode into a fresh byte slice.
func EncodeBytes(frames []*imaging.Image, fps, quality int) ([]byte, error) {
	var buf bytes.Buffer
	if err := Encode(&buf, frames, fps, quality); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode reads an entire CVJ stream into memory.
func Decode(r io.Reader) (*Video, error) {
	cr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	v := &Video{FPS: cr.FPS()}
	for {
		f, err := cr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		v.Frames = append(v.Frames, f)
	}
	return v, nil
}

// DecodeBytes is Decode over an in-memory buffer (e.g. a BLOB column).
func DecodeBytes(b []byte) (*Video, error) {
	return Decode(bytes.NewReader(b))
}

// Reader decodes a CVJ stream one frame at a time.
type Reader struct {
	br    *bufio.Reader
	fps   int
	count int
	done  bool
}

// NewReader validates the header and returns a streaming frame reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("cvj: read magic: %w", err)
	}
	if string(magic[:]) != Magic {
		return nil, ErrBadMagic
	}
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("cvj: read header: %w", err)
	}
	if v := binary.BigEndian.Uint16(hdr[0:2]); v != Version {
		return nil, fmt.Errorf("cvj: unsupported version %d", v)
	}
	return &Reader{br: br, fps: int(binary.BigEndian.Uint16(hdr[2:4]))}, nil
}

// FPS reports the nominal frame rate from the header.
func (r *Reader) FPS() int { return r.fps }

// FramesRead reports how many frames have been decoded so far.
func (r *Reader) FramesRead() int { return r.count }

// Next decodes the next frame, or returns io.EOF after the last frame.
// On EOF the trailer count has been verified against the frames read.
func (r *Reader) Next() (*imaging.Image, error) {
	if r.done {
		return nil, io.EOF
	}
	var lenb [4]byte
	if _, err := io.ReadFull(r.br, lenb[:]); err != nil {
		return nil, fmt.Errorf("cvj: read frame length: %w", err)
	}
	n := binary.BigEndian.Uint32(lenb[:])
	if n == 0 {
		// Terminator: validate trailer.
		var cnt [4]byte
		if _, err := io.ReadFull(r.br, cnt[:]); err != nil {
			return nil, fmt.Errorf("cvj: read trailer: %w", err)
		}
		if got := binary.BigEndian.Uint32(cnt[:]); int(got) != r.count {
			return nil, fmt.Errorf("cvj: trailer count %d != frames read %d", got, r.count)
		}
		r.done = true
		return nil, io.EOF
	}
	if n > maxFrameSize {
		return nil, fmt.Errorf("cvj: frame size %d exceeds limit", n)
	}
	jp := make([]byte, n)
	if _, err := io.ReadFull(r.br, jp); err != nil {
		return nil, fmt.Errorf("cvj: read frame %d: %w", r.count, err)
	}
	im, err := imaging.DecodeJPEG(bytes.NewReader(jp))
	if err != nil {
		return nil, fmt.Errorf("cvj: frame %d: %w", r.count, err)
	}
	r.count++
	return im, nil
}
