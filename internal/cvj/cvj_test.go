package cvj

import (
	"bytes"
	"io"
	"testing"

	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
)

func testFrames(n int) []*imaging.Image {
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Frames: n, Shots: 2, Seed: 77})
	return v.Frames
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	frames := testFrames(6)
	raw, err := EncodeBytes(frames, 15, 90)
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.FPS != 15 {
		t.Errorf("fps = %d", v.FPS)
	}
	if len(v.Frames) != len(frames) {
		t.Fatalf("frames = %d, want %d", len(v.Frames), len(frames))
	}
	for i := range frames {
		if v.Frames[i].W != frames[i].W || v.Frames[i].H != frames[i].H {
			t.Fatalf("frame %d dims changed", i)
		}
	}
}

func TestStreamingReaderCountsAndEOF(t *testing.T) {
	frames := testFrames(4)
	raw, _ := EncodeBytes(frames, 10, 0)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 || r.FramesRead() != 4 {
		t.Errorf("read %d frames (reader says %d)", n, r.FramesRead())
	}
	// Next after EOF keeps returning EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("post-EOF: %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := DecodeBytes([]byte("AVI0xxxxxxxx")); err != ErrBadMagic {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestTruncatedStreamRejected(t *testing.T) {
	frames := testFrames(2)
	raw, _ := EncodeBytes(frames, 10, 0)
	for _, cut := range []int{5, 9, len(raw) / 2, len(raw) - 3} {
		if _, err := DecodeBytes(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCorruptTrailerCountRejected(t *testing.T) {
	frames := testFrames(2)
	raw, _ := EncodeBytes(frames, 10, 0)
	// Trailer count is the last 4 bytes.
	raw[len(raw)-1] ^= 0x7
	if _, err := DecodeBytes(raw); err == nil {
		t.Error("corrupt trailer accepted")
	}
}

func TestCorruptFrameBytesRejected(t *testing.T) {
	frames := testFrames(1)
	raw, _ := EncodeBytes(frames, 10, 0)
	// Smash the JPEG SOI marker (first frame's payload starts at offset
	// 12 after the 8-byte header and 4-byte length prefix).
	raw[12], raw[13] = 0x00, 0x00
	if _, err := DecodeBytes(raw); err == nil {
		t.Error("corrupt JPEG accepted")
	}
}

func TestEmptyVideo(t *testing.T) {
	raw, err := EncodeBytes(nil, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Frames) != 0 {
		t.Errorf("frames = %d", len(v.Frames))
	}
}

func TestDefaultFPSApplied(t *testing.T) {
	raw, _ := EncodeBytes(testFrames(1), 0, 0)
	v, _ := DecodeBytes(raw)
	if v.FPS != 12 {
		t.Errorf("default fps = %d", v.FPS)
	}
}
