package cvj

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
)

func testFrames(n int) []*imaging.Image {
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Frames: n, Shots: 2, Seed: 77})
	return v.Frames
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	frames := testFrames(6)
	raw, err := EncodeBytes(frames, 15, 90)
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if v.FPS != 15 {
		t.Errorf("fps = %d", v.FPS)
	}
	if len(v.Frames) != len(frames) {
		t.Fatalf("frames = %d, want %d", len(v.Frames), len(frames))
	}
	for i := range frames {
		if v.Frames[i].W != frames[i].W || v.Frames[i].H != frames[i].H {
			t.Fatalf("frame %d dims changed", i)
		}
	}
}

func TestStreamingReaderCountsAndEOF(t *testing.T) {
	frames := testFrames(4)
	raw, _ := EncodeBytes(frames, 10, 0)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 || r.FramesRead() != 4 {
		t.Errorf("read %d frames (reader says %d)", n, r.FramesRead())
	}
	// Next after EOF keeps returning EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("post-EOF: %v", err)
	}
}

func TestBadMagicRejected(t *testing.T) {
	if _, err := DecodeBytes([]byte("AVI0xxxxxxxx")); err != ErrBadMagic {
		t.Errorf("want ErrBadMagic, got %v", err)
	}
}

func TestTruncatedStreamRejected(t *testing.T) {
	frames := testFrames(2)
	raw, _ := EncodeBytes(frames, 10, 0)
	for _, cut := range []int{5, 9, len(raw) / 2, len(raw) - 3} {
		if _, err := DecodeBytes(raw[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestCorruptTrailerCountRejected(t *testing.T) {
	frames := testFrames(2)
	raw, _ := EncodeBytes(frames, 10, 0)
	// Trailer count is the last 4 bytes.
	raw[len(raw)-1] ^= 0x7
	if _, err := DecodeBytes(raw); err == nil {
		t.Error("corrupt trailer accepted")
	}
}

func TestCorruptFrameBytesRejected(t *testing.T) {
	frames := testFrames(1)
	raw, _ := EncodeBytes(frames, 10, 0)
	// Smash the JPEG SOI marker (first frame's payload starts at offset
	// 12 after the 8-byte header and 4-byte length prefix).
	raw[12], raw[13] = 0x00, 0x00
	if _, err := DecodeBytes(raw); err == nil {
		t.Error("corrupt JPEG accepted")
	}
}

func TestEmptyVideo(t *testing.T) {
	raw, err := EncodeBytes(nil, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	v, err := DecodeBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Frames) != 0 {
		t.Errorf("frames = %d", len(v.Frames))
	}
}

func TestDefaultFPSApplied(t *testing.T) {
	raw, _ := EncodeBytes(testFrames(1), 0, 0)
	v, _ := DecodeBytes(raw)
	if v.FPS != 12 {
		t.Errorf("default fps = %d", v.FPS)
	}
}

// A stream cut exactly at a frame boundary used to wrap io.EOF, so
// errors.Is(err, io.EOF) callers silently accepted truncated video as a
// clean end-of-stream. It must surface as io.ErrUnexpectedEOF.
func TestTruncationAtFrameBoundaryIsUnexpectedEOF(t *testing.T) {
	frames := testFrames(2)
	raw, _ := EncodeBytes(frames, 10, 0)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	// Find the boundary right after the first frame record.
	f, err := r.NextFrame()
	if err != nil {
		t.Fatal(err)
	}
	boundary := 8 + 4 + len(f.JPEG) // header + length prefix + record
	cuts := map[string]int{
		"after first record": boundary,
		"inside length":      boundary + 2,
		"before trailer":     len(raw) - 6,
		"mid second record":  boundary + 10,
	}
	for name, cut := range cuts {
		_, err := DecodeBytes(raw[:cut])
		if err == nil {
			t.Fatalf("%s: truncation accepted", name)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("%s: error %v does not wrap io.ErrUnexpectedEOF", name, err)
		}
		if errors.Is(err, io.EOF) {
			t.Errorf("%s: error %v wraps io.EOF — truncation reads as clean end-of-stream", name, err)
		}
	}
}

// fps values beyond the uint16 header field used to wrap around silently
// (65536 stored as 0). They must be rejected at encode time.
func TestEncodeFPSRange(t *testing.T) {
	frames := testFrames(1)
	if _, err := EncodeBytes(frames, MaxFPS, 0); err != nil {
		t.Fatalf("fps %d rejected: %v", MaxFPS, err)
	}
	v, err := DecodeBytes(mustEncode(t, frames, MaxFPS))
	if err != nil {
		t.Fatal(err)
	}
	if v.FPS != MaxFPS {
		t.Errorf("fps %d stored as %d", MaxFPS, v.FPS)
	}
	if _, err := EncodeBytes(frames, MaxFPS+1, 0); err == nil {
		t.Errorf("fps %d accepted", MaxFPS+1)
	}
	if _, err := NewWriter(io.Discard, -1); err == nil {
		t.Error("negative fps accepted by NewWriter")
	}
	if _, err := EncodeRawBytes([][]byte{{0xff}}, MaxFPS+1); err == nil {
		t.Error("EncodeRaw accepted out-of-range fps")
	}
}

func mustEncode(t *testing.T, frames []*imaging.Image, fps int) []byte {
	t.Helper()
	raw, err := EncodeBytes(frames, fps, 0)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// NextFrame must expose the exact record bytes: re-assembling a container
// from the streamed records reproduces it bit for bit, and the decoded
// image matches an independent decode of those bytes.
func TestNextFrameRawRecordsRoundTrip(t *testing.T) {
	frames := testFrames(5)
	raw := mustEncode(t, frames, 24)
	r, err := NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var rebuilt bytes.Buffer
	w, err := NewWriter(&rebuilt, r.FPS())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		f, err := r.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if f.Index != i {
			t.Fatalf("frame %d reports index %d", i, f.Index)
		}
		im, err := imaging.DecodeJPEG(bytes.NewReader(f.JPEG))
		if err != nil {
			t.Fatalf("frame %d JPEG bytes do not decode: %v", i, err)
		}
		if !im.Equal(f.Image) {
			t.Fatalf("frame %d decoded image differs from record bytes", i)
		}
		if err := w.WriteJPEG(f.JPEG); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rebuilt.Bytes(), raw) {
		t.Fatal("re-assembled container differs from original")
	}
}

func TestWriterRejectsEmptyRecordAndWriteAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 12)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.WriteJPEG(nil); err == nil {
		t.Error("empty record accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteJPEG([]byte{0xff}); err == nil {
		t.Error("write after Close accepted")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
}
