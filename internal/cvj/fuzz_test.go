package cvj

import (
	"bytes"
	"io"
	"testing"

	"cbvr/internal/imaging"
)

// fuzzSeedContainers encodes small but fully valid containers (plus
// targeted truncations) as the fuzz corpus.
func fuzzSeedContainers(f *testing.F) {
	im1 := imaging.New(8, 6)
	im1.Fill(200, 40, 40)
	im2 := imaging.New(8, 6)
	im2.Fill(10, 180, 90)
	valid, err := EncodeBytes([]*imaging.Image{im1, im2}, 12, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)-5]) // torn trailer
	f.Add(valid[:9])            // torn first frame length
	empty, err := EncodeBytes(nil, 10, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(empty)
	f.Add([]byte(Magic))
	f.Add([]byte{})
}

// FuzzCVJReader feeds arbitrary bytes to the container reader: malformed
// magic, headers, frame lengths, JPEG payloads, terminators and trailers
// must all surface as errors, never as panics — this is the path untrusted
// uploads travel in the web UI. When a container parses cleanly end to
// end, its records must re-assemble (EncodeRaw) into a container that
// parses to the same frame count, the round trip streamed ingest relies
// on.
func FuzzCVJReader(f *testing.F) {
	fuzzSeedContainers(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		cr, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		var records [][]byte
		for {
			fr, err := cr.NextFrame()
			if err == io.EOF {
				// Clean end: the records must round-trip.
				raw, err := EncodeRawBytes(records, cr.FPS())
				if err != nil {
					t.Fatalf("valid records failed to re-encode: %v", err)
				}
				cr2, err := NewReader(bytes.NewReader(raw))
				if err != nil {
					t.Fatalf("re-encoded container rejected: %v", err)
				}
				n := 0
				for {
					if _, err := cr2.NextFrame(); err != nil {
						if err != io.EOF {
							t.Fatalf("re-encoded container frame %d: %v", n, err)
						}
						break
					}
					n++
				}
				if n != len(records) {
					t.Fatalf("round trip decoded %d frames, want %d", n, len(records))
				}
				return
			}
			if err != nil {
				return // malformed input rejected cleanly
			}
			records = append(records, fr.JPEG)
		}
	})
}
