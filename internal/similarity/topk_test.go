package similarity

import (
	"math/rand"
	"testing"
)

// rankedEqual compares two Ranked slices exactly.
func rankedEqual(a, b []Ranked) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestTopKMatchesFullRank pushes shuffled candidates through bounded heaps
// of several capacities and checks the selection equals the first k rows
// of a full Rank.
func TestTopKMatchesFullRank(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 500
	ids := make([]int64, n)
	dists := make([]float64, n)
	for i := range ids {
		ids[i] = int64(i + 1)
		// Coarse quantisation forces plenty of distance ties so the ID
		// tie-break is actually exercised.
		dists[i] = float64(rng.Intn(40)) / 10
	}
	full := Rank(ids, dists)

	for _, k := range []int{1, 2, 7, 100, n, n + 50, 0, -3} {
		h := NewTopK(k)
		for _, p := range rng.Perm(n) {
			h.Push(Ranked{ID: ids[p], Distance: dists[p]})
		}
		want := full
		if k > 0 && k < n {
			want = full[:k]
		}
		if got := h.Sorted(); !rankedEqual(got, want) {
			t.Errorf("k=%d: selection diverges from full sort\n got %v\nwant %v", k, got[:min(5, len(got))], want[:min(5, len(want))])
		}
		if k > 0 && h.Len() != min(k, n) {
			t.Errorf("k=%d: Len = %d", k, h.Len())
		}
	}
}

// TestTopKMerge splits a stream across several heaps (as shard workers do)
// and checks the merged selection equals a single-heap run.
func TestTopKMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k, shards = 300, 25, 8
	single := NewTopK(k)
	parts := make([]*TopK, shards)
	for i := range parts {
		parts[i] = NewTopK(k)
	}
	for i := 0; i < n; i++ {
		r := Ranked{ID: int64(i), Distance: rng.Float64()}
		single.Push(r)
		parts[i%shards].Push(r)
	}
	merged := NewTopK(k)
	for _, p := range parts {
		merged.Merge(p)
	}
	if !rankedEqual(merged.Sorted(), single.Sorted()) {
		t.Error("merged shard heaps diverge from single heap")
	}
}

// TestTopKWorst checks the early-exit helper reflects the heap root.
func TestTopKWorst(t *testing.T) {
	h := NewTopK(2)
	if _, ok := h.Worst(); ok {
		t.Error("Worst on empty heap reported ok")
	}
	h.Push(Ranked{ID: 1, Distance: 0.5})
	h.Push(Ranked{ID: 2, Distance: 0.1})
	h.Push(Ranked{ID: 3, Distance: 0.3})
	w, ok := h.Worst()
	if !ok || w.ID != 3 || w.Distance != 0.3 {
		t.Errorf("Worst = %+v, ok=%v; want ID 3 distance 0.3", w, ok)
	}
}
