package similarity

import (
	"math/rand"
	"testing"
)

// The fusion/selection phase is what remains of query latency once the
// arena kernels have swept the distance columns, so its primitives get
// their own benchmarks: top-K selection, streamed min-max normalisation
// and batch RRF over realistic candidate counts.

func randDistances(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = rng.Float64() * 3
	}
	return out
}

// BenchmarkTopKPush streams 1k candidates through a bounded top-10 heap
// (one shard's share of a selection pass).
func BenchmarkTopKPush(b *testing.B) {
	ds := randDistances(1000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := NewTopK(10)
		for j, d := range ds {
			h.Push(Ranked{ID: int64(j), Distance: d})
		}
	}
}

// BenchmarkTopKMerge merges 8 shard heaps of 10 into a final top-10.
func BenchmarkTopKMerge(b *testing.B) {
	shards := make([]*TopK, 8)
	for s := range shards {
		shards[s] = NewTopK(10)
		for j, d := range randDistances(1000, int64(s)) {
			shards[s].Push(Ranked{ID: int64(s*1000 + j), Distance: d})
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		final := NewTopK(10)
		for _, h := range shards {
			final.Merge(h)
		}
		final.Sorted()
	}
}

// BenchmarkMinMaxScalerObserve folds 1k distances into a scaler (the
// per-shard min-max pass of FusionMinMax).
func BenchmarkMinMaxScalerObserve(b *testing.B) {
	ds := randDistances(1000, 2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewMinMaxScaler()
		for _, d := range ds {
			m.Observe(d)
		}
		_ = m.Scale(ds[0])
	}
}

// BenchmarkRRF fuses seven full distance lists of 1k candidates (the
// reference fusion shape the sharded rrfScores reproduces).
func BenchmarkRRF(b *testing.B) {
	lists := make([][]float64, 7)
	for k := range lists {
		lists[k] = randDistances(1000, int64(10+k))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Normalize(RRF(lists, RRFConstant))
	}
}

// BenchmarkDTW aligns a 6-frame query against a 12-frame video with a
// trivial cost (isolating the DP itself from descriptor distances).
func BenchmarkDTW(b *testing.B) {
	cost := func(i, j int) float64 { return float64((i-j)*(i-j)) * 0.1 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DTW(6, 12, cost)
	}
}
