package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestL1L2Basic(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{1, 2, 3}
	if L1(a, b) != 0 || L2(a, b) != 0 {
		t.Error("identity distance nonzero")
	}
	c := []float64{4, 6, 3}
	if L1(a, c) != 7 {
		t.Errorf("L1 = %g", L1(a, c))
	}
	if L2(a, c) != 5 {
		t.Errorf("L2 = %g", L2(a, c))
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	L1([]float64{1}, []float64{1, 2})
}

// Metric properties for L1/L2 on random vectors: non-negativity, symmetry,
// triangle inequality.
func TestMetricProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		mk := func() []float64 {
			v := make([]float64, n)
			for i := range v {
				v[i] = rng.NormFloat64() * 10
			}
			return v
		}
		a, b, c := mk(), mk(), mk()
		for _, d := range []func([]float64, []float64) float64{L1, L2} {
			if d(a, b) < 0 || math.Abs(d(a, b)-d(b, a)) > 1e-9 {
				return false
			}
			if d(a, c) > d(a, b)+d(b, c)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCosine(t *testing.T) {
	a := []float64{1, 0}
	b := []float64{2, 0}
	if d := Cosine(a, b); math.Abs(d) > 1e-12 {
		t.Errorf("parallel cosine distance = %g", d)
	}
	c := []float64{0, 3}
	if d := Cosine(a, c); math.Abs(d-1) > 1e-12 {
		t.Errorf("orthogonal cosine distance = %g", d)
	}
	neg := []float64{-1, 0}
	if d := Cosine(a, neg); math.Abs(d-2) > 1e-12 {
		t.Errorf("opposite cosine distance = %g", d)
	}
	zero := []float64{0, 0}
	if d := Cosine(zero, zero); d != 0 {
		t.Errorf("zero-zero = %g", d)
	}
	if d := Cosine(a, zero); d != 1 {
		t.Errorf("zero-nonzero = %g", d)
	}
}

func TestChiSquare(t *testing.T) {
	a := []float64{2, 0, 1}
	if d := ChiSquare(a, a); d != 0 {
		t.Errorf("self χ² = %g", d)
	}
	b := []float64{0, 0, 3}
	want := 4.0/2 + 0 + 4.0/4 // (2-0)²/2 + skip + (1-3)²/4
	if d := ChiSquare(a, b); math.Abs(d-want) > 1e-12 {
		t.Errorf("χ² = %g, want %g", d, want)
	}
}

func TestDTWIdenticalSequences(t *testing.T) {
	seq := []float64{1, 5, 2, 8}
	cost := func(i, j int) float64 { return math.Abs(seq[i] - seq[j]) }
	if d := DTW(len(seq), len(seq), cost); d != 0 {
		t.Errorf("identical DTW = %g", d)
	}
}

func TestDTWTimeShiftInvariance(t *testing.T) {
	// DTW should align a stretched copy nearly for free, while
	// element-wise comparison would not.
	a := []float64{0, 0, 10, 10, 0, 0}
	b := []float64{0, 10, 0} // compressed version
	cost := func(i, j int) float64 { return math.Abs(a[i] - b[j]) }
	d := DTW(len(a), len(b), cost)
	if d > 0.5 {
		t.Errorf("DTW of stretched sequences = %g, want ~0", d)
	}
	// Mismatched content must cost more.
	c := []float64{7, 7, 7}
	cost2 := func(i, j int) float64 { return math.Abs(a[i] - c[j]) }
	if DTW(len(a), len(c), cost2) <= d {
		t.Error("dissimilar content not more expensive than time shift")
	}
}

func TestDTWEmptySequences(t *testing.T) {
	cost := func(i, j int) float64 { return 0 }
	if d := DTW(0, 0, cost); d != 0 {
		t.Errorf("empty-empty = %g", d)
	}
	if d := DTW(3, 0, cost); !math.IsInf(d, 1) {
		t.Errorf("nonempty-empty = %g", d)
	}
}

func TestDTWWindowMatchesFullOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := make([]float64, 12)
	b := make([]float64, 9)
	for i := range a {
		a[i] = rng.Float64()
	}
	for i := range b {
		b[i] = rng.Float64()
	}
	cost := func(i, j int) float64 { return math.Abs(a[i] - b[j]) }
	full := DTW(len(a), len(b), cost)
	wide := DTWWindow(len(a), len(b), 12, cost)
	if math.Abs(full-wide) > 1e-12 {
		t.Errorf("wide window %g != full %g", wide, full)
	}
	// Window 0 falls back to full.
	if math.Abs(DTWWindow(len(a), len(b), 0, cost)-full) > 1e-12 {
		t.Error("window<=0 fallback broken")
	}
	// Narrow window can only raise cost.
	narrow := DTWWindow(len(a), len(b), 3, cost)
	if narrow+1e-12 < full {
		t.Errorf("narrow window %g below full %g", narrow, full)
	}
}

func TestNormalize(t *testing.T) {
	s := Normalize([]float64{10, 20, 30})
	if s[0] != 0 || s[2] != 1 || math.Abs(s[1]-0.5) > 1e-12 {
		t.Errorf("normalized: %v", s)
	}
	cst := Normalize([]float64{5, 5, 5})
	for _, v := range cst {
		if v != 0 {
			t.Errorf("constant normalize: %v", cst)
		}
	}
	inf := Normalize([]float64{1, math.Inf(1), 3})
	if inf[1] != 1 {
		t.Errorf("inf entry = %v", inf[1])
	}
	if inf[0] != 0 || inf[2] != 1 {
		t.Errorf("finite entries: %v", inf)
	}
	allInf := Normalize([]float64{math.Inf(1), math.NaN()})
	if allInf[0] != 1 || allInf[1] != 1 {
		t.Errorf("all-inf normalize: %v", allInf)
	}
}

// Normalize output always lies in [0,1].
func TestNormalizeRangeProperty(t *testing.T) {
	f := func(vs []float64) bool {
		if len(vs) == 0 {
			return true
		}
		out := Normalize(append([]float64(nil), vs...))
		for _, v := range out {
			if v < 0 || v > 1 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFuse(t *testing.T) {
	lists := [][]float64{{0, 1}, {1, 0}}
	out := Fuse(lists, nil)
	if math.Abs(out[0]-0.5) > 1e-12 || math.Abs(out[1]-0.5) > 1e-12 {
		t.Errorf("equal fuse: %v", out)
	}
	weighted := Fuse(lists, []float64{3, 1})
	if math.Abs(weighted[0]-0.25) > 1e-12 || math.Abs(weighted[1]-0.75) > 1e-12 {
		t.Errorf("weighted fuse: %v", weighted)
	}
	if Fuse(nil, nil) != nil {
		t.Error("empty fuse should be nil")
	}
	zeroW := Fuse(lists, []float64{0, 0})
	if zeroW[0] != 0 || zeroW[1] != 0 {
		t.Errorf("zero-weight fuse: %v", zeroW)
	}
}

func TestRRFBasic(t *testing.T) {
	// Candidate 0 is best in both lists → best (most negative) RRF score;
	// candidates 1 and 2 hold ranks {2,3} and {3,2} → an exact tie.
	lists := [][]float64{{0.1, 0.5, 0.9}, {0.2, 0.8, 0.4}}
	out := RRF(lists, 60)
	if !(out[0] < out[1] && math.Abs(out[1]-out[2]) < 1e-15) {
		t.Errorf("RRF order wrong: %v", out)
	}
	// A third list breaking the tie in favour of candidate 2 must do so.
	out = RRF(append(lists, []float64{0.5, 0.9, 0.1}), 60)
	if !(out[0] < out[2] && out[2] < out[1]) {
		t.Errorf("tie break wrong: %v", out)
	}
	if RRF(nil, 60) != nil {
		t.Error("empty RRF should be nil")
	}
	// c <= 0 falls back to the standard constant.
	def := RRF(lists, 0)
	std := RRF(lists, RRFConstant)
	for i := range def {
		if def[i] != std[i] {
			t.Errorf("default constant mismatch at %d", i)
		}
	}
}

// RRF is invariant to monotone rescaling of any input list — the property
// that makes it robust where min-max score fusion is not.
func TestRRFScaleInvariance(t *testing.T) {
	lists := [][]float64{{0.3, 0.1, 0.7, 0.2}, {5, 9, 1, 3}}
	base := RRF([][]float64{lists[0], lists[1]}, 60)
	scaled := make([]float64, len(lists[1]))
	for i, v := range lists[1] {
		scaled[i] = v*1000 + 7 // monotone transform
	}
	rescaled := RRF([][]float64{lists[0], scaled}, 60)
	for i := range base {
		if math.Abs(base[i]-rescaled[i]) > 1e-12 {
			t.Fatalf("RRF not scale invariant at %d: %g vs %g", i, base[i], rescaled[i])
		}
	}
}

// A feature agreed on by the majority of lists should win RRF even when
// one list is adversarial.
func TestRRFRobustToOneBadList(t *testing.T) {
	good1 := []float64{0.0, 0.5, 0.9}
	good2 := []float64{0.1, 0.4, 0.8}
	bad := []float64{0.9, 0.5, 0.0} // reversed
	out := RRF([][]float64{good1, good2, bad}, 60)
	if out[0] >= out[2] {
		t.Errorf("majority vote lost: %v", out)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	ids := []int64{5, 2, 9}
	d := []float64{0.3, 0.3, 0.1}
	r := Rank(ids, d)
	if r[0].ID != 9 || r[1].ID != 2 || r[2].ID != 5 {
		t.Errorf("rank order: %+v", r)
	}
}
