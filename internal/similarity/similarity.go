// Package similarity provides the distance primitives and score machinery
// for the CBVR retrieval pipeline: vector metrics, the dynamic-programming
// sequence alignment the paper uses to compare a query's feature-vector
// sequence with each stored video ("We use a dynamic programming approach
// to compute the similarity between the feature vectors for the query and
// feature vectors in the feature database"), score normalisation, and the
// rank fusion behind the "Combined" column of Table 1.
package similarity

import (
	"fmt"
	"math"
	"sort"
)

// L1 returns the Manhattan distance between equal-length vectors.
// It panics if the lengths differ.
func L1(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	var s float64
	for i := range a {
		s += math.Abs(a[i] - b[i])
	}
	return s
}

// L2 returns the Euclidean distance between equal-length vectors.
func L2(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// Cosine returns the cosine distance 1 - cos(a, b) in [0, 2]. Zero vectors
// are at distance 1 from everything except another zero vector (0).
func Cosine(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 && nb == 0 {
		return 0
	}
	if na == 0 || nb == 0 {
		return 1
	}
	c := dot / (math.Sqrt(na) * math.Sqrt(nb))
	if c > 1 {
		c = 1
	} else if c < -1 {
		c = -1
	}
	return 1 - c
}

// ChiSquare returns the χ² histogram distance Σ (a-b)²/(a+b), skipping
// empty bins.
func ChiSquare(a, b []float64) float64 {
	mustSameLen(len(a), len(b))
	var s float64
	for i := range a {
		sum := a[i] + b[i]
		if sum == 0 {
			continue
		}
		d := a[i] - b[i]
		s += d * d / sum
	}
	return s
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("similarity: vector length mismatch %d != %d", a, b))
	}
}

// DTW computes the dynamic-programming alignment cost between two
// sequences of lengths n and m with the classic time-warping recurrence
//
//	D(i,j) = cost(i,j) + min(D(i-1,j), D(i,j-1), D(i-1,j-1))
//
// normalised by the path-length upper bound (n+m) so costs are comparable
// across sequence lengths. Empty sequences yield +Inf against non-empty
// ones and 0 against each other.
func DTW(n, m int, cost func(i, j int) float64) float64 {
	if n == 0 && m == 0 {
		return 0
	}
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 1; j <= m; j++ {
		prev[j] = math.Inf(1)
	}
	for i := 1; i <= n; i++ {
		cur[0] = math.Inf(1)
		for j := 1; j <= m; j++ {
			best := prev[j-1] // diagonal
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if i == 1 && j == 1 {
				best = 0
			}
			cur[j] = cost(i-1, j-1) + best
		}
		prev, cur = cur, prev
	}
	return prev[m] / float64(n+m)
}

// DTWWindow is DTW restricted to a Sakoe-Chiba band of the given half
// width; window <= 0 falls back to unconstrained DTW.
func DTWWindow(n, m, window int, cost func(i, j int) float64) float64 {
	if window <= 0 {
		return DTW(n, m, cost)
	}
	if n == 0 && m == 0 {
		return 0
	}
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	// Widen the band so a path always exists when lengths differ.
	if d := n - m; d > 0 && window < d {
		window = d
	} else if d < 0 && window < -d {
		window = -d
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := 0; j <= m; j++ {
			cur[j] = inf
		}
		lo := i - window
		if lo < 1 {
			lo = 1
		}
		hi := i + window
		if hi > m {
			hi = m
		}
		for j := lo; j <= hi; j++ {
			best := prev[j-1]
			if prev[j] < best {
				best = prev[j]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			if math.IsInf(best, 1) {
				continue
			}
			cur[j] = cost(i-1, j-1) + best
		}
		prev, cur = cur, prev
	}
	if math.IsInf(prev[m], 1) {
		return inf
	}
	return prev[m] / float64(n+m)
}

// Normalize min-max rescales scores into [0,1] in place and returns the
// slice. Constant score lists become all zeros (every candidate equally
// good). Infinite entries map to 1.
func Normalize(scores []float64) []float64 {
	m := NewMinMaxScaler()
	for _, s := range scores {
		m.Observe(s)
	}
	for i, s := range scores {
		scores[i] = m.Scale(s)
	}
	return scores
}

// MinMaxScaler is the streaming form of Normalize: it accumulates the
// finite min/max of a score population (possibly shard by shard, joined
// afterwards) and then rescales individual values with exactly Normalize's
// per-element arithmetic. This lets the sharded search pipeline min-max
// normalise per-feature distances without ever materialising one
// []float64 per feature per query — each shard observes its own distances
// as it computes them, the shards' scalers are joined, and the fused score
// is produced candidate by candidate.
type MinMaxScaler struct {
	Lo, Hi float64
}

// NewMinMaxScaler returns a scaler that has observed nothing (Lo > Hi).
func NewMinMaxScaler() MinMaxScaler {
	return MinMaxScaler{Lo: math.Inf(1), Hi: math.Inf(-1)}
}

// Observe folds one score into the running min/max. Infinities and NaNs
// are ignored, matching Normalize.
func (m *MinMaxScaler) Observe(v float64) {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return
	}
	if v < m.Lo {
		m.Lo = v
	}
	if v > m.Hi {
		m.Hi = v
	}
}

// Join widens m to cover everything o observed (shard merge).
func (m *MinMaxScaler) Join(o MinMaxScaler) {
	if o.Lo < m.Lo {
		m.Lo = o.Lo
	}
	if o.Hi > m.Hi {
		m.Hi = o.Hi
	}
}

// Scale maps one observed value into [0,1] with Normalize's exact
// per-element rules: non-finite values map to 1, an empty or constant
// population maps finite values to 1 resp. 0, and results are clamped.
func (m MinMaxScaler) Scale(v float64) float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return 1
	}
	if m.Lo > m.Hi { // nothing finite observed
		return 1
	}
	// Compute with halved operands so hi-lo cannot overflow to +Inf for
	// extreme inputs, and clamp for safety.
	span2 := m.Hi/2 - m.Lo/2
	if span2 == 0 {
		return 0
	}
	s := (v/2 - m.Lo/2) / span2
	if s < 0 {
		s = 0
	} else if s > 1 {
		s = 1
	}
	return s
}

// Fuse combines k normalised per-feature distance lists over the same n
// candidates into a single combined distance per candidate, as a weighted
// mean. weights == nil means equal weights. It panics on ragged input.
func Fuse(lists [][]float64, weights []float64) []float64 {
	if len(lists) == 0 {
		return nil
	}
	n := len(lists[0])
	for _, l := range lists {
		mustSameLen(len(l), n)
	}
	ws := FusionWeights(weights, len(lists))
	out := make([]float64, n)
	for li, l := range lists {
		w := ws[li]
		if w == 0 {
			continue
		}
		for i, v := range l {
			out[i] += w * v
		}
	}
	return out
}

// FusionWeights resolves per-feature fusion weights to the normalised
// (sum-to-one) form Fuse applies: nil means equal weights, a length
// mismatch panics, and an all-zero weight vector yields all zeros (every
// candidate fuses to 0). Both the batch Fuse and the streamed per-shard
// fusion in the search pipeline share this resolution so their weighted
// sums are computed from identical coefficients.
func FusionWeights(weights []float64, n int) []float64 {
	if weights == nil {
		weights = make([]float64, n)
		for i := range weights {
			weights[i] = 1
		}
	}
	mustSameLen(len(weights), n)
	var wsum float64
	for _, w := range weights {
		wsum += w
	}
	out := make([]float64, n)
	if wsum == 0 {
		return out
	}
	for i, w := range weights {
		out[i] = w / wsum
	}
	return out
}

// RRFConstant is the standard reciprocal-rank-fusion damping constant.
const RRFConstant = 60

// RRF combines k per-feature distance lists over the same n candidates by
// reciprocal rank fusion: each list contributes 1/(C + rank) per
// candidate. Unlike score fusion, RRF is insensitive to each feature's
// distance scale and robust to individually weak features, which is what
// lets the combined run dominate every single feature. The returned values
// are negated fused scores so that smaller still means better, matching
// the distance convention.
func RRF(lists [][]float64, c float64) []float64 {
	if len(lists) == 0 {
		return nil
	}
	if c <= 0 {
		c = RRFConstant
	}
	n := len(lists[0])
	out := make([]float64, n)
	idx := make([]int, n)
	for _, l := range lists {
		mustSameLen(len(l), n)
		for i := range idx {
			idx[i] = i
		}
		sort.SliceStable(idx, func(a, b int) bool { return l[idx[a]] < l[idx[b]] })
		for rank, i := range idx {
			out[i] -= 1 / (c + float64(rank+1))
		}
	}
	return out
}

// Ranked pairs an ID with a distance for sorting.
type Ranked struct {
	ID       int64
	Distance float64
}

// Rank sorts (id, distance) pairs ascending by distance, breaking ties by
// ID for determinism.
func Rank(ids []int64, dists []float64) []Ranked {
	mustSameLen(len(ids), len(dists))
	out := make([]Ranked, len(ids))
	for i := range ids {
		out[i] = Ranked{ID: ids[i], Distance: dists[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].ID < out[j].ID
	})
	return out
}
