package similarity

import "sort"

// TopK selects the k smallest Ranked values from a stream without
// materialising or fully sorting it: a bounded max-heap keeps the k best
// candidates seen so far with the worst of them at the root, so n pushes
// cost O(n log k) time and O(k) memory. Ordering is ascending distance
// with ties broken by ascending ID, matching Rank, so selecting the top k
// and then sorting the survivors reproduces exactly the first k rows of a
// full Rank over the same candidates.
//
// k <= 0 means unbounded: every pushed value is kept (used when a caller
// wants the complete ranking through the same code path).
//
// A TopK is not safe for concurrent use; the sharded search pipeline gives
// each shard worker its own heap and merges them afterwards.
type TopK struct {
	k int
	h []Ranked // max-heap on worseRanked: h[0] is the worst kept value
}

// topKPreallocCap bounds the eager allocation for huge or unbounded k so
// that "return everything" queries don't reserve memory for candidates
// that may never arrive.
const topKPreallocCap = 1024

// NewTopK returns a selector for the k smallest values; k <= 0 keeps all.
func NewTopK(k int) *TopK {
	t := &TopK{k: k}
	capHint := k
	if capHint <= 0 || capHint > topKPreallocCap {
		capHint = topKPreallocCap
	}
	t.h = make([]Ranked, 0, capHint)
	return t
}

// worseRanked reports whether a ranks strictly after b: greater distance,
// or equal distance and greater ID. It is the inverse of Rank's sort
// order.
func worseRanked(a, b Ranked) bool {
	if a.Distance != b.Distance {
		return a.Distance > b.Distance
	}
	return a.ID > b.ID
}

// Len reports how many values are currently kept.
func (t *TopK) Len() int { return len(t.h) }

// Cap returns the configured bound (<= 0 means unbounded).
func (t *TopK) Cap() int { return t.k }

// Worst returns the worst currently-kept value; ok is false while the
// heap is empty. When Len() == Cap(), any candidate worse than this
// cannot enter the selection, which lets callers skip work early.
func (t *TopK) Worst() (r Ranked, ok bool) {
	if len(t.h) == 0 {
		return Ranked{}, false
	}
	return t.h[0], true
}

// Push offers one candidate to the selection.
func (t *TopK) Push(r Ranked) {
	if t.k > 0 && len(t.h) == t.k {
		if !worseRanked(t.h[0], r) {
			return // r is no better than the current worst kept value
		}
		t.h[0] = r
		t.siftDown(0)
		return
	}
	t.h = append(t.h, r)
	t.siftUp(len(t.h) - 1)
}

// Merge pushes every value kept by o into t. o is left unchanged.
func (t *TopK) Merge(o *TopK) {
	if o == nil {
		return
	}
	for _, r := range o.h {
		t.Push(r)
	}
}

// Sorted returns the kept values in ascending (distance, ID) order. The
// heap is left unchanged.
func (t *TopK) Sorted() []Ranked {
	out := make([]Ranked, len(t.h))
	copy(out, t.h)
	sort.Slice(out, func(i, j int) bool { return worseRanked(out[j], out[i]) })
	return out
}

func (t *TopK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !worseRanked(t.h[i], t.h[p]) {
			return
		}
		t.h[i], t.h[p] = t.h[p], t.h[i]
		i = p
	}
}

func (t *TopK) siftDown(i int) {
	n := len(t.h)
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < n && worseRanked(t.h[l], t.h[worst]) {
			worst = l
		}
		if r < n && worseRanked(t.h[r], t.h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		t.h[i], t.h[worst] = t.h[worst], t.h[i]
		i = worst
	}
}
