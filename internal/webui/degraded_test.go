package webui

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"cbvr/internal/core"
	"cbvr/internal/synthvid"
	"cbvr/internal/vstore"
	"cbvr/internal/vstore/faultfs"
)

// TestWebUIDegradedMode: once the store is poisoned read-only, the HTML
// admin mutations answer 503 + Retry-After while the listing pages keep
// rendering from the committed snapshot.
func TestWebUIDegradedMode(t *testing.T) {
	ffs := faultfs.New()
	eng, err := core.Open("web.db", core.Options{Store: vstore.Options{FS: ffs}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Width: 96, Height: 72, Frames: 10, Shots: 2, Seed: 3})
	res, err := eng.IngestFrames("cartoon_00", v.Frames, v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	srv := New(eng)

	// Poison via a WAL write fault on a delete attempt.
	fired := false
	ffs.SetInjector(func(op faultfs.Op) faultfs.Action {
		if !fired && op.Kind == faultfs.OpWrite && op.Name == "web.db.wal" {
			fired = true
			return faultfs.ActErr
		}
		return faultfs.ActNone
	})
	form := url.Values{"id": {fmt.Sprint(res.VideoID)}}
	req := httptest.NewRequest(http.MethodPost, "/admin/delete", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	ffs.SetInjector(nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("delete under WAL fault: %d %s", rec.Code, rec.Body.String())
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("degraded delete 503 missing Retry-After")
	}

	// Sticky: the next mutation fails the same way without any fault armed.
	rec = httptest.NewRecorder()
	req = httptest.NewRequest(http.MethodPost, "/admin/delete", strings.NewReader(form.Encode()))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("second delete while degraded: %d retry-after=%q", rec.Code, rec.Header().Get("Retry-After"))
	}

	// Reads keep rendering: the home page still lists the resident video.
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "cartoon_00") {
		t.Fatalf("home page while degraded: %d", rec.Code)
	}
}
