// Package webui implements the paper's web application handlers (Figs. 2,
// 9, 10): query-by-frame search with a thumbnail result grid, a video page
// stepping through key frames, and the administrator's upload/delete
// operations. It is plain net/http + html/template, served by cmd/cbvr-web
// and exercised directly by handler tests.
package webui

import (
	"bytes"
	"encoding/base64"
	"errors"
	"fmt"
	"html/template"
	"net/http"
	"strconv"

	"cbvr/internal/core"
	"cbvr/internal/httperr"
	"cbvr/internal/imaging"
)

// maxUploadBytes bounds request bodies (query frames and video uploads).
// A variable so tests can exercise the over-limit path without a 64 MiB
// body.
var maxUploadBytes int64 = 64 << 20

// Server holds the handlers. Create one with New.
type Server struct {
	eng *core.Engine
	mux *http.ServeMux
}

// New builds the route table around an engine.
func New(eng *core.Engine) *Server {
	s := &Server{eng: eng, mux: http.NewServeMux()}
	s.mux.HandleFunc("/", s.handleHome)
	s.mux.HandleFunc("/search", s.handleSearch)
	s.mux.HandleFunc("/video", s.handleVideo)
	s.mux.HandleFunc("/frame", s.handleFrame)
	s.mux.HandleFunc("/download", s.handleDownload)
	s.mux.HandleFunc("/admin/upload", s.handleAdminUpload)
	s.mux.HandleFunc("/admin/delete", s.handleAdminDelete)
	s.mux.HandleFunc("/admin/reindex", s.handleAdminReindex)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

var pageTmpl = template.Must(template.New("page").Parse(`<!doctype html>
<html><head><title>CBVR — Content Based Video Retrieval</title>
<style>
body{font-family:sans-serif;margin:2em;background:#fafafa}
h1{color:#234}
.grid{display:flex;flex-wrap:wrap;gap:12px}
.card{border:1px solid #ccc;background:#fff;padding:8px;border-radius:4px;text-align:center}
.card img{display:block;margin-bottom:4px}
.dist{color:#666;font-size:0.8em}
table{border-collapse:collapse}
td,th{border:1px solid #ccc;padding:4px 10px}
form{margin:1em 0}
</style></head><body>
<h1>Content Based Video Retrieval</h1>
{{block "body" .}}{{end}}
</body></html>`))

var homeTmpl = template.Must(template.Must(pageTmpl.Clone()).Parse(`{{define "body"}}
<h2>Query by example frame</h2>
<form action="/search" method="POST" enctype="multipart/form-data">
<input type="file" name="image" accept="image/jpeg" required>
<input type="number" name="k" value="12" min="1" max="100">
<button type="submit">Search</button>
</form>
<h2>Video store ({{len .Videos}} videos, {{.KeyFrames}} key frames)</h2>
<table><tr><th>V_ID</th><th>V_NAME</th><th>bytes</th><th></th><th></th></tr>
{{range .Videos}}<tr><td>{{.ID}}</td><td><a href="/video?id={{.ID}}">{{.Name}}</a></td><td>{{.VideoLen}}</td>
<td><form action="/admin/delete" method="POST" style="margin:0"><input type="hidden" name="id" value="{{.ID}}"><button>delete</button></form></td>
<td><form action="/admin/reindex" method="POST" style="margin:0"><input type="hidden" name="id" value="{{.ID}}"><button>reindex</button></form></td></tr>{{end}}
</table>
<form action="/admin/reindex" method="POST"><button>Reindex all videos</button></form>
<h2>Admin: upload video (CVJ container)</h2>
<form action="/admin/upload" method="POST" enctype="multipart/form-data">
<input type="file" name="video" required> name: <input type="text" name="name">
<button type="submit">Upload</button>
</form>
{{end}}`))

var searchTmpl = template.Must(template.Must(pageTmpl.Clone()).Parse(`{{define "body"}}
<h2>Results ({{len .Matches}})</h2>
<p><a href="/">new query</a></p>
<div class="grid">
{{range .Matches}}
<div class="card">
<a href="/video?id={{.VideoID}}"><img src="/frame?id={{.KeyFrameID}}" alt="key frame {{.KeyFrameID}}" width="160"></a>
<div>{{.VideoName}} #{{.FrameIndex}}</div>
<div class="dist">d = {{printf "%.4f" .Distance}}</div>
</div>
{{end}}
</div>
{{end}}`))

var videoTmpl = template.Must(template.Must(pageTmpl.Clone()).Parse(`{{define "body"}}
<h2>{{.Info.Name}} (video {{.Info.ID}})</h2>
<p><a href="/">back</a> · <a href="/download?id={{.Info.ID}}">download container</a></p>
<div class="grid">
{{range .Frames}}
<div class="card">
<img src="data:image/jpeg;base64,{{.B64}}" width="160" alt="frame {{.Index}}">
<div>frame #{{.Index}}</div>
<div class="dist">bucket [{{.Min}},{{.Max}}] · {{.Major}} major regions</div>
</div>
{{end}}
</div>
{{end}}`))

func (s *Server) handleHome(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	vids, err := s.eng.Store().ListVideos(nil)
	if err != nil {
		httpError(w, err)
		return
	}
	nk, err := s.eng.Store().CountKeyFrames(nil)
	if err != nil {
		httpError(w, err)
		return
	}
	render(w, homeTmpl, map[string]any{"Videos": vids, "KeyFrames": nk})
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxUploadBytes)
	file, _, err := r.FormFile("image")
	if err != nil {
		uploadFormError(w, err, "missing image upload")
		return
	}
	defer file.Close()
	query, err := imaging.DecodeJPEG(file)
	if err != nil {
		http.Error(w, "not a decodable JPEG", http.StatusBadRequest)
		return
	}
	k := 12
	if v, err := strconv.Atoi(r.FormValue("k")); err == nil && v > 0 && v <= 100 {
		k = v
	}
	matches, err := s.eng.SearchFrameCtx(r.Context(), query, core.SearchOptions{K: k})
	if err != nil {
		classifiedError(w, err)
		return
	}
	render(w, searchTmpl, map[string]any{"Matches": matches})
}

func (s *Server) handleVideo(w http.ResponseWriter, r *http.Request) {
	id, ok := idParam(w, r)
	if !ok {
		return
	}
	info, found, err := s.eng.Store().GetVideoInfo(nil, id)
	if err != nil {
		httpError(w, err)
		return
	}
	if !found {
		http.NotFound(w, r)
		return
	}
	kfs, err := s.eng.Store().KeyFramesOfVideo(nil, id)
	if err != nil {
		httpError(w, err)
		return
	}
	type frameView struct {
		Index, Min, Max, Major int
		B64                    string
	}
	var frames []frameView
	for _, kf := range kfs {
		// Each iteration reads a full key-frame blob from the store; stop
		// early when the client is gone instead of decoding for nobody.
		if err := r.Context().Err(); err != nil {
			return
		}
		img, ok, err := s.eng.Store().KeyFrameImage(nil, kf.ID)
		if err != nil || !ok {
			continue
		}
		frames = append(frames, frameView{
			Index: kf.FrameIndex,
			Min:   kf.Min, Max: kf.Max,
			Major: kf.MajorRegions,
			B64:   base64.StdEncoding.EncodeToString(img),
		})
	}
	render(w, videoTmpl, map[string]any{"Info": info, "Frames": frames})
}

func (s *Server) handleFrame(w http.ResponseWriter, r *http.Request) {
	id, ok := idParam(w, r)
	if !ok {
		return
	}
	img, found, err := s.eng.Store().KeyFrameImage(nil, id)
	if err != nil {
		httpError(w, err)
		return
	}
	if !found {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "image/jpeg")
	w.Write(img)
}

func (s *Server) handleDownload(w http.ResponseWriter, r *http.Request) {
	id, ok := idParam(w, r)
	if !ok {
		return
	}
	raw, found, err := s.eng.Store().VideoBytes(nil, id)
	if err != nil {
		httpError(w, err)
		return
	}
	if !found {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=video-%d.cvj", id))
	w.Write(raw)
}

func (s *Server) handleAdminUpload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxUploadBytes)
	file, hdr, err := r.FormFile("video")
	if err != nil {
		uploadFormError(w, err, "missing video upload")
		return
	}
	defer file.Close()
	name := r.FormValue("name")
	if name == "" {
		name = hdr.Filename
	}
	// Stream the upload straight into ingest: the engine decodes and
	// indexes frame by frame, so large clips never materialise as decoded
	// frame slices (truncated uploads surface as io.ErrUnexpectedEOF from
	// the container reader). The shared classifier keeps client faults
	// (malformed container, empty name, body over the cap) apart from
	// storage faults — the latter must report 500, not blame the upload.
	if _, err := s.eng.IngestVideoStreamCtx(r.Context(), name, file); err != nil {
		classifiedError(w, fmt.Errorf("ingest failed: %w", err))
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func (s *Server) handleAdminDelete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	id, err := strconv.ParseInt(r.FormValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "bad id", http.StatusBadRequest)
		return
	}
	if err := s.eng.DeleteVideo(id); err != nil {
		storedError(w, err)
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

// handleAdminReindex rebuilds feature rows from the stored key-frame
// streams: with an id form value one video, without one the whole store
// (the administrator's "descriptors improved, refresh the index"
// operation). The videos stay searchable throughout — each rebuild swaps
// in atomically on commit.
func (s *Server) handleAdminReindex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST required", http.StatusMethodNotAllowed)
		return
	}
	if idStr := r.FormValue("id"); idStr != "" {
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil || id <= 0 {
			http.Error(w, "bad id", http.StatusBadRequest)
			return
		}
		if _, err := s.eng.ReindexVideoCtx(r.Context(), id); err != nil {
			storedError(w, fmt.Errorf("reindex failed: %w", err))
			return
		}
	} else if _, err := s.eng.ReindexAllCtx(r.Context()); err != nil {
		storedError(w, fmt.Errorf("reindex failed: %w", err))
		return
	}
	http.Redirect(w, r, "/", http.StatusSeeOther)
}

func idParam(w http.ResponseWriter, r *http.Request) (int64, bool) {
	id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
	if err != nil || id <= 0 {
		http.Error(w, "bad id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

func render(w http.ResponseWriter, t *template.Template, data any) {
	var buf bytes.Buffer
	if err := t.Execute(&buf, data); err != nil {
		httpError(w, err)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	buf.WriteTo(w)
}

func httpError(w http.ResponseWriter, err error) {
	http.Error(w, "internal error: "+err.Error(), http.StatusInternalServerError)
}

// classifiedError reports an upload-path failure with the shared status
// table (internal/httperr): malformed or truncated containers and empty
// names are the client's fault (400), a body over the cap is 413 naming
// the limit, abandonment is 503 — and everything else is an internal
// fault (500), which these handlers used to misreport as 400.
func classifiedError(w http.ResponseWriter, err error) {
	httperr.ApplyRetryAfter(w.Header(), err, 0)
	http.Error(w, httperr.Message(err), httperr.StatusOf(err))
}

// storedError reports a failure from an operation over already-stored
// data: a missing ID is 404; a container format error here means store
// corruption, so it stays 500 rather than blaming the request.
func storedError(w http.ResponseWriter, err error) {
	httperr.ApplyRetryAfter(w.Header(), err, 0)
	http.Error(w, httperr.Message(err), httperr.StatusOfStored(err))
}

// uploadFormError reports a FormFile failure: a body over the cap is 413
// with the limit named (it used to surface as a misleading "missing
// upload" 400); anything else really is a missing/malformed form part.
func uploadFormError(w http.ResponseWriter, err error, missing string) {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		http.Error(w, httperr.Message(err), http.StatusRequestEntityTooLarge)
		return
	}
	http.Error(w, missing, http.StatusBadRequest)
}
