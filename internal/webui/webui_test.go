package webui

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"cbvr/internal/core"
	"cbvr/internal/cvj"
	"cbvr/internal/synthvid"
)

func newTestServer(t *testing.T) (*Server, *core.Engine, *core.IngestResult) {
	t.Helper()
	eng, err := core.Open(filepath.Join(t.TempDir(), "web.db"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Width: 96, Height: 72, Frames: 10, Shots: 2, Seed: 3})
	res, err := eng.IngestFrames("cartoon_00", v.Frames, v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	return New(eng), eng, res
}

func multipartBody(t *testing.T, field, filename string, content []byte, extra map[string]string) (*bytes.Buffer, string) {
	t.Helper()
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	fw, err := mw.CreateFormFile(field, filename)
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(content)
	for k, v := range extra {
		mw.WriteField(k, v)
	}
	mw.Close()
	return &buf, mw.FormDataContentType()
}

func TestHomePageListsVideos(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "cartoon_00") {
		t.Error("home page missing video name")
	}
	if !strings.Contains(body, "Query by example frame") {
		t.Error("home page missing query form")
	}
}

func TestHomePageUnknownPath404(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/nope", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("status %d", rec.Code)
	}
}

func TestSearchReturnsResultGrid(t *testing.T) {
	srv, _, _ := newTestServer(t)
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Width: 96, Height: 72, Frames: 3, Shots: 1, Seed: 9})
	var jpg bytes.Buffer
	if err := v.Frames[0].EncodeJPEG(&jpg, 0); err != nil {
		t.Fatal(err)
	}
	body, ctype := multipartBody(t, "image", "q.jpg", jpg.Bytes(), map[string]string{"k": "5"})
	req := httptest.NewRequest(http.MethodPost, "/search", body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "/frame?id=") {
		t.Error("result grid missing frame links")
	}
}

func TestSearchRejectsNonPost(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/search", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("status %d", rec.Code)
	}
}

func TestSearchRejectsGarbageImage(t *testing.T) {
	srv, _, _ := newTestServer(t)
	body, ctype := multipartBody(t, "image", "q.jpg", []byte("not a jpeg"), nil)
	req := httptest.NewRequest(http.MethodPost, "/search", body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status %d", rec.Code)
	}
}

func TestVideoPageShowsKeyFrames(t *testing.T) {
	srv, _, res := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/video?id=%d", res.VideoID), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	body := rec.Body.String()
	if !strings.Contains(body, "data:image/jpeg;base64,") {
		t.Error("video page missing inline key frames")
	}
	if !strings.Contains(body, "bucket [") {
		t.Error("video page missing range buckets")
	}
}

func TestVideoPageMissing404(t *testing.T) {
	srv, _, _ := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/video?id=999", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("status %d", rec.Code)
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/video?id=abc", nil))
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id status %d", rec.Code)
	}
}

func TestFrameServesJPEG(t *testing.T) {
	srv, _, res := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/frame?id=%d", res.KeyFrameIDs[0]), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "image/jpeg" {
		t.Errorf("content type %q", ct)
	}
	if !bytes.HasPrefix(rec.Body.Bytes(), []byte{0xff, 0xd8}) {
		t.Error("payload is not a JPEG")
	}
}

func TestDownloadServesContainer(t *testing.T) {
	srv, _, res := newTestServer(t)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, fmt.Sprintf("/download?id=%d", res.VideoID), nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if !bytes.HasPrefix(rec.Body.Bytes(), []byte(cvj.Magic)) {
		t.Error("download is not a CVJ container")
	}
}

func TestAdminUploadIngests(t *testing.T) {
	srv, eng, _ := newTestServer(t)
	v := synthvid.Generate(synthvid.News, synthvid.Config{Width: 96, Height: 72, Frames: 6, Shots: 2, Seed: 4})
	raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, ctype := multipartBody(t, "video", "news.cvj", raw, map[string]string{"name": "news_99"})
	req := httptest.NewRequest(http.MethodPost, "/admin/upload", body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	vids, _ := eng.Store().ListVideos(nil)
	found := false
	for _, vi := range vids {
		if vi.Name == "news_99" {
			found = true
		}
	}
	if !found {
		t.Error("uploaded video not in store")
	}
}

func TestAdminUploadRejectsGarbage(t *testing.T) {
	srv, _, _ := newTestServer(t)
	body, ctype := multipartBody(t, "video", "x.cvj", []byte("garbage"), nil)
	req := httptest.NewRequest(http.MethodPost, "/admin/upload", body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("status %d", rec.Code)
	}
}

func TestAdminDelete(t *testing.T) {
	srv, eng, res := newTestServer(t)
	form := strings.NewReader(fmt.Sprintf("id=%d", res.VideoID))
	req := httptest.NewRequest(http.MethodPost, "/admin/delete", form)
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	n, _ := eng.Store().CountVideos(nil)
	if n != 0 {
		t.Errorf("videos after delete = %d", n)
	}
	// Deleting again names a video that no longer exists: 404.
	req = httptest.NewRequest(http.MethodPost, "/admin/delete", strings.NewReader(fmt.Sprintf("id=%d", res.VideoID)))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("double delete status %d", rec.Code)
	}
}

func TestEndToEndSearchFlow(t *testing.T) {
	// Upload → search with a frame of the uploaded video → its own key
	// frame ranks first → fetch that frame image.
	srv, _, _ := newTestServer(t)
	v := synthvid.Generate(synthvid.Nature, synthvid.Config{Width: 96, Height: 72, Frames: 8, Shots: 2, Seed: 12})
	raw, _ := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	body, ctype := multipartBody(t, "video", "nature.cvj", raw, map[string]string{"name": "nature_77"})
	req := httptest.NewRequest(http.MethodPost, "/admin/upload", body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("upload status %d", rec.Code)
	}

	var jpg bytes.Buffer
	v.Frames[0].EncodeJPEG(&jpg, 0)
	body, ctype = multipartBody(t, "image", "q.jpg", jpg.Bytes(), map[string]string{"k": "3"})
	req = httptest.NewRequest(http.MethodPost, "/search", body)
	req.Header.Set("Content-Type", ctype)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("search status %d", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "nature_77") {
		t.Error("uploaded video not found by its own frame")
	}

	// Pull the first frame link out of the grid and fetch it.
	page := rec.Body.String()
	i := strings.Index(page, "/frame?id=")
	if i < 0 {
		t.Fatal("no frame link")
	}
	end := i
	for end < len(page) && page[end] != '"' {
		end++
	}
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, page[i:end], nil))
	if rec.Code != http.StatusOK {
		t.Errorf("frame fetch status %d", rec.Code)
	}
	if _, err := io.ReadAll(rec.Result().Body); err != nil {
		t.Fatal(err)
	}
}

// TestAdminUploadTruncatedContainerRejected streams a container cut at a
// frame boundary through the upload handler: the streamed ingest must
// reject it (io.ErrUnexpectedEOF inside) with a 400 and commit nothing.
func TestAdminUploadTruncatedContainerRejected(t *testing.T) {
	srv, eng, _ := newTestServer(t)
	v := synthvid.Generate(synthvid.Movie, synthvid.Config{Width: 96, Height: 72, Frames: 8, Shots: 2, Seed: 5})
	raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, ctype := multipartBody(t, "video", "cut.cvj", raw[:len(raw)-6], map[string]string{"name": "cut_00"})
	req := httptest.NewRequest(http.MethodPost, "/admin/upload", body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	vids, _ := eng.Store().ListVideos(nil)
	for _, vi := range vids {
		if vi.Name == "cut_00" {
			t.Error("truncated upload committed")
		}
	}
}

// TestAdminUploadEmptyNameRejected uploads a valid container whose name
// field is only whitespace (so the filename fallback does not engage): the
// engine's empty-name check must surface as a 400, not a commit of an
// unaddressable video.
func TestAdminUploadEmptyNameRejected(t *testing.T) {
	srv, eng, _ := newTestServer(t)
	v := synthvid.Generate(synthvid.News, synthvid.Config{Width: 96, Height: 72, Frames: 4, Shots: 1, Seed: 6})
	raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	body, ctype := multipartBody(t, "video", "clip.cvj", raw, map[string]string{"name": "   "})
	req := httptest.NewRequest(http.MethodPost, "/admin/upload", body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "empty video name") {
		t.Errorf("body %q does not name the fault", rec.Body.String())
	}
	if n, _ := eng.Store().CountVideos(nil); n != 1 {
		t.Errorf("videos after rejected upload = %d, want 1", n)
	}
}

// TestAdminUploadOverLimit413 shrinks the upload cap and sends a valid
// container over it: the response must be 413 and name the limit, not the
// old "missing video upload" 400.
func TestAdminUploadOverLimit413(t *testing.T) {
	old := maxUploadBytes
	maxUploadBytes = 4096
	defer func() { maxUploadBytes = old }()
	srv, eng, _ := newTestServer(t)
	v := synthvid.Generate(synthvid.Movie, synthvid.Config{Width: 96, Height: 72, Frames: 12, Shots: 3, Seed: 7})
	raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(raw)) <= maxUploadBytes {
		t.Fatalf("container only %d bytes, need > %d", len(raw), maxUploadBytes)
	}
	body, ctype := multipartBody(t, "video", "big.cvj", raw, map[string]string{"name": "big_00"})
	req := httptest.NewRequest(http.MethodPost, "/admin/upload", body)
	req.Header.Set("Content-Type", ctype)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "4096-byte") {
		t.Errorf("body %q does not name the limit", rec.Body.String())
	}
	if n, _ := eng.Store().CountVideos(nil); n != 1 {
		t.Errorf("videos after rejected upload = %d, want 1", n)
	}
}

// TestAdminReindexSingle drives POST /admin/reindex with an id: the rows
// must be rebuilt in place (same IDs, parsable features) and the redirect
// must land home.
func TestAdminReindexSingle(t *testing.T) {
	srv, eng, res := newTestServer(t)
	before, err := eng.Store().KeyFramesOfVideo(nil, res.VideoID)
	if err != nil {
		t.Fatal(err)
	}
	form := strings.NewReader(fmt.Sprintf("id=%d", res.VideoID))
	req := httptest.NewRequest(http.MethodPost, "/admin/reindex", form)
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
	}
	after, err := eng.Store().KeyFramesOfVideo(nil, res.VideoID)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("%d rows after reindex, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i].ID != before[i].ID || after[i].SCH != before[i].SCH {
			t.Errorf("row %d changed identity or content across reindex", i)
		}
	}
}

// TestAdminReindexAll covers the no-id form (whole store) and method and
// id validation.
func TestAdminReindexAll(t *testing.T) {
	srv, _, _ := newTestServer(t)
	req := httptest.NewRequest(http.MethodPost, "/admin/reindex", strings.NewReader(""))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusSeeOther {
		t.Fatalf("reindex all: status %d: %s", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/admin/reindex", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET reindex: status %d", rec.Code)
	}

	req = httptest.NewRequest(http.MethodPost, "/admin/reindex", strings.NewReader("id=nope"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusBadRequest {
		t.Errorf("bad id: status %d", rec.Code)
	}

	// A well-formed id naming no stored video is an addressing failure,
	// not a malformed request: 404, not 400.
	req = httptest.NewRequest(http.MethodPost, "/admin/reindex", strings.NewReader("id=42"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Errorf("missing video: status %d", rec.Code)
	}
}

// TestVideoPageCancelledContextStopsEarly pins the cbvrvet:ctxloop fix
// in handleVideo: once the client is gone, the per-key-frame blob loop
// must bail out instead of decoding a whole video for nobody, so a
// cancelled request renders no frames.
func TestVideoPageCancelledContextStopsEarly(t *testing.T) {
	srv, _, res := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/video?id=%d", res.VideoID), nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if body := rec.Body.String(); strings.Contains(body, "data:image/jpeg;base64,") {
		t.Error("handler rendered key frames for a cancelled request")
	}
}
