// Package keyframe implements the paper's §4.1 key-frame extraction: walk
// the frame sequence in order, collapse every run of consecutive frames
// whose superficial-signature distance to the run's first frame stays
// within a threshold, and keep that first frame as the run's key frame.
//
// The paper's threshold is 800.0 over the §4.6 naive-signature distance
// (sum of 25 per-point Euclidean RGB distances).
package keyframe

import (
	"fmt"
	"io"

	"cbvr/internal/features"
	"cbvr/internal/imaging"
)

// DefaultThreshold is the paper's similarity cut-off ("if(dist > 800.0)").
const DefaultThreshold = 800.0

// FrameReader yields successive frames; it is satisfied by *cvj.Reader.
// Next returns io.EOF after the final frame.
type FrameReader interface {
	Next() (*imaging.Image, error)
}

// Extractor selects key frames. The zero value uses DefaultThreshold.
type Extractor struct {
	// Threshold is the maximum naive-signature distance for two frames to
	// be considered "similar" (and thus collapsed). Values <= 0 select
	// DefaultThreshold.
	Threshold float64
	// Recycle, when non-nil, is called with each frame that collapses into
	// the current run — i.e. every frame that is NOT kept as a key frame —
	// as soon as its fate is decided, before the next frame is read.
	// Sources that pool per-frame rasters use it to reclaim the buffer;
	// emitted key frames are never recycled (the consumer owns them).
	Recycle func(*imaging.Image)
}

func (e Extractor) threshold() float64 {
	if e.Threshold <= 0 {
		return DefaultThreshold
	}
	return e.Threshold
}

// KeyFrame is one selected representative frame.
type KeyFrame struct {
	// Index is the frame's position in the source video (0-based).
	Index int
	// Image is the frame itself.
	Image *imaging.Image
	// Signature is the frame's naive signature (computed during
	// selection, retained so callers don't recompute it).
	Signature *features.NaiveSignature
	// RunLength is the number of consecutive source frames this key frame
	// represents (itself included).
	RunLength int
}

// Extract selects key frames from an in-memory frame slice.
func (e Extractor) Extract(frames []*imaging.Image) ([]KeyFrame, error) {
	return e.ExtractReader(&sliceReader{frames: frames})
}

// ExtractReader selects key frames from a streaming frame source, holding
// only the current key frame in memory. This is the §4.1 algorithm: the
// first frame of each run is kept; following frames within the threshold
// are "deleted"; the first frame beyond the threshold starts the next run.
func (e Extractor) ExtractReader(r FrameReader) ([]KeyFrame, error) {
	var ptrs []*KeyFrame
	err := e.ExtractStream(r, func(k *KeyFrame) error {
		ptrs = append(ptrs, k)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(ptrs) == 0 {
		return nil, nil
	}
	out := make([]KeyFrame, len(ptrs))
	for i, k := range ptrs {
		out[i] = *k
	}
	return out, nil
}

// ExtractStream runs §4.1 selection over a streaming frame source, calling
// emit for each selected key frame as soon as it is chosen — before the
// next frame is read — so callers can overlap feature extraction of a key
// frame with decoding of the frames that follow it (the streamed ingest
// pipeline's shape). The emitted KeyFrame's Index, Image and Signature are
// final at emission; RunLength keeps growing in place as later frames
// collapse into the run and is only final once ExtractStream returns. An
// error from emit aborts selection.
func (e Extractor) ExtractStream(r FrameReader, emit func(*KeyFrame) error) error {
	thr := e.threshold()
	var cur *KeyFrame
	idx := -1
	for {
		im, err := r.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("keyframe: read frame %d: %w", idx+1, err)
		}
		idx++
		sig := features.ExtractNaive(im)
		if cur != nil {
			dist, derr := cur.Signature.DistanceTo(sig)
			if derr != nil {
				return derr
			}
			if dist <= thr {
				// Similar to the current key frame: collapse.
				cur.RunLength++
				if e.Recycle != nil {
					e.Recycle(im)
				}
				continue
			}
		}
		cur = &KeyFrame{Index: idx, Image: im, Signature: sig, RunLength: 1}
		if err := emit(cur); err != nil {
			return err
		}
	}
}

// sliceReader adapts a frame slice to FrameReader.
type sliceReader struct {
	frames []*imaging.Image
	pos    int
}

func (s *sliceReader) Next() (*imaging.Image, error) {
	if s.pos >= len(s.frames) {
		return nil, io.EOF
	}
	im := s.frames[s.pos]
	s.pos++
	return im, nil
}

// Indices returns just the source positions of the key frames.
func Indices(kfs []KeyFrame) []int {
	out := make([]int, len(kfs))
	for i, k := range kfs {
		out[i] = k.Index
	}
	return out
}
