// Package keyframe implements the paper's §4.1 key-frame extraction: walk
// the frame sequence in order, collapse every run of consecutive frames
// whose superficial-signature distance to the run's first frame stays
// within a threshold, and keep that first frame as the run's key frame.
//
// The paper's threshold is 800.0 over the §4.6 naive-signature distance
// (sum of 25 per-point Euclidean RGB distances).
package keyframe

import (
	"fmt"
	"io"

	"cbvr/internal/features"
	"cbvr/internal/imaging"
)

// DefaultThreshold is the paper's similarity cut-off ("if(dist > 800.0)").
const DefaultThreshold = 800.0

// FrameReader yields successive frames; it is satisfied by *cvj.Reader.
// Next returns io.EOF after the final frame.
type FrameReader interface {
	Next() (*imaging.Image, error)
}

// Extractor selects key frames. The zero value uses DefaultThreshold.
type Extractor struct {
	// Threshold is the maximum naive-signature distance for two frames to
	// be considered "similar" (and thus collapsed). Values <= 0 select
	// DefaultThreshold.
	Threshold float64
}

func (e Extractor) threshold() float64 {
	if e.Threshold <= 0 {
		return DefaultThreshold
	}
	return e.Threshold
}

// KeyFrame is one selected representative frame.
type KeyFrame struct {
	// Index is the frame's position in the source video (0-based).
	Index int
	// Image is the frame itself.
	Image *imaging.Image
	// Signature is the frame's naive signature (computed during
	// selection, retained so callers don't recompute it).
	Signature *features.NaiveSignature
	// RunLength is the number of consecutive source frames this key frame
	// represents (itself included).
	RunLength int
}

// Extract selects key frames from an in-memory frame slice.
func (e Extractor) Extract(frames []*imaging.Image) ([]KeyFrame, error) {
	return e.ExtractReader(&sliceReader{frames: frames})
}

// ExtractReader selects key frames from a streaming frame source, holding
// only the current key frame in memory. This is the §4.1 algorithm: the
// first frame of each run is kept; following frames within the threshold
// are "deleted"; the first frame beyond the threshold starts the next run.
func (e Extractor) ExtractReader(r FrameReader) ([]KeyFrame, error) {
	thr := e.threshold()
	var out []KeyFrame
	idx := -1
	for {
		im, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("keyframe: read frame %d: %w", idx+1, err)
		}
		idx++
		sig := features.ExtractNaive(im)
		if len(out) > 0 {
			cur := &out[len(out)-1]
			dist, derr := cur.Signature.DistanceTo(sig)
			if derr != nil {
				return nil, derr
			}
			if dist <= thr {
				// Similar to the current key frame: collapse.
				cur.RunLength++
				continue
			}
		}
		out = append(out, KeyFrame{Index: idx, Image: im, Signature: sig, RunLength: 1})
	}
	return out, nil
}

// sliceReader adapts a frame slice to FrameReader.
type sliceReader struct {
	frames []*imaging.Image
	pos    int
}

func (s *sliceReader) Next() (*imaging.Image, error) {
	if s.pos >= len(s.frames) {
		return nil, io.EOF
	}
	im := s.frames[s.pos]
	s.pos++
	return im, nil
}

// Indices returns just the source positions of the key frames.
func Indices(kfs []KeyFrame) []int {
	out := make([]int, len(kfs))
	for i, k := range kfs {
		out[i] = k.Index
	}
	return out
}
