package keyframe

import (
	"errors"
	"fmt"
	"io"
	"testing"

	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
)

func solidFrame(r, g, b uint8) *imaging.Image {
	im := imaging.New(40, 30)
	im.Fill(r, g, b)
	return im
}

func TestCollapsesIdenticalFrames(t *testing.T) {
	frames := []*imaging.Image{
		solidFrame(10, 10, 10),
		solidFrame(10, 10, 10),
		solidFrame(10, 10, 10),
	}
	kfs, err := Extractor{}.Extract(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfs) != 1 {
		t.Fatalf("key frames = %d, want 1", len(kfs))
	}
	if kfs[0].Index != 0 || kfs[0].RunLength != 3 {
		t.Errorf("key frame %+v", kfs[0])
	}
}

func TestSplitsOnSceneChange(t *testing.T) {
	frames := []*imaging.Image{
		solidFrame(0, 0, 0),
		solidFrame(0, 0, 0),
		solidFrame(255, 255, 255), // hard cut
		solidFrame(255, 255, 255),
	}
	kfs, err := Extractor{}.Extract(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfs) != 2 {
		t.Fatalf("key frames = %d, want 2", len(kfs))
	}
	if kfs[0].Index != 0 || kfs[1].Index != 2 {
		t.Errorf("indices %d, %d", kfs[0].Index, kfs[1].Index)
	}
	if kfs[0].RunLength != 2 || kfs[1].RunLength != 2 {
		t.Errorf("run lengths %d, %d", kfs[0].RunLength, kfs[1].RunLength)
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	// A higher threshold can only produce fewer or equal key frames.
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{Frames: 30, Shots: 4, Seed: 5})
	var prev int
	for i, thr := range []float64{100, 400, DefaultThreshold, 3000, 20000} {
		kfs, err := Extractor{Threshold: thr}.Extract(v.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(kfs) > prev {
			t.Errorf("threshold %g produced more key frames (%d) than a lower one (%d)", thr, len(kfs), prev)
		}
		prev = len(kfs)
	}
}

func TestRunLengthsSumToFrameCount(t *testing.T) {
	v := synthvid.Generate(synthvid.Movie, synthvid.Config{Frames: 25, Shots: 3, Seed: 6})
	kfs, err := Extractor{}.Extract(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, k := range kfs {
		sum += k.RunLength
	}
	if sum != len(v.Frames) {
		t.Errorf("run lengths sum %d, want %d", sum, len(v.Frames))
	}
	// Indices strictly increasing and first is 0.
	if kfs[0].Index != 0 {
		t.Error("first key frame is not frame 0")
	}
	for i := 1; i < len(kfs); i++ {
		if kfs[i].Index <= kfs[i-1].Index {
			t.Error("key frame indices not increasing")
		}
	}
}

func TestShotCutsProduceKeyFrames(t *testing.T) {
	// With multiple distinct shots, expect more than one key frame at the
	// paper threshold.
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Frames: 40, Shots: 5, Seed: 7})
	kfs, err := Extractor{}.Extract(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfs) < 2 {
		t.Errorf("only %d key frames across 5 shots", len(kfs))
	}
	if len(kfs) == len(v.Frames) {
		t.Errorf("no compression: every frame kept")
	}
}

func TestEmptyInput(t *testing.T) {
	kfs, err := Extractor{}.Extract(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfs) != 0 {
		t.Errorf("key frames from empty input: %d", len(kfs))
	}
}

type failingReader struct{ n int }

func (f *failingReader) Next() (*imaging.Image, error) {
	if f.n == 0 {
		f.n++
		return solidFrame(1, 2, 3), nil
	}
	return nil, errors.New("disk on fire")
}

func TestReaderErrorPropagates(t *testing.T) {
	_, err := Extractor{}.ExtractReader(&failingReader{})
	if err == nil || errors.Is(err, io.EOF) {
		t.Errorf("want propagation, got %v", err)
	}
}

func TestIndicesHelper(t *testing.T) {
	frames := []*imaging.Image{solidFrame(0, 0, 0), solidFrame(255, 255, 255)}
	kfs, _ := Extractor{}.Extract(frames)
	idx := Indices(kfs)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("indices %v", idx)
	}
}

func TestSignatureRetained(t *testing.T) {
	kfs, _ := Extractor{}.Extract([]*imaging.Image{solidFrame(9, 9, 9)})
	if kfs[0].Signature == nil {
		t.Error("signature not retained")
	}
}

// eventReader wraps a sliceReader and logs each read so tests can verify
// emission interleaves with decoding.
type eventReader struct {
	inner  FrameReader
	events *[]string
	next   int
}

func (r *eventReader) Next() (*imaging.Image, error) {
	im, err := r.inner.Next()
	if err == nil {
		*r.events = append(*r.events, fmt.Sprintf("read %d", r.next))
		r.next++
	}
	return im, err
}

// TestExtractStreamMatchesExtract pins the streaming emission path to the
// batch extractor: same indices, signatures and final run lengths.
func TestExtractStreamMatchesExtract(t *testing.T) {
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{Frames: 36, Shots: 5, Seed: 21})
	want, err := (Extractor{}).Extract(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	var got []*KeyFrame
	err = (Extractor{}).ExtractStream(&sliceReader{frames: v.Frames}, func(k *KeyFrame) error {
		got = append(got, k)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream emitted %d key frames, batch selected %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Index != want[i].Index {
			t.Errorf("key frame %d: index %d != %d", i, got[i].Index, want[i].Index)
		}
		if got[i].RunLength != want[i].RunLength {
			t.Errorf("key frame %d: run length %d != %d", i, got[i].RunLength, want[i].RunLength)
		}
		if got[i].Signature.String() != want[i].Signature.String() {
			t.Errorf("key frame %d: signature diverges", i)
		}
		if !got[i].Image.Equal(want[i].Image) {
			t.Errorf("key frame %d: image diverges", i)
		}
	}
}

// TestExtractStreamEmitsBeforeNextRead verifies the pipelining contract: a
// key frame is handed to emit before the following frame is decoded.
func TestExtractStreamEmitsBeforeNextRead(t *testing.T) {
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Frames: 24, Shots: 4, Seed: 22})
	var events []string
	r := &eventReader{inner: &sliceReader{frames: v.Frames}, events: &events}
	err := (Extractor{}).ExtractStream(r, func(k *KeyFrame) error {
		events = append(events, fmt.Sprintf("emit %d", k.Index))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range events {
		var idx int
		if n, _ := fmt.Sscanf(ev, "emit %d", &idx); n != 1 {
			continue
		}
		if i == 0 || events[i-1] != fmt.Sprintf("read %d", idx) {
			t.Fatalf("key frame %d emitted out of order: %v", idx, events[max(0, i-2):i+1])
		}
	}
	if len(events) < 2 || events[0] != "read 0" || events[1] != "emit 0" {
		t.Fatalf("frame 0 not emitted immediately: %v", events[:2])
	}
}

// TestExtractStreamEmitErrorAborts checks that an emit error stops
// selection and propagates.
func TestExtractStreamEmitErrorAborts(t *testing.T) {
	v := synthvid.Generate(synthvid.News, synthvid.Config{Frames: 16, Shots: 3, Seed: 23})
	sentinel := errors.New("stop")
	var emitted int
	err := (Extractor{}).ExtractStream(&sliceReader{frames: v.Frames}, func(k *KeyFrame) error {
		emitted++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("emit error not propagated: %v", err)
	}
	if emitted != 1 {
		t.Fatalf("selection continued after emit error (%d emissions)", emitted)
	}
}
