package keyframe

import (
	"errors"
	"io"
	"testing"

	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
)

func solidFrame(r, g, b uint8) *imaging.Image {
	im := imaging.New(40, 30)
	im.Fill(r, g, b)
	return im
}

func TestCollapsesIdenticalFrames(t *testing.T) {
	frames := []*imaging.Image{
		solidFrame(10, 10, 10),
		solidFrame(10, 10, 10),
		solidFrame(10, 10, 10),
	}
	kfs, err := Extractor{}.Extract(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfs) != 1 {
		t.Fatalf("key frames = %d, want 1", len(kfs))
	}
	if kfs[0].Index != 0 || kfs[0].RunLength != 3 {
		t.Errorf("key frame %+v", kfs[0])
	}
}

func TestSplitsOnSceneChange(t *testing.T) {
	frames := []*imaging.Image{
		solidFrame(0, 0, 0),
		solidFrame(0, 0, 0),
		solidFrame(255, 255, 255), // hard cut
		solidFrame(255, 255, 255),
	}
	kfs, err := Extractor{}.Extract(frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfs) != 2 {
		t.Fatalf("key frames = %d, want 2", len(kfs))
	}
	if kfs[0].Index != 0 || kfs[1].Index != 2 {
		t.Errorf("indices %d, %d", kfs[0].Index, kfs[1].Index)
	}
	if kfs[0].RunLength != 2 || kfs[1].RunLength != 2 {
		t.Errorf("run lengths %d, %d", kfs[0].RunLength, kfs[1].RunLength)
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	// A higher threshold can only produce fewer or equal key frames.
	v := synthvid.Generate(synthvid.Sports, synthvid.Config{Frames: 30, Shots: 4, Seed: 5})
	var prev int
	for i, thr := range []float64{100, 400, DefaultThreshold, 3000, 20000} {
		kfs, err := Extractor{Threshold: thr}.Extract(v.Frames)
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && len(kfs) > prev {
			t.Errorf("threshold %g produced more key frames (%d) than a lower one (%d)", thr, len(kfs), prev)
		}
		prev = len(kfs)
	}
}

func TestRunLengthsSumToFrameCount(t *testing.T) {
	v := synthvid.Generate(synthvid.Movie, synthvid.Config{Frames: 25, Shots: 3, Seed: 6})
	kfs, err := Extractor{}.Extract(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0
	for _, k := range kfs {
		sum += k.RunLength
	}
	if sum != len(v.Frames) {
		t.Errorf("run lengths sum %d, want %d", sum, len(v.Frames))
	}
	// Indices strictly increasing and first is 0.
	if kfs[0].Index != 0 {
		t.Error("first key frame is not frame 0")
	}
	for i := 1; i < len(kfs); i++ {
		if kfs[i].Index <= kfs[i-1].Index {
			t.Error("key frame indices not increasing")
		}
	}
}

func TestShotCutsProduceKeyFrames(t *testing.T) {
	// With multiple distinct shots, expect more than one key frame at the
	// paper threshold.
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Frames: 40, Shots: 5, Seed: 7})
	kfs, err := Extractor{}.Extract(v.Frames)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfs) < 2 {
		t.Errorf("only %d key frames across 5 shots", len(kfs))
	}
	if len(kfs) == len(v.Frames) {
		t.Errorf("no compression: every frame kept")
	}
}

func TestEmptyInput(t *testing.T) {
	kfs, err := Extractor{}.Extract(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfs) != 0 {
		t.Errorf("key frames from empty input: %d", len(kfs))
	}
}

type failingReader struct{ n int }

func (f *failingReader) Next() (*imaging.Image, error) {
	if f.n == 0 {
		f.n++
		return solidFrame(1, 2, 3), nil
	}
	return nil, errors.New("disk on fire")
}

func TestReaderErrorPropagates(t *testing.T) {
	_, err := Extractor{}.ExtractReader(&failingReader{})
	if err == nil || errors.Is(err, io.EOF) {
		t.Errorf("want propagation, got %v", err)
	}
}

func TestIndicesHelper(t *testing.T) {
	frames := []*imaging.Image{solidFrame(0, 0, 0), solidFrame(255, 255, 255)}
	kfs, _ := Extractor{}.Extract(frames)
	idx := Indices(kfs)
	if len(idx) != 2 || idx[0] != 0 || idx[1] != 1 {
		t.Errorf("indices %v", idx)
	}
}

func TestSignatureRetained(t *testing.T) {
	kfs, _ := Extractor{}.Extract([]*imaging.Image{solidFrame(9, 9, 9)})
	if kfs[0].Signature == nil {
		t.Error("signature not retained")
	}
}
