package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"testing"

	"cbvr/internal/synthvid"
)

// TestStatsEndpoint pins the /api/v1/stats contract: GET-only, and after
// an ingest plus a search it reports the engine's cumulative search-work
// tally and the cell-index shape the observability surfaces (cbvrctl
// stats) rely on.
func TestStatsEndpoint(t *testing.T) {
	eng := openTestEngine(t)
	ts := httptest.NewServer(New(eng, Options{}))
	defer ts.Close()

	raw, v := testContainer(t, synthvid.Cartoon, 700, 16)
	var ir ingestResp
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=statsclip", bytes.NewReader(raw), &ir); resp.StatusCode != 200 {
		t.Fatalf("ingest: %d %s", resp.StatusCode, body)
	}

	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/search", bytes.NewReader(queryJPEG(t, v)))
	req.Header.Set("Content-Type", "image/jpeg")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("search: %d", resp.StatusCode)
	}

	var stats struct {
		Search struct {
			Searches int64 `json:"searches"`
			BaseRows int64 `json:"base_rows"`
			RowEvals int64 `json:"row_evals"`
		} `json:"search"`
		Cells struct {
			Shards      int `json:"shards"`
			IndexedRows int `json:"indexed_rows"`
		} `json:"cells"`
	}
	if resp, body := doJSON(t, "GET", ts.URL+"/api/v1/stats", nil, &stats); resp.StatusCode != 200 {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	if stats.Search.Searches < 1 || stats.Search.RowEvals < 1 {
		t.Fatalf("tally missing the search just served: %+v", stats.Search)
	}
	if stats.Cells.Shards < 1 {
		t.Fatalf("cell stats report %d shards", stats.Cells.Shards)
	}

	if resp, _ := doJSON(t, "POST", ts.URL+"/api/v1/stats", nil, nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /api/v1/stats: %d, want 405", resp.StatusCode)
	}
}
