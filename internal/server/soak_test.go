package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cbvr/internal/admission"
	"cbvr/internal/core"
	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
	"cbvr/internal/vstore"
	"cbvr/internal/vstore/faultfs"
)

// chaosProxy is a TCP forwarder that misbehaves on the client→server leg:
// it can stall (stop forwarding upstream while keeping the connection
// alive — a slow-loris body) or cut (sever both legs mid-stream — a
// client that vanished) after a configured number of forwarded bytes.
// The response leg always passes through untouched, so clients still see
// whatever the server managed to say.
type chaosProxy struct {
	ln     net.Listener
	target string

	// stallAfter / cutAfter apply per connection; 0 disables that vice.
	stallAfter int64
	cutAfter   int64

	wg sync.WaitGroup
}

func newChaosProxy(t *testing.T, target string, stallAfter, cutAfter int64) *chaosProxy {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &chaosProxy{ln: ln, target: strings.TrimPrefix(target, "http://"), stallAfter: stallAfter, cutAfter: cutAfter}
	p.wg.Add(1)
	go p.accept()
	return p
}

func (p *chaosProxy) URL() string { return "http://" + p.ln.Addr().String() }

func (p *chaosProxy) Close() {
	p.ln.Close()
	p.wg.Wait()
}

func (p *chaosProxy) accept() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go p.handle(c)
	}
}

func (p *chaosProxy) handle(client net.Conn) {
	defer p.wg.Done()
	defer client.Close()
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		return
	}
	defer up.Close()

	done := make(chan struct{}, 2)
	// Response leg: verbatim. When the server gives up on the request
	// (watchdog 408, deadline 503) the response still reaches the client.
	go func() {
		io.Copy(client, up)
		client.Close() // unblock the request-leg read
		done <- struct{}{}
	}()
	// Request leg: forward until the configured vice kicks in.
	go func() {
		defer func() { done <- struct{}{} }()
		var forwarded int64
		buf := make([]byte, 512)
		for {
			n, err := client.Read(buf)
			if n > 0 {
				w := buf[:n]
				if p.cutAfter > 0 && forwarded+int64(n) >= p.cutAfter {
					up.Write(w[:p.cutAfter-forwarded])
					client.Close()
					up.Close()
					return
				}
				if p.stallAfter > 0 && forwarded >= p.stallAfter {
					// Stall: swallow further bytes without forwarding; the
					// server's watchdog, not this loop, ends the request.
					forwarded += int64(n)
					continue
				}
				if _, werr := up.Write(w); werr != nil {
					return
				}
				forwarded += int64(n)
			}
			if err != nil {
				return
			}
		}
	}()
	<-done
}

// TestOverloadSoak is the chaos soak the resilience stack is judged by:
// a few seconds of concurrent searches, uploads, deadline storms,
// slow-loris bodies, mid-body disconnects and healthz polling against a
// store with injected I/O latency — under tight admission limits chosen
// to force real shedding. Afterwards the server must be undamaged: no
// stuck goroutines, load level back to zero, search results bit-identical
// to the single-threaded reference, store fsck-clean on reopen.
func TestOverloadSoak(t *testing.T) {
	ffs := faultfs.New()
	eng, err := core.Open("soak.db", core.Options{Store: vstore.Options{FS: ffs}})
	if err != nil {
		t.Fatal(err)
	}

	// Seed corpus: small enough that every search rides the exact path, so
	// post-soak bit-identity does not depend on the brownout level history.
	var qframe *synthvid.Video
	for i := 0; i < 3; i++ {
		raw, v := testContainer(t, synthvid.Category(i%3), int64(800+i), 12)
		if _, err := eng.IngestVideo(fmt.Sprintf("seed%02d", i), raw); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			qframe = v
		}
	}
	qjpeg := queryJPEG(t, qframe)

	// Tight limits so the storm really sheds; short windows so the level
	// clears quickly once the storm stops.
	adm := admission.Config{
		MaxWait:       100 * time.Millisecond,
		LatencyBudget: 50 * time.Millisecond,
		LatencyWindow: time.Second,
		ShedWindow:    500 * time.Millisecond,
	}
	adm.Limit[admission.Search] = 2
	adm.Queue[admission.Search] = 2
	adm.Limit[admission.Ingest] = 2
	srv := New(eng, Options{
		Admission:        adm,
		SearchDeadline:   2 * time.Second,
		MutateDeadline:   3 * time.Second,
		BodyStallTimeout: 300 * time.Millisecond,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// A slow disk under the store: every few reads costs 2ms.
	ffs.SetLatency(func(op faultfs.Op) time.Duration {
		if op.Kind == faultfs.OpRead && op.Index%5 == 0 {
			return 2 * time.Millisecond
		}
		return 0
	})

	stallProxy := newChaosProxy(t, ts.URL, 600, 0)
	cutProxy := newChaosProxy(t, ts.URL, 0, 900)

	tr := &http.Transport{}
	client := &http.Client{Transport: tr, Timeout: 10 * time.Second}
	do := func(method, url string, body io.Reader) (*http.Response, error) {
		req, err := http.NewRequest(method, url, body)
		if err != nil {
			t.Fatal(err)
		}
		return client.Do(req)
	}
	drain := func(resp *http.Response) {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	// Warm every path once, then fix the goroutine baseline.
	if resp, err := do("POST", ts.URL+"/api/v1/search?k=5", bytes.NewReader(qjpeg)); err != nil {
		t.Fatal(err)
	} else {
		drain(resp)
	}
	runtime.GC()
	baseline := runtime.NumGoroutine()

	var (
		wg        sync.WaitGroup
		served    atomic.Int64
		shed429   atomic.Int64
		shed503   atomic.Int64
		badStatus atomic.Int64
		mu        sync.Mutex
		firstBad  string
	)
	noteBad := func(where string, code int, hdr http.Header) {
		badStatus.Add(1)
		mu.Lock()
		if firstBad == "" {
			firstBad = fmt.Sprintf("%s: status %d retry-after=%q", where, code, hdr.Get("Retry-After"))
		}
		mu.Unlock()
	}
	tally := func(where string, resp *http.Response) {
		switch resp.StatusCode {
		case 200:
			served.Add(1)
		case 429:
			shed429.Add(1)
			if resp.Header.Get("Retry-After") == "" {
				noteBad(where+" (429 without Retry-After)", resp.StatusCode, resp.Header)
			}
		case 503:
			shed503.Add(1)
		default:
			noteBad(where, resp.StatusCode, resp.Header)
		}
	}

	// Searchers: the bread-and-butter load.
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				resp, err := do("POST", ts.URL+"/api/v1/search?k=10", bytes.NewReader(qjpeg))
				if err != nil {
					continue // connection-level casualties are the proxies' doing
				}
				tally("search", resp)
				drain(resp)
			}
		}()
	}
	// Uploaders: mutation pressure (each body is a fresh valid container).
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				raw, _ := testContainer(t, synthvid.Category((g+i)%3), int64(900+10*g+i), 8)
				resp, err := do("POST", fmt.Sprintf("%s/api/v1/ingest?name=storm%02d-%02d", ts.URL, g, i), bytes.NewReader(raw))
				if err != nil {
					continue
				}
				tally("ingest", resp)
				drain(resp)
			}
		}(g)
	}
	// Deadline storm: 1ms budgets that expire mid-flight must come back as
	// fast 503s, never hang past the deadline by much.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			req, err := http.NewRequest("POST", ts.URL+"/api/v1/search?k=10", bytes.NewReader(qjpeg))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set(DeadlineHeader, "1")
			resp, err := client.Do(req)
			if err != nil {
				continue
			}
			if resp.StatusCode != 503 && resp.StatusCode != 429 && resp.StatusCode != 200 {
				noteBad("deadline-storm", resp.StatusCode, resp.Header)
			}
			drain(resp)
		}
	}()
	// Slow-loris uploads through the stalling proxy: headers and 600 bytes
	// arrive, then silence. The watchdog must 408 them; any response (or a
	// dead connection) is acceptable to the client side.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			raw, _ := testContainer(t, synthvid.Cartoon, int64(950+g), 8)
			for i := 0; i < 2; i++ {
				resp, err := do("POST", fmt.Sprintf("%s/api/v1/ingest?name=loris%02d", stallProxy.URL(), g), bytes.NewReader(raw))
				if err != nil {
					continue
				}
				if resp.StatusCode != 408 && resp.StatusCode != 400 && resp.StatusCode != 429 && resp.StatusCode != 503 {
					noteBad("slow-loris", resp.StatusCode, resp.Header)
				}
				drain(resp)
			}
		}(g)
	}
	// Mid-body disconnects through the cutting proxy: the server must
	// treat the truncated stream as a client error and clean up; the
	// client usually sees a transport error.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			raw, _ := testContainer(t, synthvid.Sports, int64(960+g), 8)
			for i := 0; i < 2; i++ {
				resp, err := do("POST", fmt.Sprintf("%s/api/v1/ingest?name=cut%02d", cutProxy.URL(), g), bytes.NewReader(raw))
				if err != nil {
					continue
				}
				drain(resp)
			}
		}(g)
	}
	// Healthz pollers: the status must always be one of the defined
	// states, and shedding/degraded 503s must carry Retry-After.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				var health map[string]any
				resp, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
				status, _ := health["status"].(string)
				switch status {
				case "ok", "browned-out":
					if resp.StatusCode != 200 {
						noteBad("healthz "+status, resp.StatusCode, resp.Header)
					}
				case "shedding", "degraded":
					if resp.StatusCode != 503 || resp.Header.Get("Retry-After") == "" {
						noteBad("healthz "+status, resp.StatusCode, resp.Header)
					}
				default:
					noteBad("healthz unknown status "+status, resp.StatusCode, resp.Header)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}()
	}
	wg.Wait()

	if badStatus.Load() > 0 {
		t.Fatalf("%d out-of-contract responses during soak; first: %s", badStatus.Load(), firstBad)
	}
	if served.Load() == 0 {
		t.Fatal("soak served nothing — the storm configuration is broken")
	}
	t.Logf("soak: %d served, %d shed 429, %d shed 503", served.Load(), shed429.Load(), shed503.Load())

	// Storm over: stop injecting latency, drop the chaos conns, and wait
	// for the load signal to decay to zero.
	ffs.SetLatency(nil)
	stallProxy.Close()
	cutProxy.Close()
	waitFor(t, 10*time.Second, func() bool {
		shedding, _ := srv.Admission().Shedding()
		return srv.Admission().Level() == 0 && !shedding
	})

	// Exactness is restored: the API ranking is bit-identical to the
	// engine's single-threaded reference, and the response says level 0.
	img, err := imaging.DecodeJPEG(bytes.NewReader(qjpeg))
	if err != nil {
		t.Fatal(err)
	}
	planes := features.NewPlanes(img)
	want, err := eng.SearchWithSetReference(planes.ExtractAll(), core.BucketFromPlanes(planes), core.SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	var sr searchResp
	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/search?k=10", bytes.NewReader(qjpeg), &sr)
	if resp.StatusCode != 200 {
		t.Fatalf("post-soak search: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(BrownoutHeader); got != "0.000" {
		t.Fatalf("post-soak brownout header = %q, want 0.000", got)
	}
	if len(sr.Matches) != len(want) {
		t.Fatalf("post-soak search returned %d matches, reference %d", len(sr.Matches), len(want))
	}
	for i, m := range sr.Matches {
		w := want[i]
		if m.KeyFrameID != w.KeyFrameID || m.VideoID != w.VideoID || m.Distance != w.Distance {
			t.Fatalf("post-soak rank %d: API %+v != reference %+v", i, m, w)
		}
	}

	// Goroutine accounting: once idle conns are dropped, the count must
	// return to (near) the pre-storm baseline. On failure, dump the stacks
	// so the leak is attributable.
	tr.CloseIdleConnections()
	http.DefaultClient.CloseIdleConnections()
	leakDeadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+8 {
			break
		}
		if time.Now().After(leakDeadline) {
			pprof.Lookup("goroutine").WriteTo(os.Stderr, 1)
			t.Fatalf("goroutines: %d, baseline %d — leak (stacks above)", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Shutdown and reopen: the store must come back fsck-clean.
	ts.Close()
	srv.Wait()
	if err := eng.Close(); err != nil {
		t.Fatalf("close after soak: %v", err)
	}
	db, err := vstore.Open("soak.db", &vstore.Options{FS: ffs})
	if err != nil {
		t.Fatalf("reopen after soak: %v", err)
	}
	defer db.Close()
	rep, err := vstore.Check(db)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-soak fsck: %v", rep.Problems)
	}
}
