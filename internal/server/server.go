// Package server exposes the CBVR engine to multiple concurrent clients
// over a JSON/HTTP API. It is the programmatic counterpart of the HTML UI
// (internal/webui): both sit on the same context-aware engine entry points
// and the same error classification (internal/httperr).
//
// Concurrency model: uploads run the engine's two-phase staged ingest —
// decode, key-frame selection, feature extraction and blob staging proceed
// with no store-wide lock, so N clients make progress simultaneously and
// serialize only on the short row-commit section. An admission queue
// bounds the number of in-flight ingests (excess uploads get 429 +
// Retry-After instead of piling decoded frames into memory). Every handler
// threads its request context into the engine, so a dropped connection or
// a server shutdown aborts the work within one decode iteration and
// discards any staged pages.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"cbvr/internal/core"
	"cbvr/internal/httperr"
	"cbvr/internal/imaging"
)

// Options tunes the API server.
type Options struct {
	// MaxUploadBytes caps request bodies (containers and query frames);
	// <= 0 selects 64 MiB. Oversized bodies fail with 413 naming the cap.
	MaxUploadBytes int64
	// MaxInFlightIngests bounds concurrently admitted uploads; excess
	// requests are turned away immediately with 429 + Retry-After rather
	// than queued (the client can pace itself; the server must not buffer
	// unbounded decode work). <= 0 selects 2×GOMAXPROCS, the point past
	// which extra decodes only contend for cores.
	MaxInFlightIngests int
}

// DefaultMaxUploadBytes is the body cap when Options leaves it zero.
const DefaultMaxUploadBytes = 64 << 20

// Server is the JSON API handler set. Create one with New.
type Server struct {
	eng       *core.Engine
	mux       *http.ServeMux
	opts      Options
	ingestSem chan struct{}

	// baseCtx is cancelled by Abort: every in-flight request's context is
	// derived from it, so a forced shutdown stops ctx-aware engine work
	// (staged pages are discarded, nothing commits).
	baseCtx context.Context
	abort   context.CancelFunc

	// wg counts in-flight requests; Wait blocks until each handler has
	// returned (and with it released any staged blob pages), which must
	// happen before the store can close.
	wg sync.WaitGroup

	// admitHook, when set by tests, fires after an upload wins an
	// admission slot (deterministic queue-full setups).
	admitHook func(name string)
}

// New builds the API route table around an engine.
func New(eng *core.Engine, opts Options) *Server {
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if opts.MaxInFlightIngests <= 0 {
		opts.MaxInFlightIngests = 2 * runtime.GOMAXPROCS(0)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		eng:       eng,
		mux:       http.NewServeMux(),
		opts:      opts,
		ingestSem: make(chan struct{}, opts.MaxInFlightIngests),
		baseCtx:   ctx,
		abort:     cancel,
	}
	s.mux.HandleFunc("/api/v1/search", s.handleSearch)
	s.mux.HandleFunc("/api/v1/videos", s.handleVideos)
	s.mux.HandleFunc("/api/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/api/v1/reindex", s.handleReindex)
	s.mux.HandleFunc("/api/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// degradedRetryAfter is the Retry-After value sent with degraded-store
// 503s. A degraded store recovers only when the process restarts and
// recovery settles durable state, so the backoff is generous — clients
// gain nothing by hammering a read-only instance.
const degradedRetryAfter = "30"

// handleHealthz reports liveness and store health: 200 {"status":"ok"}
// while writable, 503 {"status":"degraded",...} once a write fault has
// forced the store read-only. Searches still work in the degraded state;
// orchestrators use this signal to rotate in a replacement.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		methodErr(w, "GET, HEAD")
		return
	}
	if err := s.eng.Degraded(); err != nil {
		w.Header().Set("Retry-After", degradedRetryAfter)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{
			"status": "degraded",
			"reason": err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ServeHTTP implements http.Handler. Each request runs under a context
// that dies with either the client connection or Abort, whichever first.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.wg.Add(1)
	defer s.wg.Done()
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

// Abort cancels every in-flight request's context. The drain path calls it
// when graceful shutdown times out: ctx-aware engine loops stop within one
// decode iteration, staged uploads are discarded uncommitted, and handlers
// return 503.
func (s *Server) Abort() { s.abort() }

// Wait blocks until every in-flight request handler has returned. Call it
// after http.Server.Shutdown/Close and before closing the engine: a
// handler that is still unwinding may hold staged blob pages, and the
// store refuses to close under active staged writers.
func (s *Server) Wait() { s.wg.Wait() }

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr classifies err through the shared table and emits it as JSON.
func writeErr(w http.ResponseWriter, err error) {
	if httperr.RetryAfter(err) {
		w.Header().Set("Retry-After", degradedRetryAfter)
	}
	writeJSON(w, httperr.StatusOf(err), map[string]string{"error": httperr.Message(err)})
}

// writeStoredErr classifies errors from operations over stored data
// (reindex, delete), where a format error means store corruption, not a
// bad request.
func writeStoredErr(w http.ResponseWriter, err error) {
	if httperr.RetryAfter(err) {
		w.Header().Set("Retry-After", degradedRetryAfter)
	}
	writeJSON(w, httperr.StatusOfStored(err), map[string]string{"error": httperr.Message(err)})
}

// methodErr rejects a request with 405 and the allowed verbs.
func methodErr(w http.ResponseWriter, allowed string) {
	w.Header().Set("Allow", allowed)
	writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed; use " + allowed})
}

// videoJSON is one /api/v1/videos listing row.
type videoJSON struct {
	ID       int64     `json:"id"`
	Name     string    `json:"name"`
	VideoLen int64     `json:"video_len"`
	DoStore  time.Time `json:"do_store"`
}

// ingestJSON is the /api/v1/ingest success body.
type ingestJSON struct {
	VideoID     int64   `json:"video_id"`
	NumFrames   int     `json:"num_frames"`
	KeyFrameIDs []int64 `json:"key_frame_ids"`
}

// matchJSON is one /api/v1/search result row.
type matchJSON struct {
	KeyFrameID int64   `json:"key_frame_id"`
	VideoID    int64   `json:"video_id"`
	VideoName  string  `json:"video_name"`
	FrameIndex int     `json:"frame_index"`
	Distance   float64 `json:"distance"`
}

// reindexJSON is one rebuilt video in the /api/v1/reindex response.
type reindexJSON struct {
	VideoID   int64  `json:"video_id"`
	VideoName string `json:"video_name"`
	KeyFrames int    `json:"key_frames"`
}

// handleSearch ranks stored key frames against a query frame. The frame
// arrives either as multipart field "image" or as a raw JPEG body; "k"
// (query or form value) bounds the result count.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodErr(w, http.MethodPost)
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)
	var frameSrc io.Reader = r.Body
	if isMultipart(r) {
		file, _, err := r.FormFile("image")
		if err != nil {
			writeErr(w, fmt.Errorf("missing \"image\" upload: %w", err))
			return
		}
		defer file.Close()
		frameSrc = file
	}
	query, err := imaging.DecodeJPEG(frameSrc)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "query frame is not a decodable JPEG: " + err.Error()})
		return
	}
	kStr := r.URL.Query().Get("k")
	if kStr == "" && r.MultipartForm != nil {
		kStr = r.FormValue("k") // populated by the FormFile parse above
	}
	k := 12
	if v, err := strconv.Atoi(kStr); err == nil && v > 0 && v <= 1000 {
		k = v
	}
	matches, err := s.eng.SearchFrameCtx(r.Context(), query, core.SearchOptions{K: k})
	if err != nil {
		writeErr(w, err)
		return
	}
	out := make([]matchJSON, len(matches))
	for i, m := range matches {
		out[i] = matchJSON{
			KeyFrameID: m.KeyFrameID,
			VideoID:    m.VideoID,
			VideoName:  m.VideoName,
			FrameIndex: m.FrameIndex,
			Distance:   m.Distance,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out})
}

// handleVideos lists the store (GET) or deletes one video (DELETE ?id=N).
func (s *Server) handleVideos(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		vids, err := s.eng.Store().ListVideos(nil)
		if err != nil {
			writeErr(w, err)
			return
		}
		nk, err := s.eng.Store().CountKeyFrames(nil)
		if err != nil {
			writeErr(w, err)
			return
		}
		out := make([]videoJSON, len(vids))
		for i, v := range vids {
			out[i] = videoJSON{ID: v.ID, Name: v.Name, VideoLen: v.VideoLen, DoStore: v.DoStore}
		}
		writeJSON(w, http.StatusOK, map[string]any{"videos": out, "key_frames": nk})
	case http.MethodDelete:
		id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		if err != nil || id <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing or invalid \"id\" query parameter"})
			return
		}
		if err := s.eng.DeleteVideo(id); err != nil {
			writeStoredErr(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
	default:
		methodErr(w, "GET, DELETE")
	}
}

// handleIngest admits one upload into the staged ingest pipeline. The
// container arrives either as multipart ("name" field before a "video"
// file part, both streamed — the body is never buffered whole) or as a raw
// CVJ body with ?name=. Over-admission returns 429 with Retry-After; the
// client owns its backoff.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodErr(w, http.MethodPost)
		return
	}
	// Refuse degraded uploads before the client streams the container: the
	// store would reject the staged writer anyway, and failing here costs
	// one header round-trip instead of the whole body.
	if err := s.eng.Degraded(); err != nil {
		writeErr(w, err)
		return
	}
	select {
	case s.ingestSem <- struct{}{}:
		defer func() { <-s.ingestSem }()
		if s.admitHook != nil {
			s.admitHook(r.URL.Query().Get("name"))
		}
	default:
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{
			"error": fmt.Sprintf("ingest queue full (%d in flight); retry shortly", cap(s.ingestSem)),
		})
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxUploadBytes)

	name := r.URL.Query().Get("name")
	var container io.Reader
	if isMultipart(r) {
		mr, err := r.MultipartReader()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed multipart body: " + err.Error()})
			return
		}
		// Walk parts in wire order so the container part streams straight
		// into ingest without spooling the upload to disk or memory.
		for container == nil {
			// A part read can block on a stalled client; bail out once the
			// request context is cancelled rather than walking dead parts.
			if err := r.Context().Err(); err != nil {
				writeErr(w, err)
				return
			}
			part, err := mr.NextPart()
			if err == io.EOF {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing \"video\" upload part"})
				return
			}
			if err != nil {
				writeErr(w, err)
				return
			}
			switch part.FormName() {
			case "name":
				b, err := io.ReadAll(io.LimitReader(part, 4096))
				if err != nil {
					writeErr(w, err)
					return
				}
				if name == "" {
					name = string(b)
				}
			case "video":
				if name == "" {
					name = part.FileName()
				}
				container = part
			}
		}
	} else {
		container = r.Body
	}
	res, err := s.eng.IngestVideoStreamCtx(r.Context(), name, container)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, ingestJSON{VideoID: res.VideoID, NumFrames: res.NumFrames, KeyFrameIDs: res.KeyFrameIDs})
}

// handleReindex rebuilds feature rows from stored key-frame streams: one
// video with ?id= (or form id), the whole store without.
func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodErr(w, http.MethodPost)
		return
	}
	var results []*core.ReindexResult
	if idStr := queryOrForm(r, "id"); idStr != "" {
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil || id <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid \"id\" parameter"})
			return
		}
		res, err := s.eng.ReindexVideoCtx(r.Context(), id)
		if err != nil {
			writeStoredErr(w, err)
			return
		}
		results = []*core.ReindexResult{res}
	} else {
		var err error
		results, err = s.eng.ReindexAllCtx(r.Context())
		if err != nil {
			writeStoredErr(w, err)
			return
		}
	}
	out := make([]reindexJSON, len(results))
	for i, res := range results {
		out[i] = reindexJSON{VideoID: res.VideoID, VideoName: res.VideoName, KeyFrames: res.KeyFrames}
	}
	writeJSON(w, http.StatusOK, map[string]any{"reindexed": out})
}

// handleStats reports the engine's cumulative search work counters and
// the state of the per-shard cell index — the operational view of the
// candidate pruner (how much of the corpus searches actually scan, and
// how much of it the cells cover).
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodErr(w, http.MethodGet)
		return
	}
	cells, err := s.eng.CellStats()
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"search": s.eng.SearchTally(),
		"cells":  cells,
	})
}

// isMultipart reports whether the request body is multipart/form-data.
func isMultipart(r *http.Request) bool {
	ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && strings.HasPrefix(ct, "multipart/")
}

// queryOrForm reads a parameter from the query string first (form parsing
// would consume a streaming body).
func queryOrForm(r *http.Request, key string) string {
	if v := r.URL.Query().Get(key); v != "" {
		return v
	}
	if isMultipart(r) {
		return "" // never drain a streaming multipart body for a form value
	}
	return r.PostFormValue(key)
}
