// Package server exposes the CBVR engine to multiple concurrent clients
// over a JSON/HTTP API. It is the programmatic counterpart of the HTML UI
// (internal/webui): both sit on the same context-aware engine entry points
// and the same error classification (internal/httperr).
//
// Concurrency model: uploads run the engine's two-phase staged ingest —
// decode, key-frame selection, feature extraction and blob staging proceed
// with no store-wide lock, so N clients make progress simultaneously and
// serialize only on the short row-commit section.
//
// Overload model: every request passes the weighted admission controller
// (internal/admission) under a server-assigned deadline. Each endpoint
// class (search/delete/ingest/reindex) has its own concurrency limit and
// bounded wait queue; refused work gets 429/503 with a Retry-After
// computed from observed service times, lowest-priority classes shedding
// first as the load signal rises. The same signal drives the engine's
// search brownout (core.SetBrownout): under pressure fused searches
// shrink their probe budget toward the recall floor, and exactness
// returns the moment load clears. A slow-client watchdog re-arms a
// per-read connection deadline around body reads so a stalled uploader
// cannot hold an admission slot forever.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"cbvr/internal/admission"
	"cbvr/internal/core"
	"cbvr/internal/httperr"
	"cbvr/internal/imaging"
)

// Options tunes the API server.
type Options struct {
	// MaxUploadBytes caps request bodies (containers and query frames);
	// <= 0 selects 64 MiB. Oversized bodies fail with 413 naming the cap.
	MaxUploadBytes int64
	// MaxInFlightIngests bounds concurrently admitted uploads; excess
	// requests are turned away immediately with 429 + Retry-After rather
	// than queued (the client can pace itself; the server must not buffer
	// unbounded decode work). <= 0 defers to Admission's ingest limit
	// (default 2×GOMAXPROCS). Kept as a top-level field because it
	// predates the admission controller; it overrides Admission's ingest
	// limit when set.
	MaxInFlightIngests int
	// Admission configures the weighted admission controller: per-class
	// concurrency limits, queue depths, shed thresholds and the load
	// signal. Zero fields take the admission package defaults.
	Admission admission.Config
	// SearchDeadline is the server-assigned deadline for search and read
	// endpoints; <= 0 selects 15s.
	SearchDeadline time.Duration
	// MutateDeadline is the server-assigned deadline for ingest, reindex
	// and delete; <= 0 selects 2m (a large upload decodes for a while).
	MutateDeadline time.Duration
	// MaxDeadline caps the client's X-CBVR-Deadline-Ms override; <= 0
	// selects 10m. The header can shorten or extend the default, but
	// never past this cap — a client must not pin a slot for an hour.
	MaxDeadline time.Duration
	// BodyStallTimeout arms the slow-client watchdog: each body read must
	// deliver bytes within this window or the connection read fails
	// (classified 408). <= 0 selects 15s; negative... use >= 0 semantics:
	// values < 0 disable the watchdog (tests with deliberately parked
	// uploads).
	BodyStallTimeout time.Duration
}

// DefaultMaxUploadBytes is the body cap when Options leaves it zero.
const DefaultMaxUploadBytes = 64 << 20

// Default deadlines; see Options.
const (
	DefaultSearchDeadline   = 15 * time.Second
	DefaultMutateDeadline   = 2 * time.Minute
	DefaultMaxDeadline      = 10 * time.Minute
	DefaultBodyStallTimeout = 15 * time.Second
)

// DeadlineHeader is the request header through which a client overrides
// the endpoint's default deadline, in whole milliseconds, capped at
// Options.MaxDeadline. The response echoes the applied deadline under the
// same name so clients see the cap.
const DeadlineHeader = "X-CBVR-Deadline-Ms"

// BrownoutHeader reports, on search responses, the brownout level the
// search ran at (0 means the exact configuration).
const BrownoutHeader = "X-CBVR-Brownout"

// brownoutVisible is the level at which healthz switches from "ok" to
// "browned-out": below this the budget shrink is negligible noise.
const brownoutVisible = 0.01

// Server is the JSON API handler set. Create one with New.
type Server struct {
	eng  *core.Engine
	mux  *http.ServeMux
	opts Options
	adm  *admission.Controller

	// baseCtx is cancelled by Abort: every in-flight request's context is
	// derived from it, so a forced shutdown stops ctx-aware engine work
	// (staged pages are discarded, nothing commits).
	baseCtx context.Context
	abort   context.CancelFunc

	// wg counts in-flight requests; Wait blocks until each handler has
	// returned (and with it released any staged blob pages), which must
	// happen before the store can close.
	wg sync.WaitGroup

	// admitHook, when set by tests, fires after an upload wins an
	// admission slot (deterministic queue-full setups).
	admitHook func(name string)
}

// New builds the API route table around an engine.
func New(eng *core.Engine, opts Options) *Server {
	if opts.MaxUploadBytes <= 0 {
		opts.MaxUploadBytes = DefaultMaxUploadBytes
	}
	if opts.MaxInFlightIngests > 0 {
		opts.Admission.Limit[admission.Ingest] = opts.MaxInFlightIngests
	}
	if opts.SearchDeadline <= 0 {
		opts.SearchDeadline = DefaultSearchDeadline
	}
	if opts.MutateDeadline <= 0 {
		opts.MutateDeadline = DefaultMutateDeadline
	}
	if opts.MaxDeadline <= 0 {
		opts.MaxDeadline = DefaultMaxDeadline
	}
	if opts.BodyStallTimeout == 0 {
		opts.BodyStallTimeout = DefaultBodyStallTimeout
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		eng:     eng,
		mux:     http.NewServeMux(),
		opts:    opts,
		adm:     admission.New(opts.Admission),
		baseCtx: ctx,
		abort:   cancel,
	}
	s.mux.HandleFunc("/api/v1/search", s.handleSearch)
	s.mux.HandleFunc("/api/v1/videos", s.handleVideos)
	s.mux.HandleFunc("/api/v1/ingest", s.handleIngest)
	s.mux.HandleFunc("/api/v1/reindex", s.handleReindex)
	s.mux.HandleFunc("/api/v1/stats", s.handleStats)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s
}

// Admission exposes the controller for operational callers (cmd/cbvr-server
// wires nothing today, but tests and future surfaces read the load state).
func (s *Server) Admission() *admission.Controller { return s.adm }

// handleHealthz reports liveness in four states, worst first:
//
//   - 503 "degraded"   — a write fault forced the store read-only; only a
//     process restart recovers it (searches still serve)
//   - 503 "shedding"   — the admission controller refused work within its
//     shed window; load balancers should divert what they can
//   - 200 "browned-out" — serving everything, but searches run with a
//     shrunken probe budget (quality, not availability, is reduced)
//   - 200 "ok"
//
// Every response carries the numeric brownout level; 503s carry a
// computed Retry-After.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet && r.Method != http.MethodHead {
		methodErr(w, "GET, HEAD")
		return
	}
	lvl := s.adm.Level()
	if err := s.eng.Degraded(); err != nil {
		httperr.ApplyRetryAfter(w.Header(), err, s.adm.RetryAfter(admission.Ingest))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":   "degraded",
			"reason":   err.Error(),
			"brownout": lvl,
		})
		return
	}
	if shedding, reason := s.adm.Shedding(); shedding {
		w.Header().Set("Retry-After", strconv.Itoa(admission.RetryAfterSeconds(s.adm.RetryAfter(admission.Ingest))))
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status":   "shedding",
			"reason":   reason,
			"brownout": lvl,
		})
		return
	}
	if lvl >= brownoutVisible {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":   "browned-out",
			"reason":   fmt.Sprintf("search probe budget shrunk to load level %.2f", lvl),
			"brownout": lvl,
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "brownout": lvl})
}

// ServeHTTP implements http.Handler. Each request runs under a context
// that dies with the client connection, the server-assigned (or
// client-overridden, capped) deadline, or Abort — whichever first. The
// applied deadline is echoed in the DeadlineHeader response header.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.wg.Add(1)
	defer s.wg.Done()
	d := s.routeDeadline(r)
	if hdr := r.Header.Get(DeadlineHeader); hdr != "" {
		if ms, err := strconv.ParseInt(hdr, 10, 64); err == nil && ms > 0 {
			d = time.Duration(ms) * time.Millisecond
			if d > s.opts.MaxDeadline {
				d = s.opts.MaxDeadline
			}
		}
	}
	w.Header().Set(DeadlineHeader, strconv.FormatInt(d.Milliseconds(), 10))
	ctx, cancel := context.WithDeadline(r.Context(), time.Now().Add(d))
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	s.mux.ServeHTTP(w, r.WithContext(ctx))
}

// routeDeadline picks the endpoint's default deadline: mutations get the
// long budget (a large upload decodes for a while), everything else the
// search budget.
func (s *Server) routeDeadline(r *http.Request) time.Duration {
	switch r.URL.Path {
	case "/api/v1/ingest", "/api/v1/reindex":
		return s.opts.MutateDeadline
	case "/api/v1/videos":
		if r.Method == http.MethodDelete {
			return s.opts.MutateDeadline
		}
	}
	return s.opts.SearchDeadline
}

// admit runs one request through the admission controller. On refusal it
// writes the classified response (429/503 + computed Retry-After) and
// reports false; the caller returns immediately. On success the caller
// must Release the ticket.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, class admission.Class) (*admission.Ticket, bool) {
	tk, err := s.adm.Acquire(r.Context(), class)
	if err != nil {
		s.writeErr(w, err, class)
		return nil, false
	}
	return tk, true
}

// Abort cancels every in-flight request's context. The drain path calls it
// when graceful shutdown times out: ctx-aware engine loops stop within one
// decode iteration, staged uploads are discarded uncommitted, and handlers
// return 503.
func (s *Server) Abort() { s.abort() }

// Wait blocks until every in-flight request handler has returned. Call it
// after http.Server.Shutdown/Close and before closing the engine: a
// handler that is still unwinding may hold staged blob pages, and the
// store refuses to close under active staged writers.
func (s *Server) Wait() { s.wg.Wait() }

// writeJSON emits one JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr classifies err through the shared table and emits it as JSON.
// Retryable errors carry a Retry-After computed from the class's observed
// service times (admission sheds embed their own estimate; degraded-store
// errors are floored at the restart backoff).
func (s *Server) writeErr(w http.ResponseWriter, err error, class admission.Class) {
	httperr.ApplyRetryAfter(w.Header(), err, s.adm.RetryAfter(class))
	writeJSON(w, httperr.StatusOf(err), map[string]string{"error": httperr.Message(err)})
}

// writeStoredErr classifies errors from operations over stored data
// (reindex, delete), where a format error means store corruption, not a
// bad request.
func (s *Server) writeStoredErr(w http.ResponseWriter, err error, class admission.Class) {
	httperr.ApplyRetryAfter(w.Header(), err, s.adm.RetryAfter(class))
	writeJSON(w, httperr.StatusOfStored(err), map[string]string{"error": httperr.Message(err)})
}

// methodErr rejects a request with 405 and the allowed verbs.
func methodErr(w http.ResponseWriter, allowed string) {
	w.Header().Set("Allow", allowed)
	writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "method not allowed; use " + allowed})
}

// watchdogBody re-arms a per-read connection deadline around every body
// read: a client that stops sending for BodyStallTimeout fails the read
// with os.ErrDeadlineExceeded (classified 408) instead of parking the
// handler — and its admission slot — until the request deadline. Close
// clears the connection deadline so keep-alive reuse is unaffected.
type watchdogBody struct {
	body  io.ReadCloser
	rc    *http.ResponseController
	stall time.Duration
	armed bool
}

func (b *watchdogBody) Read(p []byte) (int, error) {
	if b.armed {
		if err := b.rc.SetReadDeadline(time.Now().Add(b.stall)); err != nil {
			// The underlying writer cannot set read deadlines (e.g. a
			// recorder in tests); degrade to an unwatched read.
			b.armed = false
		}
	}
	return b.body.Read(p)
}

func (b *watchdogBody) Close() error {
	if b.armed {
		b.rc.SetReadDeadline(time.Time{})
	}
	return b.body.Close()
}

// guardBody wraps the request body with the upload cap and, when enabled,
// the slow-client watchdog. Call before any body consumption.
func (s *Server) guardBody(w http.ResponseWriter, r *http.Request) {
	var body io.ReadCloser = r.Body
	if s.opts.BodyStallTimeout > 0 {
		body = &watchdogBody{
			body:  body,
			rc:    http.NewResponseController(w),
			stall: s.opts.BodyStallTimeout,
			armed: true,
		}
	}
	r.Body = http.MaxBytesReader(w, body, s.opts.MaxUploadBytes)
}

// videoJSON is one /api/v1/videos listing row.
type videoJSON struct {
	ID       int64     `json:"id"`
	Name     string    `json:"name"`
	VideoLen int64     `json:"video_len"`
	DoStore  time.Time `json:"do_store"`
}

// ingestJSON is the /api/v1/ingest success body.
type ingestJSON struct {
	VideoID     int64   `json:"video_id"`
	NumFrames   int     `json:"num_frames"`
	KeyFrameIDs []int64 `json:"key_frame_ids"`
}

// matchJSON is one /api/v1/search result row.
type matchJSON struct {
	KeyFrameID int64   `json:"key_frame_id"`
	VideoID    int64   `json:"video_id"`
	VideoName  string  `json:"video_name"`
	FrameIndex int     `json:"frame_index"`
	Distance   float64 `json:"distance"`
}

// reindexJSON is one rebuilt video in the /api/v1/reindex response.
type reindexJSON struct {
	VideoID   int64  `json:"video_id"`
	VideoName string `json:"video_name"`
	KeyFrames int    `json:"key_frames"`
}

// handleSearch ranks stored key frames against a query frame. The frame
// arrives either as multipart field "image" or as a raw JPEG body; "k"
// (query or form value) bounds the result count. The response carries the
// brownout level the search ran at in the BrownoutHeader header.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodErr(w, http.MethodPost)
		return
	}
	tk, ok := s.admit(w, r, admission.Search)
	if !ok {
		return
	}
	defer tk.Release()
	// The admission-derived load level drives the engine brownout: set it
	// before the search so this request's probe budget reflects current
	// pressure, and report it so the client knows the quality it got.
	lvl := s.adm.Level()
	s.eng.SetBrownout(lvl)
	w.Header().Set(BrownoutHeader, strconv.FormatFloat(lvl, 'f', 3, 64))
	s.guardBody(w, r)
	var frameSrc io.Reader = r.Body
	if isMultipart(r) {
		file, _, err := r.FormFile("image")
		if err != nil {
			s.writeErr(w, fmt.Errorf("missing \"image\" upload: %w", err), admission.Search)
			return
		}
		defer file.Close()
		frameSrc = file
	}
	query, err := imaging.DecodeJPEG(frameSrc)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "query frame is not a decodable JPEG: " + err.Error()})
		return
	}
	kStr := r.URL.Query().Get("k")
	if kStr == "" && r.MultipartForm != nil {
		kStr = r.FormValue("k") // populated by the FormFile parse above
	}
	k := 12
	if v, err := strconv.Atoi(kStr); err == nil && v > 0 && v <= 1000 {
		k = v
	}
	matches, err := s.eng.SearchFrameCtx(r.Context(), query, core.SearchOptions{K: k})
	if err != nil {
		s.writeErr(w, err, admission.Search)
		return
	}
	out := make([]matchJSON, len(matches))
	for i, m := range matches {
		out[i] = matchJSON{
			KeyFrameID: m.KeyFrameID,
			VideoID:    m.VideoID,
			VideoName:  m.VideoName,
			FrameIndex: m.FrameIndex,
			Distance:   m.Distance,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"matches": out})
}

// handleVideos lists the store (GET) or deletes one video (DELETE ?id=N).
// Listing is an index read and skips admission; deletes go through the
// delete class.
func (s *Server) handleVideos(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		vids, err := s.eng.Store().ListVideos(nil)
		if err != nil {
			s.writeErr(w, err, admission.Search)
			return
		}
		nk, err := s.eng.Store().CountKeyFrames(nil)
		if err != nil {
			s.writeErr(w, err, admission.Search)
			return
		}
		out := make([]videoJSON, len(vids))
		for i, v := range vids {
			out[i] = videoJSON{ID: v.ID, Name: v.Name, VideoLen: v.VideoLen, DoStore: v.DoStore}
		}
		writeJSON(w, http.StatusOK, map[string]any{"videos": out, "key_frames": nk})
	case http.MethodDelete:
		id, err := strconv.ParseInt(r.URL.Query().Get("id"), 10, 64)
		if err != nil || id <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing or invalid \"id\" query parameter"})
			return
		}
		tk, ok := s.admit(w, r, admission.Delete)
		if !ok {
			return
		}
		defer tk.Release()
		if err := s.eng.DeleteVideo(id); err != nil {
			s.writeStoredErr(w, err, admission.Delete)
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"deleted": id})
	default:
		methodErr(w, "GET, DELETE")
	}
}

// handleIngest admits one upload into the staged ingest pipeline. The
// container arrives either as multipart ("name" field before a "video"
// file part, both streamed — the body is never buffered whole) or as a raw
// CVJ body with ?name=. Over-admission returns 429 with a computed
// Retry-After; the client owns its backoff.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodErr(w, http.MethodPost)
		return
	}
	// Refuse degraded uploads before the client streams the container: the
	// store would reject the staged writer anyway, and failing here costs
	// one header round-trip instead of the whole body.
	if err := s.eng.Degraded(); err != nil {
		s.writeErr(w, err, admission.Ingest)
		return
	}
	tk, ok := s.admit(w, r, admission.Ingest)
	if !ok {
		return
	}
	defer tk.Release()
	if s.admitHook != nil {
		s.admitHook(r.URL.Query().Get("name"))
	}
	s.guardBody(w, r)

	name := r.URL.Query().Get("name")
	var container io.Reader
	if isMultipart(r) {
		mr, err := r.MultipartReader()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "malformed multipart body: " + err.Error()})
			return
		}
		// Walk parts in wire order so the container part streams straight
		// into ingest without spooling the upload to disk or memory.
		for container == nil {
			// A part read can block on a stalled client; bail out once the
			// request context is cancelled rather than walking dead parts.
			if err := r.Context().Err(); err != nil {
				s.writeErr(w, err, admission.Ingest)
				return
			}
			part, err := mr.NextPart()
			if err == io.EOF {
				writeJSON(w, http.StatusBadRequest, map[string]string{"error": "missing \"video\" upload part"})
				return
			}
			if err != nil {
				s.writeErr(w, err, admission.Ingest)
				return
			}
			switch part.FormName() {
			case "name":
				b, err := io.ReadAll(io.LimitReader(part, 4096))
				if err != nil {
					s.writeErr(w, err, admission.Ingest)
					return
				}
				if name == "" {
					name = string(b)
				}
			case "video":
				if name == "" {
					name = part.FileName()
				}
				container = part
			}
		}
	} else {
		container = r.Body
	}
	res, err := s.eng.IngestVideoStreamCtx(r.Context(), name, container)
	if err != nil {
		s.writeErr(w, err, admission.Ingest)
		return
	}
	writeJSON(w, http.StatusOK, ingestJSON{VideoID: res.VideoID, NumFrames: res.NumFrames, KeyFrameIDs: res.KeyFrameIDs})
}

// handleReindex rebuilds feature rows from stored key-frame streams: one
// video with ?id= (or form id), the whole store without. Reindex is the
// lowest-priority admission class — the first work shed under load.
func (s *Server) handleReindex(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		methodErr(w, http.MethodPost)
		return
	}
	tk, ok := s.admit(w, r, admission.Reindex)
	if !ok {
		return
	}
	defer tk.Release()
	var results []*core.ReindexResult
	if idStr := queryOrForm(r, "id"); idStr != "" {
		id, err := strconv.ParseInt(idStr, 10, 64)
		if err != nil || id <= 0 {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "invalid \"id\" parameter"})
			return
		}
		res, err := s.eng.ReindexVideoCtx(r.Context(), id)
		if err != nil {
			s.writeStoredErr(w, err, admission.Reindex)
			return
		}
		results = []*core.ReindexResult{res}
	} else {
		var err error
		results, err = s.eng.ReindexAllCtx(r.Context())
		if err != nil {
			s.writeStoredErr(w, err, admission.Reindex)
			return
		}
	}
	out := make([]reindexJSON, len(results))
	for i, res := range results {
		out[i] = reindexJSON{VideoID: res.VideoID, VideoName: res.VideoName, KeyFrames: res.KeyFrames}
	}
	writeJSON(w, http.StatusOK, map[string]any{"reindexed": out})
}

// handleStats reports the engine's cumulative search work counters, the
// state of the per-shard cell index, and the overload view: admission
// per-class occupancy/sheds and the current brownout level.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		methodErr(w, http.MethodGet)
		return
	}
	cells, err := s.eng.CellStats()
	if err != nil {
		s.writeErr(w, err, admission.Search)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"search":    s.eng.SearchTally(),
		"cells":     cells,
		"admission": s.adm.Snapshot(),
		"brownout":  s.eng.BrownoutLevel(),
	})
}

// isMultipart reports whether the request body is multipart/form-data.
func isMultipart(r *http.Request) bool {
	ct, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	return err == nil && strings.HasPrefix(ct, "multipart/")
}

// queryOrForm reads a parameter from the query string first (form parsing
// would consume a streaming body).
func queryOrForm(r *http.Request, key string) string {
	if v := r.URL.Query().Get(key); v != "" {
		return v
	}
	if isMultipart(r) {
		return "" // never drain a streaming multipart body for a form value
	}
	return r.PostFormValue(key)
}
