package server

import (
	"bytes"
	"net/http/httptest"
	"strconv"
	"testing"

	"cbvr/internal/core"
	"cbvr/internal/synthvid"
	"cbvr/internal/vstore"
	"cbvr/internal/vstore/faultfs"
)

// TestServerDegradedMode drives the whole degraded-mode contract through
// the HTTP surface: a write fault mid-commit flips /healthz from ok to
// degraded, every mutation fails fast with 503 + Retry-After, and search
// keeps returning correct results from the committed snapshot.
func TestServerDegradedMode(t *testing.T) {
	ffs := faultfs.New()
	eng, err := core.Open("degraded.db", core.Options{
		Store: vstore.Options{FS: ffs},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	ts := httptest.NewServer(New(eng, Options{}))
	defer ts.Close()

	// Healthy baseline: one resident video, healthz ok.
	raw, v := testContainer(t, synthvid.Cartoon, 500, 12)
	var res ingestResp
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=resident", bytes.NewReader(raw), &res); resp.StatusCode != 200 {
		t.Fatalf("seed ingest: %d %s", resp.StatusCode, body)
	}
	var health map[string]any
	if resp, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); resp.StatusCode != 200 || health["status"] != "ok" {
		t.Fatalf("healthy healthz: %d %v", resp.StatusCode, health)
	}

	// Poison the store: fail the next WAL append, then trigger a commit by
	// deleting through the API. The delete must surface as a 503 with
	// Retry-After, not a silent success or a 500.
	fired := false
	ffs.SetInjector(func(op faultfs.Op) faultfs.Action {
		if !fired && op.Kind == faultfs.OpWrite && op.Name == "degraded.db.wal" {
			fired = true
			return faultfs.ActErr
		}
		return faultfs.ActNone
	})
	resp, body := doJSON(t, "DELETE", ts.URL+"/api/v1/videos?id="+itoa(res.VideoID), nil, nil)
	ffs.SetInjector(nil)
	if resp.StatusCode != 503 {
		t.Fatalf("delete under WAL fault: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded delete 503 missing Retry-After")
	}
	if eng.Degraded() == nil {
		t.Fatal("engine not degraded after WAL fault")
	}

	// healthz reflects the transition.
	if resp, _ := doJSON(t, "GET", ts.URL+"/healthz", nil, &health); resp.StatusCode != 503 ||
		health["status"] != "degraded" || health["reason"] == "" || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("degraded healthz: %d %v retry-after=%q", resp.StatusCode, health, resp.Header.Get("Retry-After"))
	}

	// Every mutation fails fast with 503 + Retry-After.
	for _, m := range []struct{ method, url string }{
		{"POST", ts.URL + "/api/v1/ingest?name=rejected"},
		{"DELETE", ts.URL + "/api/v1/videos?id=" + itoa(res.VideoID)},
		{"POST", ts.URL + "/api/v1/reindex"},
	} {
		resp, body := doJSON(t, m.method, m.url, bytes.NewReader(raw), nil)
		if resp.StatusCode != 503 {
			t.Fatalf("%s %s while degraded: %d %s", m.method, m.url, resp.StatusCode, body)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatalf("%s %s while degraded: 503 missing Retry-After", m.method, m.url)
		}
	}

	// Reads keep working: the listing still shows the resident video (the
	// failed delete rolled back) and search still ranks it first.
	var vids videosResp
	if resp, body := doJSON(t, "GET", ts.URL+"/api/v1/videos", nil, &vids); resp.StatusCode != 200 {
		t.Fatalf("videos while degraded: %d %s", resp.StatusCode, body)
	}
	if len(vids.Videos) != 1 || vids.Videos[0].ID != res.VideoID {
		t.Fatalf("degraded listing = %+v, want the resident video", vids.Videos)
	}
	var sr searchResp
	sreq, _ := doJSON(t, "POST", ts.URL+"/api/v1/search?k=3", bytes.NewReader(queryJPEG(t, v)), &sr)
	if sreq.StatusCode != 200 {
		t.Fatalf("search while degraded: %d", sreq.StatusCode)
	}
	if len(sr.Matches) == 0 || sr.Matches[0].VideoID != res.VideoID {
		t.Fatalf("degraded search matches = %+v, want the resident video on top", sr.Matches)
	}
}

func itoa(v int64) string {
	return strconv.FormatInt(v, 10)
}
