package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"mime/multipart"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"cbvr/internal/admission"
	"cbvr/internal/core"
	"cbvr/internal/cvj"
	"cbvr/internal/features"
	"cbvr/internal/synthvid"
)

func openTestEngine(t *testing.T) *core.Engine {
	t.Helper()
	eng, err := core.Open(filepath.Join(t.TempDir(), "api.db"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// testContainer encodes a deterministic synthetic clip as CVJ bytes.
func testContainer(t *testing.T, cat synthvid.Category, seed int64, frames int) ([]byte, *synthvid.Video) {
	t.Helper()
	v := synthvid.Generate(cat, synthvid.Config{
		Width: 96, Height: 72, Frames: frames, Shots: 3, Seed: seed,
	})
	raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	return raw, v
}

func queryJPEG(t *testing.T, v *synthvid.Video) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := v.Frames[0].EncodeJPEG(&buf, 0); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// doJSON performs a request and decodes the JSON response body.
func doJSON(t *testing.T, method, url string, body io.Reader, out any) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad JSON %q: %v", method, url, raw, err)
		}
	}
	return resp, string(raw)
}

type ingestResp struct {
	VideoID     int64   `json:"video_id"`
	NumFrames   int     `json:"num_frames"`
	KeyFrameIDs []int64 `json:"key_frame_ids"`
}

type searchResp struct {
	Matches []struct {
		KeyFrameID int64   `json:"key_frame_id"`
		VideoID    int64   `json:"video_id"`
		VideoName  string  `json:"video_name"`
		FrameIndex int     `json:"frame_index"`
		Distance   float64 `json:"distance"`
	} `json:"matches"`
}

type videosResp struct {
	Videos []struct {
		ID   int64  `json:"id"`
		Name string `json:"name"`
	} `json:"videos"`
	KeyFrames int `json:"key_frames"`
}

// TestServerConcurrentStress is the multi-client exercise the server layer
// exists for: four simultaneous uploads, four searching clients and one
// delete, all against one engine under -race. Every commit must land whole
// (row count == reported key-frame IDs), no search may observe a partially
// published video, and the post-storm API ranking must be bit-identical to
// the engine's retained reference search.
func TestServerConcurrentStress(t *testing.T) {
	eng := openTestEngine(t)
	// The storm deliberately saturates whatever box runs it, so disable
	// level-based shedding and give search enough slots for every client:
	// this test pins concurrency correctness; overload policy is pinned by
	// the overload tests.
	adm := admission.Config{MaxWait: time.Minute}
	adm.Limit[admission.Search] = 16
	for c := admission.Class(0); c < admission.NumClasses; c++ {
		adm.ShedAt[c] = 2
	}
	ts := httptest.NewServer(New(eng, Options{MaxInFlightIngests: 8, Admission: adm}))
	defer ts.Close()

	// Two resident videos: search targets and a delete victim.
	seedA, _ := testContainer(t, synthvid.Cartoon, 100, 16)
	seedB, _ := testContainer(t, synthvid.Sports, 101, 16)
	var resA, resB ingestResp
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=residentA", bytes.NewReader(seedA), &resA); resp.StatusCode != 200 {
		t.Fatalf("seed ingest A: %d %s", resp.StatusCode, body)
	}
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=residentB", bytes.NewReader(seedB), &resB); resp.StatusCode != 200 {
		t.Fatalf("seed ingest B: %d %s", resp.StatusCode, body)
	}

	_, qv := testContainer(t, synthvid.Cartoon, 100, 16)
	qjpeg := queryJPEG(t, qv)

	const ingesters = 4
	var wg sync.WaitGroup
	ingestResults := make([]ingestResp, ingesters)
	ingestErrs := make([]string, ingesters)
	for g := 0; g < ingesters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			raw, _ := testContainer(t, synthvid.Category(g%3), int64(200+g), 16)
			url := fmt.Sprintf("%s/api/v1/ingest?name=storm%02d", ts.URL, g)
			resp, body := doJSON(t, "POST", url, bytes.NewReader(raw), &ingestResults[g])
			if resp.StatusCode != 200 {
				ingestErrs[g] = fmt.Sprintf("status %d: %s", resp.StatusCode, body)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				var sr searchResp
				resp, body := doJSON(t, "POST", ts.URL+"/api/v1/search?k=50", bytes.NewReader(qjpeg), &sr)
				if resp.StatusCode != 200 {
					t.Errorf("search during storm: %d %s", resp.StatusCode, body)
					return
				}
				// Partial publication would surface as a video id with no
				// name (publishEntries installs both under one lock).
				for _, m := range sr.Matches {
					if m.VideoName == "" {
						t.Errorf("match with empty video name: %+v", m)
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, body := doJSON(t, "DELETE", fmt.Sprintf("%s/api/v1/videos?id=%d", ts.URL, resB.VideoID), nil, nil)
		if resp.StatusCode != 200 {
			t.Errorf("delete during storm: %d %s", resp.StatusCode, body)
		}
	}()
	wg.Wait()
	for g, e := range ingestErrs {
		if e != "" {
			t.Fatalf("storm ingest %d: %s", g, e)
		}
	}

	// Every commit landed whole: stored rows match the reported IDs.
	var vl videosResp
	if resp, body := doJSON(t, "GET", ts.URL+"/api/v1/videos", nil, &vl); resp.StatusCode != 200 {
		t.Fatalf("list: %d %s", resp.StatusCode, body)
	}
	if len(vl.Videos) != 1+ingesters { // residentA + 4 storm videos; residentB deleted
		t.Fatalf("got %d videos, want %d", len(vl.Videos), 1+ingesters)
	}
	for g, res := range ingestResults {
		rows, err := eng.Store().KeyFramesOfVideo(nil, res.VideoID)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != len(res.KeyFrameIDs) {
			t.Fatalf("storm video %d: %d stored rows, response reported %d", g, len(rows), len(res.KeyFrameIDs))
		}
	}

	// Post-storm ranking through the API must be bit-identical to the
	// engine's retained single-goroutine reference search.
	var sr searchResp
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/search?k=50", bytes.NewReader(qjpeg), &sr); resp.StatusCode != 200 {
		t.Fatalf("final search: %d %s", resp.StatusCode, body)
	}
	query, err := cvj.DecodeBytes(seedA)
	if err != nil {
		t.Fatal(err)
	}
	planes := features.NewPlanes(query.Frames[0])
	want, err := eng.SearchWithSetReference(planes.ExtractAll(), core.BucketFromPlanes(planes), core.SearchOptions{K: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Matches) != len(want) {
		t.Fatalf("API returned %d matches, reference %d", len(sr.Matches), len(want))
	}
	for i, m := range sr.Matches {
		w := want[i]
		if m.KeyFrameID != w.KeyFrameID || m.VideoID != w.VideoID || m.Distance != w.Distance || m.FrameIndex != w.FrameIndex || m.VideoName != w.VideoName {
			t.Fatalf("rank %d: API %+v != reference %+v", i, m, w)
		}
	}
}

// TestIngestAdmissionQueue wedges the single admission slot with an upload
// whose body stalls, then verifies the next upload is turned away with 429
// and a Retry-After header — and that the slot frees once the first upload
// completes.
func TestIngestAdmissionQueue(t *testing.T) {
	eng := openTestEngine(t)
	srv := New(eng, Options{MaxInFlightIngests: 1})
	admitted := make(chan string, 4)
	srv.admitHook = func(name string) { admitted <- name }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	raw, _ := testContainer(t, synthvid.Cartoon, 300, 8)
	pr, pw := io.Pipe()
	done := make(chan string, 1)
	go func() {
		var ir ingestResp
		resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=slow", pr, &ir)
		if resp.StatusCode != 200 {
			done <- fmt.Sprintf("slow ingest: %d %s", resp.StatusCode, body)
			return
		}
		done <- ""
	}()
	if got := <-admitted; got != "slow" {
		t.Fatalf("admitted %q, want slow", got)
	}
	// The slot is provably held; feed half the container so the holder
	// sits mid-decode while the next client knocks.
	if _, err := pw.Write(raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}

	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=rejected", bytes.NewReader(raw), nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second ingest while queue full: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	// Release the slot and verify admission recovers.
	if _, err := pw.Write(raw[len(raw)/2:]); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if msg := <-done; msg != "" {
		t.Fatal(msg)
	}
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=after", bytes.NewReader(raw), nil); resp.StatusCode != 200 {
		t.Fatalf("ingest after slot freed: %d %s", resp.StatusCode, body)
	}
}

// TestErrorClassification drives the shared httperr table through the API:
// client faults are 4xx with the specific status, server faults stay 5xx.
func TestErrorClassification(t *testing.T) {
	eng := openTestEngine(t)
	ts := httptest.NewServer(New(eng, Options{MaxUploadBytes: 32 << 10}))
	defer ts.Close()
	raw, _ := testContainer(t, synthvid.Cartoon, 400, 8)
	if len(raw) >= 32<<10 {
		t.Fatalf("test container unexpectedly large: %d", len(raw))
	}
	// A valid container past the body cap: the reader consumes through the
	// limit, so the failure is the size cap (413), not a format error.
	big, _ := testContainer(t, synthvid.Cartoon, 401, 160)
	if len(big) <= 32<<10 {
		t.Fatalf("big container too small to trip the cap: %d", len(big))
	}

	cases := []struct {
		name       string
		method     string
		url        string
		body       io.Reader
		wantStatus int
		wantSubstr string
	}{
		{"empty name", "POST", "/api/v1/ingest", bytes.NewReader(raw), 400, "empty video name"},
		{"whitespace name", "POST", "/api/v1/ingest?name=%20%20", bytes.NewReader(raw), 400, "empty video name"},
		{"garbage container", "POST", "/api/v1/ingest?name=x", strings.NewReader("this is not a container"), 400, ""},
		{"truncated container", "POST", "/api/v1/ingest?name=x", bytes.NewReader(raw[:len(raw)/2]), 400, ""},
		{"oversized body", "POST", "/api/v1/ingest?name=x", bytes.NewReader(big), 413, "32768-byte"},
		{"reindex missing id", "POST", "/api/v1/reindex?id=9999", nil, 404, "no such video"},
		{"delete missing id", "DELETE", "/api/v1/videos?id=9999", nil, 404, "no such video"},
		{"bad search method", "GET", "/api/v1/search", nil, 405, ""},
		{"bad ingest method", "GET", "/api/v1/ingest", nil, 405, ""},
		{"search not a jpeg", "POST", "/api/v1/search", strings.NewReader("nope"), 400, ""},
	}
	for _, tc := range cases {
		resp, body := doJSON(t, tc.method, ts.URL+tc.url, tc.body, nil)
		if resp.StatusCode != tc.wantStatus {
			t.Errorf("%s: status %d (want %d): %s", tc.name, resp.StatusCode, tc.wantStatus, body)
		}
		if tc.wantSubstr != "" && !strings.Contains(body, tc.wantSubstr) {
			t.Errorf("%s: body %q lacks %q", tc.name, body, tc.wantSubstr)
		}
	}

	// None of the failures may have committed anything.
	vids, err := eng.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 0 {
		t.Fatalf("failed requests left %d videos", len(vids))
	}
}

// TestAbortDiscardsInFlightIngest is the forced-shutdown path: Abort fires
// while an upload is mid-stream; the handler must answer 503, commit
// nothing, and leave the store closeable (no staged writers leak).
func TestAbortDiscardsInFlightIngest(t *testing.T) {
	eng := openTestEngine(t)
	srv := New(eng, Options{})
	admitted := make(chan string, 1)
	srv.admitHook = func(name string) { admitted <- name }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	raw, _ := testContainer(t, synthvid.Cartoon, 500, 16)
	pr, pw := io.Pipe()
	done := make(chan struct {
		status int
		body   string
	}, 1)
	go func() {
		resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=doomed", pr, nil)
		done <- struct {
			status int
			body   string
		}{resp.StatusCode, body}
	}()
	<-admitted
	if _, err := pw.Write(raw[:len(raw)/2]); err != nil {
		t.Fatal(err)
	}

	srv.Abort()
	// Feed the rest of the container so a decode blocked mid-record can
	// complete its read and hit the per-iteration cancellation check —
	// every interleaving ends in ctx.Canceled, never a read error.
	go func() {
		pw.Write(raw[len(raw)/2:])
		pw.Close()
	}()
	res := <-done
	if res.status != http.StatusServiceUnavailable {
		t.Fatalf("aborted ingest: status %d body %s", res.status, res.body)
	}
	vids, err := eng.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 0 {
		t.Fatalf("aborted ingest committed %d videos", len(vids))
	}
}

// TestMultipartIngestAndSearch covers the browser-shaped request bodies:
// a multipart upload with name field + file part, and a multipart search.
func TestMultipartIngestAndSearch(t *testing.T) {
	eng := openTestEngine(t)
	ts := httptest.NewServer(New(eng, Options{}))
	defer ts.Close()

	raw, v := testContainer(t, synthvid.Cartoon, 600, 12)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	if err := mw.WriteField("name", "mpclip"); err != nil {
		t.Fatal(err)
	}
	fw, err := mw.CreateFormFile("video", "clip.cvj")
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(raw)
	mw.Close()
	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/ingest", &buf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ir ingestResp
	if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 || ir.VideoID == 0 {
		t.Fatalf("multipart ingest: %d %+v", resp.StatusCode, ir)
	}

	var qbuf bytes.Buffer
	mw = multipart.NewWriter(&qbuf)
	fw, err = mw.CreateFormFile("image", "q.jpg")
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(queryJPEG(t, v))
	mw.WriteField("k", "3")
	mw.Close()
	req, _ = http.NewRequest("POST", ts.URL+"/api/v1/search", &qbuf)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr searchResp
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("multipart search: %d", resp.StatusCode)
	}
	if len(sr.Matches) == 0 || len(sr.Matches) > 3 {
		t.Fatalf("multipart search returned %d matches, want 1..3", len(sr.Matches))
	}
	if sr.Matches[0].VideoName != "mpclip" {
		t.Fatalf("top match %+v, want mpclip", sr.Matches[0])
	}
}

// TestMultipartIngestCancelledContext pins the cbvrvet:ctxloop fix in
// handleIngest's part walk: a request whose context is already
// cancelled must be refused (503, context classification) before any
// multipart part is consumed or anything is ingested.
func TestMultipartIngestCancelledContext(t *testing.T) {
	eng := openTestEngine(t)
	srv := New(eng, Options{})

	raw, _ := testContainer(t, synthvid.Cartoon, 601, 8)
	var buf bytes.Buffer
	mw := multipart.NewWriter(&buf)
	mw.WriteField("name", "deadclient")
	fw, err := mw.CreateFormFile("video", "clip.cvj")
	if err != nil {
		t.Fatal(err)
	}
	fw.Write(raw)
	mw.Close()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest(http.MethodPost, "/api/v1/ingest", &buf).WithContext(ctx)
	req.Header.Set("Content-Type", mw.FormDataContentType())
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("cancelled ingest: status %d, want 503: %s", rec.Code, rec.Body.String())
	}

	// Nothing may have been committed for the dead client.
	vids, err := eng.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 0 {
		t.Fatalf("cancelled ingest left %d video(s) behind", len(vids))
	}
}
