package server

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"cbvr/internal/admission"
	"cbvr/internal/core"
	"cbvr/internal/synthvid"
	"cbvr/internal/vstore"
	"cbvr/internal/vstore/faultfs"
)

// TestHealthzStateTransitions walks /healthz through all four states —
// ok → browned-out → shedding → ok → degraded — by steering the admission
// controller and the store, pinning status code, status string and
// Retry-After presence at each step.
func TestHealthzStateTransitions(t *testing.T) {
	ffs := faultfs.New()
	eng, err := core.Open("healthz.db", core.Options{Store: vstore.Options{FS: ffs}})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	adm := admission.Config{ShedWindow: 200 * time.Millisecond, LatencyWindow: 200 * time.Millisecond}
	adm.Limit[admission.Search] = 2
	srv := New(eng, Options{Admission: adm})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	raw, _ := testContainer(t, synthvid.Cartoon, 700, 8)
	var res ingestResp
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=resident", bytes.NewReader(raw), &res); resp.StatusCode != 200 {
		t.Fatalf("seed ingest: %d %s", resp.StatusCode, body)
	}

	checkState := func(wantCode int, wantStatus string, wantRetryAfter bool) {
		t.Helper()
		var health map[string]any
		resp, body := doJSON(t, "GET", ts.URL+"/healthz", nil, &health)
		if resp.StatusCode != wantCode || health["status"] != wantStatus {
			t.Fatalf("healthz = %d %s, want %d %q", resp.StatusCode, body, wantCode, wantStatus)
		}
		if got := resp.Header.Get("Retry-After") != ""; got != wantRetryAfter {
			t.Fatalf("healthz %q Retry-After present=%v, want %v", wantStatus, got, wantRetryAfter)
		}
		if _, ok := health["brownout"].(float64); !ok {
			t.Fatalf("healthz %q missing numeric brownout level: %s", wantStatus, body)
		}
	}

	checkState(200, "ok", false)

	// Saturate search past the 75% occupancy knee: 2 slots held + 1 queued
	// waiter pushes the load level to 1 — browned-out, but nothing has been
	// refused yet.
	ctl := srv.Admission()
	t1, err := ctl.Acquire(context.Background(), admission.Search)
	if err != nil {
		t.Fatal(err)
	}
	t2, err := ctl.Acquire(context.Background(), admission.Search)
	if err != nil {
		t.Fatal(err)
	}
	queued, queuedCancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if tk, err := ctl.Acquire(queued, admission.Search); err == nil {
			tk.Release()
		}
	}()
	waitFor(t, time.Second, func() bool { return ctl.Snapshot().Classes[admission.Search].Queued == 1 })
	checkState(200, "browned-out", false)

	// The first refusal flips the state to shedding (503 + Retry-After):
	// reindex sheds at level ≥ 0.5 and the level is pinned at 1.
	if _, err := ctl.Acquire(context.Background(), admission.Reindex); err == nil {
		t.Fatal("reindex admitted at load level 1")
	}
	checkState(503, "shedding", true)

	// Pressure clears: release everything, let the shed and latency windows
	// lapse, and the state returns to plain ok.
	queuedCancel()
	wg.Wait()
	t1.Release()
	t2.Release()
	waitFor(t, 2*time.Second, func() bool {
		shedding, _ := ctl.Shedding()
		return !shedding && ctl.Level() == 0
	})
	checkState(200, "ok", false)

	// A write fault degrades the store: healthz reports it with 503 +
	// Retry-After, trumping the (clear) load state.
	fired := false
	ffs.SetInjector(func(op faultfs.Op) faultfs.Action {
		if !fired && op.Kind == faultfs.OpWrite && op.Name == "healthz.db.wal" {
			fired = true
			return faultfs.ActErr
		}
		return faultfs.ActNone
	})
	if resp, _ := doJSON(t, "DELETE", ts.URL+"/api/v1/videos?id="+itoa(res.VideoID), nil, nil); resp.StatusCode != 503 {
		t.Fatalf("poisoning delete: %d", resp.StatusCode)
	}
	ffs.SetInjector(nil)
	checkState(503, "degraded", true)
}

// TestShedFailsFastWithComputedRetryAfter pins the shed latency contract:
// with the single ingest slot wedged, the refusal must arrive in under
// 50ms carrying a Retry-After computed from observed service times — and
// both previously hard-coded surfaces (ingest capacity, degraded 503s)
// must now produce integer seconds ≥ 1.
func TestShedFailsFastWithComputedRetryAfter(t *testing.T) {
	eng := openTestEngine(t)
	srv := New(eng, Options{MaxInFlightIngests: 1})
	admitted := make(chan string, 1)
	srv.admitHook = func(name string) { admitted <- name }
	ts := httptest.NewServer(srv)
	defer ts.Close()

	raw, _ := testContainer(t, synthvid.Cartoon, 710, 8)
	pr, pw := io.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=slow", pr, nil)
	}()
	<-admitted

	start := time.Now()
	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=shed", bytes.NewReader(raw), nil)
	elapsed := time.Since(start)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("shed ingest: %d %s", resp.StatusCode, body)
	}
	if elapsed > 50*time.Millisecond {
		t.Fatalf("shed took %v, want < 50ms", elapsed)
	}
	ra := resp.Header.Get("Retry-After")
	sec, err := strconv.Atoi(ra)
	if err != nil || sec < 1 {
		t.Fatalf("shed Retry-After = %q, want integer seconds >= 1", ra)
	}

	if _, err := pw.Write(raw); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	<-done
}

// TestSearchDeadlineThroughAPI drives deadline propagation end to end: a
// 1ms client-supplied deadline expires mid-request and surfaces as 503
// (the httperr mapping of context.DeadlineExceeded), the response echoes
// the applied deadline, an oversized override is capped at MaxDeadline,
// and an unhurried search on the same server still serves.
func TestSearchDeadlineThroughAPI(t *testing.T) {
	eng := openTestEngine(t)
	ts := httptest.NewServer(New(eng, Options{MaxDeadline: 5 * time.Second}))
	defer ts.Close()

	raw, v := testContainer(t, synthvid.Cartoon, 720, 16)
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=clip", bytes.NewReader(raw), nil); resp.StatusCode != 200 {
		t.Fatalf("seed ingest: %d %s", resp.StatusCode, body)
	}
	qjpeg := queryJPEG(t, v)

	req, err := http.NewRequest("POST", ts.URL+"/api/v1/search?k=5", bytes.NewReader(qjpeg))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("1ms-deadline search: %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(DeadlineHeader); got != "1" {
		t.Fatalf("deadline echo = %q, want 1", got)
	}

	// An override past the cap is clamped, and the echo shows the cap.
	req, err = http.NewRequest("POST", ts.URL+"/api/v1/search?k=5", bytes.NewReader(qjpeg))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(DeadlineHeader, "3600000")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get(DeadlineHeader); got != "5000" {
		t.Fatalf("capped deadline echo = %q, want 5000", got)
	}

	var sr searchResp
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/search?k=5", bytes.NewReader(qjpeg), &sr); resp.StatusCode != 200 || len(sr.Matches) == 0 {
		t.Fatalf("unhurried search after deadline storm: %d %s", resp.StatusCode, body)
	}
}

// stallingReader yields a prefix, then blocks until released — the shape
// of a slow-loris upload: the connection is alive, bytes are not coming.
type stallingReader struct {
	data    []byte
	off     int
	limit   int
	release chan struct{}
}

func (s *stallingReader) Read(p []byte) (int, error) {
	if s.off >= s.limit {
		<-s.release
		return 0, io.EOF
	}
	n := copy(p, s.data[s.off:s.limit])
	s.off += n
	return n, nil
}

// TestBodyStallWatchdogCutsSlowLoris wedges an upload that sends half the
// container and then stalls: the per-read watchdog must cut it with 408
// within a few stall windows — freeing the admission slot — and a healthy
// upload must succeed immediately afterwards.
func TestBodyStallWatchdogCutsSlowLoris(t *testing.T) {
	eng := openTestEngine(t)
	srv := New(eng, Options{MaxInFlightIngests: 1, BodyStallTimeout: 150 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	raw, _ := testContainer(t, synthvid.Cartoon, 730, 8)
	sr := &stallingReader{data: raw, limit: len(raw) / 2, release: make(chan struct{})}
	defer close(sr.release)

	start := time.Now()
	resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=loris", sr, nil)
	if resp.StatusCode != http.StatusRequestTimeout {
		t.Fatalf("stalled upload: %d %s, want 408", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("watchdog took %v to cut a 150ms stall", elapsed)
	}

	var ir ingestResp
	if resp, body := doJSON(t, "POST", ts.URL+"/api/v1/ingest?name=healthy", bytes.NewReader(raw), &ir); resp.StatusCode != 200 {
		t.Fatalf("upload after watchdog cut: %d %s", resp.StatusCode, body)
	}
}

// TestStatsReportsOverloadView checks /api/v1/stats now carries the
// admission snapshot (per-class occupancy and shed counters) and the
// engine brownout level alongside the search tally.
func TestStatsReportsOverloadView(t *testing.T) {
	eng := openTestEngine(t)
	ts := httptest.NewServer(New(eng, Options{}))
	defer ts.Close()

	var stats struct {
		Admission struct {
			Level   float64 `json:"level"`
			Classes []struct {
				Class string `json:"class"`
				Limit int     `json:"limit"`
			} `json:"classes"`
		} `json:"admission"`
		Brownout *float64 `json:"brownout"`
	}
	if resp, body := doJSON(t, "GET", ts.URL+"/api/v1/stats", nil, &stats); resp.StatusCode != 200 {
		t.Fatalf("stats: %d %s", resp.StatusCode, body)
	}
	if len(stats.Admission.Classes) != int(admission.NumClasses) {
		t.Fatalf("stats lists %d admission classes, want %d", len(stats.Admission.Classes), admission.NumClasses)
	}
	for _, c := range stats.Admission.Classes {
		if c.Limit <= 0 {
			t.Fatalf("class %s has non-positive limit %d", c.Class, c.Limit)
		}
	}
	if stats.Brownout == nil {
		t.Fatal("stats missing brownout level")
	}
}

// waitFor polls cond until it holds or the budget lapses.
func waitFor(t *testing.T, budget time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(budget)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within budget")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
