package features

import (
	"fmt"
	"strconv"

	"cbvr/internal/imaging"
)

// regionMajorFraction defines a "major region": a connected region whose
// pixel count is at least this fraction of the frame area. The paper
// stores only "no. of max regions" without a definition; 1% keeps the
// counts in the small single digits seen in Fig. 8 ("Majorregions : 2").
const regionMajorFraction = 0.01

// RegionStats is the §4.8 simple-region-growing descriptor: the number of
// connected regions, the number of hole (background/zero-valued) regions
// and the number of major regions after the paper's preprocessing chain
// (grayscale → minimum-fuzziness binarisation → dilate/erode/erode/dilate).
type RegionStats struct {
	Regions int
	Holes   int
	Major   int
}

// ExtractRegions runs the §4.8 pipeline on a frame.
func ExtractRegions(im *imaging.Image) *RegionStats {
	g := preprocessRegions(im)
	return growRegions(g)
}

// ExtractRegionsWith runs the pipeline from shared analysis planes,
// reusing the gray plane. BinarizeAuto allocates its output, so the shared
// plane itself is never written.
func ExtractRegionsWith(p *Planes) *RegionStats {
	return growRegions(p.Gray.BinarizeAuto().CloseOpenBox3())
}

// ExtractRegionsReference is the retained naive pipeline: its own rescale
// and gray conversion plus the generic kernel-walk morphology (CloseOpen
// over PaperKernel offsets with per-tap bounds checks). min/max folds are
// order-independent, so the separable box morphology the production paths
// use is provably identical; this baseline keeps the pre-optimisation
// cost measurable.
func ExtractRegionsReference(im *imaging.Image) *RegionStats {
	g := analysisImage(im).ToGray()
	return growRegions(g.BinarizeAuto().CloseOpen(imaging.PaperKernel()))
}

// preprocessRegions mirrors the paper's preprocess(): grayscale via the
// 0.114/0.587/0.299 band combine, Huang minimum-fuzziness binarisation,
// then dilate, erode, erode, dilate with the 5×5 (active 3×3) kernel —
// run as separable box passes, which produce the identical raster.
func preprocessRegions(im *imaging.Image) *imaging.Gray {
	g := analysisImage(im).ToGray()
	b := g.BinarizeAuto()
	return b.CloseOpenBox3()
}

// growRegions is the classic stack-based region growing from §4.8:
// 8-connected components of equal pixel value over the binarised raster.
func growRegions(g *imaging.Gray) *RegionStats {
	w, h := g.W, g.H
	labels := make([]int32, w*h)
	for i := range labels {
		labels[i] = -1
	}
	stats := &RegionStats{}
	majorMin := int(regionMajorFraction * float64(w*h))
	if majorMin < 1 {
		majorMin = 1
	}
	type point struct{ x, y int }
	var stack []point
	var region int32
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if labels[y*w+x] >= 0 {
				continue
			}
			val := g.Pix[y*w+x]
			if val == 0 {
				stats.Holes++
			}
			stats.Regions++
			count := 0
			stack = append(stack[:0], point{x, y})
			labels[y*w+x] = region
			for len(stack) > 0 {
				p := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				count++
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						nx, ny := p.x+dx, p.y+dy
						if nx < 0 || ny < 0 || nx >= w || ny >= h {
							continue
						}
						i := ny*w + nx
						if labels[i] < 0 && g.Pix[i] == val {
							labels[i] = region
							stack = append(stack, point{nx, ny})
						}
					}
				}
			}
			if count >= majorMin {
				stats.Major++
			}
			region++
		}
	}
	return stats
}

// Kind implements Descriptor.
func (r *RegionStats) Kind() Kind { return KindRegions }

// String renders "Regions <regions> <holes> <major>". (The KEY_FRAMES
// table stores only MAJORREGIONS as a number; the full triple is kept in
// the descriptor for the distance function. Fig. 8's display form
// "Majorregions : N" is produced by the featuredump example.)
func (r *RegionStats) String() string {
	return "Regions " + strconv.Itoa(r.Regions) + " " + strconv.Itoa(r.Holes) + " " + strconv.Itoa(r.Major)
}

// ParseRegions reconstructs the descriptor from its String form.
func ParseRegions(s string) (*RegionStats, error) {
	fields, err := fieldsAfterPrefix(s, "Regions")
	if err != nil {
		return nil, err
	}
	if len(fields) != 3 {
		return nil, fmt.Errorf("features: regions wants 3 fields, got %d", len(fields))
	}
	var vals [3]int
	for i, f := range fields {
		v, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("features: regions field %d: %w", i, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("features: regions field %d negative", i)
		}
		vals[i] = v
	}
	return &RegionStats{Regions: vals[0], Holes: vals[1], Major: vals[2]}, nil
}

// AppendTo implements Descriptor. Packed layout (stride 3): major,
// regions, holes as float64s (the counts are far below 2^53, so the
// conversions are exact and the kernel's float |Δ| equals absInt's).
func (r *RegionStats) AppendTo(dst []float64) []float64 {
	return append(dst, float64(r.Major), float64(r.Regions), float64(r.Holes))
}

// DistanceTo compares region structure: major-region count dominates, with
// smaller contributions from the total region and hole counts.
func (r *RegionStats) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*RegionStats)
	if !ok {
		return 0, kindMismatch(KindRegions, other)
	}
	d := float64(absInt(r.Major-o.Major)) +
		0.1*float64(absInt(r.Regions-o.Regions)) +
		0.05*float64(absInt(r.Holes-o.Holes))
	return d, nil
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
