// Package features implements the paper's seven frame descriptors
// (§4.3–§4.8): simple colour histogram, GLCM texture, Gabor texture,
// Tamura texture, auto colour correlogram, superficial (naive) signature
// and simple region growing — together with their string serialisations
// (the exact formats the paper stores in VARCHAR2 columns and prints in
// Fig. 8) and per-feature distance functions.
//
// Where the paper's pseudo-code contains quirks (the 257×257 GLCM, the
// Gabor feature-vector indexing bug that leaves the tail of the 60-vector
// zero), this package reproduces them faithfully and documents them, so
// outputs line up with the paper's published samples.
package features

import (
	"fmt"
	"strconv"
	"strings"

	"cbvr/internal/imaging"
)

// AnalysisSize is the canonical side length frames are rescaled to before
// feature extraction. The paper's pseudo-code bakes in 300×300 analysis:
// the range index divides histogram mass by 900 (= 300·300/100, i.e.
// percent), the naive signature rescales to 300, and the published GLCM
// pixelCounter is 180000 = 2·300·300.
const AnalysisSize = 300

// Kind identifies one of the paper's descriptors.
type Kind int

// The seven descriptor kinds, in the order of the paper's Table 1 columns.
const (
	KindGLCM Kind = iota
	KindGabor
	KindTamura
	KindHistogram
	KindCorrelogram
	KindRegions
	KindNaive
	NumKinds
)

var kindNames = [...]string{"glcm", "gabor", "tamura", "histogram", "autocorrelogram", "regions", "naive"}

// String returns the lower-case kind name.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// ParseKind maps a name produced by String back to a Kind.
func ParseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if n == s {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("features: unknown kind %q", s)
}

// AllKinds returns every kind in Table 1 order.
func AllKinds() []Kind {
	out := make([]Kind, NumKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// Descriptor is a single extracted feature: serialisable to the paper's
// string format and comparable to another descriptor of the same kind.
type Descriptor interface {
	// Kind identifies the descriptor type.
	Kind() Kind
	// String renders the paper's VARCHAR serialisation (Fig. 8 formats).
	String() string
	// DistanceTo returns a non-negative dissimilarity to another
	// descriptor of the same kind. It returns an error on a kind
	// mismatch.
	DistanceTo(other Descriptor) (float64, error)
	// AppendTo appends the descriptor's packed kernel vector — exactly
	// Stride(Kind()) float64s — to dst and returns the extended slice.
	// Distance-invariant normalisations (histogram mass, Tamura
	// directionality) are baked in at pack time, so the batched kernels
	// (see kernels.go) reproduce DistanceTo bit for bit over packed
	// vectors.
	AppendTo(dst []float64) []float64
}

// kernelStrides maps each kind to its packed kernel vector width. The
// layouts are defined next to each kind's AppendTo.
var kernelStrides = [NumKinds]int{
	KindGLCM:        5,
	KindGabor:       GaborVectorLen,
	KindTamura:      TamuraVectorLen,
	KindHistogram:   HistogramBins + 1,
	KindCorrelogram: CorrelogramBins * CorrelogramMaxDistance,
	KindRegions:     3,
	KindNaive:       NaivePoints * 3,
}

// Stride returns the packed kernel vector width of a kind (the number of
// float64s AppendTo emits and the per-row stride of an arena column).
func Stride(kind Kind) int {
	if kind < 0 || kind >= NumKinds {
		panic(errUnknownKind(kind))
	}
	return kernelStrides[kind]
}

// Extract computes the descriptor of the given kind for a frame.
func Extract(kind Kind, im *imaging.Image) (Descriptor, error) {
	switch kind {
	case KindHistogram:
		return ExtractColorHistogram(im), nil
	case KindGLCM:
		return ExtractGLCM(im), nil
	case KindGabor:
		return ExtractGabor(im), nil
	case KindTamura:
		return ExtractTamura(im), nil
	case KindCorrelogram:
		return ExtractCorrelogram(im), nil
	case KindNaive:
		return ExtractNaive(im), nil
	case KindRegions:
		return ExtractRegions(im), nil
	default:
		return nil, errUnknownKind(kind)
	}
}

// errUnknownKind builds the standard error for an out-of-range kind.
func errUnknownKind(kind Kind) error {
	return fmt.Errorf("features: unknown kind %d", int(kind))
}

// Parse reconstructs a descriptor of the given kind from its String form.
func Parse(kind Kind, s string) (Descriptor, error) {
	switch kind {
	case KindHistogram:
		return ParseColorHistogram(s)
	case KindGLCM:
		return ParseGLCM(s)
	case KindGabor:
		return ParseGabor(s)
	case KindTamura:
		return ParseTamura(s)
	case KindCorrelogram:
		return ParseCorrelogram(s)
	case KindNaive:
		return ParseNaive(s)
	case KindRegions:
		return ParseRegions(s)
	default:
		return nil, fmt.Errorf("features: unknown kind %d", int(kind))
	}
}

// Set bundles one descriptor of every kind for a frame, as the KEY_FRAMES
// row stores them.
type Set struct {
	Histogram   *ColorHistogram
	GLCM        *GLCM
	Gabor       *Gabor
	Tamura      *Tamura
	Correlogram *Correlogram
	Naive       *NaiveSignature
	Regions     *RegionStats
}

// ExtractAll computes all seven descriptors for a frame. It runs the
// shared analysis-plane pass (see Planes): one rescale, one gray
// conversion, one HSV quantisation for the whole set, with outputs
// bit-identical to ExtractAllReference.
func ExtractAll(im *imaging.Image) *Set {
	return ExtractAllShared(im)
}

// ExtractAllReference computes all seven descriptors the naive way the
// paper's pseudo-code implies: each extractor rescales and converts the
// frame independently, and the correlogram and Gabor extractors use the
// original per-pixel algorithms. It is retained as the equivalence and
// benchmark baseline for the shared-plane path (mirroring the search
// pipeline's SearchWithSetReference).
func ExtractAllReference(im *imaging.Image) *Set {
	return &Set{
		Histogram:   ExtractColorHistogram(im),
		GLCM:        ExtractGLCM(im),
		Gabor:       ExtractGaborReference(im),
		Tamura:      ExtractTamura(im),
		Correlogram: ExtractCorrelogramReference(im),
		Naive:       ExtractNaive(im),
		Regions:     ExtractRegionsReference(im),
	}
}

// Get returns the descriptor of the given kind, or nil if absent.
func (s *Set) Get(kind Kind) Descriptor {
	switch kind {
	case KindHistogram:
		if s.Histogram == nil {
			return nil
		}
		return s.Histogram
	case KindGLCM:
		if s.GLCM == nil {
			return nil
		}
		return s.GLCM
	case KindGabor:
		if s.Gabor == nil {
			return nil
		}
		return s.Gabor
	case KindTamura:
		if s.Tamura == nil {
			return nil
		}
		return s.Tamura
	case KindCorrelogram:
		if s.Correlogram == nil {
			return nil
		}
		return s.Correlogram
	case KindNaive:
		if s.Naive == nil {
			return nil
		}
		return s.Naive
	case KindRegions:
		if s.Regions == nil {
			return nil
		}
		return s.Regions
	default:
		return nil
	}
}

// Put stores a descriptor into its slot. It returns an error for an
// unknown concrete type.
func (s *Set) Put(d Descriptor) error {
	switch v := d.(type) {
	case *ColorHistogram:
		s.Histogram = v
	case *GLCM:
		s.GLCM = v
	case *Gabor:
		s.Gabor = v
	case *Tamura:
		s.Tamura = v
	case *Correlogram:
		s.Correlogram = v
	case *NaiveSignature:
		s.Naive = v
	case *RegionStats:
		s.Regions = v
	default:
		return fmt.Errorf("features: cannot place descriptor of type %T", d)
	}
	return nil
}

// kindMismatch builds the standard error for DistanceTo across kinds.
func kindMismatch(want Kind, got Descriptor) error {
	return fmt.Errorf("features: distance between %v and %v descriptors", want, got.Kind())
}

// AnalysisRaster returns the frame's canonical 300×300 analysis raster —
// the frame itself when it already has analysis dimensions. The streamed
// ingest pipeline rescales each source frame exactly once through this and
// feeds the raster to both §4.1 selection and key-frame feature extraction.
func AnalysisRaster(im *imaging.Image) *imaging.Image { return analysisImage(im) }

// analysisImage rescales a frame to the canonical 300×300 analysis raster
// using the paper's nearest-neighbour interpolation.
func analysisImage(im *imaging.Image) *imaging.Image {
	if im.W == AnalysisSize && im.H == AnalysisSize {
		return im
	}
	return im.Rescale(AnalysisSize, AnalysisSize)
}

// parseFloats converts whitespace-separated fields to float64s.
func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("features: bad float %q: %w", f, err)
		}
		out[i] = v
	}
	return out, nil
}

// formatFloat renders a float the way Java's StringBuilder.append(double)
// does for typical values (shortest round-trip representation).
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// fieldsAfterPrefix checks that s starts with the given token and returns
// the remaining whitespace-separated fields.
func fieldsAfterPrefix(s, prefix string) ([]string, error) {
	fields := strings.Fields(s)
	if len(fields) == 0 || fields[0] != prefix {
		return nil, fmt.Errorf("features: expected %q prefix in %.40q", prefix, s)
	}
	return fields[1:], nil
}
