package features

import (
	"fmt"
	"math"
	"strings"

	"cbvr/internal/imaging"
)

// glcmSize is the co-occurrence matrix side. The paper's pseudo-code
// iterates "while a is not equal to 257", i.e. a 257×257 matrix for 256
// grey levels — one row/column beyond what 8-bit pixels can index. We keep
// the faithful size (the extra row stays zero and does not affect the
// statistics) and note the quirk here.
const glcmSize = 257

// glcmStep is the horizontal co-occurrence offset (pixels[x+step][y]).
const glcmStep = 1

// GLCM holds the §4.3 grey-level co-occurrence texture features. The
// serialised form mirrors the paper's sample: pixelCounter, ASM, contrast,
// correlation, IDM, entropy.
type GLCM struct {
	PixelCounter float64
	ASM          float64
	Contrast     float64
	Correlation  float64
	IDM          float64
	Entropy      float64
}

// ExtractGLCM computes the grey-level co-occurrence texture of a frame
// over the 300×300 analysis raster (the paper's published pixelCounter is
// 180000 = 2·300·300, confirming that size).
func ExtractGLCM(im *imaging.Image) *GLCM {
	g := analysisImage(im).ToGray()
	return glcmFromGray(g)
}

// ExtractGLCMWith computes the descriptor from shared analysis planes,
// reusing the gray plane instead of rescaling and converting again.
func ExtractGLCMWith(p *Planes) *GLCM {
	return glcmFromGray(p.Gray)
}

func glcmFromGray(g *imaging.Gray) *GLCM {
	w, h := g.W, g.H
	// glcm[a][b] accumulates symmetric co-occurrence counts, then is
	// normalised in place to probabilities.
	glcm := make([][]float64, glcmSize)
	backing := make([]float64, glcmSize*glcmSize)
	for i := range glcm {
		glcm[i] = backing[i*glcmSize : (i+1)*glcmSize]
	}
	var pixelCounter float64
	for y := 0; y < h; y++ {
		row := y * w
		for x := 0; x+glcmStep < w; x++ {
			a := int(g.Pix[row+x])
			b := int(g.Pix[row+x+glcmStep])
			glcm[a][b]++
			glcm[b][a]++
			pixelCounter += 2
		}
	}
	out := &GLCM{PixelCounter: pixelCounter}
	if pixelCounter == 0 {
		return out
	}
	for a := 0; a < glcmSize; a++ {
		for b := 0; b < glcmSize; b++ {
			glcm[a][b] /= pixelCounter
		}
	}

	// First pass: ASM, contrast, IDM, entropy, and the marginal means.
	var px, py float64
	for a := 0; a < glcmSize; a++ {
		for b := 0; b < glcmSize; b++ {
			p := glcm[a][b]
			if p == 0 {
				continue
			}
			out.ASM += p * p
			d := float64(a - b)
			out.Contrast += d * d * p
			out.IDM += p / (1 + d*d)
			out.Entropy -= p * math.Log(p)
			px += float64(a) * p
			py += float64(b) * p
		}
	}
	// Second pass: standard deviations; third: correlation. This follows
	// the paper's computation (which uses variance accumulators named
	// stdevx/stdevy).
	var varx, vary float64
	for a := 0; a < glcmSize; a++ {
		for b := 0; b < glcmSize; b++ {
			p := glcm[a][b]
			if p == 0 {
				continue
			}
			varx += (float64(a) - px) * (float64(a) - px) * p
			vary += (float64(b) - py) * (float64(b) - py) * p
		}
	}
	if varx > 0 && vary > 0 {
		for a := 0; a < glcmSize; a++ {
			for b := 0; b < glcmSize; b++ {
				p := glcm[a][b]
				if p == 0 {
					continue
				}
				out.Correlation += (float64(a) - px) * (float64(b) - py) * p / (varx * vary)
			}
		}
	}
	return out
}

// Kind implements Descriptor.
func (g *GLCM) Kind() Kind { return KindGLCM }

// vector returns the five texture statistics (pixelCounter excluded — it
// is a size artefact, not a texture property).
func (g *GLCM) vector() [5]float64 {
	return [5]float64{g.ASM, g.Contrast, g.Correlation, g.IDM, g.Entropy}
}

// String renders the paper's sample format: six space-separated numbers
// "pixelCounter ASM contrast correlation IDM entropy".
func (g *GLCM) String() string {
	parts := []string{
		formatFloat(g.PixelCounter),
		formatFloat(g.ASM),
		formatFloat(g.Contrast),
		formatFloat(g.Correlation),
		formatFloat(g.IDM),
		formatFloat(g.Entropy),
	}
	return strings.Join(parts, " ")
}

// ParseGLCM reconstructs a GLCM descriptor from its String form.
func ParseGLCM(s string) (*GLCM, error) {
	fields := strings.Fields(s)
	if len(fields) != 6 {
		return nil, fmt.Errorf("features: glcm wants 6 fields, got %d", len(fields))
	}
	vs, err := parseFloats(fields)
	if err != nil {
		return nil, err
	}
	return &GLCM{
		PixelCounter: vs[0],
		ASM:          vs[1],
		Contrast:     vs[2],
		Correlation:  vs[3],
		IDM:          vs[4],
		Entropy:      vs[5],
	}, nil
}

// glcmScale normalises each statistic to a comparable magnitude before the
// L2 distance: contrast grows with the square of grey-level differences
// (up to ~255²·p) while ASM/IDM live in [0,1] and entropy in [0, ~11].
var glcmScale = [5]float64{1, 16384, 0.001, 1, 11}

// AppendTo implements Descriptor. Packed layout (stride 5): the raw
// vector() statistics in order. Scaling stays in the kernel — (a-b)/s is
// not bit-equal to a/s - b/s, so the values cannot be pre-divided.
func (g *GLCM) AppendTo(dst []float64) []float64 {
	v := g.vector()
	return append(dst, v[:]...)
}

// DistanceTo returns a scaled L2 distance between the five texture
// statistics.
func (g *GLCM) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*GLCM)
	if !ok {
		return 0, kindMismatch(KindGLCM, other)
	}
	va, vb := g.vector(), o.vector()
	var sum float64
	for i := range va {
		d := (va[i] - vb[i]) / glcmScale[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}
