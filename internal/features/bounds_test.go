package features

import (
	"math"
	"math/rand"
	"testing"
)

func pack(d Descriptor) []float64 { return d.AppendTo(nil) }

// TestPairLowerBoundSound is the soundness property the pruner rests on:
// for any cell (centroid = mean of member packed vectors, radius = max
// member distance to that centroid) and any query,
//
//	PairDistance(q, x) >= PairLowerBound(q, cent, rad)
//
// for every member x. Exercised per kind over many random cells,
// including zero-mass histogram degenerates on both the query and member
// sides. The slack tolerance is zero: the derivation uses only the
// triangle inequality and a max, and any violation — however small —
// would mean the exact single-kind sweep can drop a true top-K row.
func TestPairLowerBoundSound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for _, kind := range AllKinds() {
		if !BoundSupported(kind) {
			t.Fatalf("kind %d: BoundSupported false but kind exists", kind)
		}
		for trial := 0; trial < 200; trial++ {
			nm := 1 + rng.Intn(12)
			members := make([][]float64, nm)
			stride := Stride(kind)
			cent := make([]float64, stride)
			for i := range members {
				members[i] = pack(randDescriptor(rng, kind, kind == KindHistogram && rng.Intn(8) == 0))
				for j, v := range members[i] {
					cent[j] += v
				}
			}
			for j := range cent {
				cent[j] /= float64(nm)
			}
			rad := 0.0
			for _, m := range members {
				if d := PairDistance(kind, m, cent); d > rad {
					rad = d
				}
			}
			q := pack(randDescriptor(rng, kind, kind == KindHistogram && rng.Intn(8) == 0))
			lb := PairLowerBound(kind, q, cent, rad)
			if lb < 0 {
				t.Fatalf("kind %d: negative lower bound %g", kind, lb)
			}
			for mi, m := range members {
				if d := PairDistance(kind, q, m); d < lb {
					t.Fatalf("kind %d trial %d member %d: distance %.17g below bound %.17g (rad %.17g)",
						kind, trial, mi, d, lb, rad)
				}
			}
		}
	}
}

// TestBatchLowerBoundMatchesPair pins the batch form to the pair form bit
// for bit over a packed centroid column.
func TestBatchLowerBoundMatchesPair(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for _, kind := range AllKinds() {
		stride := Stride(kind)
		const nc = 17
		col := make([]float64, 0, nc*stride)
		rads := make([]float64, nc)
		for i := 0; i < nc; i++ {
			col = append(col, pack(randDescriptor(rng, kind, false))...)
			rads[i] = rng.Float64() * 3
		}
		rads[3] = 0
		rads[5] = math.Inf(1) // kind-absent cell: bound must clamp to 0
		q := pack(randDescriptor(rng, kind, false))
		out := make([]float64, nc)
		BatchLowerBound(kind, q, col, rads, out)
		for i := 0; i < nc; i++ {
			want := PairLowerBound(kind, q, col[i*stride:(i+1)*stride], rads[i])
			if out[i] != want {
				t.Fatalf("kind %d cell %d: batch %.17g != pair %.17g", kind, i, out[i], want)
			}
		}
		if out[5] != 0 {
			t.Fatalf("kind %d: infinite-radius cell bound %g, want 0", kind, out[5])
		}
	}
}

// TestHistogramDegenerateBound spells out the zero-mass case analysis
// from the package comment as concrete assertions.
func TestHistogramDegenerateBound(t *testing.T) {
	empty := pack(&ColorHistogram{})
	full := &ColorHistogram{}
	full.Bins[3] = 90000
	fullV := pack(full)

	// Empty member in a cell with non-empty centroid: radius >= 2, so the
	// bound can never exceed any real distance (max distance is 2).
	cent := make([]float64, len(fullV))
	for i := range cent {
		cent[i] = fullV[i] / 2 // mean of full and empty: mass stays positive
	}
	rad := PairDistance(KindHistogram, empty, cent)
	if d := PairDistance(KindHistogram, fullV, cent); d > rad {
		rad = d
	}
	if rad < 1 {
		t.Fatalf("cell with empty member has radius %g; expected a wide cell", rad)
	}
	for _, q := range [][]float64{empty, fullV} {
		lb := PairLowerBound(KindHistogram, q, cent, rad)
		for _, m := range [][]float64{empty, fullV} {
			if d := PairDistance(KindHistogram, q, m); d < lb {
				t.Fatalf("degenerate histogram: distance %g below bound %g", d, lb)
			}
		}
	}

	// Empty query against an all-empty cell: centroid mass 0, distance 0,
	// bound must clamp at 0.
	if lb := PairLowerBound(KindHistogram, empty, empty, 0); lb != 0 {
		t.Fatalf("empty query vs empty centroid: bound %g, want 0", lb)
	}
}
