// Batched distance kernels over packed descriptor columns.
//
// The search scan's cost model changed three times: PR 1 parallelised it,
// PR 2 made extraction cheap, and what remained was memory layout — every
// candidate×kind paid an interface-dispatched DistanceTo call chasing a
// heap-allocated descriptor. The kernels here close that gap: descriptors
// pack into contiguous per-kind float64 columns (Descriptor.AppendTo,
// Stride), and each kind gets a batch kernel that computes
// query-vs-column distances straight into a caller-owned output buffer —
// no interface dispatch, no per-candidate allocation, branch-free inner
// loops over contiguous memory (math.Abs compiles to a sign-bit clear).
//
// Every kernel is bit-identical to the corresponding DistanceTo: packing
// hoists only the comparand-independent work (probability normalisation,
// uint8 widening), and the kernels keep DistanceTo's operation order and
// associativity exactly (kernels_test.go enforces this per kind,
// including the degenerate zero-mass cases).
package features

import "math"

// BatchDistance computes out[i] = the kind's DistanceTo between the
// packed query vector q (len Stride(kind), from AppendTo) and row rows[i]
// of the packed column col (row r occupies col[r*stride:(r+1)*stride]).
// out must have len(rows) capacity; rows may address any subset of the
// column in any order.
//
//cbvrvet:noalloc
func BatchDistance(kind Kind, q, col []float64, rows []int32, out []float64) {
	switch kind {
	case KindHistogram:
		batchKernel(q, col, rows, out, histRow)
	case KindGLCM:
		batchKernel(q, col, rows, out, glcmRow)
	case KindGabor:
		BatchL2(q, col, rows, out)
	case KindTamura:
		batchKernel(q, col, rows, out, tamuraRow)
	case KindCorrelogram:
		batchKernel(q, col, rows, out, correlogramRow)
	case KindRegions:
		batchKernel(q, col, rows, out, regionsRow)
	case KindNaive:
		batchKernel(q, col, rows, out, naiveRow)
	default:
		panic(errUnknownKind(kind))
	}
}

// PairDistance computes the kind's DistanceTo between two packed vectors
// (each len Stride(kind)). It is the single-pair form of BatchDistance,
// used by the fixed-scale fusion in DTW video search and the
// best-single-frame ablation.
//
//cbvrvet:noalloc
func PairDistance(kind Kind, a, b []float64) float64 {
	switch kind {
	case KindHistogram:
		return histRow(a, b)
	case KindGLCM:
		return glcmRow(a, b)
	case KindGabor:
		return l2Row(a, b)
	case KindTamura:
		return tamuraRow(a, b)
	case KindCorrelogram:
		return correlogramRow(a, b)
	case KindRegions:
		return regionsRow(a, b)
	case KindNaive:
		return naiveRow(a, b)
	default:
		panic(errUnknownKind(kind))
	}
}

// batchKernel sweeps the selected column rows through a row kernel. The
// stride is len(q); the per-row subslice is capped so the row functions'
// reslices keep every index in bounds-checked-once territory.
//
//cbvrvet:noalloc
func batchKernel(q, col []float64, rows []int32, out []float64, row func(q, r []float64) float64) {
	stride := len(q)
	for i, s := range rows {
		off := int(s) * stride
		out[i] = row(q, col[off:off+stride:off+stride])
	}
}

// BatchL1 computes out[i] = the L1 distance between q and row rows[i] of
// col (stride len(q)). Generic building block; the histogram and
// correlogram kernels reuse its row form with their own scaling.
//
//cbvrvet:noalloc
func BatchL1(q, col []float64, rows []int32, out []float64) {
	batchKernel(q, col, rows, out, l1Row)
}

// BatchL2 computes out[i] = the L2 distance between q and row rows[i] of
// col (stride len(q)). The Gabor kernel is exactly this at stride 60.
//
//cbvrvet:noalloc
func BatchL2(q, col []float64, rows []int32, out []float64) {
	batchKernel(q, col, rows, out, l2Row)
}

// l1Row sums |q[i]-r[i]| in ascending index order. The reslice of r to
// len(q) eliminates the bounds check on r[i] inside the loop.
//
//cbvrvet:noalloc
func l1Row(q, r []float64) float64 {
	r = r[:len(q)]
	var sum float64
	for i, qv := range q {
		sum += math.Abs(qv - r[i])
	}
	return sum
}

// l2Row accumulates squared differences in ascending index order, then
// takes one square root.
//
//cbvrvet:noalloc
func l2Row(q, r []float64) float64 {
	r = r[:len(q)]
	var sum float64
	for i, qv := range q {
		d := qv - r[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// histRow is ColorHistogram.DistanceTo over packed vectors: element 0 is
// the histogram mass (the degenerate empty-histogram rule), elements
// 1..256 the bin probabilities compared by L1.
//
//cbvrvet:noalloc
func histRow(q, r []float64) float64 {
	if q[0] == 0 || r[0] == 0 {
		if q[0] == r[0] {
			return 0
		}
		return 2
	}
	return l1Row(q[1:], r[1:])
}

// glcmRow is GLCM.DistanceTo over packed vectors: per-statistic scaled
// differences, squared and summed in vector() order.
//
//cbvrvet:noalloc
func glcmRow(q, r []float64) float64 {
	var sum float64
	for i := 0; i < len(glcmScale); i++ {
		d := (q[i] - r[i]) / glcmScale[i]
		sum += d * d
	}
	return math.Sqrt(sum)
}

// Tamura kernel scales, mirroring Tamura.DistanceTo's constants.
const (
	tamuraCoarseScale   = 20000
	tamuraContrastScale = 128
)

// tamuraRow is Tamura.DistanceTo over packed vectors: scaled coarseness
// and contrast squared-sum plus half the L1 between the pre-normalised
// directionality distributions.
//
//cbvrvet:noalloc
func tamuraRow(q, r []float64) float64 {
	dc := (q[0] - r[0]) / tamuraCoarseScale
	dk := (q[1] - r[1]) / tamuraContrastScale
	sum := dc*dc + dk*dk
	return math.Sqrt(sum) + l1Row(q[2:2+TamuraDirBins], r[2:2+TamuraDirBins])/2
}

// correlogramRow is Correlogram.DistanceTo over packed vectors: the cells
// are flattened in DistanceTo's accumulation order, so the plain L1 sum
// divided by the cell count reproduces the mean absolute difference.
//
//cbvrvet:noalloc
func correlogramRow(q, r []float64) float64 {
	return l1Row(q, r) / (CorrelogramBins * CorrelogramMaxDistance)
}

// regionsRow is RegionStats.DistanceTo over packed vectors
// [major, regions, holes]; the counts are exact in float64.
//
//cbvrvet:noalloc
func regionsRow(q, r []float64) float64 {
	return math.Abs(q[0]-r[0]) + 0.1*math.Abs(q[1]-r[1]) + 0.05*math.Abs(q[2]-r[2])
}

// naiveRow is NaiveSignature.DistanceTo over packed vectors: per sample
// point the Euclidean RGB distance, summed over the 25 points.
//
//cbvrvet:noalloc
func naiveRow(q, r []float64) float64 {
	r = r[:len(q)]
	var sum float64
	for i := 0; i+2 < len(q); i += 3 {
		d0 := q[i] - r[i]
		d1 := q[i+1] - r[i+1]
		d2 := q[i+2] - r[i+2]
		sum += math.Sqrt(d0*d0 + d1*d1 + d2*d2)
	}
	return sum
}
