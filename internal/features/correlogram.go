package features

import (
	"fmt"
	"strings"

	"cbvr/internal/imaging"
)

// Auto colour correlogram geometry (§4.7). The paper's sample output is
// "ACC 4 …" — maxDistance 4 — followed by per-colour groups of 4 values.
const (
	// CorrelogramBins quantises HSV into 16 hue × 2 saturation × 2 value
	// cells.
	CorrelogramBins = 64
	// CorrelogramMaxDistance is the largest Chebyshev ring radius.
	CorrelogramMaxDistance = 4
)

// Correlogram is the §4.7 auto colour correlogram: for each quantised
// colour c and distance d, the max-normalised count of same-colour pixels
// on the Chebyshev ring of radius d (the pseudo-code's normalisation
// divides by the per-distance maximum over colours, not by a probability
// denominator — we keep that faithfully).
type Correlogram struct {
	Cor [CorrelogramBins][CorrelogramMaxDistance]float64
}

// QuantizeHSV maps an RGB pixel into one of the 64 HSV cells.
func QuantizeHSV(r, g, b uint8) int {
	h, s, v := imaging.RGBToHSV(r, g, b)
	hb := int(h / 360 * 16)
	if hb > 15 {
		hb = 15
	}
	sb := 0
	if s >= 0.5 {
		sb = 1
	}
	vb := 0
	if v >= 0.5 {
		vb = 1
	}
	return hb<<2 | sb<<1 | vb
}

// ExtractCorrelogram computes the §4.7 descriptor over the 300×300
// analysis raster.
func ExtractCorrelogram(im *imaging.Image) *Correlogram {
	a := analysisImage(im)
	w, h := a.W, a.H
	quant := make([]uint8, w*h)
	for i, p := 0, 0; i < w*h; i, p = i+1, p+3 {
		quant[i] = uint8(QuantizeHSV(a.Pix[p], a.Pix[p+1], a.Pix[p+2]))
	}
	var raw [CorrelogramBins][CorrelogramMaxDistance]float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := quant[y*w+x]
			for d := 1; d <= CorrelogramMaxDistance; d++ {
				raw[c][d-1] += float64(countRing(quant, w, h, x, y, d, c))
			}
		}
	}
	out := &Correlogram{}
	// Paper normalisation: divide by the per-distance maximum across
	// colours.
	for d := 0; d < CorrelogramMaxDistance; d++ {
		var max float64
		for c := 0; c < CorrelogramBins; c++ {
			if raw[c][d] > max {
				max = raw[c][d]
			}
		}
		if max == 0 {
			continue
		}
		for c := 0; c < CorrelogramBins; c++ {
			out.Cor[c][d] = raw[c][d] / max
		}
	}
	return out
}

// countRing counts pixels with quantised colour c on the Chebyshev ring of
// radius d around (x, y), clipped to the image.
func countRing(quant []uint8, w, h, x, y, d int, c uint8) int {
	n := 0
	x0, x1 := x-d, x+d
	y0, y1 := y-d, y+d
	// Top and bottom rows.
	for _, ry := range [2]int{y0, y1} {
		if ry < 0 || ry >= h {
			continue
		}
		for rx := x0; rx <= x1; rx++ {
			if rx < 0 || rx >= w {
				continue
			}
			if quant[ry*w+rx] == c {
				n++
			}
		}
	}
	// Left and right columns, excluding corners already counted.
	for _, rx := range [2]int{x0, x1} {
		if rx < 0 || rx >= w {
			continue
		}
		for ry := y0 + 1; ry < y1; ry++ {
			if ry < 0 || ry >= h {
				continue
			}
			if quant[ry*w+rx] == c {
				n++
			}
		}
	}
	return n
}

// Kind implements Descriptor.
func (c *Correlogram) Kind() Kind { return KindCorrelogram }

// String renders the paper's format: "ACC 4 <c0d1> <c0d2> <c0d3> <c0d4>
// <c1d1> …".
func (c *Correlogram) String() string {
	var sb strings.Builder
	sb.Grow(CorrelogramBins * CorrelogramMaxDistance * 12)
	sb.WriteString("ACC 4")
	for b := 0; b < CorrelogramBins; b++ {
		for d := 0; d < CorrelogramMaxDistance; d++ {
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(c.Cor[b][d]))
		}
	}
	return sb.String()
}

// ParseCorrelogram reconstructs a correlogram from its String form.
func ParseCorrelogram(s string) (*Correlogram, error) {
	fields, err := fieldsAfterPrefix(s, "ACC")
	if err != nil {
		return nil, err
	}
	want := CorrelogramBins*CorrelogramMaxDistance + 1
	if len(fields) != want {
		return nil, fmt.Errorf("features: correlogram wants %d fields, got %d", want, len(fields))
	}
	if fields[0] != "4" {
		return nil, fmt.Errorf("features: correlogram distance field %q", fields[0])
	}
	vs, err := parseFloats(fields[1:])
	if err != nil {
		return nil, err
	}
	out := &Correlogram{}
	i := 0
	for b := 0; b < CorrelogramBins; b++ {
		for d := 0; d < CorrelogramMaxDistance; d++ {
			out.Cor[b][d] = vs[i]
			i++
		}
	}
	return out, nil
}

// DistanceTo returns the mean absolute difference across all
// (colour, distance) cells.
func (c *Correlogram) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*Correlogram)
	if !ok {
		return 0, kindMismatch(KindCorrelogram, other)
	}
	var sum float64
	for b := 0; b < CorrelogramBins; b++ {
		for d := 0; d < CorrelogramMaxDistance; d++ {
			diff := c.Cor[b][d] - o.Cor[b][d]
			if diff < 0 {
				diff = -diff
			}
			sum += diff
		}
	}
	return sum / (CorrelogramBins * CorrelogramMaxDistance), nil
}
