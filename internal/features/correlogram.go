package features

import (
	"fmt"
	"strings"
	"sync"

	"cbvr/internal/imaging"
)

// Auto colour correlogram geometry (§4.7). The paper's sample output is
// "ACC 4 …" — maxDistance 4 — followed by per-colour groups of 4 values.
const (
	// CorrelogramBins quantises HSV into 16 hue × 2 saturation × 2 value
	// cells.
	CorrelogramBins = 64
	// CorrelogramMaxDistance is the largest Chebyshev ring radius.
	CorrelogramMaxDistance = 4
)

// Correlogram is the §4.7 auto colour correlogram: for each quantised
// colour c and distance d, the max-normalised count of same-colour pixels
// on the Chebyshev ring of radius d (the pseudo-code's normalisation
// divides by the per-distance maximum over colours, not by a probability
// denominator — we keep that faithfully).
type Correlogram struct {
	Cor [CorrelogramBins][CorrelogramMaxDistance]float64
}

// QuantizeHSV maps an RGB pixel into one of the 64 HSV cells.
func QuantizeHSV(r, g, b uint8) int {
	h, s, v := imaging.RGBToHSV(r, g, b)
	hb := int(h / 360 * 16)
	if hb > 15 {
		hb = 15
	}
	sb := 0
	if s >= 0.5 {
		sb = 1
	}
	vb := 0
	if v >= 0.5 {
		vb = 1
	}
	return hb<<2 | sb<<1 | vb
}

// ExtractCorrelogram computes the §4.7 descriptor over the 300×300
// analysis raster using the prefix-sum ring counter.
func ExtractCorrelogram(im *imaging.Image) *Correlogram {
	a := analysisImage(im)
	return correlogramFromQuant(quantizePlane(a), a.W, a.H)
}

// ExtractCorrelogramWith computes the descriptor from shared analysis
// planes, reusing the HSV-quantised plane.
func ExtractCorrelogramWith(p *Planes) *Correlogram {
	return correlogramFromQuant(p.Quant, p.Analysis.W, p.Analysis.H)
}

// ExtractCorrelogramReference is the retained naive implementation: a
// per-pixel countRing walk over every Chebyshev ring, exactly as the
// paper's pseudo-code does it. It is the bit-identity baseline for the
// prefix-sum path (see shared_test.go) and the "before" benchmark.
func ExtractCorrelogramReference(im *imaging.Image) *Correlogram {
	a := analysisImage(im)
	w, h := a.W, a.H
	quant := quantizePlane(a)
	var raw [CorrelogramBins][CorrelogramMaxDistance]float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			c := quant[y*w+x]
			for d := 1; d <= CorrelogramMaxDistance; d++ {
				raw[c][d-1] += float64(countRing(quant, w, h, x, y, d, c))
			}
		}
	}
	return normalizeCorrelogram(&raw)
}

// quantizePlane maps every pixel of the analysis raster into its HSV cell.
func quantizePlane(a *imaging.Image) []uint8 {
	quant := make([]uint8, a.W*a.H)
	for i, p := 0, 0; i < len(quant); i, p = i+1, p+3 {
		quant[i] = uint8(QuantizeHSV(a.Pix[p], a.Pix[p+1], a.Pix[p+2]))
	}
	return quant
}

// normalizeCorrelogram applies the paper's normalisation: divide by the
// per-distance maximum across colours. Raw counts are integers well below
// 2^53, so float conversion is exact and the result does not depend on the
// order the counts were accumulated in.
func normalizeCorrelogram(raw *[CorrelogramBins][CorrelogramMaxDistance]float64) *Correlogram {
	out := &Correlogram{}
	for d := 0; d < CorrelogramMaxDistance; d++ {
		var max float64
		for c := 0; c < CorrelogramBins; c++ {
			if raw[c][d] > max {
				max = raw[c][d]
			}
		}
		if max == 0 {
			continue
		}
		for c := 0; c < CorrelogramBins; c++ {
			out.Cor[c][d] = raw[c][d] / max
		}
	}
	return out
}

// corrScratch holds the reusable per-colour prefix-sum planes. Pooled
// because correlogram extraction runs on every ingest worker and the
// planes are ~¾ MB per call.
type corrScratch struct {
	pos   []int32 // pixel indices bucketed by colour
	rowPS []int32 // h×(w+1): per-row prefix counts of the current colour
	colPS []int32 // w×(h+1): per-column prefix counts of the current colour
}

var corrScratchPool = sync.Pool{New: func() any { return &corrScratch{} }}

func (s *corrScratch) grow(w, h int) {
	if n := w * h; cap(s.pos) < n {
		s.pos = make([]int32, n)
	}
	if n := h * (w + 1); cap(s.rowPS) < n {
		s.rowPS = make([]int32, n)
	}
	if n := w * (h + 1); cap(s.colPS) < n {
		s.colPS = make([]int32, n)
	}
}

// correlogramFromQuant computes the auto correlogram from a quantised
// plane with per-colour prefix sums: for each colour, one pass builds row
// and column prefix counts over the colour's bounding box, after which the
// count of same-colour pixels on any clipped Chebyshev ring is four O(1)
// range lookups (top row, bottom row, left column, right column) instead
// of a per-pixel ring walk. Counts are accumulated as integers and
// normalised exactly like the reference, so the output is bit-identical
// to ExtractCorrelogramReference.
func correlogramFromQuant(quant []uint8, w, h int) *Correlogram {
	var counts [CorrelogramBins]int32
	var minX, maxX, minY, maxY [CorrelogramBins]int32
	for c := range minX {
		minX[c], minY[c] = int32(w), int32(h)
		maxX[c], maxY[c] = -1, -1
	}
	for y := 0; y < h; y++ {
		row := quant[y*w : (y+1)*w]
		for x, c := range row {
			counts[c]++
			if int32(x) < minX[c] {
				minX[c] = int32(x)
			}
			if int32(x) > maxX[c] {
				maxX[c] = int32(x)
			}
			if int32(y) < minY[c] {
				minY[c] = int32(y)
			}
			maxY[c] = int32(y)
		}
	}
	// Bucket pixel positions by colour (counting sort).
	var starts [CorrelogramBins + 1]int32
	for c := 0; c < CorrelogramBins; c++ {
		starts[c+1] = starts[c] + counts[c]
	}
	sc := corrScratchPool.Get().(*corrScratch)
	defer corrScratchPool.Put(sc)
	sc.grow(w, h)
	pos := sc.pos[:w*h]
	cursor := starts
	for i, c := range quant {
		pos[cursor[c]] = int32(i)
		cursor[c]++
	}

	w1, h1 := w+1, h+1
	rowPS, colPS := sc.rowPS, sc.colPS
	var raw [CorrelogramBins][CorrelogramMaxDistance]int64
	for c := 0; c < CorrelogramBins; c++ {
		n := int(counts[c])
		if n == 0 {
			continue
		}
		bucket := pos[starts[c]:starts[c+1]]
		x0, x1 := int(minX[c]), int(maxX[c])
		y0, y1 := int(minY[c]), int(maxY[c])
		// Sparse colours: summing ring counts over all pixels of c equals
		// counting ordered same-colour pairs by Chebyshev distance, so a
		// pairwise sweep over the (few) occurrences beats building prefix
		// planes over the bounding box.
		if int64(n)*int64(n) <= 2*int64(x1-x0+1)*int64(y1-y0+1) {
			for i, pi := range bucket {
				xi, yi := int(pi)%w, int(pi)/w
				for _, pj := range bucket[i+1:] {
					dx := xi - int(pj)%w
					if dx < 0 {
						dx = -dx
					}
					dy := yi - int(pj)/w
					if dy < 0 {
						dy = -dy
					}
					if dx < dy {
						dx = dy
					}
					if dx >= 1 && dx <= CorrelogramMaxDistance {
						raw[c][dx-1] += 2 // ordered pairs: (i,j) and (j,i)
					}
				}
			}
			continue
		}
		cu := uint8(c)
		// Prefix counts of colour c over its bounding box: rings centred
		// on colour-c pixels only ever count colour-c pixels, and outside
		// [x0,x1]×[y0,y1] there are none — so queries clamp to the box
		// and the planes never need building beyond it.
		for y := y0; y <= y1; y++ {
			base := y * w
			ps := rowPS[y*w1:]
			var run int32
			for x := x0; x <= x1; x++ {
				ps[x] = run
				if quant[base+x] == cu {
					run++
				}
			}
			ps[x1+1] = run
		}
		for x := x0; x <= x1; x++ {
			ps := colPS[x*h1:]
			var run int32
			qi := y0*w + x
			for y := y0; y <= y1; y++ {
				ps[y] = run
				if quant[qi] == cu {
					run++
				}
				qi += w
			}
			ps[y1+1] = run
		}
		for _, pi := range bucket {
			x, y := int(pi)%w, int(pi)/w
			for d := 1; d <= CorrelogramMaxDistance; d++ {
				var n int32
				// Top and bottom rows of the ring: columns [x-d, x+d]
				// clamped to the box.
				cl, ch := x-d, x+d
				if cl < x0 {
					cl = x0
				}
				if ch > x1 {
					ch = x1
				}
				if ch >= cl {
					if ry := y - d; ry >= y0 && ry <= y1 {
						n += rowPS[ry*w1+ch+1] - rowPS[ry*w1+cl]
					}
					if ry := y + d; ry >= y0 && ry <= y1 {
						n += rowPS[ry*w1+ch+1] - rowPS[ry*w1+cl]
					}
				}
				// Left and right columns, excluding the corners the rows
				// already counted: rows [y-d+1, y+d-1] clamped to the box.
				rl, rh := y-d+1, y+d-1
				if rl < y0 {
					rl = y0
				}
				if rh > y1 {
					rh = y1
				}
				if rh >= rl {
					if rx := x - d; rx >= x0 && rx <= x1 {
						n += colPS[rx*h1+rh+1] - colPS[rx*h1+rl]
					}
					if rx := x + d; rx >= x0 && rx <= x1 {
						n += colPS[rx*h1+rh+1] - colPS[rx*h1+rl]
					}
				}
				raw[c][d-1] += int64(n)
			}
		}
	}
	var rawF [CorrelogramBins][CorrelogramMaxDistance]float64
	for c := 0; c < CorrelogramBins; c++ {
		for d := 0; d < CorrelogramMaxDistance; d++ {
			rawF[c][d] = float64(raw[c][d])
		}
	}
	return normalizeCorrelogram(&rawF)
}

// countRing counts pixels with quantised colour c on the Chebyshev ring of
// radius d around (x, y), clipped to the image. It is the reference ring
// counter; the production path answers the same question with prefix-sum
// range lookups in correlogramFromQuant.
func countRing(quant []uint8, w, h, x, y, d int, c uint8) int {
	n := 0
	x0, x1 := x-d, x+d
	y0, y1 := y-d, y+d
	// Top and bottom rows.
	for _, ry := range [2]int{y0, y1} {
		if ry < 0 || ry >= h {
			continue
		}
		for rx := x0; rx <= x1; rx++ {
			if rx < 0 || rx >= w {
				continue
			}
			if quant[ry*w+rx] == c {
				n++
			}
		}
	}
	// Left and right columns, excluding corners already counted.
	for _, rx := range [2]int{x0, x1} {
		if rx < 0 || rx >= w {
			continue
		}
		for ry := y0 + 1; ry < y1; ry++ {
			if ry < 0 || ry >= h {
				continue
			}
			if quant[ry*w+rx] == c {
				n++
			}
		}
	}
	return n
}

// Kind implements Descriptor.
func (c *Correlogram) Kind() Kind { return KindCorrelogram }

// String renders the paper's format: "ACC 4 <c0d1> <c0d2> <c0d3> <c0d4>
// <c1d1> …".
func (c *Correlogram) String() string {
	var sb strings.Builder
	sb.Grow(CorrelogramBins * CorrelogramMaxDistance * 12)
	sb.WriteString("ACC 4")
	for b := 0; b < CorrelogramBins; b++ {
		for d := 0; d < CorrelogramMaxDistance; d++ {
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(c.Cor[b][d]))
		}
	}
	return sb.String()
}

// ParseCorrelogram reconstructs a correlogram from its String form.
func ParseCorrelogram(s string) (*Correlogram, error) {
	fields, err := fieldsAfterPrefix(s, "ACC")
	if err != nil {
		return nil, err
	}
	want := CorrelogramBins*CorrelogramMaxDistance + 1
	if len(fields) != want {
		return nil, fmt.Errorf("features: correlogram wants %d fields, got %d", want, len(fields))
	}
	if fields[0] != "4" {
		return nil, fmt.Errorf("features: correlogram distance field %q", fields[0])
	}
	vs, err := parseFloats(fields[1:])
	if err != nil {
		return nil, err
	}
	out := &Correlogram{}
	i := 0
	for b := 0; b < CorrelogramBins; b++ {
		for d := 0; d < CorrelogramMaxDistance; d++ {
			out.Cor[b][d] = vs[i]
			i++
		}
	}
	return out, nil
}

// AppendTo implements Descriptor. Packed layout (stride 256): the cells
// flattened colour-major, distance-minor — DistanceTo's accumulation
// order, so the batched mean-abs-diff kernel sums in the same order.
func (c *Correlogram) AppendTo(dst []float64) []float64 {
	for b := 0; b < CorrelogramBins; b++ {
		dst = append(dst, c.Cor[b][:]...)
	}
	return dst
}

// DistanceTo returns the mean absolute difference across all
// (colour, distance) cells.
func (c *Correlogram) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*Correlogram)
	if !ok {
		return 0, kindMismatch(KindCorrelogram, other)
	}
	var sum float64
	for b := 0; b < CorrelogramBins; b++ {
		for d := 0; d < CorrelogramMaxDistance; d++ {
			diff := c.Cor[b][d] - o.Cor[b][d]
			if diff < 0 {
				diff = -diff
			}
			sum += diff
		}
	}
	return sum / (CorrelogramBins * CorrelogramMaxDistance), nil
}
