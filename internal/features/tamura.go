package features

import (
	"fmt"
	"math"
	"strings"

	"cbvr/internal/imaging"
)

// Tamura descriptor geometry. The paper's sample output "Tamura 18 …"
// carries 18 values: coarseness, contrast and a 16-bin directionality
// histogram.
const (
	TamuraDirBins   = 16
	TamuraVectorLen = 2 + TamuraDirBins
	// tamuraMaxK is the largest averaging window exponent for coarseness
	// (windows of side 2^k).
	tamuraMaxK = 3
	// tamuraSampleStep subsamples coarseness evaluation points; the
	// published coarseness magnitude (~1.5e4) matches summing 2^k_best
	// over a sampled grid rather than every pixel.
	tamuraSampleStep = 4
	// tamuraDirThreshold is the minimum gradient magnitude for a pixel to
	// vote in the directionality histogram (LIRE uses 12).
	tamuraDirThreshold = 12
)

// Tamura holds the three classic Tamura texture measures: coarseness,
// contrast, and a 16-bin edge-direction histogram.
type Tamura struct {
	Coarseness     float64
	Contrast       float64
	Directionality [TamuraDirBins]float64
}

// ExtractTamura computes the Tamura texture features of a frame over the
// 300×300 analysis raster.
func ExtractTamura(im *imaging.Image) *Tamura {
	return tamuraFromGray(analysisImage(im).ToGray())
}

// ExtractTamuraWith computes the descriptor from shared analysis planes,
// reusing the gray plane instead of rescaling and converting again.
func ExtractTamuraWith(p *Planes) *Tamura {
	return tamuraFromGray(p.Gray)
}

func tamuraFromGray(g *imaging.Gray) *Tamura {
	t := &Tamura{}
	t.Coarseness = tamuraCoarseness(g)
	t.Contrast = tamuraContrast(g)
	t.Directionality = tamuraDirectionality(g)
	return t
}

// integralImage returns the summed-area table with one extra row/column of
// zeros, so rectangle sums are O(1).
func integralImage(g *imaging.Gray) []float64 {
	w, h := g.W, g.H
	ii := make([]float64, (w+1)*(h+1))
	for y := 1; y <= h; y++ {
		var rowSum float64
		for x := 1; x <= w; x++ {
			rowSum += float64(g.Pix[(y-1)*w+x-1])
			ii[y*(w+1)+x] = ii[(y-1)*(w+1)+x] + rowSum
		}
	}
	return ii
}

func rectMean(ii []float64, w1, x0, y0, x1, y1 int) float64 {
	// Half-open rectangle [x0,x1)×[y0,y1) over the integral image with
	// stride w1 = W+1.
	area := float64((x1 - x0) * (y1 - y0))
	if area <= 0 {
		return 0
	}
	s := ii[y1*w1+x1] - ii[y0*w1+x1] - ii[y1*w1+x0] + ii[y0*w1+x0]
	return s / area
}

// tamuraCoarseness implements Tamura's S_best: at each sampled pixel pick
// the window size 2^k maximising the larger of the horizontal/vertical
// mean differences, and sum 2^k_best over the samples.
func tamuraCoarseness(g *imaging.Gray) float64 {
	w, h := g.W, g.H
	ii := integralImage(g)
	w1 := w + 1
	var total float64
	margin := 1 << tamuraMaxK
	for y := margin; y < h-margin; y += tamuraSampleStep {
		for x := margin; x < w-margin; x += tamuraSampleStep {
			bestK, bestE := 0, -1.0
			for k := 1; k <= tamuraMaxK; k++ {
				half := 1 << (k - 1)
				size := 1 << k
				// Horizontal difference: means of windows left and right
				// of the pixel.
				left := rectMean(ii, w1, x-size, y-half, x, y+half)
				right := rectMean(ii, w1, x, y-half, x+size, y+half)
				eh := math.Abs(left - right)
				top := rectMean(ii, w1, x-half, y-size, x+half, y)
				bottom := rectMean(ii, w1, x-half, y, x+half, y+size)
				ev := math.Abs(top - bottom)
				e := eh
				if ev > e {
					e = ev
				}
				if e > bestE {
					bestE, bestK = e, k
				}
			}
			total += float64(int(1) << bestK)
		}
	}
	return total
}

// tamuraContrast is Tamura's σ / α₄^(1/4) with α₄ the kurtosis.
func tamuraContrast(g *imaging.Gray) float64 {
	n := float64(len(g.Pix))
	if n == 0 {
		return 0
	}
	mean := g.Mean()
	var m2, m4 float64
	for _, v := range g.Pix {
		d := float64(v) - mean
		d2 := d * d
		m2 += d2
		m4 += d2 * d2
	}
	m2 /= n
	m4 /= n
	if m2 == 0 {
		return 0
	}
	alpha4 := m4 / (m2 * m2)
	if alpha4 == 0 {
		return 0
	}
	return math.Sqrt(m2) / math.Pow(alpha4, 0.25)
}

// tamuraDirectionality histograms edge orientations (Prewitt gradients)
// over 16 bins for pixels whose gradient magnitude clears the threshold.
func tamuraDirectionality(g *imaging.Gray) [TamuraDirBins]float64 {
	var hist [TamuraDirBins]float64
	w, h := g.W, g.H
	at := func(x, y int) float64 { return float64(g.Pix[y*w+x]) }
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			gh := (at(x+1, y-1) + at(x+1, y) + at(x+1, y+1)) -
				(at(x-1, y-1) + at(x-1, y) + at(x-1, y+1))
			gv := (at(x-1, y+1) + at(x, y+1) + at(x+1, y+1)) -
				(at(x-1, y-1) + at(x, y-1) + at(x+1, y-1))
			mag := (math.Abs(gh) + math.Abs(gv)) / 2
			if mag < tamuraDirThreshold {
				continue
			}
			theta := math.Atan2(gv, gh) + math.Pi/2 // in [-π/2, 3π/2)
			for theta < 0 {
				theta += math.Pi
			}
			for theta >= math.Pi {
				theta -= math.Pi
			}
			bin := int(theta / math.Pi * TamuraDirBins)
			if bin == TamuraDirBins {
				bin = TamuraDirBins - 1
			}
			hist[bin]++
		}
	}
	return hist
}

// Kind implements Descriptor.
func (t *Tamura) Kind() Kind { return KindTamura }

// String renders the paper's format: "Tamura 18 <coarseness> <contrast>
// <dir0> … <dir15>".
func (t *Tamura) String() string {
	var sb strings.Builder
	sb.WriteString("Tamura 18 ")
	sb.WriteString(formatFloat(t.Coarseness))
	sb.WriteByte(' ')
	sb.WriteString(formatFloat(t.Contrast))
	for _, v := range t.Directionality {
		sb.WriteByte(' ')
		sb.WriteString(formatFloat(v))
	}
	return sb.String()
}

// ParseTamura reconstructs a Tamura descriptor from its String form.
func ParseTamura(s string) (*Tamura, error) {
	fields, err := fieldsAfterPrefix(s, "Tamura")
	if err != nil {
		return nil, err
	}
	if len(fields) != TamuraVectorLen+1 {
		return nil, fmt.Errorf("features: tamura wants %d fields, got %d", TamuraVectorLen+1, len(fields))
	}
	if fields[0] != "18" {
		return nil, fmt.Errorf("features: tamura length field %q", fields[0])
	}
	vs, err := parseFloats(fields[1:])
	if err != nil {
		return nil, err
	}
	t := &Tamura{Coarseness: vs[0], Contrast: vs[1]}
	copy(t.Directionality[:], vs[2:])
	return t, nil
}

// AppendTo implements Descriptor. Packed layout (stride 18): coarseness,
// contrast, then the 16 directionality bins normalised to a distribution
// (zero when the histogram is empty) — the same per-bin divisions, in the
// same order, DistanceTo performs on every call.
func (t *Tamura) AppendTo(dst []float64) []float64 {
	dst = append(dst, t.Coarseness, t.Contrast)
	ta := 0.0
	for i := 0; i < TamuraDirBins; i++ {
		ta += t.Directionality[i]
	}
	for i := 0; i < TamuraDirBins; i++ {
		var p float64
		if ta > 0 {
			p = t.Directionality[i] / ta
		}
		dst = append(dst, p)
	}
	return dst
}

// DistanceTo compares descriptors with scaled components: coarseness and
// contrast are brought to unit-ish magnitude and the directionality
// histograms are compared as distributions (L1).
func (t *Tamura) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*Tamura)
	if !ok {
		return 0, kindMismatch(KindTamura, other)
	}
	const (
		coarseScale   = 20000 // typical coarseness magnitude on 300×300
		contrastScale = 128
	)
	dc := (t.Coarseness - o.Coarseness) / coarseScale
	dk := (t.Contrast - o.Contrast) / contrastScale
	sum := dc*dc + dk*dk

	ta, tb := 0.0, 0.0
	for i := 0; i < TamuraDirBins; i++ {
		ta += t.Directionality[i]
		tb += o.Directionality[i]
	}
	var dl1 float64
	for i := 0; i < TamuraDirBins; i++ {
		var pa, pb float64
		if ta > 0 {
			pa = t.Directionality[i] / ta
		}
		if tb > 0 {
			pb = o.Directionality[i] / tb
		}
		dl1 += math.Abs(pa - pb)
	}
	return math.Sqrt(sum) + dl1/2, nil
}
