package features

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cbvr/internal/imaging"
)

// Superficial (naive) signature geometry (§4.6): 25 representative
// locations on a 5×5 grid over the image rescaled to 300×300; each
// location's value is the mean colour of the surrounding window.
const (
	NaivePoints = 25
	naiveGrid   = 5
	// naiveBaseSize is the rescale target ("float scaleW = 300").
	naiveBaseSize = 300
	// naiveSampleSize is the window half-side ("sampleSize = 15").
	naiveSampleSize = 15
)

// NaiveSignature is the §4.6 descriptor: 25 mean RGB samples. Its distance
// is the quantity the key-frame extractor (§4.1) thresholds at 800.
type NaiveSignature struct {
	Sig [NaivePoints][3]uint8
}

// ExtractNaive computes the §4.6 signature of a frame. The rescale target
// equals the analysis raster size, so a frame that already has analysis
// dimensions is sampled directly — nearest-neighbour rescale to identical
// dimensions is the identity, so the signature is unchanged, and the
// streamed ingest pipeline can run selection over pre-scaled rasters
// without paying a second rescale.
func ExtractNaive(im *imaging.Image) *NaiveSignature {
	return naiveFromScaled(analysisImage(im))
}

// ExtractNaiveWith computes the signature from shared analysis planes.
// The analysis raster and the paper's naive rescale target are both
// 300×300 nearest-neighbour, so sampling the shared plane is
// bit-identical to the reference's dedicated rescale.
func ExtractNaiveWith(p *Planes) *NaiveSignature {
	return naiveFromScaled(p.Analysis)
}

func naiveFromScaled(scaled *imaging.Image) *NaiveSignature {
	out := &NaiveSignature{}
	i := 0
	for gy := 0; gy < naiveGrid; gy++ {
		py := 0.1 + 0.2*float64(gy)
		for gx := 0; gx < naiveGrid; gx++ {
			px := 0.1 + 0.2*float64(gx)
			r, g, b := averageAround(scaled, px, py)
			out.Sig[i] = [3]uint8{r, g, b}
			i++
		}
	}
	return out
}

// averageAround mirrors the paper's averageAround: mean RGB over the
// square window of half-side sampleSize centred at (px, py) in normalised
// coordinates.
func averageAround(im *imaging.Image, px, py float64) (uint8, uint8, uint8) {
	var accum [3]int
	numPixels := 0
	cx := px * naiveBaseSize
	cy := py * naiveBaseSize
	for y := int(cy) - naiveSampleSize; y < int(cy)+naiveSampleSize; y++ {
		if y < 0 || y >= im.H {
			continue
		}
		for x := int(cx) - naiveSampleSize; x < int(cx)+naiveSampleSize; x++ {
			if x < 0 || x >= im.W {
				continue
			}
			r, g, b := im.At(x, y)
			accum[0] += int(r)
			accum[1] += int(g)
			accum[2] += int(b)
			numPixels++
		}
	}
	if numPixels == 0 {
		return 0, 0, 0
	}
	return uint8(accum[0] / numPixels), uint8(accum[1] / numPixels), uint8(accum[2] / numPixels)
}

// Kind implements Descriptor.
func (n *NaiveSignature) Kind() Kind { return KindNaive }

// String renders the paper's exact format, including the Java Color
// rendering visible in Fig. 8:
// "NaiveVector java.awt.Color[r=0,g=0,b=0] …".
func (n *NaiveSignature) String() string {
	var sb strings.Builder
	sb.Grow(NaivePoints * 32)
	sb.WriteString("NaiveVector")
	for _, c := range n.Sig {
		fmt.Fprintf(&sb, " java.awt.Color[r=%d,g=%d,b=%d]", c[0], c[1], c[2])
	}
	return sb.String()
}

// ParseNaive reconstructs a signature from its String form.
func ParseNaive(s string) (*NaiveSignature, error) {
	fields, err := fieldsAfterPrefix(s, "NaiveVector")
	if err != nil {
		return nil, err
	}
	if len(fields) != NaivePoints {
		return nil, fmt.Errorf("features: naive wants %d colours, got %d", NaivePoints, len(fields))
	}
	out := &NaiveSignature{}
	for i, f := range fields {
		const pre = "java.awt.Color["
		if !strings.HasPrefix(f, pre) || !strings.HasSuffix(f, "]") {
			return nil, fmt.Errorf("features: naive colour %d malformed: %q", i, f)
		}
		body := f[len(pre) : len(f)-1]
		parts := strings.Split(body, ",")
		if len(parts) != 3 {
			return nil, fmt.Errorf("features: naive colour %d malformed: %q", i, f)
		}
		for j, name := range [3]string{"r=", "g=", "b="} {
			if !strings.HasPrefix(parts[j], name) {
				return nil, fmt.Errorf("features: naive colour %d malformed: %q", i, f)
			}
			v, err := strconv.Atoi(parts[j][2:])
			if err != nil || v < 0 || v > 255 {
				return nil, fmt.Errorf("features: naive colour %d channel %q", i, parts[j])
			}
			out.Sig[i][j] = uint8(v)
		}
	}
	return out, nil
}

// AppendTo implements Descriptor. Packed layout (stride 75): the 25
// sample points' RGB channels widened to float64 in sample order — the
// conversions DistanceTo performs per comparison, hoisted to pack time.
func (n *NaiveSignature) AppendTo(dst []float64) []float64 {
	for _, c := range n.Sig {
		dst = append(dst, float64(c[0]), float64(c[1]), float64(c[2]))
	}
	return dst
}

// DistanceTo returns the sum over the 25 sample points of the Euclidean
// RGB distance — the §4.1 key-frame criterion compares this sum against
// the threshold 800.
func (n *NaiveSignature) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*NaiveSignature)
	if !ok {
		return 0, kindMismatch(KindNaive, other)
	}
	var sum float64
	for i := range n.Sig {
		var sq float64
		for c := 0; c < 3; c++ {
			d := float64(n.Sig[i][c]) - float64(o.Sig[i][c])
			sq += d * d
		}
		sum += math.Sqrt(sq)
	}
	return sum, nil
}
