package features

import (
	"sync"

	"cbvr/internal/imaging"
)

// Planes holds the per-frame analysis rasters every extractor consumes,
// computed exactly once. Before this existed, each of the seven extractors
// independently rescaled the frame to the 300×300 analysis raster, five of
// them independently converted it to gray, and the range index paid for
// yet another rescale — eight rescales and six gray conversions per key
// frame. NewPlanes performs one rescale, one gray conversion, one HSV
// quantisation pass and one histogram pass; ExtractAllShared and the
// per-kind ExtractWith / Extract*With entry points then reuse the shared
// planes. The descriptors produced through the shared planes are
// bit-identical to the retained naive reference (ExtractAllReference) —
// see shared_test.go.
type Planes struct {
	// Analysis is the 300×300 analysis raster (the frame itself when it
	// already has analysis dimensions, mirroring analysisImage).
	Analysis *imaging.Image
	// Gray is the BT.601 luma plane of Analysis. Consumed by GLCM,
	// Tamura, Gabor (via a further 64×64 rescale) and region growing.
	Gray *imaging.Gray
	// Quant is the 64-cell HSV-quantised plane of Analysis (row-major,
	// len AnalysisSize²). Consumed by the auto colour correlogram.
	Quant []uint8
	// GrayHist is the 256-bin histogram of Gray — the §4.2 range-finder
	// input, equal to Analysis.GrayHistogram().
	GrayHist [256]int
}

// NewPlanes computes the shared analysis planes for a frame.
func NewPlanes(im *imaging.Image) *Planes {
	p := &Planes{}
	p.reset(im)
	return p
}

// planesPool recycles Planes whose Gray and Quant buffers are already
// analysis-sized, so a steady-state ingest worker computes planes with zero
// per-frame raster allocations. Analysis is never pooled: it is either the
// caller's frame or a rescale the descriptors may alias.
var planesPool = sync.Pool{New: func() any { return &Planes{} }}

// AcquirePlanes is NewPlanes over pooled buffers. The returned planes are
// valid until Release; every descriptor the extractors produce copies out
// of the shared rasters (see shared_test.go's pool-aliasing tests), so the
// extracted Sets stay valid after the planes are recycled.
func AcquirePlanes(im *imaging.Image) *Planes {
	p := planesPool.Get().(*Planes)
	p.reset(im)
	return p
}

// Release returns the planes' Gray and Quant buffers to the pool. The
// planes must not be used afterwards.
func (p *Planes) Release() {
	p.Analysis = nil
	planesPool.Put(p)
}

// reset recomputes every plane for a frame, reusing buffers in place.
func (p *Planes) reset(im *imaging.Image) {
	a := analysisImage(im)
	n := a.W * a.H
	p.Analysis = a
	if p.Gray == nil {
		p.Gray = &imaging.Gray{}
	}
	a.ToGrayInto(p.Gray)
	if cap(p.Quant) < n {
		p.Quant = make([]uint8, n)
	} else {
		p.Quant = p.Quant[:n]
	}
	p.GrayHist = p.Gray.Histogram()
	for i, pi := 0, 0; i < n; i, pi = i+1, pi+3 {
		p.Quant[i] = uint8(QuantizeHSV(a.Pix[pi], a.Pix[pi+1], a.Pix[pi+2]))
	}
}

// ExtractAllShared computes all seven descriptors for a frame through one
// shared analysis-plane pass. It is the fast equivalent of
// ExtractAllReference and the implementation behind ExtractAll.
func ExtractAllShared(im *imaging.Image) *Set {
	return NewPlanes(im).ExtractAll()
}

// ExtractAll computes all seven descriptors from already-computed planes.
func (p *Planes) ExtractAll() *Set {
	return p.ExtractAllWithNaive(ExtractNaiveWith(p))
}

// ExtractAllWithNaive computes the other six descriptors from the planes
// and installs a precomputed naive signature instead of sampling it again.
// The streamed ingest pipeline passes the §4.1 selection-time signature,
// which was sampled from the same analysis raster, so the resulting Set is
// bit-identical to ExtractAll's.
func (p *Planes) ExtractAllWithNaive(sig *NaiveSignature) *Set {
	return &Set{
		Histogram:   ExtractColorHistogramWith(p),
		GLCM:        ExtractGLCMWith(p),
		Gabor:       ExtractGaborWith(p),
		Tamura:      ExtractTamuraWith(p),
		Correlogram: ExtractCorrelogramWith(p),
		Naive:       sig,
		Regions:     ExtractRegionsWith(p),
	}
}

// ExtractWith computes the descriptor of the given kind from shared
// planes, the planes-based counterpart of Extract.
func ExtractWith(kind Kind, p *Planes) (Descriptor, error) {
	switch kind {
	case KindHistogram:
		return ExtractColorHistogramWith(p), nil
	case KindGLCM:
		return ExtractGLCMWith(p), nil
	case KindGabor:
		return ExtractGaborWith(p), nil
	case KindTamura:
		return ExtractTamuraWith(p), nil
	case KindCorrelogram:
		return ExtractCorrelogramWith(p), nil
	case KindNaive:
		return ExtractNaiveWith(p), nil
	case KindRegions:
		return ExtractRegionsWith(p), nil
	default:
		return nil, errUnknownKind(kind)
	}
}
