// Before/after benchmarks for the shared analysis-plane pipeline:
// every *Reference benchmark runs the retained naive implementation, its
// unsuffixed twin the production shared/prefix-sum/pooled path. The two
// paths are bit-identical (shared_test.go); these benchmarks exist so the
// speedup stays visible in BENCH_*.json and regressions break the CI
// bench smoke step (-bench=ExtractAllShared).
package features

import (
	"testing"

	"cbvr/internal/imaging"
)

// benchFrame is a 320×240 structured frame (regions + texture + noise),
// representative of a decoded key frame that needs the analysis rescale.
func benchFrame() *imaging.Image {
	im := structuredFrame(17)
	big := imaging.New(320, 240)
	for y := 0; y < big.H; y++ {
		for x := 0; x < big.W; x++ {
			r, g, b := im.At(x*im.W/big.W, y*im.H/big.H)
			big.Set(x, y, r+uint8(x%7), g+uint8(y%5), b)
		}
	}
	return big
}

func BenchmarkExtractAll(b *testing.B) {
	im := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractAll(im)
	}
}

func BenchmarkExtractAllShared(b *testing.B) {
	im := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractAllShared(im)
	}
}

func BenchmarkExtractAllReference(b *testing.B) {
	im := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractAllReference(im)
	}
}

func BenchmarkNewPlanes(b *testing.B) {
	im := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NewPlanes(im)
	}
}

// Correlogram: prefix-sum ring counting vs the per-pixel countRing walk.

func BenchmarkExtractCorrelogram(b *testing.B) {
	im := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractCorrelogram(im)
	}
}

func BenchmarkExtractCorrelogramReference(b *testing.B) {
	im := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractCorrelogramReference(im)
	}
}

// Gabor: pooled planes + bounds-check-free convolution vs the naive loop.

func BenchmarkExtractGabor(b *testing.B) {
	im := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractGabor(im)
	}
}

func BenchmarkExtractGaborReference(b *testing.B) {
	im := benchFrame()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ExtractGaborReference(im)
	}
}

// The remaining five extractors share planes but keep their algorithms;
// the planes variants skip the per-extractor rescale/gray conversion.

func benchWith(b *testing.B, kind Kind) {
	p := NewPlanes(benchFrame())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExtractWith(kind, p); err != nil {
			b.Fatal(err)
		}
	}
}

func benchKind(b *testing.B, kind Kind) {
	im := benchFrame()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Extract(kind, im); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExtractHistogramWith(b *testing.B)  { benchWith(b, KindHistogram) }
func BenchmarkExtractHistogramFrame(b *testing.B) { benchKind(b, KindHistogram) }
func BenchmarkExtractGLCMWith(b *testing.B)       { benchWith(b, KindGLCM) }
func BenchmarkExtractGLCMFrame(b *testing.B)      { benchKind(b, KindGLCM) }
func BenchmarkExtractTamuraWith(b *testing.B)     { benchWith(b, KindTamura) }
func BenchmarkExtractTamuraFrame(b *testing.B)    { benchKind(b, KindTamura) }
func BenchmarkExtractNaiveWith(b *testing.B)      { benchWith(b, KindNaive) }
func BenchmarkExtractNaiveFrame(b *testing.B)     { benchKind(b, KindNaive) }
func BenchmarkExtractRegionsWith(b *testing.B)    { benchWith(b, KindRegions) }
func BenchmarkExtractRegionsFrame(b *testing.B)   { benchKind(b, KindRegions) }
