package features

import (
	"math/rand"
	"testing"
)

// randSet builds one descriptor of every kind with pseudo-random but
// plausible field values (plus the degenerate variants the distance
// functions special-case) so the kernel equivalence check covers real
// code paths without paying for extraction.
func randDescriptor(rng *rand.Rand, kind Kind, degenerate bool) Descriptor {
	switch kind {
	case KindHistogram:
		h := &ColorHistogram{}
		if !degenerate {
			for i := range h.Bins {
				h.Bins[i] = rng.Intn(900)
			}
		}
		return h
	case KindGLCM:
		return &GLCM{
			PixelCounter: 180000,
			ASM:          rng.Float64(),
			Contrast:     rng.Float64() * 20000,
			Correlation:  rng.Float64() * 0.002,
			IDM:          rng.Float64(),
			Entropy:      rng.Float64() * 11,
		}
	case KindGabor:
		g := &Gabor{}
		for i := range g.Vec {
			g.Vec[i] = rng.NormFloat64()
		}
		return g
	case KindTamura:
		t := &Tamura{Coarseness: rng.Float64() * 30000, Contrast: rng.Float64() * 256}
		if !degenerate {
			for i := range t.Directionality {
				t.Directionality[i] = rng.Float64() * 1000
			}
		}
		return t
	case KindCorrelogram:
		c := &Correlogram{}
		for b := range c.Cor {
			for d := range c.Cor[b] {
				c.Cor[b][d] = rng.Float64()
			}
		}
		return c
	case KindRegions:
		return &RegionStats{Regions: rng.Intn(300), Holes: rng.Intn(100), Major: rng.Intn(8)}
	case KindNaive:
		n := &NaiveSignature{}
		for i := range n.Sig {
			n.Sig[i] = [3]uint8{uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256))}
		}
		return n
	default:
		panic("unknown kind")
	}
}

// TestKernelsBitIdenticalToDistanceTo is the kernel layer's contract: for
// every kind, PairDistance over packed vectors equals DistanceTo exactly
// (==, not within epsilon), including the zero-mass histogram and empty
// Tamura directionality edges.
func TestKernelsBitIdenticalToDistanceTo(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, kind := range AllKinds() {
		for trial := 0; trial < 50; trial++ {
			// Degenerate on some trials, on either or both sides.
			a := randDescriptor(rng, kind, trial%7 == 3)
			b := randDescriptor(rng, kind, trial%5 == 2)
			want, err := a.DistanceTo(b)
			if err != nil {
				t.Fatalf("%v: DistanceTo: %v", kind, err)
			}
			pa := a.AppendTo(nil)
			pb := b.AppendTo(nil)
			if len(pa) != Stride(kind) || len(pb) != Stride(kind) {
				t.Fatalf("%v: AppendTo emitted %d/%d values, stride is %d", kind, len(pa), len(pb), Stride(kind))
			}
			if got := PairDistance(kind, pa, pb); got != want {
				t.Fatalf("%v trial %d: PairDistance = %.17g, DistanceTo = %.17g", kind, trial, got, want)
			}
			// Symmetry of the packing: reversed operands must also agree.
			wantRev, _ := b.DistanceTo(a)
			if got := PairDistance(kind, pb, pa); got != wantRev {
				t.Fatalf("%v trial %d reversed: PairDistance = %.17g, DistanceTo = %.17g", kind, trial, got, wantRev)
			}
		}
	}
}

// TestBatchDistanceMatchesPairs checks the batch sweep against per-pair
// calls over a packed column with a shuffled row subset — the exact shape
// scanShard drives: an arbitrary row order into a flat output buffer.
func TestBatchDistanceMatchesPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 33
	for _, kind := range AllKinds() {
		stride := Stride(kind)
		col := make([]float64, 0, n*stride)
		packed := make([][]float64, n)
		for i := 0; i < n; i++ {
			d := randDescriptor(rng, kind, i == 11)
			start := len(col)
			col = d.AppendTo(col)
			packed[i] = col[start:len(col):len(col)]
		}
		q := randDescriptor(rng, kind, false).AppendTo(nil)

		rows := make([]int32, 0, n)
		for i := 0; i < n; i++ {
			rows = append(rows, int32(i))
		}
		rng.Shuffle(len(rows), func(i, j int) { rows[i], rows[j] = rows[j], rows[i] })
		rows = rows[:n/2]

		out := make([]float64, len(rows))
		BatchDistance(kind, q, col, rows, out)
		for i, s := range rows {
			if want := PairDistance(kind, q, packed[s]); out[i] != want {
				t.Fatalf("%v: batch out[%d] (row %d) = %.17g, pair = %.17g", kind, i, s, out[i], want)
			}
		}
	}
}

// TestKernelsOnExtractedDescriptors runs the equivalence over descriptors
// extracted from real rasters, so pack+kernel is validated against the
// values the engine actually stores (not just synthetic field fills).
func TestKernelsOnExtractedDescriptors(t *testing.T) {
	imA := randomFrame(3, 97, 73)
	imB := randomFrame(9, 64, 64)
	setA, setB := ExtractAll(imA), ExtractAll(imB)
	for _, kind := range AllKinds() {
		da, db := setA.Get(kind), setB.Get(kind)
		want, err := da.DistanceTo(db)
		if err != nil {
			t.Fatal(err)
		}
		if got := PairDistance(kind, da.AppendTo(nil), db.AppendTo(nil)); got != want {
			t.Fatalf("%v: kernel %.17g != DistanceTo %.17g", kind, got, want)
		}
	}
}
