package features

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"cbvr/internal/imaging"
)

// equivalenceFrames is the shared-plane equivalence corpus: random and
// structured content across sizes that exercise downscale, upscale, the
// exact-size fast path and degenerate rasters.
func equivalenceFrames() map[string]*imaging.Image {
	uniform := imaging.New(64, 64)
	uniform.Fill(37, 180, 92)
	gradient := imaging.New(640, 360)
	for y := 0; y < gradient.H; y++ {
		for x := 0; x < gradient.W; x++ {
			gradient.Set(x, y, uint8(x%256), uint8(y%256), uint8((x+y)%256))
		}
	}
	return map[string]*imaging.Image{
		"random_small":     randomFrame(1, 120, 90),
		"random_exact300":  randomFrame(2, AnalysisSize, AnalysisSize),
		"random_nonsquare": randomFrame(3, 400, 100),
		"random_upscale":   randomFrame(4, 40, 30),
		"random_1x1":       randomFrame(5, 1, 1),
		"structured":       structuredFrame(6),
		"uniform":          uniform,
		"gradient":         gradient,
	}
}

// TestSharedPlaneBitIdentity is the core equivalence guarantee: every
// descriptor produced through the shared analysis planes serialises to
// exactly the same string as the retained naive reference — including the
// paper's quirks (257×257 GLCM, Gabor tail-zero indexing bug), which both
// paths reproduce.
func TestSharedPlaneBitIdentity(t *testing.T) {
	for name, im := range equivalenceFrames() {
		t.Run(name, func(t *testing.T) {
			ref := ExtractAllReference(im)
			shared := ExtractAllShared(im)
			for _, k := range AllKinds() {
				rs, ss := ref.Get(k).String(), shared.Get(k).String()
				if rs != ss {
					t.Errorf("%v diverges from reference\nref:    %.120s\nshared: %.120s", k, rs, ss)
				}
			}
		})
	}
}

// TestExtractWithMatchesExtract pins the per-kind planes entry points to
// the per-kind frame entry points.
func TestExtractWithMatchesExtract(t *testing.T) {
	for name, im := range equivalenceFrames() {
		p := NewPlanes(im)
		for _, k := range AllKinds() {
			d1, err := Extract(k, im)
			if err != nil {
				t.Fatal(err)
			}
			d2, err := ExtractWith(k, p)
			if err != nil {
				t.Fatal(err)
			}
			if d1.String() != d2.String() {
				t.Errorf("%s/%v: ExtractWith diverges from Extract", name, k)
			}
		}
	}
	if _, err := ExtractWith(Kind(99), NewPlanes(structuredFrame(1))); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestFastExtractorsMatchReference pins the two algorithmically rewritten
// extractors to their retained naive implementations on the frame-level
// API (the planes path is covered by TestSharedPlaneBitIdentity).
func TestFastExtractorsMatchReference(t *testing.T) {
	for name, im := range equivalenceFrames() {
		if got, want := ExtractCorrelogram(im).String(), ExtractCorrelogramReference(im).String(); got != want {
			t.Errorf("%s: prefix-sum correlogram diverges from countRing reference", name)
		}
		if got, want := ExtractGabor(im).String(), ExtractGaborReference(im).String(); got != want {
			t.Errorf("%s: pooled gabor diverges from reference", name)
		}
	}
}

// TestCorrelogramPrefixSumProperty cross-checks the prefix-sum ring
// counter against countRing on small random rasters, where rings are
// clipped by every border and colours repeat densely.
func TestCorrelogramPrefixSumProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		w := 1 + rng.Intn(24)
		h := 1 + rng.Intn(24)
		palette := 1 + rng.Intn(CorrelogramBins)
		quant := make([]uint8, w*h)
		for i := range quant {
			quant[i] = uint8(rng.Intn(palette))
		}
		var want [CorrelogramBins][CorrelogramMaxDistance]float64
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				c := quant[y*w+x]
				for d := 1; d <= CorrelogramMaxDistance; d++ {
					want[c][d-1] += float64(countRing(quant, w, h, x, y, d, c))
				}
			}
		}
		got := correlogramFromQuant(quant, w, h)
		ref := normalizeCorrelogram(&want)
		if *got != *ref {
			t.Fatalf("trial %d (%dx%d, %d colours): prefix-sum correlogram differs", trial, w, h, palette)
		}
	}
}

// TestPlanesGrayHistMatchesRescale pins the shared gray histogram (the
// §4.2 range-finder input) to the naive rescale-then-GrayHistogram path
// the engine used before.
func TestPlanesGrayHistMatchesRescale(t *testing.T) {
	for name, im := range equivalenceFrames() {
		p := NewPlanes(im)
		want := im.Rescale(AnalysisSize, AnalysisSize).GrayHistogram()
		if p.GrayHist != want {
			t.Errorf("%s: planes gray histogram diverges from rescaled GrayHistogram", name)
		}
	}
}

// TestSharedExtractionSingleRescale verifies the headline guarantee with
// the imaging rescale counter: the shared path rescales a frame exactly
// once for all seven descriptors plus the range histogram, while the
// reference pays one rescale per extractor.
func TestSharedExtractionSingleRescale(t *testing.T) {
	im := randomFrame(7, 160, 120)
	start := imaging.RescaleCalls()
	ExtractAllShared(im)
	if n := imaging.RescaleCalls() - start; n != 1 {
		t.Errorf("shared extraction performed %d rescales, want exactly 1", n)
	}
	start = imaging.RescaleCalls()
	ExtractAllReference(im)
	if n := imaging.RescaleCalls() - start; n != int64(NumKinds) {
		t.Errorf("reference extraction performed %d rescales, want %d (one per extractor)", n, NumKinds)
	}
}

// TestExtractAllSharedConcurrent drives the shared-plane path from a
// worker pool the way ingest does, under -race, and checks every result
// against precomputed reference strings — proving the pooled gabor and
// correlogram scratch buffers never alias across goroutines.
func TestExtractAllSharedConcurrent(t *testing.T) {
	const frames = 4
	ims := make([]*imaging.Image, frames)
	want := make([][]string, frames)
	for i := range ims {
		ims[i] = randomFrame(int64(100+i), 90+10*i, 70+5*i)
		set := ExtractAllReference(ims[i])
		for _, k := range AllKinds() {
			want[i] = append(want[i], set.Get(k).String())
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 4; it++ {
				i := (w + it) % frames
				set := ExtractAllShared(ims[i])
				for ki, k := range AllKinds() {
					if got := set.Get(k).String(); got != want[i][ki] {
						errs <- fmt.Errorf("worker %d frame %d: %v diverged under concurrency", w, i, k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
