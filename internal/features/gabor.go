package features

import (
	"fmt"
	"math"
	"strings"
	"sync"

	"cbvr/internal/imaging"
)

// Gabor filter-bank geometry (§4.4). The paper's sample output is
// "gabor 60 …": M×N×2 = 60 values for M scales and N orientations with a
// mean and a deviation per filter.
const (
	GaborScales       = 5  // M
	GaborOrientations = 6  // N
	GaborVectorLen    = 60 // M*N*2
	// gaborImageSize is the grayscale analysis raster side for filtering.
	// The filter bank is O(W·H·M·N·K²); 64×64 keeps extraction fast while
	// preserving the texture statistics the descriptor needs.
	gaborImageSize = 64
	// gaborMaxRadius caps kernel radius so coarse scales stay inside the
	// 64×64 raster.
	gaborMaxRadius = 8
)

// Gabor is the §4.4 texture descriptor: the 60-element feature vector in
// the paper's layout.
//
// Faithful quirk: the paper (following the LIRE implementation it ports)
// indexes the vector as featureVector[m*N + n*2] and [m*N + n*2 + 1]
// instead of (m*N + n)*2. Adjacent filters therefore overwrite parts of
// each other's slots and indices 36–59 remain zero — exactly as visible in
// the paper's Fig. 8 sample output, whose tail is all "0.0". We reproduce
// that layout by default; ExtractGaborCorrected provides the fixed layout
// for the ablation bench.
type Gabor struct {
	Vec [GaborVectorLen]float64
}

// gaborKernel is one precomputed complex kernel.
type gaborKernel struct {
	radius int
	re, im []float64 // (2r+1)² taps, row-major
}

var (
	gaborBankOnce sync.Once
	gaborBank     [GaborScales][GaborOrientations]gaborKernel
)

// buildGaborBank precomputes the spatial Gabor kernels: wavelength grows
// geometrically with scale, orientations are evenly spaced over π.
func buildGaborBank() {
	const (
		lambda0 = 2.0
		ratio   = math.Sqrt2
		gamma   = 0.75 // spatial aspect ratio
	)
	for m := 0; m < GaborScales; m++ {
		lambda := lambda0 * math.Pow(ratio, float64(m))
		sigma := 0.56 * lambda
		radius := int(math.Ceil(2.5 * sigma))
		if radius < 2 {
			radius = 2
		}
		if radius > gaborMaxRadius {
			radius = gaborMaxRadius
		}
		for n := 0; n < GaborOrientations; n++ {
			theta := float64(n) * math.Pi / GaborOrientations
			side := 2*radius + 1
			k := gaborKernel{
				radius: radius,
				re:     make([]float64, side*side),
				im:     make([]float64, side*side),
			}
			ct, st := math.Cos(theta), math.Sin(theta)
			var sumRe float64
			for dy := -radius; dy <= radius; dy++ {
				for dx := -radius; dx <= radius; dx++ {
					xr := float64(dx)*ct + float64(dy)*st
					yr := -float64(dx)*st + float64(dy)*ct
					env := math.Exp(-(xr*xr + gamma*gamma*yr*yr) / (2 * sigma * sigma))
					phase := 2 * math.Pi * xr / lambda
					i := (dy+radius)*side + dx + radius
					k.re[i] = env * math.Cos(phase)
					k.im[i] = env * math.Sin(phase)
					sumRe += k.re[i]
				}
			}
			// Zero the DC component of the real part so uniform regions
			// produce zero response.
			taps := float64(side * side)
			for i := range k.re {
				k.re[i] -= sumRe / taps
			}
			gaborBank[m][n] = k
		}
	}
}

// gaborPlanePool recycles the two gaborImageSize² float planes (the
// normalised pixel plane and the per-filter magnitude plane) across
// extractions, so the ingest worker pool does not allocate them per frame.
var gaborPlanePool = sync.Pool{
	New: func() any {
		s := make([]float64, gaborImageSize*gaborImageSize)
		return &s
	},
}

// gaborStats returns the per-filter magnitude means and deviations
// normalised by image size, as in the paper's pseudo-code (which divides
// both the sum of magnitudes and sqrt(sum of squared deviations) by
// imageSize). The convolution walks each kernel row over a pre-sliced
// pixel row so the inner loop carries no bounds checks; the
// floating-point accumulation order is exactly the reference's, so the
// statistics are bit-identical to gaborStatsReference.
func gaborStats(g *imaging.Gray) (means, devs [GaborScales][GaborOrientations]float64) {
	gaborBankOnce.Do(buildGaborBank)
	w, h := g.W, g.H
	pixP := gaborPlanePool.Get().(*[]float64)
	magsP := gaborPlanePool.Get().(*[]float64)
	defer gaborPlanePool.Put(pixP)
	defer gaborPlanePool.Put(magsP)
	pix, mags := (*pixP)[:w*h], (*magsP)[:w*h]
	for i, v := range g.Pix {
		pix[i] = float64(v) / 255
	}
	imageSize := float64(w * h)
	for m := 0; m < GaborScales; m++ {
		for n := 0; n < GaborOrientations; n++ {
			k := &gaborBank[m][n]
			r := k.radius
			side := 2*r + 1
			var kreRows, kimRows [2*gaborMaxRadius + 1][]float64
			for ky := 0; ky < side; ky++ {
				kreRows[ky] = k.re[ky*side : (ky+1)*side : (ky+1)*side]
				kimRows[ky] = k.im[ky*side : (ky+1)*side : (ky+1)*side]
			}
			var sum float64
			count := 0
			for y := r; y < h-r; y++ {
				for x := r; x < w-r; x++ {
					var re, imag float64
					for dy := -r; dy <= r; dy++ {
						base := (y+dy)*w + x - r
						row := pix[base : base+side : base+side]
						// Reslicing the kernel rows to len(row) lets the
						// compiler drop the bounds checks on the taps.
						kre := kreRows[dy+r][:len(row)]
						kim := kimRows[dy+r][:len(row)]
						for dx, p := range row {
							re += p * kre[dx]
							imag += p * kim[dx]
						}
					}
					mag := math.Sqrt(re*re + imag*imag)
					mags[count] = mag
					sum += mag
					count++
				}
			}
			mean := sum / imageSize
			var sq float64
			for _, v := range mags[:count] {
				d := v - mean
				sq += d * d
			}
			means[m][n] = mean
			devs[m][n] = math.Sqrt(sq) / imageSize
		}
	}
	return means, devs
}

// gaborGray derives the 64×64 grayscale filtering raster from a frame.
func gaborGray(im *imaging.Image) *imaging.Gray {
	return analysisImage(im).ToGray().Rescale(gaborImageSize, gaborImageSize)
}

// gaborStatsReference is the retained naive statistics pass: fresh float
// planes per call and a bounds-checked scalar inner loop, exactly the
// pre-optimisation code. It backs ExtractGaborReference, the bit-identity
// baseline and "before" benchmark for gaborStats.
func gaborStatsReference(im *imaging.Image) (means, devs [GaborScales][GaborOrientations]float64) {
	gaborBankOnce.Do(buildGaborBank)
	g := gaborGray(im)
	w, h := g.W, g.H
	pix := make([]float64, w*h)
	for i, v := range g.Pix {
		pix[i] = float64(v) / 255
	}
	imageSize := float64(w * h)
	mags := make([]float64, w*h)
	for m := 0; m < GaborScales; m++ {
		for n := 0; n < GaborOrientations; n++ {
			k := &gaborBank[m][n]
			r := k.radius
			side := 2*r + 1
			var sum float64
			count := 0
			for y := r; y < h-r; y++ {
				for x := r; x < w-r; x++ {
					var re, imag float64
					ti := 0
					for dy := -r; dy <= r; dy++ {
						base := (y+dy)*w + x - r
						for dx := 0; dx < side; dx++ {
							p := pix[base+dx]
							re += p * k.re[ti]
							imag += p * k.im[ti]
							ti++
						}
					}
					mag := math.Sqrt(re*re + imag*imag)
					mags[count] = mag
					sum += mag
					count++
				}
			}
			mean := sum / imageSize
			var sq float64
			for i := 0; i < count; i++ {
				d := mags[i] - mean
				sq += d * d
			}
			means[m][n] = mean
			devs[m][n] = math.Sqrt(sq) / imageSize
		}
	}
	return means, devs
}

// ExtractGabor computes the §4.4 descriptor with the paper's faithful
// (buggy) vector layout.
func ExtractGabor(im *imaging.Image) *Gabor {
	means, devs := gaborStats(gaborGray(im))
	return gaborFaithfulLayout(&means, &devs)
}

// ExtractGaborWith computes the descriptor from shared analysis planes,
// reusing the gray plane (only the 300→64 gabor rescale remains
// per-extractor).
func ExtractGaborWith(p *Planes) *Gabor {
	means, devs := gaborStats(p.Gray.Rescale(gaborImageSize, gaborImageSize))
	return gaborFaithfulLayout(&means, &devs)
}

// ExtractGaborReference computes the descriptor through the retained
// naive statistics pass (per-call allocations, bounds-checked inner
// loop) — the bit-identity baseline for ExtractGabor / ExtractGaborWith.
func ExtractGaborReference(im *imaging.Image) *Gabor {
	means, devs := gaborStatsReference(im)
	return gaborFaithfulLayout(&means, &devs)
}

// gaborFaithfulLayout packs filter statistics with the paper's faithful
// indexing bug: m*N + n*2 (not (m*N+n)*2), leaving the tail zero.
func gaborFaithfulLayout(means, devs *[GaborScales][GaborOrientations]float64) *Gabor {
	out := &Gabor{}
	for m := 0; m < GaborScales; m++ {
		for n := 0; n < GaborOrientations; n++ {
			out.Vec[m*GaborOrientations+n*2] = means[m][n]
			out.Vec[m*GaborOrientations+n*2+1] = devs[m][n]
		}
	}
	return out
}

// ExtractGaborCorrected computes the same statistics with the corrected
// (m*N+n)*2 layout, used by the ablation bench to quantify what the
// indexing bug costs.
func ExtractGaborCorrected(im *imaging.Image) *Gabor {
	means, devs := gaborStats(gaborGray(im))
	out := &Gabor{}
	for m := 0; m < GaborScales; m++ {
		for n := 0; n < GaborOrientations; n++ {
			out.Vec[(m*GaborOrientations+n)*2] = means[m][n]
			out.Vec[(m*GaborOrientations+n)*2+1] = devs[m][n]
		}
	}
	return out
}

// Kind implements Descriptor.
func (g *Gabor) Kind() Kind { return KindGabor }

// String renders the paper's format: "gabor 60 <v0> <v1> …".
func (g *Gabor) String() string {
	var sb strings.Builder
	sb.Grow(GaborVectorLen * 20)
	sb.WriteString("gabor 60")
	for _, v := range g.Vec {
		sb.WriteByte(' ')
		sb.WriteString(formatFloat(v))
	}
	return sb.String()
}

// ParseGabor reconstructs a Gabor descriptor from its String form.
func ParseGabor(s string) (*Gabor, error) {
	fields, err := fieldsAfterPrefix(s, "gabor")
	if err != nil {
		return nil, err
	}
	if len(fields) != GaborVectorLen+1 {
		return nil, fmt.Errorf("features: gabor wants %d fields, got %d", GaborVectorLen+1, len(fields))
	}
	if fields[0] != "60" {
		return nil, fmt.Errorf("features: gabor length field %q", fields[0])
	}
	vs, err := parseFloats(fields[1:])
	if err != nil {
		return nil, err
	}
	out := &Gabor{}
	copy(out.Vec[:], vs)
	return out, nil
}

// AppendTo implements Descriptor. Packed layout (stride 60): Vec as is.
func (g *Gabor) AppendTo(dst []float64) []float64 {
	return append(dst, g.Vec[:]...)
}

// DistanceTo returns the L2 distance between the 60-element vectors.
func (g *Gabor) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*Gabor)
	if !ok {
		return 0, kindMismatch(KindGabor, other)
	}
	var sum float64
	for i := range g.Vec {
		d := g.Vec[i] - o.Vec[i]
		sum += d * d
	}
	return math.Sqrt(sum), nil
}
