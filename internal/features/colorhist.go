package features

import (
	"fmt"
	"strconv"
	"strings"

	"cbvr/internal/imaging"
)

// HistogramBins is the number of quantised RGB bins in the simple colour
// histogram. The paper's sample output begins "RGB 256 …", i.e. 256 bins
// over the joint RGB cube (8 levels of red × 8 of green × 4 of blue).
const HistogramBins = 256

// ColorHistogram is the paper's SimpleColorHistogram (§4.5): a 256-bin
// quantised RGB histogram over the 300×300 analysis raster.
type ColorHistogram struct {
	Bins [HistogramBins]int
}

// ExtractColorHistogram computes the §4.5 histogram of a frame.
func ExtractColorHistogram(im *imaging.Image) *ColorHistogram {
	return colorHistogramOf(analysisImage(im))
}

// ExtractColorHistogramWith computes the histogram from shared analysis
// planes, skipping the rescale.
func ExtractColorHistogramWith(p *Planes) *ColorHistogram {
	return colorHistogramOf(p.Analysis)
}

func colorHistogramOf(a *imaging.Image) *ColorHistogram {
	h := &ColorHistogram{}
	for i := 0; i < len(a.Pix); i += 3 {
		h.Bins[QuantizeRGB(a.Pix[i], a.Pix[i+1], a.Pix[i+2])]++
	}
	return h
}

// QuantizeRGB maps an RGB pixel to one of the 256 histogram bins:
// 3 bits of red, 3 bits of green, 2 bits of blue.
func QuantizeRGB(r, g, b uint8) int {
	return int(r>>5)<<5 | int(g>>5)<<2 | int(b>>6)
}

// Kind implements Descriptor.
func (h *ColorHistogram) Kind() Kind { return KindHistogram }

// Total returns the number of counted pixels (the analysis raster area).
func (h *ColorHistogram) Total() int {
	t := 0
	for _, c := range h.Bins {
		t += c
	}
	return t
}

// String renders the paper's format: "RGB 256 <count0> <count1> …".
func (h *ColorHistogram) String() string {
	var sb strings.Builder
	sb.Grow(HistogramBins * 4)
	sb.WriteString("RGB ")
	sb.WriteString(strconv.Itoa(HistogramBins))
	for _, c := range h.Bins {
		sb.WriteByte(' ')
		sb.WriteString(strconv.Itoa(c))
	}
	return sb.String()
}

// ParseColorHistogram reconstructs a histogram from its String form.
func ParseColorHistogram(s string) (*ColorHistogram, error) {
	fields, err := fieldsAfterPrefix(s, "RGB")
	if err != nil {
		return nil, err
	}
	if len(fields) != HistogramBins+1 {
		return nil, fmt.Errorf("features: histogram wants %d fields, got %d", HistogramBins+1, len(fields))
	}
	n, err := strconv.Atoi(fields[0])
	if err != nil || n != HistogramBins {
		return nil, fmt.Errorf("features: histogram bin count %q", fields[0])
	}
	h := &ColorHistogram{}
	for i, f := range fields[1:] {
		c, err := strconv.Atoi(f)
		if err != nil {
			return nil, fmt.Errorf("features: histogram bin %d: %w", i, err)
		}
		if c < 0 {
			return nil, fmt.Errorf("features: histogram bin %d negative", i)
		}
		h.Bins[i] = c
	}
	return h, nil
}

// DistanceTo returns the normalised L1 distance between two histograms
// (a value in [0, 2] for histograms of equal mass, 0 for identical ones).
func (h *ColorHistogram) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*ColorHistogram)
	if !ok {
		return 0, kindMismatch(KindHistogram, other)
	}
	ta, tb := h.Total(), o.Total()
	if ta == 0 || tb == 0 {
		if ta == tb {
			return 0, nil
		}
		return 2, nil
	}
	var d float64
	for i := range h.Bins {
		pa := float64(h.Bins[i]) / float64(ta)
		pb := float64(o.Bins[i]) / float64(tb)
		if pa > pb {
			d += pa - pb
		} else {
			d += pb - pa
		}
	}
	return d, nil
}

// AppendTo implements Descriptor. Packed layout (stride 257): the total
// pixel mass, then the 256 bin probabilities (bin/total, all zero for an
// empty histogram). The probabilities are the exact divisions DistanceTo
// performs per call, so the batched L1 kernel reproduces it bit for bit;
// the leading mass element carries the degenerate empty-histogram rule.
func (h *ColorHistogram) AppendTo(dst []float64) []float64 {
	t := h.Total()
	dst = append(dst, float64(t))
	if t == 0 {
		for range h.Bins {
			dst = append(dst, 0)
		}
		return dst
	}
	ft := float64(t)
	for _, c := range h.Bins {
		dst = append(dst, float64(c)/ft)
	}
	return dst
}

// Intersection returns the histogram intersection similarity in [0,1]
// (1 for identical distributions). Provided for the similarity package's
// ablation comparisons.
func (h *ColorHistogram) Intersection(o *ColorHistogram) float64 {
	ta, tb := h.Total(), o.Total()
	if ta == 0 || tb == 0 {
		return 0
	}
	var s float64
	for i := range h.Bins {
		pa := float64(h.Bins[i]) / float64(ta)
		pb := float64(o.Bins[i]) / float64(tb)
		if pa < pb {
			s += pa
		} else {
			s += pb
		}
	}
	return s
}
