// Per-kind lower-bound helpers for metric-space candidate pruning.
//
// The coarse cell index (internal/core cells.go) groups packed arena rows
// into cells, each carrying a per-kind centroid vector and a per-kind
// radius (an upper bound on any member's distance to the centroid in that
// kind's own metric). For a query q, centroid c and radius r the triangle
// inequality then gives
//
//	d(q, x) >= d(q, c) - r   for every member x of the cell,
//
// so a whole cell can be skipped (or deferred) when that bound already
// exceeds the worst distance a search still cares about. The bound is
// only sound if the kind's distance satisfies the triangle inequality on
// packed vectors, which holds for all seven kinds:
//
//	glcm            weighted (per-statistic scaled) L2 — a metric.
//	gabor           plain L2 at stride 60 — a metric.
//	tamura          scaled L2 over (coarseness, contrast) plus half the
//	                L1 between directionality distributions; both terms
//	                are metrics (packing pre-normalises the bins), and a
//	                sum of metrics is a metric.
//	histogram       L1 between bin distributions, plus the degenerate
//	                zero-mass rule. See histLowerBoundSafe below: every
//	                degenerate combination yields a bound <= the true
//	                distance, so the rule never over-prunes.
//	autocorrelogram L1 scaled by the constant cell count — a metric.
//	regions         weighted L1 over three counts — a metric.
//	naive           sum over 25 sample points of the Euclidean RGB
//	                distance — a sum of metrics.
//
// The histogram degenerate rule (DistanceTo returns 0 for two empty
// histograms, 2 for empty-vs-non-empty) deserves the explicit case
// analysis the bound's soundness rests on:
//
//   - member x empty, centroid c non-empty: d(x,c) = 2, so the cell's
//     radius is >= 2 and the bound is d(q,c) - r <= d(q,c) - 2 <= 0 —
//     never above any distance.
//   - query q empty, c non-empty: d(q,c) = 2; a non-empty member has
//     d(q,x) = 2 >= 2 - r, an empty member is covered by the previous
//     case (r >= 2).
//   - q empty and c empty: d(q,c) = 0, the bound is <= 0.
//
// Centroids are per-kind arithmetic means of member vectors, which for
// the histogram keeps the leading mass element positive whenever any
// member is non-empty, so the case split above is exhaustive.
package features

import "math"

// BoundSupported reports whether the kind's packed distance satisfies the
// triangle inequality, i.e. whether PairLowerBound is sound for it. All
// seven current kinds qualify (see the package comment above); the switch
// stays explicit so a future non-metric kind fails safe by returning
// false instead of silently over-pruning.
func BoundSupported(kind Kind) bool {
	switch kind {
	case KindGLCM, KindGabor, KindTamura, KindHistogram,
		KindCorrelogram, KindRegions, KindNaive:
		return true
	default:
		return false
	}
}

// boundSlack makes the triangle-inequality bound conservative in
// floating point, not just in exact arithmetic. The distance kernels
// accumulate up to Stride(kind) terms, so each computed distance carries
// a relative rounding error of at most ~stride·2⁻⁵³ ≈ 3·10⁻¹⁴; when
// d(q,cent) and rad are large and nearly cancel, the raw difference can
// exceed the true bound by error proportional to their MAGNITUDES, not to
// the difference (observed in practice as 1-ulp violations that would let
// the "exact" single-kind sweep skip a boundary-tied row). Subtracting
// slack·(d + rad) dominates that error with two orders of magnitude to
// spare while costing pruning power only in the last ~12 digits.
const boundSlack = 1e-12

// PairLowerBound returns a lower bound on the kind's distance between the
// packed query vector q and any point within radius rad of the packed
// centroid cent: max(0, d(q, cent) - rad), made floating-point-safe by
// boundSlack. Callers must only rely on it for kinds where BoundSupported
// reports true.
//
//cbvrvet:noalloc
func PairLowerBound(kind Kind, q, cent []float64, rad float64) float64 {
	d := PairDistance(kind, q, cent)
	lb := d - rad - boundSlack*(d+rad)
	if lb < 0 {
		return 0
	}
	return lb
}

// BatchLowerBound writes out[i] = PairLowerBound(kind, q, cell i's
// centroid, rads[i]) for every cell in the packed centroid column
// (stride Stride(kind), one row per cell). It is the cell-selection
// analogue of BatchDistance: one pass over contiguous centroid memory.
//
//cbvrvet:noalloc
func BatchLowerBound(kind Kind, q, centCol []float64, rads, out []float64) {
	stride := len(q)
	for i := range rads {
		off := i * stride
		d := PairDistance(kind, q, centCol[off:off+stride:off+stride])
		out[i] = math.Max(d-rads[i]-boundSlack*(d+rads[i]), 0)
	}
}
