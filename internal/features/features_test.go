package features

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cbvr/internal/imaging"
)

func randomFrame(seed int64, w, h int) *imaging.Image {
	rng := rand.New(rand.NewSource(seed))
	im := imaging.New(w, h)
	rng.Read(im.Pix)
	return im
}

// structuredFrame builds a frame with regions and texture, more realistic
// than uniform noise.
func structuredFrame(seed int64) *imaging.Image {
	rng := rand.New(rand.NewSource(seed))
	im := imaging.New(120, 90)
	base := uint8(rng.Intn(200))
	im.Fill(base, base/2, 255-base)
	for i := 0; i < 5; i++ {
		x0, y0 := rng.Intn(100), rng.Intn(70)
		c := uint8(rng.Intn(256))
		for y := y0; y < y0+20 && y < im.H; y++ {
			for x := x0; x < x0+20 && x < im.W; x++ {
				im.Set(x, y, c, 255-c, c/2)
			}
		}
	}
	return im
}

func TestKindStringParse(t *testing.T) {
	for _, k := range AllKinds() {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("kind %v round trip failed: %v %v", k, got, err)
		}
	}
	if _, err := ParseKind("nonsense"); err == nil {
		t.Error("bogus kind accepted")
	}
	if !strings.Contains(Kind(99).String(), "99") {
		t.Error("out-of-range kind String")
	}
}

func TestExtractDispatchAllKinds(t *testing.T) {
	im := structuredFrame(1)
	for _, k := range AllKinds() {
		d, err := Extract(k, im)
		if err != nil {
			t.Fatalf("extract %v: %v", k, err)
		}
		if d.Kind() != k {
			t.Errorf("descriptor kind %v, want %v", d.Kind(), k)
		}
		if d.String() == "" {
			t.Errorf("%v: empty serialisation", k)
		}
	}
	if _, err := Extract(Kind(99), im); err == nil {
		t.Error("unknown kind accepted")
	}
}

// Every descriptor round-trips exactly through its string form, and the
// reconstruction is at distance zero from the original.
func TestStringRoundTripAllKinds(t *testing.T) {
	for seed := int64(0); seed < 3; seed++ {
		im := structuredFrame(seed)
		set := ExtractAll(im)
		for _, k := range AllKinds() {
			d := set.Get(k)
			s := d.String()
			back, err := Parse(k, s)
			if err != nil {
				t.Fatalf("parse %v: %v\nstring: %.120s", k, err, s)
			}
			if back.String() != s {
				t.Errorf("%v: reserialisation differs", k)
			}
			dist, err := d.DistanceTo(back)
			if err != nil {
				t.Fatal(err)
			}
			if dist != 0 {
				t.Errorf("%v: round-trip distance %g != 0", k, dist)
			}
		}
	}
}

// Identity and symmetry properties of every distance.
func TestDistanceIdentitySymmetry(t *testing.T) {
	a := ExtractAll(structuredFrame(10))
	b := ExtractAll(structuredFrame(11))
	for _, k := range AllKinds() {
		da, db := a.Get(k), b.Get(k)
		self, err := da.DistanceTo(da)
		if err != nil || self != 0 {
			t.Errorf("%v: d(x,x) = %g err=%v", k, self, err)
		}
		ab, err1 := da.DistanceTo(db)
		ba, err2 := db.DistanceTo(da)
		if err1 != nil || err2 != nil {
			t.Fatalf("%v: %v %v", k, err1, err2)
		}
		if math.Abs(ab-ba) > 1e-9 {
			t.Errorf("%v: asymmetric distance %g vs %g", k, ab, ba)
		}
		if ab < 0 {
			t.Errorf("%v: negative distance %g", k, ab)
		}
	}
}

// Distances across kinds must be rejected.
func TestDistanceKindMismatch(t *testing.T) {
	set := ExtractAll(structuredFrame(3))
	kinds := AllKinds()
	for i, k := range kinds {
		other := set.Get(kinds[(i+1)%len(kinds)])
		if _, err := set.Get(k).DistanceTo(other); err == nil {
			t.Errorf("%v accepted a %v descriptor", k, other.Kind())
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[Kind][]string{
		KindHistogram:   {"", "RGB", "RGB 255 1 2", "XXX 256 1", "RGB 256 " + strings.Repeat("-1 ", 256)},
		KindGLCM:        {"", "1 2 3", "a b c d e f"},
		KindGabor:       {"", "gabor 59 1", "gabor 60 x"},
		KindTamura:      {"", "Tamura 17 1", "tamura 18 1"},
		KindCorrelogram: {"", "ACC 3 1", "ACC 4 x"},
		KindNaive:       {"", "NaiveVector xxx", "NaiveVector java.awt.Color[r=300,g=0,b=0]"},
		KindRegions:     {"", "Regions 1 2", "Regions a b c", "Regions -1 2 3"},
	}
	for k, ss := range cases {
		for _, s := range ss {
			if _, err := Parse(k, s); err == nil {
				t.Errorf("%v accepted malformed %q", k, s)
			}
		}
	}
}

func TestSetPutGet(t *testing.T) {
	set := &Set{}
	im := structuredFrame(5)
	for _, k := range AllKinds() {
		if set.Get(k) != nil {
			t.Fatalf("%v present in empty set", k)
		}
		d, _ := Extract(k, im)
		if err := set.Put(d); err != nil {
			t.Fatal(err)
		}
		if set.Get(k) == nil {
			t.Fatalf("%v missing after Put", k)
		}
	}
}

// Determinism: extracting twice gives identical serialisations.
func TestExtractionDeterministic(t *testing.T) {
	im := structuredFrame(8)
	s1 := ExtractAll(im)
	s2 := ExtractAll(im)
	for _, k := range AllKinds() {
		if s1.Get(k).String() != s2.Get(k).String() {
			t.Errorf("%v extraction not deterministic", k)
		}
	}
}

// Similar frames must be closer than dissimilar frames for the colour-
// driven descriptors (sanity of the metric direction).
func TestDistanceDiscriminates(t *testing.T) {
	base := structuredFrame(20)
	near := base.Clone()
	// Small perturbation.
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < len(near.Pix)/50; i++ {
		near.Pix[rng.Intn(len(near.Pix))] ^= 0x08
	}
	far := structuredFrame(999)
	for _, k := range []Kind{KindHistogram, KindCorrelogram, KindNaive} {
		db, _ := Extract(k, base)
		dn, _ := Extract(k, near)
		df, _ := Extract(k, far)
		dNear, _ := db.DistanceTo(dn)
		dFar, _ := db.DistanceTo(df)
		if dNear >= dFar {
			t.Errorf("%v: near %g >= far %g", k, dNear, dFar)
		}
	}
}

func TestQuantizeRGBCoversAllBins(t *testing.T) {
	seen := make(map[int]bool)
	for r := 0; r < 256; r += 16 {
		for g := 0; g < 256; g += 16 {
			for b := 0; b < 256; b += 32 {
				bin := QuantizeRGB(uint8(r), uint8(g), uint8(b))
				if bin < 0 || bin >= HistogramBins {
					t.Fatalf("bin %d out of range", bin)
				}
				seen[bin] = true
			}
		}
	}
	if len(seen) != HistogramBins {
		t.Errorf("quantiser reaches %d bins, want %d", len(seen), HistogramBins)
	}
}

// Histogram mass equals the analysis raster area.
func TestHistogramMass(t *testing.T) {
	h := ExtractColorHistogram(randomFrame(1, 33, 47))
	if h.Total() != AnalysisSize*AnalysisSize {
		t.Errorf("total %d, want %d", h.Total(), AnalysisSize*AnalysisSize)
	}
}

func TestHistogramDistanceBounds(t *testing.T) {
	f := func(s1, s2 int64) bool {
		a := ExtractColorHistogram(structuredFrame(s1))
		b := ExtractColorHistogram(structuredFrame(s2))
		d, err := a.DistanceTo(b)
		return err == nil && d >= 0 && d <= 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestHistogramIntersection(t *testing.T) {
	a := ExtractColorHistogram(structuredFrame(1))
	if s := a.Intersection(a); math.Abs(s-1) > 1e-9 {
		t.Errorf("self intersection = %g", s)
	}
}

func TestGLCMPixelCounterMatchesPaper(t *testing.T) {
	// The paper's sample output reports pixelCounter 180000 for its query
	// frame — 2·300·300 with the off-by-one step loss at row ends
	// (2·300·299 = 179400; the published value implies the full double
	// count). Our faithful implementation counts 2 per (x, x+1) pair:
	// 2·(300-1)·300 = 179400.
	g := ExtractGLCM(randomFrame(2, 64, 64))
	want := float64(2 * (AnalysisSize - 1) * AnalysisSize)
	if g.PixelCounter != want {
		t.Errorf("pixelCounter = %v, want %v", g.PixelCounter, want)
	}
}

func TestGLCMUniformImage(t *testing.T) {
	im := imaging.New(50, 50)
	im.Fill(128, 128, 128)
	g := ExtractGLCM(im)
	if g.Contrast != 0 {
		t.Errorf("uniform contrast = %v", g.Contrast)
	}
	if math.Abs(g.ASM-1) > 1e-9 {
		t.Errorf("uniform ASM = %v, want 1", g.ASM)
	}
	if g.Entropy > 1e-9 {
		t.Errorf("uniform entropy = %v", g.Entropy)
	}
	if math.Abs(g.IDM-1) > 1e-9 {
		t.Errorf("uniform IDM = %v, want 1", g.IDM)
	}
}

func TestGLCMTexturedVsSmooth(t *testing.T) {
	smooth := imaging.New(64, 64)
	smooth.Fill(100, 100, 100)
	noisy := randomFrame(3, 64, 64)
	gs := ExtractGLCM(smooth)
	gn := ExtractGLCM(noisy)
	if gn.Contrast <= gs.Contrast {
		t.Error("noise should raise contrast")
	}
	if gn.Entropy <= gs.Entropy {
		t.Error("noise should raise entropy")
	}
	if gn.ASM >= gs.ASM {
		t.Error("noise should lower ASM")
	}
}

func TestGaborVectorBugLayout(t *testing.T) {
	// The faithful layout (paper/LIRE bug m*N + n*2) leaves indices
	// >= 36 zero; the corrected layout fills all 60.
	im := structuredFrame(4)
	buggy := ExtractGabor(im)
	for i := GaborScales*GaborOrientations + (GaborOrientations-1)*2; i < GaborVectorLen; i++ {
		if buggy.Vec[i] != 0 {
			t.Fatalf("faithful layout has nonzero tail at %d", i)
		}
	}
	fixed := ExtractGaborCorrected(im)
	nonzero := 0
	for _, v := range fixed.Vec {
		if v != 0 {
			nonzero++
		}
	}
	if nonzero < GaborVectorLen/2 {
		t.Errorf("corrected layout only %d nonzero entries", nonzero)
	}
}

func TestGaborUniformNearZero(t *testing.T) {
	im := imaging.New(64, 64)
	im.Fill(180, 180, 180)
	g := ExtractGabor(im)
	for i, v := range g.Vec {
		if math.Abs(v) > 0.05 {
			t.Errorf("uniform image gabor[%d] = %g", i, v)
		}
	}
}

func TestGaborOrientationSensitivity(t *testing.T) {
	// Horizontal vs vertical stripes must produce different vectors.
	horiz := imaging.New(64, 64)
	vert := imaging.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if y%8 < 4 {
				horiz.Set(x, y, 255, 255, 255)
			}
			if x%8 < 4 {
				vert.Set(x, y, 255, 255, 255)
			}
		}
	}
	gh := ExtractGabor(horiz)
	gv := ExtractGabor(vert)
	d, _ := gh.DistanceTo(gv)
	if d < 1e-3 {
		t.Errorf("orientation-blind gabor: distance %g", d)
	}
}

func TestTamuraValues(t *testing.T) {
	tm := ExtractTamura(structuredFrame(5))
	if tm.Coarseness <= 0 {
		t.Error("coarseness should be positive on structured content")
	}
	if tm.Contrast < 0 {
		t.Error("negative contrast")
	}
	var dirTotal float64
	for _, v := range tm.Directionality {
		if v < 0 {
			t.Fatal("negative directionality bin")
		}
		dirTotal += v
	}
	if dirTotal == 0 {
		t.Error("no directionality votes on structured content")
	}
}

func TestTamuraUniformContrastZero(t *testing.T) {
	im := imaging.New(64, 64)
	im.Fill(99, 99, 99)
	tm := ExtractTamura(im)
	if tm.Contrast != 0 {
		t.Errorf("uniform contrast = %v", tm.Contrast)
	}
	var votes float64
	for _, v := range tm.Directionality {
		votes += v
	}
	if votes != 0 {
		t.Errorf("uniform image has %v directionality votes", votes)
	}
}

func TestTamuraStringHas18Values(t *testing.T) {
	s := ExtractTamura(structuredFrame(6)).String()
	fields := strings.Fields(s)
	if fields[0] != "Tamura" || fields[1] != "18" || len(fields) != 20 {
		t.Errorf("tamura format: %.80s (%d fields)", s, len(fields))
	}
}

func TestCorrelogramValuesNormalised(t *testing.T) {
	c := ExtractCorrelogram(structuredFrame(7))
	for b := 0; b < CorrelogramBins; b++ {
		for d := 0; d < CorrelogramMaxDistance; d++ {
			v := c.Cor[b][d]
			if v < 0 || v > 1 {
				t.Fatalf("cor[%d][%d] = %g outside [0,1]", b, d, v)
			}
		}
	}
	// Max-normalisation: at least one cell per distance equals 1 (unless
	// the distance column was all zero).
	for d := 0; d < CorrelogramMaxDistance; d++ {
		max := 0.0
		for b := 0; b < CorrelogramBins; b++ {
			if c.Cor[b][d] > max {
				max = c.Cor[b][d]
			}
		}
		if max != 0 && math.Abs(max-1) > 1e-9 {
			t.Errorf("distance %d max = %g, want 1", d, max)
		}
	}
}

func TestCorrelogramStringFormat(t *testing.T) {
	s := ExtractCorrelogram(structuredFrame(8)).String()
	fields := strings.Fields(s)
	if fields[0] != "ACC" || fields[1] != "4" {
		t.Errorf("ACC prefix: %.40s", s)
	}
	if len(fields) != 2+CorrelogramBins*CorrelogramMaxDistance {
		t.Errorf("ACC field count %d", len(fields))
	}
}

func TestQuantizeHSVRange(t *testing.T) {
	f := func(r, g, b uint8) bool {
		q := QuantizeHSV(r, g, b)
		return q >= 0 && q < CorrelogramBins
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestNaiveSignatureFormatMatchesPaper(t *testing.T) {
	im := imaging.New(10, 10) // black
	n := ExtractNaive(im)
	s := n.String()
	if !strings.HasPrefix(s, "NaiveVector java.awt.Color[r=0,g=0,b=0]") {
		t.Errorf("naive format: %.80s", s)
	}
	if len(strings.Fields(s)) != 1+NaivePoints {
		t.Errorf("naive field count %d", len(strings.Fields(s)))
	}
}

func TestNaiveDistanceScale(t *testing.T) {
	black := imaging.New(20, 20)
	white := imaging.New(20, 20)
	white.Fill(255, 255, 255)
	nb := ExtractNaive(black)
	nw := ExtractNaive(white)
	d, _ := nb.DistanceTo(nw)
	// 25 points × sqrt(3·255²) ≈ 11041.
	want := 25 * math.Sqrt(3) * 255
	if math.Abs(d-want) > 1 {
		t.Errorf("black-white naive distance %g, want ~%g", d, want)
	}
}

func TestRegionsOnSyntheticShapes(t *testing.T) {
	// Big white canvas with two large dark blobs → at least 3 regions,
	// 2+ major.
	im := imaging.New(120, 120)
	im.Fill(240, 240, 240)
	for y := 20; y < 55; y++ {
		for x := 20; x < 55; x++ {
			im.Set(x, y, 10, 10, 10)
		}
	}
	for y := 70; y < 105; y++ {
		for x := 70; x < 105; x++ {
			im.Set(x, y, 10, 10, 10)
		}
	}
	r := ExtractRegions(im)
	if r.Regions < 3 {
		t.Errorf("regions = %d, want >= 3", r.Regions)
	}
	if r.Major < 2 {
		t.Errorf("major = %d, want >= 2", r.Major)
	}
	if r.Holes < 1 {
		t.Errorf("holes = %d, want >= 1", r.Holes)
	}
	if r.Major > r.Regions || r.Holes > r.Regions {
		t.Errorf("inconsistent counts: %+v", r)
	}
}

func TestRegionsUniform(t *testing.T) {
	im := imaging.New(60, 60)
	im.Fill(200, 200, 200)
	r := ExtractRegions(im)
	if r.Regions != 1 || r.Major != 1 {
		t.Errorf("uniform image: %+v", r)
	}
}

// Region labels partition the raster: counts are internally consistent
// across random binary images.
func TestRegionsPartitionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := imaging.NewGray(40, 40)
		for i := range g.Pix {
			if rng.Intn(2) == 1 {
				g.Pix[i] = 255
			}
		}
		r := growRegions(g)
		return r.Regions >= 1 && r.Holes >= 0 && r.Holes <= r.Regions && r.Major <= r.Regions
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
