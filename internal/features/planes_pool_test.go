package features

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"cbvr/internal/imaging"
)

// TestAcquirePlanesBitIdentity pins the pooled-planes path to the retained
// reference: acquiring, extracting and releasing must produce exactly the
// reference descriptor strings, and recycling the buffers for another frame
// must not disturb descriptors extracted earlier (every descriptor copies
// out of the shared rasters).
func TestAcquirePlanesBitIdentity(t *testing.T) {
	type extracted struct {
		name string
		want *Set
		got  *Set
	}
	var all []extracted
	for name, im := range equivalenceFrames() {
		p := AcquirePlanes(im)
		got := p.ExtractAll()
		p.Release()
		all = append(all, extracted{name: name, want: ExtractAllReference(im), got: got})
	}
	// Churn the pool after all extractions so stale aliasing would show.
	for i := 0; i < 4; i++ {
		p := AcquirePlanes(randomFrame(int64(900+i), 128, 96))
		p.ExtractAll()
		p.Release()
	}
	for _, e := range all {
		for _, k := range AllKinds() {
			if ws, gs := e.want.Get(k).String(), e.got.Get(k).String(); ws != gs {
				t.Errorf("%s/%v: pooled planes diverge from reference", e.name, k)
			}
		}
	}
}

// TestExtractAllWithNaiveInstallsSignature checks that the precomputed
// signature is installed verbatim and matches what a recompute would have
// produced from the same planes.
func TestExtractAllWithNaiveInstallsSignature(t *testing.T) {
	im := randomFrame(11, 200, 150)
	p := NewPlanes(im)
	sig := ExtractNaiveWith(p)
	set := p.ExtractAllWithNaive(sig)
	if set.Naive != sig {
		t.Error("signature not installed verbatim")
	}
	if set.Naive.String() != ExtractNaive(im).String() {
		t.Error("installed signature diverges from a fresh extraction")
	}
	ref := p.ExtractAll()
	for _, k := range AllKinds() {
		if set.Get(k).String() != ref.Get(k).String() {
			t.Errorf("%v: ExtractAllWithNaive diverges from ExtractAll", k)
		}
	}
}

// TestExtractNaivePrescaledRaster pins the selection-time optimisation the
// streamed ingest relies on: extracting from an already-analysis-sized
// raster performs no rescale and yields the identical signature.
func TestExtractNaivePrescaledRaster(t *testing.T) {
	im := randomFrame(12, 320, 240)
	want := ExtractNaive(im).String()
	scaled := AnalysisRaster(im)
	start := imaging.RescaleCalls()
	got := ExtractNaive(scaled).String()
	if n := imaging.RescaleCalls() - start; n != 0 {
		t.Errorf("pre-scaled naive extraction performed %d rescales, want 0", n)
	}
	if got != want {
		t.Error("pre-scaled signature diverges from full-resolution extraction")
	}
}

// TestAcquirePlanesConcurrent drives the pooled-planes path from a worker
// pool the way streamed ingest does, under -race: concurrent acquire /
// extract / release cycles must never let recycled Gray or Quant buffers
// bleed between frames.
func TestAcquirePlanesConcurrent(t *testing.T) {
	const frames = 4
	ims := make([]*imaging.Image, frames)
	want := make([][]string, frames)
	for i := range ims {
		ims[i] = randomFrame(int64(300+i), 100+12*i, 80+6*i)
		set := ExtractAllReference(ims[i])
		for _, k := range AllKinds() {
			want[i] = append(want[i], set.Get(k).String())
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers < 4 {
		workers = 4
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < 6; it++ {
				i := (w + it) % frames
				p := AcquirePlanes(ims[i])
				set := p.ExtractAllWithNaive(ExtractNaiveWith(p))
				p.Release()
				for ki, k := range AllKinds() {
					if got := set.Get(k).String(); got != want[i][ki] {
						errs <- fmt.Errorf("worker %d frame %d: %v diverged through the pool", w, i, k)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
