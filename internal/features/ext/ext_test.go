package ext

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
)

func testFrame(seed int64) *imaging.Image {
	v := synthvid.Generate(synthvid.Cartoon, synthvid.Config{Width: 96, Height: 72, Frames: 2, Shots: 1, Seed: seed})
	return v.Frames[0]
}

func allDescriptors(im *imaging.Image) []Descriptor {
	return []Descriptor{ExtractEHD(im), ExtractCLD(im), ExtractDCD(im)}
}

func TestStringRoundTripAll(t *testing.T) {
	im := testFrame(1)
	for _, d := range allDescriptors(im) {
		s := d.String()
		back, err := Parse(s)
		if err != nil {
			t.Fatalf("%s: parse: %v", d.Name(), err)
		}
		if back.String() != s {
			t.Errorf("%s: reserialisation differs", d.Name())
		}
		dist, err := d.DistanceTo(back)
		if err != nil || dist > 1e-9 {
			t.Errorf("%s: round-trip distance %g err=%v", d.Name(), dist, err)
		}
	}
}

func TestDistanceIdentitySymmetry(t *testing.T) {
	a := allDescriptors(testFrame(2))
	b := allDescriptors(testFrame(99))
	for i := range a {
		self, err := a[i].DistanceTo(a[i])
		if err != nil || self > 1e-9 {
			t.Errorf("%s: d(x,x)=%g err=%v", a[i].Name(), self, err)
		}
		ab, err1 := a[i].DistanceTo(b[i])
		ba, err2 := b[i].DistanceTo(a[i])
		if err1 != nil || err2 != nil || math.Abs(ab-ba) > 1e-9 {
			t.Errorf("%s: asymmetric %g vs %g (%v %v)", a[i].Name(), ab, ba, err1, err2)
		}
		if ab < 0 {
			t.Errorf("%s: negative distance", a[i].Name())
		}
	}
}

func TestCrossTypeDistanceRejected(t *testing.T) {
	im := testFrame(3)
	ds := allDescriptors(im)
	for i := range ds {
		other := ds[(i+1)%len(ds)]
		if _, err := ds[i].DistanceTo(other); err == nil {
			t.Errorf("%s accepted %s", ds[i].Name(), other.Name())
		}
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "XYZ 1 2", "EHD 79 1", "CLD 1 2", "DCD 9", "DCD 1 300,0,0,0.5", "DCD 1 1,2,3,1.5"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("accepted %q", s)
		}
	}
}

func TestEHDBinsNormalised(t *testing.T) {
	e := ExtractEHD(testFrame(4))
	for i, v := range e.Bins {
		if v < 0 || v > 1 {
			t.Fatalf("bin %d = %g", i, v)
		}
	}
}

func TestEHDOrientationSensitivity(t *testing.T) {
	// Odd-period stripes at the analysis resolution so edges fall inside
	// the 2×2 blocks rather than exactly between them.
	horiz := imaging.New(128, 128)
	vert := imaging.New(128, 128)
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			if y%5 < 2 {
				horiz.Set(x, y, 255, 255, 255)
			}
			if x%5 < 2 {
				vert.Set(x, y, 255, 255, 255)
			}
		}
	}
	eh := ExtractEHD(horiz)
	ev := ExtractEHD(vert)
	// Horizontal stripes excite the horizontal-edge bins; vertical
	// stripes the vertical ones.
	var hH, hV, vH, vV float64
	for cell := 0; cell < 16; cell++ {
		hV += eh.Bins[cell*5+0]
		hH += eh.Bins[cell*5+1]
		vV += ev.Bins[cell*5+0]
		vH += ev.Bins[cell*5+1]
	}
	if hH <= hV {
		t.Errorf("horizontal stripes: H=%g V=%g", hH, hV)
	}
	if vV <= vH {
		t.Errorf("vertical stripes: V=%g H=%g", vV, vH)
	}
	d, _ := eh.DistanceTo(ev)
	if d < 0.5 {
		t.Errorf("orientation-blind EHD: %g", d)
	}
}

func TestEHDUniformImageEmpty(t *testing.T) {
	im := imaging.New(64, 64)
	im.Fill(128, 128, 128)
	e := ExtractEHD(im)
	for i, v := range e.Bins {
		if v != 0 {
			t.Fatalf("uniform image has edge votes at %d: %g", i, v)
		}
	}
}

func TestCLDDCMatchesMeanLuma(t *testing.T) {
	im := imaging.New(32, 32)
	im.Fill(200, 200, 200)
	c := ExtractCLD(im)
	// DC coefficient of an orthonormal 8×8 DCT of a constant block v is
	// 8·(v-128).
	want := 8 * (200.0 - 128.0)
	if math.Abs(c.Y[0]-want) > 1.0 {
		t.Errorf("Y DC = %g, want ~%g", c.Y[0], want)
	}
	// Constant grey has no chroma.
	for i := 0; i < cldCLen; i++ {
		if math.Abs(c.Cb[i]) > 1e-6 || math.Abs(c.Cr[i]) > 1e-6 {
			t.Errorf("grey image has chroma: cb=%g cr=%g", c.Cb[i], c.Cr[i])
		}
	}
	// All AC terms vanish for a constant image.
	for i := 1; i < cldYLen; i++ {
		if math.Abs(c.Y[i]) > 1e-6 {
			t.Errorf("constant image AC Y[%d] = %g", i, c.Y[i])
		}
	}
}

func TestCLDLayoutSensitivity(t *testing.T) {
	// Red-left/blue-right vs blue-left/red-right: same global histogram,
	// different layout — CLD must tell them apart.
	a := imaging.New(64, 64)
	b := imaging.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if x < 32 {
				a.Set(x, y, 255, 0, 0)
				b.Set(x, y, 0, 0, 255)
			} else {
				a.Set(x, y, 0, 0, 255)
				b.Set(x, y, 255, 0, 0)
			}
		}
	}
	ca, cb := ExtractCLD(a), ExtractCLD(b)
	d, err := ca.DistanceTo(cb)
	if err != nil {
		t.Fatal(err)
	}
	if d < 10 {
		t.Errorf("layout-blind CLD: %g", d)
	}
}

func TestZigzagCoversAllCells(t *testing.T) {
	seen := make(map[[2]int]bool)
	for _, rc := range zigzag8 {
		if rc[0] < 0 || rc[0] > 7 || rc[1] < 0 || rc[1] > 7 {
			t.Fatalf("out of range %v", rc)
		}
		if seen[rc] {
			t.Fatalf("duplicate %v", rc)
		}
		seen[rc] = true
	}
	if len(seen) != 64 {
		t.Fatalf("covered %d cells", len(seen))
	}
	// First three entries are the canonical DC, (0,1), (1,0).
	if zigzag8[0] != [2]int{0, 0} {
		t.Errorf("zigzag[0] = %v", zigzag8[0])
	}
}

func TestDCDFractionsSumToOne(t *testing.T) {
	d := ExtractDCD(testFrame(5))
	if len(d.Colors) == 0 || len(d.Colors) > dcdMaxColors {
		t.Fatalf("palette size %d", len(d.Colors))
	}
	var sum float64
	prev := 2.0
	for _, c := range d.Colors {
		if c.Fraction <= 0 || c.Fraction > 1 {
			t.Fatalf("fraction %g", c.Fraction)
		}
		if c.Fraction > prev {
			t.Error("palette not sorted by fraction")
		}
		prev = c.Fraction
		sum += c.Fraction
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("fractions sum to %g", sum)
	}
}

func TestDCDTwoToneImage(t *testing.T) {
	im := imaging.New(64, 64)
	for y := 0; y < 64; y++ {
		for x := 0; x < 64; x++ {
			if x < 16 { // quarter dark red, three quarters blue
				im.Set(x, y, 200, 0, 0)
			} else {
				im.Set(x, y, 0, 0, 200)
			}
		}
	}
	d := ExtractDCD(im)
	if len(d.Colors) != 2 {
		t.Fatalf("palette: %+v", d.Colors)
	}
	// Dominant colour is blue with ~75% coverage.
	if d.Colors[0].B < 150 || d.Colors[0].Fraction < 0.7 {
		t.Errorf("dominant: %+v", d.Colors[0])
	}
	if d.Colors[1].R < 150 || d.Colors[1].Fraction > 0.3 {
		t.Errorf("secondary: %+v", d.Colors[1])
	}
}

func TestDCDDeterministic(t *testing.T) {
	im := testFrame(6)
	if ExtractDCD(im).String() != ExtractDCD(im).String() {
		t.Error("DCD extraction not deterministic")
	}
}

func TestRerankPrefersTrueMatch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	query := testFrame(8)
	near := query.Clone()
	for i := 0; i < len(near.Pix)/100; i++ {
		near.Pix[rng.Intn(len(near.Pix))] ^= 0x04
	}
	candidates := []*imaging.Image{testFrame(100), near, testFrame(101)}
	exs := []Extractor{
		func(im *imaging.Image) Descriptor { return ExtractEHD(im) },
		func(im *imaging.Image) Descriptor { return ExtractCLD(im) },
		func(im *imaging.Image) Descriptor { return ExtractDCD(im) },
	}
	ranked, err := Rerank(query, candidates, exs)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 || ranked[0].Index != 1 {
		t.Errorf("rerank order: %+v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Distance < ranked[i-1].Distance {
			t.Error("rerank not sorted")
		}
	}
}

func TestRerankEdgeCases(t *testing.T) {
	if _, err := Rerank(testFrame(9), nil, []Extractor{func(im *imaging.Image) Descriptor { return ExtractEHD(im) }}); err != nil {
		t.Errorf("empty candidates: %v", err)
	}
	if _, err := Rerank(testFrame(9), []*imaging.Image{testFrame(10)}, nil); err == nil {
		t.Error("no extractors accepted")
	}
}

func TestExtractorsRegistry(t *testing.T) {
	exs := Extractors()
	if len(exs) != 3 {
		t.Fatalf("registry size %d", len(exs))
	}
	im := testFrame(11)
	for name, ex := range exs {
		d := ex(im)
		if d.Name() != name {
			t.Errorf("registry %s produced %s", name, d.Name())
		}
		if !strings.HasPrefix(d.String(), name) {
			t.Errorf("%s serialisation prefix wrong", name)
		}
	}
}
