package ext

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"cbvr/internal/imaging"
)

// The MPEG-7 Dominant Color Descriptor summarises a frame as up to
// dcdMaxColors representative colours with their coverage fractions,
// computed here by a deterministic k-means in RGB space (centroids seeded
// from luminance quantiles so extraction has no random state).
const (
	dcdMaxColors  = 4
	dcdIterations = 12
	dcdAnalysis   = 64 // sampling raster side
	// dcdMergeDist collapses centroids closer than this (RGB Euclidean).
	dcdMergeDist = 24.0
)

// DominantColor is one palette entry.
type DominantColor struct {
	R, G, B  uint8
	Fraction float64 // coverage in [0,1]
}

// DCD is the dominant colour descriptor: 1..4 palette entries ordered by
// descending fraction.
type DCD struct {
	Colors []DominantColor
}

// ExtractDCD computes the dominant colours of a frame.
func ExtractDCD(im *imaging.Image) *DCD {
	small := im.Rescale(dcdAnalysis, dcdAnalysis)
	n := dcdAnalysis * dcdAnalysis
	px := make([][3]float64, n)
	for i, p := 0, 0; i < n; i, p = i+1, p+3 {
		px[i] = [3]float64{float64(small.Pix[p]), float64(small.Pix[p+1]), float64(small.Pix[p+2])}
	}

	// Seed centroids at luminance quantiles for determinism.
	byLuma := make([]int, n)
	for i := range byLuma {
		byLuma[i] = i
	}
	luma := func(c [3]float64) float64 { return 0.299*c[0] + 0.587*c[1] + 0.114*c[2] }
	sort.Slice(byLuma, func(a, b int) bool { return luma(px[byLuma[a]]) < luma(px[byLuma[b]]) })
	cents := make([][3]float64, dcdMaxColors)
	for k := 0; k < dcdMaxColors; k++ {
		cents[k] = px[byLuma[(2*k+1)*n/(2*dcdMaxColors)]]
	}

	assign := make([]int, n)
	for iter := 0; iter < dcdIterations; iter++ {
		var sums [dcdMaxColors][3]float64
		var counts [dcdMaxColors]float64
		for i, p := range px {
			best, bestD := 0, math.MaxFloat64
			for k := range cents {
				d := sqDist(p, cents[k])
				if d < bestD {
					best, bestD = k, d
				}
			}
			assign[i] = best
			for c := 0; c < 3; c++ {
				sums[best][c] += p[c]
			}
			counts[best]++
		}
		for k := range cents {
			if counts[k] == 0 {
				continue
			}
			for c := 0; c < 3; c++ {
				cents[k][c] = sums[k][c] / counts[k]
			}
		}
	}

	// Fractions, merge near-duplicates, sort by coverage.
	var counts [dcdMaxColors]float64
	for _, a := range assign {
		counts[a]++
	}
	type entry struct {
		c [3]float64
		f float64
	}
	var entries []entry
	for k := range cents {
		if counts[k] == 0 {
			continue
		}
		merged := false
		for i := range entries {
			if math.Sqrt(sqDist(entries[i].c, cents[k])) < dcdMergeDist {
				// Weighted merge.
				tf := entries[i].f + counts[k]/float64(n)
				for c := 0; c < 3; c++ {
					entries[i].c[c] = (entries[i].c[c]*entries[i].f + cents[k][c]*counts[k]/float64(n)) / tf
				}
				entries[i].f = tf
				merged = true
				break
			}
		}
		if !merged {
			entries = append(entries, entry{cents[k], counts[k] / float64(n)})
		}
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].f != entries[b].f {
			return entries[a].f > entries[b].f
		}
		return luma(entries[a].c) < luma(entries[b].c)
	})
	out := &DCD{}
	for _, e := range entries {
		out.Colors = append(out.Colors, DominantColor{
			R: clamp8(e.c[0]), G: clamp8(e.c[1]), B: clamp8(e.c[2]), Fraction: e.f,
		})
	}
	return out
}

func sqDist(a, b [3]float64) float64 {
	var s float64
	for c := 0; c < 3; c++ {
		d := a[c] - b[c]
		s += d * d
	}
	return s
}

func clamp8(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}

// Name implements Descriptor.
func (d *DCD) Name() string { return "DCD" }

// String renders "DCD <n> r,g,b,frac …".
func (d *DCD) String() string {
	var sb strings.Builder
	sb.WriteString("DCD ")
	sb.WriteString(strconv.Itoa(len(d.Colors)))
	for _, c := range d.Colors {
		fmt.Fprintf(&sb, " %d,%d,%d,%s", c.R, c.G, c.B, strconv.FormatFloat(c.Fraction, 'g', -1, 64))
	}
	return sb.String()
}

// ParseDCD reconstructs a DCD from its String form.
func ParseDCD(s string) (*DCD, error) {
	fields := strings.Fields(s)
	if len(fields) < 2 || fields[0] != "DCD" {
		return nil, fmt.Errorf("ext: malformed DCD %.20q", s)
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 || n > dcdMaxColors || len(fields) != n+2 {
		return nil, fmt.Errorf("ext: DCD colour count %q with %d entries", fields[1], len(fields)-2)
	}
	out := &DCD{}
	for i := 0; i < n; i++ {
		parts := strings.Split(fields[i+2], ",")
		if len(parts) != 4 {
			return nil, fmt.Errorf("ext: DCD entry %d malformed", i)
		}
		var rgb [3]int
		for c := 0; c < 3; c++ {
			v, err := strconv.Atoi(parts[c])
			if err != nil || v < 0 || v > 255 {
				return nil, fmt.Errorf("ext: DCD entry %d channel %d", i, c)
			}
			rgb[c] = v
		}
		f, err := strconv.ParseFloat(parts[3], 64)
		if err != nil || f < 0 || f > 1 {
			return nil, fmt.Errorf("ext: DCD entry %d fraction", i)
		}
		out.Colors = append(out.Colors, DominantColor{
			R: uint8(rgb[0]), G: uint8(rgb[1]), B: uint8(rgb[2]), Fraction: f,
		})
	}
	return out, nil
}

// DistanceTo is the standard DCD dissimilarity: 1 minus twice the sum of
// per-pair similarity contributions for colour pairs within a matching
// radius, folded into [0, ~2]. Identical palettes give 0.
func (d *DCD) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*DCD)
	if !ok {
		return 0, nameMismatch("DCD", other)
	}
	const td = 60.0 // matching radius in RGB space
	var f1sq, f2sq, cross float64
	for _, c := range d.Colors {
		f1sq += c.Fraction * c.Fraction
	}
	for _, c := range o.Colors {
		f2sq += c.Fraction * c.Fraction
	}
	for _, c1 := range d.Colors {
		for _, c2 := range o.Colors {
			dist := math.Sqrt(sqDist(
				[3]float64{float64(c1.R), float64(c1.G), float64(c1.B)},
				[3]float64{float64(c2.R), float64(c2.G), float64(c2.B)},
			))
			if dist > td {
				continue
			}
			a := 1 - dist/td
			cross += 2 * a * c1.Fraction * c2.Fraction
		}
	}
	v := f1sq + f2sq - cross
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v), nil
}
