package ext

import (
	"testing"

	"cbvr/internal/imaging"
)

func benchFrame() *imaging.Image {
	return testFrame(42)
}

func BenchmarkExtractEHD(b *testing.B) {
	im := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractEHD(im)
	}
}

func BenchmarkExtractCLD(b *testing.B) {
	im := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractCLD(im)
	}
}

func BenchmarkExtractDCD(b *testing.B) {
	im := benchFrame()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ExtractDCD(im)
	}
}

func BenchmarkRerank8(b *testing.B) {
	query := benchFrame()
	cands := make([]*imaging.Image, 8)
	for i := range cands {
		cands[i] = testFrame(int64(100 + i))
	}
	exs := []Extractor{
		func(im *imaging.Image) Descriptor { return ExtractEHD(im) },
		func(im *imaging.Image) Descriptor { return ExtractCLD(im) },
		func(im *imaging.Image) Descriptor { return ExtractDCD(im) },
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rerank(query, cands, exs); err != nil {
			b.Fatal(err)
		}
	}
}
