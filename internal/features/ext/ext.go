// Package ext implements the paper's stated future work (§6: "We further
// intend to enhance system by integrating more features"): three MPEG-7
// style descriptors beyond the seven canonical ones —
//
//   - EHD: the Edge Histogram Descriptor (80-bin local edge-type
//     histogram),
//   - CLD: the Color Layout Descriptor (DCT coefficients of an 8×8
//     thumbnail in YCbCr),
//   - DCD: the Dominant Color Descriptor (k-means palette with fractions).
//
// They follow the same contract as the canonical descriptors (string
// serialisation + distance) but are deliberately kept out of the core
// retrieval registry so the Table 1 reproduction stays exactly the paper's
// seven-feature system; Rerank applies them as a post-retrieval refinement
// stage (see examples/extended).
package ext

import (
	"fmt"
	"sort"

	"cbvr/internal/imaging"
)

// Descriptor is the extension-feature contract, mirroring the canonical
// features.Descriptor with a name instead of a Kind.
type Descriptor interface {
	// Name identifies the descriptor type ("EHD", "CLD", "DCD").
	Name() string
	// String renders a parseable serialisation.
	String() string
	// DistanceTo returns a non-negative dissimilarity to a descriptor of
	// the same type.
	DistanceTo(other Descriptor) (float64, error)
}

// Extractor computes one extension descriptor for a frame.
type Extractor func(*imaging.Image) Descriptor

// Extractors returns all extension extractors keyed by name.
func Extractors() map[string]Extractor {
	return map[string]Extractor{
		"EHD": func(im *imaging.Image) Descriptor { return ExtractEHD(im) },
		"CLD": func(im *imaging.Image) Descriptor { return ExtractCLD(im) },
		"DCD": func(im *imaging.Image) Descriptor { return ExtractDCD(im) },
	}
}

// Parse reconstructs an extension descriptor from its serialised form.
func Parse(s string) (Descriptor, error) {
	switch {
	case len(s) >= 3 && s[:3] == "EHD":
		return ParseEHD(s)
	case len(s) >= 3 && s[:3] == "CLD":
		return ParseCLD(s)
	case len(s) >= 3 && s[:3] == "DCD":
		return ParseDCD(s)
	default:
		return nil, fmt.Errorf("ext: unknown descriptor %.12q", s)
	}
}

func nameMismatch(want string, got Descriptor) error {
	return fmt.Errorf("ext: distance between %s and %s descriptors", want, got.Name())
}

// Ranked pairs a candidate index with its re-ranking distance.
type Ranked struct {
	Index    int
	Distance float64
}

// Rerank orders candidate frames against a query frame by the equally
// weighted sum of the given extension descriptors' distances (each
// min-max normalised across the candidates). It returns the candidate
// indices best-first. Use it to refine the core system's top-K results.
func Rerank(query *imaging.Image, candidates []*imaging.Image, extractors []Extractor) ([]Ranked, error) {
	if len(extractors) == 0 {
		return nil, fmt.Errorf("ext: no extractors given")
	}
	if len(candidates) == 0 {
		return nil, nil
	}
	total := make([]float64, len(candidates))
	for _, ex := range extractors {
		qd := ex(query)
		dists := make([]float64, len(candidates))
		lo, hi := 0.0, 0.0
		for i, c := range candidates {
			d, err := qd.DistanceTo(ex(c))
			if err != nil {
				return nil, err
			}
			dists[i] = d
			if i == 0 || d < lo {
				lo = d
			}
			if i == 0 || d > hi {
				hi = d
			}
		}
		span := hi - lo
		for i, d := range dists {
			if span > 0 {
				total[i] += (d - lo) / span
			}
		}
	}
	out := make([]Ranked, len(candidates))
	for i, d := range total {
		out[i] = Ranked{Index: i, Distance: d / float64(len(extractors))}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Distance != out[j].Distance {
			return out[i].Distance < out[j].Distance
		}
		return out[i].Index < out[j].Index
	})
	return out, nil
}
