package ext

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cbvr/internal/imaging"
)

// The MPEG-7 Edge Histogram Descriptor divides the frame into a 4×4 grid
// of sub-images; each sub-image is scanned in 2×2 pixel blocks classified
// into five edge types (vertical, horizontal, 45°, 135°, non-directional)
// by the filter with the strongest response above a threshold. Each
// sub-image contributes a 5-bin normalised histogram → 80 values.
const (
	ehdGrid      = 4
	ehdTypes     = 5
	ehdVectorLen = ehdGrid * ehdGrid * ehdTypes // 80
	// ehdThreshold is the minimum winning filter magnitude for a block to
	// vote (MPEG-7 XM default is 11 on 0..255 intensities).
	ehdThreshold = 11.0
	// ehdAnalysis is the grayscale raster side for extraction.
	ehdAnalysis = 128
)

// EHD is the 80-bin edge histogram descriptor.
type EHD struct {
	Bins [ehdVectorLen]float64
}

// edge filter coefficients over a 2×2 block (a b / c d), MPEG-7 XM.
var ehdFilters = [ehdTypes][4]float64{
	{1, -1, 1, -1},                  // vertical
	{1, 1, -1, -1},                  // horizontal
	{math.Sqrt2, 0, 0, -math.Sqrt2}, // 45° diagonal
	{0, math.Sqrt2, -math.Sqrt2, 0}, // 135° diagonal
	{2, -2, -2, 2},                  // non-directional
}

// ExtractEHD computes the edge histogram of a frame.
func ExtractEHD(im *imaging.Image) *EHD {
	g := im.Rescale(ehdAnalysis, ehdAnalysis).ToGray()
	out := &EHD{}
	counts := [ehdGrid * ehdGrid]float64{}
	sub := ehdAnalysis / ehdGrid
	for by := 0; by+1 < ehdAnalysis; by += 2 {
		for bx := 0; bx+1 < ehdAnalysis; bx += 2 {
			a := float64(g.Pix[by*ehdAnalysis+bx])
			b := float64(g.Pix[by*ehdAnalysis+bx+1])
			c := float64(g.Pix[(by+1)*ehdAnalysis+bx])
			d := float64(g.Pix[(by+1)*ehdAnalysis+bx+1])
			bestType, bestMag := -1, ehdThreshold
			for t := 0; t < ehdTypes; t++ {
				f := ehdFilters[t]
				mag := math.Abs(a*f[0] + b*f[1] + c*f[2] + d*f[3])
				if mag > bestMag {
					bestMag, bestType = mag, t
				}
			}
			cell := (by/sub)*ehdGrid + bx/sub
			counts[cell]++
			if bestType >= 0 {
				out.Bins[cell*ehdTypes+bestType]++
			}
		}
	}
	for cell := 0; cell < ehdGrid*ehdGrid; cell++ {
		if counts[cell] == 0 {
			continue
		}
		for t := 0; t < ehdTypes; t++ {
			out.Bins[cell*ehdTypes+t] /= counts[cell]
		}
	}
	return out
}

// Name implements Descriptor.
func (e *EHD) Name() string { return "EHD" }

// String renders "EHD 80 <b0> … <b79>".
func (e *EHD) String() string {
	var sb strings.Builder
	sb.Grow(ehdVectorLen * 10)
	sb.WriteString("EHD 80")
	for _, v := range e.Bins {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return sb.String()
}

// ParseEHD reconstructs an EHD from its String form.
func ParseEHD(s string) (*EHD, error) {
	fields := strings.Fields(s)
	if len(fields) != ehdVectorLen+2 || fields[0] != "EHD" || fields[1] != "80" {
		return nil, fmt.Errorf("ext: malformed EHD (%d fields)", len(fields))
	}
	out := &EHD{}
	for i, f := range fields[2:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("ext: EHD bin %d: %w", i, err)
		}
		if v < 0 || v > 1 {
			return nil, fmt.Errorf("ext: EHD bin %d out of range: %g", i, v)
		}
		out.Bins[i] = v
	}
	return out, nil
}

// DistanceTo is the L1 distance over the 80 bins.
func (e *EHD) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*EHD)
	if !ok {
		return 0, nameMismatch("EHD", other)
	}
	var sum float64
	for i := range e.Bins {
		sum += math.Abs(e.Bins[i] - o.Bins[i])
	}
	return sum, nil
}
