package ext

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"cbvr/internal/imaging"
)

// The MPEG-7 Color Layout Descriptor shrinks the frame to an 8×8 grid of
// mean colours, converts to YCbCr, applies an 8×8 2D DCT per channel and
// keeps the first coefficients in zigzag order: 6 for Y, 3 for Cb, 3 for
// Cr — 12 values that capture the spatial colour layout.
const (
	cldGrid = 8
	cldYLen = 6
	cldCLen = 3
)

// CLD is the 12-coefficient colour layout descriptor.
type CLD struct {
	Y  [cldYLen]float64
	Cb [cldCLen]float64
	Cr [cldCLen]float64
}

// MPEG-7 suggests weighting low-frequency coefficients more heavily.
var (
	cldYW = [cldYLen]float64{2, 2, 2, 1, 1, 1}
	cldCW = [cldCLen]float64{2, 1, 1}
)

// zigzag8 holds the (row, col) visiting order of an 8×8 zigzag scan.
var zigzag8 = buildZigzag()

func buildZigzag() [64][2]int {
	var out [64][2]int
	i := 0
	for s := 0; s < 15; s++ {
		if s%2 == 0 { // up-right
			for r := minInt(s, 7); r >= maxInt(0, s-7); r-- {
				out[i] = [2]int{r, s - r}
				i++
			}
		} else { // down-left
			for r := maxInt(0, s-7); r <= minInt(s, 7); r++ {
				out[i] = [2]int{r, s - r}
				i++
			}
		}
	}
	return out
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// dct8x8 computes the orthonormal 2D DCT-II of an 8×8 block in place.
func dct8x8(block *[cldGrid][cldGrid]float64) {
	var tmp [cldGrid][cldGrid]float64
	for u := 0; u < cldGrid; u++ {
		for v := 0; v < cldGrid; v++ {
			var sum float64
			for x := 0; x < cldGrid; x++ {
				for y := 0; y < cldGrid; y++ {
					sum += block[x][y] *
						math.Cos((2*float64(x)+1)*float64(u)*math.Pi/16) *
						math.Cos((2*float64(y)+1)*float64(v)*math.Pi/16)
				}
			}
			cu, cv := 1.0, 1.0
			if u == 0 {
				cu = 1 / math.Sqrt2
			}
			if v == 0 {
				cv = 1 / math.Sqrt2
			}
			tmp[u][v] = sum * cu * cv / 4
		}
	}
	*block = tmp
}

// ExtractCLD computes the colour layout descriptor of a frame.
func ExtractCLD(im *imaging.Image) *CLD {
	// 8×8 grid of channel means.
	var yb, cbb, crb [cldGrid][cldGrid]float64
	cw := (im.W + cldGrid - 1) / cldGrid
	ch := (im.H + cldGrid - 1) / cldGrid
	if cw == 0 {
		cw = 1
	}
	if ch == 0 {
		ch = 1
	}
	for gy := 0; gy < cldGrid; gy++ {
		for gx := 0; gx < cldGrid; gx++ {
			var r, g, b, n float64
			for y := gy * ch; y < (gy+1)*ch && y < im.H; y++ {
				for x := gx * cw; x < (gx+1)*cw && x < im.W; x++ {
					pr, pg, pb := im.At(x, y)
					r += float64(pr)
					g += float64(pg)
					b += float64(pb)
					n++
				}
			}
			if n > 0 {
				r, g, b = r/n, g/n, b/n
			}
			// BT.601 YCbCr.
			yb[gy][gx] = 0.299*r + 0.587*g + 0.114*b - 128
			cbb[gy][gx] = -0.168736*r - 0.331264*g + 0.5*b
			crb[gy][gx] = 0.5*r - 0.418688*g - 0.081312*b
		}
	}
	dct8x8(&yb)
	dct8x8(&cbb)
	dct8x8(&crb)
	out := &CLD{}
	for i := 0; i < cldYLen; i++ {
		rc := zigzag8[i]
		out.Y[i] = yb[rc[0]][rc[1]]
	}
	for i := 0; i < cldCLen; i++ {
		rc := zigzag8[i]
		out.Cb[i] = cbb[rc[0]][rc[1]]
		out.Cr[i] = crb[rc[0]][rc[1]]
	}
	return out
}

// Name implements Descriptor.
func (c *CLD) Name() string { return "CLD" }

// String renders "CLD <y0..y5> <cb0..cb2> <cr0..cr2>".
func (c *CLD) String() string {
	var sb strings.Builder
	sb.WriteString("CLD")
	for _, v := range c.Y {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	for _, v := range c.Cb {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	for _, v := range c.Cr {
		sb.WriteByte(' ')
		sb.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
	return sb.String()
}

// ParseCLD reconstructs a CLD from its String form.
func ParseCLD(s string) (*CLD, error) {
	fields := strings.Fields(s)
	want := 1 + cldYLen + 2*cldCLen
	if len(fields) != want || fields[0] != "CLD" {
		return nil, fmt.Errorf("ext: malformed CLD (%d fields)", len(fields))
	}
	vals := make([]float64, 0, want-1)
	for i, f := range fields[1:] {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("ext: CLD coefficient %d: %w", i, err)
		}
		vals = append(vals, v)
	}
	out := &CLD{}
	copy(out.Y[:], vals[:cldYLen])
	copy(out.Cb[:], vals[cldYLen:cldYLen+cldCLen])
	copy(out.Cr[:], vals[cldYLen+cldCLen:])
	return out, nil
}

// DistanceTo is the MPEG-7 CLD distance: the sum over channels of the
// square root of the weighted squared coefficient differences.
func (c *CLD) DistanceTo(other Descriptor) (float64, error) {
	o, ok := other.(*CLD)
	if !ok {
		return 0, nameMismatch("CLD", other)
	}
	var dy, dcb, dcr float64
	for i := 0; i < cldYLen; i++ {
		d := c.Y[i] - o.Y[i]
		dy += cldYW[i] * d * d
	}
	for i := 0; i < cldCLen; i++ {
		d := c.Cb[i] - o.Cb[i]
		dcb += cldCW[i] * d * d
		d = c.Cr[i] - o.Cr[i]
		dcr += cldCW[i] * d * d
	}
	return math.Sqrt(dy) + math.Sqrt(dcb) + math.Sqrt(dcr), nil
}
