package vstore_test

import (
	"bytes"
	"testing"

	"cbvr/internal/vstore"
	"cbvr/internal/vstore/faultfs"
)

// The power-loss sweep drives a scripted workload — create, inserts,
// update, delete, checkpoint, staged-blob adoption — and re-runs it once
// per recorded fault point: a power cut at every sync, a torn write at
// every WAL/page write, an I/O error at every op, ENOSPC/short writes at
// every data write. After every fault the store must reopen, pass fsck,
// and hold exactly the state after some committed step prefix P with
// P >= the number of steps whose commit had returned success (durability)
// and P <= that +1 (a commit whose records reached the platter but whose
// success the process never observed).

type wlState map[int64][]byte // pk -> expected payload

// wlSteps returns the scripted workload. Each step runs one transaction
// (or checkpoint) and mutates the model to the state a successful commit
// leaves behind.
func wlSteps() []struct {
	name  string
	run   func(db *vstore.DB, tbl **vstore.Table) error
	model func(m wlState)
} {
	payload := func(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }
	inTxn := func(db *vstore.DB, fn func(tx *vstore.Txn) error) error {
		tx, err := db.Begin()
		if err != nil {
			return err
		}
		if err := fn(tx); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}
	return []struct {
		name  string
		run   func(db *vstore.DB, tbl **vstore.Table) error
		model func(m wlState)
	}{
		{
			name: "create-table",
			run: func(db *vstore.DB, tbl **vstore.Table) error {
				return inTxn(db, func(tx *vstore.Txn) error {
					t, err := db.CreateTable(tx, faultSchema())
					if err != nil {
						return err
					}
					*tbl = t
					return nil
				})
			},
			model: func(m wlState) {},
		},
		{
			name: "insert-1",
			run: func(db *vstore.DB, tbl **vstore.Table) error {
				return inTxn(db, func(tx *vstore.Txn) error {
					_, err := (*tbl).Insert(tx, faultRow(1, "one", 10, payload(0xA1, 6000)))
					return err
				})
			},
			model: func(m wlState) { m[1] = payload(0xA1, 6000) },
		},
		{
			name: "insert-2",
			run: func(db *vstore.DB, tbl **vstore.Table) error {
				return inTxn(db, func(tx *vstore.Txn) error {
					_, err := (*tbl).Insert(tx, faultRow(2, "two", 20, payload(0xB2, 9000)))
					return err
				})
			},
			model: func(m wlState) { m[2] = payload(0xB2, 9000) },
		},
		{
			name: "update-1",
			run: func(db *vstore.DB, tbl **vstore.Table) error {
				return inTxn(db, func(tx *vstore.Txn) error {
					return (*tbl).Update(tx, 1, faultRow(1, "one-v2", 11, payload(0xC3, 5000)))
				})
			},
			model: func(m wlState) { m[1] = payload(0xC3, 5000) },
		},
		{
			name: "delete-2",
			run: func(db *vstore.DB, tbl **vstore.Table) error {
				return inTxn(db, func(tx *vstore.Txn) error {
					_, err := (*tbl).Delete(tx, 2)
					return err
				})
			},
			model: func(m wlState) { delete(m, 2) },
		},
		{
			name: "checkpoint",
			run: func(db *vstore.DB, tbl **vstore.Table) error {
				return db.Checkpoint()
			},
			model: func(m wlState) {},
		},
		{
			name: "insert-3-reuse",
			run: func(db *vstore.DB, tbl **vstore.Table) error {
				return inTxn(db, func(tx *vstore.Txn) error {
					_, err := (*tbl).Insert(tx, faultRow(3, "three", 30, payload(0xD4, 7000)))
					return err
				})
			},
			model: func(m wlState) { m[3] = payload(0xD4, 7000) },
		},
		{
			name: "staged-adopt-4",
			run: func(db *vstore.DB, tbl **vstore.Table) error {
				w, err := db.NewStagedBlobWriter()
				if err != nil {
					return err
				}
				if _, err := w.Write(payload(0xE5, 8000)); err != nil {
					w.Discard()
					return err
				}
				ref, err := w.Close()
				if err != nil {
					w.Discard()
					return err
				}
				err = inTxn(db, func(tx *vstore.Txn) error {
					if err := tx.AdoptStaged(w); err != nil {
						return err
					}
					row := faultRow(4, "four", 40, nil)
					row[3] = vstore.BlobRefV(ref)
					_, err := (*tbl).Insert(tx, row)
					return err
				})
				if err != nil {
					w.Discard()
				}
				return err
			},
			model: func(m wlState) { m[4] = payload(0xE5, 8000) },
		},
	}
}

// runWorkload executes the script over fs, returning how many steps fully
// completed before the first error (which, under an injected fault, is the
// crash point).
func runWorkload(fs *faultfs.FS) (completed int, firstErr error) {
	db, err := vstore.Open("sweep.db", &vstore.Options{FS: fs, CachePages: 8})
	if err != nil {
		return 0, err
	}
	var tbl *vstore.Table
	for _, s := range wlSteps() {
		if err := s.run(db, &tbl); err != nil {
			_ = db.Close() // best effort: handles may be stale or degraded
			return completed, err
		}
		completed++
	}
	return completed, db.Close()
}

// expectedStates returns the model state after each step prefix:
// states[P] is the state once steps[0:P] have committed.
func expectedStates() []wlState {
	steps := wlSteps()
	states := make([]wlState, len(steps)+1)
	cur := wlState{}
	states[0] = wlState{}
	for i, s := range steps {
		s.model(cur)
		snap := wlState{}
		for k, v := range cur {
			snap[k] = v
		}
		states[i+1] = snap
	}
	return states
}

// matchState reports every step prefix the reopened DB's state could
// correspond to. Adjacent prefixes can be indistinguishable (checkpoint
// changes no logical state), so the result is a set, not a single index.
// Prefix 0 presents as "no table" (nothing ever became durable).
func matchState(db *vstore.DB, states []wlState) []int {
	tbl, err := db.Table("T")
	if err != nil {
		return []int{0}
	}
	n, err := tbl.Count(nil)
	if err != nil {
		return nil
	}
	// The table exists, so step 1 committed: only prefixes >= 1 qualify
	// (prefix 1 is an empty table, distinct from prefix 0's absent table).
	var matches []int
	for p := 1; p < len(states); p++ {
		want := states[p]
		if len(want) != n {
			continue
		}
		ok := true
		for pk, wantPayload := range want {
			row, found, err := tbl.Get(nil, pk)
			if err != nil || !found {
				ok = false
				break
			}
			var got []byte
			if !row[3].Null && !row[3].Blob.IsZero() {
				got, err = db.ReadBlob(nil, row[3].Blob)
				if err != nil {
					ok = false
					break
				}
			}
			if !bytes.Equal(got, wantPayload) {
				ok = false
				break
			}
		}
		if ok {
			matches = append(matches, p)
		}
	}
	return matches
}

// sweepTrial re-runs the workload with `act` armed at op index `at`, then
// reopens, fscks, matches the surviving state against the committed-prefix
// ladder and proves the store is still writable.
func sweepTrial(t *testing.T, at int, act faultfs.Action, label string) {
	t.Helper()
	fs := faultfs.New()
	fired := false
	fs.SetInjector(func(op faultfs.Op) faultfs.Action {
		if !fired && op.Index == at {
			fired = true
			return act
		}
		return faultfs.ActNone
	})
	completed, _ := runWorkload(fs)
	fs.SetInjector(nil)

	db, err := vstore.Open("sweep.db", &vstore.Options{FS: fs, CachePages: 8})
	if err != nil {
		t.Fatalf("%s@%d: reopen failed: %v", label, at, err)
	}
	defer db.Close()
	rep, err := vstore.Check(db)
	if err != nil {
		t.Fatalf("%s@%d: fsck: %v", label, at, err)
	}
	if !rep.Clean() {
		t.Fatalf("%s@%d: fsck problems: %v", label, at, rep.Problems)
	}
	matches := matchState(db, expectedStates())
	if len(matches) == 0 {
		t.Fatalf("%s@%d: surviving state matches no committed prefix (completed=%d)", label, at, completed)
	}
	ok := false
	for _, p := range matches {
		// All steps whose commit returned success must survive; at most the
		// one in-flight step may additionally have become durable.
		if p >= completed && p <= completed+1 {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("%s@%d: survived prefixes %v, but %d steps had committed", label, at, matches, completed)
	}
	// Salvaged store must accept new writes.
	if tbl, err := db.Table("T"); err == nil {
		if err := commitRow(t, db, tbl, 99, []byte("probe")); err != nil {
			t.Fatalf("%s@%d: probe commit on salvaged store: %v", label, at, err)
		}
	}
}

// TestPowerLossSweep is the fault matrix: it records the workload's op
// trace once, then replays it once per fault point.
func TestPowerLossSweep(t *testing.T) {
	// Recording pass: capture every op the clean workload performs.
	fs := faultfs.New()
	var ops []faultfs.Op
	fs.SetInjector(func(op faultfs.Op) faultfs.Action {
		ops = append(ops, op)
		return faultfs.ActNone
	})
	completed, err := runWorkload(fs)
	fs.SetInjector(nil)
	if err != nil || completed != len(wlSteps()) {
		t.Fatalf("clean workload: completed=%d err=%v", completed, err)
	}
	db, err := vstore.Open("sweep.db", &vstore.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	finalMatches := matchState(db, expectedStates())
	finalOK := false
	for _, p := range finalMatches {
		if p == len(wlSteps()) {
			finalOK = true
		}
	}
	if !finalOK {
		t.Fatalf("clean workload final state matches prefixes %v", finalMatches)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	var cuts, torn, errs, nospc int
	for _, op := range ops {
		switch op.Kind {
		case faultfs.OpSync, faultfs.OpSyncDir:
			cuts++
			sweepTrial(t, op.Index, faultfs.ActPowerCut, "powercut")
			errs++
			sweepTrial(t, op.Index, faultfs.ActErr, "syncfail")
		case faultfs.OpWrite:
			torn++
			sweepTrial(t, op.Index, faultfs.ActTornWrite, "torn")
			errs++
			sweepTrial(t, op.Index, faultfs.ActErr, "ioerr")
			if op.Index%2 == 0 {
				nospc++
				sweepTrial(t, op.Index, faultfs.ActENOSPC, "enospc")
			} else {
				nospc++
				sweepTrial(t, op.Index, faultfs.ActShortWrite, "shortwrite")
			}
		case faultfs.OpRead, faultfs.OpTruncate:
			errs++
			sweepTrial(t, op.Index, faultfs.ActErr, "ioerr")
		}
	}
	total := cuts + torn + errs + nospc
	// CI greps for this line: silent coverage loss must be visible.
	t.Logf("power-loss sweep fault points: %d (power cuts %d, torn writes %d, io/sync errors %d, enospc/short %d over %d recorded ops)",
		total, cuts, torn, errs, nospc, len(ops))
	if total < 100 {
		t.Fatalf("suspiciously small fault matrix: %d points", total)
	}
}
