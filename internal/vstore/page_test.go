package vstore

import (
	"bytes"
	"math/rand"
	"testing"
)

func newTestPage() *Page {
	p := &Page{id: 7, data: make([]byte, PageSize)}
	initSlotted(p)
	return p
}

func TestSlottedInsertGet(t *testing.T) {
	p := newTestPage()
	recs := [][]byte{[]byte("alpha"), []byte("bravo-longer"), {}, []byte("charlie")}
	slots := make([]int, len(recs))
	for i, r := range recs {
		s, err := p.slottedInsert(r)
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		slots[i] = s
	}
	for i, r := range recs {
		got, err := p.slottedGet(slots[i])
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, r) {
			t.Errorf("slot %d: got %q want %q", slots[i], got, r)
		}
	}
}

func TestSlottedDeleteReuse(t *testing.T) {
	p := newTestPage()
	s0, _ := p.slottedInsert([]byte("one"))
	s1, err := p.slottedInsert([]byte("two"))
	if err != nil {
		t.Fatal(err)
	}
	empty, err := p.slottedDelete(s0)
	if err != nil {
		t.Fatal(err)
	}
	if empty {
		t.Error("page reported empty with a live record")
	}
	// Reinsert reuses the dead slot.
	s2, err := p.slottedInsert([]byte("three"))
	if err != nil {
		t.Fatal(err)
	}
	if s2 != s0 {
		t.Errorf("expected dead slot %d reuse, got %d", s0, s2)
	}
	if _, err := p.slottedGet(s0); err != nil {
		t.Errorf("reused slot unreadable: %v", err)
	}
	empty, err = p.slottedDelete(s1)
	if err != nil || empty {
		t.Fatalf("delete s1: empty=%v err=%v", empty, err)
	}
	empty, err = p.slottedDelete(s2)
	if err != nil {
		t.Fatal(err)
	}
	if !empty {
		t.Error("page should be empty after deleting all records")
	}
}

func TestSlottedDeleteErrors(t *testing.T) {
	p := newTestPage()
	if _, err := p.slottedDelete(0); err == nil {
		t.Error("delete of missing slot should fail")
	}
	s, _ := p.slottedInsert([]byte("x"))
	if _, err := p.slottedDelete(s); err != nil {
		t.Fatal(err)
	}
	if _, err := p.slottedDelete(s); err == nil {
		t.Error("double delete should fail")
	}
	if _, err := p.slottedGet(s); err == nil {
		t.Error("get of dead slot should fail")
	}
	if _, err := p.slottedGet(99); err == nil {
		t.Error("get of out-of-range slot should fail")
	}
}

func TestSlottedFillsAndReportsFull(t *testing.T) {
	p := newTestPage()
	rec := make([]byte, 100)
	n := 0
	for {
		if p.slottedFree() < len(rec) {
			break
		}
		if _, err := p.slottedInsert(rec); err != nil {
			t.Fatalf("insert %d claimed free space but failed: %v", n, err)
		}
		n++
	}
	if n < (PageSize-offSlots)/(100+slotSize)-1 {
		t.Errorf("only %d records fit", n)
	}
	if _, err := p.slottedInsert(make([]byte, 200)); err == nil {
		t.Error("insert into full page should fail")
	}
}

func TestSlottedCompactionReclaimsHoles(t *testing.T) {
	p := newTestPage()
	var slots []int
	rec := make([]byte, 200)
	for p.slottedFree() >= len(rec) {
		s, err := p.slottedInsert(rec)
		if err != nil {
			t.Fatal(err)
		}
		slots = append(slots, s)
	}
	// Free every other record, leaving holes.
	kept := make(map[int][]byte)
	for i, s := range slots {
		if i%2 == 0 {
			if _, err := p.slottedDelete(s); err != nil {
				t.Fatal(err)
			}
		} else {
			data, _ := p.slottedGet(s)
			cp := make([]byte, len(data))
			copy(cp, data)
			rand.New(rand.NewSource(int64(i))).Read(cp)
			// Write a distinct pattern through the page to catch
			// compaction corruption.
			live, _ := p.slottedGet(s)
			copy(live, cp)
			kept[s] = cp
		}
	}
	// This insert only fits after compaction gathers the holes.
	big := make([]byte, 600)
	if _, err := p.slottedInsert(big); err != nil {
		t.Fatalf("insert after holes: %v", err)
	}
	for s, want := range kept {
		got, err := p.slottedGet(s)
		if err != nil {
			t.Fatalf("slot %d after compaction: %v", s, err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("slot %d corrupted by compaction", s)
		}
	}
}

func TestRecordTooLarge(t *testing.T) {
	p := newTestPage()
	if _, err := p.slottedInsert(make([]byte, maxRecordSize+1)); err == nil {
		t.Error("oversized record should be rejected")
	}
}
