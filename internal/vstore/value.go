package vstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// ColType enumerates column types.
type ColType uint8

// Column types. Blob columns are stored out-of-row as page chains and
// surface as BlobRef values; use DB.ReadBlob to fetch their bytes.
const (
	TypeInt64 ColType = iota + 1
	TypeFloat64
	TypeText
	TypeBytes
	TypeBlob
	TypeTime
)

func (t ColType) String() string {
	switch t {
	case TypeInt64:
		return "INT64"
	case TypeFloat64:
		return "FLOAT64"
	case TypeText:
		return "TEXT"
	case TypeBytes:
		return "BYTES"
	case TypeBlob:
		return "BLOB"
	case TypeTime:
		return "TIME"
	default:
		return fmt.Sprintf("coltype(%d)", uint8(t))
	}
}

// Value is a dynamically typed cell. The zero Value is an untyped NULL.
type Value struct {
	Type  ColType
	Null  bool
	Int   int64
	Float float64
	Str   string
	Bytes []byte
	Blob  BlobRef
	Time  time.Time

	// overflowText marks a TEXT value stored out-of-row (TOAST-style):
	// Blob carries the chain reference and Str is empty until a read
	// resolves it. Set internally when a text value exceeds
	// textOverflowThreshold.
	overflowText bool
}

// textOverflowThreshold is the largest TEXT payload kept inline in the
// row record. Longer strings (the paper's VARCHAR2(1500) feature columns
// routinely exceed a quarter page) move to overflow blob chains so rows
// always fit a page.
const textOverflowThreshold = 256

// Int64 builds an INT64 value.
func Int64(v int64) Value { return Value{Type: TypeInt64, Int: v} }

// Float64V builds a FLOAT64 value.
func Float64V(v float64) Value { return Value{Type: TypeFloat64, Float: v} }

// Text builds a TEXT value.
func Text(s string) Value { return Value{Type: TypeText, Str: s} }

// BytesV builds a BYTES value.
func BytesV(b []byte) Value { return Value{Type: TypeBytes, Bytes: b} }

// Blob builds a BLOB value from raw bytes to be written out-of-row at
// insert/update time.
func Blob(b []byte) Value { return Value{Type: TypeBlob, Bytes: b} }

// BlobRefV builds a BLOB value from an already-written chain reference
// (e.g. one produced by a BlobWriter); insert and update store the
// reference as-is without copying or rewriting the chain.
func BlobRefV(ref BlobRef) Value { return Value{Type: TypeBlob, Blob: ref} }

// TimeV builds a TIME value.
func TimeV(t time.Time) Value { return Value{Type: TypeTime, Time: t} }

// NullV builds a typed NULL.
func NullV(t ColType) Value { return Value{Type: t, Null: true} }

// rowCodec encodes rows as: null bitmap, then per non-null column a
// type-specific payload. Column count and types come from the schema.
func encodeRow(schema *Schema, row []Value) ([]byte, error) {
	if len(row) != len(schema.Cols) {
		return nil, fmt.Errorf("vstore: row has %d values, schema %q wants %d", len(row), schema.Name, len(schema.Cols))
	}
	nb := (len(row) + 7) / 8
	buf := make([]byte, nb, nb+len(row)*9)
	var tmp [binary.MaxVarintLen64]byte
	for i, v := range row {
		col := schema.Cols[i]
		if v.Null {
			if col.NotNull {
				return nil, fmt.Errorf("vstore: column %s.%s is NOT NULL", schema.Name, col.Name)
			}
			buf[i/8] |= 1 << (i % 8)
			continue
		}
		if v.Type != col.Type {
			return nil, fmt.Errorf("vstore: column %s.%s wants %v, got %v", schema.Name, col.Name, col.Type, v.Type)
		}
		switch col.Type {
		case TypeInt64:
			n := binary.PutVarint(tmp[:], v.Int)
			buf = append(buf, tmp[:n]...)
		case TypeFloat64:
			var b [8]byte
			binary.BigEndian.PutUint64(b[:], math.Float64bits(v.Float))
			buf = append(buf, b[:]...)
		case TypeText:
			if v.overflowText {
				buf = append(buf, 1)
				var b [4]byte
				binary.BigEndian.PutUint32(b[:], uint32(v.Blob.First))
				buf = append(buf, b[:]...)
				n := binary.PutUvarint(tmp[:], uint64(v.Blob.Len))
				buf = append(buf, tmp[:n]...)
				break
			}
			buf = append(buf, 0)
			n := binary.PutUvarint(tmp[:], uint64(len(v.Str)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, v.Str...)
		case TypeBytes:
			n := binary.PutUvarint(tmp[:], uint64(len(v.Bytes)))
			buf = append(buf, tmp[:n]...)
			buf = append(buf, v.Bytes...)
		case TypeBlob:
			// By encode time the blob has been written out-of-row and the
			// value carries its reference.
			var b [4]byte
			binary.BigEndian.PutUint32(b[:], uint32(v.Blob.First))
			buf = append(buf, b[:]...)
			n := binary.PutUvarint(tmp[:], uint64(v.Blob.Len))
			buf = append(buf, tmp[:n]...)
		case TypeTime:
			n := binary.PutVarint(tmp[:], v.Time.UnixNano())
			buf = append(buf, tmp[:n]...)
		default:
			return nil, fmt.Errorf("vstore: column %s.%s has unknown type %v", schema.Name, col.Name, col.Type)
		}
	}
	return buf, nil
}

func decodeRow(schema *Schema, rec []byte) ([]Value, error) {
	ncols := len(schema.Cols)
	nb := (ncols + 7) / 8
	if len(rec) < nb {
		return nil, fmt.Errorf("vstore: record too short for %q null bitmap", schema.Name)
	}
	bitmap := rec[:nb]
	pos := nb
	row := make([]Value, ncols)
	for i, col := range schema.Cols {
		if bitmap[i/8]&(1<<(i%8)) != 0 {
			if col.NotNull {
				return nil, fmt.Errorf("vstore: corrupt record: NULL in NOT NULL column %s.%s", schema.Name, col.Name)
			}
			row[i] = NullV(col.Type)
			continue
		}
		switch col.Type {
		case TypeInt64:
			v, n := binary.Varint(rec[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("vstore: bad varint in %s.%s", schema.Name, col.Name)
			}
			pos += n
			row[i] = Int64(v)
		case TypeFloat64:
			if pos+8 > len(rec) {
				return nil, fmt.Errorf("vstore: truncated float in %s.%s", schema.Name, col.Name)
			}
			row[i] = Float64V(math.Float64frombits(binary.BigEndian.Uint64(rec[pos:])))
			pos += 8
		case TypeText:
			if pos >= len(rec) {
				return nil, fmt.Errorf("vstore: truncated text flag in %s.%s", schema.Name, col.Name)
			}
			flag := rec[pos]
			pos++
			if flag == 1 {
				if pos+4 > len(rec) {
					return nil, fmt.Errorf("vstore: truncated text overflow ref in %s.%s", schema.Name, col.Name)
				}
				first := PageID(binary.BigEndian.Uint32(rec[pos:]))
				pos += 4
				l, n := binary.Uvarint(rec[pos:])
				if n <= 0 || l > math.MaxInt64 {
					return nil, fmt.Errorf("vstore: bad text overflow length in %s.%s", schema.Name, col.Name)
				}
				pos += n
				row[i] = Value{Type: TypeText, Blob: BlobRef{First: first, Len: int64(l)}, overflowText: true}
				continue
			}
			l, n := binary.Uvarint(rec[pos:])
			// Compare in uint64 space: a corrupt huge length must not wrap
			// negative through int conversion and slip past the check.
			if n <= 0 || l > uint64(len(rec)-pos-n) {
				return nil, fmt.Errorf("vstore: truncated string in %s.%s", schema.Name, col.Name)
			}
			pos += n
			row[i] = Text(string(rec[pos : pos+int(l)]))
			pos += int(l)
		case TypeBytes:
			l, n := binary.Uvarint(rec[pos:])
			if n <= 0 || l > uint64(len(rec)-pos-n) {
				return nil, fmt.Errorf("vstore: truncated string in %s.%s", schema.Name, col.Name)
			}
			pos += n
			b := make([]byte, l)
			copy(b, rec[pos:pos+int(l)])
			row[i] = BytesV(b)
			pos += int(l)
		case TypeBlob:
			if pos+4 > len(rec) {
				return nil, fmt.Errorf("vstore: truncated blob ref in %s.%s", schema.Name, col.Name)
			}
			first := PageID(binary.BigEndian.Uint32(rec[pos:]))
			pos += 4
			l, n := binary.Uvarint(rec[pos:])
			if n <= 0 || l > math.MaxInt64 {
				return nil, fmt.Errorf("vstore: bad blob length in %s.%s", schema.Name, col.Name)
			}
			pos += n
			row[i] = Value{Type: TypeBlob, Blob: BlobRef{First: first, Len: int64(l)}}
		case TypeTime:
			v, n := binary.Varint(rec[pos:])
			if n <= 0 {
				return nil, fmt.Errorf("vstore: bad time in %s.%s", schema.Name, col.Name)
			}
			pos += n
			row[i] = TimeV(time.Unix(0, v).UTC())
		default:
			return nil, fmt.Errorf("vstore: column %s.%s has unknown type %v", schema.Name, col.Name, col.Type)
		}
	}
	return row, nil
}
