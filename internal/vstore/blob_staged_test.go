package vstore

import (
	"bytes"
	"io"
	"path/filepath"
	"sync"
	"testing"
)

// TestStagedBlobRoundTrip stages chains of many sizes outside any
// transaction, adopts them in a short commit, and reads them back — both
// live and after a reopen (proving the WAL made the adopted pages
// durable).
func TestStagedBlobRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "staged.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	sizes := []int{0, 1, blobChunkMax - 1, blobChunkMax, blobChunkMax + 1, 5*blobChunkMax + 321}
	refs := make([]BlobRef, len(sizes))
	for i, size := range sizes {
		want := streamPattern(size)
		w, err := db.NewStagedBlobWriter()
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(want); err != nil {
			t.Fatalf("size %d: write: %v", size, err)
		}
		ref, err := w.Close()
		if err != nil {
			t.Fatalf("size %d: close: %v", size, err)
		}
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.AdoptStaged(w); err != nil {
			t.Fatalf("size %d: adopt: %v", size, err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("size %d: commit: %v", size, err)
		}
		got, err := io.ReadAll(db.NewBlobReader(nil, ref))
		if err != nil {
			t.Fatalf("size %d: read: %v", size, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("size %d: round trip mismatch", size)
		}
		refs[i] = ref
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	for i, size := range sizes {
		got, err := io.ReadAll(db2.NewBlobReader(nil, refs[i]))
		if err != nil {
			t.Fatalf("size %d: reopened read: %v", size, err)
		}
		if !bytes.Equal(got, streamPattern(size)) {
			t.Fatalf("size %d: reopened mismatch", size)
		}
	}
}

// TestStagedBlobDiscard discards a staged chain and verifies the store
// stays closeable and reopenable — the pages are unreachable garbage, not
// dangling state.
func TestStagedBlobDiscard(t *testing.T) {
	path := filepath.Join(t.TempDir(), "discard.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := db.NewStagedBlobWriter()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(streamPattern(3 * blobChunkMax)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w.Discard()
	w.Discard() // idempotent
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen after discard: %v", err)
	}
	db2.Close()
}

// TestStagedBlobLifecycleErrors covers the misuse surface: adopting an
// unclosed or discarded chain, writing after Discard, and closing the DB
// while a stager is active.
func TestStagedBlobLifecycleErrors(t *testing.T) {
	db := openTestDB(t, nil)

	w, err := db.NewStagedBlobWriter()
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AdoptStaged(w); err == nil {
		t.Error("adopt before Close succeeded")
	}
	ntx := db.NewBlobWriter(tx)
	if err := tx.AdoptStaged(ntx); err == nil {
		t.Error("adopt of non-staged writer succeeded")
	}
	tx.Abort()

	if err := db.Close(); err == nil {
		t.Fatal("Close with active stager succeeded")
	}

	w.Discard()
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after Discard succeeded")
	}
	tx2, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.AdoptStaged(w); err == nil {
		t.Error("adopt of discarded chain succeeded")
	}
	tx2.Abort()
}

// TestStagedBlobWhileTxnOpen pins the property the server's upload spool
// depends on: creating, filling and closing a staged writer must not block
// while another transaction holds the writer lock. The staged chain is
// then adopted by that very transaction. (An earlier draft registered
// stagers under the DB lock, which deadlocked exactly here.)
func TestStagedBlobWhileTxnOpen(t *testing.T) {
	db := openTestDB(t, nil)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	want := streamPattern(2*blobChunkMax + 99)
	w, err := db.NewStagedBlobWriter() // single goroutine: would deadlock if staging needed any DB lock
	if err != nil {
		tx.Abort()
		t.Fatal(err)
	}
	if _, err := w.Write(want); err != nil {
		t.Fatal(err)
	}
	ref, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.AdoptStaged(w); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(db.NewBlobReader(nil, ref))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("staged-while-txn-open chain mismatch")
	}
}

// TestStagedBlobConcurrentWithWriter is the race exercise behind the
// multi-client upload spool: several goroutines stage chains while another
// goroutine runs ordinary committing transactions against the same DB.
// Staging must make progress without the writer lock, and every adopted
// chain must read back intact.
func TestStagedBlobConcurrentWithWriter(t *testing.T) {
	db := openTestDB(t, &Options{CachePages: 32})
	const stagers = 4
	payload := streamPattern(7*blobChunkMax + 13)

	var wg sync.WaitGroup
	refs := make([]BlobRef, stagers)
	errs := make([]error, stagers)
	for g := 0; g < stagers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			w, err := db.NewStagedBlobWriter()
			if err != nil {
				errs[g] = err
				return
			}
			for off := 0; off < len(payload); off += 333 {
				end := off + 333
				if end > len(payload) {
					end = len(payload)
				}
				if _, err := w.Write(payload[off:end]); err != nil {
					errs[g] = err
					w.Discard()
					return
				}
			}
			ref, err := w.Close()
			if err != nil {
				errs[g] = err
				w.Discard()
				return
			}
			tx, err := db.Begin()
			if err != nil {
				errs[g] = err
				w.Discard()
				return
			}
			if err := tx.AdoptStaged(w); err != nil {
				tx.Abort()
				errs[g] = err
				return
			}
			if err := tx.Commit(); err != nil {
				errs[g] = err
				return
			}
			refs[g] = ref
		}(g)
	}
	// Concurrent ordinary transactions churning the free list and cache.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tx, err := db.Begin()
			if err != nil {
				t.Error(err)
				return
			}
			first, err := db.writeBlobChain(tx, streamPattern(2*blobChunkMax))
			if err != nil {
				tx.Abort()
				t.Error(err)
				return
			}
			if err := db.freeBlobChain(tx, first); err != nil {
				tx.Abort()
				t.Error(err)
				return
			}
			if err := tx.Commit(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	for g := 0; g < stagers; g++ {
		if errs[g] != nil {
			t.Fatalf("stager %d: %v", g, errs[g])
		}
		got, err := io.ReadAll(db.NewBlobReader(nil, refs[g]))
		if err != nil {
			t.Fatalf("stager %d: read: %v", g, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("stager %d: payload mismatch", g)
		}
	}
}
