package vstore

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

// modelRow is the in-memory oracle for one table row.
type modelRow struct {
	name string
	rank int64
	blob []byte
}

// TestTableModelRandomOps drives the full table stack (heap, pk index,
// secondary index, blobs, overflow text, transactions with aborts and
// crash-recovery reopen) through a long random schedule, cross-checking
// every observable against an in-memory map model.
func TestTableModelRandomOps(t *testing.T) {
	path := filepath.Join(t.TempDir(), "model.db")
	db, err := Open(path, &Options{CachePages: 64}) // small cache → real eviction
	if err != nil {
		t.Fatal(err)
	}
	defer func() { db.Close() }()
	tx, _ := db.Begin()
	tbl, err := db.CreateTable(tx, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	model := make(map[int64]modelRow)
	rng := rand.New(rand.NewSource(20240611))
	longName := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(26))
		}
		return string(b)
	}

	verify := func(stage string) {
		t.Helper()
		n, err := tbl.Count(nil)
		if err != nil {
			t.Fatalf("%s: count: %v", stage, err)
		}
		if n != len(model) {
			t.Fatalf("%s: count %d, model %d", stage, n, len(model))
		}
		for pk, want := range model {
			row, ok, err := tbl.Get(nil, pk)
			if err != nil || !ok {
				t.Fatalf("%s: pk %d: ok=%v err=%v", stage, pk, ok, err)
			}
			if row[1].Str != want.name {
				t.Fatalf("%s: pk %d name mismatch (%d vs %d bytes)", stage, pk, len(row[1].Str), len(want.name))
			}
			if row[6].Int != want.rank {
				t.Fatalf("%s: pk %d rank %d, want %d", stage, pk, row[6].Int, want.rank)
			}
			if want.blob != nil {
				got, err := db.ReadBlob(nil, row[4].Blob)
				if err != nil || len(got) != len(want.blob) {
					t.Fatalf("%s: pk %d blob: len %d want %d err=%v", stage, pk, len(got), len(want.blob), err)
				}
			}
		}
		// Secondary index agrees with the model per rank bucket.
		perRank := make(map[int64]int)
		for _, m := range model {
			perRank[m.rank]++
		}
		for rank, want := range perRank {
			lo, hi, _ := IndexPrefixRange([]int64{rank})
			got := 0
			if err := tbl.IndexScan(nil, "BY_RANK", lo, hi, func(int64) (bool, error) {
				got++
				return true, nil
			}); err != nil {
				t.Fatalf("%s: index scan: %v", stage, err)
			}
			if got != want {
				t.Fatalf("%s: rank %d index has %d entries, want %d", stage, rank, got, want)
			}
		}
	}

	pks := func() []int64 {
		out := make([]int64, 0, len(model))
		for pk := range model {
			out = append(out, pk)
		}
		return out
	}

	for round := 0; round < 60; round++ {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		abort := rng.Intn(5) == 0
		staged := make(map[int64]*modelRow) // nil value = delete
		for op := 0; op < 1+rng.Intn(6); op++ {
			switch rng.Intn(3) {
			case 0: // insert (sometimes with overflow-length name / blob)
				m := modelRow{name: longName(rng.Intn(1200)), rank: int64(rng.Intn(200))}
				if rng.Intn(2) == 0 {
					m.blob = make([]byte, rng.Intn(10000))
				}
				pk, err := tbl.Insert(tx, sampleRow(0, m.name, m.rank, m.blob))
				if err != nil {
					t.Fatalf("round %d insert: %v", round, err)
				}
				staged[pk] = &m
			case 1: // update a live row
				cands := pks()
				for pk, m := range staged {
					if m != nil {
						cands = append(cands, pk)
					}
				}
				if len(cands) == 0 {
					continue
				}
				pk := cands[rng.Intn(len(cands))]
				if m, inStage := staged[pk]; inStage && m == nil {
					continue // deleted this txn
				}
				row, ok, err := tbl.Get(tx, pk)
				if err != nil || !ok {
					t.Fatalf("round %d get for update %d: ok=%v err=%v", round, pk, ok, err)
				}
				m := modelRow{name: longName(rng.Intn(1200)), rank: int64(rng.Intn(200))}
				row[1] = Text(m.name)
				row[6] = Int64(m.rank)
				if prev, inStage := staged[pk]; inStage && prev != nil && prev.blob != nil {
					m.blob = prev.blob
				} else if prev, inModel := model[pk]; !inStage && inModel {
					m.blob = prev.blob
				}
				if err := tbl.Update(tx, pk, row); err != nil {
					t.Fatalf("round %d update %d: %v", round, pk, err)
				}
				staged[pk] = &m
			case 2: // delete a live row
				cands := pks()
				if len(cands) == 0 {
					continue
				}
				pk := cands[rng.Intn(len(cands))]
				if _, inStage := staged[pk]; inStage {
					continue
				}
				ok, err := tbl.Delete(tx, pk)
				if err != nil || !ok {
					t.Fatalf("round %d delete %d: ok=%v err=%v", round, pk, ok, err)
				}
				staged[pk] = nil
			}
		}
		if abort {
			tx.Abort()
		} else {
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			for pk, m := range staged {
				if m == nil {
					delete(model, pk)
				} else {
					model[pk] = *m
				}
			}
		}
		if round%15 == 14 {
			verify(fmt.Sprintf("round %d", round))
		}
		// Periodically checkpoint or crash+reopen to exercise recovery.
		switch round {
		case 20:
			if err := db.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		case 40:
			db.SimulateCrash()
			db, err = Open(path, &Options{CachePages: 64})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			tbl, err = db.Table("T")
			if err != nil {
				t.Fatal(err)
			}
			verify("post-crash")
		}
	}
	verify("final")
}
