package vstore

import (
	"fmt"
)

// Blob pages chain through the common header link field and store a chunk
// length at [16:18) followed by payload bytes. The chain's total length
// lives with the reference (in the owning row or the meta page), not in
// the chain itself.
const (
	offBlobLen   = hdrCommon
	blobDataOff  = hdrCommon + 2
	blobChunkMax = PageSize - blobDataOff
)

// BlobRef locates an out-of-row value.
type BlobRef struct {
	First PageID `json:"first"`
	Len   int64  `json:"len"`
}

// IsZero reports whether the reference points at nothing.
func (r BlobRef) IsZero() bool { return r.First == invalidPage && r.Len == 0 }

// writeBlobChain stores data across freshly allocated blob pages and
// returns the first page of the chain. Zero-length blobs occupy one page
// so that the reference remains addressable.
func (db *DB) writeBlobChain(tx *Txn, data []byte) (PageID, error) {
	var first, prev *Page
	remaining := data
	for {
		p, err := db.allocPage(tx)
		if err != nil {
			return invalidPage, err
		}
		p.SetType(pageTypeBlob)
		chunk := len(remaining)
		if chunk > blobChunkMax {
			chunk = blobChunkMax
		}
		putU16(p.data[offBlobLen:], uint16(chunk))
		copy(p.data[blobDataOff:], remaining[:chunk])
		remaining = remaining[chunk:]
		if first == nil {
			first = p
		}
		if prev != nil {
			prev.SetLink(p.id)
		}
		prev = p
		if len(remaining) == 0 {
			break
		}
	}
	return first.id, nil
}

// readBlobChain reassembles a blob of the given total length starting at
// first.
func (db *DB) readBlobChain(first PageID, length int64) ([]byte, error) {
	out := make([]byte, 0, length)
	id := first
	for int64(len(out)) < length {
		if id == invalidPage {
			return nil, fmt.Errorf("vstore: blob chain truncated at %d/%d bytes", len(out), length)
		}
		p, err := db.pager.get(id)
		if err != nil {
			return nil, err
		}
		if p.Type() != pageTypeBlob {
			return nil, fmt.Errorf("vstore: page %d in blob chain has type %d", id, p.Type())
		}
		chunk := int(getU16(p.data[offBlobLen:]))
		if chunk > blobChunkMax {
			return nil, fmt.Errorf("vstore: blob page %d chunk %d too large", id, chunk)
		}
		out = append(out, p.data[blobDataOff:blobDataOff+chunk]...)
		id = p.Link()
	}
	if int64(len(out)) != length {
		return nil, fmt.Errorf("vstore: blob chain yielded %d bytes, want %d", len(out), length)
	}
	return out, nil
}

// freeBlobChain returns every page of the chain to the free list.
func (db *DB) freeBlobChain(tx *Txn, first PageID) error {
	id := first
	for id != invalidPage {
		p, err := db.pager.get(id)
		if err != nil {
			return err
		}
		next := p.Link() // read before freePage zeroes the page
		if err := db.freePage(tx, p); err != nil {
			return err
		}
		id = next
	}
	return nil
}
