package vstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Blob pages chain through the common header link field and store a chunk
// length at [16:18), a CRC-32C of the chunk payload at [18:22), then the
// payload bytes. The chain's total length lives with the reference (in
// the owning row or the meta page), not in the chain itself.
//
// The checksum is written when a page is sealed (its chunk is final:
// BlobWriter.advance / Close) and verified on every page fetch of a
// read — blob pages hold the corpus's bulk media bytes, live longest on
// disk, and a flipped payload bit would otherwise decode as silently
// corrupt JPEG/container data rather than erroring.
const (
	offBlobLen   = hdrCommon
	offBlobCRC   = hdrCommon + 2
	blobDataOff  = hdrCommon + 6
	blobChunkMax = PageSize - blobDataOff
)

// blobCRCTable is the Castagnoli polynomial (hardware-accelerated on
// amd64/arm64).
var blobCRCTable = crc32.MakeTable(crc32.Castagnoli)

// blobPageCRC hashes a blob page's current chunk payload.
func blobPageCRC(p *Page) uint32 {
	chunk := int(getU16(p.data[offBlobLen:]))
	if chunk > blobChunkMax {
		chunk = blobChunkMax // corrupt length; the reader errors before trusting the CRC
	}
	return crc32.Checksum(p.data[blobDataOff:blobDataOff+chunk], blobCRCTable)
}

// BlobRef locates an out-of-row value.
type BlobRef struct {
	First PageID `json:"first"`
	Len   int64  `json:"len"`
}

// IsZero reports whether the reference points at nothing.
func (r BlobRef) IsZero() bool { return r.First == invalidPage && r.Len == 0 }

// BlobWriter streams a value into a fresh blob page chain one chunk at a
// time, so callers never need the whole value in one []byte. Create one
// with NewBlobWriter (ordinary transactional pages) or NewSpooledBlobWriter
// (large streams; see that constructor), Write the bytes, then Close to
// obtain the BlobRef to store in a row — Table.Insert and Table.Update
// accept Value{Type: TypeBlob, Blob: ref} (see BlobRefV) and leave the
// pre-written chain untouched.
type BlobWriter struct {
	db      *DB
	tx      *Txn
	spooled bool

	// staged marks a writer created by NewStagedBlobWriter: it runs
	// outside any transaction (and outside the DB writer lock), owns its
	// page images privately and must end in exactly one of Txn.AdoptStaged
	// or Discard.
	staged    bool
	pages     []PageID // every page of a staged chain, for adoption
	adopted   bool
	discarded bool

	first  PageID
	cur    *Page // page currently being filled
	curLen int   // payload bytes in cur
	n      int64 // total bytes written
	closed bool
	err    error
}

// NewBlobWriter returns a chunked writer appending to a new blob chain
// inside tx. Pages come from the ordinary transactional allocator (free
// list first), carry full before-images and stay pinned until the
// transaction finishes — right for catalog-sized values, but a value
// larger than the buffer pool should use NewSpooledBlobWriter.
func (db *DB) NewBlobWriter(tx *Txn) *BlobWriter {
	return &BlobWriter{db: db, tx: tx}
}

// NewSpooledBlobWriter returns a chunked writer whose pages spill to the
// data file as the buffer pool fills, so writing a multi-megabyte stream
// holds O(cache) memory, not O(value). Spooled pages always extend the
// file (never the free list), carry no before-images — on abort or crash
// they become unreachable file garbage, exactly like pages allocated by
// any aborted transaction — and are WAL-logged page by page at commit, so
// recovery semantics match ordinary pages. Only the page being filled is
// pinned.
func (db *DB) NewSpooledBlobWriter(tx *Txn) *BlobWriter {
	return &BlobWriter{db: db, tx: tx, spooled: true}
}

// NewStagedBlobWriter returns a chunked writer that stages a blob chain
// OUTSIDE any transaction — and therefore outside the single-writer lock,
// so any number of stagers can stream concurrently with each other and
// with an active transaction. Pages are fresh file extensions reserved
// through the pager's own mutex, owned privately by the writer (they never
// enter the buffer pool), and written straight to the data file as each
// chunk seals, so a staged stream holds O(1) memory.
//
// The chain is unreachable and non-durable until a transaction adopts it
// (Txn.AdoptStaged) and commits: adoption WAL-logs the pages exactly like
// spooled pages. A chain that will not be committed must be Discarded —
// its pages become unreachable file garbage, the same fate pages allocated
// by an aborted transaction meet. DB.Close refuses to run while staged
// writers are active (Write bytes would race the closing file handle).
//
// Registration takes only the dedicated stager mutex, never the writer
// lock, so a new upload can begin staging while another client's
// transaction is open — the point of staging.
func (db *DB) NewStagedBlobWriter() (*BlobWriter, error) {
	db.stageMu.Lock()
	defer db.stageMu.Unlock()
	if db.stageClosed {
		return nil, ErrClosed
	}
	if err := db.Degraded(); err != nil {
		// A staged chain could only ever be adopted by a transaction, and
		// no transaction can begin while degraded; fail the upload now
		// rather than after it streams gigabytes.
		return nil, err
	}
	db.stagers++
	return &BlobWriter{db: db, staged: true}, nil
}

// Discard abandons a staged chain (idempotent; a no-op after adoption).
// It takes only the stager-registration mutex, never the writer lock, so
// it is safe to call while another transaction is open — the cancellation
// path an aborted upload takes while a concurrent client commits.
func (w *BlobWriter) Discard() {
	if !w.staged || w.discarded || w.adopted {
		return
	}
	w.discarded = true
	w.closed = true
	w.cur = nil
	w.db.stageMu.Lock()
	w.db.stagers--
	w.db.stageMu.Unlock()
}

// AdoptStaged transfers a Closed staged chain into tx: its pages join the
// transaction's spooled set and are WAL-logged at commit, making the chain
// durable if and only if the transaction commits. The BlobRef obtained
// from the writer's Close may then be stored in rows inserted under tx.
func (tx *Txn) AdoptStaged(w *BlobWriter) error {
	if tx.done {
		return ErrTxnDone
	}
	if !w.staged {
		return errors.New("vstore: AdoptStaged of a non-staged blob writer")
	}
	if w.err != nil {
		return w.err
	}
	if w.discarded {
		return errors.New("vstore: AdoptStaged of a discarded blob chain")
	}
	if !w.closed {
		return errors.New("vstore: AdoptStaged before Close")
	}
	if w.adopted {
		return nil
	}
	w.adopted = true
	tx.spooled = append(tx.spooled, w.pages...)
	tx.db.stageMu.Lock()
	tx.db.stagers--
	tx.db.stageMu.Unlock()
	return nil
}

// Write appends p to the chain. It implements io.Writer.
func (w *BlobWriter) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	if w.closed {
		w.err = fmt.Errorf("vstore: blob write after Close")
		return 0, w.err
	}
	written := 0
	for len(p) > 0 {
		if w.cur == nil || w.curLen == blobChunkMax {
			if err := w.advance(); err != nil {
				w.err = err
				return written, err
			}
		}
		c := copy(w.cur.data[blobDataOff+w.curLen:blobDataOff+blobChunkMax], p)
		w.curLen += c
		putU16(w.cur.data[offBlobLen:], uint16(w.curLen))
		p = p[c:]
		written += c
		w.n += int64(c)
	}
	return written, nil
}

// advance seals the current page (if any) and starts a fresh one.
func (w *BlobWriter) advance() error {
	p, err := w.allocNext()
	if err != nil {
		return err
	}
	p.SetType(pageTypeBlob)
	if w.first == invalidPage {
		w.first = p.id
	}
	if w.cur != nil {
		w.cur.SetLink(p.id)
		if err := w.sealCur(); err != nil {
			return err
		}
	}
	w.cur = p
	w.curLen = 0
	return nil
}

// allocNext hands out the chain's next page in the writer's mode.
func (w *BlobWriter) allocNext() (*Page, error) {
	if w.staged {
		// Detached: reserve the id under the pager mutex, but keep the
		// page image private to this writer — it never enters the buffer
		// pool, so staging cannot evict pages a transaction relies on.
		p := &Page{id: w.db.pager.extendDetached(), data: make([]byte, PageSize)}
		w.pages = append(w.pages, p.id)
		return p, nil
	}
	if !w.spooled {
		return w.db.allocPage(w.tx)
	}
	// Spooled: always extend the file so the free list (and its
	// before-image discipline) is never involved, record the page for
	// unconditional WAL logging at commit, and pin only while filling.
	p, err := w.db.pager.allocate()
	if err != nil {
		return nil, err
	}
	// allocate wrote the zeroed image and cleared dirty; the chunk bytes
	// about to land must survive eviction, so re-mark it.
	p.MarkDirty()
	w.tx.spooled = append(w.tx.spooled, p.id)
	p.pins++
	return p, nil
}

// sealCur finalises the just-completed page: its chunk length is now
// final, so the payload checksum is stamped, then spooled pages become
// evictable (the pager may write them to the data file before commit;
// fresh-extension pages are crash-benign there) and staged pages are
// written to their file slot directly — durable only once a transaction
// adopts and WAL-logs them, crash-benign garbage otherwise. Transactional
// pages stay pinned by touch.
func (w *BlobWriter) sealCur() error {
	if w.cur == nil {
		return nil
	}
	binary.BigEndian.PutUint32(w.cur.data[offBlobCRC:], blobPageCRC(w.cur))
	if w.staged {
		return w.db.pager.writeDetached(w.cur)
	}
	if w.spooled {
		w.cur.pins--
	}
	return nil
}

// Close finalises the chain and returns its reference. A zero-length value
// still occupies one page so the reference remains addressable.
func (w *BlobWriter) Close() (BlobRef, error) {
	if w.err != nil {
		return BlobRef{}, w.err
	}
	if w.closed {
		return BlobRef{First: w.first, Len: w.n}, nil
	}
	if w.cur == nil {
		if err := w.advance(); err != nil {
			w.err = err
			return BlobRef{}, err
		}
	}
	if err := w.sealCur(); err != nil {
		w.err = err
		return BlobRef{}, err
	}
	w.closed = true
	return BlobRef{First: w.first, Len: w.n}, nil
}

// writeBlobChain stores data across freshly allocated blob pages and
// returns the first page of the chain, via the chunked writer.
func (db *DB) writeBlobChain(tx *Txn, data []byte) (PageID, error) {
	w := db.NewBlobWriter(tx)
	if _, err := w.Write(data); err != nil {
		return invalidPage, err
	}
	ref, err := w.Close()
	if err != nil {
		return invalidPage, err
	}
	return ref.First, nil
}

// BlobReader streams a blob chain's bytes without materialising them; it
// implements io.Reader. Created by DB.NewBlobReader.
type BlobReader struct {
	db        *DB
	tx        *Txn
	noLock    bool // caller already holds the DB lock
	cur       PageID
	off       int   // consumed bytes of the current page's chunk
	remaining int64 // bytes left per the reference
	err       error
}

// NewBlobReader returns a streaming reader over the referenced chain. With
// tx == nil each Read takes the database read lock, so a long-lived reader
// never blocks writers between calls; a writer that frees or rewrites the
// chain mid-read surfaces as a read error (type mismatch or truncation),
// never as silent corruption. A zero reference reads as empty.
func (db *DB) NewBlobReader(tx *Txn, ref BlobRef) *BlobReader {
	return &BlobReader{db: db, tx: tx, cur: ref.First, remaining: ref.Len}
}

// Read implements io.Reader over the page chain.
func (r *BlobReader) Read(p []byte) (int, error) {
	if r.err != nil {
		return 0, r.err
	}
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	if len(p) == 0 {
		return 0, nil
	}
	if r.tx == nil && !r.noLock {
		r.db.mu.RLock()
		defer r.db.mu.RUnlock()
	}
	n := 0
	for n < len(p) && r.remaining > 0 {
		if r.cur == invalidPage {
			r.err = fmt.Errorf("vstore: blob chain truncated with %d bytes unread", r.remaining)
			if n > 0 {
				return n, nil
			}
			return 0, r.err
		}
		pg, err := r.db.pager.get(r.cur)
		if err != nil {
			r.err = err
			if n > 0 {
				return n, nil
			}
			return 0, err
		}
		if pg.Type() != pageTypeBlob {
			r.err = fmt.Errorf("vstore: page %d in blob chain has type %d", r.cur, pg.Type())
			if n > 0 {
				return n, nil
			}
			return 0, r.err
		}
		chunk := int(getU16(pg.data[offBlobLen:]))
		if chunk > blobChunkMax {
			r.err = fmt.Errorf("vstore: blob page %d chunk %d too large", r.cur, chunk)
			if n > 0 {
				return n, nil
			}
			return 0, r.err
		}
		if chunk == 0 {
			// Only a zero-length blob's single page carries an empty chunk,
			// and that is never read; mid-read it means corruption (and
			// guards against link cycles of empty pages).
			r.err = fmt.Errorf("vstore: blob page %d has empty chunk mid-chain", r.cur)
			if n > 0 {
				return n, nil
			}
			return 0, r.err
		}
		if r.off == 0 {
			// First touch of this page by this reader: verify the sealed
			// payload checksum before handing any of its bytes out.
			if want := binary.BigEndian.Uint32(pg.data[offBlobCRC:]); want != blobPageCRC(pg) {
				r.err = fmt.Errorf("vstore: blob page %d checksum mismatch", r.cur)
				if n > 0 {
					return n, nil
				}
				return 0, r.err
			}
		}
		avail := chunk - r.off
		if int64(avail) > r.remaining {
			avail = int(r.remaining)
		}
		c := copy(p[n:], pg.data[blobDataOff+r.off:blobDataOff+r.off+avail])
		n += c
		r.off += c
		r.remaining -= int64(c)
		if r.off == chunk && r.remaining > 0 {
			r.cur = pg.Link()
			r.off = 0
		}
	}
	return n, nil
}

// readBlobChain reassembles a blob of the given total length starting at
// first. Callers hold the appropriate DB lock.
func (db *DB) readBlobChain(first PageID, length int64) ([]byte, error) {
	if length < 0 {
		return nil, fmt.Errorf("vstore: negative blob length %d", length)
	}
	out := make([]byte, length)
	r := &BlobReader{db: db, noLock: true, cur: first, remaining: length}
	if _, err := io.ReadFull(r, out); err != nil {
		if r.err != nil {
			return nil, r.err
		}
		return nil, fmt.Errorf("vstore: read blob chain: %w", err)
	}
	return out, nil
}

// freeBlobChain returns every page of the chain to the free list.
func (db *DB) freeBlobChain(tx *Txn, first PageID) error {
	id := first
	for id != invalidPage {
		p, err := db.pager.get(id)
		if err != nil {
			return err
		}
		if p.Type() != pageTypeBlob {
			return fmt.Errorf("vstore: freeing page %d of type %d, not a blob page", id, p.Type())
		}
		next := p.Link() // read before freePage zeroes the page
		if err := db.freePage(tx, p); err != nil {
			return err
		}
		id = next
	}
	return nil
}
