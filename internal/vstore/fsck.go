package vstore

import (
	"encoding/binary"
	"fmt"
)

// CheckReport is the result of an offline integrity walk.
type CheckReport struct {
	Pages    int      // pages in the data file, including meta page 0
	Tables   int      // catalogued tables visited
	Rows     int      // live rows decoded
	Problems []string // human-readable corruption findings; empty = clean
}

// Clean reports whether the walk found no corruption.
func (r *CheckReport) Clean() bool { return len(r.Problems) == 0 }

// Check walks the whole database — meta page, free list, catalog blob,
// every table's heap rows, B+tree invariants, secondary-index entries and
// blob chains (CRC-32C verified) — and reports every inconsistency it can
// find without mutating anything. Orphan pages (crash garbage from aborted
// or power-cut transactions) are deliberately not findings: the design
// leaves them unreachable until free-list reuse. A page claimed by two
// distinct owners, however, is corruption.
//
// Check takes the read lock, so it can run against a live DB; `cbvrctl
// fsck` runs it against a freshly opened (and therefore just-recovered)
// file.
func Check(db *DB) (*CheckReport, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.closed {
		return nil, ErrClosed
	}
	c := &checker{
		db:       db,
		owners:   make(map[PageID]string),
		heapRefs: make(map[PageID]map[int]struct{}),
		report:   &CheckReport{Pages: int(db.pager.pageCount)},
	}
	c.run()
	return c.report, nil
}

type checker struct {
	db       *DB
	owners   map[PageID]string
	heapRefs map[PageID]map[int]struct{} // heap page -> slots referenced by pk entries
	report   *CheckReport
}

func (c *checker) problemf(format string, args ...any) {
	c.report.Problems = append(c.report.Problems, fmt.Sprintf(format, args...))
}

// claim records page ownership; a second distinct owner is corruption.
// It reports whether the claim succeeded (callers stop walking a structure
// when it did not, which also terminates link cycles).
func (c *checker) claim(id PageID, owner string) bool {
	if prev, ok := c.owners[id]; ok {
		if prev != owner {
			c.problemf("page %d claimed by both %s and %s", id, prev, owner)
		} else {
			c.problemf("page %d reached twice via %s (cycle or duplicate link)", id, owner)
		}
		return false
	}
	c.owners[id] = owner
	return true
}

func (c *checker) page(id PageID, owner string) *Page {
	if id >= c.db.pager.pageCount {
		c.problemf("%s references page %d beyond file end (%d pages)", owner, id, c.db.pager.pageCount)
		return nil
	}
	p, err := c.db.pager.get(id)
	if err != nil {
		c.problemf("%s: reading page %d: %v", owner, id, err)
		return nil
	}
	return p
}

func (c *checker) run() {
	meta := c.page(0, "meta")
	if meta == nil {
		return
	}
	c.claim(0, "meta")
	if meta.Type() != pageTypeMeta {
		c.problemf("meta page has type %d", meta.Type())
	}
	if binary.BigEndian.Uint32(meta.data[offMetaMagic:]) != metaMagic {
		c.problemf("meta page magic mismatch")
	}
	if v := binary.BigEndian.Uint32(meta.data[offMetaVersion:]); v != metaVersion {
		c.problemf("meta page format version %d, want %d", v, metaVersion)
	}

	c.checkFreeList(PageID(binary.BigEndian.Uint32(meta.data[offMetaFree:])))

	if catPage := PageID(binary.BigEndian.Uint32(meta.data[offMetaCatalog:])); catPage != invalidPage {
		catLen := int64(binary.BigEndian.Uint64(meta.data[offMetaCatLen:]))
		c.checkBlobChain(catPage, catLen, "catalog blob")
	}

	for name, tm := range c.db.catalog.Tables {
		c.report.Tables++
		c.checkTable(name, tm)
	}

	// Every live heap record must be reachable from exactly one pk entry;
	// a surplus means a key vanished while its record survived (or vice
	// versa after a partial delete).
	for pid, slots := range c.heapRefs {
		p := c.page(pid, "heap accounting")
		if p == nil {
			continue
		}
		live := 0
		for i := 0; i < p.nSlots(); i++ {
			if _, l := p.slot(i); l != slotDead {
				live++
			}
		}
		if live != len(slots) {
			c.problemf("heap page %d holds %d live records but %d are referenced by keys", pid, live, len(slots))
		}
	}
}

func (c *checker) checkFreeList(head PageID) {
	id := head
	for n := 0; id != invalidPage; n++ {
		if n > int(c.db.pager.pageCount) {
			c.problemf("free list longer than the file (%d pages): broken link", c.db.pager.pageCount)
			return
		}
		if !c.claim(id, "free list") {
			return
		}
		p := c.page(id, "free list")
		if p == nil {
			return
		}
		if p.Type() != pageTypeFree {
			c.problemf("free-list page %d has type %d, want free", id, p.Type())
		}
		id = p.Link()
	}
}

// checkBlobChain verifies page types, chunk bounds, per-page CRC-32C and
// total length of one chain.
func (c *checker) checkBlobChain(first PageID, length int64, owner string) {
	id := first
	remaining := length
	for {
		if id == invalidPage {
			if remaining > 0 {
				c.problemf("%s: chain ends with %d bytes unaccounted", owner, remaining)
			}
			return
		}
		if !c.claim(id, owner) {
			return
		}
		p := c.page(id, owner)
		if p == nil {
			return
		}
		if p.Type() != pageTypeBlob {
			c.problemf("%s: page %d has type %d, want blob", owner, id, p.Type())
			return
		}
		chunk := int(getU16(p.data[offBlobLen:]))
		if chunk > blobChunkMax {
			c.problemf("%s: page %d chunk %d exceeds capacity", owner, id, chunk)
			return
		}
		if want := binary.BigEndian.Uint32(p.data[offBlobCRC:]); want != blobPageCRC(p) {
			c.problemf("%s: page %d CRC mismatch", owner, id)
		}
		if int64(chunk) > remaining {
			c.problemf("%s: page %d carries %d bytes past the declared length", owner, id, int64(chunk)-remaining)
			return
		}
		remaining -= int64(chunk)
		if remaining == 0 {
			return
		}
		if chunk == 0 {
			c.problemf("%s: page %d has empty chunk mid-chain", owner, id)
			return
		}
		id = p.Link()
	}
}

func (c *checker) checkTable(name string, tm *tableMeta) {
	owner := "table " + name
	rows := make(map[int64][]Value)
	if tm.PKRoot != invalidPage {
		entries, leaves := c.checkBTree(tm.PKRoot, owner+" pk btree")
		c.checkLeafChain(leaves, owner+" pk btree")
		for _, e := range entries {
			c.checkRow(name, tm, int64(e.key), e.val, rows)
		}
	}
	for ixName, root := range tm.Indexes {
		if root == invalidPage {
			continue
		}
		ixOwner := fmt.Sprintf("%s index %s", owner, ixName)
		entries, leaves := c.checkBTree(root, ixOwner)
		c.checkLeafChain(leaves, ixOwner)
		c.checkIndexEntries(tm, ixName, entries, rows, ixOwner)
	}
}

type btEntry struct {
	key uint64
	val uint64
}

// checkBTree walks a B+tree recursively, verifying node types, in-bounds
// children, raw key counts and global key ordering. It returns every live
// leaf entry in key order plus the leaf pages in traversal order.
func (c *checker) checkBTree(root PageID, owner string) ([]btEntry, []*Page) {
	var entries []btEntry
	var leaves []*Page
	var last *uint64
	var walk func(id PageID, depth int)
	walk = func(id PageID, depth int) {
		if depth > 32 {
			c.problemf("%s: deeper than 32 levels at page %d (cycle?)", owner, id)
			return
		}
		if !c.claim(id, owner) {
			return
		}
		p := c.page(id, owner)
		if p == nil {
			return
		}
		switch p.Type() {
		case pageTypeLeaf:
			leaves = append(leaves, p)
			raw := int(getU16(p.data[offBTNKeys:]))
			if raw > leafMaxKeys {
				c.problemf("%s: leaf %d declares %d keys, max %d", owner, id, raw, leafMaxKeys)
			}
			n := btNKeys(p)
			for i := 0; i < n; i++ {
				k := leafKey(p, i)
				if last != nil && k <= *last {
					c.problemf("%s: leaf %d key[%d]=%d out of order (prev %d)", owner, id, i, k, *last)
				}
				kk := k
				last = &kk
				entries = append(entries, btEntry{key: k, val: leafVal(p, i)})
			}
		case pageTypeInternal:
			raw := int(getU16(p.data[offBTNKeys:]))
			if raw > intMaxKeys {
				c.problemf("%s: internal %d declares %d keys, max %d", owner, id, raw, intMaxKeys)
			}
			n := btNKeys(p)
			for i := 0; i <= n; i++ {
				walk(intChild(p, i), depth+1)
				if i < n {
					k := intKey(p, i)
					// Separator k: the subtree just walked holds keys < k,
					// the next subtree keys >= k. The global `last` cursor
					// checks leaf ordering; here verify the separator is
					// not behind it.
					if last != nil && k < *last {
						c.problemf("%s: internal %d separator[%d]=%d behind max leaf key %d", owner, id, i, k, *last)
					}
				}
			}
		default:
			c.problemf("%s: page %d has type %d, want leaf/internal", owner, id, p.Type())
		}
	}
	walk(root, 0)
	return entries, leaves
}

// checkLeafChain verifies the rightward sibling links match traversal
// order.
func (c *checker) checkLeafChain(leaves []*Page, owner string) {
	for i, p := range leaves {
		want := invalidPage
		if i+1 < len(leaves) {
			want = leaves[i+1].id
		}
		if got := p.Link(); got != want {
			c.problemf("%s: leaf %d sibling link %d, want %d", owner, p.id, got, want)
		}
	}
}

// checkRow resolves one pk btree entry to its heap record, decodes the row
// and walks every out-of-row chain it references.
func (c *checker) checkRow(name string, tm *tableMeta, pk int64, rid uint64, rows map[int64][]Value) {
	owner := "table " + name + " heap"
	pid, slot := splitRID(rid)
	// Heap pages hold many rows; claim once for the table.
	if prev, ok := c.owners[pid]; !ok {
		c.owners[pid] = owner
	} else if prev != owner {
		c.problemf("page %d claimed by both %s and %s", pid, prev, owner)
		return
	}
	p := c.page(pid, owner)
	if p == nil {
		return
	}
	if p.Type() != pageTypeHeap {
		c.problemf("%s: rid for pk %d points at page %d of type %d", owner, pk, pid, p.Type())
		return
	}
	if !p.slottedSane() {
		c.problemf("%s: page %d fails slotted sanity", owner, pid)
		return
	}
	refs := c.heapRefs[pid]
	if refs == nil {
		refs = make(map[int]struct{})
		c.heapRefs[pid] = refs
	}
	if _, dup := refs[slot]; dup {
		c.problemf("%s: slot %d on page %d referenced by two keys", owner, slot, pid)
	}
	refs[slot] = struct{}{}
	rec, err := p.slottedGet(slot)
	if err != nil {
		c.problemf("%s: pk %d: %v", owner, pk, err)
		return
	}
	row, err := decodeRow(&tm.Schema, rec)
	if err != nil {
		c.problemf("%s: pk %d: %v", owner, pk, err)
		return
	}
	if len(row) > 0 && (row[0].Null || row[0].Int != pk) {
		c.problemf("%s: pk %d: stored key column disagrees (%v)", owner, pk, row[0])
	}
	c.report.Rows++
	rows[pk] = row
	for i, v := range row {
		if v.Null {
			continue
		}
		isChain := v.Type == TypeBlob || (v.Type == TypeText && v.overflowText)
		if !isChain || v.Blob.IsZero() {
			continue
		}
		chainOwner := fmt.Sprintf("table %s pk %d col %s", name, pk, tm.Schema.Cols[i].Name)
		c.checkBlobChain(v.Blob.First, v.Blob.Len, chainOwner)
	}
}

// checkIndexEntries verifies each secondary-index entry maps back to a
// live row whose column values re-pack to the same key, and that every row
// produced exactly one entry.
func (c *checker) checkIndexEntries(tm *tableMeta, ixName string, entries []btEntry, rows map[int64][]Value, owner string) {
	var spec *IndexSpec
	for i := range tm.Schema.Indexes {
		if tm.Schema.Indexes[i].Name == ixName {
			spec = &tm.Schema.Indexes[i]
		}
	}
	if spec == nil {
		c.problemf("%s: index root persisted but schema has no such index", owner)
		return
	}
	for _, e := range entries {
		pk := int64(e.key) & maxIndexPK
		row, ok := rows[pk]
		if !ok {
			c.problemf("%s: entry for pk %d has no row", owner, pk)
			continue
		}
		vals := make([]int64, len(spec.Cols))
		for i, cn := range spec.Cols {
			ci := tm.Schema.ColIndex(cn)
			if ci < 0 || ci >= len(row) {
				c.problemf("%s: column %s missing from row", owner, cn)
				return
			}
			vals[i] = row[ci].Int
		}
		want, err := PackIndexKey(vals, pk)
		if err != nil {
			c.problemf("%s: pk %d: %v", owner, pk, err)
			continue
		}
		if want != e.key {
			c.problemf("%s: entry key %d for pk %d disagrees with row values (want %d)", owner, e.key, pk, want)
		}
	}
	if len(entries) != len(rows) {
		c.problemf("%s: %d entries for %d rows", owner, len(entries), len(rows))
	}
}
