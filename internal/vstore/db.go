package vstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Meta page layout after the common header:
//
//	[16:20) magic "VSTR"
//	[20:24) format version
//	[24:28) free-list head page
//	[28:32) catalog blob first page
//	[32:40) catalog blob length
const (
	metaMagic = 0x56535452 // "VSTR"
	// metaVersion 2: blob pages carry a CRC-32C at [18:22) and the
	// payload moved from offset 18 to 22 (see blob.go). A version-1 file
	// must be rejected here — its blob payloads would otherwise surface
	// as misleading per-page checksum mismatches.
	metaVersion = 2

	offMetaMagic   = 16
	offMetaVersion = 20
	offMetaFree    = 24
	offMetaCatalog = 28
	offMetaCatLen  = 32
)

// ErrClosed is returned by operations on a closed DB.
var ErrClosed = errors.New("vstore: database closed")

// ErrTxnDone is returned when a finished transaction is reused.
var ErrTxnDone = errors.New("vstore: transaction already finished")

// ErrReadOnly is returned by mutating operations once a write-path fault
// has poisoned the DB into sticky degraded read-only mode. Reads keep
// serving the last committed snapshot; mutations fail fast until the
// process restarts and recovery decides from durable state.
var ErrReadOnly = errors.New("vstore: database is degraded (read-only after write fault)")

// Options tunes a DB instance.
type Options struct {
	// CachePages bounds the buffer pool; <= 0 selects DefaultCachePages.
	CachePages int
	// NoWALSync skips fsync on commit. Crash safety is lost; useful only
	// for benchmarks isolating fsync cost.
	NoWALSync bool
	// FS substitutes the filesystem implementation; nil selects the real
	// OS filesystem. Fault-injection tests pass a faultfs.FS here.
	FS VFS
}

// Stats carries cumulative operation counters for benchmarks and tests.
type Stats struct {
	PageReads   uint64
	PageWrites  uint64
	WALRecords  uint64
	Commits     uint64
	Aborts      uint64
	Recovered   int // committed txns replayed at open
	Checkpoints uint64
}

// DB is a single-file embedded database with a write-ahead log.
//
// Lock order (enforced by tools/cbvrvet lockorder): mu is the outermost
// lock — Close takes stageMu while holding mu exclusively, and every
// pager call that touches pg.mu runs under mu. stageMu critical
// sections are counter-only bookkeeping, so no blocking or file I/O may
// run while it is held.
//
//cbvrvet:lockorder db.mu < stageMu
//cbvrvet:lockorder db.mu < pager.mu
//cbvrvet:lockorder noio stageMu
type DB struct {
	mu     sync.RWMutex
	pager  *pager
	wal    *wal
	path   string
	opts   Options
	closed bool

	catalog  catalogData
	tables   map[string]*Table
	nextTxn  uint64
	activeTx *Txn

	// stageMu guards staged-blob-writer registration (stagers,
	// stageClosed). It is deliberately separate from mu — and ordered
	// after it: Close acquires stageMu while holding mu exclusively — so
	// registering a stager never waits behind an open transaction; that
	// independence is what lets uploads stage while another client
	// commits.
	stageMu     sync.Mutex
	stagers     int
	stageClosed bool

	// degraded is set (once, sticky) by poison when a transactional
	// write-path fault leaves durability in doubt. Atomic because staged
	// writer registration and Degraded() read it outside db.mu.
	degraded atomic.Pointer[error]

	stats Stats
}

// catalogData is the persisted table registry.
type catalogData struct {
	Tables map[string]*tableMeta `json:"tables"`
}

// tableMeta is the persisted per-table state.
type tableMeta struct {
	Schema   Schema            `json:"schema"`
	PKRoot   PageID            `json:"pk_root"`
	Indexes  map[string]PageID `json:"indexes"` // index name -> btree root
	LastHeap PageID            `json:"last_heap"`
}

// Open opens (or creates) the database at path. The write-ahead log lives
// at path + ".wal". Crash recovery runs before any page is served.
func Open(path string, opts *Options) (*DB, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	fs := o.FS
	if fs == nil {
		fs = OSFS{}
	}
	pg, err := openPager(fs, path, o.CachePages)
	if err != nil {
		return nil, err
	}
	w, err := openWAL(fs, path+".wal")
	if err != nil {
		_ = pg.close() // errvet:ignore open already failed
		return nil, err
	}
	db := &DB{
		pager:  pg,
		wal:    w,
		path:   path,
		opts:   o,
		tables: make(map[string]*Table),
	}
	if err := db.recover(); err != nil {
		_ = db.closeFiles() // errvet:ignore open already failed
		return nil, err
	}
	if err := db.bootstrap(); err != nil {
		_ = db.closeFiles() // errvet:ignore open already failed
		return nil, err
	}
	return db, nil
}

// recover replays committed transactions from the WAL into the data file,
// then truncates the log.
func (db *DB) recover() error {
	recs, err := db.wal.readAll()
	if err != nil {
		return err
	}
	if len(recs) == 0 {
		return nil
	}
	committed := make(map[uint64]bool)
	for _, r := range recs {
		if r.kind == walKindCommit {
			committed[r.txnID] = true
		}
	}
	replayed := make(map[uint64]bool)
	for _, r := range recs {
		if r.kind != walKindPageImage || !committed[r.txnID] {
			continue
		}
		if err := db.pager.writeRaw(r.pageID, r.image); err != nil {
			return err
		}
		replayed[r.txnID] = true
	}
	if err := db.pager.f.Sync(); err != nil {
		return fmt.Errorf("vstore: sync after recovery: %w", err)
	}
	db.stats.Recovered = len(replayed)
	return db.wal.truncate()
}

// initMeta stamps a fresh (all-zero) meta page and installs an empty
// catalog. The zero page already carries type meta and empty catalog
// fields (invalidPage is 0), so only magic and version need writing.
func (db *DB) initMeta(meta *Page) error {
	meta.SetType(pageTypeMeta)
	binary.BigEndian.PutUint32(meta.data[offMetaMagic:], metaMagic)
	binary.BigEndian.PutUint32(meta.data[offMetaVersion:], metaVersion)
	meta.MarkDirty()
	db.catalog = catalogData{Tables: make(map[string]*tableMeta)}
	return db.pager.flushAll()
}

// pageIsZero reports whether the page image is entirely zero bytes.
func pageIsZero(data []byte) bool {
	for _, b := range data {
		if b != 0 {
			return false
		}
	}
	return true
}

// bootstrap loads (or initialises) the meta page and catalog.
func (db *DB) bootstrap() error {
	if db.pager.pageCount == 0 {
		// Fresh database: create the meta page and an empty catalog.
		meta, err := db.pager.allocate()
		if err != nil {
			return err
		}
		return db.initMeta(meta)
	}
	meta, err := db.pager.get(0)
	if err != nil {
		return err
	}
	if binary.BigEndian.Uint32(meta.data[offMetaMagic:]) != metaMagic {
		if db.pager.pageCount == 1 && pageIsZero(meta.data) {
			// Interrupted fresh-DB bootstrap: allocate() extends the file
			// with a zero page before initMeta stamps it, so a crash
			// between the two leaves exactly one all-zero page. Recovery
			// has already run, so no committed state can reference it —
			// finish the initialisation instead of rejecting the file.
			return db.initMeta(meta)
		}
		return fmt.Errorf("vstore: %s is not a vstore database", db.path)
	}
	if v := binary.BigEndian.Uint32(meta.data[offMetaVersion:]); v != metaVersion {
		return fmt.Errorf("vstore: unsupported format version %d", v)
	}
	catPage := PageID(binary.BigEndian.Uint32(meta.data[offMetaCatalog:]))
	catLen := binary.BigEndian.Uint64(meta.data[offMetaCatLen:])
	db.catalog = catalogData{Tables: make(map[string]*tableMeta)}
	if catPage != invalidPage {
		raw, err := db.readBlobChain(catPage, int64(catLen))
		if err != nil {
			return fmt.Errorf("vstore: read catalog: %w", err)
		}
		if err := json.Unmarshal(raw, &db.catalog); err != nil {
			return fmt.Errorf("vstore: decode catalog: %w", err)
		}
		if db.catalog.Tables == nil {
			db.catalog.Tables = make(map[string]*tableMeta)
		}
	}
	for name, tm := range db.catalog.Tables {
		db.tables[name] = newTable(db, name, tm)
	}
	return nil
}

func (db *DB) closeFiles() error {
	werr := db.wal.close()
	perr := db.pager.close()
	if werr != nil {
		return werr
	}
	return perr
}

// Close checkpoints and closes the database. It fails if a transaction is
// still active. A degraded DB skips the checkpoint — its buffer pool may
// disagree with durable state, so the next Open must decide from the data
// file and WAL alone — and just closes the files.
func (db *DB) Close() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return nil
	}
	if db.activeTx != nil {
		return errors.New("vstore: close with active transaction")
	}
	db.stageMu.Lock()
	if db.stagers != 0 {
		db.stageMu.Unlock()
		return errors.New("vstore: close with active staged blob writers")
	}
	db.stageClosed = true
	db.stageMu.Unlock()
	if db.degraded.Load() == nil {
		if err := db.checkpointLocked(); err != nil {
			db.stageMu.Lock()
			db.stageClosed = false
			db.stageMu.Unlock()
			return err
		}
	}
	db.closed = true
	return db.closeFiles()
}

// SimulateCrash abandons the database without flushing dirty pages or
// checkpointing, as a process kill would. It deliberately takes no lock so
// it can fire while a transaction is open (the interesting crash case);
// like a real crash it must not race with operations on other goroutines.
// The DB is unusable afterwards. Intended for recovery tests.
func (db *DB) SimulateCrash() {
	if db.closed {
		return
	}
	db.closed = true
	db.activeTx = nil
	_ = db.closeFiles() // errvet:ignore simulated crash abandons state by design
}

// Checkpoint flushes all dirty pages to the data file and truncates the
// WAL.
func (db *DB) Checkpoint() error {
	db.mu.Lock()
	defer db.mu.Unlock()
	if db.closed {
		return ErrClosed
	}
	if err := db.Degraded(); err != nil {
		return err
	}
	if db.activeTx != nil {
		return errors.New("vstore: checkpoint with active transaction")
	}
	return db.checkpointLocked()
}

// checkpointLocked flushes and truncates. A failure poisons the DB: a
// partial flush leaves the data file behind the buffer pool, and the WAL
// must be preserved exactly as-is for the next recovery, so no further
// writes may run.
func (db *DB) checkpointLocked() error {
	if err := db.pager.flushAll(); err != nil {
		return db.poison("checkpoint flush", err)
	}
	if err := db.wal.truncate(); err != nil {
		return db.poison("checkpoint wal truncate", err)
	}
	db.stats.Checkpoints++
	return nil
}

// poison transitions the DB into sticky degraded read-only mode, recording
// the first cause. It returns an error wrapping both ErrReadOnly and the
// cause so callers and HTTP classifiers see the transition immediately.
func (db *DB) poison(where string, cause error) error {
	err := fmt.Errorf("%w: %s: %v", ErrReadOnly, where, cause)
	db.degraded.CompareAndSwap(nil, &err)
	return err
}

// Degraded reports whether a write-path fault has poisoned the DB,
// returning the sticky error (wrapping ErrReadOnly and the first cause) or
// nil. Reads remain valid while degraded; all mutations fail fast.
func (db *DB) Degraded() error {
	if p := db.degraded.Load(); p != nil {
		return *p
	}
	return nil
}

// Stats returns a snapshot of the operation counters.
func (db *DB) Stats() Stats {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.stats
}

// Path returns the data file path.
func (db *DB) Path() string { return db.path }

// TableNames lists the catalogued tables in sorted order.
func (db *DB) TableNames() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	names := make([]string, 0, len(db.tables))
	for n := range db.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Txn is a read-write transaction. vstore runs a single writer at a time:
// Begin blocks until the previous transaction finishes.
type Txn struct {
	db     *DB
	id     uint64
	before map[PageID]beforeImage
	// spooled lists pages allocated by spooled blob writers: always fresh
	// file extensions, never touched (no before-images), evictable before
	// commit. Commit WAL-logs them unconditionally; abort leaves them as
	// unreachable file garbage (the same fate ordinary pages allocated by
	// an aborted transaction meet).
	spooled []PageID
	done    bool
}

type beforeImage struct {
	data     []byte
	wasDirty bool
}

// Begin starts a read-write transaction, taking the writer lock. It fails
// with ErrReadOnly once the DB is degraded.
func (db *DB) Begin() (*Txn, error) {
	db.mu.Lock()
	if db.closed {
		db.mu.Unlock()
		return nil, ErrClosed
	}
	if err := db.Degraded(); err != nil {
		db.mu.Unlock()
		return nil, err
	}
	db.nextTxn++
	tx := &Txn{db: db, id: db.nextTxn, before: make(map[PageID]beforeImage)}
	db.activeTx = tx
	return tx, nil
}

// touch records the page's before-image once per transaction, pins it
// against eviction and marks it dirty. Every mutation must go through
// touch before writing page bytes.
func (tx *Txn) touch(p *Page) {
	if _, ok := tx.before[p.id]; !ok {
		img := make([]byte, PageSize)
		copy(img, p.data)
		tx.before[p.id] = beforeImage{data: img, wasDirty: p.dirty}
		p.pins++
	}
	p.dirty = true
}

// Commit logs after-images of every touched page, appends a commit record,
// syncs the WAL and releases the writer lock. Any fault on this path —
// WAL append, page re-read, fsync — restores the before-images (so reads
// keep serving the last committed snapshot) and poisons the DB into sticky
// degraded read-only mode: whether the transaction reached disk is
// indeterminate, so no further writes may run until a restart's recovery
// decides from durable state.
func (tx *Txn) Commit() error {
	if tx.done {
		return ErrTxnDone
	}
	db := tx.db
	defer db.mu.Unlock()
	tx.done = true
	db.activeTx = nil
	if err := tx.commitLocked(); err != nil {
		tx.restorePages()
		return db.poison("commit", err)
	}
	// Release writer pins only after the whole commit succeeded; the
	// failure path above needs every touched page still resident.
	for id := range tx.before {
		if p := db.pager.cached(id); p != nil {
			p.pins--
		}
	}
	db.stats.Commits++
	return nil
}

func (tx *Txn) commitLocked() error {
	db := tx.db
	// Spooled blob pages first: they carry no before-image and may have
	// been evicted (and thus look clean), so they are logged
	// unconditionally, re-read from disk if needed. A spooled page the
	// transaction later touched (e.g. freed again) is logged by the
	// ordinary loop below instead.
	for _, id := range tx.spooled {
		if _, touched := tx.before[id]; touched {
			continue
		}
		p, err := db.pager.get(id)
		if err != nil {
			return fmt.Errorf("vstore: commit spooled page: %w", err)
		}
		p.pins = 0 // writer pin, if an error path left one behind
		if _, err := db.wal.appendRecord(tx.id, walKindPageImage, id, p.data); err != nil {
			return err
		}
		db.stats.WALRecords++
	}

	ids := make([]PageID, 0, len(tx.before))
	for id := range tx.before {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p, err := db.pager.get(id)
		if err != nil {
			return fmt.Errorf("vstore: commit: %w", err)
		}
		if !p.dirty {
			continue
		}
		lsn, err := db.wal.appendRecord(tx.id, walKindPageImage, id, p.data)
		if err != nil {
			return err
		}
		p.SetLSN(lsn)
		db.stats.WALRecords++
	}
	if _, err := db.wal.appendRecord(tx.id, walKindCommit, 0, nil); err != nil {
		return err
	}
	db.stats.WALRecords++
	if !db.opts.NoWALSync {
		if err := db.wal.sync(); err != nil {
			return err
		}
	}
	return nil
}

// restorePages copies every touched page's before-image back into the
// buffer pool and releases writer pins. Touched pages are pinned, so they
// are guaranteed resident; cached() never hits the (possibly faulty) disk.
func (tx *Txn) restorePages() {
	db := tx.db
	for id, img := range tx.before {
		p := db.pager.cached(id)
		if p == nil {
			continue // never cached: unmodified on disk, nothing to undo
		}
		copy(p.data, img.data)
		p.dirty = img.wasDirty
		p.pins--
	}
	// Spooled pages become file garbage; just release any writer pin so
	// the buffer pool can evict them.
	for _, id := range tx.spooled {
		if _, touched := tx.before[id]; touched {
			continue
		}
		if p := db.pager.cached(id); p != nil {
			p.pins = 0
		}
	}
}

// Abort restores every touched page's before-image and releases the
// writer lock. Pages allocated by the transaction become unreachable file
// garbage until the next reuse; this is a deliberate simplification.
func (tx *Txn) Abort() {
	if tx.done {
		return
	}
	db := tx.db
	defer db.mu.Unlock()
	tx.done = true
	db.activeTx = nil
	tx.restorePages()
	db.stats.Aborts++
}

// allocPage hands out a page: from the free list if possible, otherwise by
// extending the file. The page is touched under tx.
func (db *DB) allocPage(tx *Txn) (*Page, error) {
	meta, err := db.pager.get(0)
	if err != nil {
		return nil, err
	}
	freeHead := PageID(binary.BigEndian.Uint32(meta.data[offMetaFree:]))
	if freeHead != invalidPage {
		p, err := db.pager.get(freeHead)
		if err != nil {
			return nil, err
		}
		tx.touch(meta)
		binary.BigEndian.PutUint32(meta.data[offMetaFree:], uint32(p.Link()))
		tx.touch(p)
		for i := range p.data {
			p.data[i] = 0
		}
		return p, nil
	}
	p, err := db.pager.allocate()
	if err != nil {
		return nil, err
	}
	tx.touch(p)
	return p, nil
}

// freePage pushes a page onto the free list.
func (db *DB) freePage(tx *Txn, p *Page) error {
	meta, err := db.pager.get(0)
	if err != nil {
		return err
	}
	tx.touch(p)
	for i := range p.data {
		p.data[i] = 0
	}
	p.SetType(pageTypeFree)
	p.SetLink(PageID(binary.BigEndian.Uint32(meta.data[offMetaFree:])))
	tx.touch(meta)
	binary.BigEndian.PutUint32(meta.data[offMetaFree:], uint32(p.id))
	return nil
}

// persistCatalog rewrites the catalog blob and points the meta page at it.
func (db *DB) persistCatalog(tx *Txn) error {
	raw, err := json.Marshal(&db.catalog)
	if err != nil {
		return fmt.Errorf("vstore: encode catalog: %w", err)
	}
	meta, err := db.pager.get(0)
	if err != nil {
		return err
	}
	oldPage := PageID(binary.BigEndian.Uint32(meta.data[offMetaCatalog:]))
	first, err := db.writeBlobChain(tx, raw)
	if err != nil {
		return err
	}
	tx.touch(meta)
	binary.BigEndian.PutUint32(meta.data[offMetaCatalog:], uint32(first))
	binary.BigEndian.PutUint64(meta.data[offMetaCatLen:], uint64(len(raw)))
	if oldPage != invalidPage {
		if err := db.freeBlobChain(tx, oldPage); err != nil {
			return err
		}
	}
	return nil
}
