package vstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// VFS abstracts the filesystem operations the storage engine performs, so
// tests can substitute a fault-injecting implementation (see
// internal/vstore/faultfs) for the real OS filesystem. The engine only
// ever opens files read-write, creating them if absent, so OpenFile takes
// no flags.
type VFS interface {
	// OpenFile opens the file at path for read/write, creating it if it
	// does not exist.
	OpenFile(path string) (File, error)
	// SyncDir fsyncs the directory containing path, making the directory
	// entry of a freshly created file durable. A created-but-unsynced
	// entry can vanish on power loss even if the file's own contents were
	// fsynced.
	SyncDir(path string) error
}

// File is the per-file surface the pager and WAL write through. All
// methods must be safe for concurrent use (staged blob writers call
// WriteAt outside the DB writer lock, matching os.File semantics).
type File interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Truncate(size int64) error
	Close() error
	// Size returns the current file length in bytes.
	Size() (int64, error)
}

// OSFS is the production VFS backed by the real filesystem.
type OSFS struct{}

func (OSFS) OpenFile(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (OSFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("vstore: open dir for sync: %w", err)
	}
	err = d.Sync()
	cerr := d.Close()
	if err != nil {
		return fmt.Errorf("vstore: sync dir: %w", err)
	}
	return cerr
}

type osFile struct {
	*os.File
}

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}
