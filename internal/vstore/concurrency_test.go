package vstore

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentReadersDuringWrites runs the engine's intended workload —
// one admin writer, many searching readers — under the race detector's
// eye: reader goroutines hammer Get/Scan while a writer inserts, updates
// and deletes in transactions.
func TestConcurrentReadersDuringWrites(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)

	// Seed rows readers can always find.
	tx, _ := db.Begin()
	for i := 0; i < 100; i++ {
		if _, err := tbl.Insert(tx, sampleRow(int64(i)+1, fmt.Sprintf("seed-%d", i), int64(i%200), nil)); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errCh := make(chan error, 16)

	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			pk := int64(r*13%100) + 1
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, ok, err := tbl.Get(nil, pk); err != nil || !ok {
					errCh <- fmt.Errorf("reader %d: pk %d ok=%v err=%v", r, pk, ok, err)
					return
				}
				n := 0
				if err := tbl.Scan(nil, func(int64, []Value) (bool, error) {
					n++
					return n < 20, nil
				}); err != nil {
					errCh <- fmt.Errorf("reader %d scan: %v", r, err)
					return
				}
			}
		}(r)
	}

	// Writer: churn rows beyond the seeded range.
	for round := 0; round < 30; round++ {
		tx, err := db.Begin()
		if err != nil {
			t.Fatal(err)
		}
		pk, err := tbl.Insert(tx, sampleRow(0, fmt.Sprintf("churn-%d", round), int64(round%200), []byte("blob")))
		if err != nil {
			tx.Abort()
			t.Fatal(err)
		}
		if round%2 == 0 {
			row, _, _ := tbl.Get(tx, pk)
			row[1] = Text("updated")
			if err := tbl.Update(tx, pk, row); err != nil {
				tx.Abort()
				t.Fatal(err)
			}
		}
		if round%3 == 0 {
			if _, err := tbl.Delete(tx, pk); err != nil {
				tx.Abort()
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}

// TestOverflowTextRoundTrip pins the TOAST-style path: feature-string
// sized TEXT values must round-trip, update and free correctly.
func TestOverflowTextRoundTrip(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)

	long := make([]byte, 3*PageSize) // spans several overflow pages
	for i := range long {
		long[i] = byte('a' + i%26)
	}
	tx, _ := db.Begin()
	pk, err := tbl.Insert(tx, sampleRow(0, string(long), 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	row, ok, err := tbl.Get(nil, pk)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if row[1].Str != string(long) {
		t.Fatalf("overflow text corrupted: %d bytes back", len(row[1].Str))
	}

	// Update to a different long string; the old chain must be freed and
	// reusable (free-list head becomes non-zero and a later insert works).
	tx2, _ := db.Begin()
	row[1] = Text(string(long) + "-v2")
	if err := tbl.Update(tx2, pk, row); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()
	row2, _, err := tbl.Get(nil, pk)
	if err != nil {
		t.Fatal(err)
	}
	if row2[1].Str != string(long)+"-v2" {
		t.Fatal("updated overflow text wrong")
	}

	// Short text stays inline (no overflow resolution involved).
	tx3, _ := db.Begin()
	row2[1] = Text("short")
	if err := tbl.Update(tx3, pk, row2); err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	row3, _, _ := tbl.Get(nil, pk)
	if row3[1].Str != "short" {
		t.Fatalf("inline text after shrink: %q", row3[1].Str)
	}

	// Delete with an active overflow chain must not error and must leave
	// the DB consistent.
	tx4, _ := db.Begin()
	row3[1] = Text(string(long))
	if err := tbl.Update(tx4, pk, row3); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Delete(tx4, pk); err != nil {
		t.Fatal(err)
	}
	tx4.Commit()
	if n, _ := tbl.Count(nil); n != 0 {
		t.Fatalf("count = %d", n)
	}
}

// TestOverflowTextSurvivesCrash: overflow chains written in a committed
// transaction recover from the WAL.
func TestOverflowTextSurvivesCrash(t *testing.T) {
	path := t.TempDir() + "/ot.db"
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tbl, _ := db.CreateTable(tx, testSchema())
	long := string(make([]byte, 2*PageSize))
	pk, err := tbl.Insert(tx, sampleRow(0, long, 1, nil))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()
	db.SimulateCrash()

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("T")
	row, ok, err := tbl2.Get(nil, pk)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if row[1].Str != long {
		t.Fatal("overflow text lost in crash")
	}
}
