package vstore

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRecoveryCommittedSurvivesCrash: committed data must be recovered
// from the WAL even though no page was flushed to the data file.
func TestRecoveryCommittedSurvivesCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "c.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tbl, err := db.CreateTable(tx, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	var pks []int64
	for i := 0; i < 50; i++ {
		pk, err := tbl.Insert(tx, sampleRow(0, fmt.Sprintf("crash-%d", i), int64(i%200), bytes.Repeat([]byte{byte(i)}, 5000)))
		if err != nil {
			t.Fatal(err)
		}
		pks = append(pks, pk)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.SimulateCrash()

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer db2.Close()
	if db2.Stats().Recovered == 0 {
		t.Error("expected WAL replay on reopen")
	}
	tbl2, err := db2.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	for i, pk := range pks {
		row, ok, err := tbl2.Get(nil, pk)
		if err != nil || !ok {
			t.Fatalf("row %d lost in crash: ok=%v err=%v", pk, ok, err)
		}
		b, err := db2.ReadBlob(nil, row[4].Blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(b) != 5000 || b[0] != byte(i) {
			t.Fatalf("blob %d corrupted after recovery", pk)
		}
	}
	mustClean(t, db2)
}

// TestRecoveryUncommittedLost: work in a transaction that never committed
// must vanish after a crash.
func TestRecoveryUncommittedLost(t *testing.T) {
	path := filepath.Join(t.TempDir(), "u.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Committed baseline.
	tx, _ := db.Begin()
	tbl, _ := db.CreateTable(tx, testSchema())
	pk1, _ := tbl.Insert(tx, sampleRow(0, "base", 1, nil))
	tx.Commit()

	// Uncommitted work, then crash.
	tx2, _ := db.Begin()
	if _, err := tbl.Insert(tx2, sampleRow(0, "phantom", 2, nil)); err != nil {
		t.Fatal(err)
	}
	db.SimulateCrash()

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("T")
	n, err := tbl2.Count(nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("count after crash = %d, want 1 (phantom must be lost)", n)
	}
	if _, ok, _ := tbl2.Get(nil, pk1); !ok {
		t.Error("committed baseline lost")
	}
	mustClean(t, db2)
}

// TestRecoveryTornTail: garbage appended to the WAL (torn final record)
// must not break recovery of earlier committed work.
func TestRecoveryTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "t.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tbl, _ := db.CreateTable(tx, testSchema())
	pk, _ := tbl.Insert(tx, sampleRow(0, "good", 1, nil))
	tx.Commit()
	db.SimulateCrash()

	// Append garbage simulating a torn write.
	wf, err := os.OpenFile(path+".wal", os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	wf.Write([]byte{0x00, 0x00, 0x01, 0x99, 0xde, 0xad, 0xbe})
	wf.Close()

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatalf("reopen with torn WAL: %v", err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("T")
	if _, ok, _ := tbl2.Get(nil, pk); !ok {
		t.Error("committed row lost to torn tail")
	}
	mustClean(t, db2)
}

// TestAbortRestoresState: an aborted transaction leaves no trace, and the
// next transaction sees the pre-abort state.
func TestAbortRestoresState(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)
	tx, _ := db.Begin()
	pk, _ := tbl.Insert(tx, sampleRow(0, "kept", 5, []byte("kept-blob")))
	tx.Commit()

	tx2, _ := db.Begin()
	if _, err := tbl.Insert(tx2, sampleRow(0, "aborted", 6, []byte("aborted-blob"))); err != nil {
		t.Fatal(err)
	}
	row, _, _ := tbl.Get(tx2, pk)
	row[1] = Text("mutated")
	if err := tbl.Update(tx2, pk, row); err != nil {
		t.Fatal(err)
	}
	tx2.Abort()

	got, ok, err := tbl.Get(nil, pk)
	if err != nil || !ok {
		t.Fatal(err)
	}
	if got[1].Str != "kept" {
		t.Errorf("abort did not restore name: %q", got[1].Str)
	}
	n, _ := tbl.Count(nil)
	if n != 1 {
		t.Errorf("count after abort = %d, want 1", n)
	}
	// The store remains fully usable.
	tx3, _ := db.Begin()
	pk3, err := tbl.Insert(tx3, sampleRow(0, "after-abort", 7, nil))
	if err != nil {
		t.Fatal(err)
	}
	tx3.Commit()
	if _, ok, _ := tbl.Get(nil, pk3); !ok {
		t.Error("insert after abort lost")
	}
}

// TestCheckpointTruncatesWAL: after a checkpoint the WAL is empty and the
// data survives reopen without replay.
func TestCheckpointTruncatesWAL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tbl, _ := db.CreateTable(tx, testSchema())
	pk, _ := tbl.Insert(tx, sampleRow(0, "ck", 1, nil))
	tx.Commit()
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(path + ".wal")
	if err != nil {
		t.Fatal(err)
	}
	if st.Size() != 0 {
		t.Errorf("WAL size after checkpoint = %d, want 0", st.Size())
	}
	db.SimulateCrash() // no WAL to replay; data file must be complete

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Stats().Recovered != 0 {
		t.Errorf("unexpected replay after checkpoint: %d", db2.Stats().Recovered)
	}
	tbl2, _ := db2.Table("T")
	if _, ok, _ := tbl2.Get(nil, pk); !ok {
		t.Error("checkpointed row lost")
	}
	mustClean(t, db2)
}

// TestCrashMidStreamOfCommits: several committed transactions, crash, all
// must be present; page reuse via free list must not corrupt recovery.
func TestCrashMidStreamOfCommits(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tbl, _ := db.CreateTable(tx, testSchema())
	tx.Commit()

	var alive []int64
	for round := 0; round < 10; round++ {
		tx, _ := db.Begin()
		pk, err := tbl.Insert(tx, sampleRow(0, fmt.Sprintf("round-%d", round), int64(round), bytes.Repeat([]byte{byte(round)}, 3000)))
		if err != nil {
			t.Fatal(err)
		}
		alive = append(alive, pk)
		// Periodically delete an older row to churn the free list.
		if round%3 == 2 && len(alive) > 2 {
			victim := alive[0]
			alive = alive[1:]
			if _, err := tbl.Delete(tx, victim); err != nil {
				t.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	db.SimulateCrash()

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, _ := db2.Table("T")
	n, _ := tbl2.Count(nil)
	if n != len(alive) {
		t.Errorf("count = %d, want %d", n, len(alive))
	}
	for _, pk := range alive {
		row, ok, err := tbl2.Get(nil, pk)
		if err != nil || !ok {
			t.Fatalf("row %d lost: ok=%v err=%v", pk, ok, err)
		}
		if _, err := db2.ReadBlob(nil, row[4].Blob); err != nil {
			t.Fatalf("blob of %d unreadable: %v", pk, err)
		}
	}
	mustClean(t, db2)
}

// TestSmallCacheEvictionCorrectness: a tiny buffer pool forces eviction
// during transactions; pinning must keep correctness.
func TestSmallCacheEvictionCorrectness(t *testing.T) {
	db := openTestDB(t, &Options{CachePages: 8})
	tbl := createTestTable(t, db)
	var pks []int64
	for round := 0; round < 20; round++ {
		tx, _ := db.Begin()
		pk, err := tbl.Insert(tx, sampleRow(0, fmt.Sprintf("ev-%d", round), int64(round%200), bytes.Repeat([]byte{byte(round)}, 9000)))
		if err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
		pks = append(pks, pk)
	}
	for i, pk := range pks {
		row, ok, err := tbl.Get(nil, pk)
		if err != nil || !ok {
			t.Fatalf("row %d: ok=%v err=%v", pk, ok, err)
		}
		b, err := db.ReadBlob(nil, row[4].Blob)
		if err != nil || len(b) != 9000 || b[0] != byte(i) {
			t.Fatalf("blob %d wrong under eviction pressure", pk)
		}
	}
	mustClean(t, db)
}

func TestBeginAfterClose(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.db")
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Begin(); err != ErrClosed {
		t.Errorf("Begin after close: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}
