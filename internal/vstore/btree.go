package vstore

import (
	"encoding/binary"
	"fmt"
)

// B+tree over uint64 keys and uint64 values. Leaves chain rightwards via
// the common header link. Deletion is lazy (no sibling merging): keys are
// removed in place and empty leaves persist until the table is dropped —
// the same trade-off production B-trees such as PostgreSQL's make by
// deferring page merges to vacuum.
//
// Leaf layout:     [16:18) nkeys, entries from 18 at 16 bytes (key, val).
// Internal layout: [16:18) nkeys, child0 u32 at [18:22), entries from 22
// at 12 bytes (key, child): child_i+1 covers keys >= key_i.
const (
	offBTNKeys = hdrCommon

	leafEntryOff  = hdrCommon + 2
	leafEntrySize = 16
	leafMaxKeys   = (PageSize - leafEntryOff) / leafEntrySize

	intChild0Off = hdrCommon + 2
	intEntryOff  = hdrCommon + 6
	intEntrySize = 12
	intMaxKeys   = (PageSize - intEntryOff) / intEntrySize
)

func putU16(b []byte, v uint16) { binary.BigEndian.PutUint16(b, v) }
func getU16(b []byte) uint16    { return binary.BigEndian.Uint16(b) }

// btNKeys returns the node's key count, clamped to what its page type can
// physically hold: a corrupt on-disk count must never push the entry
// accessors out of the page (clamping surfaces as lookup misses or
// downstream errors, never a panic).
func btNKeys(p *Page) int {
	n := int(getU16(p.data[offBTNKeys:]))
	max := leafMaxKeys
	if p.Type() == pageTypeInternal {
		max = intMaxKeys
	}
	if n > max {
		return max
	}
	return n
}
func btSetNKeys(p *Page, n int) { putU16(p.data[offBTNKeys:], uint16(n)) }

func leafKey(p *Page, i int) uint64 {
	return binary.BigEndian.Uint64(p.data[leafEntryOff+i*leafEntrySize:])
}
func leafVal(p *Page, i int) uint64 {
	return binary.BigEndian.Uint64(p.data[leafEntryOff+i*leafEntrySize+8:])
}
func leafSet(p *Page, i int, k, v uint64) {
	binary.BigEndian.PutUint64(p.data[leafEntryOff+i*leafEntrySize:], k)
	binary.BigEndian.PutUint64(p.data[leafEntryOff+i*leafEntrySize+8:], v)
}

func intChild(p *Page, i int) PageID {
	if i == 0 {
		return PageID(binary.BigEndian.Uint32(p.data[intChild0Off:]))
	}
	return PageID(binary.BigEndian.Uint32(p.data[intEntryOff+(i-1)*intEntrySize+8:]))
}
func intSetChild(p *Page, i int, c PageID) {
	if i == 0 {
		binary.BigEndian.PutUint32(p.data[intChild0Off:], uint32(c))
		return
	}
	binary.BigEndian.PutUint32(p.data[intEntryOff+(i-1)*intEntrySize+8:], uint32(c))
}
func intKey(p *Page, i int) uint64 {
	return binary.BigEndian.Uint64(p.data[intEntryOff+i*intEntrySize:])
}
func intSetKey(p *Page, i int, k uint64) {
	binary.BigEndian.PutUint64(p.data[intEntryOff+i*intEntrySize:], k)
}

// leafSearch returns the position of the first key >= k.
func leafSearch(p *Page, k uint64) int {
	lo, hi := 0, btNKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(p, mid) < k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// intSearch returns the child index to descend for key k: the number of
// separator keys <= k.
func intSearch(p *Page, k uint64) int {
	lo, hi := 0, btNKeys(p)
	for lo < hi {
		mid := (lo + hi) / 2
		if intKey(p, mid) <= k {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// btSearch looks up key under root. root may be invalidPage (empty tree).
func (db *DB) btSearch(root PageID, key uint64) (uint64, bool, error) {
	if root == invalidPage {
		return 0, false, nil
	}
	id := root
	for {
		p, err := db.pager.get(id)
		if err != nil {
			return 0, false, err
		}
		switch p.Type() {
		case pageTypeInternal:
			id = intChild(p, intSearch(p, key))
		case pageTypeLeaf:
			i := leafSearch(p, key)
			if i < btNKeys(p) && leafKey(p, i) == key {
				return leafVal(p, i), true, nil
			}
			return 0, false, nil
		default:
			return 0, false, fmt.Errorf("vstore: page %d has type %d, not a btree node", id, p.Type())
		}
	}
}

// splitResult propagates a child split upward.
type splitResult struct {
	split   bool
	sepKey  uint64 // first key of the right sibling
	rightID PageID
}

// btInsert inserts (key, val), replacing an existing value when replace is
// true. It returns the (possibly new) root, whether a new key was added,
// and whether an existing key blocked the insert (replace == false).
func (db *DB) btInsert(tx *Txn, root PageID, key, val uint64, replace bool) (PageID, bool, error) {
	if root == invalidPage {
		leaf, err := db.allocPage(tx)
		if err != nil {
			return invalidPage, false, err
		}
		leaf.SetType(pageTypeLeaf)
		btSetNKeys(leaf, 1)
		leafSet(leaf, 0, key, val)
		return leaf.id, true, nil
	}
	added, res, err := db.btInsertAt(tx, root, key, val, replace)
	if err != nil {
		return root, false, err
	}
	if !res.split {
		return root, added, nil
	}
	// Grow a new root.
	nr, err := db.allocPage(tx)
	if err != nil {
		return root, added, err
	}
	nr.SetType(pageTypeInternal)
	btSetNKeys(nr, 1)
	intSetChild(nr, 0, root)
	intSetKey(nr, 0, res.sepKey)
	intSetChild(nr, 1, res.rightID)
	return nr.id, added, nil
}

func (db *DB) btInsertAt(tx *Txn, id PageID, key, val uint64, replace bool) (bool, splitResult, error) {
	p, err := db.pager.get(id)
	if err != nil {
		return false, splitResult{}, err
	}
	switch p.Type() {
	case pageTypeLeaf:
		return db.leafInsert(tx, p, key, val, replace)
	case pageTypeInternal:
		ci := intSearch(p, key)
		child := intChild(p, ci)
		added, res, err := db.btInsertAt(tx, child, key, val, replace)
		if err != nil || !res.split {
			return added, splitResult{}, err
		}
		// Re-fetch: the recursive call may have evicted p... it cannot,
		// because every touched page is pinned, but p itself may be
		// untouched. Pin defensively around the child insert instead.
		p, err = db.pager.get(id)
		if err != nil {
			return added, splitResult{}, err
		}
		return added, db.intAddSeparator(tx, p, ci, res), nil
	default:
		return false, splitResult{}, fmt.Errorf("vstore: page %d has type %d, not a btree node", id, p.Type())
	}
}

func (db *DB) leafInsert(tx *Txn, p *Page, key, val uint64, replace bool) (bool, splitResult, error) {
	i := leafSearch(p, key)
	n := btNKeys(p)
	if i < n && leafKey(p, i) == key {
		if !replace {
			return false, splitResult{}, fmt.Errorf("vstore: duplicate key %d", key)
		}
		tx.touch(p)
		leafSet(p, i, key, val)
		return false, splitResult{}, nil
	}
	tx.touch(p)
	if n < leafMaxKeys {
		copy(p.data[leafEntryOff+(i+1)*leafEntrySize:], p.data[leafEntryOff+i*leafEntrySize:leafEntryOff+n*leafEntrySize])
		leafSet(p, i, key, val)
		btSetNKeys(p, n+1)
		return true, splitResult{}, nil
	}
	// Split: move the upper half to a new right sibling, then insert.
	right, err := db.allocPage(tx)
	if err != nil {
		return false, splitResult{}, err
	}
	right.SetType(pageTypeLeaf)
	mid := n / 2
	moved := n - mid
	copy(right.data[leafEntryOff:], p.data[leafEntryOff+mid*leafEntrySize:leafEntryOff+n*leafEntrySize])
	btSetNKeys(right, moved)
	btSetNKeys(p, mid)
	right.SetLink(p.Link())
	p.SetLink(right.id)
	sep := leafKey(right, 0)
	if key < sep {
		if _, _, err := db.leafInsert(tx, p, key, val, replace); err != nil {
			return false, splitResult{}, err
		}
	} else {
		if _, _, err := db.leafInsert(tx, right, key, val, replace); err != nil {
			return false, splitResult{}, err
		}
	}
	return true, splitResult{split: true, sepKey: sep, rightID: right.id}, nil
}

// intAddSeparator inserts (sepKey, rightID) after child index ci, splitting
// the internal node if needed.
func (db *DB) intAddSeparator(tx *Txn, p *Page, ci int, res splitResult) splitResult {
	tx.touch(p)
	n := btNKeys(p)
	if n < intMaxKeys {
		copy(p.data[intEntryOff+(ci+1)*intEntrySize:], p.data[intEntryOff+ci*intEntrySize:intEntryOff+n*intEntrySize])
		intSetKey(p, ci, res.sepKey)
		intSetChild(p, ci+1, res.rightID)
		btSetNKeys(p, n+1)
		return splitResult{}
	}
	// Split the internal node: median key moves up.
	right, err := db.allocPage(tx)
	if err != nil {
		// Allocation failures at this depth leave the tree unchanged;
		// surface as a panic converted by the caller's recover? Keep it
		// simple: an internal split failure is unrecoverable here.
		panic(fmt.Sprintf("vstore: internal split allocation failed: %v", err))
	}
	right.SetType(pageTypeInternal)
	mid := n / 2
	up := intKey(p, mid)
	movedKeys := n - mid - 1
	// Right gets child[mid+1..n] and keys[mid+1..n).
	intSetChild(right, 0, intChild(p, mid+1))
	copy(right.data[intEntryOff:], p.data[intEntryOff+(mid+1)*intEntrySize:intEntryOff+n*intEntrySize])
	btSetNKeys(right, movedKeys)
	btSetNKeys(p, mid)
	// Now insert the pending separator into the proper half.
	if res.sepKey < up {
		db.intAddSeparator(tx, p, ci, res)
	} else {
		db.intAddSeparator(tx, right, ci-mid-1, res)
	}
	return splitResult{split: true, sepKey: up, rightID: right.id}
}

// btDelete removes key, reporting whether it was present. Leaves are never
// merged (lazy deletion).
func (db *DB) btDelete(tx *Txn, root PageID, key uint64) (bool, error) {
	if root == invalidPage {
		return false, nil
	}
	id := root
	for {
		p, err := db.pager.get(id)
		if err != nil {
			return false, err
		}
		switch p.Type() {
		case pageTypeInternal:
			id = intChild(p, intSearch(p, key))
		case pageTypeLeaf:
			i := leafSearch(p, key)
			n := btNKeys(p)
			if i >= n || leafKey(p, i) != key {
				return false, nil
			}
			tx.touch(p)
			copy(p.data[leafEntryOff+i*leafEntrySize:], p.data[leafEntryOff+(i+1)*leafEntrySize:leafEntryOff+n*leafEntrySize])
			btSetNKeys(p, n-1)
			return true, nil
		default:
			return false, fmt.Errorf("vstore: page %d has type %d, not a btree node", id, p.Type())
		}
	}
}

// btScan visits keys in [lo, hi] ascending. fn returning false stops the
// scan early.
func (db *DB) btScan(root PageID, lo, hi uint64, fn func(k, v uint64) (bool, error)) error {
	if root == invalidPage {
		return nil
	}
	// Descend to the leaf that could contain lo.
	id := root
	for {
		p, err := db.pager.get(id)
		if err != nil {
			return err
		}
		if p.Type() == pageTypeLeaf {
			break
		}
		if p.Type() != pageTypeInternal {
			return fmt.Errorf("vstore: page %d has type %d, not a btree node", id, p.Type())
		}
		id = intChild(p, intSearch(p, lo))
	}
	for id != invalidPage {
		p, err := db.pager.get(id)
		if err != nil {
			return err
		}
		n := btNKeys(p)
		for i := leafSearch(p, lo); i < n; i++ {
			k := leafKey(p, i)
			if k > hi {
				return nil
			}
			ok, err := fn(k, leafVal(p, i))
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		id = p.Link()
	}
	return nil
}

// btCount returns the number of keys in [lo, hi].
func (db *DB) btCount(root PageID, lo, hi uint64) (int, error) {
	n := 0
	err := db.btScan(root, lo, hi, func(_, _ uint64) (bool, error) {
		n++
		return true, nil
	})
	return n, err
}
