package vstore_test

import (
	"bytes"
	"errors"
	"syscall"
	"testing"

	"cbvr/internal/vstore"
	"cbvr/internal/vstore/faultfs"
)

// These tests run in the external test package: faultfs imports vstore,
// so in-package vstore tests cannot import faultfs back.

func faultSchema() vstore.Schema {
	return vstore.Schema{
		Name: "T",
		Cols: []vstore.Column{
			{Name: "ID", Type: vstore.TypeInt64, NotNull: true},
			{Name: "NAME", Type: vstore.TypeText},
			{Name: "RANK", Type: vstore.TypeInt64, NotNull: true},
			{Name: "PAYLOAD", Type: vstore.TypeBlob},
		},
		Indexes: []vstore.IndexSpec{{Name: "BY_RANK", Cols: []string{"RANK"}}},
	}
}

func faultRow(pk int64, name string, rank int64, payload []byte) []vstore.Value {
	return []vstore.Value{
		vstore.Int64(pk),
		vstore.Text(name),
		vstore.Int64(rank),
		vstore.Blob(payload),
	}
}

// openFaultDB opens a DB over fs with a small cache so eviction writes run
// under fault injection too.
func openFaultDB(t *testing.T, fs *faultfs.FS) *vstore.DB {
	t.Helper()
	db, err := vstore.Open("fault.db", &vstore.Options{FS: fs, CachePages: 8})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return db
}

func commitRow(t *testing.T, db *vstore.DB, tbl *vstore.Table, pk int64, payload []byte) error {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		return err
	}
	if _, err := tbl.Insert(tx, faultRow(pk, "r", pk%200, payload)); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// failNext arms a one-shot fault on the next matching op.
func failNext(fs *faultfs.FS, kind faultfs.OpKind, name string, act faultfs.Action) {
	fired := false
	fs.SetInjector(func(op faultfs.Op) faultfs.Action {
		if !fired && op.Kind == kind && op.Name == name {
			fired = true
			return act
		}
		return faultfs.ActNone
	})
}

func setupFaultTable(t *testing.T, db *vstore.DB) *vstore.Table {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(tx, faultSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func mustCleanExt(t *testing.T, db *vstore.DB) {
	t.Helper()
	rep, err := vstore.Check(db)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck found problems: %v", rep.Problems)
	}
}

// TestDegradedStickyOnWALAppendFault: a failed WAL append mid-commit must
// poison the DB into sticky read-only mode, keep reads serving the prior
// committed state, and reopen cleanly without the failed transaction.
func TestDegradedStickyOnWALAppendFault(t *testing.T) {
	fs := faultfs.New()
	db := openFaultDB(t, fs)
	tbl := setupFaultTable(t, db)
	if err := commitRow(t, db, tbl, 1, bytes.Repeat([]byte{0xA1}, 6000)); err != nil {
		t.Fatal(err)
	}

	failNext(fs, faultfs.OpWrite, "fault.db.wal", faultfs.ActErr)
	err := commitRow(t, db, tbl, 2, bytes.Repeat([]byte{0xB2}, 6000))
	if err == nil {
		t.Fatal("commit under WAL write fault succeeded")
	}
	if !errors.Is(err, vstore.ErrReadOnly) {
		t.Fatalf("commit error %v does not wrap ErrReadOnly", err)
	}
	fs.SetInjector(nil)

	if db.Degraded() == nil {
		t.Fatal("DB not degraded after WAL append fault")
	}
	// Mutations fail fast, stickily.
	if _, err := db.Begin(); !errors.Is(err, vstore.ErrReadOnly) {
		t.Fatalf("Begin while degraded: %v", err)
	}
	if _, err := db.NewStagedBlobWriter(); !errors.Is(err, vstore.ErrReadOnly) {
		t.Fatalf("NewStagedBlobWriter while degraded: %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, vstore.ErrReadOnly) {
		t.Fatalf("Checkpoint while degraded: %v", err)
	}
	// Reads keep serving the committed snapshot.
	row, ok, err := tbl.Get(nil, 1)
	if err != nil || !ok {
		t.Fatalf("read of committed row while degraded: ok=%v err=%v", ok, err)
	}
	b, err := db.ReadBlob(nil, row[3].Blob)
	if err != nil || len(b) != 6000 || b[0] != 0xA1 {
		t.Fatalf("blob read while degraded: len=%d err=%v", len(b), err)
	}
	if _, ok, _ := tbl.Get(nil, 2); ok {
		t.Fatal("failed transaction's row visible while degraded")
	}

	if err := db.Close(); err != nil {
		t.Fatalf("close degraded: %v", err)
	}
	db2, err := vstore.Open("fault.db", &vstore.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db2.Close()
	mustCleanExt(t, db2)
	tbl2, err := db2.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := tbl2.Get(nil, 1); !ok {
		t.Fatal("committed row lost across degraded close")
	}
	// The append never reached the file, so the transaction cannot have
	// survived.
	if _, ok, _ := tbl2.Get(nil, 2); ok {
		t.Fatal("failed transaction resurrected")
	}
	if db2.Degraded() != nil {
		t.Fatal("fresh open inherited degraded state")
	}
}

// TestDegradedOnCommitSyncFault: a failed WAL fsync leaves the commit
// indeterminate. The running process must degrade and serve the pre-txn
// snapshot; after reopen the transaction may legitimately surface (its
// records were fully written, only the sync failed).
func TestDegradedOnCommitSyncFault(t *testing.T) {
	fs := faultfs.New()
	db := openFaultDB(t, fs)
	tbl := setupFaultTable(t, db)
	if err := commitRow(t, db, tbl, 1, []byte("base")); err != nil {
		t.Fatal(err)
	}

	failNext(fs, faultfs.OpSync, "fault.db.wal", faultfs.ActErr)
	err := commitRow(t, db, tbl, 2, []byte("maybe"))
	if !errors.Is(err, vstore.ErrReadOnly) {
		t.Fatalf("commit under fsync fault: %v", err)
	}
	fs.SetInjector(nil)
	// The live process serves the conservative pre-transaction snapshot.
	if _, ok, _ := tbl.Get(nil, 2); ok {
		t.Fatal("indeterminate commit visible while degraded")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := vstore.Open("fault.db", &vstore.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	mustCleanExt(t, db2)
	// The records reached the (in-memory) file image; replay commits them.
	tbl2, _ := db2.Table("T")
	if _, ok, _ := tbl2.Get(nil, 2); !ok {
		t.Fatal("fully-written commit record not replayed after reopen")
	}
}

// TestStagedENOSPCNotDegraded: staging runs off-transaction, so a full
// disk mid-staged-write fails only that writer; the DB stays writable and
// reopens clean.
func TestStagedENOSPCNotDegraded(t *testing.T) {
	fs := faultfs.New()
	db := openFaultDB(t, fs)
	tbl := setupFaultTable(t, db)

	w, err := db.NewStagedBlobWriter()
	if err != nil {
		t.Fatal(err)
	}
	failNext(fs, faultfs.OpWrite, "fault.db", faultfs.ActENOSPC)
	// Two pages of payload guarantees at least one seal-time write.
	_, werr := w.Write(bytes.Repeat([]byte{0xEE}, 2*vstore.PageSize))
	if werr == nil {
		_, werr = w.Close()
	}
	if !errors.Is(werr, syscall.ENOSPC) {
		t.Fatalf("staged write error = %v, want ENOSPC", werr)
	}
	fs.SetInjector(nil)
	w.Discard()

	if err := db.Degraded(); err != nil {
		t.Fatalf("staged fault degraded the DB: %v", err)
	}
	// Store still fully writable.
	if err := commitRow(t, db, tbl, 7, []byte("after-enospc")); err != nil {
		t.Fatalf("commit after staged ENOSPC: %v", err)
	}
	mustCleanExt(t, db)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := vstore.Open("fault.db", &vstore.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	mustCleanExt(t, db2)
}

// TestDirEntrySurvivesPowerCut: committed data must survive a power cut
// that strikes immediately after commit — which requires the directory
// entries of the freshly created DB and WAL files to have been fsynced.
func TestDirEntrySurvivesPowerCut(t *testing.T) {
	fs := faultfs.New()
	db := openFaultDB(t, fs)
	tbl := setupFaultTable(t, db)
	if err := commitRow(t, db, tbl, 1, bytes.Repeat([]byte{0xCD}, 5000)); err != nil {
		t.Fatal(err)
	}
	fs.CutPower() // db's handles are now stale; do not Close

	db2, err := vstore.Open("fault.db", &vstore.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen after power cut: %v", err)
	}
	defer db2.Close()
	mustCleanExt(t, db2)
	tbl2, err := db2.Table("T")
	if err != nil {
		t.Fatalf("table lost to power cut: %v", err)
	}
	row, ok, err := tbl2.Get(nil, 1)
	if err != nil || !ok {
		t.Fatalf("committed row lost to power cut: ok=%v err=%v", ok, err)
	}
	if b, err := db2.ReadBlob(nil, row[3].Blob); err != nil || len(b) != 5000 {
		t.Fatalf("blob lost to power cut: len=%d err=%v", len(b), err)
	}
}

// TestShortWriteDegradesAndSalvages: a short write (torn extension) during
// commit degrades the process; the reopened file's unaligned tail is
// truncated away and fsck passes.
func TestShortWriteDegradesAndSalvages(t *testing.T) {
	fs := faultfs.New()
	db := openFaultDB(t, fs)
	tbl := setupFaultTable(t, db)
	if err := commitRow(t, db, tbl, 1, bytes.Repeat([]byte{0x11}, 3000)); err != nil {
		t.Fatal(err)
	}
	failNext(fs, faultfs.OpWrite, "fault.db.wal", faultfs.ActShortWrite)
	err := commitRow(t, db, tbl, 2, bytes.Repeat([]byte{0x22}, 3000))
	if !errors.Is(err, vstore.ErrReadOnly) {
		t.Fatalf("commit under short write: %v", err)
	}
	fs.SetInjector(nil)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := vstore.Open("fault.db", &vstore.Options{FS: fs})
	if err != nil {
		t.Fatalf("reopen after torn WAL write: %v", err)
	}
	defer db2.Close()
	mustCleanExt(t, db2)
	tbl2, _ := db2.Table("T")
	if _, ok, _ := tbl2.Get(nil, 1); !ok {
		t.Fatal("baseline row lost")
	}
}
