package vstore

import (
	"errors"
	"fmt"
)

// Column declares one table column.
type Column struct {
	Name    string  `json:"name"`
	Type    ColType `json:"type"`
	NotNull bool    `json:"not_null,omitempty"`
}

// IndexSpec declares a secondary index over small-integer columns. Each
// indexed column must be INT64 NOT NULL with values in [0,255]; the packed
// key is col0<<56 | col1<<48 | col2<<40 | pk (pk must fit 40 bits). That
// is exactly what the CBVR range index needs for (MIN, MAX) and keeps keys
// inside the B+tree's fixed-width uint64 format.
type IndexSpec struct {
	Name string   `json:"name"`
	Cols []string `json:"cols"`
}

// maxIndexCols bounds the packed-key column count.
const maxIndexCols = 3

// maxIndexPK is the largest primary key representable in a packed index
// key (40 bits).
const maxIndexPK = int64(1)<<40 - 1

// Schema declares a table. The first column is always the INT64 primary
// key; inserts may pass a NULL primary key to have one assigned.
type Schema struct {
	Name    string      `json:"name"`
	Cols    []Column    `json:"cols"`
	Indexes []IndexSpec `json:"indexes,omitempty"`
}

// validate checks structural invariants.
func (s *Schema) validate() error {
	if s.Name == "" {
		return errors.New("vstore: schema needs a name")
	}
	if len(s.Cols) == 0 {
		return fmt.Errorf("vstore: table %q needs columns", s.Name)
	}
	if s.Cols[0].Type != TypeInt64 {
		return fmt.Errorf("vstore: table %q primary key column %q must be INT64", s.Name, s.Cols[0].Name)
	}
	seen := make(map[string]int, len(s.Cols))
	for i, c := range s.Cols {
		if c.Name == "" {
			return fmt.Errorf("vstore: table %q column %d unnamed", s.Name, i)
		}
		if _, dup := seen[c.Name]; dup {
			return fmt.Errorf("vstore: table %q duplicate column %q", s.Name, c.Name)
		}
		seen[c.Name] = i
	}
	for _, ix := range s.Indexes {
		if ix.Name == "" {
			return fmt.Errorf("vstore: table %q has unnamed index", s.Name)
		}
		if len(ix.Cols) == 0 || len(ix.Cols) > maxIndexCols {
			return fmt.Errorf("vstore: index %q wants 1..%d columns", ix.Name, maxIndexCols)
		}
		for _, cn := range ix.Cols {
			ci, ok := seen[cn]
			if !ok {
				return fmt.Errorf("vstore: index %q references unknown column %q", ix.Name, cn)
			}
			if s.Cols[ci].Type != TypeInt64 || !s.Cols[ci].NotNull {
				return fmt.Errorf("vstore: index %q column %q must be INT64 NOT NULL", ix.Name, cn)
			}
		}
	}
	return nil
}

// ColIndex returns the position of a column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// Table provides typed row access over the heap and its indexes.
type Table struct {
	db   *DB
	name string
	meta *tableMeta
}

func newTable(db *DB, name string, tm *tableMeta) *Table {
	return &Table{db: db, name: name, meta: tm}
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns a copy of the table's schema.
func (t *Table) Schema() Schema { return t.meta.Schema }

// CreateTable registers a new table inside the transaction.
func (db *DB) CreateTable(tx *Txn, s Schema) (*Table, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if _, exists := db.catalog.Tables[s.Name]; exists {
		return nil, fmt.Errorf("vstore: table %q already exists", s.Name)
	}
	tm := &tableMeta{Schema: s, Indexes: make(map[string]PageID)}
	for _, ix := range s.Indexes {
		tm.Indexes[ix.Name] = invalidPage
	}
	db.catalog.Tables[s.Name] = tm
	if err := db.persistCatalog(tx); err != nil {
		delete(db.catalog.Tables, s.Name)
		return nil, err
	}
	t := newTable(db, s.Name, tm)
	db.tables[s.Name] = t
	return t, nil
}

// Table returns a handle to an existing table.
func (db *DB) Table(name string) (*Table, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	t, ok := db.tables[name]
	if !ok {
		return nil, fmt.Errorf("vstore: no table %q", name)
	}
	return t, nil
}

// NextPK returns the next unused primary key (max existing + 1).
func (t *Table) NextPK(tx *Txn) (int64, error) {
	unlock := t.rlockIfNeeded(tx)
	defer unlock()
	max, ok, err := t.db.btMax(t.meta.PKRoot)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 1, nil
	}
	return int64(max) + 1, nil
}

// rlockIfNeeded takes the DB read lock for tx == nil calls and returns the
// matching unlock; inside a transaction the writer lock is already held.
func (t *Table) rlockIfNeeded(tx *Txn) func() {
	if tx != nil {
		return func() {}
	}
	t.db.mu.RLock()
	return t.db.mu.RUnlock
}

// Insert adds a row and returns its primary key. A NULL first column
// requests auto-assignment. BLOB values are written out-of-row first.
func (t *Table) Insert(tx *Txn, row []Value) (int64, error) {
	if tx == nil {
		return 0, errors.New("vstore: Insert requires a transaction")
	}
	schema := &t.meta.Schema
	if len(row) != len(schema.Cols) {
		return 0, fmt.Errorf("vstore: row has %d values, want %d", len(row), len(schema.Cols))
	}
	work := make([]Value, len(row))
	copy(work, row)
	var pk int64
	if work[0].Null {
		next, err := t.NextPK(tx)
		if err != nil {
			return 0, err
		}
		pk = next
		work[0] = Int64(pk)
	} else {
		if work[0].Type != TypeInt64 {
			return 0, fmt.Errorf("vstore: primary key must be INT64")
		}
		pk = work[0].Int
	}
	if pk < 0 {
		return 0, fmt.Errorf("vstore: negative primary key %d", pk)
	}
	if err := t.writeBlobCols(tx, work); err != nil {
		return 0, err
	}
	rec, err := encodeRow(schema, work)
	if err != nil {
		return 0, err
	}
	rid, err := t.heapInsert(tx, rec)
	if err != nil {
		return 0, err
	}
	if err := t.pkInsert(tx, uint64(pk), rid, false); err != nil {
		return 0, err
	}
	if err := t.indexRow(tx, pk, work, true); err != nil {
		return 0, err
	}
	return pk, nil
}

// writeBlobCols materialises out-of-row storage: TypeBlob values (raw
// bytes) become page chains, and TEXT values longer than the overflow
// threshold move to chains as well (TOAST-style), keeping every row within
// one page.
func (t *Table) writeBlobCols(tx *Txn, row []Value) error {
	for i := range row {
		if row[i].Null {
			continue
		}
		switch t.meta.Schema.Cols[i].Type {
		case TypeBlob:
			if row[i].Bytes == nil && !row[i].Blob.IsZero() {
				continue // already a reference (e.g. round-tripped row)
			}
			first, err := t.db.writeBlobChain(tx, row[i].Bytes)
			if err != nil {
				return err
			}
			row[i].Blob = BlobRef{First: first, Len: int64(len(row[i].Bytes))}
			row[i].Bytes = nil
		case TypeText:
			if row[i].overflowText || len(row[i].Str) <= textOverflowThreshold {
				continue
			}
			first, err := t.db.writeBlobChain(tx, []byte(row[i].Str))
			if err != nil {
				return err
			}
			row[i] = Value{
				Type:         TypeText,
				Blob:         BlobRef{First: first, Len: int64(len(row[i].Str))},
				overflowText: true,
			}
		}
	}
	return nil
}

// resolveOverflow fetches out-of-row TEXT values back into Str, returning
// plain inline values to callers.
func (t *Table) resolveOverflow(row []Value) error {
	for i := range row {
		if !row[i].overflowText || row[i].Null {
			continue
		}
		raw, err := t.db.readBlobChain(row[i].Blob.First, row[i].Blob.Len)
		if err != nil {
			return fmt.Errorf("vstore: resolve overflow text %s.%s: %w",
				t.meta.Schema.Name, t.meta.Schema.Cols[i].Name, err)
		}
		row[i] = Text(string(raw))
	}
	return nil
}

// freeOutOfRow releases every chain (BLOB or overflow TEXT) owned by a
// decoded row.
func (t *Table) freeOutOfRow(tx *Txn, row []Value) error {
	for i, col := range t.meta.Schema.Cols {
		if row[i].Null {
			continue
		}
		isChain := (col.Type == TypeBlob && !row[i].Blob.IsZero()) ||
			(col.Type == TypeText && row[i].overflowText)
		if !isChain {
			continue
		}
		if err := t.db.freeBlobChain(tx, row[i].Blob.First); err != nil {
			return err
		}
	}
	return nil
}

// Get fetches a row by primary key. Pass tx == nil outside transactions.
func (t *Table) Get(tx *Txn, pk int64) ([]Value, bool, error) {
	unlock := t.rlockIfNeeded(tx)
	defer unlock()
	rid, ok, err := t.db.btSearch(t.meta.PKRoot, uint64(pk))
	if err != nil || !ok {
		return nil, false, err
	}
	rec, err := t.heapGet(rid)
	if err != nil {
		return nil, false, err
	}
	row, err := decodeRow(&t.meta.Schema, rec)
	if err != nil {
		return nil, false, err
	}
	if err := t.resolveOverflow(row); err != nil {
		return nil, false, err
	}
	return row, true, nil
}

// ReadBlob fetches an out-of-row value.
func (db *DB) ReadBlob(tx *Txn, ref BlobRef) ([]byte, error) {
	if ref.IsZero() {
		return nil, nil
	}
	if tx == nil {
		db.mu.RLock()
		defer db.mu.RUnlock()
	}
	return db.readBlobChain(ref.First, ref.Len)
}

// Update replaces the row at pk. Old blob chains are freed; new blob
// values are written.
func (t *Table) Update(tx *Txn, pk int64, row []Value) error {
	if tx == nil {
		return errors.New("vstore: Update requires a transaction")
	}
	schema := &t.meta.Schema
	rid, ok, err := t.db.btSearch(t.meta.PKRoot, uint64(pk))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("vstore: update: no row %d in %q", pk, t.name)
	}
	oldRec, err := t.heapGet(rid)
	if err != nil {
		return err
	}
	oldRow, err := decodeRow(schema, oldRec)
	if err != nil {
		return err
	}
	work := make([]Value, len(row))
	copy(work, row)
	work[0] = Int64(pk)
	if err := t.writeBlobCols(tx, work); err != nil {
		return err
	}
	rec, err := encodeRow(schema, work)
	if err != nil {
		return err
	}
	newRID, err := t.heapUpdate(tx, rid, rec)
	if err != nil {
		return err
	}
	if newRID != rid {
		if err := t.pkInsert(tx, uint64(pk), newRID, true); err != nil {
			return err
		}
	}
	// Free superseded chains (BLOBs and overflow TEXT) that the new row
	// does not reuse.
	for i, col := range schema.Cols {
		if oldRow[i].Null {
			continue
		}
		oldChain := (col.Type == TypeBlob && !oldRow[i].Blob.IsZero()) ||
			(col.Type == TypeText && oldRow[i].overflowText)
		if !oldChain || oldRow[i].Blob == work[i].Blob {
			continue
		}
		if err := t.db.freeBlobChain(tx, oldRow[i].Blob.First); err != nil {
			return err
		}
	}
	if err := t.deindexRow(tx, pk, oldRow); err != nil {
		return err
	}
	return t.indexRow(tx, pk, work, true)
}

// Delete removes the row at pk, reporting whether it existed.
func (t *Table) Delete(tx *Txn, pk int64) (bool, error) {
	if tx == nil {
		return false, errors.New("vstore: Delete requires a transaction")
	}
	rid, ok, err := t.db.btSearch(t.meta.PKRoot, uint64(pk))
	if err != nil || !ok {
		return false, err
	}
	rec, err := t.heapGet(rid)
	if err != nil {
		return false, err
	}
	row, err := decodeRow(&t.meta.Schema, rec)
	if err != nil {
		return false, err
	}
	if err := t.freeOutOfRow(tx, row); err != nil {
		return false, err
	}
	if err := t.heapDelete(tx, rid); err != nil {
		return false, err
	}
	if _, err := t.db.btDelete(tx, t.meta.PKRoot, uint64(pk)); err != nil {
		return false, err
	}
	if err := t.deindexRow(tx, pk, row); err != nil {
		return false, err
	}
	return true, nil
}

// Scan visits every row in primary-key order. fn returning false stops.
func (t *Table) Scan(tx *Txn, fn func(pk int64, row []Value) (bool, error)) error {
	unlock := t.rlockIfNeeded(tx)
	defer unlock()
	return t.db.btScan(t.meta.PKRoot, 0, ^uint64(0), func(k, rid uint64) (bool, error) {
		rec, err := t.heapGet(rid)
		if err != nil {
			return false, err
		}
		row, err := decodeRow(&t.meta.Schema, rec)
		if err != nil {
			return false, err
		}
		if err := t.resolveOverflow(row); err != nil {
			return false, err
		}
		return fn(int64(k), row)
	})
}

// Count returns the number of rows.
func (t *Table) Count(tx *Txn) (int, error) {
	unlock := t.rlockIfNeeded(tx)
	defer unlock()
	return t.db.btCount(t.meta.PKRoot, 0, ^uint64(0))
}

// pkInsert updates the primary index, persisting the catalog when the
// root page changes.
func (t *Table) pkInsert(tx *Txn, key, rid uint64, replace bool) error {
	root, _, err := t.db.btInsert(tx, t.meta.PKRoot, key, rid, replace)
	if err != nil {
		return err
	}
	if root != t.meta.PKRoot {
		t.meta.PKRoot = root
		if err := t.db.persistCatalog(tx); err != nil {
			return err
		}
	}
	return nil
}

// PackIndexKey builds the packed secondary-index key for the given column
// values (each in [0,255]) and primary key (must fit 40 bits).
func PackIndexKey(vals []int64, pk int64) (uint64, error) {
	if len(vals) > maxIndexCols {
		return 0, fmt.Errorf("vstore: too many index columns (%d)", len(vals))
	}
	if pk < 0 || pk > maxIndexPK {
		return 0, fmt.Errorf("vstore: pk %d outside packed-index range", pk)
	}
	var key uint64
	for i, v := range vals {
		if v < 0 || v > 255 {
			return 0, fmt.Errorf("vstore: index column value %d outside [0,255]", v)
		}
		key |= uint64(v) << (56 - 8*i)
	}
	return key | uint64(pk), nil
}

// IndexPrefixRange returns the [lo, hi] packed-key bounds covering every
// pk under the given column values.
func IndexPrefixRange(vals []int64) (lo, hi uint64, err error) {
	lo, err = PackIndexKey(vals, 0)
	if err != nil {
		return 0, 0, err
	}
	return lo, lo | uint64(maxIndexPK), nil
}

// indexRow inserts the row's entries into every secondary index.
func (t *Table) indexRow(tx *Txn, pk int64, row []Value, replace bool) error {
	for _, spec := range t.meta.Schema.Indexes {
		key, err := t.indexKeyFor(spec, pk, row)
		if err != nil {
			return err
		}
		root, _, err := t.db.btInsert(tx, t.meta.Indexes[spec.Name], key, uint64(pk), replace)
		if err != nil {
			return err
		}
		if root != t.meta.Indexes[spec.Name] {
			t.meta.Indexes[spec.Name] = root
			if err := t.db.persistCatalog(tx); err != nil {
				return err
			}
		}
	}
	return nil
}

// deindexRow removes the row's entries from every secondary index.
func (t *Table) deindexRow(tx *Txn, pk int64, row []Value) error {
	for _, spec := range t.meta.Schema.Indexes {
		key, err := t.indexKeyFor(spec, pk, row)
		if err != nil {
			return err
		}
		if _, err := t.db.btDelete(tx, t.meta.Indexes[spec.Name], key); err != nil {
			return err
		}
	}
	return nil
}

func (t *Table) indexKeyFor(spec IndexSpec, pk int64, row []Value) (uint64, error) {
	vals := make([]int64, len(spec.Cols))
	for i, cn := range spec.Cols {
		ci := t.meta.Schema.ColIndex(cn)
		if ci < 0 {
			return 0, fmt.Errorf("vstore: index %q column %q vanished", spec.Name, cn)
		}
		vals[i] = row[ci].Int
	}
	return PackIndexKey(vals, pk)
}

// IndexScan visits primary keys whose packed index key lies in [lo, hi].
func (t *Table) IndexScan(tx *Txn, index string, lo, hi uint64, fn func(pk int64) (bool, error)) error {
	unlock := t.rlockIfNeeded(tx)
	defer unlock()
	root, ok := t.meta.Indexes[index]
	if !ok {
		return fmt.Errorf("vstore: table %q has no index %q", t.name, index)
	}
	return t.db.btScan(root, lo, hi, func(_, pk uint64) (bool, error) {
		return fn(int64(pk))
	})
}

// btMax returns the largest key in the tree.
func (db *DB) btMax(root PageID) (uint64, bool, error) {
	if root == invalidPage {
		return 0, false, nil
	}
	id := root
	for {
		p, err := db.pager.get(id)
		if err != nil {
			return 0, false, err
		}
		switch p.Type() {
		case pageTypeInternal:
			id = intChild(p, btNKeys(p))
		case pageTypeLeaf:
			n := btNKeys(p)
			if n == 0 {
				// Rightmost leaf may be empty after lazy deletes; walk
				// back is not possible, so scan from the start (rare).
				var max uint64
				found := false
				err := db.btScan(root, 0, ^uint64(0), func(k, _ uint64) (bool, error) {
					max, found = k, true
					return true, nil
				})
				return max, found, err
			}
			return leafKey(p, n-1), true, nil
		default:
			return 0, false, fmt.Errorf("vstore: page %d has type %d, not a btree node", id, p.Type())
		}
	}
}
