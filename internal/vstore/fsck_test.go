package vstore

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// mustClean fails the test when Check finds problems.
func mustClean(t *testing.T, db *DB) *CheckReport {
	t.Helper()
	rep, err := Check(db)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck found problems:\n  %s", strings.Join(rep.Problems, "\n  "))
	}
	return rep
}

// populate builds a table with enough variety to exercise every walk:
// multi-page blobs, overflow text, deletes (free list), updates.
func populateForCheck(t *testing.T, db *DB) *Table {
	t.Helper()
	tbl := createTestTable(t, db)
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 8; i++ {
		row := sampleRow(i, strings.Repeat("n", 300), i%200, bytes.Repeat([]byte{byte(i)}, int(i)*1500))
		if _, err := tbl.Insert(tx, row); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Delete(tx, 3); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Update(tx, 5, sampleRow(5, "updated", 7, bytes.Repeat([]byte{0xAB}, 9000))); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestCheckCleanDB(t *testing.T) {
	db := openTestDB(t, nil)
	populateForCheck(t, db)
	rep := mustClean(t, db)
	if rep.Rows != 7 || rep.Tables != 1 {
		t.Fatalf("rows=%d tables=%d, want 7/1", rep.Rows, rep.Tables)
	}
	// And again after a clean close/reopen cycle.
	path := db.Path()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	mustClean(t, db2)
}

// corruptPage flips bytes in the closed data file on the first page
// matching pageType, at the given in-page offset, and returns whether a
// page was found.
func corruptPage(t *testing.T, path string, pageType uint8, mutate func(page []byte) bool) bool {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off+PageSize <= len(raw); off += PageSize {
		pg := raw[off : off+PageSize]
		if pg[offType] != pageType {
			continue
		}
		if !mutate(pg) {
			continue
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		return true
	}
	return false
}

func TestCheckDetectsBlobCorruption(t *testing.T) {
	db := openTestDB(t, nil)
	populateForCheck(t, db)
	path := db.Path()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	found := corruptPage(t, path, pageTypeBlob, func(pg []byte) bool {
		if getU16(pg[offBlobLen:]) == 0 {
			return false
		}
		pg[blobDataOff] ^= 0xFF
		return true
	})
	if !found {
		t.Fatal("no blob page found to corrupt")
	}
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rep, err := Check(db2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed a corrupted blob payload")
	}
	for _, p := range rep.Problems {
		if strings.Contains(p, "CRC mismatch") {
			return
		}
	}
	t.Fatalf("no CRC problem reported, got: %v", rep.Problems)
}

func TestCheckDetectsBTreeDisorder(t *testing.T) {
	db := openTestDB(t, nil)
	populateForCheck(t, db)
	path := db.Path()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	found := corruptPage(t, path, pageTypeLeaf, func(pg []byte) bool {
		if getU16(pg[offBTNKeys:]) < 2 {
			return false
		}
		// Copy key[1] over key[0]: duplicates break strict ordering.
		copy(pg[leafEntryOff:leafEntryOff+8], pg[leafEntryOff+leafEntrySize:leafEntryOff+leafEntrySize+8])
		return true
	})
	if !found {
		t.Fatal("no leaf page with >= 2 keys found")
	}
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rep, err := Check(db2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed out-of-order btree keys")
	}
}

func TestCheckDetectsFreeListTypeMismatch(t *testing.T) {
	db := openTestDB(t, nil)
	populateForCheck(t, db)
	path := db.Path()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The delete above pushed blob pages onto the free list; mislabel the
	// head free page as a heap page.
	found := corruptPage(t, path, pageTypeFree, func(pg []byte) bool {
		pg[offType] = pageTypeHeap
		return true
	})
	if !found {
		t.Skip("no free page in file")
	}
	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	rep, err := Check(db2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed a mistyped free-list page")
	}
}
