// Package faultfs is an in-memory vstore.VFS that injects storage faults
// deterministically: I/O errors, ENOSPC, fsync failures, short and torn
// writes, and power-loss simulation. Every filesystem operation the engine
// performs is assigned a global op index and described to an injector
// callback, which decides its fate; tests sweep fault points by re-running
// a workload with a fault armed at each recorded index.
//
// Durability model. Each file keeps two images: `current` (what the
// process observes) and `synced` (what survives power loss). WriteAt and
// Truncate act on current only; Sync copies current over synced. A power
// cut replaces current with synced, drops files whose directory entry was
// never made durable via SyncDir, and invalidates every open handle —
// reopening through the same FS then sees exactly what a rebooted process
// would. A torn write models the opposite extreme (the OS wrote
// everything back on its own, then power failed mid-sector): all pending
// state is treated as flushed, a prefix of the torn write lands, and the
// power cut follows. The two extremes bracket real write-back behaviour.
package faultfs

import (
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"syscall"
	"time"

	"cbvr/internal/vstore"
)

// OpKind classifies a filesystem operation.
type OpKind int

const (
	OpOpen OpKind = iota
	OpRead
	OpWrite
	OpSync
	OpTruncate
	OpClose
	OpSyncDir
)

func (k OpKind) String() string {
	switch k {
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpTruncate:
		return "truncate"
	case OpClose:
		return "close"
	case OpSyncDir:
		return "syncdir"
	default:
		return "unknown"
	}
}

// Op describes one filesystem operation about to run.
type Op struct {
	Index int    // global op counter, starting at 0
	Kind  OpKind
	Name  string // base name of the file ("x.db", "x.db.wal")
	Off   int64  // for read/write/truncate
	Len   int    // for read/write
}

// Action is an injector's verdict on an op.
type Action int

const (
	// ActNone lets the op run normally.
	ActNone Action = iota
	// ActErr fails the op with ErrInjected; no bytes move.
	ActErr
	// ActENOSPC fails a write with syscall.ENOSPC; no bytes move.
	ActENOSPC
	// ActShortWrite applies half the buffer, then fails with ENOSPC —
	// the torn extension a full disk leaves behind.
	ActShortWrite
	// ActTornWrite treats all pending state as flushed by OS write-back,
	// lands half of this write, then cuts power.
	ActTornWrite
	// ActPowerCut drops everything un-synced and invalidates all open
	// handles before the op runs; the op fails with ErrPowerLost.
	ActPowerCut
)

// ErrInjected is the generic injected I/O error.
var ErrInjected = fmt.Errorf("faultfs: injected I/O error")

// ErrPowerLost is returned by every operation on a handle opened before
// the most recent power cut.
var ErrPowerLost = fmt.Errorf("faultfs: power lost")

// Injector decides the fate of each op. It runs under the FS mutex: keep
// it fast and do not call back into the FS.
type Injector func(Op) Action

// Latency assigns each op an artificial service time. Like Injector it
// runs under the FS mutex, but the sleep itself happens with the mutex
// released, so one slow op does not serialize the whole filesystem — the
// model is a slow disk, not a frozen one.
type Latency func(Op) time.Duration

// FS is the fault-injecting in-memory filesystem.
type FS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	gen     int // bumped on power cut; stale handles fail
	ops     int
	inject  Injector
	latency Latency
}

type memFile struct {
	current   []byte
	synced    []byte
	dirSynced bool // directory entry durable (survives power cut)
}

// New returns an empty fault-injecting filesystem with no injector armed.
func New() *FS {
	return &FS{files: make(map[string]*memFile)}
}

// SetInjector installs (or, with nil, removes) the fault decision
// callback. The callback also doubles as an op recorder: return ActNone
// while appending ops to capture a workload's op trace.
func (fs *FS) SetInjector(fn Injector) {
	fs.mu.Lock()
	fs.inject = fn
	fs.mu.Unlock()
}

// SetLatency installs (or, with nil, removes) the per-op latency model.
// Ops that the injector fails are not delayed: injected faults fail fast.
func (fs *FS) SetLatency(fn Latency) {
	fs.mu.Lock()
	fs.latency = fn
	fs.mu.Unlock()
}

// Ops returns the number of operations performed so far.
func (fs *FS) Ops() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops
}

// CutPower simulates power loss right now: un-synced data is dropped,
// files with no durable directory entry vanish, and every open handle goes
// stale. The FS itself stays usable — OpenFile afterwards models the
// post-reboot process.
func (fs *FS) CutPower() {
	fs.mu.Lock()
	fs.cutLocked()
	fs.mu.Unlock()
}

func (fs *FS) cutLocked() {
	fs.gen++
	for name, f := range fs.files {
		if !f.dirSynced {
			delete(fs.files, name)
			continue
		}
		f.current = append([]byte(nil), f.synced...)
	}
}

// SyncedSize reports the durable length of a file, for test assertions.
func (fs *FS) SyncedSize(name string) int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if f, ok := fs.files[filepath.Base(name)]; ok {
		return int64(len(f.synced))
	}
	return -1
}

// step assigns the next op index, asks the injector for a verdict, and —
// for ops that will run — asks the latency model for a service time. The
// caller sleeps the returned delay via pause, never under the mutex.
func (fs *FS) step(kind OpKind, name string, off int64, n int) (Action, time.Duration, error) {
	op := Op{Index: fs.ops, Kind: kind, Name: name, Off: off, Len: n}
	fs.ops++
	act := ActNone
	if fs.inject != nil {
		act = fs.inject(op)
	}
	switch act {
	case ActPowerCut:
		fs.cutLocked()
		return act, 0, ErrPowerLost
	case ActErr:
		return act, 0, ErrInjected
	case ActENOSPC:
		return act, 0, syscall.ENOSPC
	}
	var delay time.Duration
	if fs.latency != nil {
		delay = fs.latency(op)
	}
	return act, delay, nil
}

// pause sleeps an injected delay with the FS mutex released, so a slow op
// stalls only its caller. Callers touching a handle must re-check
// staleness afterwards: a power cut may have landed mid-sleep.
func (fs *FS) pause(d time.Duration) {
	fs.mu.Unlock()
	time.Sleep(d)
	fs.mu.Lock()
}

// OpenFile implements vstore.VFS.
func (fs *FS) OpenFile(path string) (vstore.File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	name := filepath.Base(path)
	_, delay, err := fs.step(OpOpen, name, 0, 0)
	if err != nil {
		return nil, fmt.Errorf("faultfs: open %s: %w", name, err)
	}
	if delay > 0 {
		fs.pause(delay)
	}
	f, ok := fs.files[name]
	if !ok {
		f = &memFile{}
		fs.files[name] = f
	}
	return &handle{fs: fs, f: f, name: name, gen: fs.gen}, nil
}

// SyncDir implements vstore.VFS: it makes the directory entries of every
// file durable (the flat in-memory namespace has a single directory).
func (fs *FS) SyncDir(path string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	_, delay, err := fs.step(OpSyncDir, filepath.Base(path), 0, 0)
	if err != nil {
		return fmt.Errorf("faultfs: sync dir: %w", err)
	}
	if delay > 0 {
		fs.pause(delay)
	}
	for _, f := range fs.files {
		f.dirSynced = true
	}
	return nil
}

type handle struct {
	fs   *FS
	f    *memFile
	name string
	gen  int
}

func (h *handle) stale() bool { return h.gen != h.fs.gen }

func (h *handle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return 0, ErrPowerLost
	}
	_, delay, err := h.fs.step(OpRead, h.name, off, len(p))
	if err != nil {
		return 0, err
	}
	if delay > 0 {
		h.fs.pause(delay)
		if h.stale() {
			return 0, ErrPowerLost
		}
	}
	if off >= int64(len(h.f.current)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.current[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *handle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return 0, ErrPowerLost
	}
	act, delay, err := h.fs.step(OpWrite, h.name, off, len(p))
	if err != nil {
		return 0, err
	}
	if delay > 0 {
		h.fs.pause(delay)
		if h.stale() {
			return 0, ErrPowerLost
		}
	}
	switch act {
	case ActShortWrite:
		n := len(p) / 2
		h.f.applyCurrent(p[:n], off)
		return n, syscall.ENOSPC
	case ActTornWrite:
		// Adversarial write-back: everything pending flushes, then a
		// prefix of this write reaches the platter, then the power fails.
		for _, f := range h.fs.files {
			if f.dirSynced {
				f.synced = append([]byte(nil), f.current...)
			}
		}
		h.f.applySynced(p[:len(p)/2], off)
		h.fs.cutLocked()
		return 0, ErrPowerLost
	}
	h.f.applyCurrent(p, off)
	return len(p), nil
}

func (h *handle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return ErrPowerLost
	}
	_, delay, err := h.fs.step(OpSync, h.name, 0, 0)
	if err != nil {
		// Failed-fsync semantics: nothing can be assumed about what
		// reached the platter; synced state is left as-is (the
		// conservative end of the fsyncgate spectrum).
		return err
	}
	if delay > 0 {
		h.fs.pause(delay)
		if h.stale() {
			return ErrPowerLost
		}
	}
	h.f.synced = append([]byte(nil), h.f.current...)
	return nil
}

func (h *handle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return ErrPowerLost
	}
	_, delay, err := h.fs.step(OpTruncate, h.name, size, 0)
	if err != nil {
		return err
	}
	if delay > 0 {
		h.fs.pause(delay)
		if h.stale() {
			return ErrPowerLost
		}
	}
	if size <= int64(len(h.f.current)) {
		h.f.current = h.f.current[:size]
	} else {
		h.f.current = append(h.f.current, make([]byte, size-int64(len(h.f.current)))...)
	}
	return nil
}

func (h *handle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return ErrPowerLost
	}
	if _, _, err := h.fs.step(OpClose, h.name, 0, 0); err != nil {
		return err
	}
	return nil
}

func (h *handle) Size() (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.stale() {
		return 0, ErrPowerLost
	}
	return int64(len(h.f.current)), nil
}

func (f *memFile) applyCurrent(p []byte, off int64) {
	f.current = applyAt(f.current, p, off)
}

func (f *memFile) applySynced(p []byte, off int64) {
	f.synced = applyAt(f.synced, p, off)
}

func applyAt(dst, p []byte, off int64) []byte {
	end := off + int64(len(p))
	if int64(len(dst)) < end {
		dst = append(dst, make([]byte, end-int64(len(dst)))...)
	}
	copy(dst[off:end], p)
	return dst
}
