package vstore

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"path/filepath"
	"testing"
)

// streamPattern builds a deterministic byte payload that crosses page
// boundaries at awkward offsets.
func streamPattern(n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(i*7 + i/blobChunkMax)
	}
	return b
}

// TestBlobWriterReaderRoundTrip streams values of many sizes through both
// writer modes and reads them back chunk-wise and whole.
func TestBlobWriterReaderRoundTrip(t *testing.T) {
	db := openTestDB(t, nil)
	sizes := []int{0, 1, blobChunkMax - 1, blobChunkMax, blobChunkMax + 1, 3*blobChunkMax + 17, 64 << 10}
	for _, spooled := range []bool{false, true} {
		for _, size := range sizes {
			name := fmt.Sprintf("spooled=%v/size=%d", spooled, size)
			want := streamPattern(size)
			tx, err := db.Begin()
			if err != nil {
				t.Fatal(err)
			}
			var w *BlobWriter
			if spooled {
				w = db.NewSpooledBlobWriter(tx)
			} else {
				w = db.NewBlobWriter(tx)
			}
			// Dribble the value in odd-sized writes.
			for off := 0; off < len(want); {
				c := 1 + (off*13)%977
				if off+c > len(want) {
					c = len(want) - off
				}
				if _, err := w.Write(want[off : off+c]); err != nil {
					t.Fatalf("%s: write: %v", name, err)
				}
				off += c
			}
			ref, err := w.Close()
			if err != nil {
				t.Fatalf("%s: close: %v", name, err)
			}
			if ref.Len != int64(size) || ref.First == invalidPage {
				t.Fatalf("%s: ref %+v", name, ref)
			}
			// Read inside the transaction.
			got, err := io.ReadAll(db.NewBlobReader(tx, ref))
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("%s: in-tx read: err=%v len=%d want %d", name, err, len(got), len(want))
			}
			if err := tx.Commit(); err != nil {
				t.Fatal(err)
			}
			// Read outside any transaction, with tiny reads.
			r := db.NewBlobReader(nil, ref)
			var out bytes.Buffer
			buf := make([]byte, 147)
			if _, err := io.CopyBuffer(&out, r, buf); err != nil {
				t.Fatalf("%s: post-commit read: %v", name, err)
			}
			if !bytes.Equal(out.Bytes(), want) {
				t.Fatalf("%s: post-commit bytes differ", name)
			}
			// ReadBlob (whole-chain path) agrees.
			whole, err := db.ReadBlob(nil, ref)
			if err != nil || !bytes.Equal(whole, want) {
				t.Fatalf("%s: ReadBlob: err=%v", name, err)
			}
		}
	}
}

// TestBlobRefInsertRoundTrip writes a value through the spooled writer and
// inserts the reference into a BLOB column: the row must read back with
// the pre-written chain intact, and deleting the row must free it.
func TestBlobRefInsertRoundTrip(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)
	want := streamPattern(5 * blobChunkMax)

	tx, _ := db.Begin()
	w := db.NewSpooledBlobWriter(tx)
	if _, err := io.Copy(w, bytes.NewReader(want)); err != nil {
		t.Fatal(err)
	}
	ref, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	row := sampleRow(0, "spooled", 9, nil)
	row[4] = BlobRefV(ref)
	pk, err := tbl.Insert(tx, row)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	got, ok, err := tbl.Get(nil, pk)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if got[4].Blob != ref {
		t.Fatalf("stored ref %+v, want %+v", got[4].Blob, ref)
	}
	b, err := db.ReadBlob(nil, got[4].Blob)
	if err != nil || !bytes.Equal(b, want) {
		t.Fatalf("blob bytes differ: err=%v", err)
	}

	tx2, _ := db.Begin()
	if _, err := tbl.Delete(tx2, pk); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.ReadBlob(nil, ref); err == nil {
		t.Error("chain still readable as a blob after delete (pages not freed)")
	}
}

// TestSpooledBlobSurvivesCrash: a committed spooled chain must be fully
// recovered from the WAL even when its pages were evicted (and therefore
// partially written to the data file) before commit.
func TestSpooledBlobSurvivesCrash(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sp.db")
	db, err := Open(path, &Options{CachePages: 16}) // force eviction mid-write
	if err != nil {
		t.Fatal(err)
	}
	tbl := createTestTable(t, db)
	want := streamPattern(200 * blobChunkMax) // ~800KB, far beyond the pool

	tx, _ := db.Begin()
	w := db.NewSpooledBlobWriter(tx)
	if _, err := io.Copy(w, bytes.NewReader(want)); err != nil {
		t.Fatal(err)
	}
	ref, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	row := sampleRow(0, "crash", 3, nil)
	row[4] = BlobRefV(ref)
	pk, err := tbl.Insert(tx, row)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	db.SimulateCrash()

	db2, err := Open(path, &Options{CachePages: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	got, ok, err := tbl2.Get(nil, pk)
	if err != nil || !ok {
		t.Fatalf("row lost: ok=%v err=%v", ok, err)
	}
	b, err := db2.ReadBlob(nil, got[4].Blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, want) {
		t.Fatal("spooled blob corrupted after crash recovery")
	}
}

// TestSpooledBlobAbortLeavesStoreUsable: aborting a transaction with a
// large spooled chain must leave the database consistent (the pages are
// documented file garbage) and the free list untouched.
func TestSpooledBlobAbortLeavesStoreUsable(t *testing.T) {
	db := openTestDB(t, &Options{CachePages: 16})
	tbl := createTestTable(t, db)

	tx, _ := db.Begin()
	w := db.NewSpooledBlobWriter(tx)
	if _, err := io.Copy(w, bytes.NewReader(streamPattern(64*blobChunkMax))); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tx.Abort()

	// The store keeps working: ordinary inserts, blobs, reads.
	tx2, _ := db.Begin()
	payload := streamPattern(3 * blobChunkMax)
	pk, err := tbl.Insert(tx2, sampleRow(0, "after-abort", 4, payload))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	row, ok, err := tbl.Get(nil, pk)
	if err != nil || !ok {
		t.Fatal(err)
	}
	b, err := db.ReadBlob(nil, row[4].Blob)
	if err != nil || !bytes.Equal(b, payload) {
		t.Fatalf("post-abort blob: err=%v", err)
	}
}

// TestBlobWriterBoundedMemory pins the point of spooling: writing a chain
// many times larger than the buffer pool must not grow the pool beyond its
// configured capacity (plus transiently pinned pages).
func TestBlobWriterBoundedMemory(t *testing.T) {
	const cache = 32
	db := openTestDB(t, &Options{CachePages: cache})
	tx, _ := db.Begin()
	w := db.NewSpooledBlobWriter(tx)
	rng := rand.New(rand.NewSource(7))
	buf := make([]byte, 8192)
	for i := 0; i < 300; i++ { // ~2.4MB through a 128KB pool
		rng.Read(buf)
		if _, err := w.Write(buf); err != nil {
			t.Fatal(err)
		}
		if n := db.pager.lru.Len(); n > cache+2 {
			t.Fatalf("buffer pool grew to %d pages (cap %d): spooled pages are not being evicted", n, cache)
		}
	}
	if _, err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestBlobReaderZeroRef: a zero reference reads as empty.
func TestBlobReaderZeroRef(t *testing.T) {
	db := openTestDB(t, nil)
	b, err := io.ReadAll(db.NewBlobReader(nil, BlobRef{First: invalidPage}))
	if err != nil || len(b) != 0 {
		t.Fatalf("zero ref: %d bytes, err=%v", len(b), err)
	}
}
