// Package vstore is an embedded, single-file storage engine: slotted
// pages, a buffer pool, a redo write-ahead log with crash recovery, B+tree
// indexes, chunked BLOB storage and typed heap tables with transactions.
//
// It substitutes for the Oracle 9i instance the paper stores its
// VIDEO_STORE and KEY_FRAMES tables in: the CBVR system needs row CRUD by
// primary key, a secondary range index over the (MIN, MAX) columns, BLOB
// columns for video containers and key-frame JPEGs, and VARCHAR-style
// feature strings — all of which this engine provides with real database
// mechanics (WAL-before-data, page-image redo recovery, free-list page
// reuse).
//
// Concurrency model: single writer, many readers (one RWMutex per DB).
// That matches the paper's workload — one administrator mutating the
// corpus, many users running read-only searches.
package vstore

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the fixed on-disk page size.
const PageSize = 4096

// PageID addresses a page within the database file; page 0 is the meta
// page.
type PageID uint32

// invalidPage marks "no page" in chain pointers.
const invalidPage PageID = 0

// Page types stored in the common header.
const (
	pageTypeMeta uint8 = iota
	pageTypeHeap
	pageTypeLeaf
	pageTypeInternal
	pageTypeBlob
	pageTypeFree
)

// Common page header layout (16 bytes):
//
//	[0:8)   pageLSN  — LSN of the last WAL record covering this page
//	[8]     type
//	[9]     flags (unused)
//	[10:14) link     — type-specific chain pointer (free list, blob chain,
//	                   leaf sibling)
//	[14:16) reserved
const (
	offLSN    = 0
	offType   = 8
	offLink   = 10
	hdrCommon = 16
)

// Page is an in-memory copy of one on-disk page, tracked by the buffer
// pool.
type Page struct {
	id    PageID
	data  []byte // len == PageSize
	dirty bool
	pins  int
}

// ID returns the page's address.
func (p *Page) ID() PageID { return p.id }

// Data exposes the raw page bytes. Callers that mutate them must call
// MarkDirty (normally via a Txn touch).
func (p *Page) Data() []byte { return p.data }

// MarkDirty flags the page for write-back.
func (p *Page) MarkDirty() { p.dirty = true }

// Type returns the page type byte.
func (p *Page) Type() uint8 { return p.data[offType] }

// SetType sets the page type byte.
func (p *Page) SetType(t uint8) { p.data[offType] = t }

// LSN returns the page's last-writer LSN.
func (p *Page) LSN() uint64 { return binary.BigEndian.Uint64(p.data[offLSN:]) }

// SetLSN stores the page's last-writer LSN.
func (p *Page) SetLSN(lsn uint64) { binary.BigEndian.PutUint64(p.data[offLSN:], lsn) }

// Link returns the type-specific chain pointer.
func (p *Page) Link() PageID { return PageID(binary.BigEndian.Uint32(p.data[offLink:])) }

// SetLink stores the type-specific chain pointer.
func (p *Page) SetLink(id PageID) { binary.BigEndian.PutUint32(p.data[offLink:], uint32(id)) }

// Slotted page layout (heap pages), after the common header:
//
//	[16:18) nslots
//	[18:20) freeStart — first byte of the unused gap (grows up)
//	[20:22) freeEnd   — first byte of the record area (grows down)
//	[22:…)  slot directory, 4 bytes per slot: offset u16, length u16
//
// A slot with length == slotDead is a tombstone.
const (
	offNSlots    = hdrCommon
	offFreeStart = hdrCommon + 2
	offFreeEnd   = hdrCommon + 4
	offSlots     = hdrCommon + 6
	slotSize     = 4
	slotDead     = 0xffff
)

// maxRecordSize is the largest record a single slotted page can hold.
const maxRecordSize = PageSize - offSlots - slotSize

// maxSlots bounds the slot directory: more entries than this cannot fit in
// a page, so a larger on-page count is corruption.
const maxSlots = (PageSize - offSlots) / slotSize

// initSlotted formats a page as an empty slotted heap page.
func initSlotted(p *Page) {
	p.SetType(pageTypeHeap)
	p.setNSlots(0)
	p.setFreeStart(offSlots)
	p.setFreeEnd(PageSize)
}

// nSlots returns the slot-directory size, clamped to what a page can
// physically hold so a corrupt on-disk count can never push the directory
// accessors out of the page (fuzzed / corrupt pages must surface errors,
// not panics).
func (p *Page) nSlots() int {
	n := int(binary.BigEndian.Uint16(p.data[offNSlots:]))
	if n > maxSlots {
		return maxSlots
	}
	return n
}
func (p *Page) setNSlots(n int)    { binary.BigEndian.PutUint16(p.data[offNSlots:], uint16(n)) }
func (p *Page) freeStart() int     { return int(binary.BigEndian.Uint16(p.data[offFreeStart:])) }
func (p *Page) setFreeStart(v int) { binary.BigEndian.PutUint16(p.data[offFreeStart:], uint16(v)) }
func (p *Page) freeEnd() int       { return int(binary.BigEndian.Uint16(p.data[offFreeEnd:])) }
func (p *Page) setFreeEnd(v int)   { binary.BigEndian.PutUint16(p.data[offFreeEnd:], uint16(v)) }

func (p *Page) slot(i int) (off, length int) {
	base := offSlots + i*slotSize
	return int(binary.BigEndian.Uint16(p.data[base:])), int(binary.BigEndian.Uint16(p.data[base+2:]))
}

func (p *Page) setSlot(i, off, length int) {
	base := offSlots + i*slotSize
	binary.BigEndian.PutUint16(p.data[base:], uint16(off))
	binary.BigEndian.PutUint16(p.data[base+2:], uint16(length))
}

// slottedSane reports whether the page's free-space bookkeeping is
// internally consistent; insert paths fall back to a fresh page when a
// (corrupt) tail page fails the check instead of slicing out of bounds.
func (p *Page) slottedSane() bool {
	fs, fe := p.freeStart(), p.freeEnd()
	return fs >= offSlots+p.nSlots()*slotSize && fs <= fe && fe <= PageSize
}

// slottedFree reports the bytes available for one more record (accounting
// for a possible new slot entry).
func (p *Page) slottedFree() int {
	free := p.freeEnd() - p.freeStart() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// slottedInsert places rec in the page and returns its slot number. The
// caller must have verified capacity via slottedFree. Dead slots are
// reused.
func (p *Page) slottedInsert(rec []byte) (int, error) {
	n := len(rec)
	if n > maxRecordSize {
		return 0, fmt.Errorf("vstore: record of %d bytes exceeds page capacity", n)
	}
	// Reuse a dead slot if one exists.
	slotNo := -1
	for i := 0; i < p.nSlots(); i++ {
		if _, l := p.slot(i); l == slotDead {
			slotNo = i
			break
		}
	}
	needSlot := 0
	if slotNo < 0 {
		needSlot = slotSize
	}
	if p.freeEnd()-p.freeStart()-needSlot < n {
		if p.compact()-needSlot < n { // still too tight after compaction
			return 0, fmt.Errorf("vstore: page %d full", p.id)
		}
	}
	off := p.freeEnd() - n
	copy(p.data[off:], rec)
	p.setFreeEnd(off)
	if slotNo < 0 {
		slotNo = p.nSlots()
		p.setNSlots(slotNo + 1)
		p.setFreeStart(offSlots + p.nSlots()*slotSize)
	}
	p.setSlot(slotNo, off, n)
	return slotNo, nil
}

// slottedGet returns the record bytes at slot i (aliased into the page).
// Offsets and lengths come from disk, so they are validated against the
// page bounds before slicing — a corrupt page yields an error, not a
// panic.
func (p *Page) slottedGet(i int) ([]byte, error) {
	if i < 0 || i >= p.nSlots() {
		return nil, fmt.Errorf("vstore: slot %d out of range on page %d", i, p.id)
	}
	off, l := p.slot(i)
	if l == slotDead {
		return nil, fmt.Errorf("vstore: slot %d on page %d is dead", i, p.id)
	}
	if off < offSlots || off+l > PageSize {
		return nil, fmt.Errorf("vstore: slot %d on page %d points outside the page (off=%d len=%d)", i, p.id, off, l)
	}
	return p.data[off : off+l], nil
}

// slottedDelete tombstones slot i. It reports whether the page is now
// empty of live records.
func (p *Page) slottedDelete(i int) (empty bool, err error) {
	if i < 0 || i >= p.nSlots() {
		return false, fmt.Errorf("vstore: slot %d out of range on page %d", i, p.id)
	}
	if _, l := p.slot(i); l == slotDead {
		return false, fmt.Errorf("vstore: slot %d on page %d already dead", i, p.id)
	}
	p.setSlot(i, 0, slotDead)
	for s := 0; s < p.nSlots(); s++ {
		if _, l := p.slot(s); l != slotDead {
			return false, nil
		}
	}
	return true, nil
}

// compact rewrites live records contiguously at the page tail, reclaiming
// holes left by deletes and in-place shrinks. It returns the resulting
// free gap size.
func (p *Page) compact() int {
	type live struct{ slot, off, len int }
	var recs []live
	for i := 0; i < p.nSlots(); i++ {
		off, l := p.slot(i)
		if l != slotDead {
			recs = append(recs, live{i, off, l})
		}
	}
	buf := make([]byte, 0, PageSize)
	// Copy records out, then rewrite from the end of the page.
	for i := range recs {
		buf = append(buf, p.data[recs[i].off:recs[i].off+recs[i].len]...)
	}
	end := PageSize
	consumed := 0
	for i := range recs {
		end -= recs[i].len
		copy(p.data[end:], buf[consumed:consumed+recs[i].len])
		consumed += recs[i].len
		p.setSlot(recs[i].slot, end, recs[i].len)
	}
	p.setFreeEnd(end)
	return end - p.freeStart()
}
