package vstore

import "fmt"

// Record IDs pack (page, slot) into a uint64 so they fit B+tree values.
func makeRID(page PageID, slot int) uint64 {
	return uint64(page)<<16 | uint64(uint16(slot))
}

func splitRID(rid uint64) (PageID, int) {
	return PageID(rid >> 16), int(uint16(rid))
}

// heapInsert stores a record, preferring the table's current tail page and
// allocating a fresh one when it is full. Space freed by deletes on older
// pages is reclaimed only when a page empties completely (it then returns
// to the DB free list) — the usual insert-at-tail heap trade-off.
func (t *Table) heapInsert(tx *Txn, rec []byte) (uint64, error) {
	if len(rec) > maxRecordSize {
		return 0, fmt.Errorf("vstore: record of %d bytes exceeds page capacity (store large values in BLOB columns)", len(rec))
	}
	if t.meta.LastHeap != invalidPage {
		p, err := t.db.pager.get(t.meta.LastHeap)
		if err != nil {
			return 0, err
		}
		if p.Type() == pageTypeHeap && p.slottedSane() && p.slottedFree() >= len(rec) {
			tx.touch(p)
			slot, err := p.slottedInsert(rec)
			if err == nil {
				return makeRID(p.id, slot), nil
			}
		}
	}
	p, err := t.db.allocPage(tx)
	if err != nil {
		return 0, err
	}
	initSlotted(p)
	slot, err := p.slottedInsert(rec)
	if err != nil {
		return 0, err
	}
	t.meta.LastHeap = p.id
	if err := t.db.persistCatalog(tx); err != nil {
		return 0, err
	}
	return makeRID(p.id, slot), nil
}

// heapGet returns a copy of the record bytes at rid.
func (t *Table) heapGet(rid uint64) ([]byte, error) {
	pid, slot := splitRID(rid)
	p, err := t.db.pager.get(pid)
	if err != nil {
		return nil, err
	}
	if p.Type() != pageTypeHeap {
		return nil, fmt.Errorf("vstore: rid %d/%d points at non-heap page", pid, slot)
	}
	rec, err := p.slottedGet(slot)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(rec))
	copy(out, rec)
	return out, nil
}

// heapUpdate rewrites the record, in place when it fits, otherwise moving
// it (possibly to another page) and returning the new rid.
func (t *Table) heapUpdate(tx *Txn, rid uint64, rec []byte) (uint64, error) {
	pid, slot := splitRID(rid)
	p, err := t.db.pager.get(pid)
	if err != nil {
		return 0, err
	}
	if _, err := p.slottedGet(slot); err != nil {
		return 0, fmt.Errorf("vstore: update: %w", err)
	}
	off, oldLen := p.slot(slot)
	tx.touch(p)
	if len(rec) <= oldLen {
		copy(p.data[off:], rec)
		p.setSlot(slot, off, len(rec))
		return rid, nil
	}
	// Try relocation within the same page first, then fall back to a
	// fresh insert elsewhere.
	if _, err := p.slottedDelete(slot); err != nil {
		return 0, err
	}
	if p.slottedFree() >= len(rec) {
		if newSlot, err := p.slottedInsert(rec); err == nil {
			return makeRID(p.id, newSlot), nil
		}
	}
	newRID, err := t.heapInsert(tx, rec)
	if err != nil {
		return 0, err
	}
	// The old page may now be empty.
	if err := t.maybeFreeHeapPage(tx, p); err != nil {
		return 0, err
	}
	return newRID, nil
}

// heapDelete tombstones the record and frees the page if it empties.
func (t *Table) heapDelete(tx *Txn, rid uint64) error {
	pid, slot := splitRID(rid)
	p, err := t.db.pager.get(pid)
	if err != nil {
		return err
	}
	tx.touch(p)
	empty, err := p.slottedDelete(slot)
	if err != nil {
		return err
	}
	if empty {
		return t.maybeFreeHeapPage(tx, p)
	}
	return nil
}

// maybeFreeHeapPage returns a fully-dead heap page to the free list,
// clearing the table's tail pointer if it pointed there.
func (t *Table) maybeFreeHeapPage(tx *Txn, p *Page) error {
	for i := 0; i < p.nSlots(); i++ {
		if _, l := p.slot(i); l != slotDead {
			return nil
		}
	}
	if t.meta.LastHeap == p.id {
		t.meta.LastHeap = invalidPage
		if err := t.db.persistCatalog(tx); err != nil {
			return err
		}
	}
	return t.db.freePage(tx, p)
}
