package vstore

import (
	"testing"
	"time"
)

// fuzzSeedPages builds valid page images of every type so the fuzzer
// starts from structurally correct inputs and mutates from there.
func fuzzSeedPages(f *testing.F) {
	// Heap page holding two encoded rows of the test schema.
	schema := testSchema()
	heap := &Page{id: 1, data: make([]byte, PageSize)}
	initSlotted(heap)
	for i := int64(1); i <= 2; i++ {
		rec, err := encodeRow(&schema, []Value{
			Int64(i), Text("seed"), Float64V(1.5), BytesV([]byte{9, 9}),
			BlobRefV(BlobRef{First: 3, Len: 10}), TimeV(time.Unix(1600000000, 0).UTC()), Int64(i),
		})
		if err != nil {
			f.Fatal(err)
		}
		if _, err := heap.slottedInsert(rec); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(heap.data)

	// Blob page with a partial chunk and a link.
	blob := &Page{id: 2, data: make([]byte, PageSize)}
	blob.SetType(pageTypeBlob)
	blob.SetLink(7)
	putU16(blob.data[offBlobLen:], 100)
	for i := 0; i < 100; i++ {
		blob.data[blobDataOff+i] = byte(i)
	}
	f.Add(blob.data)

	// B+tree leaf and internal nodes.
	leaf := &Page{id: 3, data: make([]byte, PageSize)}
	leaf.SetType(pageTypeLeaf)
	btSetNKeys(leaf, 3)
	for i := 0; i < 3; i++ {
		leafSet(leaf, i, uint64(10*i), uint64(100+i))
	}
	f.Add(leaf.data)

	internal := &Page{id: 4, data: make([]byte, PageSize)}
	internal.SetType(pageTypeInternal)
	btSetNKeys(internal, 2)
	intSetChild(internal, 0, 5)
	intSetKey(internal, 0, 50)
	intSetChild(internal, 1, 6)
	intSetKey(internal, 1, 90)
	intSetChild(internal, 2, 7)
	f.Add(internal.data)
}

// FuzzVstorePageDecode drives every read-side page decoder with arbitrary
// page images: corrupt slot directories, record payloads, blob chunks and
// B+tree node headers must all surface as errors (or clamped reads), never
// as panics. This is the read path a database file that suffered disk
// corruption travels at open.
func FuzzVstorePageDecode(f *testing.F) {
	fuzzSeedPages(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		img := make([]byte, PageSize)
		copy(img, data) // short inputs zero-fill, long inputs truncate
		p := &Page{id: 1, data: img}
		schema := testSchema()
		switch p.Type() {
		case pageTypeHeap:
			if p.slottedSane() {
				_ = p.slottedFree()
			}
			for i := 0; i < p.nSlots(); i++ {
				rec, err := p.slottedGet(i)
				if err != nil {
					continue
				}
				if row, err := decodeRow(&schema, rec); err == nil {
					// A decodable row must re-encode without panicking.
					_, _ = encodeRow(&schema, row)
				}
			}
		case pageTypeBlob:
			chunk := int(getU16(p.data[offBlobLen:]))
			if chunk <= blobChunkMax {
				_ = p.data[blobDataOff : blobDataOff+chunk]
			}
			_ = p.Link()
		case pageTypeLeaf:
			n := btNKeys(p)
			for i := 0; i < n; i++ {
				_ = leafKey(p, i)
				_ = leafVal(p, i)
			}
			_ = leafSearch(p, 42)
		case pageTypeInternal:
			n := btNKeys(p)
			for i := 0; i <= n; i++ {
				_ = intChild(p, i)
			}
			for i := 0; i < n; i++ {
				_ = intKey(p, i)
			}
			_ = intSearch(p, 42)
		}
	})
}

// FuzzRecordDecode mutates raw row records directly (the payload level
// below the slot directory), covering every column type's length and
// varint handling.
func FuzzRecordDecode(f *testing.F) {
	schema := testSchema()
	rec, err := encodeRow(&schema, sampleRow(5, "fuzz-seed", 7, []byte("payload")))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(rec)
	f.Add([]byte{})
	f.Add([]byte{0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		row, err := decodeRow(&schema, data)
		if err != nil {
			return
		}
		if _, err := encodeRow(&schema, row); err != nil {
			t.Fatalf("decoded row does not re-encode: %v", err)
		}
	})
}
