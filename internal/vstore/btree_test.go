package vstore

import (
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

// openTestDB creates a fresh DB in a temp dir.
func openTestDB(t *testing.T, opts *Options) *DB {
	t.Helper()
	db, err := Open(filepath.Join(t.TempDir(), "test.db"), opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

// btHarness manages a root page through inserts for tests.
type btHarness struct {
	db   *DB
	root PageID
}

func (h *btHarness) insert(t *testing.T, tx *Txn, k, v uint64, replace bool) {
	t.Helper()
	root, _, err := h.db.btInsert(tx, h.root, k, v, replace)
	if err != nil {
		t.Fatalf("insert %d: %v", k, err)
	}
	h.root = root
}

func TestBTreeInsertSearch(t *testing.T) {
	db := openTestDB(t, nil)
	h := &btHarness{db: db, root: invalidPage}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	const n = 5000 // forces multiple leaf and internal splits
	rng := rand.New(rand.NewSource(42))
	keys := rng.Perm(n)
	for _, k := range keys {
		h.insert(t, tx, uint64(k), uint64(k)*3, false)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		v, ok, err := db.btSearch(h.root, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !ok || v != uint64(i)*3 {
			t.Fatalf("key %d: ok=%v v=%d", i, ok, v)
		}
	}
	if _, ok, _ := db.btSearch(h.root, uint64(n+10)); ok {
		t.Error("found key that was never inserted")
	}
}

func TestBTreeDuplicateKey(t *testing.T) {
	db := openTestDB(t, nil)
	h := &btHarness{db: db, root: invalidPage}
	tx, _ := db.Begin()
	h.insert(t, tx, 5, 50, false)
	if _, _, err := db.btInsert(tx, h.root, 5, 51, false); err == nil {
		t.Error("duplicate insert without replace should fail")
	}
	h.insert(t, tx, 5, 52, true)
	v, ok, _ := db.btSearch(h.root, 5)
	if !ok || v != 52 {
		t.Errorf("replace failed: ok=%v v=%d", ok, v)
	}
	tx.Commit()
}

func TestBTreeScanOrderedAndBounded(t *testing.T) {
	db := openTestDB(t, nil)
	h := &btHarness{db: db, root: invalidPage}
	tx, _ := db.Begin()
	rng := rand.New(rand.NewSource(7))
	inserted := make(map[uint64]bool)
	for i := 0; i < 3000; i++ {
		k := uint64(rng.Intn(10000))
		if inserted[k] {
			continue
		}
		inserted[k] = true
		h.insert(t, tx, k, k, false)
	}
	tx.Commit()

	var got []uint64
	err := db.btScan(h.root, 100, 5000, func(k, v uint64) (bool, error) {
		if k != v {
			t.Fatalf("value mismatch at %d", k)
		}
		got = append(got, k)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var want []uint64
	for k := range inserted {
		if k >= 100 && k <= 5000 {
			want = append(want, k)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("scan returned %d keys, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Early stop.
	count := 0
	db.btScan(h.root, 0, ^uint64(0), func(k, v uint64) (bool, error) {
		count++
		return count < 10, nil
	})
	if count != 10 {
		t.Errorf("early stop visited %d", count)
	}
}

func TestBTreeDelete(t *testing.T) {
	db := openTestDB(t, nil)
	h := &btHarness{db: db, root: invalidPage}
	tx, _ := db.Begin()
	const n = 2000
	for i := 0; i < n; i++ {
		h.insert(t, tx, uint64(i), uint64(i), false)
	}
	// Delete the odd keys.
	for i := 1; i < n; i += 2 {
		found, err := db.btDelete(tx, h.root, uint64(i))
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			t.Fatalf("delete %d: not found", i)
		}
	}
	tx.Commit()
	for i := 0; i < n; i++ {
		_, ok, _ := db.btSearch(h.root, uint64(i))
		if (i%2 == 0) != ok {
			t.Fatalf("key %d: present=%v", i, ok)
		}
	}
	// Deleting a missing key reports false without error.
	tx2, _ := db.Begin()
	found, err := db.btDelete(tx2, h.root, 99999)
	if err != nil || found {
		t.Errorf("missing delete: found=%v err=%v", found, err)
	}
	tx2.Commit()
}

func TestBTreeMax(t *testing.T) {
	db := openTestDB(t, nil)
	h := &btHarness{db: db, root: invalidPage}
	if _, ok, _ := db.btMax(h.root); ok {
		t.Error("empty tree has no max")
	}
	tx, _ := db.Begin()
	for _, k := range []uint64{10, 3, 99, 7} {
		h.insert(t, tx, k, k, false)
	}
	tx.Commit()
	max, ok, err := db.btMax(h.root)
	if err != nil || !ok || max != 99 {
		t.Errorf("max = %d ok=%v err=%v", max, ok, err)
	}
}

// TestBTreeRandomOps cross-checks the tree against a map model through a
// random interleaving of inserts, deletes and lookups.
func TestBTreeRandomOps(t *testing.T) {
	db := openTestDB(t, nil)
	h := &btHarness{db: db, root: invalidPage}
	model := make(map[uint64]uint64)
	rng := rand.New(rand.NewSource(1234))
	tx, _ := db.Begin()
	for op := 0; op < 20000; op++ {
		k := uint64(rng.Intn(3000))
		switch rng.Intn(3) {
		case 0: // upsert
			v := uint64(rng.Int63())
			root, _, err := db.btInsert(tx, h.root, k, v, true)
			if err != nil {
				t.Fatal(err)
			}
			h.root = root
			model[k] = v
		case 1: // delete
			found, err := db.btDelete(tx, h.root, k)
			if err != nil {
				t.Fatal(err)
			}
			_, want := model[k]
			if found != want {
				t.Fatalf("delete %d: found=%v want=%v", k, found, want)
			}
			delete(model, k)
		case 2: // lookup
			v, ok, err := db.btSearch(h.root, k)
			if err != nil {
				t.Fatal(err)
			}
			wantV, want := model[k]
			if ok != want || (ok && v != wantV) {
				t.Fatalf("search %d: ok=%v v=%d, want ok=%v v=%d", k, ok, v, want, wantV)
			}
		}
	}
	tx.Commit()
	// Final full-scan cross-check: ordered and complete.
	var keys []uint64
	prev := int64(-1)
	err := db.btScan(h.root, 0, ^uint64(0), func(k, v uint64) (bool, error) {
		if int64(k) <= prev {
			t.Fatalf("scan out of order at %d", k)
		}
		prev = int64(k)
		if model[k] != v {
			t.Fatalf("scan value mismatch at %d", k)
		}
		keys = append(keys, k)
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != len(model) {
		t.Fatalf("scan found %d keys, model has %d", len(keys), len(model))
	}
}
