package vstore

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func testSchema() Schema {
	return Schema{
		Name: "T",
		Cols: []Column{
			{Name: "ID", Type: TypeInt64, NotNull: true},
			{Name: "NAME", Type: TypeText},
			{Name: "SCORE", Type: TypeFloat64},
			{Name: "DATA", Type: TypeBytes},
			{Name: "PAYLOAD", Type: TypeBlob},
			{Name: "WHEN", Type: TypeTime},
			{Name: "RANK", Type: TypeInt64, NotNull: true},
		},
		Indexes: []IndexSpec{{Name: "BY_RANK", Cols: []string{"RANK"}}},
	}
}

func createTestTable(t *testing.T, db *DB) *Table {
	t.Helper()
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := db.CreateTable(tx, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return tbl
}

func sampleRow(id int64, name string, rank int64, payload []byte) []Value {
	pk := NullV(TypeInt64)
	if id != 0 {
		pk = Int64(id)
	}
	return []Value{
		pk,
		Text(name),
		Float64V(float64(rank) * 1.5),
		BytesV([]byte{1, 2, 3}),
		Blob(payload),
		TimeV(time.Unix(1600000000, 0).UTC()),
		Int64(rank),
	}
}

func TestTableInsertGetRoundTrip(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)

	tx, _ := db.Begin()
	payload := bytes.Repeat([]byte("cbvr!"), 4000) // multi-page blob
	pk, err := tbl.Insert(tx, sampleRow(0, "first", 7, payload))
	if err != nil {
		t.Fatal(err)
	}
	if pk != 1 {
		t.Errorf("auto pk = %d, want 1", pk)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}

	row, ok, err := tbl.Get(nil, pk)
	if err != nil || !ok {
		t.Fatalf("get: ok=%v err=%v", ok, err)
	}
	if row[1].Str != "first" || row[2].Float != 10.5 || row[6].Int != 7 {
		t.Errorf("row mismatch: %+v", row)
	}
	if !row[5].Time.Equal(time.Unix(1600000000, 0)) {
		t.Errorf("time mismatch: %v", row[5].Time)
	}
	got, err := db.ReadBlob(nil, row[4].Blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("blob mismatch: %d bytes vs %d", len(got), len(payload))
	}
}

func TestTableAutoPKSequence(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)
	tx, _ := db.Begin()
	for i := 1; i <= 5; i++ {
		pk, err := tbl.Insert(tx, sampleRow(0, fmt.Sprintf("r%d", i), int64(i), nil))
		if err != nil {
			t.Fatal(err)
		}
		if pk != int64(i) {
			t.Errorf("pk %d, want %d", pk, i)
		}
	}
	// Explicit pk then auto continues after it.
	if _, err := tbl.Insert(tx, sampleRow(100, "explicit", 6, nil)); err != nil {
		t.Fatal(err)
	}
	pk, err := tbl.Insert(tx, sampleRow(0, "after", 7, nil))
	if err != nil {
		t.Fatal(err)
	}
	if pk != 101 {
		t.Errorf("pk after explicit 100 = %d, want 101", pk)
	}
	tx.Commit()
}

func TestTableDuplicatePK(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)
	tx, _ := db.Begin()
	if _, err := tbl.Insert(tx, sampleRow(9, "a", 1, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(tx, sampleRow(9, "b", 2, nil)); err == nil {
		t.Error("duplicate pk should fail")
	}
	tx.Commit()
}

func TestTableUpdate(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)
	tx, _ := db.Begin()
	pk, err := tbl.Insert(tx, sampleRow(0, "before", 1, []byte("old-blob")))
	if err != nil {
		t.Fatal(err)
	}
	tx.Commit()

	tx2, _ := db.Begin()
	row, _, _ := tbl.Get(tx2, pk)
	row[1] = Text("after-update-with-a-much-longer-name-to-force-relocation-" + string(bytes.Repeat([]byte("x"), 500)))
	row[4] = Blob([]byte("new-blob"))
	row[6] = Int64(42)
	if err := tbl.Update(tx2, pk, row); err != nil {
		t.Fatal(err)
	}
	tx2.Commit()

	got, ok, err := tbl.Get(nil, pk)
	if err != nil || !ok {
		t.Fatalf("get after update: %v", err)
	}
	if got[6].Int != 42 {
		t.Errorf("rank not updated: %d", got[6].Int)
	}
	b, _ := db.ReadBlob(nil, got[4].Blob)
	if string(b) != "new-blob" {
		t.Errorf("blob not updated: %q", b)
	}
	// Secondary index reflects the new rank.
	lo, hi, _ := IndexPrefixRange([]int64{42})
	var found []int64
	tbl.IndexScan(nil, "BY_RANK", lo, hi, func(pk int64) (bool, error) {
		found = append(found, pk)
		return true, nil
	})
	if len(found) != 1 || found[0] != pk {
		t.Errorf("index after update: %v", found)
	}
	lo, hi, _ = IndexPrefixRange([]int64{1})
	count := 0
	tbl.IndexScan(nil, "BY_RANK", lo, hi, func(int64) (bool, error) { count++; return true, nil })
	if count != 0 {
		t.Errorf("stale index entry under old rank: %d", count)
	}
}

func TestTableDelete(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)
	tx, _ := db.Begin()
	pk1, _ := tbl.Insert(tx, sampleRow(0, "keep", 1, []byte("blob1")))
	pk2, _ := tbl.Insert(tx, sampleRow(0, "drop", 2, []byte("blob2")))
	tx.Commit()

	tx2, _ := db.Begin()
	ok, err := tbl.Delete(tx2, pk2)
	if err != nil || !ok {
		t.Fatalf("delete: ok=%v err=%v", ok, err)
	}
	ok, err = tbl.Delete(tx2, 999)
	if err != nil || ok {
		t.Fatalf("delete missing: ok=%v err=%v", ok, err)
	}
	tx2.Commit()

	if _, ok, _ := tbl.Get(nil, pk2); ok {
		t.Error("deleted row still readable")
	}
	if _, ok, _ := tbl.Get(nil, pk1); !ok {
		t.Error("sibling row lost")
	}
	n, _ := tbl.Count(nil)
	if n != 1 {
		t.Errorf("count = %d, want 1", n)
	}
}

func TestTableScanOrder(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)
	tx, _ := db.Begin()
	rng := rand.New(rand.NewSource(5))
	want := rng.Perm(200)
	for _, id := range want {
		if _, err := tbl.Insert(tx, sampleRow(int64(id)+1, "x", 3, nil)); err != nil {
			t.Fatal(err)
		}
	}
	tx.Commit()
	prev := int64(0)
	n := 0
	err := tbl.Scan(nil, func(pk int64, row []Value) (bool, error) {
		if pk <= prev {
			t.Fatalf("scan out of order: %d after %d", pk, prev)
		}
		prev = pk
		n++
		return true, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != 200 {
		t.Errorf("scanned %d rows, want 200", n)
	}
}

func TestTableNullHandling(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)
	tx, _ := db.Begin()
	row := sampleRow(0, "n", 1, nil)
	row[1] = NullV(TypeText)
	row[2] = NullV(TypeFloat64)
	row[3] = NullV(TypeBytes)
	row[4] = NullV(TypeBlob)
	row[5] = NullV(TypeTime)
	pk, err := tbl.Insert(tx, row)
	if err != nil {
		t.Fatal(err)
	}
	// NOT NULL violation.
	bad := sampleRow(0, "bad", 2, nil)
	bad[6] = NullV(TypeInt64)
	if _, err := tbl.Insert(tx, bad); err == nil {
		t.Error("NOT NULL violation not caught")
	}
	tx.Commit()
	got, ok, err := tbl.Get(nil, pk)
	if err != nil || !ok {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if !got[i].Null {
			t.Errorf("column %d should be NULL", i)
		}
	}
}

func TestTableTypeMismatch(t *testing.T) {
	db := openTestDB(t, nil)
	tbl := createTestTable(t, db)
	tx, _ := db.Begin()
	defer tx.Commit()
	row := sampleRow(0, "x", 1, nil)
	row[2] = Text("not-a-float")
	if _, err := tbl.Insert(tx, row); err == nil {
		t.Error("type mismatch not caught")
	}
	if _, err := tbl.Insert(tx, row[:3]); err == nil {
		t.Error("arity mismatch not caught")
	}
}

func TestPackIndexKeyBounds(t *testing.T) {
	if _, err := PackIndexKey([]int64{256}, 1); err == nil {
		t.Error("column value 256 should be rejected")
	}
	if _, err := PackIndexKey([]int64{-1}, 1); err == nil {
		t.Error("negative column value should be rejected")
	}
	if _, err := PackIndexKey([]int64{1, 2, 3, 4}, 1); err == nil {
		t.Error("too many columns should be rejected")
	}
	if _, err := PackIndexKey([]int64{1}, maxIndexPK+1); err == nil {
		t.Error("oversized pk should be rejected")
	}
}

// PackIndexKey ordering property: keys group by column values first, pk
// second, so a prefix range covers exactly one column-value combination.
func TestPackIndexKeyOrderingProperty(t *testing.T) {
	f := func(a, b uint8, pk1, pk2 uint32) bool {
		k1, err1 := PackIndexKey([]int64{int64(a)}, int64(pk1))
		k2, err2 := PackIndexKey([]int64{int64(b)}, int64(pk2))
		if err1 != nil || err2 != nil {
			return false
		}
		if a != b {
			return (a < b) == (k1 < k2)
		}
		if pk1 != pk2 {
			return (pk1 < pk2) == (k1 < k2)
		}
		return k1 == k2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Row codec round-trip property over random content.
func TestRowCodecRoundTripProperty(t *testing.T) {
	schema := testSchema()
	f := func(name string, score float64, data []byte, rank uint8, nanos int64) bool {
		row := []Value{
			Int64(1),
			Text(name),
			Float64V(score),
			BytesV(data),
			Value{Type: TypeBlob, Blob: BlobRef{First: 3, Len: 17}},
			TimeV(time.Unix(0, nanos).UTC()),
			Int64(int64(rank)),
		}
		enc, err := encodeRow(&schema, row)
		if err != nil {
			return false
		}
		dec, err := decodeRow(&schema, enc)
		if err != nil {
			return false
		}
		return dec[1].Str == name &&
			(dec[2].Float == score || (score != score && dec[2].Float != dec[2].Float)) &&
			bytes.Equal(dec[3].Bytes, data) &&
			dec[4].Blob == row[4].Blob &&
			dec[5].Time.UnixNano() == nanos &&
			dec[6].Int == int64(rank)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSchemaValidation(t *testing.T) {
	cases := []Schema{
		{},          // no name
		{Name: "X"}, // no cols
		{Name: "X", Cols: []Column{{Name: "A", Type: TypeText}}},                               // non-int pk
		{Name: "X", Cols: []Column{{Name: "A", Type: TypeInt64}, {Name: "A", Type: TypeText}}}, // dup col
		{Name: "X", Cols: []Column{{Name: "A", Type: TypeInt64}},
			Indexes: []IndexSpec{{Name: "I", Cols: []string{"B"}}}}, // unknown index col
		{Name: "X", Cols: []Column{{Name: "A", Type: TypeInt64}, {Name: "B", Type: TypeText}},
			Indexes: []IndexSpec{{Name: "I", Cols: []string{"B"}}}}, // non-int index col
	}
	for i, s := range cases {
		if err := s.validate(); err == nil {
			t.Errorf("case %d: invalid schema accepted", i)
		}
	}
	good := testSchema()
	if err := good.validate(); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestCreateTableDuplicate(t *testing.T) {
	db := openTestDB(t, nil)
	createTestTable(t, db)
	tx, _ := db.Begin()
	defer tx.Abort()
	if _, err := db.CreateTable(tx, testSchema()); err == nil {
		t.Error("duplicate table creation should fail")
	}
}

func TestTablePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/p.db"
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, _ := db.Begin()
	tbl, err := db.CreateTable(tx, testSchema())
	if err != nil {
		t.Fatal(err)
	}
	pk, err := tbl.Insert(tx, sampleRow(0, "persist", 3, []byte("blob-persists")))
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	tbl2, err := db2.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	row, ok, err := tbl2.Get(nil, pk)
	if err != nil || !ok {
		t.Fatalf("row lost across reopen: ok=%v err=%v", ok, err)
	}
	if row[1].Str != "persist" {
		t.Errorf("name = %q", row[1].Str)
	}
	b, err := db2.ReadBlob(nil, row[4].Blob)
	if err != nil || string(b) != "blob-persists" {
		t.Errorf("blob = %q err=%v", b, err)
	}
}
