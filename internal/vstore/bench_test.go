package vstore

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"
)

func benchDB(b *testing.B, opts *Options) (*DB, *Table) {
	b.Helper()
	db, err := Open(filepath.Join(b.TempDir(), "bench.db"), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { db.Close() })
	tx, err := db.Begin()
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := db.CreateTable(tx, testSchema())
	if err != nil {
		b.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return db, tbl
}

func BenchmarkVstoreInsertSmallRows(b *testing.B) {
	db, tbl := benchDB(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin()
		if _, err := tbl.Insert(tx, sampleRow(0, "bench", int64(i%200), nil)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVstoreInsertNoWALSync(b *testing.B) {
	db, tbl := benchDB(b, &Options{NoWALSync: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin()
		if _, err := tbl.Insert(tx, sampleRow(0, "bench", int64(i%200), nil)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVstoreInsertBatch100(b *testing.B) {
	db, tbl := benchDB(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin()
		for j := 0; j < 100; j++ {
			if _, err := tbl.Insert(tx, sampleRow(0, "bench", int64(j%200), nil)); err != nil {
				b.Fatal(err)
			}
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVstoreInsertBlob64K(b *testing.B) {
	db, tbl := benchDB(b, nil)
	blob := make([]byte, 64<<10)
	rand.New(rand.NewSource(1)).Read(blob)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin()
		if _, err := tbl.Insert(tx, sampleRow(0, "blob", 1, blob)); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func benchPopulated(b *testing.B, opts *Options, rows int) (*DB, *Table) {
	db, tbl := benchDB(b, opts)
	tx, _ := db.Begin()
	for i := 0; i < rows; i++ {
		if _, err := tbl.Insert(tx, sampleRow(0, fmt.Sprintf("row-%d", i), int64(i%200), nil)); err != nil {
			b.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		b.Fatal(err)
	}
	return db, tbl
}

func BenchmarkVstoreGetByPK(b *testing.B) {
	_, tbl := benchPopulated(b, nil, 10000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pk := int64(rng.Intn(10000)) + 1
		if _, ok, err := tbl.Get(nil, pk); err != nil || !ok {
			b.Fatalf("pk %d: ok=%v err=%v", pk, ok, err)
		}
	}
}

// Buffer-pool sweep: random point reads over a table much larger than a
// small cache vs one that fits.
func BenchmarkVstoreBufferPool(b *testing.B) {
	for _, pages := range []int{16, 128, 2048} {
		b.Run(fmt.Sprintf("cache=%d", pages), func(b *testing.B) {
			_, tbl := benchPopulated(b, &Options{CachePages: pages}, 20000)
			rng := rand.New(rand.NewSource(3))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pk := int64(rng.Intn(20000)) + 1
				if _, ok, err := tbl.Get(nil, pk); err != nil || !ok {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkVstoreScan10K(b *testing.B) {
	_, tbl := benchPopulated(b, nil, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		err := tbl.Scan(nil, func(pk int64, row []Value) (bool, error) {
			n++
			return true, nil
		})
		if err != nil || n != 10000 {
			b.Fatalf("scan n=%d err=%v", n, err)
		}
	}
}

func BenchmarkVstoreIndexScan(b *testing.B) {
	_, tbl := benchPopulated(b, nil, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo, hi, _ := IndexPrefixRange([]int64{int64(i % 200)})
		n := 0
		err := tbl.IndexScan(nil, "BY_RANK", lo, hi, func(pk int64) (bool, error) {
			n++
			return true, nil
		})
		if err != nil || n == 0 {
			b.Fatalf("index scan n=%d err=%v", n, err)
		}
	}
}

func BenchmarkVstoreUpdateInPlace(b *testing.B) {
	db, tbl := benchPopulated(b, nil, 1000)
	row, _, _ := tbl.Get(nil, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tx, _ := db.Begin()
		row[6] = Int64(int64(i % 200))
		if err := tbl.Update(tx, 1, row); err != nil {
			b.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVstoreRecovery(b *testing.B) {
	// Measures replaying a ~100-commit WAL at open.
	dir := b.TempDir()
	path := filepath.Join(dir, "rec.db")
	db, err := Open(path, nil)
	if err != nil {
		b.Fatal(err)
	}
	tx, _ := db.Begin()
	tbl, _ := db.CreateTable(tx, testSchema())
	tx.Commit()
	for i := 0; i < 100; i++ {
		tx, _ := db.Begin()
		if _, err := tbl.Insert(tx, sampleRow(0, "r", int64(i%200), make([]byte, 2000))); err != nil {
			b.Fatal(err)
		}
		tx.Commit()
	}
	db.SimulateCrash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db2, err := Open(path, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		// Leave the WAL intact for the next iteration by crashing again
		// without checkpointing. Recovery rewrites the same pages, so the
		// replay is idempotent.
		db2.SimulateCrash()
		b.StartTimer()
	}
}

func BenchmarkBTreeInsertSequential(b *testing.B) {
	db, _ := benchDB(b, nil)
	tx, _ := db.Begin()
	h := &btHarness{db: db, root: invalidPage}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root, _, err := db.btInsert(tx, h.root, uint64(i), uint64(i), false)
		if err != nil {
			b.Fatal(err)
		}
		h.root = root
	}
	b.StopTimer()
	tx.Commit()
}

func BenchmarkBTreeSearch(b *testing.B) {
	db, _ := benchDB(b, nil)
	tx, _ := db.Begin()
	h := &btHarness{db: db, root: invalidPage}
	for i := 0; i < 100000; i++ {
		root, _, err := db.btInsert(tx, h.root, uint64(i), uint64(i), false)
		if err != nil {
			b.Fatal(err)
		}
		h.root = root
	}
	tx.Commit()
	rng := rand.New(rand.NewSource(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := uint64(rng.Intn(100000))
		if _, ok, err := db.btSearch(h.root, k); err != nil || !ok {
			b.Fatal(err)
		}
	}
}
