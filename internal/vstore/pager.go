package vstore

import (
	"container/list"
	"fmt"
	"sync"
)

// DefaultCachePages is the default buffer-pool capacity.
const DefaultCachePages = 1024

// pager manages the data file and the buffer pool. Page *contents* are
// protected by the DB's RWMutex (writers are exclusive); the buffer-pool
// bookkeeping (cache map, LRU list, dirty flags) is additionally guarded
// by its own mutex because concurrent readers both touch the LRU.
type pager struct {
	f File

	mu        sync.Mutex
	pageCount PageID // pages in the file (including meta page 0)
	cacheCap  int
	cache     map[PageID]*list.Element // -> *Page
	lru       *list.List               // front = most recently used
}

func openPager(fs VFS, path string, cacheCap int) (*pager, error) {
	if cacheCap <= 0 {
		cacheCap = DefaultCachePages
	}
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("vstore: open data file: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		_ = f.Close() // errvet:ignore open already failed
		return nil, fmt.Errorf("vstore: stat data file: %w", err)
	}
	if size == 0 {
		// Freshly created (or empty): make the directory entry durable so
		// the file cannot vanish on power loss after its contents are
		// fsynced.
		if err := fs.SyncDir(path); err != nil {
			_ = f.Close() // errvet:ignore open already failed
			return nil, err
		}
	}
	if rem := size % PageSize; rem != 0 {
		// A torn tail extension (e.g. ENOSPC or power loss mid-WriteAt
		// while the file was being grown). The partial page can never be
		// referenced: pages become reachable only after their full image
		// is committed through the WAL, and replay re-extends the file as
		// needed. Salvage by truncating back to the page boundary.
		size -= rem
		if err := f.Truncate(size); err != nil {
			_ = f.Close() // errvet:ignore open already failed
			return nil, fmt.Errorf("vstore: truncate torn data file tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			_ = f.Close() // errvet:ignore open already failed
			return nil, fmt.Errorf("vstore: sync after tail salvage: %w", err)
		}
	}
	return &pager{
		f:         f,
		pageCount: PageID(size / PageSize),
		cacheCap:  cacheCap,
		cache:     make(map[PageID]*list.Element),
		lru:       list.New(),
	}, nil
}

func (pg *pager) close() error {
	if pg.f == nil {
		return nil
	}
	err := pg.f.Close()
	pg.f = nil
	return err
}

// get returns the page, reading it from disk on a cache miss. The page
// stays valid until evicted; callers holding pages across eviction points
// must pin them.
func (pg *pager) get(id PageID) (*Page, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if el, ok := pg.cache[id]; ok {
		pg.lru.MoveToFront(el)
		return el.Value.(*Page), nil
	}
	if id >= pg.pageCount {
		return nil, fmt.Errorf("vstore: page %d beyond file end (%d pages)", id, pg.pageCount)
	}
	if pg.f == nil {
		return nil, fmt.Errorf("vstore: read page %d: %w", id, ErrClosed)
	}
	p := &Page{id: id, data: make([]byte, PageSize)}
	if _, err := pg.f.ReadAt(p.data, int64(id)*PageSize); err != nil {
		return nil, fmt.Errorf("vstore: read page %d: %w", id, err)
	}
	pg.insertCache(p)
	return p, nil
}

// cached returns the page if it is resident in the buffer pool, without
// touching disk or the LRU order.
func (pg *pager) cached(id PageID) *Page {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if el, ok := pg.cache[id]; ok {
		return el.Value.(*Page)
	}
	return nil
}

// allocate extends the file (or reuses nothing — free-list reuse is the
// DB's job) and returns a zeroed in-cache page.
func (pg *pager) allocate() (*Page, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	id := pg.pageCount
	pg.pageCount++
	p := &Page{id: id, data: make([]byte, PageSize), dirty: true}
	if err := pg.writePage(p); err != nil {
		return nil, err
	}
	pg.insertCache(p)
	return p, nil
}

func (pg *pager) insertCache(p *Page) {
	el := pg.lru.PushFront(p)
	pg.cache[p.id] = el
	for pg.lru.Len() > pg.cacheCap {
		back := pg.lru.Back()
		victim := back.Value.(*Page)
		if victim.pins > 0 {
			// Move a pinned victim to the front and stop evicting this
			// round; with sane cache sizes pins are transient.
			pg.lru.MoveToFront(back)
			break
		}
		if victim.dirty {
			// WAL-before-data is guaranteed by the commit protocol: all
			// dirty pages were logged and the WAL synced at commit time.
			if err := pg.writePage(victim); err != nil {
				// Keep the page cached rather than lose the write.
				pg.lru.MoveToFront(back)
				break
			}
		}
		pg.lru.Remove(back)
		delete(pg.cache, victim.id)
	}
}

// extendDetached reserves a fresh page id at the end of the file without
// touching the buffer pool or the free list. Staged blob writers running
// outside the DB writer lock use it: the caller owns the page image
// privately (the page is never inserted into the cache, so concurrent
// staging cannot evict pages a transaction holds pointers to) and persists
// it with writeDetached once sealed.
func (pg *pager) extendDetached() PageID {
	pg.mu.Lock()
	id := pg.pageCount
	pg.pageCount++
	pg.mu.Unlock()
	return id
}

// writeDetached writes a detached (staged) page image at its slot.
// File.WriteAt is safe for concurrent use and detached pages are
// invisible to the buffer pool, so no bookkeeping lock is needed; distinct
// stagers always write distinct slots.
func (pg *pager) writeDetached(p *Page) error {
	f := pg.f
	if f == nil {
		return fmt.Errorf("vstore: write staged page %d: %w", p.id, ErrClosed)
	}
	if _, err := f.WriteAt(p.data, int64(p.id)*PageSize); err != nil {
		return fmt.Errorf("vstore: write staged page %d: %w", p.id, err)
	}
	return nil
}

// writePage writes the page image at its slot and clears the dirty flag.
func (pg *pager) writePage(p *Page) error {
	if pg.f == nil {
		return fmt.Errorf("vstore: write page %d: %w", p.id, ErrClosed)
	}
	if _, err := pg.f.WriteAt(p.data, int64(p.id)*PageSize); err != nil {
		return fmt.Errorf("vstore: write page %d: %w", p.id, err)
	}
	p.dirty = false
	return nil
}

// flushAll writes every dirty cached page and fsyncs the data file.
func (pg *pager) flushAll() error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	for el := pg.lru.Front(); el != nil; el = el.Next() {
		p := el.Value.(*Page)
		if p.dirty {
			if err := pg.writePage(p); err != nil {
				return err
			}
		}
	}
	if err := pg.f.Sync(); err != nil {
		return fmt.Errorf("vstore: sync data file: %w", err)
	}
	return nil
}

// writeRaw writes an arbitrary page image directly to the file, extending
// it if needed (recovery path; the cache must be cold).
func (pg *pager) writeRaw(id PageID, image []byte) error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if len(image) != PageSize {
		return fmt.Errorf("vstore: raw image wrong size %d", len(image))
	}
	if _, err := pg.f.WriteAt(image, int64(id)*PageSize); err != nil {
		return fmt.Errorf("vstore: recover page %d: %w", id, err)
	}
	if id >= pg.pageCount {
		pg.pageCount = id + 1
	}
	return nil
}
