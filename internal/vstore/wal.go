package vstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The write-ahead log is redo-only with full-page after-images: every
// commit appends one pageImage record per page the transaction touched,
// followed by a commit record, then fsyncs. Recovery replays the images of
// committed transactions (in log order) into the data file; full images
// make replay idempotent. A checkpoint flushes all dirty pages, fsyncs the
// data file and truncates the log.
//
// Record wire format:
//
//	u32 payloadLen | u32 crc32(payload) | payload
//
// payload:
//
//	u64 LSN | u64 txnID | u8 kind | kind-specific body
//
// pageImage body: u32 pageID | PageSize bytes.
const (
	walKindPageImage uint8 = iota + 1
	walKindCommit
)

const walHeaderLen = 8 // payloadLen + crc

type walRecord struct {
	lsn    uint64
	txnID  uint64
	kind   uint8
	pageID PageID
	image  []byte
}

// wal is the append-only log writer.
type wal struct {
	f       File
	nextLSN uint64
	size    int64
}

func openWAL(fs VFS, path string) (*wal, error) {
	f, err := fs.OpenFile(path)
	if err != nil {
		return nil, fmt.Errorf("vstore: open wal: %w", err)
	}
	size, err := f.Size()
	if err != nil {
		_ = f.Close() // errvet:ignore open already failed
		return nil, fmt.Errorf("vstore: stat wal: %w", err)
	}
	if size == 0 {
		// Make the directory entry of a freshly created log durable: a
		// committed transaction is only as durable as the WAL file's
		// existence.
		if err := fs.SyncDir(path); err != nil {
			_ = f.Close() // errvet:ignore open already failed
			return nil, err
		}
	}
	return &wal{f: f, nextLSN: 1, size: size}, nil
}

func (w *wal) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// appendRecord writes one record at the current tail and returns its LSN.
func (w *wal) appendRecord(txnID uint64, kind uint8, pageID PageID, image []byte) (uint64, error) {
	if w.f == nil {
		// The file was abandoned mid-flight (SimulateCrash); fail like a
		// write to a closed descriptor would.
		return 0, fmt.Errorf("vstore: append wal record: %w", ErrClosed)
	}
	lsn := w.nextLSN
	w.nextLSN++
	bodyLen := 8 + 8 + 1
	if kind == walKindPageImage {
		bodyLen += 4 + len(image)
	}
	buf := make([]byte, walHeaderLen+bodyLen)
	payload := buf[walHeaderLen:]
	binary.BigEndian.PutUint64(payload[0:], lsn)
	binary.BigEndian.PutUint64(payload[8:], txnID)
	payload[16] = kind
	if kind == walKindPageImage {
		binary.BigEndian.PutUint32(payload[17:], uint32(pageID))
		copy(payload[21:], image)
	}
	binary.BigEndian.PutUint32(buf[0:], uint32(bodyLen))
	binary.BigEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.f.WriteAt(buf, w.size); err != nil {
		return 0, fmt.Errorf("vstore: append wal record: %w", err)
	}
	w.size += int64(len(buf))
	return lsn, nil
}

// sync makes all appended records durable.
func (w *wal) sync() error {
	if w.f == nil {
		return fmt.Errorf("vstore: sync wal: %w", ErrClosed)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("vstore: sync wal: %w", err)
	}
	return nil
}

// truncate empties the log after a checkpoint.
func (w *wal) truncate() error {
	if w.f == nil {
		return fmt.Errorf("vstore: truncate wal: %w", ErrClosed)
	}
	if err := w.f.Truncate(0); err != nil {
		return fmt.Errorf("vstore: truncate wal: %w", err)
	}
	w.size = 0
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("vstore: sync truncated wal: %w", err)
	}
	return nil
}

// readAll scans the log from the start, returning complete records up to
// the first torn/corrupt entry (which is discarded, as are any following
// bytes).
func (w *wal) readAll() ([]walRecord, error) {
	f := io.NewSectionReader(w.f, 0, w.size)
	var out []walRecord
	hdr := make([]byte, walHeaderLen)
	for {
		if _, err := io.ReadFull(f, hdr); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return out, nil
			}
			return nil, fmt.Errorf("vstore: read wal header: %w", err)
		}
		bodyLen := binary.BigEndian.Uint32(hdr[0:])
		wantCRC := binary.BigEndian.Uint32(hdr[4:])
		if bodyLen < 17 || bodyLen > 2*PageSize {
			return out, nil // torn tail
		}
		payload := make([]byte, bodyLen)
		if _, err := io.ReadFull(f, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return out, nil
			}
			return nil, fmt.Errorf("vstore: read wal payload: %w", err)
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			return out, nil // torn tail
		}
		rec := walRecord{
			lsn:   binary.BigEndian.Uint64(payload[0:]),
			txnID: binary.BigEndian.Uint64(payload[8:]),
			kind:  payload[16],
		}
		if rec.kind == walKindPageImage {
			if len(payload) < 21+PageSize {
				return out, nil
			}
			rec.pageID = PageID(binary.BigEndian.Uint32(payload[17:]))
			rec.image = payload[21 : 21+PageSize]
		}
		out = append(out, rec)
	}
}
