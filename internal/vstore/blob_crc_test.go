package vstore

import (
	"bytes"
	"encoding/binary"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBlobCommitted streams data into a committed blob chain through
// the given writer mode and closes the DB so the pages are durable on
// disk.
func writeBlobCommitted(t *testing.T, path string, data []byte, spooled bool) BlobRef {
	t.Helper()
	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	var w *BlobWriter
	if spooled {
		w = db.NewSpooledBlobWriter(tx)
	} else {
		w = db.NewBlobWriter(tx)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	ref, err := w.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return ref
}

// TestBlobPageChecksumRoundTrip pins that sealed pages carry a valid
// checksum across close/reopen for both writer modes and all page-count
// shapes (single page, exact boundary, multi-page).
func TestBlobPageChecksumRoundTrip(t *testing.T) {
	for _, spooled := range []bool{false, true} {
		for _, size := range []int{1, blobChunkMax, 3*blobChunkMax + 41} {
			path := filepath.Join(t.TempDir(), "crc.db")
			want := streamPattern(size)
			ref := writeBlobCommitted(t, path, want, spooled)

			db, err := Open(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := io.ReadAll(db.NewBlobReader(nil, ref))
			if err != nil {
				t.Fatalf("spooled=%v size=%d: read: %v", spooled, size, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("spooled=%v size=%d: payload mismatch", spooled, size)
			}
			db.Close()
		}
	}
}

// TestBlobPageChecksumDetectsCorruption flips one payload byte of each
// page of a committed multi-page blob directly in the data file and
// requires the reader to fail with a checksum error at exactly that
// page — never to return corrupt bytes as data.
func TestBlobPageChecksumDetectsCorruption(t *testing.T) {
	for _, spooled := range []bool{false, true} {
		size := 2*blobChunkMax + 100
		path := filepath.Join(t.TempDir(), "corrupt.db")
		ref := writeBlobCommitted(t, path, streamPattern(size), spooled)

		// Walk the chain once (clean DB) to learn the page IDs.
		db, err := Open(path, nil)
		if err != nil {
			t.Fatal(err)
		}
		var chain []PageID
		for id := ref.First; id != invalidPage; {
			p, err := db.pager.get(id)
			if err != nil {
				t.Fatal(err)
			}
			chain = append(chain, id)
			id = p.Link()
		}
		db.Close()
		if len(chain) != 3 {
			t.Fatalf("spooled=%v: blob spans %d pages, want 3", spooled, len(chain))
		}

		for pi, pid := range chain {
			// Flip a payload byte on disk, mid-chunk.
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			off := int64(pid)*PageSize + blobDataOff + 37
			corrupted := append([]byte(nil), raw...)
			corrupted[off] ^= 0x40
			if err := os.WriteFile(path, corrupted, 0o644); err != nil {
				t.Fatal(err)
			}

			db, err := Open(path, nil)
			if err != nil {
				t.Fatal(err)
			}
			_, err = io.ReadAll(db.NewBlobReader(nil, ref))
			if err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
				t.Fatalf("spooled=%v page %d: read err = %v, want checksum mismatch", spooled, pi, err)
			}
			db.Close()

			// Restore for the next page's corruption round.
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestOldFormatVersionRejected pins the version gate that accompanies
// the blob-layout change: a file stamped with the pre-CRC format
// version must fail at Open with a clear version error, not limp into
// per-page checksum mismatches on every blob read.
func TestOldFormatVersionRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.db")
	writeBlobCommitted(t, path, streamPattern(64), false)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	binary.BigEndian.PutUint32(raw[offMetaVersion:], 1)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, nil); err == nil || !strings.Contains(err.Error(), "unsupported format version") {
		t.Fatalf("Open err = %v, want unsupported format version", err)
	}
}

// TestBlobPageChecksumHeaderCorruptionStillErrors flips a bit inside the
// stored CRC itself: the payload is intact but the seal no longer
// matches, which must also surface as a checksum error (a torn header
// write is as fatal as a torn payload).
func TestBlobPageChecksumHeaderCorruptionStillErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hdr.db")
	ref := writeBlobCommitted(t, path, streamPattern(blobChunkMax/2), true)

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	off := int64(ref.First)*PageSize + offBlobCRC
	stored := binary.BigEndian.Uint32(raw[off:])
	binary.BigEndian.PutUint32(raw[off:], stored^1)
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	db, err := Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := io.ReadAll(db.NewBlobReader(nil, ref)); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("read err = %v, want checksum mismatch", err)
	}
}
