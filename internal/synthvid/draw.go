package synthvid

import (
	"math"
	"math/rand"

	"cbvr/internal/imaging"
)

// rgb is a convenience colour triple for the scene painters.
type rgb struct{ r, g, b uint8 }

func pick(rng *rand.Rand, colors []rgb) rgb {
	return colors[rng.Intn(len(colors))]
}

// fillRect paints the half-open rectangle [x0,x1)×[y0,y1), clipped to the
// image.
func fillRect(im *imaging.Image, x0, y0, x1, y1 int, r, g, b uint8) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > im.W {
		x1 = im.W
	}
	if y1 > im.H {
		y1 = im.H
	}
	for y := y0; y < y1; y++ {
		i := (y*im.W + x0) * 3
		for x := x0; x < x1; x++ {
			im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
			i += 3
		}
	}
}

// fillCircle paints a filled disc centred at (cx, cy), clipped to the image.
func fillCircle(im *imaging.Image, cx, cy, rad int, r, g, b uint8) {
	if rad <= 0 {
		return
	}
	r2 := rad * rad
	for y := cy - rad; y <= cy+rad; y++ {
		if y < 0 || y >= im.H {
			continue
		}
		dy := y - cy
		for x := cx - rad; x <= cx+rad; x++ {
			if x < 0 || x >= im.W {
				continue
			}
			dx := x - cx
			if dx*dx+dy*dy <= r2 {
				im.Set(x, y, r, g, b)
			}
		}
	}
}

// ringCircle paints a circle outline of the given thickness.
func ringCircle(im *imaging.Image, cx, cy, rad, thick int, r, g, b uint8) {
	if rad <= 0 || thick <= 0 {
		return
	}
	outer := rad * rad
	in := rad - thick
	if in < 0 {
		in = 0
	}
	inner := in * in
	for y := cy - rad; y <= cy+rad; y++ {
		if y < 0 || y >= im.H {
			continue
		}
		dy := y - cy
		for x := cx - rad; x <= cx+rad; x++ {
			if x < 0 || x >= im.W {
				continue
			}
			dx := x - cx
			d := dx*dx + dy*dy
			if d <= outer && d >= inner {
				im.Set(x, y, r, g, b)
			}
		}
	}
}

// vGradient paints a vertical gradient from top colour to bottom colour
// over the whole image.
func vGradient(im *imaging.Image, top, bottom rgb) {
	for y := 0; y < im.H; y++ {
		f := 0.0
		if im.H > 1 {
			f = float64(y) / float64(im.H-1)
		}
		r := lerp8(top.r, bottom.r, f)
		g := lerp8(top.g, bottom.g, f)
		b := lerp8(top.b, bottom.b, f)
		i := y * im.W * 3
		for x := 0; x < im.W; x++ {
			im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
			i += 3
		}
	}
}

// hStripe paints a horizontal band [y0,y1).
func hStripe(im *imaging.Image, y0, y1 int, c rgb) {
	fillRect(im, 0, y0, im.W, y1, c.r, c.g, c.b)
}

func lerp8(a, b uint8, f float64) uint8 {
	return uint8(float64(a) + (float64(b)-float64(a))*f + 0.5)
}

// valueNoise is a seeded lattice value-noise field used for natural
// textures (grass, foliage, film grain structure).
type valueNoise struct {
	perm [256]uint8
}

func newValueNoise(rng *rand.Rand) *valueNoise {
	n := &valueNoise{}
	for i := range n.perm {
		n.perm[i] = uint8(i)
	}
	rng.Shuffle(len(n.perm), func(i, j int) {
		n.perm[i], n.perm[j] = n.perm[j], n.perm[i]
	})
	return n
}

func (n *valueNoise) lattice(x, y int) float64 {
	h := n.perm[(int(n.perm[x&255])+y)&255]
	return float64(h) / 255
}

func smoothstep(t float64) float64 { return t * t * (3 - 2*t) }

// At samples the noise field at (x, y) with the given feature scale;
// result is in [0,1].
func (n *valueNoise) At(x, y, scale float64) float64 {
	x, y = x/scale, y/scale
	x0, y0 := int(math.Floor(x)), int(math.Floor(y))
	fx, fy := x-float64(x0), y-float64(y0)
	v00 := n.lattice(x0&255, y0&255)
	v10 := n.lattice((x0+1)&255, y0&255)
	v01 := n.lattice(x0&255, (y0+1)&255)
	v11 := n.lattice((x0+1)&255, (y0+1)&255)
	sx, sy := smoothstep(fx), smoothstep(fy)
	top := v00 + (v10-v00)*sx
	bot := v01 + (v11-v01)*sx
	return top + (bot-top)*sy
}

// textureFill paints the whole image by mixing two colours through a noise
// field at the given scale, with an optional drift offset (for panning).
func textureFill(im *imaging.Image, n *valueNoise, scale float64, a, b rgb, dx, dy float64) {
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			f := n.At(float64(x)+dx, float64(y)+dy, scale)
			im.Set(x, y, lerp8(a.r, b.r, f), lerp8(a.g, b.g, f), lerp8(a.b, b.b, f))
		}
	}
}
