// Descriptor-space corpus generation for search-scaling evaluation.
//
// The pixel pipeline (Generate/GenerateCorpus) tops out around a few
// thousand key frames before extraction time dominates; the recall@K and
// pruning benchmarks need 100k–1M. This file synthesises corpora directly
// in descriptor space: planted clusters with controlled intra-cluster
// spread, a configurable fraction of near-duplicate frames with recorded
// ground truth, and §4.2 buckets drawn from a fixed palette. Every frame
// is a pure function of (config, frame index) — StreamClusterCorpus emits
// frames one at a time, holds nothing back, and regenerating any frame
// (for near-duplicate bases or query construction) is O(1) — so corpus
// memory is bounded by whatever the caller batches, never by the corpus.
package synthvid

import (
	"fmt"
	"math/rand"

	"cbvr/internal/features"
	"cbvr/internal/rangeindex"
)

// ClusterCorpusConfig parameterises a descriptor-space corpus. The zero
// value is usable; defaults are applied internally.
type ClusterCorpusConfig struct {
	// Frames is the corpus size in key frames (default 10000).
	Frames int
	// Clusters is the number of planted appearance clusters (default
	// Frames/500, min 8). Frame i belongs to cluster i mod Clusters, so
	// cluster populations are balanced; the first Clusters frames (one
	// per cluster) are the cluster exemplars.
	Clusters int
	// NearDupRate is the probability that a non-exemplar frame is a
	// near-duplicate of its cluster's exemplar rather than an ordinary
	// member (default 0.02 — roughly ten duplicates per exemplar at the
	// default cluster population, so a top-10 query has a crisply
	// determined answer set instead of dozens of interchangeable ones).
	// Near-duplicates record the exemplar's ID as retrieval ground truth.
	NearDupRate float64
	// FramesPerVideo groups frames into synthetic videos (default 16).
	FramesPerVideo int
	// Seed drives all generation; 0 means seed 1.
	Seed int64
}

func (c ClusterCorpusConfig) withDefaults() ClusterCorpusConfig {
	if c.Frames <= 0 {
		c.Frames = 10000
	}
	if c.Clusters <= 0 {
		c.Clusters = c.Frames / 500
		if c.Clusters < 8 {
			c.Clusters = 8
		}
	}
	if c.Clusters > c.Frames {
		c.Clusters = c.Frames
	}
	if c.NearDupRate < 0 {
		c.NearDupRate = 0
	} else if c.NearDupRate == 0 {
		c.NearDupRate = 0.02
	}
	if c.FramesPerVideo <= 0 {
		c.FramesPerVideo = 16
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// DescriptorFrame is one synthesised key frame: descriptors, bucket and
// generation provenance (cluster and near-duplicate ground truth).
type DescriptorFrame struct {
	ID         int64
	VideoID    int64
	VideoName  string
	FrameIndex int
	// Cluster is the planted cluster index; NearDupOf is the key-frame ID
	// of the cluster exemplar this frame near-duplicates, 0 for ordinary
	// members (and for the exemplars themselves).
	Cluster   int
	NearDupOf int64
	Bucket    rangeindex.Range
	Set       *features.Set
}

// StreamClusterCorpus generates the corpus frame by frame in ascending ID
// order (ID = index + 1), invoking emit for each. It retains nothing
// between frames; an emit error aborts the stream and is returned.
func StreamClusterCorpus(cfg ClusterCorpusConfig, emit func(*DescriptorFrame) error) error {
	cfg = cfg.withDefaults()
	for i := 0; i < cfg.Frames; i++ {
		f := clusterFrame(cfg, i)
		if err := emit(f); err != nil {
			return err
		}
	}
	return nil
}

// ClusterQueries synthesises nq query frames, each a fresh tight
// near-duplicate of a cluster exemplar already in the corpus (query q
// targets cluster q mod Clusters). NearDupOf records the target exemplar
// ID; Bucket is the cluster's palette bucket, so range pruning treats the
// query exactly like its target. Queries use a seed stream disjoint from
// the corpus frames'.
func ClusterQueries(cfg ClusterCorpusConfig, nq int) []*DescriptorFrame {
	cfg = cfg.withDefaults()
	out := make([]*DescriptorFrame, nq)
	for q := 0; q < nq; q++ {
		cluster := q % cfg.Clusters
		rng := frameRand(cfg.Seed, -1-int64(q))
		base := exemplarSet(cfg, cluster)
		out[q] = &DescriptorFrame{
			ID:        int64(-1 - q), // never collides with corpus IDs
			Cluster:   cluster,
			NearDupOf: int64(cluster) + 1,
			Bucket:    clusterBucket(cluster),
			Set:       jitterSet(base, rng, nearDupJitter),
		}
	}
	return out
}

// Jitter amplitudes: members spread inside their cluster; near-dups sit
// an order of magnitude closer to their base than ordinary members.
const (
	memberJitter  = 0.08
	nearDupJitter = 0.008
)

// frameRand derives a frame-local PRNG. The multiplier decorrelates
// consecutive indices (splitmix-style), so neighbouring frames share no
// visible structure beyond their cluster profile.
func frameRand(seed, idx int64) *rand.Rand {
	return rand.New(rand.NewSource(seed ^ (idx+0x9e37)*0x2545f4914f6cdd1d))
}

// clusterFrame synthesises corpus frame i (ID i+1).
func clusterFrame(cfg ClusterCorpusConfig, i int) *DescriptorFrame {
	cluster := i % cfg.Clusters
	rng := frameRand(cfg.Seed, int64(i))
	f := &DescriptorFrame{
		ID:         int64(i) + 1,
		VideoID:    int64(i/cfg.FramesPerVideo) + 1,
		FrameIndex: i % cfg.FramesPerVideo,
		Cluster:    cluster,
		Bucket:     clusterBucket(cluster),
	}
	f.VideoName = fmt.Sprintf("synth_%06d", f.VideoID)
	if i >= cfg.Clusters && rng.Float64() < cfg.NearDupRate {
		f.NearDupOf = int64(cluster) + 1
		f.Set = jitterSet(exemplarSet(cfg, cluster), rng, nearDupJitter)
		return f
	}
	f.Set = jitterSet(clusterBaseSet(cfg.Seed, cluster), rng, memberJitter)
	return f
}

// exemplarSet regenerates cluster's exemplar (corpus frame index ==
// cluster; exemplars are never near-duplicates, so this never recurses).
func exemplarSet(cfg ClusterCorpusConfig, cluster int) *features.Set {
	// Replicates clusterFrame's exemplar path exactly: exemplar indices
	// skip the near-duplicate draw, so the PRNG goes straight to jitter.
	rng := frameRand(cfg.Seed, int64(cluster))
	return jitterSet(clusterBaseSet(cfg.Seed, cluster), rng, memberJitter)
}

// bucketPalette is the fixed set of §4.2 ranges clusters draw from — the
// shapes AssignFaithful actually produces (root, halves, quarters,
// eighths), so synthetic buckets prune like real ones.
var bucketPalette = []rangeindex.Range{
	{Min: 0, Max: 255},
	{Min: 0, Max: 127}, {Min: 128, Max: 255},
	{Min: 0, Max: 63}, {Min: 64, Max: 127}, {Min: 128, Max: 191}, {Min: 192, Max: 255},
	{Min: 0, Max: 31}, {Min: 32, Max: 63}, {Min: 96, Max: 127}, {Min: 160, Max: 191}, {Min: 224, Max: 255},
}

func clusterBucket(cluster int) rangeindex.Range {
	return bucketPalette[cluster%len(bucketPalette)]
}

// clusterBaseSet builds cluster's base descriptor profile — the point the
// members jitter around — deterministically from (seed, cluster).
func clusterBaseSet(seed int64, cluster int) *features.Set {
	rng := rand.New(rand.NewSource(seed ^ (int64(cluster)+0x51ed)*0x3f58476d1ce4e5b9))
	set := &features.Set{}

	// Colour histogram: mass concentrated on a handful of cluster-
	// specific bins over a low uniform floor (real frames look like this:
	// few dominant quantised colours plus noise).
	hist := &features.ColorHistogram{}
	total := 90000 // 300×300 analysis pixels
	dominant := 3 + rng.Intn(4)
	left := total
	for d := 0; d < dominant; d++ {
		bin := rng.Intn(len(hist.Bins))
		share := left / 2
		hist.Bins[bin] += share
		left -= share
	}
	for left > 0 {
		bin := rng.Intn(len(hist.Bins))
		c := 1 + rng.Intn(50)
		if c > left {
			c = left
		}
		hist.Bins[bin] += c
		left -= c
	}
	set.Histogram = hist

	// GLCM: statistics in their natural ranges.
	set.GLCM = &features.GLCM{
		PixelCounter: 180000,
		ASM:          rng.Float64(),
		Contrast:     rng.Float64() * 800,
		Correlation:  rng.Float64()*2 - 1,
		IDM:          rng.Float64(),
		Entropy:      rng.Float64() * 8,
	}

	gab := &features.Gabor{}
	for i := range gab.Vec {
		gab.Vec[i] = rng.Float64() * 2
	}
	set.Gabor = gab

	tam := &features.Tamura{
		Coarseness: rng.Float64() * 20000,
		Contrast:   rng.Float64() * 128,
	}
	for i := range tam.Directionality {
		tam.Directionality[i] = rng.Float64() * 100
	}
	set.Tamura = tam

	cor := &features.Correlogram{}
	for b := range cor.Cor {
		for d := range cor.Cor[b] {
			cor.Cor[b][d] = rng.Float64()
		}
	}
	set.Correlogram = cor

	set.Regions = &features.RegionStats{
		Regions: 1 + rng.Intn(40),
		Holes:   rng.Intn(10),
		Major:   1 + rng.Intn(8),
	}

	nv := &features.NaiveSignature{}
	for p := range nv.Sig {
		for c := range nv.Sig[p] {
			nv.Sig[p][c] = uint8(rng.Intn(256))
		}
	}
	set.Naive = nv
	return set
}

// jitterSet returns a perturbed deep copy of base: every continuous value
// moves by a relative amount drawn from ±amp (plus a small absolute term
// where values can sit at zero), integer counts step with probability
// proportional to amp. amp therefore directly controls intra-cluster
// spread.
func jitterSet(base *features.Set, rng *rand.Rand, amp float64) *features.Set {
	rel := func(v float64) float64 { return v * (1 + (rng.Float64()*2-1)*amp) }
	set := &features.Set{}

	hist := &features.ColorHistogram{}
	for i, c := range base.Histogram.Bins {
		if c == 0 {
			continue
		}
		n := int(rel(float64(c)) + 0.5)
		if n < 0 {
			n = 0
		}
		hist.Bins[i] = n
	}
	set.Histogram = hist

	g := *base.GLCM
	g.ASM = rel(g.ASM)
	g.Contrast = rel(g.Contrast)
	g.Correlation = g.Correlation + (rng.Float64()*2-1)*amp
	g.IDM = rel(g.IDM)
	g.Entropy = rel(g.Entropy)
	set.GLCM = &g

	gab := *base.Gabor
	for i := range gab.Vec {
		gab.Vec[i] = rel(gab.Vec[i]) + (rng.Float64()*2-1)*amp*0.05
	}
	set.Gabor = &gab

	tam := *base.Tamura
	tam.Coarseness = rel(tam.Coarseness)
	tam.Contrast = rel(tam.Contrast)
	for i := range tam.Directionality {
		tam.Directionality[i] = rel(tam.Directionality[i])
	}
	set.Tamura = &tam

	cor := *base.Correlogram
	for b := range cor.Cor {
		for d := range cor.Cor[b] {
			cor.Cor[b][d] = rel(cor.Cor[b][d])
		}
	}
	set.Correlogram = &cor

	reg := *base.Regions
	if rng.Float64() < amp*4 {
		reg.Regions += rng.Intn(3) - 1
		if reg.Regions < 1 {
			reg.Regions = 1
		}
	}
	if rng.Float64() < amp*4 {
		reg.Holes += rng.Intn(3) - 1
		if reg.Holes < 0 {
			reg.Holes = 0
		}
	}
	set.Regions = &reg

	nv := *base.Naive
	span := amp * 256
	if span < 1 {
		span = 1
	}
	for p := range nv.Sig {
		for c := range nv.Sig[p] {
			v := float64(nv.Sig[p][c]) + (rng.Float64()*2-1)*span
			if v < 0 {
				v = 0
			} else if v > 255 {
				v = 255
			}
			nv.Sig[p][c] = uint8(v)
		}
	}
	set.Naive = &nv
	return set
}
