// Package synthvid generates deterministic synthetic videos for the CBVR
// system. It substitutes for the paper's corpus of clips downloaded from
// archive.org ("e-learning, sports, cartoon, movies, etc."): each category
// has a distinctive visual grammar (palette, layout, texture, motion, shot
// structure) so that colour/texture/region features genuinely discriminate
// between categories, while intra-category variation (different seeds,
// noise, shot content) keeps retrieval non-trivial.
//
// Everything is seeded: the same (category, config, seed) always produces
// the same pixels, which makes the paper's Table 1 reproduction
// deterministic.
package synthvid

import (
	"fmt"
	"math/rand"

	"cbvr/internal/imaging"
)

// Category identifies a video genre, mirroring the paper's corpus
// ("different categories of images like e-learning, sports, cartoon,
// movies, etc.").
type Category int

// The generated genres. NumCategories counts them.
const (
	Elearning Category = iota
	Sports
	Cartoon
	Movie
	News
	Nature
	NumCategories = 6
)

var categoryNames = [...]string{"elearning", "sports", "cartoon", "movie", "news", "nature"}

// String returns the lower-case category name.
func (c Category) String() string {
	if c < 0 || int(c) >= len(categoryNames) {
		return fmt.Sprintf("category(%d)", int(c))
	}
	return categoryNames[c]
}

// ParseCategory maps a name produced by String back to a Category.
func ParseCategory(s string) (Category, error) {
	for i, n := range categoryNames {
		if n == s {
			return Category(i), nil
		}
	}
	return 0, fmt.Errorf("synthvid: unknown category %q", s)
}

// AllCategories returns every category in order.
func AllCategories() []Category {
	out := make([]Category, NumCategories)
	for i := range out {
		out[i] = Category(i)
	}
	return out
}

// Config controls generation. The zero value is usable: defaults are
// applied by Generate.
type Config struct {
	Width, Height int     // frame size; default 160×120
	Frames        int     // total frames; default 48
	Shots         int     // number of shots (scene cuts); default 4
	FPS           int     // nominal frame rate, metadata only; default 12
	Noise         float64 // per-pixel uniform noise amplitude in [0,255]; default 6
	// HueJitter rotates every video's hue by a random angle in
	// [-HueJitter, +HueJitter] degrees. Per-video colour drift weakens
	// pure colour identity (as lighting/encoding variation does in real
	// corpora) without touching luma texture; negative disables, 0 means
	// the default of 18°.
	HueJitter float64
	Seed      int64 // PRNG seed; 0 means seed 1
}

func (c Config) withDefaults() Config {
	if c.Width <= 0 {
		c.Width = 160
	}
	if c.Height <= 0 {
		c.Height = 120
	}
	if c.Frames <= 0 {
		c.Frames = 48
	}
	if c.Shots <= 0 {
		c.Shots = 4
	}
	if c.Shots > c.Frames {
		c.Shots = c.Frames
	}
	if c.FPS <= 0 {
		c.FPS = 12
	}
	if c.Noise < 0 {
		c.Noise = 0
	} else if c.Noise == 0 {
		c.Noise = 6
	}
	if c.HueJitter < 0 {
		c.HueJitter = 0
	} else if c.HueJitter == 0 {
		c.HueJitter = 18
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Video is a generated clip: named frames plus provenance.
type Video struct {
	Name     string
	Category Category
	FPS      int
	Frames   []*imaging.Image
	// ShotStarts records the frame index at which each shot begins,
	// ascending, starting at 0. Useful as ground truth for key-frame and
	// shot-boundary tests.
	ShotStarts []int
}

// Generate renders a synthetic video of the given category.
func Generate(cat Category, cfg Config) *Video {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed ^ int64(cat)*0x5851f42d4c957f2d))
	v := &Video{
		Name:     fmt.Sprintf("%s_%04d", cat, cfg.Seed),
		Category: cat,
		FPS:      cfg.FPS,
		Frames:   make([]*imaging.Image, 0, cfg.Frames),
	}

	bounds := shotBoundaries(rng, cfg.Frames, cfg.Shots)
	v.ShotStarts = bounds

	hueShift := 0.0
	if cfg.HueJitter > 0 {
		hueShift = (rng.Float64()*2 - 1) * cfg.HueJitter
	}
	for s := 0; s < len(bounds); s++ {
		start := bounds[s]
		end := cfg.Frames
		if s+1 < len(bounds) {
			end = bounds[s+1]
		}
		scene := newScene(cat, rng, cfg)
		for f := start; f < end; f++ {
			t := float64(f-start) / float64(maxInt(end-start-1, 1))
			im := scene.render(t)
			if hueShift != 0 {
				rotateHue(im, hueShift)
			}
			if cfg.Noise > 0 {
				addNoise(im, rng, cfg.Noise)
			}
			v.Frames = append(v.Frames, im)
		}
	}
	return v
}

// rotateHue shifts every pixel's hue by the given angle in degrees.
func rotateHue(im *imaging.Image, deg float64) {
	for i := 0; i < len(im.Pix); i += 3 {
		h, s, v := imaging.RGBToHSV(im.Pix[i], im.Pix[i+1], im.Pix[i+2])
		if s == 0 {
			continue // grays carry no hue
		}
		r, g, b := imaging.HSVToRGB(h+deg, s, v)
		im.Pix[i], im.Pix[i+1], im.Pix[i+2] = r, g, b
	}
}

// GenerateCorpus renders n videos per category across all categories.
// Seeds are derived from cfg.Seed so corpora are reproducible; each video
// gets a distinct name "<category>_<index>".
func GenerateCorpus(perCategory int, cfg Config) []*Video {
	cfg = cfg.withDefaults()
	var out []*Video
	for _, cat := range AllCategories() {
		for i := 0; i < perCategory; i++ {
			vc := cfg
			vc.Seed = cfg.Seed + int64(i)*7919 + int64(cat)*104729
			v := Generate(cat, vc)
			v.Name = fmt.Sprintf("%s_%02d", cat, i)
			out = append(out, v)
		}
	}
	return out
}

// shotBoundaries partitions [0, frames) into the given number of shots of
// roughly equal, jittered length. The first boundary is always 0 and the
// result is strictly increasing.
func shotBoundaries(rng *rand.Rand, frames, shots int) []int {
	bounds := make([]int, 0, shots)
	base := frames / shots
	pos := 0
	for i := 0; i < shots && pos < frames; i++ {
		bounds = append(bounds, pos)
		jitter := 0
		if base > 2 {
			jitter = rng.Intn(base/2+1) - base/4
		}
		next := pos + base + jitter
		if next <= pos {
			next = pos + 1
		}
		pos = next
	}
	return bounds
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// addNoise perturbs every channel by a uniform value in [-amp, amp].
func addNoise(im *imaging.Image, rng *rand.Rand, amp float64) {
	for i := range im.Pix {
		d := (rng.Float64()*2 - 1) * amp
		v := float64(im.Pix[i]) + d
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		im.Pix[i] = uint8(v)
	}
}

// scene is one shot's renderable content. render(t) draws the scene at
// normalised time t in [0,1] so in-shot motion is smooth and deterministic.
type scene struct {
	render func(t float64) *imaging.Image
}

func newScene(cat Category, rng *rand.Rand, cfg Config) *scene {
	switch cat {
	case Elearning:
		return elearningScene(rng, cfg)
	case Sports:
		return sportsScene(rng, cfg)
	case Cartoon:
		return cartoonScene(rng, cfg)
	case Movie:
		return movieScene(rng, cfg)
	case News:
		return newsScene(rng, cfg)
	case Nature:
		return natureScene(rng, cfg)
	default:
		return cartoonScene(rng, cfg)
	}
}
