package synthvid

import (
	"testing"

	"cbvr/internal/features"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Frames: 12, Shots: 3, Seed: 42}
	for _, cat := range AllCategories() {
		a := Generate(cat, cfg)
		b := Generate(cat, cfg)
		if len(a.Frames) != len(b.Frames) {
			t.Fatalf("%v: frame counts differ", cat)
		}
		for i := range a.Frames {
			if !a.Frames[i].Equal(b.Frames[i]) {
				t.Fatalf("%v: frame %d differs across identical seeds", cat, i)
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	a := Generate(Sports, Config{Frames: 8, Seed: 1})
	b := Generate(Sports, Config{Frames: 8, Seed: 2})
	same := 0
	for i := range a.Frames {
		if a.Frames[i].Equal(b.Frames[i]) {
			same++
		}
	}
	if same == len(a.Frames) {
		t.Error("different seeds produced identical videos")
	}
}

func TestGenerateFrameCountAndSize(t *testing.T) {
	cfg := Config{Width: 80, Height: 60, Frames: 20, Shots: 4, Seed: 3}
	v := Generate(Cartoon, cfg)
	if len(v.Frames) != 20 {
		t.Fatalf("frames = %d", len(v.Frames))
	}
	for _, f := range v.Frames {
		if f.W != 80 || f.H != 60 {
			t.Fatalf("frame size %dx%d", f.W, f.H)
		}
	}
	if len(v.ShotStarts) == 0 || v.ShotStarts[0] != 0 {
		t.Errorf("shot starts: %v", v.ShotStarts)
	}
	for i := 1; i < len(v.ShotStarts); i++ {
		if v.ShotStarts[i] <= v.ShotStarts[i-1] {
			t.Errorf("shot starts not increasing: %v", v.ShotStarts)
		}
		if v.ShotStarts[i] >= len(v.Frames) {
			t.Errorf("shot start beyond video: %v", v.ShotStarts)
		}
	}
}

func TestDefaultsApplied(t *testing.T) {
	v := Generate(News, Config{})
	if len(v.Frames) != 48 {
		t.Errorf("default frames = %d", len(v.Frames))
	}
	if v.Frames[0].W != 160 || v.Frames[0].H != 120 {
		t.Errorf("default size %dx%d", v.Frames[0].W, v.Frames[0].H)
	}
	if v.FPS != 12 {
		t.Errorf("default fps = %d", v.FPS)
	}
}

func TestCategoryStringParse(t *testing.T) {
	for _, c := range AllCategories() {
		got, err := ParseCategory(c.String())
		if err != nil || got != c {
			t.Errorf("category %v round trip: %v %v", c, got, err)
		}
	}
	if _, err := ParseCategory("opera"); err == nil {
		t.Error("bogus category accepted")
	}
}

func TestGenerateCorpusNamesAndCoverage(t *testing.T) {
	vids := GenerateCorpus(3, Config{Frames: 6, Shots: 2, Seed: 9})
	if len(vids) != 3*NumCategories {
		t.Fatalf("corpus size %d", len(vids))
	}
	seen := make(map[string]bool)
	for _, v := range vids {
		if seen[v.Name] {
			t.Errorf("duplicate name %s", v.Name)
		}
		seen[v.Name] = true
	}
	if !seen["sports_00"] || !seen["nature_02"] {
		t.Error("expected names missing")
	}
}

// Categories must be visually distinguishable: the mean within-category
// histogram distance should be smaller than the mean between-category
// distance — this is the signal Table 1 relies on.
func TestCategoriesAreVisuallySeparable(t *testing.T) {
	cfg := Config{Frames: 4, Shots: 1, Noise: 5}
	perCat := 3
	hists := make(map[Category][]*features.ColorHistogram)
	for _, cat := range AllCategories() {
		for i := 0; i < perCat; i++ {
			c := cfg
			c.Seed = int64(100 + i*37)
			v := Generate(cat, c)
			hists[cat] = append(hists[cat], features.ExtractColorHistogram(v.Frames[len(v.Frames)/2]))
		}
	}
	var within, between []float64
	for ca, la := range hists {
		for cb, lb := range hists {
			for i, a := range la {
				for j, b := range lb {
					if ca == cb && i >= j {
						continue
					}
					d, err := a.DistanceTo(b)
					if err != nil {
						t.Fatal(err)
					}
					if ca == cb {
						within = append(within, d)
					} else if i == 0 && j == 0 {
						between = append(between, d)
					}
				}
			}
		}
	}
	mean := func(v []float64) float64 {
		s := 0.0
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	mw, mb := mean(within), mean(between)
	if mw >= mb {
		t.Errorf("within-category distance %.3f >= between %.3f: categories not separable", mw, mb)
	}
}

// Shot boundaries should be visible: consecutive frames across a shot cut
// differ more (naive distance) than consecutive frames within a shot.
func TestShotCutsAreVisible(t *testing.T) {
	v := Generate(Movie, Config{Frames: 30, Shots: 3, Seed: 11})
	if len(v.ShotStarts) < 2 {
		t.Skip("single shot")
	}
	sig := make([]*features.NaiveSignature, len(v.Frames))
	for i, f := range v.Frames {
		sig[i] = features.ExtractNaive(f)
	}
	cut := v.ShotStarts[1]
	dCut, _ := sig[cut-1].DistanceTo(sig[cut])
	dIn, _ := sig[cut-2].DistanceTo(sig[cut-1])
	if dCut <= dIn {
		t.Logf("warning: cut distance %.1f <= in-shot %.1f (scenes can coincide)", dCut, dIn)
	}
	if dCut == 0 {
		t.Error("frames across a cut are identical")
	}
}

func TestNoiseBounded(t *testing.T) {
	v := Generate(Elearning, Config{Frames: 2, Shots: 1, Noise: 200, Seed: 5})
	for _, f := range v.Frames {
		if len(f.Pix) == 0 {
			t.Fatal("empty frame")
		}
	}
}

func TestShotBoundariesHelper(t *testing.T) {
	v := Generate(Nature, Config{Frames: 5, Shots: 10, Seed: 2}) // shots > frames
	if len(v.Frames) != 5 {
		t.Errorf("frames = %d", len(v.Frames))
	}
	for i := 1; i < len(v.ShotStarts); i++ {
		if v.ShotStarts[i] <= v.ShotStarts[i-1] {
			t.Fatalf("non-increasing shot starts %v", v.ShotStarts)
		}
	}
}
