package synthvid

import (
	"math"
	"math/rand"

	"cbvr/internal/imaging"
)

// Scene painters. Each returns a closure rendering the shot at normalised
// time t in [0,1]; all randomness is drawn up front so rendering is pure.

func elearningScene(rng *rand.Rand, cfg Config) *scene {
	w, h := cfg.Width, cfg.Height
	// Slide-like: light background, coloured title bar, text-line blocks,
	// an optional figure; a highlight cursor sweeps slowly. Low motion.
	bg := uint8(225 + rng.Intn(25))
	titleH := h / 8
	lines := 4 + rng.Intn(4)
	lineLens := make([]float64, lines)
	for i := range lineLens {
		lineLens[i] = 0.4 + rng.Float64()*0.5
	}
	hasFigure := rng.Float64() < 0.6
	figX := w/2 + rng.Intn(w/4)
	figY := h/3 + rng.Intn(h/4)
	accent := pick(rng, []rgb{{40, 60, 150}, {150, 40, 40}, {20, 110, 60}})
	return &scene{render: func(t float64) *imaging.Image {
		im := imaging.New(w, h)
		im.Fill(bg, bg, bg)
		fillRect(im, 0, 0, w, titleH, accent.r, accent.g, accent.b)
		y := titleH + h/12
		lh := h / (lines * 3)
		if lh < 2 {
			lh = 2
		}
		for i := 0; i < lines; i++ {
			fillRect(im, w/12, y, w/12+int(lineLens[i]*float64(w)*0.7), y+lh, 60, 60, 70)
			y += lh * 2
		}
		if hasFigure {
			fillRect(im, figX, figY, figX+w/5, figY+h/5, accent.r, accent.g, accent.b)
			fillRect(im, figX+2, figY+2, figX+w/5-2, figY+h/5-2, bg, bg, bg)
			fillCircle(im, figX+w/10, figY+h/10, h/14, accent.r, accent.g, accent.b)
		}
		cx := int(float64(w) * (0.1 + 0.8*t))
		cy := titleH + h/12 + int(float64(h)/3*t)
		fillCircle(im, cx, cy, 3, 250, 200, 40)
		return im
	}}
}

func sportsScene(rng *rand.Rand, cfg Config) *scene {
	w, h := cfg.Width, cfg.Height
	// Green pitch with white markings, noisy crowd band on top, fast
	// moving players and a ball. High motion → many distinct key frames.
	pitch := rgb{uint8(30 + rng.Intn(30)), uint8(120 + rng.Intn(60)), uint8(30 + rng.Intn(30))}
	crowdH := h / 5
	noise := newValueNoise(rng)
	type player struct {
		x0, y0, vx, vy float64
		col            rgb
	}
	teamA := pick(rng, []rgb{{220, 30, 30}, {240, 240, 240}, {250, 200, 30}})
	teamB := pick(rng, []rgb{{30, 30, 220}, {10, 10, 10}, {250, 120, 20}})
	players := make([]player, 5+rng.Intn(4))
	for i := range players {
		col := teamA
		if i%2 == 1 {
			col = teamB
		}
		players[i] = player{
			x0:  rng.Float64() * float64(w),
			y0:  float64(crowdH) + rng.Float64()*float64(h-crowdH),
			vx:  (rng.Float64()*2 - 1) * float64(w) * 0.8,
			vy:  (rng.Float64()*2 - 1) * float64(h) * 0.4,
			col: col,
		}
	}
	ballX0 := rng.Float64() * float64(w)
	ballVX := (rng.Float64()*2 - 1) * float64(w) * 1.2
	lineY := crowdH + rng.Intn(maxInt(h-crowdH, 1))
	return &scene{render: func(t float64) *imaging.Image {
		im := imaging.New(w, h)
		im.Fill(pitch.r, pitch.g, pitch.b)
		// Mowing stripes on the pitch.
		for y := crowdH; y < h; y++ {
			if (y/(h/8+1))%2 == 0 {
				for x := 0; x < w; x++ {
					r, g, b := im.At(x, y)
					im.Set(x, y, r+10, g+10, b+10)
				}
			}
		}
		// Crowd: high-frequency noise band.
		for y := 0; y < crowdH; y++ {
			for x := 0; x < w; x++ {
				f := noise.At(float64(x), float64(y), 1.5)
				im.Set(x, y, lerp8(60, 200, f), lerp8(50, 180, f), lerp8(55, 170, f))
			}
		}
		// Pitch markings.
		fillRect(im, 0, lineY, w, lineY+2, 245, 245, 245)
		ringCircle(im, w/2, (crowdH+h)/2, h/5, 2, 245, 245, 245)
		// Players.
		for _, p := range players {
			x := int(math.Mod(p.x0+p.vx*t+float64(3*w), float64(w)))
			y := crowdH + int(math.Abs(math.Mod(p.y0+p.vy*t, float64(h-crowdH))))
			if y >= h {
				y = h - 1
			}
			fillRect(im, x-2, y-4, x+2, y+4, p.col.r, p.col.g, p.col.b)
		}
		// Ball.
		bx := int(math.Mod(ballX0+ballVX*t+float64(3*w), float64(w)))
		by := crowdH + (h-crowdH)/2 + int(20*math.Sin(6*t))
		fillCircle(im, bx, by, 2, 255, 255, 255)
		return im
	}}
}

func cartoonScene(rng *rand.Rand, cfg Config) *scene {
	w, h := cfg.Width, cfg.Height
	// Flat saturated regions with bold outlines; a bouncing character
	// blob. Few, large uniform regions → region growing finds them.
	sky := pick(rng, []rgb{{90, 200, 250}, {250, 210, 90}, {230, 120, 200}, {120, 230, 140}})
	ground := pick(rng, []rgb{{250, 160, 60}, {90, 220, 120}, {200, 90, 220}, {240, 230, 80}})
	body := pick(rng, []rgb{{250, 60, 60}, {60, 60, 250}, {20, 20, 20}, {250, 250, 250}})
	groundY := h/2 + rng.Intn(h/4)
	sunX := rng.Intn(w)
	hops := 2 + rng.Intn(3)
	return &scene{render: func(t float64) *imaging.Image {
		im := imaging.New(w, h)
		im.Fill(sky.r, sky.g, sky.b)
		fillRect(im, 0, groundY, w, h, ground.r, ground.g, ground.b)
		fillRect(im, 0, groundY, w, groundY+2, 10, 10, 10)
		fillCircle(im, sunX, h/6, h/8, 255, 240, 80)
		ringCircle(im, sunX, h/6, h/8, 2, 10, 10, 10)
		// Bouncing character.
		cx := int(float64(w) * (0.1 + 0.8*t))
		cy := groundY - h/8 - int(math.Abs(math.Sin(float64(hops)*math.Pi*t))*float64(h)/4)
		fillCircle(im, cx, cy, h/9, body.r, body.g, body.b)
		ringCircle(im, cx, cy, h/9, 2, 10, 10, 10)
		// Eyes.
		fillCircle(im, cx-h/30-1, cy-h/40, h/40+1, 255, 255, 255)
		fillCircle(im, cx+h/30+1, cy-h/40, h/40+1, 255, 255, 255)
		return im
	}}
}

func movieScene(rng *rand.Rand, cfg Config) *scene {
	w, h := cfg.Width, cfg.Height
	// Cinematic: dark vertical gradient, letterbox bars, silhouettes and a
	// moody key light that tracks across the frame. Medium motion.
	top := pick(rng, []rgb{{10, 10, 30}, {40, 15, 15}, {15, 30, 40}, {25, 20, 35}})
	bottom := pick(rng, []rgb{{60, 50, 80}, {110, 60, 40}, {50, 80, 100}, {80, 70, 60}})
	barH := h / 10
	nSil := 1 + rng.Intn(3)
	silX := make([]float64, nSil)
	silW := make([]int, nSil)
	for i := range silX {
		silX[i] = rng.Float64()
		silW[i] = w/10 + rng.Intn(w/8)
	}
	lightDir := 1.0
	if rng.Float64() < 0.5 {
		lightDir = -1.0
	}
	return &scene{render: func(t float64) *imaging.Image {
		im := imaging.New(w, h)
		vGradient(im, top, bottom)
		// Key light sweep: brighten a soft column.
		lx := float64(w) * (0.5 + lightDir*0.35*(t-0.5)*2)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				d := math.Abs(float64(x) - lx)
				if d < float64(w)/5 {
					gain := 1.6 - d/(float64(w)/5)*0.6
					r, g, b := im.At(x, y)
					im.Set(x, y, clampMul(r, gain), clampMul(g, gain), clampMul(b, gain))
				}
			}
		}
		// Silhouettes drift slowly.
		for i := 0; i < nSil; i++ {
			x := int(math.Mod(silX[i]*float64(w)+t*float64(w)/8, float64(w)))
			fillRect(im, x, h/3, x+silW[i], h-barH, 8, 8, 12)
			fillCircle(im, x+silW[i]/2, h/3-h/12, h/12, 8, 8, 12)
		}
		hStripe(im, 0, barH, rgb{0, 0, 0})
		hStripe(im, h-barH, h, rgb{0, 0, 0})
		return im
	}}
}

func newsScene(rng *rand.Rand, cfg Config) *scene {
	w, h := cfg.Width, cfg.Height
	// Studio: blue backdrop, static anchor bust, bright lower-third band
	// with a scrolling ticker. Minimal motion except the ticker.
	backdrop := rgb{uint8(20 + rng.Intn(30)), uint8(40 + rng.Intn(40)), uint8(120 + rng.Intn(80))}
	skin := pick(rng, []rgb{{224, 172, 105}, {198, 134, 66}, {141, 85, 36}})
	suit := pick(rng, []rgb{{40, 40, 45}, {70, 30, 30}, {30, 50, 70}})
	bandCol := pick(rng, []rgb{{200, 30, 30}, {230, 160, 20}, {180, 20, 60}})
	anchorX := w/2 + rng.Intn(w/6) - w/12
	bandY := h - h/4
	segs := 6 + rng.Intn(5)
	segLens := make([]int, segs)
	for i := range segLens {
		segLens[i] = w/12 + rng.Intn(w/6)
	}
	return &scene{render: func(t float64) *imaging.Image {
		im := imaging.New(w, h)
		vGradient(im, backdrop, rgb{backdrop.r / 2, backdrop.g / 2, backdrop.b})
		// Desk.
		fillRect(im, 0, bandY-h/10, w, bandY, 90, 70, 50)
		// Anchor: suit trapezoid approximated by rect + head.
		fillRect(im, anchorX-w/8, bandY-h/10-h/4, anchorX+w/8, bandY-h/10, suit.r, suit.g, suit.b)
		fillCircle(im, anchorX, bandY-h/10-h/4-h/12, h/11, skin.r, skin.g, skin.b)
		// Lower third with scrolling ticker blocks.
		fillRect(im, 0, bandY, w, bandY+h/9, bandCol.r, bandCol.g, bandCol.b)
		x := -int(t * float64(w))
		for i := 0; i < segs; i++ {
			fillRect(im, x, bandY+2, x+segLens[i], bandY+h/9-2, 250, 250, 250)
			x += segLens[i] + w/14
			if x > w {
				x -= w + w/7
			}
		}
		// Station logo.
		fillRect(im, w-w/7, h/16, w-w/28, h/16+h/10, 250, 250, 250)
		return im
	}}
}

func natureScene(rng *rand.Rand, cfg Config) *scene {
	w, h := cfg.Width, cfg.Height
	// Landscape: sky gradient, noisy foliage/terrain, slow pan. Rich
	// texture → Tamura/GLCM discriminative.
	skyTop := pick(rng, []rgb{{120, 170, 240}, {250, 180, 120}, {170, 190, 220}})
	skyBot := rgb{skyTop.r, uint8(minInt(int(skyTop.g)+30, 255)), uint8(minInt(int(skyTop.b)+20, 255))}
	terrA := pick(rng, []rgb{{30, 90, 30}, {90, 70, 30}, {40, 100, 60}})
	terrB := rgb{uint8(minInt(int(terrA.r)+70, 255)), uint8(minInt(int(terrA.g)+80, 255)), uint8(minInt(int(terrA.b)+50, 255))}
	horizon := h/3 + rng.Intn(h/4)
	noise := newValueNoise(rng)
	panSpeed := (rng.Float64()*2 - 1) * float64(w) / 2
	scale := 4 + rng.Float64()*8
	hasWater := rng.Float64() < 0.4
	return &scene{render: func(t float64) *imaging.Image {
		im := imaging.New(w, h)
		vGradient(im, skyTop, skyBot)
		dx := panSpeed * t
		for y := horizon; y < h; y++ {
			for x := 0; x < w; x++ {
				f := noise.At(float64(x)+dx, float64(y), scale)
				im.Set(x, y, lerp8(terrA.r, terrB.r, f), lerp8(terrA.g, terrB.g, f), lerp8(terrA.b, terrB.b, f))
			}
		}
		if hasWater {
			wy := h - h/6
			for y := wy; y < h; y++ {
				for x := 0; x < w; x++ {
					f := noise.At(float64(x)*2+dx, float64(y)*4, scale)
					im.Set(x, y, lerp8(40, 90, f), lerp8(90, 140, f), lerp8(160, 220, f))
				}
			}
		}
		// Drifting cloud.
		cx := int(math.Mod(float64(w)*0.2+t*float64(w)/3+float64(2*w), float64(w)))
		fillCircle(im, cx, h/6, h/10, 250, 250, 252)
		fillCircle(im, cx+h/10, h/6+h/40, h/12, 245, 245, 248)
		return im
	}}
}

func clampMul(v uint8, gain float64) uint8 {
	x := float64(v) * gain
	if x > 255 {
		return 255
	}
	return uint8(x)
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
