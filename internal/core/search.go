// Query-side pipeline: the concurrent sharded scoring path behind every
// search entry point, plus the retained single-goroutine reference
// implementation the equivalence tests and benchmarks compare against.
//
// A frame search runs in two parallel phases over the engine's fixed cache
// shards (see DESIGN.md):
//
//  1. scan — each shard worker prunes its own range-index shard by the
//     query bucket, computes all requested per-feature distances into one
//     flat shard-local buffer, and (for min-max fusion) folds each
//     feature's running min/max into a shard-local MinMaxScaler.
//  2. select — per-candidate fused distances are produced from the merged
//     normalisation state and pushed through one bounded top-K max-heap
//     per shard; the shard heaps merge into the final ranking.
//
// No phase materialises one []float64 per feature per query, and no phase
// fully sorts the candidate set: selection is O(n log k) per shard.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/keyframe"
	"cbvr/internal/rangeindex"
	"cbvr/internal/similarity"
)

// missingDistance ranks candidates with an absent stored descriptor last.
const missingDistance = 1e9

// searchWorkers resolves the per-call scoring parallelism: the call
// override, else the engine default, clamped to the shard count (more
// workers than shards cannot help).
func (e *Engine) searchWorkers(opt *SearchOptions) int {
	w := opt.Workers
	if w <= 0 {
		w = e.workers()
	}
	if w > len(e.shards) {
		w = len(e.shards)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(i) for i in [0,n) across at most workers
// goroutines, pulling indices from a shared counter so uneven work
// self-balances. workers <= 1 runs inline on the calling goroutine.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SearchFrame ranks stored key frames against a query frame: extract the
// query's descriptors, prune candidates through the sharded range index,
// score per feature in parallel, fuse and select the top K.
func (e *Engine) SearchFrame(query *imaging.Image, opt SearchOptions) ([]Match, error) {
	return e.SearchFrameCtx(context.Background(), query, opt)
}

// SearchFrameCtx is SearchFrame under a request context: cancellation is
// checked before query extraction and between shard scans, so an abandoned
// request stops scoring within one shard's worth of work and returns the
// context's error instead of a partial ranking.
func (e *Engine) SearchFrameCtx(ctx context.Context, query *imaging.Image, opt SearchOptions) ([]Match, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.warmCache(); err != nil {
		return nil, err
	}
	planes := features.NewPlanes(query)
	qset := planes.ExtractAll()
	qbucket := BucketFromPlanes(planes)
	return e.searchSet(ctx, qset, qbucket, opt)
}

// SearchWithSet runs the frame search with pre-extracted query descriptors
// (evaluation harness; avoids re-extracting per feature configuration).
func (e *Engine) SearchWithSet(qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, error) {
	return e.searchSet(context.Background(), qset, qbucket, opt)
}

// scored pairs one candidate with its per-kind raw distances; the row
// aliases the owning shard's pooled scan scratch.
type scored struct {
	en *frameEntry
	d  []float64
}

// shardPart is one shard worker's scan output. scratch owns the memory
// cands and their distance rows alias; searchSet releases it once the
// final ranking has been materialised.
type shardPart struct {
	cands   []scored
	scalers []similarity.MinMaxScaler // per kind; nil unless min-max fusion
	scratch *scanScratch
	stats   scanStats
}

// scanStats counts one shard scan's work for the search-wide SearchStats.
type scanStats struct {
	baseRows  int   // candidate rows an exact sweep would score
	rowEvals  int64 // per-kind row kernel evaluations performed
	cellEvals int64 // per-kind centroid bound evaluations performed
	pruned    bool  // a cell-pruned path ran (vs the exact sweep)
}

// searchSet is the scoring half of SearchFrame: the concurrent sharded
// pipeline. It is deterministic — identical rankings and distances at any
// worker count, matching searchSetReference.
func (e *Engine) searchSet(ctx context.Context, qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, error) {
	out, _, err := e.searchSetStats(ctx, qset, qbucket, opt)
	return out, err
}

// searchSetStats is searchSet with the per-search work counters surfaced
// (and folded into the engine-wide tally either way).
func (e *Engine) searchSetStats(ctx context.Context, qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, SearchStats, error) {
	if err := e.warmCache(); err != nil {
		return nil, SearchStats{}, err
	}
	// Sample the brownout level once so the whole search — every shard's
	// probe budget — degrades consistently. An unbounded ranking of the
	// entire corpus is the most expensive query shape we serve; under
	// sustained pressure it is refused outright rather than browned out
	// (a "full ranking" with a shrunken probe budget would be a silent
	// lie about what it ranked).
	opt.brownout = e.BrownoutLevel()
	if opt.K <= 0 && opt.brownout >= BrownoutRefuseFullRank {
		return nil, SearchStats{}, ErrOverloaded
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	kinds := opt.kinds()
	for _, kind := range kinds {
		if qset.Get(kind) == nil {
			return nil, SearchStats{}, fmt.Errorf("core: query lacks %v descriptor", kind)
		}
	}
	pq := packQuery(qset, kinds)

	nShards := len(e.shards)
	workers := e.searchWorkers(&opt)
	needScalers := len(kinds) > 1 && opt.Fusion == FusionMinMax

	// Phase 1: shard-local scan — prune, kernel-sweep the arena columns,
	// observe min/max. The pooled scratch each shard scores into stays
	// aliased by the candidate rows until the ranking is final.
	parts := make([]shardPart, nShards)
	defer func() {
		for si := range parts {
			if parts[si].scratch != nil {
				parts[si].scratch.release()
			}
		}
	}()
	// Cancellation is checked per shard: an abandoned request skips the
	// remaining shard scans and returns the context's error, never a
	// partial ranking.
	var cancelled atomic.Bool
	parallelFor(nShards, workers, func(si int) {
		if cancelled.Load() {
			return
		}
		if ctx.Err() != nil {
			cancelled.Store(true)
			return
		}
		parts[si] = e.scanShard(si, pq, qbucket, &opt, needScalers)
	})
	if err := ctx.Err(); err != nil {
		return nil, SearchStats{}, err
	}

	// Fold the per-shard work counters into the search-wide stats and the
	// engine tally.
	stats := SearchStats{Kinds: len(kinds), K: opt.K, Brownout: opt.brownout}
	for si := range parts {
		st := &parts[si].stats
		stats.BaseRows += int64(st.baseRows)
		stats.Candidates += int64(len(parts[si].cands))
		stats.RowEvals += st.rowEvals
		stats.CellEvals += st.cellEvals
		if st.pruned {
			stats.PrunedShards++
		} else if st.baseRows > 0 {
			stats.ExactShards++
		}
	}
	e.tally.add(&stats)

	// Flatten to one candidate view, remembering each shard's range so
	// selection can stay shard-parallel.
	total := 0
	for si := range parts {
		total += len(parts[si].cands)
	}
	if total == 0 {
		return nil, stats, nil
	}
	all := make([]scored, 0, total)
	bounds := make([][2]int, nShards)
	for si := range parts {
		start := len(all)
		all = append(all, parts[si].cands...)
		bounds[si] = [2]int{start, len(all)}
	}

	k := opt.K
	if k <= 0 || k > total {
		k = total
	}

	// Fused distance per candidate. Single feature: the raw distance.
	// Min-max: streamed normalisation via the joined shard scalers.
	// RRF: global per-feature ranks (computed below), rescaled to [0,1].
	var fusedAt func(g int) float64
	switch {
	case len(kinds) == 1:
		fusedAt = func(g int) float64 { return all[g].d[0] }
	case opt.Fusion == FusionMinMax:
		scalers := make([]similarity.MinMaxScaler, len(kinds))
		for ki := range scalers {
			scalers[ki] = similarity.NewMinMaxScaler()
		}
		for si := range parts {
			if parts[si].scalers == nil {
				continue
			}
			for ki := range scalers {
				scalers[ki].Join(parts[si].scalers[ki])
			}
		}
		ws := similarity.FusionWeights(opt.Weights, len(kinds))
		fusedAt = func(g int) float64 {
			var sum float64
			for ki, dv := range all[g].d {
				sum += ws[ki] * scalers[ki].Scale(dv)
			}
			return sum
		}
	default:
		fused := rrfScores(all, len(kinds), workers)
		fusedAt = func(g int) float64 { return fused[g] }
	}

	// Phase 2: bounded top-K selection, one heap per shard, then merge.
	heaps := make([]*similarity.TopK, nShards)
	parallelFor(nShards, workers, func(si int) {
		lo, hi := bounds[si][0], bounds[si][1]
		if lo == hi {
			return
		}
		h := similarity.NewTopK(k)
		for g := lo; g < hi; g++ {
			h.Push(similarity.Ranked{ID: all[g].en.id, Distance: fusedAt(g)})
		}
		heaps[si] = h
	})
	final := similarity.NewTopK(k)
	for _, h := range heaps {
		final.Merge(h)
	}

	ranked := final.Sorted()
	out := make([]Match, len(ranked))
	for i, r := range ranked {
		en := e.getEntry(r.ID)
		out[i] = Match{
			KeyFrameID: en.id,
			VideoID:    en.videoID,
			VideoName:  e.vname[en.videoID],
			FrameIndex: en.frameIdx,
			Distance:   r.Distance,
		}
	}
	return out, stats, nil
}

// scanShard scores one cache shard's candidates against the packed
// query. The candidate set is the shard's live arena rows, or the
// range-pruned subset of them. When the shard's cell index can certify
// bounds for the request (see shardCells.usable), only surviving cells
// are kernel-swept; otherwise — tiny shards, unbuilt indexes, K <= 0,
// degenerate kind mixes, budgets that cover everything — the exact full
// sweep runs, bit-identical to the pre-pruner pipeline. Callers must
// hold e.mu for reading; the returned part's scratch must be released
// once its rows are no longer referenced.
func (e *Engine) scanShard(si int, pq *PackedQuery, qbucket rangeindex.Range, opt *SearchOptions, needScalers bool) shardPart {
	ar := e.arenas[si]
	nk := len(pq.kinds)
	var ids []int64
	n0 := len(ar.live)
	if !opt.NoPruning {
		ids = e.index.Shard(si).Candidates(qbucket)
		n0 = len(ids)
	}
	if n0 == 0 {
		return shardPart{}
	}

	if e.cells[si].usable(opt, n0) {
		if part, ok := e.scanShardCells(si, pq, qbucket, opt, needScalers, n0); ok {
			return part
		}
	}

	sc := scanScratchPool.Get().(*scanScratch)
	sc.grow(n0, nk)
	var rows []int32
	if opt.NoPruning {
		rows = ar.live
		for _, s := range rows {
			sc.sel = append(sc.sel, ar.ents[s])
		}
	} else {
		ents := e.shards[si]
		for _, id := range ids {
			if en := ents[id]; en != nil {
				sc.rows = append(sc.rows, en.slot)
				sc.sel = append(sc.sel, en)
			}
		}
		rows = sc.rows
		if len(rows) == 0 {
			sc.release()
			return shardPart{}
		}
	}
	part := sweepArenaRows(ar, pq, sc, rows, needScalers)
	part.stats = scanStats{baseRows: n0, rowEvals: int64(len(rows)) * int64(nk)}
	return part
}

// sweepArenaRows is the shared kernel sweep: each requested kind's
// batched kernel runs over the gathered rows of the shard's contiguous
// columns — no interface dispatch, no per-candidate allocation — into
// the pooled scratch, which is transposed to the per-candidate distance
// rows the fusion phase consumes. sc.sel must already hold the entries
// matching rows.
func sweepArenaRows(ar *shardArena, pq *PackedQuery, sc *scanScratch, rows []int32, needScalers bool) shardPart {
	nk := len(pq.kinds)
	n := len(sc.sel)
	buf := sc.buf[:n*nk]
	col := sc.col[:n]
	part := shardPart{cands: sc.cands[:n], scratch: sc}
	if needScalers {
		part.scalers = make([]similarity.MinMaxScaler, nk)
		for ki := range part.scalers {
			part.scalers[ki] = similarity.NewMinMaxScaler()
		}
	}
	for ki, kind := range pq.kinds {
		features.BatchDistance(kind, pq.vec[ki], ar.cols[kind], rows, col)
		if ar.missing[kind] > 0 {
			pres := ar.present[kind]
			for i, s := range rows {
				if !pres[s] {
					col[i] = missingDistance // missing stored descriptor ranks last
				}
			}
		}
		if part.scalers != nil {
			msc := &part.scalers[ki]
			for _, dv := range col {
				msc.Observe(dv)
			}
		}
		// Transpose the kind column into the candidate-major rows the
		// fusion and selection phases read.
		for i, dv := range col {
			buf[i*nk+ki] = dv
		}
	}
	for i, en := range sc.sel {
		part.cands[i] = scored{en: en, d: buf[i*nk : (i+1)*nk : (i+1)*nk]}
	}
	return part
}

// scanShardCells is the cell-pruned scan. It returns ok=false when the
// request cannot profit from (or be certified under) the bounds, in
// which case the caller runs the exact sweep.
//
// Single-kind requests are exact: cells are visited in ascending
// lower-bound order while a local top-K heap tracks the worst kept
// distance, and the sweep stops at the first cell whose bound strictly
// exceeds it. Every row that could appear in the shard's top K — even on
// distance ties, since a tying row's bound cannot exceed the tied worst
// — has then been scored, so the fusion phase selects exactly what the
// full sweep would (the strict > keeps equal-distance smaller-ID rows).
//
// Fused multi-kind requests probe: cells are ranked by reciprocal-rank
// fusion of their per-kind query→centroid distances — the same scale-free
// rank semantics the probed candidates are fused under, so a cell near
// the query in several kinds is probed first regardless of each kernel's
// magnitude. (Neither the radius-clamped bound — which saturates to 0 on
// every wide cell and degenerates into index-order ties exactly where
// ordering matters most — nor a fixed-scale distance sum — which lets the
// largest-magnitude kernel drown out the kinds that actually separate the
// data — survives contact with rank fusion.) Cells are gathered
// best-first until the probe budget is reached, then swept like any other
// candidate set. Rank fusion over the probed subset is not guaranteed
// identical to the full sweep; eval/recall.go holds it to the recall
// threshold.
func (e *Engine) scanShardCells(si int, pq *PackedQuery, qbucket rangeindex.Range, opt *SearchOptions, needScalers bool, n0 int) (shardPart, bool) {
	for _, kind := range pq.kinds {
		if !features.BoundSupported(kind) {
			return shardPart{}, false
		}
	}
	ar := e.arenas[si]
	cl := e.cells[si]
	nk := len(pq.kinds)
	single := nk == 1
	var budget int
	if single {
		if opt.K >= n0 {
			return shardPart{}, false // the heap could never prune a cell
		}
	} else {
		budget = cl.cfg.MinProbeRows
		if f := int(cl.cfg.ProbeFraction * float64(n0)); f > budget {
			budget = f
		}
		// Brownout shrinks the fused budget toward the MinProbeRows recall
		// floor; at level 0 this is a no-op and the arithmetic never runs.
		budget = brownedBudget(budget, cl.cfg.MinProbeRows, opt.brownout)
		if opt.K > budget {
			budget = opt.K
		}
		if budget >= n0 {
			return shardPart{}, false // probing everything is just the exact sweep
		}
	}

	sc := scanScratchPool.Get().(*scanScratch)
	sc.grow(n0, nk)
	sc.growCells(cl.n)
	ranged := !opt.NoPruning

	// Per-cell visit keys, then the ascending visit order (ties by cell
	// index, so the sweep is deterministic). The single-kind path needs
	// the radius-clamped lower bound — the heap cut-off depends on it
	// being a true bound — while the fused probe wants pure centroid
	// proximity as its rank signal.
	var cellEvals int64
	if single {
		kind := pq.kinds[0]
		features.BatchLowerBound(kind, pq.vec[0], cl.cent[kind], cl.rad[kind], sc.cellLB)
		cellEvals = int64(cl.n)
	} else {
		// RRF over per-kind centroid ranks, negated so the shared
		// ascending sort below visits the best-fused cell first.
		dist := make([]float64, cl.n)
		ord := make([]int32, cl.n)
		for ci := 0; ci < cl.n; ci++ {
			sc.cellLB[ci] = 0
		}
		for ki, kind := range pq.kinds {
			for ci := 0; ci < cl.n; ci++ {
				dist[ci] = features.PairDistance(kind, pq.vec[ki], cl.centRow(kind, int32(ci)))
			}
			for i := range ord {
				ord[i] = int32(i)
			}
			slices.SortFunc(ord, func(a, b int32) int {
				da, db := dist[a], dist[b]
				switch {
				case da < db:
					return -1
				case da > db:
					return 1
				case a < b:
					return -1
				}
				return 1
			})
			for r, ci := range ord {
				sc.cellLB[ci] -= 1 / float64(similarity.RRFConstant+r+1)
			}
		}
		cellEvals = int64(cl.n) * int64(nk)
	}
	for i := range sc.cellOrd {
		sc.cellOrd[i] = int32(i)
	}
	slices.SortFunc(sc.cellOrd, func(a, b int32) int {
		la, lb := sc.cellLB[a], sc.cellLB[b]
		switch {
		case la < lb:
			return -1
		case la > lb:
			return 1
		case a < b:
			return -1
		}
		return 1
	})

	gather := func(ci int32) int {
		start := len(sc.rows)
		for _, slot := range cl.members[ci] {
			if ranged && !ar.ents[slot].bucket.Overlaps(qbucket) {
				continue
			}
			sc.rows = append(sc.rows, slot)
			sc.sel = append(sc.sel, ar.ents[slot])
		}
		return start
	}

	if single {
		kind := pq.kinds[0]
		qv := pq.vec[0]
		heap := similarity.NewTopK(opt.K)
		for _, ci := range sc.cellOrd {
			if heap.Len() == opt.K {
				if w, _ := heap.Worst(); sc.cellLB[ci] > w.Distance {
					break // bound certifies: nothing left can enter the top K
				}
			}
			start := gather(ci)
			batch := sc.rows[start:]
			if len(batch) == 0 {
				continue
			}
			// nk == 1, so the candidate-major buf is the kind column.
			out := sc.buf[start : start+len(batch)]
			features.BatchDistance(kind, qv, ar.cols[kind], batch, out)
			if ar.missing[kind] > 0 {
				pres := ar.present[kind]
				for i, s := range batch {
					if !pres[s] {
						out[i] = missingDistance
					}
				}
			}
			for i, dv := range out {
				heap.Push(similarity.Ranked{ID: sc.sel[start+i].id, Distance: dv})
			}
		}
		n := len(sc.sel)
		part := shardPart{cands: sc.cands[:n], scratch: sc}
		for i, en := range sc.sel {
			part.cands[i] = scored{en: en, d: sc.buf[i : i+1 : i+1]}
		}
		part.stats = scanStats{baseRows: n0, rowEvals: int64(n), cellEvals: cellEvals, pruned: true}
		return part, true
	}

	for _, ci := range sc.cellOrd {
		if len(sc.rows) >= budget {
			break
		}
		gather(ci)
	}
	// Truncating the last cell at the exact budget is safe here (unlike
	// the single-kind path, where bounds reason about whole cells): the
	// probe is approximate either way, members are ID-ordered, and the
	// cut keeps paid work equal to the budget instead of overshooting by
	// up to a cell.
	if len(sc.rows) > budget {
		sc.rows = sc.rows[:budget]
		sc.sel = sc.sel[:budget]
	}
	part := sweepArenaRows(ar, pq, sc, sc.rows, needScalers)
	part.stats = scanStats{baseRows: n0, rowEvals: int64(len(sc.rows)) * int64(nk), cellEvals: cellEvals, pruned: true}
	return part, true
}

// rrfScores reproduces similarity.RRF + Normalize over the flattened
// candidate set. Per kind, candidates are ranked by (distance, key-frame
// ID) — the same order the reference's stable sort yields over its
// ID-sorted candidate list — and each contributes -1/(C+rank). The
// per-kind sorts run in parallel over gathered distance columns (with
// the arena scan no longer dominating, these sorts are the fusion
// phase's hot spot — slices.SortFunc over flat keys, not reflection
// through the candidate structs); accumulation stays in kind order so
// the floating-point sum matches the reference bit for bit. The
// comparator is a total order (IDs are unique), so the unstable sort is
// deterministic.
func rrfScores(all []scored, nk, workers int) []float64 {
	n := len(all)
	ids := make([]int64, n)
	for i := range all {
		ids[i] = all[i].en.id
	}
	orders := make([][]int32, nk)
	parallelFor(nk, workers, func(ki int) {
		ds := make([]float64, n)
		for i := range all {
			ds[i] = all[i].d[ki]
		}
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		slices.SortFunc(idx, func(a, b int32) int {
			da, db := ds[a], ds[b]
			if da != db {
				if da < db {
					return -1
				}
				return 1
			}
			if ids[a] < ids[b] {
				return -1
			}
			return 1
		})
		orders[ki] = idx
	})
	score := make([]float64, n)
	for ki := 0; ki < nk; ki++ {
		for rank, g := range orders[ki] {
			score[g] -= 1 / (float64(similarity.RRFConstant) + float64(rank+1))
		}
	}
	// RRF scores are negated; rescale into [0,1] so reported combined
	// distances read like the single-feature ones.
	m := similarity.NewMinMaxScaler()
	for _, s := range score {
		m.Observe(s)
	}
	for i, s := range score {
		score[i] = m.Scale(s)
	}
	return score
}

// searchSetReference is the retained naive implementation: a single
// goroutine scans every cached entry, materialises one full distance list
// per feature, fuses with the batch similarity helpers and fully sorts
// the ranking. The sharded pipeline must reproduce its output exactly; it
// exists for equivalence tests and as the benchmark baseline.
func (e *Engine) searchSetReference(qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, error) {
	if err := e.warmCache(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	// Validate query descriptors before scanning, in the same order the
	// sharded pipeline does, so the two implementations agree even on the
	// missing-descriptor + zero-candidate edge.
	kinds := opt.kinds()
	for _, kind := range kinds {
		if qset.Get(kind) == nil {
			return nil, fmt.Errorf("core: query lacks %v descriptor", kind)
		}
	}

	var cands []*frameEntry
	for _, sh := range e.shards {
		for _, en := range sh {
			if opt.NoPruning || en.bucket.Overlaps(qbucket) {
				cands = append(cands, en)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
	if len(cands) == 0 {
		return nil, nil
	}

	lists := make([][]float64, len(kinds))
	for ki, kind := range kinds {
		qd := qset.Get(kind)
		dist := make([]float64, len(cands))
		for i, en := range cands {
			cd := en.set.Get(kind)
			if cd == nil {
				dist[i] = missingDistance
				continue
			}
			d, err := qd.DistanceTo(cd)
			if err != nil {
				return nil, err
			}
			dist[i] = d
		}
		lists[ki] = dist
	}
	var fused []float64
	if len(kinds) == 1 {
		fused = lists[0]
	} else if opt.Fusion == FusionMinMax {
		for _, l := range lists {
			similarity.Normalize(l)
		}
		fused = similarity.Fuse(lists, opt.Weights)
	} else {
		fused = similarity.Normalize(similarity.RRF(lists, similarity.RRFConstant))
	}

	ids := make([]int64, len(cands))
	for i, en := range cands {
		ids[i] = en.id
	}
	ranked := similarity.Rank(ids, fused)
	k := opt.K
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	out := make([]Match, k)
	for i := 0; i < k; i++ {
		en := e.getEntry(ranked[i].ID)
		out[i] = Match{
			KeyFrameID: en.id,
			VideoID:    en.videoID,
			VideoName:  e.vname[en.videoID],
			FrameIndex: en.frameIdx,
			Distance:   ranked[i].Distance,
		}
	}
	return out, nil
}

// SearchWithSetReference runs the retained naive full-sort search (single
// goroutine, no heap selection). Exported for equivalence tests and as
// the speedup baseline in benchmarks.
func (e *Engine) SearchWithSetReference(qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, error) {
	return e.searchSetReference(qset, qbucket, opt)
}

// SearchVideo ranks stored videos against a query clip using the paper's
// dynamic-programming sequence similarity: the query's key-frame
// descriptor sequence is aligned (DTW) against each stored video's
// key-frame sequence, with per-pair cost the equally weighted sum of
// fixed-scale feature distances.
func (e *Engine) SearchVideo(queryFrames []*imaging.Image, opt SearchOptions) ([]VideoMatch, error) {
	return e.SearchVideoCtx(context.Background(), queryFrames, opt)
}

// SearchVideoCtx is SearchVideo under a request context: cancellation is
// checked before query extraction and between per-video DTW alignments,
// so an abandoned clip query stops within one alignment's worth of work
// and returns the context's error instead of a partial ranking.
func (e *Engine) SearchVideoCtx(ctx context.Context, queryFrames []*imaging.Image, opt SearchOptions) ([]VideoMatch, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := e.warmCache(); err != nil {
		return nil, err
	}
	kex := keyframe.Extractor{Threshold: e.opts.KeyframeThreshold}
	kfs, err := kex.Extract(queryFrames)
	if err != nil {
		return nil, err
	}
	if len(kfs) == 0 {
		return nil, errors.New("core: query clip has no frames")
	}
	qsets := make([]*features.Set, len(kfs))
	parallelFor(len(kfs), e.workers(), func(i int) {
		qsets[i] = features.ExtractAllShared(kfs[i].Image)
	})
	return e.searchVideoSets(ctx, qsets, opt)
}

// searchVideoSets aligns pre-extracted query descriptor sequences against
// every stored video, one DTW alignment per worker at a time, then
// heap-selects the K closest videos. The DTW cost function reads the
// stored side straight out of the arena columns through the batch
// kernels' pair form. Cancellation is checked before each alignment;
// on cancellation the context's error is returned, never a partial
// ranking.
func (e *Engine) searchVideoSets(ctx context.Context, qsets []*features.Set, opt SearchOptions) ([]VideoMatch, error) {
	// Video DTW has no pruner to shrink (every stored video is aligned),
	// so under sustained pressure the unbounded form is refused whole,
	// like the K<=0 frame ranking.
	if opt.K <= 0 && e.BrownoutLevel() >= BrownoutRefuseFullRank {
		return nil, ErrOverloaded
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	kinds := opt.kinds()
	pqs := make([]*PackedQuery, len(qsets))
	for i, q := range qsets {
		pqs[i] = packQuery(q, kinds)
	}

	// Group stored frames by video, ordered by frame index.
	byVideo := make(map[int64][]*frameEntry)
	for _, sh := range e.shards {
		for _, en := range sh {
			byVideo[en.videoID] = append(byVideo[en.videoID], en)
		}
	}
	vids := make([]int64, 0, len(byVideo))
	for vid := range byVideo {
		vids = append(vids, vid)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })

	dists := make([]float64, len(vids))
	// Fan out over videos, not shards, so the parallelism bound is the
	// video count (parallelFor clamps), not the engine's shard count.
	workers := opt.Workers
	if workers <= 0 {
		workers = e.workers()
	}
	var cancelled atomic.Bool
	parallelFor(len(vids), workers, func(i int) {
		if cancelled.Load() {
			return
		}
		if ctx.Err() != nil {
			cancelled.Store(true)
			return
		}
		ens := byVideo[vids[i]]
		sort.Slice(ens, func(a, b int) bool { return ens[a].frameIdx < ens[b].frameIdx })
		// Resolve each stored frame's arena once, not per DTW cell.
		ars := make([]*shardArena, len(ens))
		for j, en := range ens {
			ars[j] = e.arenas[e.index.ShardFor(en.id)]
		}
		cost := func(qi, cj int) float64 {
			return fixedScaleDistancePacked(pqs[qi], ars[cj], ens[cj].slot)
		}
		dists[i] = similarity.DTW(len(qsets), len(ens), cost)
	})
	if cancelled.Load() {
		return nil, ctx.Err()
	}
	return e.selectVideos(vids, dists, opt.K), nil
}

// BestSingleFrameVideoSearch ranks videos by the single best frame-to-
// frame distance instead of DP alignment (the DP ablation baseline). Each
// shard worker keeps a shard-local per-video minimum in a pooled slice
// keyed by video order (not a per-call map — shard-count map allocations
// and per-entry hashing were pure churn); the minima merge exactly, so
// results are identical at any worker count.
func (e *Engine) BestSingleFrameVideoSearch(qsets []*features.Set, opt SearchOptions) ([]VideoMatch, error) {
	if err := e.warmCache(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	kinds := opt.kinds()
	pqs := make([]*PackedQuery, len(qsets))
	for i, q := range qsets {
		pqs[i] = packQuery(q, kinds)
	}

	// Deterministic video-order table shared by every shard worker: the
	// slot index replaces the map key. +Inf marks "no frame seen".
	vids := make([]int64, 0, len(e.vname))
	for vid := range e.vname {
		vids = append(vids, vid)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	vpos := make(map[int64]int32, len(vids))
	for i, vid := range vids {
		vpos[vid] = int32(i)
	}

	locals := make([]*[]float64, len(e.shards))
	parallelFor(len(e.shards), e.searchWorkers(&opt), func(si int) {
		ar := e.arenas[si]
		if len(ar.live) == 0 {
			return
		}
		bp := acquireBestDists(len(vids))
		best := *bp
		for _, slot := range ar.live {
			vi, ok := vpos[ar.ents[slot].videoID]
			if !ok {
				continue
			}
			for _, pq := range pqs {
				if d := fixedScaleDistancePacked(pq, ar, slot); d < best[vi] {
					best[vi] = d
				}
			}
		}
		locals[si] = bp
	})
	bp := acquireBestDists(len(vids))
	best := *bp
	for _, local := range locals {
		if local == nil {
			continue
		}
		for vi, d := range *local {
			if d < best[vi] {
				best[vi] = d
			}
		}
		bestDistPool.Put(local)
	}
	outVids := make([]int64, 0, len(vids))
	dists := make([]float64, 0, len(vids))
	for vi, d := range best {
		if !math.IsInf(d, 1) {
			outVids = append(outVids, vids[vi])
			dists = append(dists, d)
		}
	}
	bestDistPool.Put(bp)
	return e.selectVideos(outVids, dists, opt.K), nil
}

// bestDistPool recycles the per-shard and merged best-distance slices of
// BestSingleFrameVideoSearch across calls.
var bestDistPool = sync.Pool{New: func() any { return new([]float64) }}

// acquireBestDists returns a pooled slice of n distances, all +Inf.
func acquireBestDists(n int) *[]float64 {
	bp := bestDistPool.Get().(*[]float64)
	s := *bp
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	inf := math.Inf(1)
	for i := range s {
		s[i] = inf
	}
	*bp = s
	return bp
}

// selectVideos heap-selects the k closest videos (all when k <= 0) with
// the deterministic (distance, video ID) tie-break. Callers must hold
// e.mu for reading (for vname).
func (e *Engine) selectVideos(vids []int64, dists []float64, k int) []VideoMatch {
	h := similarity.NewTopK(k)
	for i, vid := range vids {
		h.Push(similarity.Ranked{ID: vid, Distance: dists[i]})
	}
	ranked := h.Sorted()
	out := make([]VideoMatch, len(ranked))
	for i, r := range ranked {
		out[i] = VideoMatch{VideoID: r.ID, VideoName: e.vname[r.ID], Distance: r.Distance}
	}
	return out
}
