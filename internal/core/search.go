// Query-side pipeline: the concurrent sharded scoring path behind every
// search entry point, plus the retained single-goroutine reference
// implementation the equivalence tests and benchmarks compare against.
//
// A frame search runs in two parallel phases over the engine's fixed cache
// shards (see DESIGN.md):
//
//  1. scan — each shard worker prunes its own range-index shard by the
//     query bucket, computes all requested per-feature distances into one
//     flat shard-local buffer, and (for min-max fusion) folds each
//     feature's running min/max into a shard-local MinMaxScaler.
//  2. select — per-candidate fused distances are produced from the merged
//     normalisation state and pushed through one bounded top-K max-heap
//     per shard; the shard heaps merge into the final ranking.
//
// No phase materialises one []float64 per feature per query, and no phase
// fully sorts the candidate set: selection is O(n log k) per shard.
package core

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/keyframe"
	"cbvr/internal/rangeindex"
	"cbvr/internal/similarity"
)

// missingDistance ranks candidates with an absent stored descriptor last.
const missingDistance = 1e9

// searchWorkers resolves the per-call scoring parallelism: the call
// override, else the engine default, clamped to the shard count (more
// workers than shards cannot help).
func (e *Engine) searchWorkers(opt *SearchOptions) int {
	w := opt.Workers
	if w <= 0 {
		w = e.workers()
	}
	if w > len(e.shards) {
		w = len(e.shards)
	}
	if w < 1 {
		w = 1
	}
	return w
}

// parallelFor runs fn(i) for i in [0,n) across at most workers
// goroutines, pulling indices from a shared counter so uneven work
// self-balances. workers <= 1 runs inline on the calling goroutine.
func parallelFor(n, workers int, fn func(i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// SearchFrame ranks stored key frames against a query frame: extract the
// query's descriptors, prune candidates through the sharded range index,
// score per feature in parallel, fuse and select the top K.
func (e *Engine) SearchFrame(query *imaging.Image, opt SearchOptions) ([]Match, error) {
	if err := e.warmCache(); err != nil {
		return nil, err
	}
	planes := features.NewPlanes(query)
	qset := planes.ExtractAll()
	qbucket := BucketFromPlanes(planes)
	return e.searchSet(qset, qbucket, opt)
}

// SearchWithSet runs the frame search with pre-extracted query descriptors
// (evaluation harness; avoids re-extracting per feature configuration).
func (e *Engine) SearchWithSet(qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, error) {
	return e.searchSet(qset, qbucket, opt)
}

// scored pairs one candidate with its per-kind raw distances; the row
// aliases the owning shard's flat buffer.
type scored struct {
	en *frameEntry
	d  []float64
}

// shardPart is one shard worker's scan output.
type shardPart struct {
	cands   []scored
	scalers []similarity.MinMaxScaler // per kind; nil unless min-max fusion
}

// searchSet is the scoring half of SearchFrame: the concurrent sharded
// pipeline. It is deterministic — identical rankings and distances at any
// worker count, matching searchSetReference.
func (e *Engine) searchSet(qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, error) {
	if err := e.warmCache(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	kinds := opt.kinds()
	qds := make([]features.Descriptor, len(kinds))
	for ki, kind := range kinds {
		if qds[ki] = qset.Get(kind); qds[ki] == nil {
			return nil, fmt.Errorf("core: query lacks %v descriptor", kind)
		}
	}

	nShards := len(e.shards)
	workers := e.searchWorkers(&opt)
	needScalers := len(kinds) > 1 && opt.Fusion == FusionMinMax

	// Phase 1: shard-local scan — prune, score, observe min/max.
	parts := make([]shardPart, nShards)
	errs := make([]error, nShards)
	parallelFor(nShards, workers, func(si int) {
		parts[si], errs[si] = e.scanShard(si, kinds, qds, qbucket, opt.NoPruning, needScalers)
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	// Flatten to one candidate view, remembering each shard's range so
	// selection can stay shard-parallel.
	total := 0
	for si := range parts {
		total += len(parts[si].cands)
	}
	if total == 0 {
		return nil, nil
	}
	all := make([]scored, 0, total)
	bounds := make([][2]int, nShards)
	for si := range parts {
		start := len(all)
		all = append(all, parts[si].cands...)
		bounds[si] = [2]int{start, len(all)}
	}

	k := opt.K
	if k <= 0 || k > total {
		k = total
	}

	// Fused distance per candidate. Single feature: the raw distance.
	// Min-max: streamed normalisation via the joined shard scalers.
	// RRF: global per-feature ranks (computed below), rescaled to [0,1].
	var fusedAt func(g int) float64
	switch {
	case len(kinds) == 1:
		fusedAt = func(g int) float64 { return all[g].d[0] }
	case opt.Fusion == FusionMinMax:
		scalers := make([]similarity.MinMaxScaler, len(kinds))
		for ki := range scalers {
			scalers[ki] = similarity.NewMinMaxScaler()
		}
		for si := range parts {
			if parts[si].scalers == nil {
				continue
			}
			for ki := range scalers {
				scalers[ki].Join(parts[si].scalers[ki])
			}
		}
		ws := similarity.FusionWeights(opt.Weights, len(kinds))
		fusedAt = func(g int) float64 {
			var sum float64
			for ki, dv := range all[g].d {
				sum += ws[ki] * scalers[ki].Scale(dv)
			}
			return sum
		}
	default:
		fused := rrfScores(all, len(kinds), workers)
		fusedAt = func(g int) float64 { return fused[g] }
	}

	// Phase 2: bounded top-K selection, one heap per shard, then merge.
	heaps := make([]*similarity.TopK, nShards)
	parallelFor(nShards, workers, func(si int) {
		lo, hi := bounds[si][0], bounds[si][1]
		if lo == hi {
			return
		}
		h := similarity.NewTopK(k)
		for g := lo; g < hi; g++ {
			h.Push(similarity.Ranked{ID: all[g].en.id, Distance: fusedAt(g)})
		}
		heaps[si] = h
	})
	final := similarity.NewTopK(k)
	for _, h := range heaps {
		final.Merge(h)
	}

	ranked := final.Sorted()
	out := make([]Match, len(ranked))
	for i, r := range ranked {
		en := e.getEntry(r.ID)
		out[i] = Match{
			KeyFrameID: en.id,
			VideoID:    en.videoID,
			VideoName:  e.vname[en.videoID],
			FrameIndex: en.frameIdx,
			Distance:   r.Distance,
		}
	}
	return out, nil
}

// scanShard scores one cache shard's candidates against the query.
// Callers must hold e.mu for reading.
func (e *Engine) scanShard(si int, kinds []features.Kind, qds []features.Descriptor,
	qbucket rangeindex.Range, noPruning, needScalers bool) (shardPart, error) {
	ents := e.shards[si]
	var sel []*frameEntry
	if noPruning {
		sel = make([]*frameEntry, 0, len(ents))
		for _, en := range ents {
			sel = append(sel, en)
		}
	} else {
		ids := e.index.Shard(si).Candidates(qbucket)
		sel = make([]*frameEntry, 0, len(ids))
		for _, id := range ids {
			if en := ents[id]; en != nil {
				sel = append(sel, en)
			}
		}
	}
	if len(sel) == 0 {
		return shardPart{}, nil
	}

	nk := len(kinds)
	buf := make([]float64, len(sel)*nk) // one flat buffer per shard, all kinds
	part := shardPart{cands: make([]scored, len(sel))}
	if needScalers {
		part.scalers = make([]similarity.MinMaxScaler, nk)
		for ki := range part.scalers {
			part.scalers[ki] = similarity.NewMinMaxScaler()
		}
	}
	for i, en := range sel {
		row := buf[i*nk : (i+1)*nk : (i+1)*nk]
		for ki, kind := range kinds {
			cd := en.set.Get(kind)
			if cd == nil {
				row[ki] = missingDistance // missing stored descriptor ranks last
				continue
			}
			d, err := qds[ki].DistanceTo(cd)
			if err != nil {
				return shardPart{}, err
			}
			row[ki] = d
		}
		if part.scalers != nil {
			for ki, dv := range row {
				part.scalers[ki].Observe(dv)
			}
		}
		part.cands[i] = scored{en: en, d: row}
	}
	return part, nil
}

// rrfScores reproduces similarity.RRF + Normalize over the flattened
// candidate set. Per kind, candidates are ranked by (distance, key-frame
// ID) — the same order the reference's stable sort yields over its
// ID-sorted candidate list — and each contributes -1/(C+rank). The
// per-kind sorts run in parallel; accumulation stays in kind order so the
// floating-point sum matches the reference bit for bit.
func rrfScores(all []scored, nk, workers int) []float64 {
	n := len(all)
	orders := make([][]int32, nk)
	parallelFor(nk, workers, func(ki int) {
		idx := make([]int32, n)
		for i := range idx {
			idx[i] = int32(i)
		}
		sort.Slice(idx, func(a, b int) bool {
			da, db := all[idx[a]].d[ki], all[idx[b]].d[ki]
			if da != db {
				return da < db
			}
			return all[idx[a]].en.id < all[idx[b]].en.id
		})
		orders[ki] = idx
	})
	score := make([]float64, n)
	for ki := 0; ki < nk; ki++ {
		for rank, g := range orders[ki] {
			score[g] -= 1 / (float64(similarity.RRFConstant) + float64(rank+1))
		}
	}
	// RRF scores are negated; rescale into [0,1] so reported combined
	// distances read like the single-feature ones.
	m := similarity.NewMinMaxScaler()
	for _, s := range score {
		m.Observe(s)
	}
	for i, s := range score {
		score[i] = m.Scale(s)
	}
	return score
}

// searchSetReference is the retained naive implementation: a single
// goroutine scans every cached entry, materialises one full distance list
// per feature, fuses with the batch similarity helpers and fully sorts
// the ranking. The sharded pipeline must reproduce its output exactly; it
// exists for equivalence tests and as the benchmark baseline.
func (e *Engine) searchSetReference(qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, error) {
	if err := e.warmCache(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()

	// Validate query descriptors before scanning, in the same order the
	// sharded pipeline does, so the two implementations agree even on the
	// missing-descriptor + zero-candidate edge.
	kinds := opt.kinds()
	for _, kind := range kinds {
		if qset.Get(kind) == nil {
			return nil, fmt.Errorf("core: query lacks %v descriptor", kind)
		}
	}

	var cands []*frameEntry
	for _, sh := range e.shards {
		for _, en := range sh {
			if opt.NoPruning || en.bucket.Overlaps(qbucket) {
				cands = append(cands, en)
			}
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].id < cands[j].id })
	if len(cands) == 0 {
		return nil, nil
	}

	lists := make([][]float64, len(kinds))
	for ki, kind := range kinds {
		qd := qset.Get(kind)
		dist := make([]float64, len(cands))
		for i, en := range cands {
			cd := en.set.Get(kind)
			if cd == nil {
				dist[i] = missingDistance
				continue
			}
			d, err := qd.DistanceTo(cd)
			if err != nil {
				return nil, err
			}
			dist[i] = d
		}
		lists[ki] = dist
	}
	var fused []float64
	if len(kinds) == 1 {
		fused = lists[0]
	} else if opt.Fusion == FusionMinMax {
		for _, l := range lists {
			similarity.Normalize(l)
		}
		fused = similarity.Fuse(lists, opt.Weights)
	} else {
		fused = similarity.Normalize(similarity.RRF(lists, similarity.RRFConstant))
	}

	ids := make([]int64, len(cands))
	for i, en := range cands {
		ids[i] = en.id
	}
	ranked := similarity.Rank(ids, fused)
	k := opt.K
	if k <= 0 || k > len(ranked) {
		k = len(ranked)
	}
	out := make([]Match, k)
	for i := 0; i < k; i++ {
		en := e.getEntry(ranked[i].ID)
		out[i] = Match{
			KeyFrameID: en.id,
			VideoID:    en.videoID,
			VideoName:  e.vname[en.videoID],
			FrameIndex: en.frameIdx,
			Distance:   ranked[i].Distance,
		}
	}
	return out, nil
}

// SearchWithSetReference runs the retained naive full-sort search (single
// goroutine, no heap selection). Exported for equivalence tests and as
// the speedup baseline in benchmarks.
func (e *Engine) SearchWithSetReference(qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, error) {
	return e.searchSetReference(qset, qbucket, opt)
}

// SearchVideo ranks stored videos against a query clip using the paper's
// dynamic-programming sequence similarity: the query's key-frame
// descriptor sequence is aligned (DTW) against each stored video's
// key-frame sequence, with per-pair cost the equally weighted sum of
// fixed-scale feature distances.
func (e *Engine) SearchVideo(queryFrames []*imaging.Image, opt SearchOptions) ([]VideoMatch, error) {
	if err := e.warmCache(); err != nil {
		return nil, err
	}
	kex := keyframe.Extractor{Threshold: e.opts.KeyframeThreshold}
	kfs, err := kex.Extract(queryFrames)
	if err != nil {
		return nil, err
	}
	if len(kfs) == 0 {
		return nil, errors.New("core: query clip has no frames")
	}
	qsets := make([]*features.Set, len(kfs))
	parallelFor(len(kfs), e.workers(), func(i int) {
		qsets[i] = features.ExtractAllShared(kfs[i].Image)
	})
	return e.searchVideoSets(qsets, opt)
}

// searchVideoSets aligns pre-extracted query descriptor sequences against
// every stored video, one DTW alignment per worker at a time, then
// heap-selects the K closest videos.
func (e *Engine) searchVideoSets(qsets []*features.Set, opt SearchOptions) ([]VideoMatch, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()

	// Group stored frames by video, ordered by frame index.
	byVideo := make(map[int64][]*frameEntry)
	for _, sh := range e.shards {
		for _, en := range sh {
			byVideo[en.videoID] = append(byVideo[en.videoID], en)
		}
	}
	vids := make([]int64, 0, len(byVideo))
	for vid := range byVideo {
		vids = append(vids, vid)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })

	kinds := opt.kinds()
	dists := make([]float64, len(vids))
	// Fan out over videos, not shards, so the parallelism bound is the
	// video count (parallelFor clamps), not the engine's shard count.
	workers := opt.Workers
	if workers <= 0 {
		workers = e.workers()
	}
	parallelFor(len(vids), workers, func(i int) {
		ens := byVideo[vids[i]]
		sort.Slice(ens, func(a, b int) bool { return ens[a].frameIdx < ens[b].frameIdx })
		cost := func(qi, cj int) float64 {
			return fixedScaleDistance(qsets[qi], ens[cj].set, kinds)
		}
		dists[i] = similarity.DTW(len(qsets), len(ens), cost)
	})
	return e.selectVideos(vids, dists, opt.K), nil
}

// BestSingleFrameVideoSearch ranks videos by the single best frame-to-
// frame distance instead of DP alignment (the DP ablation baseline). Each
// shard worker keeps a shard-local per-video minimum; the minima merge
// exactly, so results are identical at any worker count.
func (e *Engine) BestSingleFrameVideoSearch(qsets []*features.Set, opt SearchOptions) ([]VideoMatch, error) {
	if err := e.warmCache(); err != nil {
		return nil, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	kinds := opt.kinds()
	locals := make([]map[int64]float64, len(e.shards))
	parallelFor(len(e.shards), e.searchWorkers(&opt), func(si int) {
		best := make(map[int64]float64)
		for _, en := range e.shards[si] {
			for _, q := range qsets {
				d := fixedScaleDistance(q, en.set, kinds)
				if cur, ok := best[en.videoID]; !ok || d < cur {
					best[en.videoID] = d
				}
			}
		}
		locals[si] = best
	})
	best := make(map[int64]float64)
	for _, local := range locals {
		for vid, d := range local {
			if cur, ok := best[vid]; !ok || d < cur {
				best[vid] = d
			}
		}
	}
	vids := make([]int64, 0, len(best))
	dists := make([]float64, 0, len(best))
	for vid, d := range best {
		vids = append(vids, vid)
		dists = append(dists, d)
	}
	return e.selectVideos(vids, dists, opt.K), nil
}

// selectVideos heap-selects the k closest videos (all when k <= 0) with
// the deterministic (distance, video ID) tie-break. Callers must hold
// e.mu for reading (for vname).
func (e *Engine) selectVideos(vids []int64, dists []float64, k int) []VideoMatch {
	h := similarity.NewTopK(k)
	for i, vid := range vids {
		h.Push(similarity.Ranked{ID: vid, Distance: dists[i]})
	}
	ranked := h.Sorted()
	out := make([]VideoMatch, len(ranked))
	for i, r := range ranked {
		out[i] = VideoMatch{VideoID: r.ID, VideoName: e.vname[r.ID], Distance: r.Distance}
	}
	return out
}
