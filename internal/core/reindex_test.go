package core

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"cbvr/internal/catalog"
	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
)

// rowsEqual compares every stored column of two key-frame row sets.
func rowsEqual(t *testing.T, label string, got, want []*catalog.KeyFrame) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(want))
	}
	for i, g := range got {
		w := want[i]
		if g.ID != w.ID || g.Name != w.Name || g.FrameIndex != w.FrameIndex ||
			g.VideoID != w.VideoID || g.Min != w.Min || g.Max != w.Max ||
			g.MajorRegions != w.MajorRegions ||
			g.SCH != w.SCH || g.GLCM != w.GLCM || g.Gabor != w.Gabor ||
			g.Tamura != w.Tamura || g.ACC != w.ACC || g.Naive != w.Naive ||
			g.Regions != w.Regions {
			t.Errorf("%s: row %d differs", label, i)
		}
	}
}

// TestReindexVideoBitIdentical is the headline equivalence: after a
// re-index, every stored row — feature columns, bucket, name, frame
// index, IMAGE bytes — and the VIDEO/STREAM blobs must be bit-identical
// to a fresh IngestVideoStream of the same container, and search results
// must be unchanged.
func TestReindexVideoBitIdentical(t *testing.T) {
	raw, v := testContainer(t, synthvid.Sports, 41, 18)

	eng := openTestEngine(t)
	res, err := eng.IngestVideoStream("clip", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	before := loadStored(t, eng, res.VideoID)
	if len(before.rows) < 2 {
		t.Fatalf("degenerate fixture: %d key frames", len(before.rows))
	}
	preSearch, err := eng.SearchFrame(v.Frames[0], SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}

	rx, err := eng.ReindexVideo(res.VideoID)
	if err != nil {
		t.Fatal(err)
	}
	if rx.VideoID != res.VideoID || rx.KeyFrames != len(before.rows) || rx.VideoName != "clip" {
		t.Fatalf("reindex result %+v", rx)
	}

	after := loadStored(t, eng, res.VideoID)
	rowsEqual(t, "reindex vs pre-reindex", after.rows, before.rows)
	if !bytes.Equal(after.video, before.video) {
		t.Error("VIDEO blob changed by reindex")
	}
	if !bytes.Equal(after.stream, before.stream) {
		t.Error("STREAM blob changed by reindex")
	}
	for i := range after.images {
		if !bytes.Equal(after.images[i], before.images[i]) {
			t.Errorf("key frame %d IMAGE bytes changed by reindex", i)
		}
	}

	// Fresh ingest into a second engine agrees column for column (IDs
	// aside, both engines assign the same sequence from 1).
	eng2 := openTestEngine(t)
	res2, err := eng2.IngestVideoStream("clip", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	fresh := loadStored(t, eng2, res2.VideoID)
	rowsEqual(t, "reindex vs fresh ingest", after.rows, fresh.rows)

	// Search is undisturbed: same ranking, same distances.
	postSearch, err := eng.SearchFrame(v.Frames[0], SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(postSearch) != len(preSearch) {
		t.Fatalf("search returned %d matches after reindex, want %d", len(postSearch), len(preSearch))
	}
	for i := range postSearch {
		if postSearch[i] != preSearch[i] {
			t.Errorf("match %d changed across reindex: %+v vs %+v", i, postSearch[i], preSearch[i])
		}
	}
}

// TestReindexAll rebuilds several videos and reports one result each, in
// V_ID order, leaving all rows intact.
func TestReindexAll(t *testing.T) {
	eng := openTestEngine(t)
	var want []int64
	for i, cat := range []synthvid.Category{synthvid.Sports, synthvid.News, synthvid.Cartoon} {
		raw, _ := testContainer(t, cat, int64(50+i), 12)
		res, err := eng.IngestVideoStream(fmt.Sprintf("clip_%d", i), bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res.VideoID)
	}
	before := make(map[int64]*storedVideo)
	for _, id := range want {
		before[id] = loadStored(t, eng, id)
	}

	results, err := eng.ReindexAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(want) {
		t.Fatalf("%d results, want %d", len(results), len(want))
	}
	for i, rx := range results {
		if rx.VideoID != want[i] {
			t.Errorf("result %d video %d, want %d", i, rx.VideoID, want[i])
		}
		rowsEqual(t, fmt.Sprintf("video %d", rx.VideoID),
			loadStored(t, eng, rx.VideoID).rows, before[rx.VideoID].rows)
	}
}

// TestReindexMissingVideo surfaces a clean error.
func TestReindexMissingVideo(t *testing.T) {
	eng := openTestEngine(t)
	if _, err := eng.ReindexVideo(99); err == nil || !strings.Contains(err.Error(), "no such video") {
		t.Fatalf("reindex of missing video: %v", err)
	}
}

// TestReindexUnderSearchChurn runs ReindexVideo repeatedly while
// concurrent searches hammer the cache under -race: every search must
// succeed and keep finding the video (old or new rows — never a gap).
func TestReindexUnderSearchChurn(t *testing.T) {
	eng := openTestEngine(t)
	raw, v := testContainer(t, synthvid.Sports, 60, 18)
	res, err := eng.IngestVideoStream("churn", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	qset := eng.ExtractQuerySets(v.Frames[:1])[0]
	qbucket := QueryBucket(v.Frames[0])

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	stop := make(chan struct{})
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				m, err := eng.SearchWithSet(qset, qbucket, SearchOptions{K: 3, NoPruning: i%2 == 0})
				if err != nil {
					errCh <- err
					return
				}
				if len(m) == 0 || m[0].VideoID != res.VideoID {
					errCh <- fmt.Errorf("search lost the video mid-reindex: %+v", m)
					return
				}
			}
		}()
	}
	for i := 0; i < 4; i++ {
		if _, err := eng.ReindexVideo(res.VideoID); err != nil {
			close(stop)
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestIngestRasterPoolBounded pins the RescaleInto pooling: the number of
// analysis rasters ever allocated stays bounded by the worker count, no
// matter how many source frames stream through ingest and re-index.
func TestIngestRasterPoolBounded(t *testing.T) {
	eng := openTestEngine(t)
	const frames = 48
	raw, _ := testContainer(t, synthvid.Movie, 61, frames)
	res, err := eng.IngestVideoStream("pooled", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if res.NumFrames != frames {
		t.Fatalf("decoded %d frames", res.NumFrames)
	}
	if _, err := eng.ReindexVideo(res.VideoID); err != nil {
		t.Fatal(err)
	}
	// Decode loop + queued jobs + in-flight workers each hold at most one
	// raster, so the pool never needs more than ~2×workers + 1.
	bound := int64(2*eng.workers() + 2)
	if got := eng.rasters.allocs.Load(); got > bound {
		t.Errorf("pipeline allocated %d analysis rasters for %d frames, want <= %d (pooled)", got, frames, bound)
	}
}

// TestReindexRescalesEachKeyFrameOnce extends the one-rescale-per-frame
// invariant to the re-index path: one RescaleInto per stored key-frame
// record, nothing else.
func TestReindexRescalesEachKeyFrameOnce(t *testing.T) {
	eng := openTestEngine(t)
	raw, _ := testContainer(t, synthvid.Nature, 62, 16)
	res, err := eng.IngestVideoStream("once", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	start := imaging.RescaleCalls()
	rx, err := eng.ReindexVideo(res.VideoID)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := imaging.RescaleCalls()-start, int64(rx.KeyFrames); got != want {
		t.Errorf("reindex performed %d rescales for %d key frames, want %d", got, rx.KeyFrames, want)
	}
}

// TestReindexDeletedMidSwap pins the delete/reindex race: a DeleteVideo
// that lands between the reindex commit and the cache swap must win —
// reindex reports the conflict and installs no ghost cache entries for
// the vanished video.
func TestReindexDeletedMidSwap(t *testing.T) {
	eng := openTestEngine(t)
	raw, _ := testContainer(t, synthvid.Cartoon, 63, 14)
	res, err := eng.IngestVideoStream("doomed", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	eng.reindexHook = func(stage string) {
		if stage == "post-commit" {
			if err := eng.DeleteVideo(res.VideoID); err != nil {
				t.Errorf("delete during reindex: %v", err)
			}
		}
	}
	if _, err := eng.ReindexVideo(res.VideoID); err == nil || !strings.Contains(err.Error(), "deleted during reindex") {
		t.Fatalf("reindex of concurrently deleted video: %v", err)
	}
	eng.reindexHook = nil
	n, err := eng.CacheSize()
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("%d ghost cache entries survive a delete that raced a reindex", n)
	}
}
