package core

import (
	"sync"
	"sync/atomic"

	"cbvr/internal/features"
	"cbvr/internal/imaging"
)

// rasterPool recycles 300×300 analysis rasters across the ingest and
// re-index pipelines. Each decoded source frame needs one raster for the
// imaging.RescaleInto analysis rescale; non-key frames hand theirs back
// through the key-frame extractor's Recycle hook as soon as selection
// drops them, and key frames hand theirs back once feature extraction
// finishes. In steady state the pool therefore holds roughly
// (workers + in-flight jobs) rasters and decoding allocates no raster
// memory per frame, regardless of clip length.
//
// put ignores rasters the pool did not create (frames that were already
// analysis-sized are passed through untouched and owned by the decoder),
// so callers can recycle unconditionally.
type rasterPool struct {
	mu     sync.Mutex
	free   []*imaging.Image
	owned  map[*imaging.Image]struct{}
	allocs atomic.Int64 // rasters ever created; test observability
}

func newRasterPool() *rasterPool {
	return &rasterPool{owned: make(map[*imaging.Image]struct{})}
}

// get returns a pool-owned analysis-sized raster, reusing a free one when
// possible. The contents are unspecified; callers overwrite every pixel
// (RescaleInto does).
func (p *rasterPool) get() *imaging.Image {
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		im := p.free[n-1]
		p.free = p.free[:n-1]
		p.mu.Unlock()
		return im
	}
	im := imaging.New(features.AnalysisSize, features.AnalysisSize)
	p.owned[im] = struct{}{}
	p.mu.Unlock()
	p.allocs.Add(1)
	return im
}

// put returns a raster to the pool. Rasters not created by get (nil, or a
// caller-owned frame that happened to be analysis-sized) are ignored.
func (p *rasterPool) put(im *imaging.Image) {
	if im == nil {
		return
	}
	p.mu.Lock()
	if _, ok := p.owned[im]; ok {
		p.free = append(p.free, im)
	}
	p.mu.Unlock()
}
