package core

import (
	"errors"
	"sync"
	"syscall"
	"testing"

	"cbvr/internal/cvj"
	"cbvr/internal/synthvid"
	"cbvr/internal/vstore"
	"cbvr/internal/vstore/faultfs"
)

// TestIngestENOSPCMidStagedWrite hits one of two concurrent ingests with
// ENOSPC in the middle of its staged blob spool. Staging runs off-txn, so
// the contract is: the victim fails with ENOSPC and discards cleanly, the
// other ingest commits untouched, no orphan video registration survives,
// the store is NOT degraded, and a reopen passes fsck.
func TestIngestENOSPCMidStagedWrite(t *testing.T) {
	ffs := faultfs.New()
	eng, err := Open("ingest.db", Options{Store: vstore.Options{FS: ffs}})
	if err != nil {
		t.Fatal(err)
	}

	containers := make([][]byte, 2)
	for i := range containers {
		v := genVideo(synthvid.Category(i), int64(70+i))
		raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
		if err != nil {
			t.Fatal(err)
		}
		containers[i] = raw
	}

	// Arm: the next direct write to the data file is a staged page (commits
	// go through the WAL file, and the default cache is big enough that no
	// eviction writes pages mid-ingest), so it draws ENOSPC.
	fired := false
	ffs.SetInjector(func(op faultfs.Op) faultfs.Action {
		if !fired && op.Kind == faultfs.OpWrite && op.Name == "ingest.db" {
			fired = true
			return faultfs.ActENOSPC
		}
		return faultfs.ActNone
	})

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = eng.IngestVideo("clip", containers[i])
		}(i)
	}
	wg.Wait()
	ffs.SetInjector(nil)

	var failed, succeeded int
	for i, err := range errs {
		switch {
		case err == nil:
			succeeded++
		case errors.Is(err, syscall.ENOSPC):
			failed++
		default:
			t.Fatalf("ingest %d failed with %v, want nil or ENOSPC", i, err)
		}
	}
	if failed != 1 || succeeded != 1 {
		t.Fatalf("failed=%d succeeded=%d, want exactly one of each", failed, succeeded)
	}

	// Staging is off-transaction: a full disk there must not poison the DB.
	if err := eng.Degraded(); err != nil {
		t.Fatalf("store degraded after staged ENOSPC: %v", err)
	}

	// Only the successful ingest is registered — the victim's discard left
	// no orphan video row pointing at lost pages.
	vids, err := eng.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 1 {
		t.Fatalf("%d videos registered, want 1 (no orphans)", len(vids))
	}

	// The store stayed fully writable.
	if _, err := eng.IngestVideo("after", containers[0]); err != nil {
		t.Fatalf("ingest after staged ENOSPC: %v", err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen over the surviving bytes: recovery and fsck must both pass.
	db, err := vstore.Open("ingest.db", &vstore.Options{FS: ffs})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer db.Close()
	rep, err := vstore.Check(db)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("fsck after staged ENOSPC: %v", rep.Problems)
	}
}
