package core

import (
	"context"
	"errors"
	"math"
	"testing"

	"cbvr/internal/features"
	"cbvr/internal/synthvid"
)

// brownoutCorpus is sized so the fused probe budget has real headroom
// above MinProbeRows: 1000 frames over 2 shards with ProbeFraction 0.25
// gives a level-0 budget of 125 rows against a floor of 16.
var brownoutCfg = synthvid.ClusterCorpusConfig{Frames: 1000, Seed: 3}

func brownoutCells() CellOptions {
	return CellOptions{MinShardRows: 1, TargetCellSize: 8, MinProbeRows: 16, ProbeFraction: 0.25, RebuildFraction: 0.25}
}

// TestBrownoutZeroIsInert pins the exactness contract: a search at level 0
// — including after the level was raised and then cleared — is
// bit-identical in results AND in work counters to one on an engine that
// never browned out, for both the fused and the (never-browned)
// single-kind paths.
func TestBrownoutZeroIsInert(t *testing.T) {
	eng := openCellEngine(t, Options{SearchShards: 2, Cells: brownoutCells()})
	loadClusterFrames(t, eng, brownoutCfg)
	q := synthvid.ClusterQueries(brownoutCfg, 1)[0]
	opt := SearchOptions{K: 10, NoPruning: true}

	base, baseStats, err := eng.SearchWithSetStats(q.Set, q.Bucket, opt)
	if err != nil {
		t.Fatal(err)
	}
	if baseStats.Brownout != 0 {
		t.Fatalf("fresh engine reports brownout %v", baseStats.Brownout)
	}

	eng.SetBrownout(0.8)
	browned, brownedStats, err := eng.SearchWithSetStats(q.Set, q.Bucket, opt)
	if err != nil {
		t.Fatal(err)
	}
	if brownedStats.Brownout != 0.8 {
		t.Fatalf("browned search recorded level %v, want 0.8", brownedStats.Brownout)
	}
	if brownedStats.RowEvals >= baseStats.RowEvals {
		t.Fatalf("brownout 0.8 did not shrink work: %d >= %d row evals", brownedStats.RowEvals, baseStats.RowEvals)
	}
	_ = browned

	// Load clears: level back to 0 must restore the exact pre-brownout
	// behaviour, not an approximation of it.
	eng.SetBrownout(0)
	after, afterStats, err := eng.SearchWithSetStats(q.Set, q.Bucket, opt)
	if err != nil {
		t.Fatal(err)
	}
	if afterStats.RowEvals != baseStats.RowEvals || afterStats.CellEvals != baseStats.CellEvals {
		t.Fatalf("work counters differ after brownout cleared: %+v vs %+v", afterStats, baseStats)
	}
	if len(after) != len(base) {
		t.Fatalf("result count differs after brownout cleared: %d vs %d", len(after), len(base))
	}
	for i := range after {
		if after[i] != base[i] {
			t.Fatalf("result %d differs after brownout cleared: %+v vs %+v", i, after[i], base[i])
		}
	}

	// Single-kind searches ride the exact bound-ordered sweep and must be
	// bit-identical to the reference even at maximum brownout.
	eng.SetBrownout(1)
	for _, kind := range []features.Kind{features.AllKinds()[0], features.AllKinds()[3]} {
		sopt := SearchOptions{K: 7, Kinds: []features.Kind{kind}, NoPruning: true}
		want, err := eng.SearchWithSetReference(q.Set, q.Bucket, sopt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.SearchWithSet(q.Set, q.Bucket, sopt)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("kind %v: %d results, want %d", kind, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("kind %v result %d differs at max brownout: %+v vs %+v", kind, i, got[i], want[i])
			}
		}
	}
}

// TestBrownoutBudgetFloor pins the shrink target: at level 1 the fused
// probe budget IS MinProbeRows — a max-browned engine does exactly the
// same work, and returns exactly the same ranking, as one configured with
// a probe fraction so small that MinProbeRows is its whole budget.
func TestBrownoutBudgetFloor(t *testing.T) {
	browned := openCellEngine(t, Options{SearchShards: 2, Cells: brownoutCells()})
	loadClusterFrames(t, browned, brownoutCfg)
	browned.SetBrownout(1)

	floorCells := brownoutCells()
	floorCells.ProbeFraction = 1e-6 // budget = max(MinProbeRows, ~0) = MinProbeRows
	floor := openCellEngine(t, Options{SearchShards: 2, Cells: floorCells})
	loadClusterFrames(t, floor, brownoutCfg)

	var prevEvals int64 = -1
	for qi, q := range synthvid.ClusterQueries(brownoutCfg, 3) {
		opt := SearchOptions{K: 10, NoPruning: true}
		got, gotStats, err := browned.SearchWithSetStats(q.Set, q.Bucket, opt)
		if err != nil {
			t.Fatal(err)
		}
		want, wantStats, err := floor.SearchWithSetStats(q.Set, q.Bucket, opt)
		if err != nil {
			t.Fatal(err)
		}
		if gotStats.RowEvals != wantStats.RowEvals {
			t.Fatalf("query %d: max brownout paid %d row evals, MinProbeRows config paid %d — floors diverge",
				qi, gotStats.RowEvals, wantStats.RowEvals)
		}
		if gotStats.PrunedShards == 0 {
			t.Fatalf("query %d: max-browned search did not take the pruned path", qi)
		}
		if len(got) != len(want) {
			t.Fatalf("query %d: %d results, want %d", qi, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", qi, i, got[i], want[i])
			}
		}
		prevEvals = gotStats.RowEvals
	}
	_ = prevEvals
}

// TestBrownoutMonotoneShrink checks the budget shrink is monotone in the
// level: more pressure never does more work.
func TestBrownoutMonotoneShrink(t *testing.T) {
	eng := openCellEngine(t, Options{SearchShards: 2, Cells: brownoutCells()})
	loadClusterFrames(t, eng, brownoutCfg)
	q := synthvid.ClusterQueries(brownoutCfg, 1)[0]
	opt := SearchOptions{K: 10, NoPruning: true}
	var prev int64 = math.MaxInt64
	for _, lvl := range []float64{0, 0.25, 0.5, 0.75, 1} {
		eng.SetBrownout(lvl)
		_, stats, err := eng.SearchWithSetStats(q.Set, q.Bucket, opt)
		if err != nil {
			t.Fatal(err)
		}
		if stats.RowEvals > prev {
			t.Fatalf("level %v paid %d row evals, more than the previous level's %d", lvl, stats.RowEvals, prev)
		}
		prev = stats.RowEvals
	}
}

// TestBrownoutRefusesFullRank checks K<=0 searches — frame rankings and
// video DTW sweeps — are refused with ErrOverloaded at or above the
// refusal level and served again below it.
func TestBrownoutRefusesFullRank(t *testing.T) {
	eng := openCellEngine(t, Options{SearchShards: 2, Cells: brownoutCells()})
	frames := loadClusterFrames(t, eng, synthvid.ClusterCorpusConfig{Frames: 64, Seed: 5})
	q := synthvid.ClusterQueries(synthvid.ClusterCorpusConfig{Frames: 64, Seed: 5}, 1)[0]

	eng.SetBrownout(BrownoutRefuseFullRank)
	if _, err := eng.SearchWithSet(q.Set, q.Bucket, SearchOptions{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("K=0 frame search at refusal level: %v, want ErrOverloaded", err)
	}
	qsets := []*features.Set{frames[0].Set}
	if _, err := eng.searchVideoSets(context.Background(), qsets, SearchOptions{}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("K=0 video search at refusal level: %v, want ErrOverloaded", err)
	}
	// Bounded searches still serve at the same level.
	if _, err := eng.SearchWithSet(q.Set, q.Bucket, SearchOptions{K: 5}); err != nil {
		t.Fatalf("bounded search at refusal level: %v", err)
	}
	if _, err := eng.searchVideoSets(context.Background(), qsets, SearchOptions{K: 2}); err != nil {
		t.Fatalf("bounded video search at refusal level: %v", err)
	}
	// Below the refusal level the full ranking is served again.
	eng.SetBrownout(BrownoutRefuseFullRank / 2)
	if _, err := eng.SearchWithSet(q.Set, q.Bucket, SearchOptions{}); err != nil {
		t.Fatalf("K=0 search below refusal level: %v", err)
	}
}

// TestSetBrownoutClamps pins the level sanitation: out-of-range and NaN
// inputs must fail open (0) or saturate (1), never poison the budget math.
func TestSetBrownoutClamps(t *testing.T) {
	eng := openCellEngine(t, Options{SearchShards: 1})
	for _, tc := range []struct{ in, want float64 }{
		{-3, 0}, {0, 0}, {0.4, 0.4}, {2, 1}, {math.NaN(), 0},
	} {
		eng.SetBrownout(tc.in)
		if got := eng.BrownoutLevel(); got != tc.want {
			t.Fatalf("SetBrownout(%v) → level %v, want %v", tc.in, got, tc.want)
		}
	}
}
