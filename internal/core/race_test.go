package core

import (
	"context"
	"sync"
	"testing"

	"cbvr/internal/features"
	"cbvr/internal/synthvid"
)

// TestConcurrentSearchIngestDelete hammers one engine from several
// goroutines — frame searches, video searches, ingests and deletes — to
// pin down Engine.mu and shard-local state safety. Run it under the race
// detector (`go test -race ./internal/core/...`); the assertions here are
// deliberately weak (no panics, no errors, sane results) because the
// interesting failures are data races and torn shard state.
func TestConcurrentSearchIngestDelete(t *testing.T) {
	eng := openTestEngine(t)

	// Seed corpus that is never deleted, so searches always have data.
	seed := ingest(t, eng, "seed_sports", synthvid.Sports, 400)
	ingest(t, eng, "seed_news", synthvid.News, 401)
	ingest(t, eng, "seed_cartoon", synthvid.Cartoon, 402)

	// Pre-extract query descriptors so searcher goroutines spend their
	// time inside the scoring pipeline, not in feature extraction.
	sv := genVideo(synthvid.Sports, 400)
	qset := eng.ExtractQuerySets(sv.Frames[:1])[0]
	qbucket := QueryBucket(sv.Frames[0])
	clipSets := eng.ExtractQuerySets(sv.Frames[:3])

	const (
		searchers  = 4
		searchIter = 30
		churnIter  = 6
	)
	small := func(seedN int64) *synthvid.Video {
		return synthvid.Generate(synthvid.Movie, synthvid.Config{
			Width: 48, Height: 36, Frames: 4, Shots: 2, Seed: seedN,
		})
	}

	var wg sync.WaitGroup
	errCh := make(chan error, searchers+2)

	// Frame searchers: alternate fusion modes, pruning, worker counts.
	for s := 0; s < searchers; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < searchIter; i++ {
				opt := SearchOptions{
					K:         5,
					Fusion:    Fusion(i % 2),
					NoPruning: i%3 == 0,
					Workers:   s % 3, // 0 (default), 1 (serial), 2
				}
				m, err := eng.SearchWithSet(qset, qbucket, opt)
				if err != nil {
					errCh <- err
					return
				}
				if len(m) == 0 {
					errCh <- errNoMatches
					return
				}
			}
		}(s)
	}

	// Video-level searcher: best-single-frame ablation path (cheap) plus
	// the DTW path every few iterations.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < searchIter/2; i++ {
			if _, err := eng.BestSingleFrameVideoSearch(clipSets, SearchOptions{K: 3}); err != nil {
				errCh <- err
				return
			}
			if i%5 == 0 {
				if _, err := eng.searchVideoSets(context.Background(), clipSets, SearchOptions{K: 3}); err != nil {
					errCh <- err
					return
				}
			}
		}
	}()

	// Churner: ingest small clips and delete them again, interleaved with
	// the searches above.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < churnIter; i++ {
			v := small(int64(500 + i))
			res, err := eng.IngestFrames(v.Name, v.Frames, v.FPS)
			if err != nil {
				errCh <- err
				return
			}
			if err := eng.DeleteVideo(res.VideoID); err != nil {
				errCh <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// The seed corpus must have survived the churn intact.
	m, err := eng.SearchWithSet(qset, qbucket, SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[0].VideoID != seed.VideoID {
		t.Fatalf("post-churn top match %+v, want video %d", m, seed.VideoID)
	}
	n, err := eng.CacheSize()
	if err != nil {
		t.Fatal(err)
	}
	if eng.index.Len() != n {
		t.Fatalf("range index holds %d ids, cache %d", eng.index.Len(), n)
	}
}

// errNoMatches distinguishes the "search returned nothing while the seed
// corpus exists" failure inside racing goroutines.
var errNoMatches = errNoMatchesT{}

type errNoMatchesT struct{}

func (errNoMatchesT) Error() string { return "core: search returned no matches for seeded corpus" }

// TestConcurrentWarmup opens a second engine over an already-populated
// database and lets many goroutines race the lazy warmCache.
func TestConcurrentWarmup(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/warm.db"
	eng, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := genVideo(synthvid.Nature, 410)
	if _, err := eng.IngestFrames("warm", v.Frames, v.FPS); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(path, Options{SearchShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	qset := eng2.ExtractQuerySets(v.Frames[:1])[0]
	qbucket := QueryBucket(v.Frames[0])

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m, err := eng2.SearchWithSet(qset, qbucket, SearchOptions{K: 1, NoPruning: true})
			if err != nil {
				errCh <- err
				return
			}
			if len(m) != 1 {
				errCh <- errNoMatches
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	var kinds []features.Kind // nil: all kinds, exercise full warm cache
	if _, err := eng2.SearchWithSet(qset, qbucket, SearchOptions{Kinds: kinds}); err != nil {
		t.Fatal(err)
	}
}
