package core

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"

	"cbvr/internal/catalog"
	"cbvr/internal/cvj"
	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"
)

// testContainer encodes a deterministic synthetic clip as CVJ bytes.
func testContainer(t *testing.T, cat synthvid.Category, seed int64, frames int) ([]byte, *synthvid.Video) {
	t.Helper()
	v := synthvid.Generate(cat, synthvid.Config{
		Width: 96, Height: 72, Frames: frames, Shots: 3, Seed: seed,
	})
	raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	return raw, v
}

// loadRows fetches a video's stored blobs and key-frame rows (with image
// bytes materialised) for byte-level comparison.
type storedVideo struct {
	video  []byte
	stream []byte
	rows   []*catalog.KeyFrame
	images [][]byte
}

func loadStored(t *testing.T, eng *Engine, videoID int64) *storedVideo {
	t.Helper()
	video, ok, err := eng.Store().VideoBytes(nil, videoID)
	if err != nil || !ok {
		t.Fatalf("video blob: ok=%v err=%v", ok, err)
	}
	stream, ok, err := eng.Store().StreamBytes(nil, videoID)
	if err != nil || !ok {
		t.Fatalf("stream blob: ok=%v err=%v", ok, err)
	}
	rows, err := eng.Store().KeyFramesOfVideo(nil, videoID)
	if err != nil {
		t.Fatal(err)
	}
	sv := &storedVideo{video: video, stream: stream, rows: rows}
	for _, r := range rows {
		img, ok, err := eng.Store().KeyFrameImage(nil, r.ID)
		if err != nil || !ok {
			t.Fatalf("key frame %d image: ok=%v err=%v", r.ID, ok, err)
		}
		sv.images = append(sv.images, img)
	}
	return sv
}

// TestStreamedIngestBitIdenticalRows is the headline equivalence: the
// streamed pipeline (reader entry point), the buffered wrapper and the
// retained in-memory reference must produce bit-identical stored rows —
// VIDEO and STREAM blobs, every feature column, bucket, name, frame index
// and IMAGE bytes.
func TestStreamedIngestBitIdenticalRows(t *testing.T) {
	raw, _ := testContainer(t, synthvid.Sports, 31, 18)

	type path struct {
		name   string
		ingest func(*Engine) (*IngestResult, error)
	}
	paths := []path{
		{"stream", func(e *Engine) (*IngestResult, error) {
			return e.IngestVideoStream("clip", bytes.NewReader(raw))
		}},
		{"buffered", func(e *Engine) (*IngestResult, error) {
			return e.IngestVideo("clip", raw)
		}},
		{"reference", func(e *Engine) (*IngestResult, error) {
			return e.IngestVideoReference("clip", raw)
		}},
	}
	var first *storedVideo
	var firstRes *IngestResult
	for _, p := range paths {
		eng := openTestEngine(t)
		res, err := p.ingest(eng)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		sv := loadStored(t, eng, res.VideoID)
		if first == nil {
			first, firstRes = sv, res
			if len(sv.rows) < 2 {
				t.Fatalf("degenerate fixture: %d key frames", len(sv.rows))
			}
			continue
		}
		if res.NumFrames != firstRes.NumFrames || len(res.KeyFrameIDs) != len(firstRes.KeyFrameIDs) {
			t.Fatalf("%s: result %+v, want %+v", p.name, res, firstRes)
		}
		if !bytes.Equal(sv.video, first.video) {
			t.Errorf("%s: VIDEO blob differs", p.name)
		}
		if !bytes.Equal(sv.stream, first.stream) {
			t.Errorf("%s: STREAM blob differs", p.name)
		}
		if len(sv.rows) != len(first.rows) {
			t.Fatalf("%s: %d rows, want %d", p.name, len(sv.rows), len(first.rows))
		}
		for i, r := range sv.rows {
			w := first.rows[i]
			if r.Name != w.Name || r.FrameIndex != w.FrameIndex ||
				r.Min != w.Min || r.Max != w.Max || r.MajorRegions != w.MajorRegions ||
				r.SCH != w.SCH || r.GLCM != w.GLCM || r.Gabor != w.Gabor ||
				r.Tamura != w.Tamura || r.ACC != w.ACC || r.Naive != w.Naive ||
				r.Regions != w.Regions {
				t.Errorf("%s: key frame %d row differs from %s", p.name, i, paths[0].name)
			}
			if !bytes.Equal(sv.images[i], first.images[i]) {
				t.Errorf("%s: key frame %d IMAGE bytes differ", p.name, i)
			}
		}
	}
}

// TestIngestStoresOriginalJPEGBytes pins the generation-loss fix: stored
// key-frame IMAGE rows and the STREAM records are the container's original
// frame bytes, not a decode→re-encode of them.
func TestIngestStoresOriginalJPEGBytes(t *testing.T) {
	raw, _ := testContainer(t, synthvid.Cartoon, 32, 16)

	// Collect the container's records by frame index.
	cr, err := cvj.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var records [][]byte
	for {
		f, err := cr.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		records = append(records, f.JPEG)
	}

	eng := openTestEngine(t)
	res, err := eng.IngestVideoStream("clip", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	sv := loadStored(t, eng, res.VideoID)
	if !bytes.Equal(sv.video, raw) {
		t.Error("re-assembled VIDEO blob differs from the source container")
	}
	var kfRecords [][]byte
	for i, r := range sv.rows {
		if !bytes.Equal(sv.images[i], records[r.FrameIndex]) {
			t.Errorf("key frame %d IMAGE is not the container's original record", i)
		}
		kfRecords = append(kfRecords, records[r.FrameIndex])
	}
	// STREAM must be those records re-framed, byte for byte.
	wantStream, err := cvj.EncodeRawBytes(kfRecords, cr.FPS())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sv.stream, wantStream) {
		t.Error("STREAM blob is not assembled from the original records")
	}
}

// TestIngestTruncatedContainerFailsCleanly cuts a container at a frame
// boundary: ingest must fail with an error wrapping io.ErrUnexpectedEOF
// (not read as clean end-of-stream), commit nothing, and leave the engine
// fully usable.
func TestIngestTruncatedContainerFailsCleanly(t *testing.T) {
	raw, v := testContainer(t, synthvid.News, 33, 12)
	eng := openTestEngine(t)
	for _, cut := range []int{len(raw) - 6, len(raw) / 2, 30} {
		_, err := eng.IngestVideoStream("trunc", bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("cut %d: truncated container accepted", cut)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Errorf("cut %d: error %v does not wrap io.ErrUnexpectedEOF", cut, err)
		}
	}
	if n, _ := eng.Store().CountVideos(nil); n != 0 {
		t.Fatalf("%d videos committed from truncated containers", n)
	}
	if n, _ := eng.Store().CountKeyFrames(nil); n != 0 {
		t.Fatalf("%d key frames committed from truncated containers", n)
	}
	// The engine still ingests and searches normally afterwards.
	res, err := eng.IngestVideo("ok", raw)
	if err != nil {
		t.Fatal(err)
	}
	m, err := eng.SearchFrame(v.Frames[0], SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[0].VideoID != res.VideoID {
		t.Fatalf("post-failure search: %+v", m)
	}
}

// TestIngestCorruptMidStreamDeterministic corrupts a frame record in the
// middle of the container — after earlier key frames have already been
// selected and extracted. The failure must be deterministic (same error,
// naming the first corrupt frame in stream order, on every attempt) and
// must leave no partial rows behind.
func TestIngestCorruptMidStreamDeterministic(t *testing.T) {
	raw, _ := testContainer(t, synthvid.Movie, 34, 14)

	// Walk the records to find the payload offset of a mid-stream frame,
	// then smash its JPEG SOI marker.
	const target = 9
	off := 8 // magic + header
	for i := 0; i < target; i++ {
		n := binary.BigEndian.Uint32(raw[off : off+4])
		off += 4 + int(n)
	}
	corrupt := bytes.Clone(raw)
	corrupt[off+4], corrupt[off+5] = 0x00, 0x00

	eng := openTestEngine(t)
	var msgs []string
	for attempt := 0; attempt < 2; attempt++ {
		_, err := eng.IngestVideoStream("corrupt", bytes.NewReader(corrupt))
		if err == nil {
			t.Fatal("corrupt container accepted")
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error not deterministic:\n%s\n%s", msgs[0], msgs[1])
	}
	if !strings.Contains(msgs[0], fmt.Sprintf("frame %d", target)) {
		t.Errorf("error does not name frame %d: %s", target, msgs[0])
	}
	if n, _ := eng.Store().CountVideos(nil); n != 0 {
		t.Fatalf("%d videos committed from corrupt container", n)
	}
	if n, _ := eng.Store().CountKeyFrames(nil); n != 0 {
		t.Fatalf("%d key frames committed from corrupt container", n)
	}
}

// TestIngestFramesMidBatchEncodeFailure plants an unencodable frame in the
// middle of a batch: IngestFrames must fail deterministically, naming the
// first bad frame, with nothing committed and the engine unharmed.
func TestIngestFramesMidBatchEncodeFailure(t *testing.T) {
	eng := openTestEngine(t)
	v := genVideo(synthvid.Sports, 35)
	bad := make([]*imaging.Image, 0, len(v.Frames)+1)
	bad = append(bad, v.Frames[:3]...)
	bad = append(bad, &imaging.Image{}) // 0×0: EncodeJPEG rejects it
	bad = append(bad, v.Frames[3:]...)

	var msgs []string
	for attempt := 0; attempt < 2; attempt++ {
		_, err := eng.IngestFrames("bad", bad, v.FPS)
		if err == nil {
			t.Fatal("unencodable frame accepted")
		}
		msgs = append(msgs, err.Error())
	}
	if msgs[0] != msgs[1] {
		t.Errorf("error not deterministic:\n%s\n%s", msgs[0], msgs[1])
	}
	if !strings.Contains(msgs[0], "frame 3") {
		t.Errorf("error does not name frame 3: %s", msgs[0])
	}
	if n, _ := eng.Store().CountVideos(nil); n != 0 {
		t.Fatalf("%d videos committed after encode failure", n)
	}
	if _, err := eng.IngestFrames("good", v.Frames, v.FPS); err != nil {
		t.Fatalf("engine unusable after encode failure: %v", err)
	}
}

// TestConcurrentStreamIngestSearchChurn runs reader-based ingests
// concurrently with searches and deletes under the race detector,
// mirroring race_test.go's churn for the streamed path (pooled planes,
// shared extraction workers).
func TestConcurrentStreamIngestSearchChurn(t *testing.T) {
	eng := openTestEngine(t)
	seed := ingest(t, eng, "seed", synthvid.Sports, 440)
	sv := genVideo(synthvid.Sports, 440)
	qset := eng.ExtractQuerySets(sv.Frames[:1])[0]
	qbucket := QueryBucket(sv.Frames[0])

	small := func(seedN int64) []byte {
		v := synthvid.Generate(synthvid.Movie, synthvid.Config{
			Width: 48, Height: 36, Frames: 6, Shots: 2, Seed: seedN,
		})
		raw, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}
	containers := make([][]byte, 4)
	for i := range containers {
		containers[i] = small(int64(600 + i))
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				m, err := eng.SearchWithSet(qset, qbucket, SearchOptions{K: 3, NoPruning: i%2 == 0})
				if err != nil {
					errCh <- err
					return
				}
				if len(m) == 0 {
					errCh <- errNoMatches
					return
				}
			}
		}(s)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				c := containers[(g*4+i)%len(containers)]
				res, err := eng.IngestVideoStream(fmt.Sprintf("churn_%d_%d", g, i), bytes.NewReader(c))
				if err != nil {
					errCh <- err
					return
				}
				if err := eng.DeleteVideo(res.VideoID); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	m, err := eng.SearchWithSet(qset, qbucket, SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(m) != 1 || m[0].VideoID != seed.VideoID {
		t.Fatalf("post-churn top match %+v, want video %d", m, seed.VideoID)
	}
}

// TestIngestEmptyContainer preserves the pre-streaming behaviour: a
// well-formed container with zero frames ingests to a video row with no
// key frames through both entry points.
func TestIngestEmptyContainer(t *testing.T) {
	raw, err := cvj.EncodeBytes(nil, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := openTestEngine(t)
	for i, ing := range []func() (*IngestResult, error){
		func() (*IngestResult, error) { return eng.IngestVideo("empty_buf", raw) },
		func() (*IngestResult, error) { return eng.IngestVideoStream("empty_stream", bytes.NewReader(raw)) },
	} {
		res, err := ing()
		if err != nil {
			t.Fatalf("path %d: %v", i, err)
		}
		if res.NumFrames != 0 || len(res.KeyFrameIDs) != 0 {
			t.Fatalf("path %d: %+v", i, res)
		}
	}
}
