package core

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"slices"
	"sync"
	"sync/atomic"
	"testing"

	"cbvr/internal/features"
	"cbvr/internal/rangeindex"
	"cbvr/internal/synthvid"
)

// forcedCells drops every activation floor so cell pruning engages on the
// small corpora unit tests can afford: tiny shards build cells, tiny
// budgets force real probing, and low RebuildFraction exercises rebuilds
// under modest churn.
func forcedCells() CellOptions {
	return CellOptions{MinShardRows: 1, TargetCellSize: 8, MinProbeRows: 16, ProbeFraction: 0.07, RebuildFraction: 0.25}
}

func openCellEngine(t *testing.T, opts Options) *Engine {
	t.Helper()
	eng, err := Open(filepath.Join(t.TempDir(), "cells.db"), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// loadClusterFrames publishes the first n frames of the cluster corpus
// into the engine and returns them.
func loadClusterFrames(t *testing.T, eng *Engine, cfg synthvid.ClusterCorpusConfig) []SyntheticFrame {
	t.Helper()
	var frames []SyntheticFrame
	err := synthvid.StreamClusterCorpus(cfg, func(f *synthvid.DescriptorFrame) error {
		frames = append(frames, SyntheticFrame{
			ID: f.ID, VideoID: f.VideoID, VideoName: f.VideoName,
			FrameIndex: f.FrameIndex, Bucket: f.Bucket, Set: f.Set,
		})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.PublishSyntheticFrames(frames); err != nil {
		t.Fatal(err)
	}
	return frames
}

// checkCellSingleKindIdentity asserts the cell-pruned single-kind path is
// bit-identical to the naive reference for every kind at several K — the
// tentpole's exactness claim. It also verifies the pruned path actually
// engaged (stats show pruned shards), so the equivalence isn't vacuously
// tested through the exact fallback.
func checkCellSingleKindIdentity(t *testing.T, eng *Engine, qset *features.Set, qbucket rangeindex.Range, label string, wantPruned bool) {
	t.Helper()
	prunedSeen := false
	for _, kind := range features.AllKinds() {
		for _, k := range []int{1, 7, 10} {
			opt := SearchOptions{K: k, Kinds: []features.Kind{kind}}
			want, err := eng.SearchWithSetReference(qset, qbucket, opt)
			if err != nil {
				t.Fatal(err)
			}
			got, stats, err := eng.SearchWithSetStats(qset, qbucket, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, fmt.Sprintf("%s kind=%d k=%d", label, kind, k), got, want)
			if stats.PrunedShards > 0 {
				prunedSeen = true
			}
		}
	}
	if wantPruned && !prunedSeen {
		t.Fatalf("%s: no single-kind search took the pruned path", label)
	}
}

// TestCellSingleKindBitIdentity forces cell pruning on a clustered corpus
// and requires the bound-ordered sweep to reproduce the reference ranking
// bit for bit across all seven kinds.
func TestCellSingleKindBitIdentity(t *testing.T) {
	eng := openCellEngine(t, Options{SearchShards: 3, Cells: forcedCells()})
	cfg := synthvid.ClusterCorpusConfig{Frames: 900, Clusters: 12, Seed: 11}
	loadClusterFrames(t, eng, cfg)
	for qi, q := range synthvid.ClusterQueries(cfg, 4) {
		checkCellSingleKindIdentity(t, eng, q.Set, q.Bucket, fmt.Sprintf("query %d", qi), true)
	}
	st, err := eng.CellStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BuiltShards != 3 || st.Cells == 0 || st.IndexedRows != 900 {
		t.Fatalf("cell stats %+v: want 3 built shards indexing 900 rows", st)
	}
}

// TestCellFusedProbeBudget pins the fused probe's work contract: it pays
// at most the budget per shard (plus centroid bounds), never returns an
// error, and its candidates are a strict subset of the exact arm's work.
func TestCellFusedProbeBudget(t *testing.T) {
	eng := openCellEngine(t, Options{SearchShards: 3, Cells: forcedCells()})
	cfg := synthvid.ClusterCorpusConfig{Frames: 900, Clusters: 12, Seed: 13}
	loadClusterFrames(t, eng, cfg)

	q := synthvid.ClusterQueries(cfg, 1)[0]
	got, stats, err := eng.SearchWithSetStats(q.Set, q.Bucket, SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("fused pruned search returned %d matches, want 10", len(got))
	}
	if stats.PrunedShards == 0 {
		t.Fatal("fused search never took the pruned path")
	}
	if stats.RowEvals >= stats.ExactEvals() {
		t.Fatalf("probe paid %d row evals, exact sweep costs %d", stats.RowEvals, stats.ExactEvals())
	}
	if stats.CellEvals == 0 {
		t.Fatal("pruned path reported no centroid bound evaluations")
	}
	// Budget accounting: per pruned shard the probe scores at most
	// max(MinProbeRows, ProbeFraction*n0, K) rows (the gather truncates
	// at the budget exactly).
	perShard := stats.BaseRows // upper bound on any one shard's n0
	budget := int64(16)
	if f := int64(float64(perShard) * 0.07); f > budget {
		budget = f
	}
	if maxRows := budget * int64(stats.PrunedShards); stats.RowEvals > maxRows*int64(stats.Kinds) {
		t.Fatalf("row evals %d exceed budget bound %d", stats.RowEvals, maxRows*int64(stats.Kinds))
	}

	// The exact arm of the same query must report zero pruned shards and
	// full base-row work.
	_, ex, err := eng.SearchWithSetStats(q.Set, q.Bucket, SearchOptions{K: 10, NoCellPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	if ex.PrunedShards != 0 {
		t.Fatalf("NoCellPruning arm still pruned %d shards", ex.PrunedShards)
	}
	if ex.RowEvals != ex.ExactEvals() {
		t.Fatalf("exact arm paid %d row evals, want %d", ex.RowEvals, ex.ExactEvals())
	}
}

// TestCellExactFallbacks pins every condition that must route a search to
// the exact sweep: corpora under the shard floor, K covering the shard,
// per-call and per-engine opt-outs, and queries over kinds the corpus
// largely lacks (degenerate feature mixes stay bit-identical).
func TestCellExactFallbacks(t *testing.T) {
	t.Run("below_min_shard_rows", func(t *testing.T) {
		// Default options: MinShardRows=512 with 90 rows over 3 shards —
		// every search must take the exact path and remain bit-identical.
		eng := openCellEngine(t, Options{SearchShards: 3})
		cfg := synthvid.ClusterCorpusConfig{Frames: 90, Clusters: 6, Seed: 17}
		loadClusterFrames(t, eng, cfg)
		q := synthvid.ClusterQueries(cfg, 1)[0]
		_, stats, err := eng.SearchWithSetStats(q.Set, q.Bucket, SearchOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if stats.PrunedShards != 0 {
			t.Fatalf("tiny corpus pruned %d shards, want exact fallback", stats.PrunedShards)
		}
		checkCellSingleKindIdentity(t, eng, q.Set, q.Bucket, "tiny corpus", false)
	})

	t.Run("k_covers_shard", func(t *testing.T) {
		eng := openCellEngine(t, Options{SearchShards: 2, Cells: forcedCells()})
		cfg := synthvid.ClusterCorpusConfig{Frames: 120, Clusters: 4, Seed: 19}
		loadClusterFrames(t, eng, cfg)
		q := synthvid.ClusterQueries(cfg, 1)[0]
		opt := SearchOptions{K: 500, Kinds: []features.Kind{features.KindNaive}}
		_, stats, err := eng.SearchWithSetStats(q.Set, q.Bucket, opt)
		if err != nil {
			t.Fatal(err)
		}
		if stats.PrunedShards != 0 {
			t.Fatalf("K >= shard rows still pruned %d shards", stats.PrunedShards)
		}
	})

	t.Run("opt_outs", func(t *testing.T) {
		eng := openCellEngine(t, Options{SearchShards: 2, Cells: forcedCells()})
		cfg := synthvid.ClusterCorpusConfig{Frames: 400, Clusters: 6, Seed: 23}
		loadClusterFrames(t, eng, cfg)
		q := synthvid.ClusterQueries(cfg, 1)[0]
		_, on, err := eng.SearchWithSetStats(q.Set, q.Bucket, SearchOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if on.PrunedShards == 0 {
			t.Fatal("pruning did not engage with forced cells")
		}
		_, off, err := eng.SearchWithSetStats(q.Set, q.Bucket, SearchOptions{K: 5, NoCellPruning: true})
		if err != nil {
			t.Fatal(err)
		}
		if off.PrunedShards != 0 {
			t.Fatalf("NoCellPruning pruned %d shards", off.PrunedShards)
		}

		disabled := openCellEngine(t, Options{SearchShards: 2, Cells: CellOptions{Disabled: true, MinShardRows: 1}})
		loadClusterFrames(t, disabled, cfg)
		_, ds, err := disabled.SearchWithSetStats(q.Set, q.Bucket, SearchOptions{K: 5})
		if err != nil {
			t.Fatal(err)
		}
		if ds.PrunedShards != 0 {
			t.Fatalf("disabled engine pruned %d shards", ds.PrunedShards)
		}
		st, err := disabled.CellStats()
		if err != nil {
			t.Fatal(err)
		}
		if st.BuiltShards != 0 || st.Cells != 0 {
			t.Fatalf("disabled engine built cells: %+v", st)
		}
	})

	t.Run("degenerate_feature_mix", func(t *testing.T) {
		// Rows carrying only two of the seven kinds: searches over absent
		// kinds rank everything at missingDistance, searches over present
		// kinds prune normally — both bit-identical to the reference.
		eng := openCellEngine(t, Options{SearchShards: 2, Cells: forcedCells()})
		cfg := synthvid.ClusterCorpusConfig{Frames: 300, Clusters: 4, Seed: 29}
		var frames []SyntheticFrame
		synthvid.StreamClusterCorpus(cfg, func(f *synthvid.DescriptorFrame) error {
			set := &features.Set{Naive: f.Set.Naive}
			if f.ID%3 == 0 {
				set.Histogram = f.Set.Histogram
			}
			frames = append(frames, SyntheticFrame{ID: f.ID, VideoID: f.VideoID, Bucket: f.Bucket, Set: set})
			return nil
		})
		if err := eng.PublishSyntheticFrames(frames); err != nil {
			t.Fatal(err)
		}
		q := synthvid.ClusterQueries(cfg, 1)[0]
		checkCellSingleKindIdentity(t, eng, q.Set, q.Bucket, "degenerate mix", true)
	})
}

// TestCellChurnBitIdentity extends the arena churn suite to the cell
// index: bulk synthetic publishes, pixel-path ingest (slot reuse),
// reindex repack and delete swap-remove all mutate the cells, and after
// every mutation the forced-pruned single-kind path must still match the
// reference bit for bit while concurrent searchers race the readers.
// Run under -race this pins the index's locking contract.
func TestCellChurnBitIdentity(t *testing.T) {
	eng := openCellEngine(t, Options{SearchShards: 3, Cells: forcedCells()})
	cfg := synthvid.ClusterCorpusConfig{Frames: 600, Clusters: 8, Seed: 31}
	loadClusterFrames(t, eng, cfg)
	queries := synthvid.ClusterQueries(cfg, 2)

	stop := make(chan struct{})
	var searchErr atomic.Value
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			q := queries[s%len(queries)]
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				opt := SearchOptions{K: 6, Fusion: Fusion(i % 2), NoCellPruning: i%3 == 0, Workers: s}
				if i%2 == 1 {
					opt.Kinds = []features.Kind{features.Kind(i % int(features.NumKinds))}
				}
				if _, err := eng.SearchWithSet(q.Set, q.Bucket, opt); err != nil {
					searchErr.Store(err)
					return
				}
			}
		}(s)
	}

	check := func(label string) {
		t.Helper()
		for qi, q := range queries {
			checkCellSingleKindIdentity(t, eng, q.Set, q.Bucket, fmt.Sprintf("%s q%d", label, qi), true)
		}
	}

	check("initial")
	var churnIDs []int64
	for round := 0; round < 3; round++ {
		cv := synthvid.Generate(synthvid.Movie, synthvid.Config{
			Width: 48, Height: 36, Frames: 6, Shots: 2, Seed: int64(800 + round),
		})
		res, err := eng.IngestFrames(fmt.Sprintf("cell_churn_%d", round), cv.Frames, cv.FPS)
		if err != nil {
			t.Fatal(err)
		}
		churnIDs = append(churnIDs, res.VideoID)
		check(fmt.Sprintf("round %d after ingest", round))

		// A synthetic top-up big enough to trip RebuildFraction rebuilds.
		top := synthvid.ClusterCorpusConfig{Frames: 120, Clusters: 8, Seed: int64(900 + round)}
		var frames []SyntheticFrame
		synthvid.StreamClusterCorpus(top, func(f *synthvid.DescriptorFrame) error {
			frames = append(frames, SyntheticFrame{
				ID: f.ID + int64(100000*(round+1)), VideoID: f.VideoID + int64(10000*(round+1)),
				Bucket: f.Bucket, Set: f.Set,
			})
			return nil
		})
		if err := eng.PublishSyntheticFrames(frames); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("round %d after bulk publish", round))

		if _, err := eng.ReindexVideo(res.VideoID); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("round %d after reindex", round))

		if round%2 == 1 {
			if err := eng.DeleteVideo(churnIDs[round-1]); err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("round %d after delete", round))
		}
	}

	st, err := eng.CellStats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rebuilds <= st.Shards {
		t.Fatalf("churn triggered only %d rebuilds over %d shards; RebuildFraction never tripped", st.Rebuilds, st.Shards)
	}

	close(stop)
	wg.Wait()
	if err := searchErr.Load(); err != nil {
		t.Fatal(err)
	}
}

// cellSignature canonicalises a rebuilt index for comparison across
// insertion orders: per cell, the member key-frame IDs plus every kind's
// centroid and radius.
func cellSignature(t *testing.T, ar *shardArena, c *shardCells) string {
	t.Helper()
	sig := fmt.Sprintf("cells=%d\n", c.n)
	for ci := 0; ci < c.n; ci++ {
		ids := make([]int64, 0, len(c.members[ci]))
		for _, slot := range c.members[ci] {
			ids = append(ids, ar.ents[slot].id)
		}
		slices.Sort(ids)
		sig += fmt.Sprintf("cell %d members=%v\n", ci, ids)
		for _, kind := range features.AllKinds() {
			sig += fmt.Sprintf("  kind %d rad=%x cent=%x\n", kind, c.rad[kind][ci], c.centRow(kind, int32(ci)))
		}
	}
	return sig
}

// buildCellArena inserts the given frames into a fresh arena in slice
// order and rebuilds a cell index over it.
func buildCellArena(frames []SyntheticFrame) (*shardArena, *shardCells) {
	ar := newShardArena()
	for i := range frames {
		f := &frames[i]
		ar.insert(&frameEntry{id: f.ID, videoID: f.VideoID, bucket: f.Bucket, set: f.Set})
	}
	c := newShardCells(forcedCells().withDefaults())
	c.rebuild(ar)
	return ar, c
}

// TestCellRebuildDeterminism pins that a rebuild is a pure function of
// shard contents: identical entry sets produce identical cells (members,
// centroids, radii — bit for bit) regardless of insertion order or
// intervening churn.
func TestCellRebuildDeterminism(t *testing.T) {
	cfg := synthvid.ClusterCorpusConfig{Frames: 160, Clusters: 6, Seed: 37}
	var frames []SyntheticFrame
	synthvid.StreamClusterCorpus(cfg, func(f *synthvid.DescriptorFrame) error {
		frames = append(frames, SyntheticFrame{ID: f.ID, VideoID: f.VideoID, Bucket: f.Bucket, Set: f.Set})
		return nil
	})

	arA, cA := buildCellArena(frames)
	want := cellSignature(t, arA, cA)

	reversed := slices.Clone(frames)
	slices.Reverse(reversed)
	arB, cB := buildCellArena(reversed)
	if got := cellSignature(t, arB, cB); got != want {
		t.Fatalf("reversed insertion produced different cells:\n--- want\n%s--- got\n%s", want, got)
	}

	shuffled := slices.Clone(frames)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	arC, cC := buildCellArena(shuffled)
	if got := cellSignature(t, arC, cC); got != want {
		t.Fatalf("shuffled insertion produced different cells:\n--- want\n%s--- got\n%s", want, got)
	}

	// Churned arena: insert everything, remove half (swap-remove scrambles
	// slot order), reinsert the removed half (free-slot reuse), rebuild.
	// Same final contents, so the cells must match bit for bit.
	arD := newShardArena()
	ents := make([]*frameEntry, len(frames))
	for i := range frames {
		f := &frames[i]
		ents[i] = &frameEntry{id: f.ID, videoID: f.VideoID, bucket: f.Bucket, set: f.Set}
		arD.insert(ents[i])
	}
	for i := 0; i < len(ents); i += 2 {
		arD.remove(ents[i])
	}
	for i := 0; i < len(ents); i += 2 {
		arD.insert(ents[i])
	}
	cD := newShardCells(forcedCells().withDefaults())
	cD.rebuild(arD)
	if got := cellSignature(t, arD, cD); got != want {
		t.Fatalf("churned arena produced different cells:\n--- want\n%s--- got\n%s", want, got)
	}
}

// FuzzCellRebuildDeterminism drives the same invariant with fuzzed
// insertion orders and churn patterns: whatever permutation and
// delete/reinsert interleaving the bytes encode, identical final contents
// must yield identical cells.
func FuzzCellRebuildDeterminism(f *testing.F) {
	f.Add([]byte{0x01, 0x80, 0xff}, uint8(48))
	f.Add([]byte{}, uint8(9))
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02}, uint8(96))
	cfg := synthvid.ClusterCorpusConfig{Frames: 128, Clusters: 5, Seed: 41}
	var all []SyntheticFrame
	synthvid.StreamClusterCorpus(cfg, func(fr *synthvid.DescriptorFrame) error {
		all = append(all, SyntheticFrame{ID: fr.ID, VideoID: fr.VideoID, Bucket: fr.Bucket, Set: fr.Set})
		return nil
	})

	f.Fuzz(func(t *testing.T, perm []byte, nRaw uint8) {
		n := int(nRaw)%len(all) + 1
		frames := all[:n]
		arA, cA := buildCellArena(frames)
		want := cellSignature(t, arA, cA)

		// Permute insertion order with the fuzz bytes (Fisher–Yates keyed
		// on the byte stream) and interleave churn: every third byte also
		// schedules a remove+reinsert of the entry it indexes.
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		for i, b := range perm {
			j := (i + int(b)) % n
			k := int(b) % n
			order[j], order[k] = order[k], order[j]
		}
		arB := newShardArena()
		ents := make([]*frameEntry, n)
		for _, idx := range order {
			fr := &frames[idx]
			ents[idx] = &frameEntry{id: fr.ID, videoID: fr.VideoID, bucket: fr.Bucket, set: fr.Set}
			arB.insert(ents[idx])
		}
		for i, b := range perm {
			if i%3 != 0 {
				continue
			}
			idx := int(b) % n
			arB.remove(ents[idx])
			arB.insert(ents[idx])
		}
		cB := newShardCells(forcedCells().withDefaults())
		cB.rebuild(arB)
		if got := cellSignature(t, arB, cB); got != want {
			t.Fatalf("fuzzed order diverged (n=%d perm=%x):\n--- want\n%s--- got\n%s", n, perm, want, got)
		}
	})
}
