package core

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/rangeindex"
	"cbvr/internal/synthvid"
)

// searchFixture is a populated engine plus pre-extracted query descriptor
// sets, shared by the equivalence tests (building it is the expensive
// part: full feature extraction for every ingested key frame).
type searchFixture struct {
	eng    *Engine
	qsets  []*features.Set
	qbkts  []rangeindex.Range
	frames int
}

var (
	fixtureOnce sync.Once
	fixture     *searchFixture
	fixtureErr  error
)

// sharedFixture ingests one clip per category into an engine with a
// deliberately awkward shard count (5, so shards are uneven) and extracts
// descriptor sets for a mix of stored and unseen query frames. The
// database lives in a package-owned temp directory, not the first
// caller's t.TempDir(), whose cleanup would delete the still-open store
// before later tests reuse the fixture.
func sharedFixture(t *testing.T) *searchFixture {
	t.Helper()
	fixtureOnce.Do(func() {
		dir, err := os.MkdirTemp("", "cbvr-eq-*")
		if err != nil {
			fixtureErr = err
			return
		}
		eng, err := Open(filepath.Join(dir, "eq.db"), Options{SearchShards: 5})
		if err != nil {
			fixtureErr = err
			return
		}
		cats := []synthvid.Category{
			synthvid.Elearning, synthvid.Sports, synthvid.Cartoon,
			synthvid.Movie, synthvid.News, synthvid.Nature,
		}
		var queryFrames []*imaging.Image
		for i, cat := range cats {
			v := synthvid.Generate(cat, synthvid.Config{
				Width: 96, Height: 72, Frames: 14, Shots: 4, Seed: int64(100 + i),
			})
			if _, err := eng.IngestFrames(v.Name, v.Frames, v.FPS); err != nil {
				fixtureErr = err
				return
			}
			// One stored frame and one unseen frame per category.
			queryFrames = append(queryFrames, v.Frames[0])
			u := synthvid.Generate(cat, synthvid.Config{
				Width: 96, Height: 72, Frames: 3, Shots: 1, Seed: int64(900 + i),
			})
			queryFrames = append(queryFrames, u.Frames[1])
		}
		f := &searchFixture{eng: eng}
		f.qsets = eng.ExtractQuerySets(queryFrames)
		for _, fr := range queryFrames {
			f.qbkts = append(f.qbkts, QueryBucket(fr))
		}
		n, err := eng.CacheSize()
		if err != nil {
			fixtureErr = err
			return
		}
		f.frames = n
		fixture = f
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixture
}

// requireSameMatches asserts the sharded pipeline's result is the
// reference result: identical length, identical key-frame IDs in order,
// identical metadata, distances within 1e-9.
func requireSameMatches(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, reference has %d", label, len(got), len(want))
	}
	for i := range want {
		g, w := got[i], want[i]
		if g.KeyFrameID != w.KeyFrameID {
			t.Fatalf("%s: rank %d is key frame %d, reference has %d", label, i, g.KeyFrameID, w.KeyFrameID)
		}
		if g.VideoID != w.VideoID || g.VideoName != w.VideoName || g.FrameIndex != w.FrameIndex {
			t.Fatalf("%s: rank %d metadata %+v != %+v", label, i, g, w)
		}
		if d := math.Abs(g.Distance - w.Distance); d > 1e-9 || math.IsNaN(d) {
			t.Fatalf("%s: rank %d distance %.15g, reference %.15g (|Δ|=%g)", label, i, g.Distance, w.Distance, d)
		}
	}
}

// TestShardedSearchMatchesReference is the table-driven equivalence suite
// from the issue: K ∈ {1, 5, all}, both fusion modes, pruning on and off,
// single-feature subsets and weighted min-max, each checked at several
// worker counts against the retained naive full-sort reference.
func TestShardedSearchMatchesReference(t *testing.T) {
	f := sharedFixture(t)
	if f.frames < 20 {
		t.Fatalf("fixture too small: %d key frames", f.frames)
	}

	type tcase struct {
		name string
		opt  SearchOptions
	}
	var cases []tcase
	for _, k := range []int{1, 5, 0} {
		for _, fus := range []Fusion{FusionRRF, FusionMinMax} {
			for _, noPrune := range []bool{false, true} {
				cases = append(cases, tcase{
					name: fmt.Sprintf("k=%d/fusion=%d/noprune=%v", k, fus, noPrune),
					opt:  SearchOptions{K: k, Fusion: fus, NoPruning: noPrune},
				})
			}
		}
	}
	for _, kind := range features.AllKinds() {
		cases = append(cases, tcase{
			name: fmt.Sprintf("single/%v", kind),
			opt:  SearchOptions{K: 3, Kinds: []features.Kind{kind}, NoPruning: true},
		})
	}
	cases = append(cases,
		tcase{
			name: "weighted-minmax",
			opt: SearchOptions{
				K:         7,
				Kinds:     []features.Kind{features.KindHistogram, features.KindGLCM, features.KindGabor},
				Weights:   []float64{3, 1, 0.5},
				Fusion:    FusionMinMax,
				NoPruning: true,
			},
		},
		tcase{
			name: "zero-weights-minmax",
			opt: SearchOptions{
				K:         4,
				Kinds:     []features.Kind{features.KindHistogram, features.KindGLCM},
				Weights:   []float64{0, 0},
				Fusion:    FusionMinMax,
				NoPruning: true,
			},
		},
	)

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for qi := range f.qsets {
				want, err := f.eng.SearchWithSetReference(f.qsets[qi], f.qbkts[qi], tc.opt)
				if err != nil {
					t.Fatal(err)
				}
				for _, workers := range []int{1, 2, 0} {
					opt := tc.opt
					opt.Workers = workers
					got, err := f.eng.SearchWithSet(f.qsets[qi], f.qbkts[qi], opt)
					if err != nil {
						t.Fatal(err)
					}
					requireSameMatches(t, fmt.Sprintf("query %d workers %d", qi, workers), got, want)
				}
			}
		})
	}
}

// TestShardedSearchSingleShardEngine pins the degenerate configuration:
// one shard, one worker must still agree with the reference.
func TestShardedSearchSingleShardEngine(t *testing.T) {
	eng, err := Open(t.TempDir()+"/one.db", Options{SearchShards: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	v := genVideo(synthvid.Sports, 301)
	if _, err := eng.IngestFrames("s", v.Frames, v.FPS); err != nil {
		t.Fatal(err)
	}
	if eng.NumShards() != 1 {
		t.Fatalf("NumShards = %d", eng.NumShards())
	}
	qset := eng.ExtractQuerySets(v.Frames[:1])[0]
	bucket := QueryBucket(v.Frames[0])
	want, err := eng.SearchWithSetReference(qset, bucket, SearchOptions{NoPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.SearchWithSet(qset, bucket, SearchOptions{NoPruning: true, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	requireSameMatches(t, "single shard", got, want)
}

// TestSearchMissingQueryDescriptor checks both implementations reject a
// query set lacking a requested descriptor the same way.
func TestSearchMissingQueryDescriptor(t *testing.T) {
	f := sharedFixture(t)
	empty := &features.Set{}
	opt := SearchOptions{Kinds: []features.Kind{features.KindGabor}}
	if _, err := f.eng.SearchWithSet(empty, f.qbkts[0], opt); err == nil {
		t.Error("pipeline accepted query without gabor descriptor")
	}
	if _, err := f.eng.SearchWithSetReference(empty, f.qbkts[0], opt); err == nil {
		t.Error("reference accepted query without gabor descriptor")
	}

	// The implementations must also agree on the missing-descriptor +
	// zero-candidate edge: both validate descriptors before scanning.
	eng, err := Open(t.TempDir()+"/empty.db", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.SearchWithSet(empty, f.qbkts[0], opt); err == nil {
		t.Error("pipeline accepted descriptor-less query on empty engine")
	}
	if _, err := eng.SearchWithSetReference(empty, f.qbkts[0], opt); err == nil {
		t.Error("reference accepted descriptor-less query on empty engine")
	}
}

// TestVideoSearchDeterministicAcrossWorkers runs the parallel video-level
// searches at several worker counts and requires identical rankings.
func TestVideoSearchDeterministicAcrossWorkers(t *testing.T) {
	f := sharedFixture(t)
	clip := synthvid.Generate(synthvid.Sports, synthvid.Config{
		Width: 96, Height: 72, Frames: 8, Shots: 2, Seed: 101,
	})
	qsets := f.eng.ExtractQuerySets(clip.Frames[:4])

	var refDTW []VideoMatch
	var refBest []VideoMatch
	for _, workers := range []int{1, 2, 0} {
		opt := SearchOptions{K: 0, Workers: workers}
		dtw, err := f.eng.searchVideoSets(context.Background(), qsets, opt)
		if err != nil {
			t.Fatal(err)
		}
		best, err := f.eng.BestSingleFrameVideoSearch(qsets, opt)
		if err != nil {
			t.Fatal(err)
		}
		if refDTW == nil {
			refDTW, refBest = dtw, best
			if len(refDTW) == 0 || len(refBest) == 0 {
				t.Fatal("no video results")
			}
			continue
		}
		for i := range refDTW {
			if dtw[i] != refDTW[i] {
				t.Fatalf("workers=%d: DTW rank %d = %+v, want %+v", workers, i, dtw[i], refDTW[i])
			}
		}
		for i := range refBest {
			if best[i] != refBest[i] {
				t.Fatalf("workers=%d: best-frame rank %d = %+v, want %+v", workers, i, best[i], refBest[i])
			}
		}
	}
}
