// Search brownout: the engine's graceful-quality-degradation knob.
//
// The server's admission controller (internal/admission) folds live
// occupancy and recent p95 search latency into a load level in [0,1] and
// feeds it here. Under pressure the fused cell-probe budget (cells.go)
// shrinks linearly toward its recall floor MinProbeRows — trading recall
// the eval harness has already priced (internal/eval) for latency — and
// unbounded K<=0 full-ranking sweeps are refused outright with
// ErrOverloaded rather than allowed to scan the whole corpus while the
// system is drowning.
//
// The contract that keeps the PR 9 equivalence tests honest: at level 0
// the brownout is completely inert — no code path differs from an engine
// that has never heard of it, so searches stay bit-identical to
// SearchWithSetReference wherever they were before. Single-kind searches
// are never browned out: their bound-ordered sweep is exact AND sub-linear
// already, so there is no latency to buy back with recall.
package core

import (
	"errors"
	"math"
)

// ErrOverloaded is returned for unbounded (K <= 0) full-ranking searches
// while the brownout level is at or above BrownoutRefuseFullRank. HTTP
// layers map it to 503 with a computed Retry-After: the request is valid,
// the server just refuses the corpus-wide sweep until load clears.
var ErrOverloaded = errors.New("core: engine overloaded; full-ranking search refused until load clears")

// BrownoutRefuseFullRank is the level at or above which K<=0 searches are
// refused. Below it the budget shrink alone carries the pressure.
const BrownoutRefuseFullRank = 0.5

// SetBrownout sets the engine's brownout level, clamped to [0,1]. Zero
// restores exact behaviour immediately: the level is read once per search,
// so every search admitted after a SetBrownout(0) is indistinguishable
// from one on an unloaded engine. NaN is treated as zero — a corrupt load
// signal must fail open (exact), not poison the budget arithmetic.
func (e *Engine) SetBrownout(level float64) {
	if math.IsNaN(level) || level < 0 {
		level = 0
	}
	if level > 1 {
		level = 1
	}
	e.brownout.Store(math.Float64bits(level))
}

// BrownoutLevel reports the current brownout level in [0,1].
func (e *Engine) BrownoutLevel() float64 {
	return math.Float64frombits(e.brownout.Load())
}

// brownedBudget shrinks a fused probe budget toward the floor
// (MinProbeRows): level 0 returns budget unchanged, level 1 returns the
// floor, linear in between. The floor is the recall-gated minimum the
// eval harness pins — brownout never probes below it.
func brownedBudget(budget, floor int, level float64) int {
	if level <= 0 || budget <= floor {
		return budget
	}
	return floor + int((1-level)*float64(budget-floor))
}
