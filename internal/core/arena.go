// Columnar descriptor arenas: the storage layout behind the batched
// search scan. Each cache shard owns one shardArena that packs its
// entries' descriptors into per-kind contiguous float64 columns (fixed
// stride per kind, see features.Stride), plus the slot bookkeeping that
// keeps the arena incremental under ingest / delete / reindex churn — a
// mutation repacks exactly one row, never the column.
//
// Concurrency contract: all mutating methods (insert, remove, repack)
// require the engine write lock; readers (live, row, present) require at
// least the read lock. Search code may alias live and column rows only
// while the read lock is held — column backing arrays move when an
// insert grows them.
package core

import (
	"fmt"

	"cbvr/internal/features"
)

// noSlot marks an entry not (or no longer) packed into an arena.
const noSlot = -1

// shardArena is one shard's packed descriptor store. A slot is one
// candidate row across all kind columns; freed slots are recycled so
// churn does not grow the columns without bound.
type shardArena struct {
	// cols[k] holds slot s's packed vector of kind k at
	// [s*stride : (s+1)*stride), stride = features.Stride(k).
	cols [features.NumKinds][]float64
	// present[k][s] reports whether live slot s actually stores a kind-k
	// descriptor (stored rows can lack feature strings); missing[k]
	// counts live slots with present false, so the common all-present
	// scan skips the per-row flag sweep entirely.
	present [features.NumKinds][]bool
	missing [features.NumKinds]int

	ents []*frameEntry // slot -> owning entry; nil while free
	live []int32       // live slots, arbitrary order (swap-removed)
	pos  []int32       // slot -> index into live; noSlot while free
	free []int32       // recyclable slots

	scratch []float64 // pack staging, reused across mutations
}

func newShardArena() *shardArena { return &shardArena{} }

// insert packs an entry into a fresh or recycled slot and marks it live.
// The entry's slot field is set; its descriptor set must be final.
func (a *shardArena) insert(en *frameEntry) {
	var slot int32
	if n := len(a.free); n > 0 {
		slot = a.free[n-1]
		a.free = a.free[:n-1]
	} else {
		slot = int32(len(a.ents))
		a.ents = append(a.ents, nil)
		a.pos = append(a.pos, noSlot)
		for k := range a.cols {
			stride := features.Stride(features.Kind(k))
			a.cols[k] = append(a.cols[k], make([]float64, stride)...)
			a.present[k] = append(a.present[k], false)
		}
	}
	a.ents[slot] = en
	en.slot = slot
	a.pos[slot] = int32(len(a.live))
	a.live = append(a.live, slot)
	// A fresh or recycled slot always has all-false present flags (see
	// remove); count it missing everywhere, then let repack reconcile.
	for k := range a.missing {
		a.missing[k]++
	}
	a.repack(en)
}

// repack overwrites a live slot's column rows from the entry's current
// descriptor set, maintaining the present flags and missing counts. It
// is the incremental path reindex swaps take: one row rewritten in
// place, no column rebuild.
func (a *shardArena) repack(en *frameEntry) {
	slot := en.slot
	for k := range a.cols {
		kind := features.Kind(k)
		stride := features.Stride(kind)
		row := a.cols[k][int(slot)*stride : (int(slot)+1)*stride]
		d := en.set.Get(kind)
		if d == nil {
			if a.present[k][slot] {
				a.present[k][slot] = false
				a.missing[k]++
			}
			for i := range row {
				row[i] = 0
			}
			continue
		}
		a.scratch = d.AppendTo(a.scratch[:0])
		if len(a.scratch) != stride {
			panic(fmt.Sprintf("core: %v AppendTo emitted %d values, stride is %d", kind, len(a.scratch), stride))
		}
		copy(row, a.scratch)
		if !a.present[k][slot] {
			a.present[k][slot] = true
			a.missing[k]--
		}
	}
}

// remove retires an entry's slot: swap-removed from the live list,
// present flags cleared (so a recycled slot starts from a known state)
// and the slot pushed onto the free list.
func (a *shardArena) remove(en *frameEntry) {
	slot := en.slot
	if slot == noSlot || int(slot) >= len(a.pos) || a.ents[slot] != en {
		panic(fmt.Sprintf("core: arena remove of unpacked entry %d", en.id))
	}
	li := a.pos[slot]
	last := len(a.live) - 1
	moved := a.live[last]
	a.live[li] = moved
	a.pos[moved] = li
	a.live = a.live[:last]
	a.pos[slot] = noSlot
	a.ents[slot] = nil
	for k := range a.present {
		if a.present[k][slot] {
			a.present[k][slot] = false
		} else {
			a.missing[k]--
		}
	}
	a.free = append(a.free, slot)
	en.slot = noSlot
}

// row returns slot's packed vector of the given kind (full capacity
// capped, so kernels cannot scribble past the row).
func (a *shardArena) row(kind features.Kind, slot int32) []float64 {
	stride := features.Stride(kind)
	off := int(slot) * stride
	return a.cols[kind][off : off+stride : off+stride]
}

// hasKind reports whether slot stores a descriptor of the kind.
func (a *shardArena) hasKind(kind features.Kind, slot int32) bool {
	return a.present[kind][slot]
}
