package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"cbvr/internal/catalog"
	"cbvr/internal/synthvid"
)

// rowFingerprint flattens the mutable (re-indexed) columns of a row.
func rowFingerprint(k *catalog.KeyFrame) string {
	return fmt.Sprintf("%d|%d|%d|%d|%s|%s|%s|%s|%s|%s|%s",
		k.ID, k.Min, k.Max, k.MajorRegions, k.SCH, k.GLCM, k.Gabor, k.Tamura, k.ACC, k.Naive, k.Regions)
}

func fingerprints(t *testing.T, eng *Engine, videoID int64) []string {
	t.Helper()
	rows, err := eng.Store().KeyFramesOfVideo(nil, videoID)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(rows))
	for i, k := range rows {
		out[i] = rowFingerprint(k)
	}
	return out
}

// staleify overwrites every key frame's feature columns (and bucket) with
// the first row's values — valid, parsable descriptors that differ from
// what re-extraction produces — so a subsequent ReindexVideo makes a
// distinguishable change. This stands in for "the extraction code
// evolved since these rows were written", the scenario re-index exists
// for.
func staleify(t *testing.T, eng *Engine, videoID int64) {
	t.Helper()
	rows, err := eng.Store().KeyFramesOfVideo(nil, videoID)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("degenerate fixture: %d key frames", len(rows))
	}
	donor := rows[0]
	tx, err := eng.Store().Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range rows[1:] {
		stale := *k
		stale.Image = nil
		stale.Min, stale.Max = donor.Min, donor.Max
		stale.SCH, stale.GLCM, stale.Gabor, stale.Tamura = donor.SCH, donor.GLCM, donor.Gabor, donor.Tamura
		stale.ACC, stale.Naive, stale.Regions = donor.ACC, donor.Naive, donor.Regions
		stale.MajorRegions = donor.MajorRegions
		if err := eng.Store().UpdateKeyFrame(tx, &stale); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
}

// crashFixture builds an engine at a managed path with one ingested,
// staleified video, and returns the stale fingerprints.
func crashFixture(t *testing.T, dir string) (*Engine, int64, []string) {
	t.Helper()
	raw, _ := testContainer(t, synthvid.Sports, 71, 20)
	eng, err := Open(filepath.Join(dir, "crash.db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.IngestVideoStream("crash", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	staleify(t, eng, res.VideoID)
	return eng, res.VideoID, fingerprints(t, eng, res.VideoID)
}

// assertAllOldOrAllNew fails unless every row matches the old set or
// every row matches the new set.
func assertAllOldOrAllNew(t *testing.T, label string, got, old, new []string) {
	t.Helper()
	if len(got) != len(old) || len(got) != len(new) {
		t.Fatalf("%s: %d rows, want %d", label, len(got), len(old))
	}
	allOld, allNew := true, true
	for i := range got {
		if got[i] != old[i] {
			allOld = false
		}
		if got[i] != new[i] {
			allNew = false
		}
	}
	if !allOld && !allNew {
		t.Errorf("%s: recovered rows are a MIX of old and new feature rows", label)
	}
}

// TestReindexCrashMidTransaction kills the database from inside the
// replacement transaction — after the first row update, and again with
// every update applied but uncommitted. Recovery must yield the complete
// old feature rows; the half-applied transaction must vanish.
func TestReindexCrashMidTransaction(t *testing.T) {
	for _, stage := range []string{"mid-update", "pre-commit"} {
		t.Run(stage, func(t *testing.T) {
			dir := t.TempDir()
			eng, videoID, old := crashFixture(t, dir)
			eng.reindexHook = func(s string) {
				if s == stage {
					eng.Store().DB().SimulateCrash()
				}
			}
			if _, err := eng.ReindexVideo(videoID); err == nil {
				t.Fatal("reindex across a crash reported success")
			}

			re, err := Open(filepath.Join(dir, "crash.db"), Options{})
			if err != nil {
				t.Fatalf("reopen after crash: %v", err)
			}
			defer re.Close()
			got := fingerprints(t, re, videoID)
			for i := range got {
				if got[i] != old[i] {
					t.Fatalf("row %d changed by a crashed (uncommitted) reindex", i)
				}
			}
			// The recovered store re-indexes cleanly.
			if _, err := re.ReindexVideo(videoID); err != nil {
				t.Fatalf("reindex after recovery: %v", err)
			}
		})
	}
}

// TestReindexWALKillSweep is the fault-injection sweep: run a full
// ReindexVideo, crash without flushing, then truncate the WAL at many
// byte offsets — torn page images, missing commit record, intact log —
// and reopen each image. Every recovery must surface either the complete
// old rows or the complete new rows, never a mix: the WAL's
// all-or-nothing commit is exactly what makes in-place re-indexing safe.
func TestReindexWALKillSweep(t *testing.T) {
	dir := t.TempDir()
	eng, videoID, old := crashFixture(t, dir)
	// Checkpoint so the WAL holds only the reindex transaction.
	if err := eng.Store().DB().Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.ReindexVideo(videoID); err != nil {
		t.Fatal(err)
	}
	new := fingerprints(t, eng, videoID)
	eng.Store().DB().SimulateCrash()

	dataImg, err := os.ReadFile(filepath.Join(dir, "crash.db"))
	if err != nil {
		t.Fatal(err)
	}
	walImg, err := os.ReadFile(filepath.Join(dir, "crash.db.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(walImg) == 0 {
		t.Fatal("fixture WAL empty; sweep would be vacuous")
	}

	cuts := []int{0, 1, 7, len(walImg) / 4, len(walImg) / 2, 3 * len(walImg) / 4, len(walImg) - 5, len(walImg) - 1, len(walImg)}
	sawOld, sawNew := false, false
	for _, cut := range cuts {
		label := fmt.Sprintf("wal[:%d]", cut)
		rdir := t.TempDir()
		path := filepath.Join(rdir, "crash.db")
		if err := os.WriteFile(path, dataImg, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path+".wal", walImg[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(path, Options{})
		if err != nil {
			t.Fatalf("%s: reopen: %v", label, err)
		}
		got := fingerprints(t, re, videoID)
		assertAllOldOrAllNew(t, label, got, old, new)
		allNew := true
		for i := range got {
			if got[i] != new[i] {
				allNew = false
			}
		}
		if allNew {
			sawNew = true
		} else {
			sawOld = true
		}
		// Whatever state recovery chose, the store must stay fully
		// re-indexable.
		if _, err := re.ReindexVideo(videoID); err != nil {
			t.Fatalf("%s: reindex after recovery: %v", label, err)
		}
		re.Close()
	}
	if !sawOld || !sawNew {
		t.Errorf("sweep did not exercise both outcomes (old=%v new=%v)", sawOld, sawNew)
	}
}
