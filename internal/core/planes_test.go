package core

import (
	"bytes"

	"testing"

	"cbvr/internal/cvj"
	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"

	"cbvr/internal/features"
)

// TestBucketFromPlanesMatchesQueryBucket pins the shared-plane range
// bucket to the naive rescale-then-histogram QueryBucket.
func TestBucketFromPlanesMatchesQueryBucket(t *testing.T) {
	v := genVideo(synthvid.Sports, 11)
	for i, f := range v.Frames {
		if got, want := BucketFromPlanes(features.NewPlanes(f)), QueryBucket(f); got != want {
			t.Fatalf("frame %d: planes bucket %+v, QueryBucket %+v", i, got, want)
		}
	}
}

// TestIngestRescalesEachSourceFrameOnce verifies the end-to-end streamed
// ingest guarantee with the imaging rescale counter: exactly one analysis
// rescale per source frame, performed when the frame enters §4.1
// selection, and zero additional rescales per key frame — extraction
// reuses the selection-time analysis raster and naive signature. (The
// shared-plane pipeline of PR 2 paid frames + key frames; streaming
// extends the one-rescale invariant to the whole ingest path.)
func TestIngestRescalesEachSourceFrameOnce(t *testing.T) {
	eng := openTestEngine(t)
	v := genVideo(synthvid.Movie, 12)
	start := imaging.RescaleCalls()
	res, err := eng.IngestFrames("movie_00", v.Frames, v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	got := imaging.RescaleCalls() - start
	want := int64(res.NumFrames)
	if got != want {
		t.Errorf("ingest performed %d rescales for %d frames / %d key frames, want %d (one per source frame)",
			got, res.NumFrames, len(res.KeyFrameIDs), want)
	}
	if len(res.KeyFrameIDs) < 2 {
		t.Fatalf("degenerate fixture: %d key frames", len(res.KeyFrameIDs))
	}
}

// TestIngestStreamRescalesEachSourceFrameOnce pins the same invariant on
// the reader-based entry point.
func TestIngestStreamRescalesEachSourceFrameOnce(t *testing.T) {
	eng := openTestEngine(t)
	v := genVideo(synthvid.Cartoon, 15)
	container, err := cvj.EncodeBytes(v.Frames, v.FPS, 0)
	if err != nil {
		t.Fatal(err)
	}
	start := imaging.RescaleCalls()
	res, err := eng.IngestVideoStream("cartoon_00", bytes.NewReader(container))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := imaging.RescaleCalls()-start, int64(res.NumFrames); got != want {
		t.Errorf("streamed ingest performed %d rescales for %d frames, want %d", got, res.NumFrames, want)
	}
}

// TestSearchFrameSingleRescale checks the query path: one rescale covers
// both the query descriptors and the query bucket.
func TestSearchFrameSingleRescale(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "news_00", synthvid.News, 13)
	q := genVideo(synthvid.News, 14).Frames[0]
	if _, err := eng.SearchFrame(q, SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	start := imaging.RescaleCalls()
	if _, err := eng.SearchFrame(q, SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	if n := imaging.RescaleCalls() - start; n != 1 {
		t.Errorf("warm SearchFrame performed %d rescales, want exactly 1", n)
	}
}
