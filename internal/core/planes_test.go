package core

import (
	"testing"

	"cbvr/internal/imaging"
	"cbvr/internal/synthvid"

	"cbvr/internal/features"
)

// TestBucketFromPlanesMatchesQueryBucket pins the shared-plane range
// bucket to the naive rescale-then-histogram QueryBucket.
func TestBucketFromPlanesMatchesQueryBucket(t *testing.T) {
	v := genVideo(synthvid.Sports, 11)
	for i, f := range v.Frames {
		if got, want := BucketFromPlanes(features.NewPlanes(f)), QueryBucket(f); got != want {
			t.Fatalf("frame %d: planes bucket %+v, QueryBucket %+v", i, got, want)
		}
	}
}

// TestIngestRescalesEachKeyFrameOnce verifies the end-to-end shared-plane
// guarantee with the imaging rescale counter: ingest performs one
// analysis rescale per raw frame for §4.1 key-frame selection (the naive
// signature) plus exactly one per key frame for all seven descriptors and
// the §4.2 range histogram together — not the eight per key frame the
// naive extractors would pay.
func TestIngestRescalesEachKeyFrameOnce(t *testing.T) {
	eng := openTestEngine(t)
	v := genVideo(synthvid.Movie, 12)
	start := imaging.RescaleCalls()
	res, err := eng.IngestFrames("movie_00", v.Frames, v.FPS)
	if err != nil {
		t.Fatal(err)
	}
	got := imaging.RescaleCalls() - start
	want := int64(res.NumFrames + len(res.KeyFrameIDs))
	if got != want {
		t.Errorf("ingest performed %d rescales for %d frames / %d key frames, want %d (frames + key frames)",
			got, res.NumFrames, len(res.KeyFrameIDs), want)
	}
	if len(res.KeyFrameIDs) < 2 {
		t.Fatalf("degenerate fixture: %d key frames", len(res.KeyFrameIDs))
	}
}

// TestSearchFrameSingleRescale checks the query path: one rescale covers
// both the query descriptors and the query bucket.
func TestSearchFrameSingleRescale(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "news_00", synthvid.News, 13)
	q := genVideo(synthvid.News, 14).Frames[0]
	if _, err := eng.SearchFrame(q, SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	start := imaging.RescaleCalls()
	if _, err := eng.SearchFrame(q, SearchOptions{K: 3}); err != nil {
		t.Fatal(err)
	}
	if n := imaging.RescaleCalls() - start; n != 1 {
		t.Errorf("warm SearchFrame performed %d rescales, want exactly 1", n)
	}
}
