package core

import (
	"path/filepath"
	"testing"

	"cbvr/internal/features"
	"cbvr/internal/synthvid"
)

func openTestEngine(t *testing.T) *Engine {
	t.Helper()
	eng, err := Open(filepath.Join(t.TempDir(), "e.db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

func genVideo(cat synthvid.Category, seed int64) *synthvid.Video {
	return synthvid.Generate(cat, synthvid.Config{
		Width: 96, Height: 72, Frames: 16, Shots: 3, Seed: seed,
	})
}

func ingest(t *testing.T, eng *Engine, name string, cat synthvid.Category, seed int64) *IngestResult {
	t.Helper()
	v := genVideo(cat, seed)
	res, err := eng.IngestFrames(name, v.Frames, v.FPS)
	if err != nil {
		t.Fatalf("ingest %s: %v", name, err)
	}
	return res
}

func TestIngestStoresEverything(t *testing.T) {
	eng := openTestEngine(t)
	res := ingest(t, eng, "cartoon_00", synthvid.Cartoon, 3)
	if res.VideoID == 0 || res.NumFrames != 16 || len(res.KeyFrameIDs) == 0 {
		t.Fatalf("result: %+v", res)
	}
	// Rows landed in the catalog with parsable features.
	kfs, err := eng.Store().KeyFramesOfVideo(nil, res.VideoID)
	if err != nil {
		t.Fatal(err)
	}
	if len(kfs) != len(res.KeyFrameIDs) {
		t.Fatalf("stored %d frames, result says %d", len(kfs), len(res.KeyFrameIDs))
	}
	for _, kf := range kfs {
		for _, s := range []struct {
			kind features.Kind
			str  string
		}{
			{features.KindHistogram, kf.SCH},
			{features.KindGLCM, kf.GLCM},
			{features.KindGabor, kf.Gabor},
			{features.KindTamura, kf.Tamura},
			{features.KindCorrelogram, kf.ACC},
			{features.KindNaive, kf.Naive},
			{features.KindRegions, kf.Regions},
		} {
			if _, err := features.Parse(s.kind, s.str); err != nil {
				t.Errorf("frame %d %v column unparsable: %v", kf.ID, s.kind, err)
			}
		}
		if kf.Min < 0 || kf.Max > 255 || kf.Min > kf.Max {
			t.Errorf("frame %d bucket [%d,%d]", kf.ID, kf.Min, kf.Max)
		}
		img, ok, err := eng.Store().KeyFrameImage(nil, kf.ID)
		if err != nil || !ok || len(img) == 0 {
			t.Errorf("frame %d image missing", kf.ID)
		}
	}
	// The stored video container must decode back to all frames.
	raw, ok, err := eng.Store().VideoBytes(nil, res.VideoID)
	if err != nil || !ok {
		t.Fatal("video blob missing")
	}
	if len(raw) == 0 {
		t.Fatal("empty video blob")
	}
}

func TestSearchFindsOwnKeyFrame(t *testing.T) {
	eng := openTestEngine(t)
	res := ingest(t, eng, "sports_00", synthvid.Sports, 11)
	ingest(t, eng, "news_00", synthvid.News, 12)
	ingest(t, eng, "nature_00", synthvid.Nature, 13)

	// Query with an exact stored key frame: it must rank first with
	// distance ~0.
	v := genVideo(synthvid.Sports, 11)
	kfs, err := eng.Store().KeyFramesOfVideo(nil, res.VideoID)
	if err != nil || len(kfs) == 0 {
		t.Fatal(err)
	}
	query := v.Frames[kfs[0].FrameIndex]
	matches, err := eng.SearchFrame(query, SearchOptions{K: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no matches")
	}
	if matches[0].KeyFrameID != kfs[0].ID {
		t.Errorf("top match %d, want %d (self)", matches[0].KeyFrameID, kfs[0].ID)
	}
	if matches[0].VideoName != "sports_00" {
		t.Errorf("top match video %q", matches[0].VideoName)
	}
	for i := 1; i < len(matches); i++ {
		if matches[i].Distance < matches[i-1].Distance {
			t.Error("matches not sorted by distance")
		}
	}
}

func TestSearchSingleFeatureSubset(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "cartoon_00", synthvid.Cartoon, 21)
	v := genVideo(synthvid.Cartoon, 22)
	for _, kind := range features.AllKinds() {
		m, err := eng.SearchFrame(v.Frames[0], SearchOptions{K: 3, Kinds: []features.Kind{kind}})
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		if len(m) == 0 {
			t.Errorf("%v: no matches", kind)
		}
	}
}

func TestSearchPruningSubsetOfFull(t *testing.T) {
	eng := openTestEngine(t)
	for i := int64(0); i < 4; i++ {
		ingest(t, eng, "movie", synthvid.Movie, 30+i)
		ingest(t, eng, "elearn", synthvid.Elearning, 40+i)
	}
	v := genVideo(synthvid.Movie, 99)
	full, err := eng.SearchFrame(v.Frames[2], SearchOptions{NoPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := eng.SearchFrame(v.Frames[2], SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(pruned) > len(full) {
		t.Errorf("pruned %d > full %d", len(pruned), len(full))
	}
	inFull := make(map[int64]bool)
	for _, m := range full {
		inFull[m.KeyFrameID] = true
	}
	for _, m := range pruned {
		if !inFull[m.KeyFrameID] {
			t.Errorf("pruned result %d not in full scan", m.KeyFrameID)
		}
	}
}

func TestSearchVideoRanksOwnCategoryFirst(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "sports_00", synthvid.Sports, 50)
	ingest(t, eng, "cartoon_00", synthvid.Cartoon, 51)
	ingest(t, eng, "news_00", synthvid.News, 52)

	// The identical sports clip must beat the others at video level.
	v := genVideo(synthvid.Sports, 50)
	matches, err := eng.SearchVideo(v.Frames, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 3 {
		t.Fatalf("video matches = %d", len(matches))
	}
	if matches[0].VideoName != "sports_00" {
		t.Errorf("top video %q, distances %v", matches[0].VideoName, matches)
	}
	if matches[0].Distance >= matches[1].Distance {
		t.Error("self video not strictly closest")
	}
}

func TestDeleteVideoRemovesFromSearch(t *testing.T) {
	eng := openTestEngine(t)
	res := ingest(t, eng, "bye", synthvid.Nature, 60)
	ingest(t, eng, "stay", synthvid.News, 61)
	if err := eng.DeleteVideo(res.VideoID); err != nil {
		t.Fatal(err)
	}
	v := genVideo(synthvid.Nature, 60)
	matches, err := eng.SearchFrame(v.Frames[0], SearchOptions{NoPruning: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range matches {
		if m.VideoID == res.VideoID {
			t.Error("deleted video still in results")
		}
	}
	n, _ := eng.Store().CountKeyFrames(nil)
	kfs, _ := eng.Store().KeyFramesOfVideo(nil, res.VideoID)
	if len(kfs) != 0 {
		t.Error("deleted video's key frames remain")
	}
	if n == 0 {
		t.Error("surviving video's key frames vanished")
	}
}

func TestCachePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "r.db")
	eng, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	v := genVideo(synthvid.Cartoon, 70)
	if _, err := eng.IngestFrames("c", v.Frames, v.FPS); err != nil {
		t.Fatal(err)
	}
	if err := eng.Close(); err != nil {
		t.Fatal(err)
	}

	eng2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng2.Close()
	matches, err := eng2.SearchFrame(v.Frames[0], SearchOptions{K: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 1 || matches[0].VideoName != "c" {
		t.Errorf("search after reopen: %+v", matches)
	}
}

func TestQueryBucketValid(t *testing.T) {
	v := genVideo(synthvid.Movie, 80)
	b := QueryBucket(v.Frames[0])
	if b.Min < 0 || b.Max > 255 || b.Min > b.Max {
		t.Errorf("bucket %v", b)
	}
}

func TestSearchEmptyDB(t *testing.T) {
	eng := openTestEngine(t)
	v := genVideo(synthvid.News, 90)
	matches, err := eng.SearchFrame(v.Frames[0], SearchOptions{K: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Errorf("matches on empty DB: %d", len(matches))
	}
}

func TestFusionModesBothRank(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "sports_00", synthvid.Sports, 201)
	ingest(t, eng, "cartoon_00", synthvid.Cartoon, 202)
	v := genVideo(synthvid.Sports, 201)
	for _, fusion := range []Fusion{FusionRRF, FusionMinMax} {
		m, err := eng.SearchFrame(v.Frames[0], SearchOptions{K: 5, Fusion: fusion, NoPruning: true})
		if err != nil {
			t.Fatalf("fusion %d: %v", fusion, err)
		}
		if len(m) == 0 {
			t.Fatalf("fusion %d: no matches", fusion)
		}
		if m[0].VideoName != "sports_00" {
			t.Errorf("fusion %d: top match %q", fusion, m[0].VideoName)
		}
		for i := range m {
			if m[i].Distance < 0 || m[i].Distance > 1+1e-9 {
				t.Errorf("fusion %d: distance %g outside [0,1]", fusion, m[i].Distance)
			}
		}
	}
}

func TestMinMaxWeightsShiftRanking(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "news_00", synthvid.News, 210)
	ingest(t, eng, "movie_00", synthvid.Movie, 211)
	v := genVideo(synthvid.News, 212)
	kinds := []features.Kind{features.KindHistogram, features.KindGLCM}
	// All weight on histogram must equal a histogram-only search order.
	weighted, err := eng.SearchFrame(v.Frames[0], SearchOptions{
		Kinds: kinds, Weights: []float64{1, 0}, Fusion: FusionMinMax, NoPruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	histOnly, err := eng.SearchFrame(v.Frames[0], SearchOptions{
		Kinds: []features.Kind{features.KindHistogram}, NoPruning: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(weighted) != len(histOnly) {
		t.Fatalf("result sizes differ: %d vs %d", len(weighted), len(histOnly))
	}
	for i := range weighted {
		if weighted[i].KeyFrameID != histOnly[i].KeyFrameID {
			t.Fatalf("rank %d differs: %d vs %d", i, weighted[i].KeyFrameID, histOnly[i].KeyFrameID)
		}
	}
}

func TestBestSingleFrameAblationBaseline(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "sports_00", synthvid.Sports, 95)
	ingest(t, eng, "news_00", synthvid.News, 96)
	v := genVideo(synthvid.Sports, 95)
	qsets := eng.ExtractQuerySets(v.Frames[:3])
	matches, err := eng.BestSingleFrameVideoSearch(qsets, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 2 || matches[0].VideoName != "sports_00" {
		t.Errorf("ablation baseline: %+v", matches)
	}
}
