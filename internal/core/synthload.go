// Bulk cache-only loading of synthetic key frames: the evaluation and
// benchmark corpora (100k–1M rows) are descriptor-space synthetic — no
// pixels, no JPEG encoding, no store rows — so loading must bypass the
// ingest pipeline and publish straight into the scoreable cache. The
// entries behave exactly like warmed stored rows for search purposes
// (shard maps, arenas, range index, cell index) but do not survive a
// reopen, which evaluation runs never do.
package core

import (
	"fmt"

	"cbvr/internal/features"
	"cbvr/internal/rangeindex"
)

// SyntheticFrame is one cache-only key frame for evaluation corpora.
type SyntheticFrame struct {
	ID         int64
	VideoID    int64
	VideoName  string
	FrameIndex int
	Bucket     rangeindex.Range
	Set        *features.Set
}

// PublishSyntheticFrames files the frames into the search cache under one
// write-lock critical section: shard map, arena row, range index and cell
// index per frame, exactly like publishEntries after a commit. IDs must
// be positive and unique; an already-cached ID is skipped (putEntry's
// no-op), mirroring warmCache. Streamed generators can call this in
// batches to bound peak slice memory.
func (e *Engine) PublishSyntheticFrames(frames []SyntheticFrame) error {
	if err := e.warmCache(); err != nil {
		return err
	}
	for i := range frames {
		if frames[i].Set == nil {
			return fmt.Errorf("core: synthetic frame %d has no descriptor set", frames[i].ID)
		}
		if frames[i].ID <= 0 {
			return fmt.Errorf("core: synthetic frame ID %d must be positive", frames[i].ID)
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range frames {
		f := &frames[i]
		e.putEntry(&frameEntry{
			id:       f.ID,
			videoID:  f.VideoID,
			frameIdx: f.FrameIndex,
			bucket:   f.Bucket,
			set:      f.Set,
		})
		if f.VideoName != "" {
			e.vname[f.VideoID] = f.VideoName
		}
	}
	return nil
}
