// Package core implements the paper's CBVR engine: the ingest pipeline
// (video container → frames → §4.1 key frames → §4.3–4.8 features → §4.2
// range bucket → VIDEO_STORE/KEY_FRAMES rows) and the query pipeline
// (query frame → features → range pruning → per-feature scoring → fusion →
// ranked results), plus the dynamic-programming video-to-video search.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"cbvr/internal/catalog"
	"cbvr/internal/cvj"
	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/keyframe"
	"cbvr/internal/rangeindex"
	"cbvr/internal/vstore"
)

// Options configures an Engine.
type Options struct {
	// KeyframeThreshold overrides the §4.1 similarity cut-off
	// (default 800).
	KeyframeThreshold float64
	// Workers bounds parallel feature extraction and query-time scoring;
	// <= 0 uses GOMAXPROCS.
	Workers int
	// SearchShards fixes the number of partitions the key-frame cache and
	// range index are split into for the concurrent search pipeline.
	// <= 0 derives the count from the larger of Workers and GOMAXPROCS.
	// The shard count is set at Open and does not change for the engine's
	// lifetime; query-time parallelism (Workers, SearchOptions.Workers)
	// is clamped to it, since each shard is scanned by one worker.
	SearchShards int
	// JPEGQuality for stored key-frame images; <= 0 uses the default.
	JPEGQuality int
	// Store tunes the underlying vstore database.
	Store vstore.Options
}

// Fusion selects how per-feature distances combine into one ranking.
type Fusion int

const (
	// FusionRRF (default) is reciprocal rank fusion: scale-free and
	// robust to individually weak features, which is what makes the
	// paper's "Combined" column dominate every single feature.
	FusionRRF Fusion = iota
	// FusionMinMax min-max normalises each feature's distances and takes
	// their weighted mean (classic score fusion; the fusion ablation
	// baseline).
	FusionMinMax
)

// SearchOptions configures one retrieval call.
type SearchOptions struct {
	// K bounds the result count; <= 0 returns everything ranked.
	K int
	// Kinds selects the features to combine; empty means all seven
	// (the paper's "Combined" configuration).
	Kinds []features.Kind
	// Weights gives per-kind fusion weights aligned with Kinds; nil means
	// equal weights. Only FusionMinMax uses weights.
	Weights []float64
	// Fusion selects the rank-combination rule (default FusionRRF).
	Fusion Fusion
	// NoPruning disables the §4.2 range-index candidate pruning and scans
	// every key frame (used by the pruning ablation).
	NoPruning bool
	// Workers overrides the engine's query-time parallelism for this call
	// only: the number of goroutines scoring cache shards. <= 0 uses the
	// engine default (Options.Workers, else GOMAXPROCS); 1 runs the whole
	// search on the calling goroutine. Frame searches are additionally
	// clamped to the engine's fixed shard count (Options.SearchShards),
	// one worker per shard. Results are identical at any worker count.
	Workers int
}

// Match is one ranked key-frame result.
type Match struct {
	KeyFrameID int64
	VideoID    int64
	VideoName  string
	FrameIndex int
	Distance   float64
}

// VideoMatch is one ranked video-level result.
type VideoMatch struct {
	VideoID   int64
	VideoName string
	Distance  float64
}

// IngestResult summarises one ingested video.
type IngestResult struct {
	VideoID     int64
	NumFrames   int
	KeyFrameIDs []int64
}

// Engine is the CBVR system facade over the catalog store.
//
// The scoreable key-frame cache is partitioned into a fixed number of
// shards keyed by key-frame ID (id mod len(shards)), with a parallel
// sharded range index for §4.2 bucket pruning. Search fans one worker out
// per shard; ingest and delete update the owning shard under the engine
// write lock. See DESIGN.md ("Sharded search pipeline").
type Engine struct {
	store *catalog.Store
	opts  Options

	mu     sync.RWMutex
	shards []map[int64]*frameEntry // key-frame ID -> parsed descriptors, by id mod N
	index  *rangeindex.ShardedIndex
	vname  map[int64]string // video ID -> name
	warm   bool
}

// frameEntry caches one key frame's parsed state for scoring.
type frameEntry struct {
	id       int64
	videoID  int64
	frameIdx int
	bucket   rangeindex.Range
	set      *features.Set
}

// Open opens (creating if needed) a CBVR engine at the given database
// path.
func Open(path string, opts Options) (*Engine, error) {
	st, err := catalog.Open(path, &opts.Store)
	if err != nil {
		return nil, err
	}
	n := searchShardCount(opts)
	shards := make([]map[int64]*frameEntry, n)
	for i := range shards {
		shards[i] = make(map[int64]*frameEntry)
	}
	return &Engine{
		store:  st,
		opts:   opts,
		shards: shards,
		index:  rangeindex.NewSharded(n),
		vname:  make(map[int64]string),
	}, nil
}

// maxSearchShards caps the cache partition count: beyond this, per-query
// fan-out overhead outweighs any parallelism the hardware can deliver.
const maxSearchShards = 256

// searchShardCount resolves the fixed shard count for an engine. Without
// an explicit SearchShards it sizes from whichever of Options.Workers and
// GOMAXPROCS is larger: shards only bound the *maximum* per-query
// parallelism, so a small Workers value (often set just to bound feature
// extraction) must not permanently cap SearchOptions.Workers overrides.
func searchShardCount(opts Options) int {
	n := opts.SearchShards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if opts.Workers > n {
			n = opts.Workers
		}
	}
	if n < 1 {
		n = 1
	}
	if n > maxSearchShards {
		n = maxSearchShards
	}
	return n
}

// putEntry files an entry into its cache shard and the range index.
// Callers must hold e.mu for writing. Re-inserting an already cached ID is
// a no-op so warmCache never double-indexes entries added by ingest.
func (e *Engine) putEntry(en *frameEntry) {
	s := e.index.ShardFor(en.id)
	if _, ok := e.shards[s][en.id]; ok {
		return
	}
	e.shards[s][en.id] = en
	e.index.Insert(en.id, en.bucket)
}

// getEntry looks an entry up in its shard. Callers must hold e.mu.
func (e *Engine) getEntry(id int64) *frameEntry {
	return e.shards[e.index.ShardFor(id)][id]
}

// numCached counts cached entries. Callers must hold e.mu.
func (e *Engine) numCached() int {
	n := 0
	for _, sh := range e.shards {
		n += len(sh)
	}
	return n
}

// Close closes the engine and its database.
func (e *Engine) Close() error { return e.store.Close() }

// Store exposes the catalog layer (admin operations, diagnostics).
func (e *Engine) Store() *catalog.Store { return e.store }

func (e *Engine) workers() int {
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// IngestFrames encodes frames as a CVJ container and ingests it.
func (e *Engine) IngestFrames(name string, frames []*imaging.Image, fps int) (*IngestResult, error) {
	if len(frames) == 0 {
		return nil, errors.New("core: no frames to ingest")
	}
	container, err := cvj.EncodeBytes(frames, fps, e.opts.JPEGQuality)
	if err != nil {
		return nil, err
	}
	return e.IngestVideo(name, container)
}

// IngestVideo runs the full ingest pipeline on a CVJ container: decode
// frames, select key frames (§4.1), extract all features (§4.3–4.8) in
// parallel, assign range buckets (§4.2) and store everything in one
// transaction.
func (e *Engine) IngestVideo(name string, container []byte) (*IngestResult, error) {
	vid, err := cvj.DecodeBytes(container)
	if err != nil {
		return nil, fmt.Errorf("core: ingest %q: %w", name, err)
	}
	kex := keyframe.Extractor{Threshold: e.opts.KeyframeThreshold}
	kfs, err := kex.Extract(vid.Frames)
	if err != nil {
		return nil, fmt.Errorf("core: ingest %q: %w", name, err)
	}

	type extracted struct {
		set    *features.Set
		bucket rangeindex.Range
		jpeg   []byte
	}
	exts := make([]extracted, len(kfs))
	var wg sync.WaitGroup
	sem := make(chan struct{}, e.workers())
	errCh := make(chan error, len(kfs))
	for i := range kfs {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			im := kfs[i].Image
			// One shared analysis-plane pass per key frame: the seven
			// descriptors and the §4.2 range bucket all come from the same
			// planes, so the frame is rescaled exactly once end-to-end.
			planes := features.NewPlanes(im)
			set := planes.ExtractAll()
			bucket := BucketFromPlanes(planes)
			var buf bytes.Buffer
			if err := im.EncodeJPEG(&buf, e.opts.JPEGQuality); err != nil {
				errCh <- err
				return
			}
			exts[i] = extracted{set: set, bucket: bucket, jpeg: buf.Bytes()}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, fmt.Errorf("core: ingest %q: %w", name, err)
	default:
	}

	// Key-frame-only stream (the VIDEO_STORE.STREAM column).
	kfImages := make([]*imaging.Image, len(kfs))
	for i, k := range kfs {
		kfImages[i] = k.Image
	}
	stream, err := cvj.EncodeBytes(kfImages, vid.FPS, e.opts.JPEGQuality)
	if err != nil {
		return nil, fmt.Errorf("core: ingest %q: %w", name, err)
	}

	tx, err := e.store.Begin()
	if err != nil {
		return nil, err
	}
	v := &catalog.Video{Name: name, Video: container, Stream: stream, DoStore: time.Unix(0, 0).UTC()}
	videoID, err := e.store.InsertVideo(tx, v)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	res := &IngestResult{VideoID: videoID, NumFrames: len(vid.Frames)}
	newEntries := make([]*frameEntry, 0, len(kfs))
	for i, k := range kfs {
		row := &catalog.KeyFrame{
			Name:         fmt.Sprintf("%s#%04d", name, k.Index),
			Image:        exts[i].jpeg,
			Min:          exts[i].bucket.Min,
			Max:          exts[i].bucket.Max,
			SCH:          exts[i].set.Histogram.String(),
			GLCM:         exts[i].set.GLCM.String(),
			Gabor:        exts[i].set.Gabor.String(),
			Tamura:       exts[i].set.Tamura.String(),
			ACC:          exts[i].set.Correlogram.String(),
			Naive:        exts[i].set.Naive.String(),
			Regions:      exts[i].set.Regions.String(),
			MajorRegions: exts[i].set.Regions.Major,
			VideoID:      videoID,
			FrameIndex:   k.Index,
		}
		id, err := e.store.InsertKeyFrame(tx, row)
		if err != nil {
			tx.Abort()
			return nil, err
		}
		res.KeyFrameIDs = append(res.KeyFrameIDs, id)
		newEntries = append(newEntries, &frameEntry{
			id:       id,
			videoID:  videoID,
			frameIdx: k.Index,
			bucket:   exts[i].bucket,
			set:      exts[i].set,
		})
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}

	e.mu.Lock()
	for _, en := range newEntries {
		e.putEntry(en)
	}
	e.vname[videoID] = name
	e.mu.Unlock()
	return res, nil
}

// DeleteVideo removes a video and its key frames (admin use case).
func (e *Engine) DeleteVideo(videoID int64) error {
	tx, err := e.store.Begin()
	if err != nil {
		return err
	}
	if err := e.store.DeleteVideo(tx, videoID); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	e.mu.Lock()
	for _, sh := range e.shards {
		for id, en := range sh {
			if en.videoID == videoID {
				delete(sh, id)
				e.index.Remove(id, en.bucket)
			}
		}
	}
	delete(e.vname, videoID)
	e.mu.Unlock()
	return nil
}

// warmCache loads every stored key frame's feature strings into parsed
// descriptor sets. It is called lazily by searches and is idempotent. The
// warm flag is checked under the read lock first so steady-state searches
// never contend on the write lock.
func (e *Engine) warmCache() error {
	e.mu.RLock()
	warm := e.warm
	e.mu.RUnlock()
	if warm {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.warm {
		return nil
	}
	err := e.store.ScanKeyFrames(nil, func(k *catalog.KeyFrame) (bool, error) {
		if en := e.getEntry(k.ID); en != nil {
			return true, nil
		}
		en, err := entryFromRow(k)
		if err != nil {
			return false, err
		}
		e.putEntry(en)
		return true, nil
	})
	if err != nil {
		return err
	}
	vids, err := e.store.ListVideos(nil)
	if err != nil {
		return err
	}
	for _, v := range vids {
		e.vname[v.ID] = v.Name
	}
	e.warm = true
	return nil
}

// entryFromRow parses a stored key frame's feature strings.
func entryFromRow(k *catalog.KeyFrame) (*frameEntry, error) {
	set := &features.Set{}
	for _, f := range []struct {
		kind features.Kind
		s    string
	}{
		{features.KindHistogram, k.SCH},
		{features.KindGLCM, k.GLCM},
		{features.KindGabor, k.Gabor},
		{features.KindTamura, k.Tamura},
		{features.KindCorrelogram, k.ACC},
		{features.KindNaive, k.Naive},
		{features.KindRegions, k.Regions},
	} {
		if f.s == "" {
			continue
		}
		d, err := features.Parse(f.kind, f.s)
		if err != nil {
			return nil, fmt.Errorf("core: key frame %d: %w", k.ID, err)
		}
		if err := set.Put(d); err != nil {
			return nil, err
		}
	}
	return &frameEntry{
		id:       k.ID,
		videoID:  k.VideoID,
		frameIdx: k.FrameIndex,
		bucket:   k.Range(),
		set:      set,
	}, nil
}

// QueryBucket computes the §4.2 range bucket of a query frame.
func QueryBucket(im *imaging.Image) rangeindex.Range {
	hist := im.Rescale(features.AnalysisSize, features.AnalysisSize).GrayHistogram()
	min, max := rangeindex.AssignFaithful(&hist)
	return rangeindex.Range{Min: min, Max: max}
}

// BucketFromPlanes computes the §4.2 range bucket from shared analysis
// planes. The planes' gray histogram equals the rescaled frame's
// GrayHistogram, so the bucket matches QueryBucket without a second
// rescale.
func BucketFromPlanes(p *features.Planes) rangeindex.Range {
	min, max := rangeindex.AssignFaithful(&p.GrayHist)
	return rangeindex.Range{Min: min, Max: max}
}

func (opt *SearchOptions) kinds() []features.Kind {
	if len(opt.Kinds) == 0 {
		return features.AllKinds()
	}
	return opt.Kinds
}

// fixedKindScale brings each feature's raw distance to a comparable unit
// magnitude for use inside DTW cost functions, where per-candidate min-max
// normalisation is not available.
var fixedKindScale = map[features.Kind]float64{
	features.KindHistogram:   2,     // L1 over distributions is in [0,2]
	features.KindGLCM:        2,     // scaled L2, typically < 2
	features.KindGabor:       0.5,   // magnitude-normalised responses
	features.KindTamura:      2,     // scaled L2 + half-L1 directionality
	features.KindCorrelogram: 0.5,   // mean |Δ| of max-normalised cells
	features.KindRegions:     10,    // counts
	features.KindNaive:       11025, // 25 × max per-point distance (441)
}

// fixedScaleDistance fuses per-kind distances with fixed scales (equal
// weights).
func fixedScaleDistance(a, b *features.Set, kinds []features.Kind) float64 {
	var sum float64
	n := 0
	for _, kind := range kinds {
		da, db := a.Get(kind), b.Get(kind)
		if da == nil || db == nil {
			continue
		}
		d, err := da.DistanceTo(db)
		if err != nil {
			continue
		}
		sum += d / fixedKindScale[kind]
		n++
	}
	if n == 0 {
		return 1e9
	}
	return sum / float64(n)
}

// ExtractQuerySets is a helper for evaluation harnesses: extract
// descriptor sets for a batch of frames in parallel.
func (e *Engine) ExtractQuerySets(frames []*imaging.Image) []*features.Set {
	out := make([]*features.Set, len(frames))
	parallelFor(len(frames), e.workers(), func(i int) {
		out[i] = features.ExtractAllShared(frames[i])
	})
	return out
}

// CacheSize reports the number of cached (scoreable) key frames.
func (e *Engine) CacheSize() (int, error) {
	if err := e.warmCache(); err != nil {
		return 0, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.numCached(), nil
}

// NumShards reports the fixed search-shard count chosen at Open.
func (e *Engine) NumShards() int { return len(e.shards) }
