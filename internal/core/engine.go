// Package core implements the paper's CBVR engine: the ingest pipeline
// (video container → frames → §4.1 key frames → §4.3–4.8 features → §4.2
// range bucket → VIDEO_STORE/KEY_FRAMES rows) and the query pipeline
// (query frame → features → range pruning → per-feature scoring → fusion →
// ranked results), plus the dynamic-programming video-to-video search.
package core

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"cbvr/internal/catalog"
	"cbvr/internal/cvj"
	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/keyframe"
	"cbvr/internal/rangeindex"
	"cbvr/internal/vstore"
)

// Options configures an Engine.
type Options struct {
	// KeyframeThreshold overrides the §4.1 similarity cut-off
	// (default 800).
	KeyframeThreshold float64
	// Workers bounds parallel feature extraction and query-time scoring;
	// <= 0 uses GOMAXPROCS.
	Workers int
	// SearchShards fixes the number of partitions the key-frame cache and
	// range index are split into for the concurrent search pipeline.
	// <= 0 derives the count from the larger of Workers and GOMAXPROCS.
	// The shard count is set at Open and does not change for the engine's
	// lifetime; query-time parallelism (Workers, SearchOptions.Workers)
	// is clamped to it, since each shard is scanned by one worker.
	SearchShards int
	// JPEGQuality for CVJ containers encoded by IngestFrames; <= 0 uses
	// the default. Stored key-frame images and the key-frame stream reuse
	// the container's original JPEG bytes, so no quality applies there.
	JPEGQuality int
	// Cells tunes the per-shard coarse-cell candidate pruner (see
	// cells.go). The zero value enables it with defaults; small corpora
	// stay on the exact sweep via the MinShardRows floor regardless.
	Cells CellOptions
	// Store tunes the underlying vstore database.
	Store vstore.Options
}

// Fusion selects how per-feature distances combine into one ranking.
type Fusion int

const (
	// FusionRRF (default) is reciprocal rank fusion: scale-free and
	// robust to individually weak features, which is what makes the
	// paper's "Combined" column dominate every single feature.
	FusionRRF Fusion = iota
	// FusionMinMax min-max normalises each feature's distances and takes
	// their weighted mean (classic score fusion; the fusion ablation
	// baseline).
	FusionMinMax
)

// SearchOptions configures one retrieval call.
type SearchOptions struct {
	// K bounds the result count; <= 0 returns everything ranked.
	K int
	// Kinds selects the features to combine; empty means all seven
	// (the paper's "Combined" configuration).
	Kinds []features.Kind
	// Weights gives per-kind fusion weights aligned with Kinds; nil means
	// equal weights. Only FusionMinMax uses weights.
	Weights []float64
	// Fusion selects the rank-combination rule (default FusionRRF).
	Fusion Fusion
	// NoPruning disables the §4.2 range-index candidate pruning and scans
	// every key frame (used by the pruning ablation).
	NoPruning bool
	// NoCellPruning disables the coarse-cell candidate pruner for this
	// call: every candidate row is kernel-swept exactly as before the
	// pruner existed (the exact baseline for recall evaluation).
	NoCellPruning bool
	// Workers overrides the engine's query-time parallelism for this call
	// only: the number of goroutines scoring cache shards. <= 0 uses the
	// engine default (Options.Workers, else GOMAXPROCS); 1 runs the whole
	// search on the calling goroutine. Frame searches are additionally
	// clamped to the engine's fixed shard count (Options.SearchShards),
	// one worker per shard. Results are identical at any worker count.
	Workers int

	// brownout is the engine's load-shedding level sampled once at search
	// start (searchSetStats), so every shard of one search shrinks its
	// probe budget by the same amount even if the level moves mid-flight.
	brownout float64
}

// ErrEmptyName is returned by every ingest entry point for an empty (or
// all-whitespace) video name. A video ingested with an empty name renders
// as a blank, unclickable row in every listing — reject it at the source
// so no surface can create one.
var ErrEmptyName = errors.New("empty video name")

// ErrNotFound is wrapped by operations addressing a video ID that does not
// exist; HTTP layers map it to 404 instead of blaming the request bytes.
var ErrNotFound = errors.New("no such video")

// Match is one ranked key-frame result.
type Match struct {
	KeyFrameID int64
	VideoID    int64
	VideoName  string
	FrameIndex int
	Distance   float64
}

// VideoMatch is one ranked video-level result.
type VideoMatch struct {
	VideoID   int64
	VideoName string
	Distance  float64
}

// IngestResult summarises one ingested video.
type IngestResult struct {
	VideoID     int64
	NumFrames   int
	KeyFrameIDs []int64
}

// Engine is the CBVR system facade over the catalog store.
//
// The scoreable key-frame cache is partitioned into a fixed number of
// shards keyed by key-frame ID (id mod len(shards)), with a parallel
// sharded range index for §4.2 bucket pruning. Search fans one worker out
// per shard; ingest and delete update the owning shard under the engine
// write lock. See DESIGN.md ("Sharded search pipeline").
// Lock order (enforced by tools/cbvrvet lockorder): the engine lock is
// outermost; the raster pool's free-list lock is a leaf taken by the
// decode workers and never held across engine state.
//
//cbvrvet:lockorder Engine.mu < rasterPool.mu
type Engine struct {
	store   *catalog.Store
	opts    Options
	rasters *rasterPool // recycled per-source-frame analysis rasters

	mu     sync.RWMutex
	shards []map[int64]*frameEntry // key-frame ID -> parsed descriptors, by id mod N
	arenas []*shardArena           // per-shard packed descriptor columns (see arena.go)
	cells  []*shardCells           // per-shard coarse pruning cells (see cells.go)
	index  *rangeindex.ShardedIndex
	vname  map[int64]string // video ID -> name
	warm   bool

	// tally accumulates per-search work counters (atomic, written outside
	// the engine lock) for the stats surfaces.
	tally searchTally

	// brownout holds the load-shedding level (math.Float64bits of a value
	// in [0,1]) set by the serving layer; see brownout.go. Zero — the
	// untouched default — means exact behaviour.
	brownout atomic.Uint64

	// reindexHook, when set by tests, fires at named points inside
	// ReindexVideo's replacement transaction (fault injection).
	reindexHook func(stage string)

	// ingestHook, when set by tests, fires at named points of the staged
	// ingest pipeline: "staged" after spooling completes (no locks held)
	// and "in-commit" inside the commit critical section (writer lock
	// held). Used to prove staging overlaps a blocked commit.
	ingestHook func(stage, name string)
}

// frameEntry caches one key frame's parsed state for scoring.
type frameEntry struct {
	id       int64
	videoID  int64
	frameIdx int
	bucket   rangeindex.Range
	set      *features.Set
	slot     int32 // row in the owning shard's arena; set by putEntry
}

// Open opens (creating if needed) a CBVR engine at the given database
// path.
func Open(path string, opts Options) (*Engine, error) {
	st, err := catalog.Open(path, &opts.Store)
	if err != nil {
		return nil, err
	}
	n := searchShardCount(opts)
	cellCfg := opts.Cells.withDefaults()
	shards := make([]map[int64]*frameEntry, n)
	arenas := make([]*shardArena, n)
	cells := make([]*shardCells, n)
	for i := range shards {
		shards[i] = make(map[int64]*frameEntry)
		arenas[i] = newShardArena()
		cells[i] = newShardCells(cellCfg)
	}
	return &Engine{
		store:   st,
		opts:    opts,
		rasters: newRasterPool(),
		shards:  shards,
		arenas:  arenas,
		cells:   cells,
		index:   rangeindex.NewSharded(n),
		vname:   make(map[int64]string),
	}, nil
}

// maxSearchShards caps the cache partition count: beyond this, per-query
// fan-out overhead outweighs any parallelism the hardware can deliver.
const maxSearchShards = 256

// searchShardCount resolves the fixed shard count for an engine. Without
// an explicit SearchShards it sizes from whichever of Options.Workers and
// GOMAXPROCS is larger: shards only bound the *maximum* per-query
// parallelism, so a small Workers value (often set just to bound feature
// extraction) must not permanently cap SearchOptions.Workers overrides.
func searchShardCount(opts Options) int {
	n := opts.SearchShards
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
		if opts.Workers > n {
			n = opts.Workers
		}
	}
	if n < 1 {
		n = 1
	}
	if n > maxSearchShards {
		n = maxSearchShards
	}
	return n
}

// putEntry files an entry into its cache shard, the range index and the
// shard's descriptor arena. Callers must hold e.mu for writing.
// Re-inserting an already cached ID is a no-op so warmCache never
// double-indexes entries added by ingest.
func (e *Engine) putEntry(en *frameEntry) {
	s := e.index.ShardFor(en.id)
	if _, ok := e.shards[s][en.id]; ok {
		return
	}
	e.shards[s][en.id] = en
	e.arenas[s].insert(en)
	e.cells[s].onInsert(e.arenas[s], en.slot)
	e.index.Insert(en.id, en.bucket)
}

// replaceEntry swaps a rebuilt entry over the cached one with the same ID
// (the reindex commit path): range-index postings move to the new bucket
// and the arena row is repacked in place, reusing the old slot. A
// previously unseen ID falls back to a plain insert. Callers must hold
// e.mu for writing.
func (e *Engine) replaceEntry(en *frameEntry) {
	s := e.index.ShardFor(en.id)
	old := e.shards[s][en.id]
	if old == nil {
		e.putEntry(en)
		return
	}
	e.index.Remove(en.id, old.bucket)
	en.slot = old.slot
	old.slot = noSlot
	e.shards[s][en.id] = en
	ar := e.arenas[s]
	ar.ents[en.slot] = en
	ar.repack(en)
	e.cells[s].onRepack(ar, en.slot)
	e.index.Insert(en.id, en.bucket)
}

// getEntry looks an entry up in its shard. Callers must hold e.mu.
func (e *Engine) getEntry(id int64) *frameEntry {
	return e.shards[e.index.ShardFor(id)][id]
}

// numCached counts cached entries. Callers must hold e.mu.
func (e *Engine) numCached() int {
	n := 0
	for _, sh := range e.shards {
		n += len(sh)
	}
	return n
}

// Close closes the engine and its database.
func (e *Engine) Close() error { return e.store.Close() }

// Store exposes the catalog layer (admin operations, diagnostics).
func (e *Engine) Store() *catalog.Store { return e.store }

// Degraded reports the underlying store's sticky read-only state: nil
// while healthy, the poisoning fault (wrapping vstore.ErrReadOnly) once a
// transactional write fault has forced the store read-only. Reads and
// searches keep serving the last committed snapshot; mutations fail fast
// until the process restarts and recovery settles durable state.
func (e *Engine) Degraded() error { return e.store.DB().Degraded() }

func (e *Engine) workers() int {
	if e.opts.Workers > 0 {
		return e.opts.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// IngestFrames encodes frames as a CVJ container and ingests it. A frame
// that fails JPEG encoding aborts here, deterministically naming the first
// failing frame, before any database transaction begins.
func (e *Engine) IngestFrames(name string, frames []*imaging.Image, fps int) (*IngestResult, error) {
	return e.IngestFramesCtx(context.Background(), name, frames, fps)
}

// IngestFramesCtx is IngestFrames under a request context: the ingest's
// decode loop checks cancellation between frames (the encode itself is
// in-memory and quick), so aborting a corpus load stops within one frame
// and commits nothing for the in-flight video.
func (e *Engine) IngestFramesCtx(ctx context.Context, name string, frames []*imaging.Image, fps int) (*IngestResult, error) {
	if len(frames) == 0 {
		return nil, errors.New("core: no frames to ingest")
	}
	container, err := cvj.EncodeBytes(frames, fps, e.opts.JPEGQuality)
	if err != nil {
		return nil, fmt.Errorf("core: ingest %q: %w", name, err)
	}
	return e.ingestStream(ctx, name, bytes.NewReader(container))
}

// IngestVideo runs the full ingest pipeline on an in-memory CVJ container.
// It is a thin wrapper over the streaming path (see IngestVideoStream).
func (e *Engine) IngestVideo(name string, container []byte) (*IngestResult, error) {
	return e.ingestStream(context.Background(), name, bytes.NewReader(container))
}

// IngestVideoStream runs the full ingest pipeline directly from a
// container byte stream: frames are decoded one at a time, §4.1 key-frame
// selection runs as they arrive, and each selected key frame is handed to
// a bounded worker pool that extracts features (§4.3–4.8) and the §4.2
// range bucket while later frames are still being decoded. Non-key frames
// are never retained, so ingest memory is proportional to the number of
// key frames (plus the compressed container bytes), not the number of
// frames. Stored key-frame images and the key-frame stream reuse the
// container's original JPEG records; the §4.1 selection signature is
// installed into each key frame's descriptor set instead of being
// recomputed. See DESIGN.md ("Streamed ingest").
func (e *Engine) IngestVideoStream(name string, r io.Reader) (*IngestResult, error) {
	return e.ingestStream(context.Background(), name, r)
}

// IngestVideoStreamCtx is IngestVideoStream under a request context: the
// decode loop checks cancellation between frames, so an abort takes effect
// within one decode iteration, discards the staged spool pages and commits
// nothing — the store is untouched, as if the request never arrived.
func (e *Engine) IngestVideoStreamCtx(ctx context.Context, name string, r io.Reader) (*IngestResult, error) {
	return e.ingestStream(ctx, name, r)
}

// kfWork carries one selected key frame through the extraction pool.
type kfWork struct {
	frameIndex int
	jpeg       []byte                   // original container record, stored verbatim
	scaled     *imaging.Image           // analysis raster; dropped after extraction
	sig        *features.NaiveSignature // §4.1 selection-time signature, reused
	set        *features.Set            // written by exactly one pool worker
	bucket     rangeindex.Range
}

// streamFrameSource adapts a cvj.Reader to key-frame selection. Each frame
// is rescaled to the 300×300 analysis raster exactly once — into a pooled
// raster (see rasterPool), so steady-state decoding of non-key frames
// allocates no raster memory — and handed to selection pre-scaled
// (ExtractNaive samples analysis-sized rasters directly, with no further
// rescale); the frame's original JPEG record is retained until the next
// read so ExtractStream's emit callback — which runs before the next read
// — can claim it for storage. Every decoded record is also appended to the
// spooled container writer, so the compressed bytes land in blob pages as
// they arrive. Full-resolution decodes are dropped immediately;
// non-key-frame rasters return to the pool via the extractor's Recycle
// hook.
type streamFrameSource struct {
	ctx  context.Context
	cr   *cvj.Reader
	cw   *cvj.Writer // re-assembles container bytes into the staged blob
	jpeg []byte      // latest frame's original record bytes
	pool *rasterPool
}

func (s *streamFrameSource) Next() (*imaging.Image, error) {
	// Cancellation is checked once per decode iteration, so an aborted
	// request stops within one frame of work.
	if err := s.ctx.Err(); err != nil {
		return nil, err
	}
	f, err := s.cr.NextFrame()
	if err != nil {
		return nil, err // io.EOF passes through to end selection
	}
	if err := s.cw.WriteJPEG(f.JPEG); err != nil {
		return nil, err
	}
	s.jpeg = f.JPEG
	if f.Image.W == features.AnalysisSize && f.Image.H == features.AnalysisSize {
		return f.Image, nil // already analysis-sized; never pooled
	}
	return f.Image.RescaleInto(s.pool.get(), features.AnalysisSize, features.AnalysisSize), nil
}

// ingestStream is the shared ingest pipeline behind IngestVideo and
// IngestVideoStream(Ctx). It runs in two phases so concurrent clients
// only serialize on a short commit section, never on the expensive work:
//
//  1. Stage — container records are decoded, appended to a *staged* blob
//     chain (vstore.NewStagedBlobWriter: fresh file-extension pages
//     written outside any transaction and outside the single-writer
//     lock), §4.1 key-frame selection runs as frames arrive and feature
//     extraction overlaps in a bounded worker pool. N clients decode,
//     extract and spool fully concurrently. The compressed container
//     never sits in memory — peak memory is O(key frames) + one page per
//     staged chain.
//
//  2. Commit — a single transaction adopts the staged chains (their pages
//     are WAL-logged at commit exactly like spooled pages), inserts the
//     VIDEO_STORE and KEY_FRAMES rows and commits. Only this section
//     takes the writer lock, so its duration is proportional to the row
//     count, not the upload size. The cache entries publish atomically
//     under the engine lock afterwards — no search observes a partially
//     published video.
//
// All failure paths run on the decode loop, so errors are deterministic —
// the first failing frame in stream order wins — and every early exit
// (including context cancellation, checked once per decode iteration)
// discards the staged chains: their pages become unreachable file
// garbage and nothing commits.
func (e *Engine) ingestStream(ctx context.Context, name string, r io.Reader) (*IngestResult, error) {
	fail := func(err error) (*IngestResult, error) {
		return nil, fmt.Errorf("core: ingest %q: %w", name, err)
	}
	if strings.TrimSpace(name) == "" {
		return fail(ErrEmptyName)
	}
	cr, err := cvj.NewReader(r)
	if err != nil {
		return fail(err) // header errors never pay for staging
	}
	db := e.store.DB()
	vw, err := db.NewStagedBlobWriter()
	if err != nil {
		return fail(err)
	}
	defer vw.Discard() // no-op once adopted by the commit transaction
	cw, err := cvj.NewWriter(vw, cr.FPS())
	if err != nil {
		return fail(err)
	}

	// Bounded worker pool: feature extraction of already-selected key
	// frames overlaps the decode of later frames. Workers share pooled
	// analysis-plane buffers and have no failure paths; the channel bound
	// keeps the decode loop from racing ahead of extraction.
	workers := e.workers()
	jobs := make(chan *kfWork, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := range jobs {
				p := features.AcquirePlanes(w.scaled)
				w.set = p.ExtractAllWithNaive(w.sig)
				w.bucket = BucketFromPlanes(p)
				p.Release()
				e.rasters.put(w.scaled) // no-op unless pool-owned
				w.scaled = nil          // retain only descriptors + original JPEG
			}
		}()
	}

	var works []*kfWork
	src := &streamFrameSource{ctx: ctx, cr: cr, cw: cw, pool: e.rasters}
	kex := keyframe.Extractor{Threshold: e.opts.KeyframeThreshold, Recycle: e.rasters.put}
	selErr := kex.ExtractStream(src, func(k *keyframe.KeyFrame) error {
		w := &kfWork{frameIndex: k.Index, jpeg: src.jpeg, scaled: k.Image, sig: k.Signature}
		works = append(works, w)
		jobs <- w
		return nil
	})
	close(jobs)
	wg.Wait()
	if selErr != nil {
		return fail(selErr)
	}
	if err := cw.Close(); err != nil {
		return fail(err)
	}
	videoRef, err := vw.Close()
	if err != nil {
		return fail(err)
	}

	// Key-frame-only stream (the VIDEO_STORE.STREAM column), assembled
	// from the container's original JPEG records — no decode→re-encode
	// generation loss — and staged the same way.
	kfJpegs := make([][]byte, len(works))
	for i, w := range works {
		kfJpegs[i] = w.jpeg
	}
	sw, err := db.NewStagedBlobWriter()
	if err != nil {
		return fail(err)
	}
	defer sw.Discard()
	if err := cvj.EncodeRaw(sw, kfJpegs, cr.FPS()); err != nil {
		return fail(err)
	}
	streamRef, err := sw.Close()
	if err != nil {
		return fail(err)
	}
	// Last cancellation point before the commit section: a request
	// cancelled during staging must never reach the writer lock.
	if err := ctx.Err(); err != nil {
		return fail(err)
	}
	if e.ingestHook != nil {
		e.ingestHook("staged", name)
	}

	// Commit section: adopt the staged chains, write the rows, commit.
	// This is the only part of ingest that serializes between clients.
	tx, err := e.store.Begin()
	if err != nil {
		return fail(err)
	}
	if e.ingestHook != nil {
		e.ingestHook("in-commit", name)
	}
	if err := tx.AdoptStaged(vw); err != nil {
		tx.Abort()
		return fail(err)
	}
	if err := tx.AdoptStaged(sw); err != nil {
		tx.Abort()
		return fail(err)
	}
	v := &catalog.Video{Name: name, VideoRef: videoRef, StreamRef: streamRef, DoStore: time.Unix(0, 0).UTC()}
	res, entries, err := e.insertIngestRows(tx, name, v, cr.FramesRead(), works)
	if err != nil {
		tx.Abort()
		return fail(err)
	}
	if err := tx.Commit(); err != nil {
		return fail(err)
	}
	e.publishEntries(v.ID, name, entries)
	return res, nil
}

// insertIngestRows writes one ingested video's VIDEO_STORE and KEY_FRAMES
// rows inside tx and builds the matching (not yet published) cache
// entries.
func (e *Engine) insertIngestRows(tx *vstore.Txn, name string, v *catalog.Video, numFrames int, works []*kfWork) (*IngestResult, []*frameEntry, error) {
	videoID, err := e.store.InsertVideo(tx, v)
	if err != nil {
		return nil, nil, err
	}
	res := &IngestResult{VideoID: videoID, NumFrames: numFrames}
	newEntries := make([]*frameEntry, 0, len(works))
	for _, w := range works {
		row := &catalog.KeyFrame{
			Name:         fmt.Sprintf("%s#%04d", name, w.frameIndex),
			Image:        w.jpeg,
			Min:          w.bucket.Min,
			Max:          w.bucket.Max,
			SCH:          w.set.Histogram.String(),
			GLCM:         w.set.GLCM.String(),
			Gabor:        w.set.Gabor.String(),
			Tamura:       w.set.Tamura.String(),
			ACC:          w.set.Correlogram.String(),
			Naive:        w.set.Naive.String(),
			Regions:      w.set.Regions.String(),
			MajorRegions: w.set.Regions.Major,
			VideoID:      videoID,
			FrameIndex:   w.frameIndex,
		}
		id, err := e.store.InsertKeyFrame(tx, row)
		if err != nil {
			return nil, nil, err
		}
		res.KeyFrameIDs = append(res.KeyFrameIDs, id)
		newEntries = append(newEntries, &frameEntry{
			id:       id,
			videoID:  videoID,
			frameIdx: w.frameIndex,
			bucket:   w.bucket,
			set:      w.set,
		})
	}
	return res, newEntries, nil
}

// publishEntries makes a committed video's key frames scoreable.
func (e *Engine) publishEntries(videoID int64, name string, entries []*frameEntry) {
	e.mu.Lock()
	for _, en := range entries {
		e.putEntry(en)
	}
	e.vname[videoID] = name
	e.mu.Unlock()
}

// storeIngest commits one ingested video — VIDEO_STORE row, KEY_FRAMES
// rows, search-cache entries — in a single transaction, from fully
// buffered container bytes (the reference path).
func (e *Engine) storeIngest(name string, container, stream []byte, numFrames int, works []*kfWork) (*IngestResult, error) {
	tx, err := e.store.Begin()
	if err != nil {
		return nil, err
	}
	v := &catalog.Video{Name: name, Video: container, Stream: stream, DoStore: time.Unix(0, 0).UTC()}
	res, entries, err := e.insertIngestRows(tx, name, v, numFrames, works)
	if err != nil {
		tx.Abort()
		return nil, err
	}
	if err := tx.Commit(); err != nil {
		return nil, err
	}
	e.publishEntries(v.ID, name, entries)
	return res, nil
}

// IngestVideoReference is the retained in-memory reference ingest: decode
// every frame up front, select key frames in batch, then extract features
// sequentially from the full-resolution frames with fresh (unpooled)
// analysis planes. It produces bit-identical stored rows to the streamed
// pipeline and exists as its equivalence and benchmark baseline, mirroring
// SearchWithSetReference and features.ExtractAllReference.
func (e *Engine) IngestVideoReference(name string, container []byte) (*IngestResult, error) {
	fail := func(err error) (*IngestResult, error) {
		return nil, fmt.Errorf("core: ingest %q: %w", name, err)
	}
	if strings.TrimSpace(name) == "" {
		return fail(ErrEmptyName)
	}
	cr, err := cvj.NewReader(bytes.NewReader(container))
	if err != nil {
		return fail(err)
	}
	var frames []*imaging.Image
	var jpegs [][]byte
	for {
		f, err := cr.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fail(err)
		}
		frames = append(frames, f.Image)
		jpegs = append(jpegs, f.JPEG)
	}
	kex := keyframe.Extractor{Threshold: e.opts.KeyframeThreshold}
	kfs, err := kex.Extract(frames)
	if err != nil {
		return fail(err)
	}
	works := make([]*kfWork, len(kfs))
	kfJpegs := make([][]byte, len(kfs))
	for i, k := range kfs {
		planes := features.NewPlanes(k.Image)
		works[i] = &kfWork{
			frameIndex: k.Index,
			jpeg:       jpegs[k.Index],
			sig:        k.Signature,
			set:        planes.ExtractAll(),
			bucket:     BucketFromPlanes(planes),
		}
		kfJpegs[i] = jpegs[k.Index]
	}
	stream, err := cvj.EncodeRawBytes(kfJpegs, cr.FPS())
	if err != nil {
		return fail(err)
	}
	return e.storeIngest(name, container, stream, len(frames), works)
}

// DeleteVideo removes a video and its key frames (admin use case). A
// missing ID fails with ErrNotFound before anything is deleted.
func (e *Engine) DeleteVideo(videoID int64) error {
	tx, err := e.store.Begin()
	if err != nil {
		return err
	}
	if _, ok, err := e.store.GetVideoInfo(tx, videoID); err != nil {
		tx.Abort()
		return err
	} else if !ok {
		tx.Abort()
		return fmt.Errorf("core: delete video %d: %w", videoID, ErrNotFound)
	}
	if err := e.store.DeleteVideo(tx, videoID); err != nil {
		tx.Abort()
		return err
	}
	if err := tx.Commit(); err != nil {
		return err
	}
	e.mu.Lock()
	for si, sh := range e.shards {
		for id, en := range sh {
			if en.videoID == videoID {
				delete(sh, id)
				slot := en.slot
				e.arenas[si].remove(en)
				e.cells[si].onRemove(e.arenas[si], slot)
				e.index.Remove(id, en.bucket)
			}
		}
	}
	delete(e.vname, videoID)
	e.mu.Unlock()
	return nil
}

// warmCache loads every stored key frame's feature strings into parsed
// descriptor sets. It is called lazily by searches and is idempotent. The
// warm flag is checked under the read lock first so steady-state searches
// never contend on the write lock.
func (e *Engine) warmCache() error {
	e.mu.RLock()
	warm := e.warm
	e.mu.RUnlock()
	if warm {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.warm {
		return nil
	}
	err := e.store.ScanKeyFrames(nil, func(k *catalog.KeyFrame) (bool, error) {
		if en := e.getEntry(k.ID); en != nil {
			return true, nil
		}
		en, err := entryFromRow(k)
		if err != nil {
			return false, err
		}
		e.putEntry(en)
		return true, nil
	})
	if err != nil {
		return err
	}
	vids, err := e.store.ListVideos(nil)
	if err != nil {
		return err
	}
	for _, v := range vids {
		e.vname[v.ID] = v.Name
	}
	e.warm = true
	return nil
}

// entryFromRow parses a stored key frame's feature strings.
func entryFromRow(k *catalog.KeyFrame) (*frameEntry, error) {
	set := &features.Set{}
	for _, f := range []struct {
		kind features.Kind
		s    string
	}{
		{features.KindHistogram, k.SCH},
		{features.KindGLCM, k.GLCM},
		{features.KindGabor, k.Gabor},
		{features.KindTamura, k.Tamura},
		{features.KindCorrelogram, k.ACC},
		{features.KindNaive, k.Naive},
		{features.KindRegions, k.Regions},
	} {
		if f.s == "" {
			continue
		}
		d, err := features.Parse(f.kind, f.s)
		if err != nil {
			return nil, fmt.Errorf("core: key frame %d: %w", k.ID, err)
		}
		if err := set.Put(d); err != nil {
			return nil, err
		}
	}
	return &frameEntry{
		id:       k.ID,
		videoID:  k.VideoID,
		frameIdx: k.FrameIndex,
		bucket:   k.Range(),
		set:      set,
	}, nil
}

// QueryBucket computes the §4.2 range bucket of a query frame.
func QueryBucket(im *imaging.Image) rangeindex.Range {
	hist := im.Rescale(features.AnalysisSize, features.AnalysisSize).GrayHistogram()
	min, max := rangeindex.AssignFaithful(&hist)
	return rangeindex.Range{Min: min, Max: max}
}

// BucketFromPlanes computes the §4.2 range bucket from shared analysis
// planes. The planes' gray histogram equals the rescaled frame's
// GrayHistogram, so the bucket matches QueryBucket without a second
// rescale.
func BucketFromPlanes(p *features.Planes) rangeindex.Range {
	min, max := rangeindex.AssignFaithful(&p.GrayHist)
	return rangeindex.Range{Min: min, Max: max}
}

func (opt *SearchOptions) kinds() []features.Kind {
	if len(opt.Kinds) == 0 {
		return features.AllKinds()
	}
	return opt.Kinds
}

// fixedKindScale brings each feature's raw distance to a comparable unit
// magnitude for use inside DTW cost functions, where per-candidate min-max
// normalisation is not available.
var fixedKindScale = map[features.Kind]float64{
	features.KindHistogram:   2,     // L1 over distributions is in [0,2]
	features.KindGLCM:        2,     // scaled L2, typically < 2
	features.KindGabor:       0.5,   // magnitude-normalised responses
	features.KindTamura:      2,     // scaled L2 + half-L1 directionality
	features.KindCorrelogram: 0.5,   // mean |Δ| of max-normalised cells
	features.KindRegions:     10,    // counts
	features.KindNaive:       11025, // 25 × max per-point distance (441)
}

// fixedScaleDistancePacked is fixedScaleDistance with the query side
// pre-packed and the stored side read from an arena slot — the same
// kernels the frame scan uses, so the DTW video search and the
// best-single-frame ablation pay no interface dispatch either. A kind
// missing on either side is skipped, mirroring the Set-based form.
//
//cbvrvet:noalloc
func fixedScaleDistancePacked(pq *PackedQuery, ar *shardArena, slot int32) float64 {
	var sum float64
	n := 0
	for i, kind := range pq.kinds {
		qv := pq.vec[i]
		if qv == nil || !ar.hasKind(kind, slot) {
			continue
		}
		sum += features.PairDistance(kind, qv, ar.row(kind, slot)) / fixedKindScale[kind]
		n++
	}
	if n == 0 {
		return 1e9
	}
	return sum / float64(n)
}

// fixedScaleDistance fuses per-kind distances with fixed scales (equal
// weights). Retained as the reference form of fixedScaleDistancePacked
// (equivalence-tested in arena_test.go) and for callers holding plain
// Sets.
func fixedScaleDistance(a, b *features.Set, kinds []features.Kind) float64 {
	var sum float64
	n := 0
	for _, kind := range kinds {
		da, db := a.Get(kind), b.Get(kind)
		if da == nil || db == nil {
			continue
		}
		d, err := da.DistanceTo(db)
		if err != nil {
			continue
		}
		sum += d / fixedKindScale[kind]
		n++
	}
	if n == 0 {
		return 1e9
	}
	return sum / float64(n)
}

// ExtractQuerySets is a helper for evaluation harnesses: extract
// descriptor sets for a batch of frames in parallel.
func (e *Engine) ExtractQuerySets(frames []*imaging.Image) []*features.Set {
	out := make([]*features.Set, len(frames))
	parallelFor(len(frames), e.workers(), func(i int) {
		out[i] = features.ExtractAllShared(frames[i])
	})
	return out
}

// CacheSize reports the number of cached (scoreable) key frames.
func (e *Engine) CacheSize() (int, error) {
	if err := e.warmCache(); err != nil {
		return 0, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.numCached(), nil
}

// NumShards reports the fixed search-shard count chosen at Open.
func (e *Engine) NumShards() int { return len(e.shards) }
