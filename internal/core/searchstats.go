// Search work accounting: per-call SearchStats for the evaluation
// harness and benchmarks, plus the engine-wide atomic tally the stats
// surfaces (cbvrctl stats, the server's /api/v1/stats) report.
package core

import (
	"context"
	"sync/atomic"

	"cbvr/internal/features"
	"cbvr/internal/rangeindex"
)

// SearchStats counts the work one frame search performed across every
// shard. The pruning headline metrics derive from it: an exact sweep
// would have evaluated BaseRows × Kinds row kernels, the pruned pipeline
// paid RowEvals row kernels plus CellEvals centroid bounds.
type SearchStats struct {
	// Kinds is the number of requested descriptor kinds; K the requested
	// result bound.
	Kinds int `json:"kinds"`
	K     int `json:"k"`
	// BaseRows counts the candidate rows after §4.2 range pruning — the
	// rows an exact sweep scores. Candidates counts the rows this search
	// actually scored into the fusion phase.
	BaseRows   int64 `json:"base_rows"`
	Candidates int64 `json:"candidates"`
	// RowEvals counts per-kind row kernel evaluations; CellEvals counts
	// per-kind centroid lower-bound evaluations.
	RowEvals  int64 `json:"row_evals"`
	CellEvals int64 `json:"cell_evals"`
	// PrunedShards/ExactShards count non-empty shards by the path their
	// scan took.
	PrunedShards int `json:"pruned_shards"`
	ExactShards  int `json:"exact_shards"`
	// Brownout is the load-shedding level this search ran at (0 = the
	// exact configuration); see brownout.go.
	Brownout float64 `json:"brownout"`
}

// ExactEvals is the row-kernel count the exact sweep would have paid.
func (s SearchStats) ExactEvals() int64 { return s.BaseRows * int64(s.Kinds) }

// TotalEvals is the distance work the search actually paid: row kernels
// plus centroid bounds (a bound costs one pair kernel of its kind).
func (s SearchStats) TotalEvals() int64 { return s.RowEvals + s.CellEvals }

// EvalRatio is exact work over paid work (>= 1 means the pruner saved
// evaluations; the ISSUE target is >= 10 at recall >= 0.95).
func (s SearchStats) EvalRatio() float64 {
	t := s.TotalEvals()
	if t == 0 {
		return 1
	}
	return float64(s.ExactEvals()) / float64(t)
}

// SearchWithSetStats is SearchWithSet with the work counters surfaced —
// the evaluation harness' entry point for recall-vs-work curves.
func (e *Engine) SearchWithSetStats(qset *features.Set, qbucket rangeindex.Range, opt SearchOptions) ([]Match, SearchStats, error) {
	return e.searchSetStats(context.Background(), qset, qbucket, opt)
}

// searchTally accumulates SearchStats across every search on the engine.
// Written with atomics after the scan (outside the engine lock), read by
// the stats surfaces at any time.
type searchTally struct {
	searches     atomic.Int64
	baseRows     atomic.Int64
	rowEvals     atomic.Int64
	cellEvals    atomic.Int64
	prunedShards atomic.Int64
	exactShards  atomic.Int64
	browned      atomic.Int64
}

func (t *searchTally) add(s *SearchStats) {
	t.searches.Add(1)
	t.baseRows.Add(s.BaseRows)
	t.rowEvals.Add(s.RowEvals)
	t.cellEvals.Add(s.CellEvals)
	t.prunedShards.Add(int64(s.PrunedShards))
	t.exactShards.Add(int64(s.ExactShards))
	if s.Brownout > 0 {
		t.browned.Add(1)
	}
}

// SearchTallySnapshot is a point-in-time copy of the engine's cumulative
// search work counters.
type SearchTallySnapshot struct {
	Searches     int64 `json:"searches"`
	BaseRows     int64 `json:"base_rows"`
	RowEvals     int64 `json:"row_evals"`
	CellEvals    int64 `json:"cell_evals"`
	PrunedShards int64 `json:"pruned_shards"`
	ExactShards  int64 `json:"exact_shards"`
	// BrownedSearches counts searches that ran at a brownout level > 0
	// (shrunken probe budget); the operational measure of how much load
	// shedding has cost in search quality.
	BrownedSearches int64 `json:"browned_searches"`
}

// SearchTally snapshots the cumulative per-engine search work counters.
func (e *Engine) SearchTally() SearchTallySnapshot {
	return SearchTallySnapshot{
		Searches:        e.tally.searches.Load(),
		BaseRows:        e.tally.baseRows.Load(),
		RowEvals:        e.tally.rowEvals.Load(),
		CellEvals:       e.tally.cellEvals.Load(),
		PrunedShards:    e.tally.prunedShards.Load(),
		ExactShards:     e.tally.exactShards.Load(),
		BrownedSearches: e.tally.browned.Load(),
	}
}
