package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"cbvr/internal/synthvid"
)

// manualDeadlineCtx is a context whose deadline fires exactly when the
// test says so — the deterministic stand-in for "the clock ran out while
// the work was mid-flight". Err reports context.DeadlineExceeded after
// expire, matching what context.WithDeadline produces.
type manualDeadlineCtx struct {
	context.Context
	done chan struct{}
	mu   sync.Mutex
	dead bool
}

func newManualDeadlineCtx() *manualDeadlineCtx {
	return &manualDeadlineCtx{Context: context.Background(), done: make(chan struct{})}
}

func (c *manualDeadlineCtx) Done() <-chan struct{} { return c.done }

func (c *manualDeadlineCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return context.DeadlineExceeded
	}
	return c.Context.Err()
}

func (c *manualDeadlineCtx) expire() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.dead {
		c.dead = true
		close(c.done)
	}
}

// countdownCtx expires after a fixed number of Err polls: the way to land
// a deadline exactly in the middle of the shard scan, whose only
// cancellation points are its per-shard Err checks.
type countdownCtx struct {
	context.Context
	mu        sync.Mutex
	remaining int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return context.DeadlineExceeded
	}
	c.remaining--
	return nil
}

// TestSearchDeadlineMidScan lands a deadline expiry in the middle of the
// sharded scan (after the first shard's cancellation check passes) and
// verifies the search surfaces context.DeadlineExceeded — the error the
// HTTP layer maps to 503 — and never a partial ranking.
func TestSearchDeadlineMidScan(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "clip", synthvid.Cartoon, 81)
	q := genVideo(synthvid.Cartoon, 81).Frames[0]

	// One Err poll survives (warm-up / first shard); the next sees the
	// deadline. Workers=1 serialises the shard loop so "mid-scan" is
	// deterministic, not a race between workers.
	ctx := &countdownCtx{Context: context.Background(), remaining: 1}
	_, err := eng.SearchFrameCtx(ctx, q, SearchOptions{Workers: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-scan deadline returned %v, want context.DeadlineExceeded", err)
	}

	// An already-expired real deadline behaves identically.
	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := eng.SearchFrameCtx(expired, q, SearchOptions{}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired-deadline search returned %v, want context.DeadlineExceeded", err)
	}

	// The engine still serves once the pressure is an old story.
	if _, err := eng.SearchFrameCtx(context.Background(), q, SearchOptions{}); err != nil {
		t.Fatalf("live search after deadline expiries: %v", err)
	}
}

// deadlineAfterReader expires a manualDeadlineCtx once n bytes have been
// read, then counts what is read afterwards.
type deadlineAfterReader struct {
	r           io.Reader
	n           int
	ctx         *manualDeadlineCtx
	fired       bool
	afterExpiry int
}

func (d *deadlineAfterReader) Read(p []byte) (int, error) {
	n, err := d.r.Read(p)
	if d.fired {
		d.afterExpiry += n
	} else {
		d.n -= n
		if d.n <= 0 {
			d.fired = true
			d.ctx.expire()
		}
	}
	return n, err
}

// TestIngestDeadlineMidDecode expires the request deadline part-way
// through the container decode: the ingest must stop within a decode
// iteration, surface context.DeadlineExceeded, and leave zero orphan rows
// on reopen — the mirror of TestIngestCtxCancelMidDecode for the deadline
// (rather than disconnect) flavour of abandonment.
func TestIngestDeadlineMidDecode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "deadline.db")
	eng, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := testContainer(t, synthvid.Sports, 13, 24)

	ctx := newManualDeadlineCtx()
	dr := &deadlineAfterReader{r: bytes.NewReader(raw), n: len(raw) / 3, ctx: ctx}
	if _, err := eng.IngestVideoStreamCtx(ctx, "doomed", dr); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline-expired ingest returned %v, want context.DeadlineExceeded", err)
	}
	if dr.afterExpiry > len(raw)/3 {
		t.Fatalf("read %d bytes after deadline expiry (container %d): abort was not within a decode iteration", dr.afterExpiry, len(raw))
	}

	vids, err := eng.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 0 {
		t.Fatalf("deadline-expired ingest left %d videos", len(vids))
	}
	if err := eng.Close(); err != nil {
		t.Fatalf("close after deadline-expired ingest: %v", err)
	}

	eng2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer eng2.Close()
	vids, err = eng2.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 0 {
		t.Fatalf("reopened store has %d orphan videos", len(vids))
	}
	if n, err := eng2.CacheSize(); err != nil || n != 0 {
		t.Fatalf("reopened cache: n=%d err=%v", n, err)
	}
	if _, err := eng2.IngestVideoStreamCtx(context.Background(), "retry", bytes.NewReader(raw)); err != nil {
		t.Fatalf("re-ingest after deadline expiry: %v", err)
	}
}
