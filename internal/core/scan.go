// Query-side packing and scratch for the batched arena scan, plus the
// exported surfaces BenchmarkScanArena drives: the raw kernel sweep
// (ScanArenaInto) and the retained interface-dispatch sweep it is
// measured against (ScanDispatchReference).
package core

import (
	"fmt"
	"sync"

	"cbvr/internal/features"
)

// PackedQuery carries one query descriptor set's kernel vectors, packed
// once per search (one backing array, one subslice per requested kind).
// vec[i] is nil when the set lacks kinds[i] — searchSet rejects that for
// frame searches, while the fixed-scale video paths skip the kind, the
// same way fixedScaleDistance skips nil descriptors.
type PackedQuery struct {
	kinds []features.Kind
	vec   [][]float64
}

// packQuery packs the requested kinds of a query set for the kernels.
func packQuery(qset *features.Set, kinds []features.Kind) *PackedQuery {
	total := 0
	for _, kind := range kinds {
		total += features.Stride(kind)
	}
	buf := make([]float64, 0, total)
	pq := &PackedQuery{kinds: kinds, vec: make([][]float64, len(kinds))}
	for i, kind := range kinds {
		d := qset.Get(kind)
		if d == nil {
			continue
		}
		start := len(buf)
		buf = d.AppendTo(buf)
		pq.vec[i] = buf[start:len(buf):len(buf)]
	}
	return pq
}

// PackQuery packs a query descriptor set for the batched kernels (nil
// kinds means all seven). Exported for the scan-phase benchmarks, which
// pack once outside the timed loop; searches pack internally.
func (e *Engine) PackQuery(qset *features.Set, kinds []features.Kind) *PackedQuery {
	if len(kinds) == 0 {
		kinds = features.AllKinds()
	}
	return packQuery(qset, kinds)
}

// scanScratch is one shard worker's reusable scan memory: the candidate
// gather, the kernel output column and the per-candidate distance rows.
// Pooled so steady-state searches allocate nothing per shard; released
// by searchSet once the ranking no longer aliases buf.
type scanScratch struct {
	sel   []*frameEntry
	rows  []int32
	buf   []float64 // candidate-major distance rows, len n*nk
	col   []float64 // kind-major kernel output, len n
	cands []scored

	// Cell-pruning scratch: per-cell lower bounds and the bound-sorted
	// cell visit order (see cells.go). Sized by growCells.
	cellLB  []float64
	cellOrd []int32
}

var scanScratchPool = sync.Pool{New: func() any { return new(scanScratch) }}

// grow readies the scratch for n candidates × nk kinds, reusing backing
// arrays across queries. buf and col grow independently: a pooled
// scratch can see any (n, nk) sequence (per-call Kinds subsets, shards
// of different sizes), so one capacity must never be inferred from the
// other.
func (s *scanScratch) grow(n, nk int) {
	if cap(s.sel) < n {
		s.sel = make([]*frameEntry, 0, n)
	}
	if cap(s.cands) < n {
		s.cands = make([]scored, n)
	}
	if cap(s.rows) < n {
		s.rows = make([]int32, 0, n)
	}
	s.sel = s.sel[:0]
	s.rows = s.rows[:0]
	s.cands = s.cands[:cap(s.cands)][:n]
	if cap(s.buf) < n*nk {
		s.buf = make([]float64, n*nk)
	}
	if cap(s.col) < n {
		s.col = make([]float64, n)
	}
	s.buf = s.buf[:n*nk]
	s.col = s.col[:n]
}

// growCells readies the per-cell bound scratch for nc cells.
func (s *scanScratch) growCells(nc int) {
	if cap(s.cellLB) < nc {
		s.cellLB = make([]float64, nc)
	}
	if cap(s.cellOrd) < nc {
		s.cellOrd = make([]int32, nc)
	}
	s.cellLB = s.cellLB[:nc]
	s.cellOrd = s.cellOrd[:nc]
}

// release drops entry references over the full backing arrays (so
// pooled scratch cannot keep deleted videos' descriptors alive past any
// query) and returns the scratch to the pool.
func (s *scanScratch) release() {
	sel := s.sel[:cap(s.sel)]
	for i := range sel {
		sel[i] = nil
	}
	cands := s.cands[:cap(s.cands)]
	for i := range cands {
		cands[i] = scored{}
	}
	scanScratchPool.Put(s)
}

// ScanArenaInto is the scan phase in isolation: the batched kernel sweep
// of every live arena row in every shard for the query's kinds, written
// into dist (per shard, per kind, contiguous candidate runs). It returns
// the number of candidate×kind distances produced and performs zero
// allocations — BenchmarkScanArena measures exactly this loop. dist must
// hold len(kinds) × CacheSize values.
//
//cbvrvet:noalloc
func (e *Engine) ScanArenaInto(pq *PackedQuery, dist []float64) (int, error) {
	if err := e.warmCache(); err != nil {
		return 0, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	c := 0
	for si := range e.arenas {
		ar := e.arenas[si]
		rows := ar.live
		if len(rows) == 0 {
			continue
		}
		for ki, kind := range pq.kinds {
			qv := pq.vec[ki]
			if qv == nil {
				return 0, fmt.Errorf("core: query lacks %v descriptor", kind)
			}
			if c+len(rows) > len(dist) {
				return 0, fmt.Errorf("core: dist buffer holds %d values, need more", len(dist))
			}
			out := dist[c : c+len(rows)]
			features.BatchDistance(kind, qv, ar.cols[kind], rows, out)
			if ar.missing[kind] > 0 {
				pres := ar.present[kind]
				for i, s := range rows {
					if !pres[s] {
						out[i] = missingDistance
					}
				}
			}
			c += len(rows)
		}
	}
	return c, nil
}

// ScanDispatchReference is the pre-arena scan shape retained as the
// kernel sweep's measured baseline: every cached entry × kind through
// the interface-dispatched DistanceTo, into the same dist layout as
// ScanArenaInto. Benchmark surface only.
func (e *Engine) ScanDispatchReference(qset *features.Set, kinds []features.Kind, dist []float64) (int, error) {
	if err := e.warmCache(); err != nil {
		return 0, err
	}
	if len(kinds) == 0 {
		kinds = features.AllKinds()
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	c := 0
	for si := range e.arenas {
		ar := e.arenas[si]
		for _, kind := range kinds {
			qd := qset.Get(kind)
			if qd == nil {
				return 0, fmt.Errorf("core: query lacks %v descriptor", kind)
			}
			for _, s := range ar.live {
				if c >= len(dist) {
					return 0, fmt.Errorf("core: dist buffer holds %d values, need more", len(dist))
				}
				cd := ar.ents[s].set.Get(kind)
				if cd == nil {
					dist[c] = missingDistance
					c++
					continue
				}
				d, err := qd.DistanceTo(cd)
				if err != nil {
					return 0, err
				}
				dist[c] = d
				c++
			}
		}
	}
	return c, nil
}
