package core

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"cbvr/internal/features"
	"cbvr/internal/rangeindex"
	"cbvr/internal/synthvid"
)

// requireBitIdentical asserts the arena pipeline's ranking equals the
// reference exactly — same IDs, same metadata, and bit-equal distances
// (==, not within epsilon). The kernels are constructed to reproduce
// DistanceTo bit for bit, so any drift here is an arena-maintenance bug.
func requireBitIdentical(t *testing.T, label string, got, want []Match) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d matches, reference has %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: rank %d = %+v, reference %+v", label, i, got[i], want[i])
		}
	}
}

// checkArenaAgainstReference runs every fusion mode at several worker
// counts for one query and requires bit identity with the naive
// reference scan.
func checkArenaAgainstReference(t *testing.T, eng *Engine, qset *features.Set, qbucket rangeindex.Range, label string) {
	t.Helper()
	for _, opt := range []SearchOptions{
		{K: 0, Fusion: FusionRRF, NoPruning: true},
		{K: 5, Fusion: FusionRRF},
		{K: 5, Fusion: FusionMinMax, NoPruning: true},
		{K: 3, Kinds: []features.Kind{features.KindGabor}, NoPruning: true},
	} {
		want, err := eng.SearchWithSetReference(qset, qbucket, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 0} {
			opt.Workers = workers
			got, err := eng.SearchWithSet(qset, qbucket, opt)
			if err != nil {
				t.Fatal(err)
			}
			requireBitIdentical(t, fmt.Sprintf("%s fusion=%d k=%d workers=%d", label, opt.Fusion, opt.K, workers), got, want)
		}
	}
}

// TestArenaChurnBitIdentity interleaves every arena mutation path —
// ingest (slot append and free-slot reuse), delete (swap-remove),
// reindex (in-place repack) — with concurrent searches, and asserts
// arena-vs-reference bit identity after every single mutation. Run under
// -race this also pins the locking contract around the shared live list
// and column buffers.
func TestArenaChurnBitIdentity(t *testing.T) {
	eng, err := Open(filepath.Join(t.TempDir(), "churn.db"), Options{SearchShards: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	seed := ingest(t, eng, "seed_sports", synthvid.Sports, 600)
	ingest(t, eng, "seed_news", synthvid.News, 601)
	v := genVideo(synthvid.Sports, 600)
	qset := eng.ExtractQuerySets(v.Frames[:1])[0]
	qbucket := QueryBucket(v.Frames[0])

	// Background searchers keep reading while the mutator churns; they
	// assert nothing about content (the mutator does that between
	// mutations) — they exist to race the arena reads.
	stop := make(chan struct{})
	var searchErr atomic.Value
	var wg sync.WaitGroup
	for s := 0; s < 3; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				opt := SearchOptions{K: 4, Fusion: Fusion(i % 2), NoPruning: i%2 == 0, Workers: s}
				if _, err := eng.SearchWithSet(qset, qbucket, opt); err != nil {
					searchErr.Store(err)
					return
				}
				if i%4 == 0 {
					if _, err := eng.BestSingleFrameVideoSearch([]*features.Set{qset}, SearchOptions{K: 2}); err != nil {
						searchErr.Store(err)
						return
					}
				}
			}
		}(s)
	}

	check := func(label string) {
		t.Helper()
		checkArenaAgainstReference(t, eng, qset, qbucket, label)
	}

	check("initial")
	var churnIDs []int64
	for round := 0; round < 4; round++ {
		cv := synthvid.Generate(synthvid.Movie, synthvid.Config{
			Width: 48, Height: 36, Frames: 6, Shots: 2, Seed: int64(700 + round),
		})
		res, err := eng.IngestFrames(fmt.Sprintf("churn_%d", round), cv.Frames, cv.FPS)
		if err != nil {
			t.Fatal(err)
		}
		churnIDs = append(churnIDs, res.VideoID)
		check(fmt.Sprintf("round %d after ingest", round))

		if _, err := eng.ReindexVideo(res.VideoID); err != nil {
			t.Fatal(err)
		}
		check(fmt.Sprintf("round %d after reindex", round))

		if round%2 == 1 {
			// Delete an older churn video: its slots go to the free list
			// and the next round's ingest must reuse them correctly.
			if err := eng.DeleteVideo(churnIDs[round-1]); err != nil {
				t.Fatal(err)
			}
			check(fmt.Sprintf("round %d after delete", round))
		}
	}
	if _, err := eng.ReindexVideo(seed.VideoID); err != nil {
		t.Fatal(err)
	}
	check("after seed reindex")

	close(stop)
	wg.Wait()
	if err := searchErr.Load(); err != nil {
		t.Fatal(err)
	}
}

// TestArenaSlotReuseAndConsistency checks the slot bookkeeping directly:
// delete frees slots, a following ingest recycles them instead of
// growing the columns, and the live/pos/free structures stay mutually
// consistent throughout.
func TestArenaSlotReuseAndConsistency(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "base", synthvid.Sports, 620)

	arenaState := func() (slots, live, free int) {
		eng.mu.RLock()
		defer eng.mu.RUnlock()
		for _, ar := range eng.arenas {
			slots += len(ar.ents)
			live += len(ar.live)
			free += len(ar.free)
		}
		return
	}
	checkConsistent := func() {
		t.Helper()
		eng.mu.RLock()
		defer eng.mu.RUnlock()
		for si, ar := range eng.arenas {
			if len(ar.live)+len(ar.free) != len(ar.ents) {
				t.Fatalf("shard %d: %d live + %d free != %d slots", si, len(ar.live), len(ar.free), len(ar.ents))
			}
			for li, slot := range ar.live {
				if ar.pos[slot] != int32(li) {
					t.Fatalf("shard %d: live[%d]=%d but pos=%d", si, li, slot, ar.pos[slot])
				}
				en := ar.ents[slot]
				if en == nil || en.slot != slot {
					t.Fatalf("shard %d slot %d: entry %+v", si, slot, en)
				}
			}
			for _, slot := range ar.free {
				if ar.ents[slot] != nil || ar.pos[slot] != noSlot {
					t.Fatalf("shard %d: free slot %d still wired", si, slot)
				}
				for k := range ar.present {
					if ar.present[k][slot] {
						t.Fatalf("shard %d: free slot %d still present for kind %d", si, slot, k)
					}
				}
			}
			for k := range ar.missing {
				miss := 0
				for _, slot := range ar.live {
					if !ar.present[k][slot] {
						miss++
					}
				}
				if miss != ar.missing[k] {
					t.Fatalf("shard %d kind %d: missing=%d, counted %d", si, k, ar.missing[k], miss)
				}
			}
		}
	}

	checkConsistent()
	slots0, live0, _ := arenaState()
	if live0 == 0 || slots0 != live0 {
		t.Fatalf("baseline: %d slots, %d live", slots0, live0)
	}

	res, err := eng.IngestFrames("tmp", genVideo(synthvid.Movie, 621).Frames, 12)
	if err != nil {
		t.Fatal(err)
	}
	checkConsistent()
	if err := eng.DeleteVideo(res.VideoID); err != nil {
		t.Fatal(err)
	}
	checkConsistent()
	slots1, live1, free1 := arenaState()
	if live1 != live0 || free1 != len(res.KeyFrameIDs) {
		t.Fatalf("after delete: %d live (want %d), %d free (want %d)", live1, live0, free1, len(res.KeyFrameIDs))
	}

	// Re-ingesting a clip with no more key frames than were freed must
	// not grow the columns: every new entry lands in a recycled slot.
	res2, err := eng.IngestFrames("tmp2", genVideo(synthvid.Movie, 621).Frames, 12)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.KeyFrameIDs) != len(res.KeyFrameIDs) {
		t.Fatalf("re-ingest yielded %d key frames, want %d", len(res2.KeyFrameIDs), len(res.KeyFrameIDs))
	}
	checkConsistent()
	slots2, _, free2 := arenaState()
	if slots2 != slots1 || free2 != 0 {
		t.Fatalf("after re-ingest: %d slots (want %d, no growth), %d free (want 0)", slots2, slots1, free2)
	}
}

// TestArenaMissingDescriptor pins the missing-descriptor path end to
// end: an entry whose set lacks kinds must rank by missingDistance in
// both pipelines identically, via the present flags on the arena side.
func TestArenaMissingDescriptor(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "full", synthvid.Sports, 630)
	v := genVideo(synthvid.Sports, 630)
	qset := eng.ExtractQuerySets(v.Frames[:1])[0]
	qbucket := QueryBucket(v.Frames[0])
	if err := eng.warmCache(); err != nil {
		t.Fatal(err)
	}

	// Install a partial entry the way a sparse stored row would load:
	// only two of the seven descriptors present.
	partial := &features.Set{Histogram: qset.Histogram, GLCM: qset.GLCM}
	eng.mu.Lock()
	eng.putEntry(&frameEntry{id: 1 << 40, videoID: 999, frameIdx: 0, bucket: qbucket, set: partial})
	eng.vname[999] = "partial"
	eng.mu.Unlock()

	checkArenaAgainstReference(t, eng, qset, qbucket, "partial entry")

	// A kinds subset that only touches the missing descriptors must rank
	// the partial entry last in both pipelines.
	opt := SearchOptions{K: 0, Kinds: []features.Kind{features.KindGabor}, NoPruning: true}
	want, err := eng.SearchWithSetReference(qset, qbucket, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.SearchWithSet(qset, qbucket, opt)
	if err != nil {
		t.Fatal(err)
	}
	requireBitIdentical(t, "gabor-only with partial entry", got, want)
	if last := got[len(got)-1]; last.KeyFrameID != 1<<40 || last.Distance != missingDistance {
		t.Fatalf("partial entry not ranked last at missingDistance: %+v", last)
	}
}

// TestScanScratchGrowShapes pins the pooled-scratch capacity contract:
// buf and col grow independently, so a scratch warmed by a many-kind /
// few-candidate scan must survive a fewer-kind / more-candidate reuse
// (regression: col's capacity was inferred from buf's, panicking on the
// {7 kinds, 10 cands} → {1 kind, 50 cands} sequence).
func TestScanScratchGrowShapes(t *testing.T) {
	s := &scanScratch{}
	for _, shape := range [][2]int{{10, 7}, {50, 1}, {1, 7}, {200, 2}, {3, 3}} {
		n, nk := shape[0], shape[1]
		s.grow(n, nk)
		if len(s.buf) != n*nk || len(s.col) != n || len(s.cands) != n {
			t.Fatalf("grow(%d,%d): buf %d col %d cands %d", n, nk, len(s.buf), len(s.col), len(s.cands))
		}
		s.buf[n*nk-1] = 1
		s.col[n-1] = 1
	}
}

// TestFixedScaleDistancePackedMatchesSet checks the DTW / best-frame
// cost path: the packed-kernel fixed-scale distance equals the Set-based
// form bit for bit for every cached entry, including kind subsets.
func TestFixedScaleDistancePackedMatchesSet(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "a", synthvid.Sports, 640)
	ingest(t, eng, "b", synthvid.Cartoon, 641)
	v := genVideo(synthvid.News, 642)
	qset := eng.ExtractQuerySets(v.Frames[:1])[0]
	if err := eng.warmCache(); err != nil {
		t.Fatal(err)
	}

	eng.mu.RLock()
	defer eng.mu.RUnlock()
	for _, kinds := range [][]features.Kind{
		features.AllKinds(),
		{features.KindHistogram, features.KindNaive},
		{features.KindGLCM},
	} {
		pq := packQuery(qset, kinds)
		n := 0
		for si, ar := range eng.arenas {
			for _, slot := range ar.live {
				en := ar.ents[slot]
				want := fixedScaleDistance(qset, en.set, kinds)
				if got := fixedScaleDistancePacked(pq, eng.arenas[si], slot); got != want {
					t.Fatalf("kinds=%v entry %d: packed %.17g != set %.17g", kinds, en.id, got, want)
				}
				n++
			}
		}
		if n == 0 {
			t.Fatal("no cached entries")
		}
	}
}
