// Coarse-quantized candidate pruning: per-shard cell indexes over the
// packed arena columns that let scanShard batch kernels over a surviving
// subset of cells instead of every live row.
//
// Each shard's rows are grouped into cells by a deterministic coarse
// k-means over the naive-signature column (the cheapest kind that still
// tracks visual identity: 75 floats vs 674 for the full row). Every cell
// carries, for every descriptor kind, the member mean vector and a radius
// — the maximum distance from any member that stores the kind to that
// mean. All seven kind distances are metrics (see features/bounds.go),
// so for a query q the triangle inequality turns each (centroid, radius)
// pair into a certified lower bound on the distance from q to any member,
// and the scan can rank cells by bound before touching their rows:
//
//   - single-kind searches sweep cells in ascending bound order and stop
//     as soon as the bound exceeds the worst kept top-K distance — an
//     exact search, bit-identical to the full sweep (search_test.go and
//     cells_test.go pin this).
//   - fused multi-kind searches cannot terminate exactly (rank fusion
//     depends on every candidate's rank, not just the top K), so they
//     probe the best-bounded cells up to a row budget and fuse over the
//     probed rows; eval/recall.go certifies recall against the exact
//     reference.
//
// Whenever bounds cannot guarantee recall, scanShard falls back to the
// exact full sweep: shards below MinShardRows, unbuilt indexes, K <= 0
// (full-ranking queries), unsupported kinds, or probe budgets that reach
// the whole candidate set anyway.
//
// Churn contract: the index mutates only under the engine write lock, on
// the same paths that mutate the arenas — incremental nearest-centroid
// assignment on putEntry, detach on delete's swap-remove, detach +
// reassign on reindex repack — and rebuilds from scratch (still under the
// write lock, on the mutating call) once enough mutations accumulate, so
// drifted centroids cannot decay pruning power without bound. Radii only
// ever widen between rebuilds, so bounds stay sound no matter how stale
// the centroids are. No new locks: cbvrvet lockorder sees the same
// Engine.mu ordering as before.
//
// Rebuilds are pure functions of shard contents: rows are processed in
// key-frame-ID order, seeding, Lloyd iterations and all tie-breaks are
// index-deterministic, so the same set of entries yields the same cells
// regardless of insertion order (FuzzCellRebuildDeterminism pins this).
package core

import (
	"math"
	"slices"

	"cbvr/internal/features"
)

// CellOptions tunes the per-shard candidate pruner. The zero value means
// defaults; Disabled turns the pruner off entirely (every search takes
// the exact sweep).
type CellOptions struct {
	// Disabled turns cell pruning off: no indexes are built and every
	// search scans exactly as before the pruner existed.
	Disabled bool
	// TargetCellSize is the intended rows-per-cell at rebuild time
	// (default 96). The cell count is ceil(rows / TargetCellSize).
	TargetCellSize int
	// MinShardRows is the per-shard candidate floor below which searches
	// always take the exact sweep (default 512): tiny shards gain nothing
	// from pruning and the exact path keeps small-corpus results
	// bit-identical to the reference by construction.
	MinShardRows int
	// ProbeFraction is the fraction of a shard's candidates a fused
	// multi-kind search scores, taken from the best-ranked cells
	// (default 0.07). Higher is slower and more exact.
	ProbeFraction float64
	// MinProbeRows floors the fused probe budget (default 400): rank
	// fusion over a probed subset drifts hardest on mid-size shards,
	// where tail-rank compression noise rivals the head's score gaps, so
	// small shards probe proportionally more to hold the recall floor.
	MinProbeRows int
	// RebuildFraction triggers a full deterministic rebuild once the
	// number of mutations since the last build exceeds this fraction of
	// the shard's live rows (default 0.35). Rebuild cost is amortised
	// geometrically against the churn that made it necessary.
	RebuildFraction float64
}

func (o CellOptions) withDefaults() CellOptions {
	if o.TargetCellSize <= 0 {
		o.TargetCellSize = 96
	}
	if o.MinShardRows <= 0 {
		o.MinShardRows = 512
	}
	if o.ProbeFraction <= 0 {
		o.ProbeFraction = 0.07
	}
	if o.MinProbeRows <= 0 {
		o.MinProbeRows = 400
	}
	if o.RebuildFraction <= 0 {
		o.RebuildFraction = 0.35
	}
	return o
}

const (
	// cellRouteKind is the kind rows are clustered on. The naive
	// signature is the cheapest column (75 floats) that still varies with
	// overall frame appearance, so routing on it keeps rebuild and
	// incremental-assignment cost low while the per-kind radii make the
	// resulting cells usable for bounds in every kind.
	cellRouteKind = features.KindNaive
	// cellFitSampleMax caps the rows the Lloyd iterations fit on; the
	// final assignment pass still visits every row.
	cellFitSampleMax = 2048
	// cellLloydIters fixes the k-means iteration count — fixed, not
	// convergence-tested, so rebuild cost and determinism are exact.
	cellLloydIters = 4
	// maxCellsPerShard bounds the per-cell metadata (and the per-query
	// bound computation) for huge shards.
	maxCellsPerShard = 1024
)

// shardCells is one shard's cell index. All fields are guarded by the
// engine lock exactly like the shard's arena: mutations (assign, detach,
// rebuild) require the write lock, scans read under the read lock.
type shardCells struct {
	cfg CellOptions

	built bool
	n     int // number of cells

	// cent[k] packs cell ci's kind-k centroid at [ci*stride,(ci+1)*stride);
	// rad[k][ci] bounds any kind-k-bearing member's distance to it.
	// A cell with no member storing kind k has rad +Inf (bound 0: never
	// prunes, never lies).
	cent [features.NumKinds][]float64
	rad  [features.NumKinds][]float64

	members [][]int32 // cell -> member slots
	cellOf  []int32   // slot -> cell; noSlot while free or unassigned
	posIn   []int32   // slot -> index into members[cellOf[slot]]

	since   int // mutations since the last rebuild
	rebuilt int // completed rebuilds (stats)
}

func newShardCells(cfg CellOptions) *shardCells {
	return &shardCells{cfg: cfg}
}

// usable reports whether a scan over n0 candidate rows may consult the
// cell index at all. The exact fallback triggers here for tiny shards,
// unbuilt or disabled indexes and full-ranking (K <= 0) queries.
func (c *shardCells) usable(opt *SearchOptions, n0 int) bool {
	return c != nil && c.built && !c.cfg.Disabled && !opt.NoCellPruning &&
		opt.K > 0 && n0 >= c.cfg.MinShardRows && c.n > 0
}

// ensureSlots grows the slot-indexed tables to cover the arena's slots.
func (c *shardCells) ensureSlots(nSlots int) {
	for len(c.cellOf) < nSlots {
		c.cellOf = append(c.cellOf, noSlot)
		c.posIn = append(c.posIn, noSlot)
	}
}

// centRow returns cell ci's packed centroid of the kind.
func (c *shardCells) centRow(kind features.Kind, ci int32) []float64 {
	stride := features.Stride(kind)
	off := int(ci) * stride
	return c.cent[kind][off : off+stride : off+stride]
}

// route picks the cell for a slot: nearest naive-signature centroid, ties
// to the lowest cell index. Rows without a naive signature go to cell 0 —
// any assignment is sound (radii widen to cover it), routing quality only
// affects pruning power.
func (c *shardCells) route(ar *shardArena, slot int32) int32 {
	if !ar.hasKind(cellRouteKind, slot) {
		return 0
	}
	v := ar.row(cellRouteKind, slot)
	best := int32(0)
	bestD := math.Inf(1)
	for ci := 0; ci < c.n; ci++ {
		d := features.PairDistance(cellRouteKind, v, c.centRow(cellRouteKind, int32(ci)))
		if d < bestD {
			bestD = d
			best = int32(ci)
		}
	}
	return best
}

// assign files a packed slot into its nearest cell and widens that cell's
// radii to keep every kind's bound valid for the new member. Callers must
// hold the engine write lock; no-op before the first build.
func (c *shardCells) assign(ar *shardArena, slot int32) {
	if !c.built {
		return
	}
	c.ensureSlots(len(ar.ents))
	ci := c.route(ar, slot)
	c.cellOf[slot] = ci
	c.posIn[slot] = int32(len(c.members[ci]))
	c.members[ci] = append(c.members[ci], slot)
	for k := range c.rad {
		kind := features.Kind(k)
		if !ar.hasKind(kind, slot) {
			continue
		}
		d := features.PairDistance(kind, ar.row(kind, slot), c.centRow(kind, ci))
		if d > c.rad[k][ci] {
			c.rad[k][ci] = d
		}
	}
}

// detach lazily invalidates a slot's membership (delete and reindex
// swap-remove paths): the slot leaves its cell's member list, radii stay
// as-is — still upper bounds for every remaining member. Callers must
// hold the engine write lock.
func (c *shardCells) detach(slot int32) {
	if !c.built || int(slot) >= len(c.cellOf) {
		return
	}
	ci := c.cellOf[slot]
	if ci == noSlot {
		return
	}
	mem := c.members[ci]
	pi := c.posIn[slot]
	last := int32(len(mem) - 1)
	moved := mem[last]
	mem[pi] = moved
	c.posIn[moved] = pi
	c.members[ci] = mem[:last]
	c.cellOf[slot] = noSlot
	c.posIn[slot] = noSlot
}

// onInsert wires putEntry into the index: incremental assignment plus the
// rebuild check.
func (c *shardCells) onInsert(ar *shardArena, slot int32) {
	c.assign(ar, slot)
	c.noteMutation(ar)
}

// onRemove wires delete's arena swap-remove: lazy invalidation plus the
// rebuild check. Must run before the arena reuses the slot.
func (c *shardCells) onRemove(ar *shardArena, slot int32) {
	c.detach(slot)
	c.noteMutation(ar)
}

// onRepack wires reindex's in-place row replacement: the slot's packed
// vectors changed, so its old membership (and the bounds derived from it)
// no longer describes it — detach and re-assign against the new vectors.
func (c *shardCells) onRepack(ar *shardArena, slot int32) {
	c.detach(slot)
	c.assign(ar, slot)
	c.noteMutation(ar)
}

// noteMutation counts churn and rebuilds once it exceeds
// RebuildFraction of the live rows (or immediately, the first time the
// shard crosses the MinShardRows floor). Runs on the mutating call under
// the already-held engine write lock — no background goroutine, no new
// locks, so the lock-order directives are untouched.
func (c *shardCells) noteMutation(ar *shardArena) {
	if c.cfg.Disabled {
		return
	}
	c.since++
	n := len(ar.live)
	if n < c.cfg.MinShardRows {
		return // exact path below the floor; building would be wasted work
	}
	if !c.built || float64(c.since) > c.cfg.RebuildFraction*float64(n) {
		c.rebuild(ar)
	}
}

// rebuild reconstructs the whole index from the shard's current contents.
// Determinism contract: every step — ordering, sampling, seeding, Lloyd
// updates, assignment, empty-cell compaction, centroid means, radii — is
// a pure function of the (ID-sorted) member rows, so arenas holding the
// same entries produce identical cells regardless of insertion order or
// slot numbering.
func (c *shardCells) rebuild(ar *shardArena) {
	c.built = true
	c.since = 0
	c.rebuilt++
	c.ensureSlots(len(ar.ents))

	n := len(ar.live)
	slots := slices.Clone(ar.live)
	slices.SortFunc(slots, func(a, b int32) int {
		ai, bi := ar.ents[a].id, ar.ents[b].id
		switch {
		case ai < bi:
			return -1
		case ai > bi:
			return 1
		}
		return 0
	})

	k := (n + c.cfg.TargetCellSize - 1) / c.cfg.TargetCellSize
	if k > maxCellsPerShard {
		k = maxCellsPerShard
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}

	// Fit routing centroids on (a sample of) the rows that carry the
	// routing kind; rows without it all land in cell 0.
	routable := make([]int32, 0, n)
	for _, s := range slots {
		if ar.hasKind(cellRouteKind, s) {
			routable = append(routable, s)
		}
	}
	stride := features.Stride(cellRouteKind)
	var fit []float64
	if len(routable) > 0 {
		step := 1
		if len(routable) > cellFitSampleMax {
			step = (len(routable) + cellFitSampleMax - 1) / cellFitSampleMax
		}
		sample := make([]int32, 0, cellFitSampleMax)
		for i := 0; i < len(routable); i += step {
			sample = append(sample, routable[i])
		}
		if k > len(sample) {
			k = len(sample)
		}
		fit = fitRouteCentroids(ar, sample, k)
		k = len(fit) / stride
	} else {
		k = 1
		fit = make([]float64, stride)
	}

	// Assignment pass over every row, in ID order so member lists are
	// content-deterministic.
	members := make([][]int32, k)
	for _, s := range slots {
		best := 0
		if ar.hasKind(cellRouteKind, s) && k > 1 {
			v := ar.row(cellRouteKind, s)
			bestD := math.Inf(1)
			for ci := 0; ci < k; ci++ {
				d := features.PairDistance(cellRouteKind, v, fit[ci*stride:(ci+1)*stride:(ci+1)*stride])
				if d < bestD {
					bestD = d
					best = ci
				}
			}
		}
		members[best] = append(members[best], s)
	}
	// Compact empty cells away (index order preserved, so deterministic).
	c.members = members[:0:cap(members)]
	for _, mem := range members {
		if len(mem) > 0 {
			c.members = append(c.members, mem)
		}
	}
	c.n = len(c.members)

	// Slot tables: clear everything (free slots included), then file the
	// members.
	for i := range c.cellOf {
		c.cellOf[i] = noSlot
		c.posIn[i] = noSlot
	}
	for ci, mem := range c.members {
		for pi, s := range mem {
			c.cellOf[s] = int32(ci)
			c.posIn[s] = int32(pi)
		}
	}

	// Per-kind centroids (member means, ID-ordered summation) and radii.
	for kd := range c.cent {
		kind := features.Kind(kd)
		st := features.Stride(kind)
		cent := make([]float64, c.n*st)
		rad := make([]float64, c.n)
		for ci, mem := range c.members {
			row := cent[ci*st : (ci+1)*st]
			cnt := 0
			for _, s := range mem {
				if !ar.hasKind(kind, s) {
					continue
				}
				v := ar.row(kind, s)
				for i := range row {
					row[i] += v[i]
				}
				cnt++
			}
			if cnt == 0 {
				rad[ci] = math.Inf(1) // bound degenerates to 0: safe, inert
				continue
			}
			inv := 1 / float64(cnt)
			for i := range row {
				row[i] *= inv
			}
			r := 0.0
			for _, s := range mem {
				if !ar.hasKind(kind, s) {
					continue
				}
				if d := features.PairDistance(kind, ar.row(kind, s), row); d > r {
					r = d
				}
			}
			rad[ci] = r
		}
		c.cent[kd] = cent
		c.rad[kd] = rad
	}
}

// fitRouteCentroids runs the deterministic coarse k-means on the sampled
// routing vectors: farthest-point seeding from the lowest-ID row, then a
// fixed number of Lloyd iterations with lowest-index tie-breaks. Returns
// k' <= k packed centroids (seeding stops early once every remaining row
// duplicates a seed).
func fitRouteCentroids(ar *shardArena, sample []int32, k int) []float64 {
	stride := features.Stride(cellRouteKind)
	vec := func(s int32) []float64 { return ar.row(cellRouteKind, s) }

	// Farthest-point seeding. minD[i] tracks sample i's distance to its
	// nearest chosen seed.
	seeds := make([]int32, 1, k)
	seeds[0] = sample[0]
	minD := make([]float64, len(sample))
	for i, s := range sample {
		minD[i] = features.PairDistance(cellRouteKind, vec(s), vec(seeds[0]))
	}
	for len(seeds) < k {
		best, bestD := -1, 0.0
		for i, d := range minD {
			if d > bestD {
				bestD = d
				best = i
			}
		}
		if best < 0 {
			break // every remaining row coincides with a seed
		}
		ns := sample[best]
		seeds = append(seeds, ns)
		for i, s := range sample {
			if d := features.PairDistance(cellRouteKind, vec(s), vec(ns)); d < minD[i] {
				minD[i] = d
			}
		}
	}
	k = len(seeds)

	cents := make([]float64, k*stride)
	for ci, s := range seeds {
		copy(cents[ci*stride:(ci+1)*stride], vec(s))
	}
	sums := make([]float64, k*stride)
	counts := make([]int, k)
	for it := 0; it < cellLloydIters; it++ {
		for i := range sums {
			sums[i] = 0
		}
		for i := range counts {
			counts[i] = 0
		}
		for _, s := range sample {
			v := vec(s)
			best, bestD := 0, math.Inf(1)
			for ci := 0; ci < k; ci++ {
				d := features.PairDistance(cellRouteKind, v, cents[ci*stride:(ci+1)*stride:(ci+1)*stride])
				if d < bestD {
					bestD = d
					best = ci
				}
			}
			row := sums[best*stride : (best+1)*stride]
			for j, x := range v {
				row[j] += x
			}
			counts[best]++
		}
		for ci := 0; ci < k; ci++ {
			if counts[ci] == 0 {
				continue // keep the previous centroid; still deterministic
			}
			inv := 1 / float64(counts[ci])
			row := cents[ci*stride : (ci+1)*stride]
			srow := sums[ci*stride : (ci+1)*stride]
			for j := range row {
				row[j] = srow[j] * inv
			}
		}
	}
	return cents
}

// CellIndexStats summarises the engine's cell indexes (cbvrctl stats and
// the server stats endpoint).
type CellIndexStats struct {
	Shards      int `json:"shards"`
	BuiltShards int `json:"built_shards"`
	Cells       int `json:"cells"`
	IndexedRows int `json:"indexed_rows"`
	Rebuilds    int `json:"rebuilds"`
}

// CellStats reports the current state of the per-shard cell indexes.
func (e *Engine) CellStats() (CellIndexStats, error) {
	if err := e.warmCache(); err != nil {
		return CellIndexStats{}, err
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	st := CellIndexStats{Shards: len(e.cells)}
	for _, c := range e.cells {
		if c == nil || !c.built {
			continue
		}
		st.BuiltShards++
		st.Cells += c.n
		st.Rebuilds += c.rebuilt
		for _, mem := range c.members {
			st.IndexedRows += len(mem)
		}
	}
	return st, nil
}
