package core

import (
	"bytes"
	"context"
	"errors"
	"io"
	"path/filepath"
	"testing"

	"cbvr/internal/synthvid"
)

// cancelAfterReader cancels a context once n bytes have been read, then
// keeps counting the bytes handed out afterwards — the measure of how much
// work an aborted ingest still performed.
type cancelAfterReader struct {
	r           io.Reader
	n           int
	cancel      context.CancelFunc
	fired       bool
	afterCancel int
}

func (c *cancelAfterReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if c.fired {
		c.afterCancel += n
	} else {
		c.n -= n
		if c.n <= 0 {
			c.fired = true
			c.cancel()
		}
	}
	return n, err
}

// TestIngestCtxCancelMidDecode aborts an ingest part-way through the
// container: the pipeline must stop within about one decode iteration,
// discard the staged pages, commit nothing, and leave the store closeable
// and reopenable with zero orphan rows.
func TestIngestCtxCancelMidDecode(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cancel.db")
	eng, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := testContainer(t, synthvid.Cartoon, 11, 24)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cr := &cancelAfterReader{r: bytes.NewReader(raw), n: len(raw) / 3, cancel: cancel}
	if _, err := eng.IngestVideoStreamCtx(ctx, "doomed", cr); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ingest returned %v, want context.Canceled", err)
	}
	// The decode loop checks cancellation every iteration, so it must not
	// have consumed anywhere near the remaining two thirds of the stream
	// (one frame record plus one bufio fill is the honest upper bound).
	if cr.afterCancel > len(raw)/3 {
		t.Fatalf("read %d bytes after cancel (container %d): abort was not within a decode iteration", cr.afterCancel, len(raw))
	}

	// Nothing committed, nothing published.
	vids, err := eng.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 0 {
		t.Fatalf("cancelled ingest left %d videos", len(vids))
	}
	if n, err := eng.CacheSize(); err != nil || n != 0 {
		t.Fatalf("cache after cancel: n=%d err=%v", n, err)
	}

	// Staged pages were discarded, so the store closes and reopens clean,
	// and a fresh ingest over the same bytes succeeds.
	if err := eng.Close(); err != nil {
		t.Fatalf("close after cancelled ingest: %v", err)
	}
	eng2, err := Open(path, Options{})
	if err != nil {
		t.Fatalf("reopen after cancelled ingest: %v", err)
	}
	defer eng2.Close()
	vids, err = eng2.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 0 {
		t.Fatalf("reopened store has %d orphan videos", len(vids))
	}
	res, err := eng2.IngestVideoStreamCtx(context.Background(), "retry", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("re-ingest after cancel: %v", err)
	}
	if res.NumFrames != 24 {
		t.Fatalf("re-ingest decoded %d frames, want 24", res.NumFrames)
	}
}

// TestConcurrentIngestOverlap proves the tentpole property: one client's
// staging makes full progress while another client sits inside the commit
// critical section holding the writer lock. Client A blocks at the
// "in-commit" hook (transaction begun, lock held); client B must still
// reach "staged" — decode, extraction and blob staging never touch the
// writer lock.
func TestConcurrentIngestOverlap(t *testing.T) {
	eng := openTestEngine(t)
	rawA, _ := testContainer(t, synthvid.Cartoon, 21, 16)
	rawB, _ := testContainer(t, synthvid.Sports, 22, 16)

	aInCommit := make(chan struct{})
	bStaged := make(chan struct{})
	release := make(chan struct{})
	eng.ingestHook = func(stage, name string) {
		switch {
		case name == "A" && stage == "in-commit":
			close(aInCommit)
			<-release
		case name == "B" && stage == "staged":
			close(bStaged)
		}
	}

	errA := make(chan error, 1)
	errB := make(chan error, 1)
	go func() {
		_, err := eng.IngestVideoStreamCtx(context.Background(), "A", bytes.NewReader(rawA))
		errA <- err
	}()
	<-aInCommit // A holds the writer lock and is parked
	go func() {
		_, err := eng.IngestVideoStreamCtx(context.Background(), "B", bytes.NewReader(rawB))
		errB <- err
	}()
	// B finishing its staging phase while A is wedged in commit is the
	// wall-clock overlap the upload spool exists for. If staging needed the
	// writer lock this receive would deadlock (go test would time out).
	<-bStaged
	close(release)
	if err := <-errA; err != nil {
		t.Fatalf("ingest A: %v", err)
	}
	if err := <-errB; err != nil {
		t.Fatalf("ingest B: %v", err)
	}
	eng.ingestHook = nil

	vids, err := eng.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 2 {
		t.Fatalf("got %d videos, want 2", len(vids))
	}
	// Both commits landed intact: every stored row is scoreable and the
	// sharded search agrees with the reference over the combined store.
	q := genVideo(synthvid.Cartoon, 21).Frames[0]
	got, err := eng.SearchFrame(q, SearchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("search over both videos returned nothing")
	}
}

// TestIngestEmptyNameRejected covers every engine ingest entry point: an
// empty or all-whitespace name must fail with ErrEmptyName before any
// bytes are read or pages staged.
func TestIngestEmptyNameRejected(t *testing.T) {
	eng := openTestEngine(t)
	raw, _ := testContainer(t, synthvid.Cartoon, 31, 8)
	for _, name := range []string{"", "   ", "\t\n"} {
		if _, err := eng.IngestVideo(name, raw); !errors.Is(err, ErrEmptyName) {
			t.Errorf("IngestVideo(%q): %v, want ErrEmptyName", name, err)
		}
		if _, err := eng.IngestVideoStream(name, bytes.NewReader(raw)); !errors.Is(err, ErrEmptyName) {
			t.Errorf("IngestVideoStream(%q): %v, want ErrEmptyName", name, err)
		}
		if _, err := eng.IngestVideoReference(name, raw); !errors.Is(err, ErrEmptyName) {
			t.Errorf("IngestVideoReference(%q): %v, want ErrEmptyName", name, err)
		}
	}
	vids, err := eng.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 0 {
		t.Fatalf("empty-name ingests left %d videos", len(vids))
	}
}

// TestSearchFrameCtxCancelled verifies a cancelled search returns the
// context error, not a partial ranking.
func TestSearchFrameCtxCancelled(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "clip", synthvid.Cartoon, 41)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := genVideo(synthvid.Cartoon, 41).Frames[0]
	if _, err := eng.SearchFrameCtx(ctx, q, SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search returned %v, want context.Canceled", err)
	}
	if _, err := eng.SearchFrameCtx(context.Background(), q, SearchOptions{}); err != nil {
		t.Fatalf("live search after cancelled one: %v", err)
	}
}

// TestReindexCtxCancelled verifies a cancelled reindex leaves the stored
// rows untouched and reports the context error.
func TestReindexCtxCancelled(t *testing.T) {
	eng := openTestEngine(t)
	res := ingest(t, eng, "clip", synthvid.Cartoon, 51)
	before, err := eng.Store().KeyFramesOfVideo(nil, res.VideoID)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.ReindexVideoCtx(ctx, res.VideoID); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled reindex returned %v, want context.Canceled", err)
	}
	after, err := eng.Store().KeyFramesOfVideo(nil, res.VideoID)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(before) {
		t.Fatalf("cancelled reindex changed row count %d -> %d", len(before), len(after))
	}
	for i := range after {
		if after[i].SCH != before[i].SCH || after[i].Naive != before[i].Naive {
			t.Fatalf("cancelled reindex rewrote row %d", i)
		}
	}
}

// TestIngestFramesCtxCancelled pins the new pre-encoded ingest entry
// point: a cancelled context must surface context.Canceled and leave
// nothing committed, and the same engine must still ingest normally
// afterwards.
func TestIngestFramesCtxCancelled(t *testing.T) {
	eng := openTestEngine(t)
	v := genVideo(synthvid.Cartoon, 61)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.IngestFramesCtx(ctx, "doomed", v.Frames, v.FPS); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled IngestFramesCtx returned %v, want context.Canceled", err)
	}
	vids, err := eng.Store().ListVideos(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(vids) != 0 {
		t.Fatalf("cancelled ingest committed %d video(s)", len(vids))
	}
	if _, err := eng.IngestFramesCtx(context.Background(), "alive", v.Frames, v.FPS); err != nil {
		t.Fatalf("live ingest after cancelled one: %v", err)
	}
}

// TestSearchVideoCtxCancelled verifies the clip-query path honors
// cancellation: context error out, no partial ranking, and the engine
// keeps serving live queries.
func TestSearchVideoCtxCancelled(t *testing.T) {
	eng := openTestEngine(t)
	ingest(t, eng, "clip", synthvid.Cartoon, 71)
	q := genVideo(synthvid.Cartoon, 71).Frames[:3]
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.SearchVideoCtx(ctx, q, SearchOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SearchVideoCtx returned %v, want context.Canceled", err)
	}
	got, err := eng.SearchVideoCtx(context.Background(), q, SearchOptions{})
	if err != nil {
		t.Fatalf("live clip search after cancelled one: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("live clip search returned nothing")
	}
}
