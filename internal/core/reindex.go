// Streaming re-index: re-extract every descriptor of already-stored
// videos from their stored key-frame streams, without re-uploading and
// without dropping the video from search mid-rebuild. This is what turns
// the store from write-once into a maintainable archive index — when the
// extraction code improves, ReindexAll rebuilds every feature row in
// place (the German Broadcasting Archive requirement: archive-scale CBVR
// must re-index stored content as descriptors evolve).
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sync"

	"cbvr/internal/catalog"
	"cbvr/internal/cvj"
	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/rangeindex"
)

// ReindexResult summarises one re-indexed video.
type ReindexResult struct {
	VideoID   int64
	VideoName string
	// KeyFrames is the number of feature rows rebuilt.
	KeyFrames int
}

// kfReindexWork carries one stored key frame through the re-extraction
// pool: the existing row pairs with the freshly decoded record, and the
// pool worker fills set and bucket.
type kfReindexWork struct {
	row    *catalog.KeyFrame
	scaled *imaging.Image // pooled analysis raster; dropped after extraction
	set    *features.Set
	bucket rangeindex.Range
}

// ReindexVideo re-extracts all seven descriptors and the §4.2 range
// bucket for every key frame of a stored video and replaces its
// KEY_FRAMES feature columns in one transaction.
//
// The pipeline streams the stored STREAM blob (the key-frame-only CVJ)
// through a BlobReader — the container is never materialised — decodes
// each record, rescales it into a pooled analysis raster and re-extracts
// through pooled shared planes, exactly the ingest extraction path, so
// the rebuilt rows are bit-identical to a fresh ingest of the same
// container (the stored records are the container's original JPEG bytes).
// The stored IMAGE blobs are left untouched.
//
// Visibility: extraction runs against a snapshot of the rows with no
// locks held, so searches keep scoring the old descriptors throughout the
// rebuild; after the transaction commits, the cache entries and range
// index postings are swapped under the engine lock. A reader therefore
// sees either the old rows or the new rows, never a mix — the same
// guarantee crash recovery provides (see reindex_crash_test.go).
func (e *Engine) ReindexVideo(videoID int64) (*ReindexResult, error) {
	return e.ReindexVideoCtx(context.Background(), videoID)
}

// ReindexVideoCtx is ReindexVideo under a request context: cancellation is
// checked once per decoded key-frame record during re-extraction and once
// more before the replacement transaction begins, so an aborted request
// leaves the old rows (and the cache) fully intact.
func (e *Engine) ReindexVideoCtx(ctx context.Context, videoID int64) (*ReindexResult, error) {
	fail := func(err error) (*ReindexResult, error) {
		return nil, fmt.Errorf("core: reindex video %d: %w", videoID, err)
	}
	// Searches after the swap must be able to resolve entries; warm now so
	// the swap replaces a fully-populated cache.
	if err := e.warmCache(); err != nil {
		return fail(err)
	}
	_, streamRef, ok, err := e.store.VideoRefs(nil, videoID)
	if err != nil {
		return fail(err)
	}
	if !ok {
		return fail(ErrNotFound)
	}
	rows, err := e.store.KeyFramesOfVideo(nil, videoID)
	if err != nil {
		return fail(err)
	}

	// Re-extract from the streamed key-frame records. Record i is key
	// frame i: the STREAM column is assembled in frame order at ingest,
	// and KeyFramesOfVideo returns rows in the same order.
	works, err := e.reextractStream(ctx, e.store.DB().NewBlobReader(nil, streamRef), rows)
	if err != nil {
		return fail(err)
	}
	// Last cancellation point: a cancelled request must never take the
	// writer lock or replace any rows.
	if err := ctx.Err(); err != nil {
		return fail(err)
	}

	// Replace the feature columns transactionally. Old rows stay
	// queryable (and the cache untouched) until Commit.
	tx, err := e.store.Begin()
	if err != nil {
		return fail(err)
	}
	//cbvrvet:ignore ctxloop the commit section is deliberately uninterruptible: past the last cancellation point above, the transaction must fully apply or fully abort
	for i, w := range works {
		updated := *w.row
		updated.Image = nil // keep the stored IMAGE chain
		updated.Min, updated.Max = w.bucket.Min, w.bucket.Max
		updated.SCH = w.set.Histogram.String()
		updated.GLCM = w.set.GLCM.String()
		updated.Gabor = w.set.Gabor.String()
		updated.Tamura = w.set.Tamura.String()
		updated.ACC = w.set.Correlogram.String()
		updated.Naive = w.set.Naive.String()
		updated.Regions = w.set.Regions.String()
		updated.MajorRegions = w.set.Regions.Major
		if err := e.store.UpdateKeyFrame(tx, &updated); err != nil {
			tx.Abort()
			return fail(err)
		}
		if e.reindexHook != nil && i == 0 {
			e.reindexHook("mid-update")
		}
	}
	if e.reindexHook != nil {
		e.reindexHook("pre-commit")
	}
	if err := tx.Commit(); err != nil {
		return fail(err)
	}
	if e.reindexHook != nil {
		e.reindexHook("post-commit")
	}

	// Swap the published entries: remove each key frame's old posting and
	// install the rebuilt one atomically under the engine lock. A
	// concurrent DeleteVideo may have removed the video between our commit
	// and this swap (its own transaction serialises after ours); it scrubs
	// vname inside the same critical section it scrubs the cache, so a
	// missing name here means the rows are gone and installing entries
	// would resurrect ghost postings for a deleted video.
	e.mu.Lock()
	name, alive := e.vname[videoID]
	if !alive {
		e.mu.Unlock()
		return fail(errors.New("video deleted during reindex"))
	}
	for _, w := range works {
		e.replaceEntry(&frameEntry{
			id:       w.row.ID,
			videoID:  videoID,
			frameIdx: w.row.FrameIndex,
			bucket:   w.bucket,
			set:      w.set,
		})
	}
	e.mu.Unlock()
	return &ReindexResult{VideoID: videoID, VideoName: name, KeyFrames: len(works)}, nil
}

// reextractStream decodes key-frame records from r and re-extracts their
// descriptor sets in the bounded worker pool, pairing record i with
// rows[i]. It validates that the stream and the rows agree on the key
// frame count.
func (e *Engine) reextractStream(ctx context.Context, r io.Reader, rows []*catalog.KeyFrame) ([]*kfReindexWork, error) {
	cr, err := cvj.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("key-frame stream: %w", err)
	}
	workers := e.workers()
	jobs := make(chan *kfReindexWork, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for w := range jobs {
				p := features.AcquirePlanes(w.scaled)
				w.set = p.ExtractAll()
				w.bucket = BucketFromPlanes(p)
				p.Release()
				e.rasters.put(w.scaled)
				w.scaled = nil
			}
		}()
	}
	var works []*kfReindexWork
	var decodeErr error
	for {
		if err := ctx.Err(); err != nil {
			decodeErr = err
			break
		}
		f, err := cr.NextFrame()
		if err == io.EOF {
			break
		}
		if err != nil {
			decodeErr = fmt.Errorf("key-frame stream record %d: %w", len(works), err)
			break
		}
		if len(works) >= len(rows) {
			decodeErr = fmt.Errorf("key-frame stream has more records than the %d stored rows", len(rows))
			break
		}
		scaled := f.Image
		if scaled.W != features.AnalysisSize || scaled.H != features.AnalysisSize {
			scaled = f.Image.RescaleInto(e.rasters.get(), features.AnalysisSize, features.AnalysisSize)
		}
		w := &kfReindexWork{row: rows[len(works)], scaled: scaled}
		works = append(works, w)
		jobs <- w
	}
	close(jobs)
	wg.Wait()
	if decodeErr != nil {
		return nil, decodeErr
	}
	if len(works) != len(rows) {
		return nil, fmt.Errorf("key-frame stream has %d records, stored rows %d", len(works), len(rows))
	}
	return works, nil
}

// ReindexAll rebuilds the feature rows of every stored video in V_ID
// order, returning one result per video. It stops at the first failure,
// returning the results of the videos already rebuilt alongside the
// error; completed videos keep their new rows (each video commits
// independently).
func (e *Engine) ReindexAll() ([]*ReindexResult, error) {
	return e.ReindexAllCtx(context.Background())
}

// ReindexAllCtx is ReindexAll under a request context; cancellation stops
// between (and inside) per-video rebuilds, keeping already-committed videos.
func (e *Engine) ReindexAllCtx(ctx context.Context) ([]*ReindexResult, error) {
	vids, err := e.store.ListVideos(nil)
	if err != nil {
		return nil, fmt.Errorf("core: reindex all: %w", err)
	}
	out := make([]*ReindexResult, 0, len(vids))
	for _, v := range vids {
		res, err := e.ReindexVideoCtx(ctx, v.ID)
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
