package eval

import (
	"path/filepath"
	"testing"

	"cbvr/internal/core"
	"cbvr/internal/synthvid"
)

func TestPrecisionAtK(t *testing.T) {
	rel := []bool{true, false, true, true}
	if p := PrecisionAtK(rel, 2); p != 0.5 {
		t.Errorf("p@2 = %g", p)
	}
	if p := PrecisionAtK(rel, 4); p != 0.75 {
		t.Errorf("p@4 = %g", p)
	}
	// Shorter result lists pad as irrelevant.
	if p := PrecisionAtK(rel, 8); p != 3.0/8 {
		t.Errorf("p@8 = %g", p)
	}
	if p := PrecisionAtK(rel, 0); p != 0 {
		t.Errorf("p@0 = %g", p)
	}
}

func TestRecallAtK(t *testing.T) {
	rel := []bool{true, false, true}
	if r := RecallAtK(rel, 3, 4); r != 0.5 {
		t.Errorf("r@3 = %g", r)
	}
	if r := RecallAtK(rel, 3, 0); r != 0 {
		t.Errorf("r with no relevant = %g", r)
	}
}

func TestAveragePrecision(t *testing.T) {
	// Relevant at ranks 1 and 3 of 2 total: AP = (1/1 + 2/3)/2.
	rel := []bool{true, false, true}
	want := (1.0 + 2.0/3) / 2
	if ap := AveragePrecision(rel, 2); ap < want-1e-12 || ap > want+1e-12 {
		t.Errorf("AP = %g, want %g", ap, want)
	}
	if ap := AveragePrecision(nil, 0); ap != 0 {
		t.Errorf("empty AP = %g", ap)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("mean = %g", m)
	}
	if m := Mean(nil); m != 0 {
		t.Errorf("empty mean = %g", m)
	}
}

func TestCategoryOfVideoName(t *testing.T) {
	cat, ok := CategoryOfVideoName("sports_03")
	if !ok || cat != synthvid.Sports {
		t.Errorf("sports_03 -> %v %v", cat, ok)
	}
	if _, ok := CategoryOfVideoName("noseparator"); ok {
		t.Error("name without separator accepted")
	}
	if _, ok := CategoryOfVideoName("opera_01"); ok {
		t.Error("unknown category accepted")
	}
}

func TestTable1MethodsMatchPaperColumns(t *testing.T) {
	methods := Table1Methods()
	paper := PaperTable1()
	if len(methods) != len(paper) {
		t.Fatalf("methods %d vs paper rows %d", len(methods), len(paper))
	}
	for i := range methods {
		if methods[i].Name != paper[i].Method {
			t.Errorf("column %d: %s vs %s", i, methods[i].Name, paper[i].Method)
		}
	}
	// The paper's combined row dominates every single feature at every
	// cut-off — the claim our reproduction must reproduce in shape.
	combined := paper[len(paper)-1]
	for _, row := range paper[:len(paper)-1] {
		for ci := range Cutoffs {
			if combined.P[ci] <= row.P[ci] {
				t.Errorf("paper table inconsistency: combined %g <= %s %g at k=%d",
					combined.P[ci], row.Method, row.P[ci], Cutoffs[ci])
			}
		}
	}
}

func TestBuildQueriesCoverage(t *testing.T) {
	qs := BuildQueries(Table1Config{QueriesPerCategory: 2})
	if len(qs) != 2*synthvid.NumCategories {
		t.Fatalf("queries = %d", len(qs))
	}
	perCat := make(map[synthvid.Category]int)
	for _, q := range qs {
		if q.Frame == nil {
			t.Fatal("nil query frame")
		}
		perCat[q.Category]++
	}
	for _, c := range synthvid.AllCategories() {
		if perCat[c] != 2 {
			t.Errorf("category %v has %d queries", c, perCat[c])
		}
	}
}

// TestTable1SmallScaleShape runs the full Table 1 pipeline at reduced
// scale and checks the structural claims: all rows present, precisions in
// [0,1], precision non-increasing in k for the combined method, and
// combined at least competitive with the median single feature.
func TestTable1SmallScaleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table 1 pipeline is slow")
	}
	eng, err := core.Open(filepath.Join(t.TempDir(), "t1.db"), core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	cfg := Table1Config{
		VideosPerCategory:  2,
		QueriesPerCategory: 1,
		Video:              synthvid.Config{Width: 96, Height: 72, Frames: 12, Shots: 3},
		Seed:               7,
	}
	n, err := BuildCorpus(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2*synthvid.NumCategories {
		t.Fatalf("corpus = %d videos", n)
	}
	res, err := RunTable1(eng, BuildQueries(cfg))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		for ci, p := range row.P {
			if p < 0 || p > 1 {
				t.Errorf("%s P@%d = %g outside [0,1]", row.Method, Cutoffs[ci], p)
			}
		}
	}
	combined := res.Row("Combined")
	if combined == nil {
		t.Fatal("no combined row")
	}
	// At this tiny scale every category has few relevant frames, so
	// precision must fall with k (k=100 exceeds the relevant pool).
	if combined.P[0] < combined.P[3] {
		t.Errorf("combined precision should not rise with k: %v", combined.P)
	}
	// Combined should beat the weakest single feature at k=20.
	worst := 1.0
	for _, row := range res.Rows[:6] {
		if row.P[0] < worst {
			worst = row.P[0]
		}
	}
	if combined.P[0] < worst {
		t.Errorf("combined %g below worst single feature %g", combined.P[0], worst)
	}
	if out := FormatTable(res.Rows); len(out) == 0 {
		t.Error("empty table rendering")
	}
}
