// Package eval measures retrieval quality: precision@k, recall, average
// precision, and the harness that regenerates the paper's Table 1
// ("precision at 20, 30, 50 and 100 documents" per feature and combined)
// on the synthetic corpus with category ground truth.
//
// Relevance surrogate: the paper judged relevance with a user study over
// category-organised clips ("e-learning, sports, cartoon, movies"); here a
// retrieved key frame is relevant iff its source video belongs to the
// query's category.
package eval

// PrecisionAtK returns the fraction of the first k results that are
// relevant. Fewer than k results are padded as irrelevant (the paper
// reports precision at fixed document cut-offs).
func PrecisionAtK(relevant []bool, k int) float64 {
	if k <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < k && i < len(relevant); i++ {
		if relevant[i] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

// RecallAtK returns the fraction of all relevant items retrieved within
// the first k results.
func RecallAtK(relevant []bool, k, totalRelevant int) float64 {
	if totalRelevant <= 0 {
		return 0
	}
	hits := 0
	for i := 0; i < k && i < len(relevant); i++ {
		if relevant[i] {
			hits++
		}
	}
	return float64(hits) / float64(totalRelevant)
}

// AveragePrecision returns the mean of precision values at each relevant
// rank (AP), the classic ranked-retrieval summary.
func AveragePrecision(relevant []bool, totalRelevant int) float64 {
	if totalRelevant <= 0 {
		return 0
	}
	hits := 0
	var sum float64
	for i, r := range relevant {
		if r {
			hits++
			sum += float64(hits) / float64(i+1)
		}
	}
	return sum / float64(totalRelevant)
}

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}
