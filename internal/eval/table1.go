package eval

import (
	"fmt"
	"strings"

	"cbvr/internal/core"
	"cbvr/internal/features"
	"cbvr/internal/imaging"
	"cbvr/internal/rangeindex"
	"cbvr/internal/synthvid"
)

// Cutoffs are the paper's Table 1 precision cut-offs.
var Cutoffs = [4]int{20, 30, 50, 100}

// Table1Config sizes the Table 1 reproduction.
type Table1Config struct {
	// VideosPerCategory sizes the ingested corpus (default 8).
	VideosPerCategory int
	// QueriesPerCategory sizes the held-out query set (default 4).
	QueriesPerCategory int
	// Video controls the synthetic clips (dimensions default to the
	// synthvid defaults).
	Video synthvid.Config
	// Seed derives both corpus and query seeds (default 1).
	Seed int64
}

func (c Table1Config) withDefaults() Table1Config {
	if c.VideosPerCategory <= 0 {
		c.VideosPerCategory = 8
	}
	if c.QueriesPerCategory <= 0 {
		c.QueriesPerCategory = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	// Default clips are long enough that each category contributes a
	// meaningful relevant pool at the paper's deepest cut-off (k=100),
	// and noisy enough that no single feature saturates.
	if c.Video.Frames == 0 {
		c.Video.Frames = 72
	}
	if c.Video.Shots == 0 {
		c.Video.Shots = 8
	}
	if c.Video.Noise == 0 {
		c.Video.Noise = 18
	}
	return c
}

// Method names a Table 1 column: one feature kind, or the combination.
type Method struct {
	Name  string
	Kinds []features.Kind // empty means all (combined)
}

// Table1Methods returns the paper's column order: GLCM, Gabor, Tamura,
// Histogram, Autocorrelogram, Simple Region Growing, Combined.
func Table1Methods() []Method {
	return []Method{
		{Name: "GLCM", Kinds: []features.Kind{features.KindGLCM}},
		{Name: "Gabor", Kinds: []features.Kind{features.KindGabor}},
		{Name: "Tamura", Kinds: []features.Kind{features.KindTamura}},
		{Name: "Histogram", Kinds: []features.Kind{features.KindHistogram}},
		{Name: "Autocorrelogram", Kinds: []features.Kind{features.KindCorrelogram}},
		{Name: "SimpleRegionGrowing", Kinds: []features.Kind{features.KindRegions}},
		{Name: "Combined", Kinds: nil},
	}
}

// Table1Row is one method's measured precision at the four cut-offs.
type Table1Row struct {
	Method string
	P      [4]float64 // precision at 20, 30, 50, 100
}

// Table1Result carries the full reproduction outcome.
type Table1Result struct {
	Rows      []Table1Row
	Queries   int
	KeyFrames int
	Corpus    int // ingested videos
}

// Query is one held-out evaluation query.
type Query struct {
	Frame    *imaging.Image
	Category synthvid.Category
}

// BuildCorpus generates and ingests the Table 1 corpus into the engine.
func BuildCorpus(eng *core.Engine, cfg Table1Config) (int, error) {
	cfg = cfg.withDefaults()
	vc := cfg.Video
	vc.Seed = cfg.Seed
	videos := synthvid.GenerateCorpus(cfg.VideosPerCategory, vc)
	for _, v := range videos {
		if _, err := eng.IngestFrames(v.Name, v.Frames, v.FPS); err != nil {
			return 0, fmt.Errorf("eval: ingest %s: %w", v.Name, err)
		}
	}
	return len(videos), nil
}

// BuildQueries generates held-out query frames: fresh clips (seeds
// disjoint from the corpus) whose middle-of-shot frames act as queries.
func BuildQueries(cfg Table1Config) []Query {
	cfg = cfg.withDefaults()
	var out []Query
	for _, cat := range synthvid.AllCategories() {
		for q := 0; q < cfg.QueriesPerCategory; q++ {
			vc := cfg.Video
			// Offset well past any corpus seed derivation.
			vc.Seed = cfg.Seed + 1_000_003 + int64(q)*13_007 + int64(cat)*131_071
			v := synthvid.Generate(cat, vc)
			// Pick the middle frame of a shot that varies with q.
			shot := q % len(v.ShotStarts)
			start := v.ShotStarts[shot]
			end := len(v.Frames)
			if shot+1 < len(v.ShotStarts) {
				end = v.ShotStarts[shot+1]
			}
			out = append(out, Query{Frame: v.Frames[(start+end)/2], Category: cat})
		}
	}
	return out
}

// CategoryOfVideoName recovers the ground-truth category from a corpus
// video name ("sports_03" → Sports).
func CategoryOfVideoName(name string) (synthvid.Category, bool) {
	i := strings.LastIndex(name, "_")
	if i < 0 {
		return 0, false
	}
	cat, err := synthvid.ParseCategory(name[:i])
	if err != nil {
		return 0, false
	}
	return cat, true
}

// RunTable1 evaluates every Table 1 method over the query set against an
// engine already holding the corpus.
func RunTable1(eng *core.Engine, queries []Query) (*Table1Result, error) {
	methods := Table1Methods()
	res := &Table1Result{Queries: len(queries)}
	kf, err := eng.CacheSize()
	if err != nil {
		return nil, err
	}
	res.KeyFrames = kf

	// Pre-extract query descriptors and range buckets once from one
	// shared-plane pass per frame; each method call reuses them.
	frames := make([]*imaging.Image, len(queries))
	for i, q := range queries {
		frames[i] = q.Frame
	}
	qsets := eng.ExtractQuerySets(frames)
	qbuckets := make([]rangeindex.Range, len(queries))
	for i, q := range queries {
		qbuckets[i] = core.QueryBucket(q.Frame)
	}

	maxK := Cutoffs[len(Cutoffs)-1]
	for _, m := range methods {
		row := Table1Row{Method: m.Name}
		per := make([][4]float64, 0, len(queries))
		for qi, q := range queries {
			matches, err := eng.SearchWithSet(qsets[qi], qbuckets[qi], core.SearchOptions{
				K:     maxK,
				Kinds: m.Kinds,
				// Table 1 measures feature quality; pruning is an
				// efficiency device benchmarked separately (Fig. 7), so
				// rank over all candidates here.
				NoPruning: true,
			})
			if err != nil {
				return nil, err
			}
			relevant := make([]bool, len(matches))
			for i, match := range matches {
				cat, ok := CategoryOfVideoName(match.VideoName)
				relevant[i] = ok && cat == q.Category
			}
			var ps [4]float64
			for ci, k := range Cutoffs {
				ps[ci] = PrecisionAtK(relevant, k)
			}
			per = append(per, ps)
		}
		for ci := range Cutoffs {
			var s float64
			for _, ps := range per {
				s += ps[ci]
			}
			row.P[ci] = s / float64(len(per))
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// PaperTable1 returns the published Table 1 values for side-by-side
// reporting in EXPERIMENTS.md and the bench harness.
func PaperTable1() []Table1Row {
	return []Table1Row{
		{Method: "GLCM", P: [4]float64{0.435, 0.423, 0.410, 0.354}},
		{Method: "Gabor", P: [4]float64{0.586, 0.528, 0.489, 0.396}},
		{Method: "Tamura", P: [4]float64{0.568, 0.514, 0.469, 0.412}},
		{Method: "Histogram", P: [4]float64{0.398, 0.368, 0.324, 0.310}},
		{Method: "Autocorrelogram", P: [4]float64{0.412, 0.405, 0.369, 0.342}},
		{Method: "SimpleRegionGrowing", P: [4]float64{0.520, 0.468, 0.434, 0.397}},
		{Method: "Combined", P: [4]float64{0.629, 0.553, 0.494, 0.421}},
	}
}

// FormatTable renders rows in the paper's layout.
func FormatTable(rows []Table1Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-22s %8s %8s %8s %8s\n", "Method", "P@20", "P@30", "P@50", "P@100")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-22s %8.3f %8.3f %8.3f %8.3f\n", r.Method, r.P[0], r.P[1], r.P[2], r.P[3])
	}
	return sb.String()
}

// Row returns the named row, or nil.
func (r *Table1Result) Row(method string) *Table1Row {
	for i := range r.Rows {
		if r.Rows[i].Method == method {
			return &r.Rows[i]
		}
	}
	return nil
}
