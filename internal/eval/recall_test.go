package eval

import (
	"os"
	"path/filepath"
	"testing"

	"cbvr/internal/core"
	"cbvr/internal/features"
	"cbvr/internal/synthvid"
)

// recallFloor / ratioFloor are the ISSUE acceptance thresholds: pruned
// search must keep recall@K >= 0.95 against the exact arm while paying
// >= 10x fewer distance evaluations at the 100k scale point (the 10k
// tier asserts a softer ratio floor because fixed per-shard minimum
// probes weigh more at small n).
const (
	recallFloor = 0.95
	ratioFloor  = 10.0
)

func buildCorpusEngine(t testing.TB, cfg synthvid.ClusterCorpusConfig, opts core.Options) *core.Engine {
	t.Helper()
	eng, err := core.Open(filepath.Join(t.TempDir(), "eval.db"), opts)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	t.Cleanup(func() { eng.Close() })
	if err := LoadClusterCorpus(eng, cfg); err != nil {
		t.Fatalf("load corpus: %v", err)
	}
	return eng
}

// TestRecallPruned10k is the default-config recall gate: 10k planted
// corpus, default fused search, table-driven thresholds per search
// configuration. Fails the build if the pruner's recall drops below the
// ISSUE floor at default configuration.
func TestRecallPruned10k(t *testing.T) {
	cfg := synthvid.ClusterCorpusConfig{Frames: 10000, Seed: 7}
	eng := buildCorpusEngine(t, cfg, core.Options{SearchShards: 4})

	cases := []struct {
		name      string
		search    core.SearchOptions
		minRecall float64
		minRatio  float64
	}{
		// Default fused search: all seven kinds under RRF. This is the
		// configuration the recall gate protects. The eval-ratio floor is
		// softer than the 100k headline because MinProbeRows dominates the
		// budget at this scale — the ratio grows with corpus size (that IS
		// the sub-linear claim; see the 100k gate for the 10x floor).
		{name: "fused_rrf_default", search: core.SearchOptions{}, minRecall: recallFloor, minRatio: 2.5},
		// MinMax fusion renormalises each kind over the candidate set, so
		// probing shifts per-kind min/max spans and reweights kinds — a
		// structural drift more probing does not converge away. Held to a
		// documented softer floor; the default fusion (RRF) carries the
		// 0.95 gate.
		{name: "fused_minmax", search: core.SearchOptions{Fusion: core.FusionMinMax}, minRecall: 0.85, minRatio: 2.5},
		// Single-kind searches ride the exact bound-ordered path: recall
		// must be 1 by construction.
		{name: "single_histogram", search: core.SearchOptions{Kinds: []features.Kind{features.KindHistogram}}, minRecall: 1, minRatio: 1},
		{name: "single_naive", search: core.SearchOptions{Kinds: []features.Kind{features.KindNaive}}, minRecall: 1, minRatio: 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := EvaluateRecall(eng, cfg, RecallOptions{Queries: 40, K: 10, Search: tc.search})
			if err != nil {
				t.Fatalf("evaluate: %v", err)
			}
			t.Logf("mean recall %.4f min %.4f target-hit %.2f eval ratio %.2fx (paid %d / exact %d) pruned=%d exact=%d",
				res.MeanRecall, res.MinRecall, res.TargetHitRate, res.EvalRatio,
				res.PaidEvals, res.ExactEvals, res.PrunedShards, res.ExactShards)
			if res.MeanRecall < tc.minRecall {
				t.Errorf("mean recall %.4f below floor %.2f", res.MeanRecall, tc.minRecall)
			}
			if res.EvalRatio < tc.minRatio {
				t.Errorf("eval ratio %.2fx below floor %.2fx", res.EvalRatio, tc.minRatio)
			}
			if res.PrunedShards == 0 {
				t.Errorf("no shard took the pruned path; pruning never engaged")
			}
		})
	}
}

// TestRecallMaxBrownout10k pins the brownout floor on the 10k planted
// corpus: at level 1 the fused probe budget collapses to MinProbeRows,
// which must still clear the recall floor — brownout trades tail quality
// for survival, it must never make search useless. The gate's default
// config leaves brownout no room (the per-shard fraction budget, 0.07 ×
// 2500 = 175, already sits below the 400-row floor), so this engine
// raises ProbeFraction to 0.4: a 1000-row level-0 budget per shard that
// level 1 shrinks to exactly the floor — the same effective budget the
// default gate proves recalls ≥ 0.95.
func TestRecallMaxBrownout10k(t *testing.T) {
	cfg := synthvid.ClusterCorpusConfig{Frames: 10000, Seed: 7}
	eng := buildCorpusEngine(t, cfg, core.Options{SearchShards: 4, Cells: core.CellOptions{ProbeFraction: 0.4}})

	base, err := EvaluateRecall(eng, cfg, RecallOptions{Queries: 40, K: 10})
	if err != nil {
		t.Fatalf("level-0 evaluate: %v", err)
	}
	eng.SetBrownout(1)
	browned, err := EvaluateRecall(eng, cfg, RecallOptions{Queries: 40, K: 10})
	if err != nil {
		t.Fatalf("browned evaluate: %v", err)
	}
	t.Logf("level 0: recall %.4f paid %d; level 1: recall %.4f paid %d",
		base.MeanRecall, base.PaidEvals, browned.MeanRecall, browned.PaidEvals)
	if browned.PaidEvals >= base.PaidEvals {
		t.Errorf("max brownout paid %d evals, level 0 paid %d — budget did not shrink", browned.PaidEvals, base.PaidEvals)
	}
	if browned.PrunedShards == 0 {
		t.Error("browned search never took the pruned path")
	}
	if browned.MeanRecall < 0.95 {
		t.Errorf("mean recall %.4f at max brownout below the MinProbeRows floor 0.95", browned.MeanRecall)
	}
}

// TestRecallPruned100k is the ISSUE headline scale point: 100k corpus,
// recall@10 >= 0.95 with >= 10x fewer distance evaluations. ~1.1 GB of
// arena columns and minutes of generation, so it only runs when
// CBVR_SCALE_TEST=1.
func TestRecallPruned100k(t *testing.T) {
	if os.Getenv("CBVR_SCALE_TEST") != "1" {
		t.Skip("set CBVR_SCALE_TEST=1 to run the 100k scale gate")
	}
	cfg := synthvid.ClusterCorpusConfig{Frames: 100000, Seed: 7}
	eng := buildCorpusEngine(t, cfg, core.Options{SearchShards: 8})

	res, err := EvaluateRecall(eng, cfg, RecallOptions{Queries: 50, K: 10})
	if err != nil {
		t.Fatalf("evaluate: %v", err)
	}
	t.Logf("100k: mean recall %.4f min %.4f target-hit %.2f eval ratio %.2fx",
		res.MeanRecall, res.MinRecall, res.TargetHitRate, res.EvalRatio)
	if res.MeanRecall < recallFloor {
		t.Errorf("mean recall %.4f below floor %.2f", res.MeanRecall, recallFloor)
	}
	if res.EvalRatio < ratioFloor {
		t.Errorf("eval ratio %.2fx below headline floor %.0fx", res.EvalRatio, ratioFloor)
	}
}

// TestClusterCorpusDeterministic pins that corpus generation is a pure
// function of (config, index): two streams with the same seed agree
// frame-for-frame, and queries regenerate identically.
func TestClusterCorpusDeterministic(t *testing.T) {
	cfg := synthvid.ClusterCorpusConfig{Frames: 300, Seed: 42}
	collect := func() []*synthvid.DescriptorFrame {
		var out []*synthvid.DescriptorFrame
		if err := synthvid.StreamClusterCorpus(cfg, func(f *synthvid.DescriptorFrame) error {
			out = append(out, f)
			return nil
		}); err != nil {
			t.Fatalf("stream: %v", err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != cfg.Frames || len(b) != cfg.Frames {
		t.Fatalf("got %d/%d frames, want %d", len(a), len(b), cfg.Frames)
	}
	dups := 0
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Cluster != b[i].Cluster || a[i].NearDupOf != b[i].NearDupOf {
			t.Fatalf("frame %d metadata diverged between identical streams", i)
		}
		da, db := a[i].Set.Get(features.KindNaive), b[i].Set.Get(features.KindNaive)
		if d, err := da.DistanceTo(db); err != nil || d != 0 {
			t.Fatalf("frame %d naive descriptor diverged (d=%v err=%v)", i, d, err)
		}
		if a[i].NearDupOf != 0 {
			dups++
			if got := a[i].NearDupOf; got != int64(a[i].Cluster)+1 {
				t.Fatalf("frame %d: near-dup ground truth %d, want exemplar %d", i, got, a[i].Cluster+1)
			}
		}
	}
	if dups == 0 {
		t.Fatal("corpus planted no near-duplicates")
	}
	qa, qb := synthvid.ClusterQueries(cfg, 5), synthvid.ClusterQueries(cfg, 5)
	for i := range qa {
		d, err := qa[i].Set.Get(features.KindGabor).DistanceTo(qb[i].Set.Get(features.KindGabor))
		if err != nil || d != 0 {
			t.Fatalf("query %d diverged between identical generations (d=%v err=%v)", i, d, err)
		}
	}
}
