// Recall@K harness for the coarse-cell candidate pruner: loads a planted
// descriptor-space corpus (synthvid.StreamClusterCorpus) into an engine,
// runs each query twice through the SAME search pipeline — pruned and
// with NoCellPruning — and reports set-overlap recall of the pruned top-K
// against the exact top-K alongside the distance-evaluation work ratio.
// A configurable prefix of queries is additionally cross-checked against
// SearchWithSetReference, the retained naive full-sort baseline, so the
// "exact" side of the comparison is itself anchored to the reference
// implementation rather than trusted transitively.
package eval

import (
	"fmt"

	"cbvr/internal/core"
	"cbvr/internal/synthvid"
)

// loadBatch bounds peak memory while bulk-publishing: frames are handed
// to the engine in slices of this many, so corpus size never dictates
// resident slice size.
const loadBatch = 8192

// LoadClusterCorpus streams the configured corpus into the engine's
// search cache in bounded batches. The engine sees exactly the frames a
// store-backed ingest would have published (shards, arenas, range index,
// cell index).
func LoadClusterCorpus(e *core.Engine, cfg synthvid.ClusterCorpusConfig) error {
	batch := make([]core.SyntheticFrame, 0, loadBatch)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		err := e.PublishSyntheticFrames(batch)
		batch = batch[:0]
		return err
	}
	err := synthvid.StreamClusterCorpus(cfg, func(f *synthvid.DescriptorFrame) error {
		batch = append(batch, core.SyntheticFrame{
			ID:         f.ID,
			VideoID:    f.VideoID,
			VideoName:  f.VideoName,
			FrameIndex: f.FrameIndex,
			Bucket:     f.Bucket,
			Set:        f.Set,
		})
		if len(batch) == loadBatch {
			return flush()
		}
		return nil
	})
	if err != nil {
		return err
	}
	return flush()
}

// RecallOptions configures one EvaluateRecall run.
type RecallOptions struct {
	// Queries is the number of near-duplicate queries (default 50); K the
	// result depth (default 10).
	Queries int
	K       int
	// Search is the base search configuration (kinds, fusion, weights).
	// K and NoCellPruning are overridden per arm.
	Search core.SearchOptions
	// ReferenceCheck cross-validates this many leading queries' exact arm
	// against SearchWithSetReference (default 3; negative disables). The
	// reference is single-goroutine full-sort, so keep this small on
	// large corpora.
	ReferenceCheck int
}

func (o RecallOptions) withDefaults() RecallOptions {
	if o.Queries <= 0 {
		o.Queries = 50
	}
	if o.K <= 0 {
		o.K = 10
	}
	if o.ReferenceCheck == 0 {
		o.ReferenceCheck = 3
	}
	return o
}

// RecallResult summarises one pruned-vs-exact evaluation run.
type RecallResult struct {
	Queries int `json:"queries"`
	K       int `json:"k"`
	// MeanRecall / MinRecall are set-overlap recall@K of the pruned arm
	// against the exact arm, averaged / minimised over queries.
	MeanRecall float64 `json:"mean_recall"`
	MinRecall  float64 `json:"min_recall"`
	// TargetHitRate is the fraction of queries whose planted ground-truth
	// exemplar appeared in the pruned top-K — retrieval quality in
	// absolute terms, independent of the exact arm.
	TargetHitRate float64 `json:"target_hit_rate"`
	// EvalRatio is aggregate exact work over aggregate paid work across
	// all pruned-arm searches (row kernels the exact sweep would run,
	// divided by row kernels plus centroid bounds the pruner ran).
	EvalRatio float64 `json:"eval_ratio"`
	// ExactEvals/PaidEvals are the aggregate numerator and denominator.
	ExactEvals int64 `json:"exact_evals"`
	PaidEvals  int64 `json:"paid_evals"`
	// PrunedShards/ExactShards aggregate the per-shard path taken across
	// all pruned-arm searches.
	PrunedShards int `json:"pruned_shards"`
	ExactShards  int `json:"exact_shards"`
}

// EvaluateRecall runs the configured queries through the pruned and exact
// arms and folds the comparison into a RecallResult. The engine must
// already hold the corpus (LoadClusterCorpus).
func EvaluateRecall(e *core.Engine, cfg synthvid.ClusterCorpusConfig, opt RecallOptions) (RecallResult, error) {
	opt = opt.withDefaults()
	queries := synthvid.ClusterQueries(cfg, opt.Queries)
	res := RecallResult{Queries: opt.Queries, K: opt.K, MinRecall: 1}

	var hits int
	var recallSum float64
	for qi, q := range queries {
		pruned := opt.Search
		pruned.K = opt.K
		pruned.NoCellPruning = false
		gotP, stats, err := e.SearchWithSetStats(q.Set, q.Bucket, pruned)
		if err != nil {
			return res, fmt.Errorf("eval: pruned search %d: %w", qi, err)
		}

		exact := pruned
		exact.NoCellPruning = true
		gotE, _, err := e.SearchWithSetStats(q.Set, q.Bucket, exact)
		if err != nil {
			return res, fmt.Errorf("eval: exact search %d: %w", qi, err)
		}

		if qi < opt.ReferenceCheck {
			ref, err := e.SearchWithSetReference(q.Set, q.Bucket, exact)
			if err != nil {
				return res, fmt.Errorf("eval: reference search %d: %w", qi, err)
			}
			if len(ref) != len(gotE) {
				return res, fmt.Errorf("eval: query %d: exact arm returned %d matches, reference %d", qi, len(gotE), len(ref))
			}
			for i := range ref {
				if ref[i].KeyFrameID != gotE[i].KeyFrameID {
					return res, fmt.Errorf("eval: query %d rank %d: exact arm ID %d != reference ID %d",
						qi, i, gotE[i].KeyFrameID, ref[i].KeyFrameID)
				}
			}
		}

		exactIDs := make(map[int64]bool, len(gotE))
		for _, m := range gotE {
			exactIDs[m.KeyFrameID] = true
		}
		overlap := 0
		targetHit := false
		for _, m := range gotP {
			if exactIDs[m.KeyFrameID] {
				overlap++
			}
			if m.KeyFrameID == q.NearDupOf {
				targetHit = true
			}
		}
		recall := 1.0
		if len(exactIDs) > 0 {
			recall = float64(overlap) / float64(len(exactIDs))
		}
		recallSum += recall
		if recall < res.MinRecall {
			res.MinRecall = recall
		}
		if targetHit {
			hits++
		}

		res.ExactEvals += stats.ExactEvals()
		res.PaidEvals += stats.TotalEvals()
		res.PrunedShards += stats.PrunedShards
		res.ExactShards += stats.ExactShards
	}
	res.MeanRecall = recallSum / float64(opt.Queries)
	res.TargetHitRate = float64(hits) / float64(opt.Queries)
	if res.PaidEvals > 0 {
		res.EvalRatio = float64(res.ExactEvals) / float64(res.PaidEvals)
	} else {
		res.EvalRatio = 1
	}
	return res, nil
}
