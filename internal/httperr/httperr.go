// Package httperr maps engine errors onto HTTP status codes, shared by the
// JSON API (internal/server) and the HTML UI (internal/webui) so both
// surfaces classify failures identically: the client's fault (4xx) is told
// apart from the server's (5xx) by inspecting the error chain, never by
// string matching.
package httperr

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"cbvr/internal/core"
	"cbvr/internal/cvj"
	"cbvr/internal/vstore"
)

// StatusOf classifies err:
//
//   - *http.MaxBytesError → 413 (the request body hit the server's size
//     cap; checked first because the truncation it causes also looks like
//     a malformed container further down the chain)
//   - core.ErrEmptyName → 400
//   - core.ErrNotFound → 404
//   - context cancellation / deadline → 503 (the request was abandoned or
//     the server is shutting down; nothing was committed)
//   - vstore.ErrReadOnly → 503 (the store is degraded read-only after a
//     write fault; retry against a restarted process, not this one)
//   - cvj.ErrFormat or io.ErrUnexpectedEOF → 400 (the uploaded bytes are
//     not a valid container, or were cut off mid-stream)
//   - anything else → 500 (storage or internal fault; not the client)
//
// A nil error is 200.
func StatusOf(err error) int {
	var mbe *http.MaxBytesError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.As(err, &mbe):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, core.ErrEmptyName):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, vstore.ErrReadOnly):
		return http.StatusServiceUnavailable
	case errors.Is(err, cvj.ErrFormat), errors.Is(err, io.ErrUnexpectedEOF):
		return http.StatusBadRequest
	default:
		return http.StatusInternalServerError
	}
}

// StatusOfStored classifies errors from operations over already-stored
// data (reindex, delete): no request bytes are involved, so a container
// format error means the STORE is corrupt — the server's fault (500),
// never the client's (400). Only addressing (404) and abandonment (503)
// remain client-visible classes.
func StatusOfStored(err error) int {
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, core.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	case errors.Is(err, vstore.ErrReadOnly):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// RetryAfter reports whether err warrants a Retry-After header on its 503:
// a degraded store recovers only on process restart, so clients should
// back off substantially rather than hammer a read-only instance.
func RetryAfter(err error) bool {
	return errors.Is(err, vstore.ErrReadOnly)
}

// Message renders err for the response body. The 413 case names the limit
// so clients learn the cap without reading server config; other statuses
// pass the error text through.
func Message(err error) string {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return fmt.Sprintf("request body exceeds the %d-byte upload limit", mbe.Limit)
	}
	return err.Error()
}
